//! GAT attention on the SDDMM kernel — the paper's §7 future-work item,
//! working.
//!
//! ```sh
//! cargo run --release --example gat_attention
//! ```
//!
//! Builds a community graph, runs one graph-attention layer forward, and
//! shows that attention concentrates on same-community neighbors once the
//! transform separates the communities (here we cheat and feed low-noise
//! features so the effect is visible without training the layer).

use mg_gcn::core::attention::GatLayer;
use mg_gcn::prelude::*;

fn main() {
    let mut cfg = SbmConfig::community_benchmark(600, 3);
    cfg.noise = 0.3;
    let graph = sbm::generate(&cfg, 77);
    println!(
        "graph: {} vertices, {} edges, {} communities",
        graph.n(),
        graph.adj.nnz(),
        graph.classes
    );

    let layer = GatLayer::new(graph.features.cols(), 16, 9);
    let (attention, out) = layer.forward(&graph.adj, &graph.features);
    println!("output: {} x {}", out.rows(), out.cols());

    // Every vertex's attention is a distribution over its in-neighbors.
    let mut max_dev = 0.0f32;
    for v in 0..graph.n() {
        let s: f32 = attention.row(v).map(|(_, a)| a).sum();
        if attention.row(v).next().is_some() {
            max_dev = max_dev.max((s - 1.0).abs());
        }
    }
    println!("max |Σ attention - 1| over vertices: {max_dev:.2e}");
    assert!(max_dev < 1e-4);

    // How much attention flows within vs across communities?
    let mut intra = 0.0f64;
    let mut inter = 0.0f64;
    for v in 0..graph.n() {
        for (u, a) in attention.row(v) {
            if graph.labels[v] == graph.labels[u as usize] {
                intra += a as f64;
            } else {
                inter += a as f64;
            }
        }
    }
    println!(
        "attention mass: {:.1}% within community, {:.1}% across",
        100.0 * intra / (intra + inter),
        100.0 * inter / (intra + inter)
    );
    println!(
        "\n(the distributed version of this layer would reuse the staged-SpMM\n broadcast pipeline unchanged: GAT scores are an SDDMM of width 2)"
    );
}
