//! Mini-batch vs full-batch — the paper's §1 argument, run head to head.
//!
//! ```sh
//! cargo run --release --example minibatch_vs_fullbatch
//! ```
//!
//! Trains the same 2-layer GCN on the same community graph (a) full-batch
//! with MG-GCN on 4 virtual GPUs and (b) with a GraphSAGE-style
//! fanout-sampled mini-batch loop, then compares accuracy and — the §1
//! point — the per-epoch vertex work.

use mg_gcn::baselines::minibatch::{MiniBatchConfig, MiniBatchTrainer};
use mg_gcn::prelude::*;

fn main() {
    let mut sbm_cfg = SbmConfig::community_benchmark(3_000, 5);
    sbm_cfg.intra_degree = 16.0;
    sbm_cfg.noise = 1.5;
    let graph = sbm::generate(&sbm_cfg, 555);
    let cfg = GcnConfig::new(graph.features.cols(), &[32], graph.classes);
    let epochs = 40;
    println!(
        "graph: n = {}, m = {}, avg degree {:.0}\n",
        graph.n(),
        graph.adj.nnz(),
        graph.adj.nnz() as f64 / graph.n() as f64
    );

    // Full batch on 4 virtual GPUs.
    let opts = TrainOptions::quick(4);
    let problem = Problem::from_graph(&graph, &cfg, &opts);
    let mut full = Trainer::new(problem, cfg.clone(), opts).expect("fits");
    let full_last = full.train(epochs).expect("train").pop().expect("trained");

    // Mini-batch, fanout 10.
    let mb_cfg = MiniBatchConfig { batch_size: 64, fanouts: vec![10; cfg.layers()], seed: 3 };
    let mut mini = MiniBatchTrainer::new(&graph, &cfg, mb_cfg);
    let mut mini_last = mini.train_epoch();
    let mut mini_work = mini_last.work_touched;
    for _ in 1..epochs {
        mini_last = mini.train_epoch();
        mini_work += mini_last.work_touched;
    }

    println!("{:<26} {:>12} {:>20}", "trainer", "train acc", "vertices touched/epoch");
    println!(
        "{:<26} {:>11.1}% {:>20}",
        "full batch (MG-GCN, 4 GPU)",
        full_last.train_acc * 100.0,
        graph.n()
    );
    println!(
        "{:<26} {:>11.1}% {:>20}",
        "mini-batch (fanout 10)",
        mini_last.train_acc * 100.0,
        mini_work / epochs
    );
    let ratio = (mini_work / epochs) as f64 / graph.n() as f64;
    println!("\nneighborhood explosion: the sampler touches {ratio:.1}x the graph per epoch");
    assert!(ratio > 1.0, "sampler should do redundant work on a dense graph");
}
