//! Machine design study: what hardware knob buys the most GCN throughput?
//!
//! ```sh
//! cargo run --release --example machine_design [dataset]
//! ```
//!
//! The simulator makes the §5.1-style what-if analysis cheap: starting
//! from a DGX-A100, we scale one resource at a time — memory bandwidth,
//! NVLink bandwidth, FLOPs, L2 — and measure the epoch-time response at 8
//! GPUs. On SpMM-bound graphs, memory bandwidth should dominate (the
//! paper's whole §6.1 premise); FLOPs should barely matter.

use mg_gcn::gpusim::{GpuSpec, Interconnect};
use mg_gcn::prelude::*;

fn machine_with(f: impl Fn(&mut MachineSpec)) -> MachineSpec {
    let mut m = MachineSpec::dgx_a100();
    f(&mut m);
    m
}

fn epoch(card: &datasets::DatasetCard, machine: MachineSpec) -> Option<f64> {
    let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
    let opts = TrainOptions::full(machine, 8);
    let problem = Problem::from_stats(card, &opts);
    Trainer::new(problem, cfg, opts).ok().and_then(|mut t| Some(t.train_epoch().ok()?.sim_seconds))
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Reddit".into());
    let card = datasets::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown dataset {name:?}");
        std::process::exit(1);
    });
    let base = epoch(&card, MachineSpec::dgx_a100()).expect("baseline fits");
    println!(
        "machine design study: {} (model A, 8 GPUs), baseline DGX-A100 epoch {:.4} s\n",
        card.name, base
    );
    println!("{:<34} {:>12} {:>10}", "change", "epoch (s)", "speedup");

    let scale_gpu = |f: f64, what: &str| -> MachineSpec {
        machine_with(|m| {
            for g in &mut m.gpus {
                match what {
                    "membw" => g.mem_bw *= f,
                    "flops" => g.flops *= f,
                    "l2" => g.l2_bytes = (g.l2_bytes as f64 * f) as u64,
                    _ => unreachable!(),
                }
            }
        })
    };

    let cases: Vec<(String, MachineSpec)> = vec![
        ("2x memory bandwidth (4 TB/s)".into(), scale_gpu(2.0, "membw")),
        ("2x FLOPs".into(), scale_gpu(2.0, "flops")),
        ("4x L2 cache".into(), scale_gpu(4.0, "l2")),
        (
            "2x NVLink (24 links/GPU)".into(),
            machine_with(|m| {
                m.interconnect = Interconnect::NvSwitch { links_per_gpu: 24, link_bw: 25.0e9 }
            }),
        ),
        (
            "half NVLink (6 links/GPU)".into(),
            machine_with(|m| {
                m.interconnect = Interconnect::NvSwitch { links_per_gpu: 6, link_bw: 25.0e9 }
            }),
        ),
        (
            "V100-class GPUs behind NVSwitch".into(),
            machine_with(|m| m.gpus = vec![GpuSpec::v100(); 8]),
        ),
        (
            "H100-class GPUs (post-paper gen)".into(),
            machine_with(|m| m.gpus = vec![GpuSpec::h100(); 8]),
        ),
    ];
    for (label, machine) in cases {
        match epoch(&card, machine) {
            Some(t) => println!("{label:<34} {t:>12.4} {:>9.2}x", base / t),
            None => println!("{label:<34} {:>12}", "OOM"),
        }
    }
    println!();
    println!("(on SpMM-bound graphs, memory bandwidth should be the big lever and");
    println!(" FLOPs nearly irrelevant — the §6.1 bottleneck analysis as a design tool)");
}
