//! Memory planner: "will my model fit?" — the §4.2 / Fig 12 capacity story
//! as a tool.
//!
//! ```sh
//! cargo run --release --example memory_planner [dataset] [hidden] [layers]
//! ```
//!
//! Prints the per-GPU memory plan for MG-GCN and the baseline buffer
//! policies across GPU counts on both machines, plus the deepest model
//! that fits each budget.

use mg_gcn::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "Proteins".into());
    let hidden: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(512);
    let layers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    let card = datasets::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown dataset {name:?}");
        std::process::exit(1);
    });
    let cfg = GcnConfig::new(card.feat_dim, &vec![hidden; layers - 1], card.classes);
    println!("memory plan: {} with a {layers}-layer, hidden-{hidden} GCN\n", card.name);

    let gib = |b: u64| b as f64 / (1u64 << 30) as f64;
    println!("{:>5} {:>14} {:>14} {:>14}", "#GPU", "MG-GCN (GiB)", "DGL-ish (GiB)", "CAGNET (GiB)");
    for gpus in [1u64, 2, 4, 8] {
        let mg = MemoryPlan::new(card.n as u64, card.m as u64, &cfg, gpus, BufferPolicy::MgGcn);
        let dgl =
            MemoryPlan::new(card.n as u64, card.m as u64, &cfg, gpus, BufferPolicy::PerLayer3);
        let cag = MemoryPlan::new(
            card.n as u64,
            card.m as u64,
            &cfg,
            gpus,
            BufferPolicy::CagnetFullGather,
        );
        println!(
            "{:>5} {:>14.1} {:>14.1} {:>14.1}",
            gpus,
            gib(mg.total()),
            gib(dgl.total()),
            gib(cag.total())
        );
    }

    println!("\nfit check (V100 = 32 GiB, A100 = 80 GiB), MG-GCN policy:");
    for (machine, cap) in [("DGX-V100", 32u64 << 30), ("DGX-A100", 80u64 << 30)] {
        print!("  {machine}: ");
        let mut fits_at = None;
        for gpus in [1u64, 2, 4, 8] {
            let plan =
                MemoryPlan::new(card.n as u64, card.m as u64, &cfg, gpus, BufferPolicy::MgGcn);
            if plan.fits(cap) {
                fits_at = Some(gpus);
                break;
            }
        }
        match fits_at {
            Some(g) => println!("fits from {g} GPU(s)"),
            None => println!("does not fit even at 8 GPUs"),
        }
    }

    println!("\ndeepest hidden-{hidden} model per budget (MG-GCN policy, 8 GPUs):");
    for cap_gib in [16u64, 30, 40, 78] {
        let deepest = max_layers(
            card.n as u64,
            card.m as u64,
            card.feat_dim,
            hidden,
            card.classes,
            8,
            BufferPolicy::MgGcn,
            cap_gib << 30,
        );
        println!("  {cap_gib:>3} GiB -> {deepest} layers");
    }

    let breakdown = MemoryPlan::new(card.n as u64, card.m as u64, &cfg, 8, BufferPolicy::MgGcn);
    println!("\nplan breakdown at 8 GPUs (MG-GCN):");
    println!("  adjacency tiles : {:>8.2} GiB", gib(breakdown.adjacency));
    println!("  feature shard   : {:>8.2} GiB", gib(breakdown.features));
    println!("  L+3 big buffers : {:>8.2} GiB", gib(breakdown.big_buffers));
    println!("  weights + Adam  : {:>8.2} GiB", gib(breakdown.weights));
    println!("  labels/reserved : {:>8.2} GiB", gib(breakdown.labels));
}
