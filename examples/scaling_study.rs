//! Scaling study: how epoch time falls with GPU count, and what each paper
//! optimization contributes — an interactive version of Figs 7, 9, 10, 13.
//!
//! ```sh
//! cargo run --release --example scaling_study [dataset]
//! ```
//!
//! `dataset` is one of the Table 1 names (default: Reddit). Runs the
//! paper-scale timing model on both machines, sweeping GPU counts and the
//! ablation flags.

use mg_gcn::prelude::*;

fn epoch(
    card: &datasets::DatasetCard,
    machine: MachineSpec,
    gpus: usize,
    permute: bool,
    overlap: bool,
) -> Option<f64> {
    let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
    let mut opts = TrainOptions::full(machine, gpus);
    opts.permute = permute;
    opts.overlap = overlap;
    let problem = Problem::from_stats(card, &opts);
    Trainer::new(problem, cfg, opts).ok().and_then(|mut t| Some(t.train_epoch().ok()?.sim_seconds))
}

fn fmt(t: Option<f64>) -> String {
    t.map(|v| format!("{:.4}", v)).unwrap_or_else(|| "OOM".into())
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Reddit".into());
    let card = datasets::by_name(&name).unwrap_or_else(|| {
        eprintln!(
            "unknown dataset {name:?}; pick one of Cora/Arxiv/Papers/Products/Proteins/Reddit"
        );
        std::process::exit(1);
    });
    println!(
        "scaling study: {} (n = {}, m = {}, k = {:.0}), model A (2 layers, h = 512)\n",
        card.name, card.n, card.m, card.avg_degree
    );

    for machine in [MachineSpec::dgx_v100(), MachineSpec::dgx_a100()] {
        println!("== {} ==", machine.name);
        println!(
            "{:>5} {:>12} {:>12} {:>12} {:>10}",
            "#GPU", "original", "+permute", "+overlap", "speedup"
        );
        let mut base1 = None;
        for gpus in [1usize, 2, 4, 8] {
            let orig = epoch(&card, machine.clone(), gpus, false, false);
            let perm = epoch(&card, machine.clone(), gpus, true, false);
            let full = epoch(&card, machine.clone(), gpus, true, true);
            if gpus == 1 {
                base1 = full;
            }
            let speedup = match (base1, full) {
                (Some(b), Some(f)) => format!("{:.2}x", b / f),
                _ => "-".into(),
            };
            println!(
                "{:>5} {:>12} {:>12} {:>12} {:>10}",
                gpus,
                fmt(orig),
                fmt(perm),
                fmt(full),
                speedup
            );
        }
        println!();
    }
    println!("(columns are cumulative: original ordering, after §5.2 permutation,");
    println!(" after §4.3 overlap; speedup is vs the fully-optimized 1-GPU run)");
}
