//! Measured vs simulated speedup: the Fig-9 scaling story told twice.
//!
//! ```sh
//! MGGCN_THREADS=4 cargo run --release --example exec_speedup
//! ```
//!
//! The *simulated* table replays the paper's timing model (virtual
//! DGX-A100, paper-scale dataset stats): epoch makespan vs GPU count.
//! The *measured* table really executes a small training problem on the
//! `mggcn-exec` threaded runtime, sweeping the kernel-pool width, and
//! reports wall-clock epoch time. Both speedups come from the same
//! schedule; one is predicted, the other is observed on your CPU. On a
//! single-core box the measured column degenerates to ~1.0x — the pool
//! oversubscribes for correctness, not for speed.

use mg_gcn::prelude::*;
use std::time::Instant;

/// Simulated: paper-scale epoch makespan at P GPUs (Fig 9 axis).
fn simulated_epoch(card: &datasets::DatasetCard, gpus: usize) -> Option<f64> {
    let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
    let opts = TrainOptions::full(MachineSpec::dgx_a100(), gpus);
    let problem = Problem::from_stats(card, &opts);
    Trainer::new(problem, cfg, opts).ok().and_then(|mut t| Some(t.train_epoch().ok()?.sim_seconds))
}

/// Measured: median wall-clock epoch at `threads` pool width.
fn measured_epoch(g: &Graph, cfg: &GcnConfig, threads: usize) -> f64 {
    mg_gcn::exec::set_active_threads(threads);
    let mut opts = TrainOptions::quick(2);
    opts.backend = Backend::Threaded;
    let problem = Problem::from_graph(g, cfg, &opts);
    let mut t = Trainer::new(problem, cfg.clone(), opts).expect("fits");
    t.train_epoch().expect("warmup"); // first-touch + pool spawn
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            t.train_epoch().expect("epoch");
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    // Widen the pool before its first use; MGGCN_THREADS wins if set.
    if std::env::var("MGGCN_THREADS").is_err() {
        std::env::set_var("MGGCN_THREADS", "4");
    }

    let card = datasets::REDDIT;
    println!("simulated (Fig 9): {} on a virtual DGX-A100, model A", card.name);
    println!("{:>8} {:>14} {:>9}", "#GPU", "epoch (s)", "speedup");
    let base = simulated_epoch(&card, 1);
    for gpus in [1usize, 2, 4, 8] {
        match (base, simulated_epoch(&card, gpus)) {
            (Some(b), Some(t)) => println!("{gpus:>8} {t:>14.4} {:>8.2}x", b / t),
            _ => println!("{gpus:>8} {:>14} {:>9}", "OOM", "-"),
        }
    }

    let g = sbm::generate(&SbmConfig::community_benchmark(3000, 5), 42);
    let cfg = GcnConfig::new(g.features.cols(), &[128], g.classes);
    let pool = mg_gcn::exec::pool_size();
    println!(
        "\nmeasured: threaded backend, {} vertices, hidden 128, 2 virtual GPUs, pool size {pool}",
        g.n()
    );
    println!("{:>8} {:>14} {:>9}", "threads", "epoch (ms)", "speedup");
    let mut base = None;
    for threads in [1usize, 2, 4] {
        let t = measured_epoch(&g, &cfg, threads);
        let b = *base.get_or_insert(t);
        println!("{threads:>8} {:>14.2} {:>8.2}x", t * 1e3, b / t);
    }
    mg_gcn::exec::set_active_threads(0);
}
