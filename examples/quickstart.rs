//! Quickstart: train a small GCN on 4 virtual GPUs and watch it learn.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a planted-partition community graph (ground truth known), trains
//! MG-GCN full-batch across 4 virtual GPUs of a DGX-A100, and prints the
//! loss/accuracy curve plus where the simulated epoch time goes.

use mg_gcn::prelude::*;

fn main() {
    // 1. A dataset: 2 000 vertices in 5 communities, noisy features.
    let graph = sbm::generate(&SbmConfig::community_benchmark(2_000, 5), 42);
    println!(
        "graph: {} vertices, {} edges, {} classes, {} features",
        graph.n(),
        graph.adj.nnz(),
        graph.classes,
        graph.features.cols()
    );

    // 2. A model: 2-layer GCN with a 32-wide hidden layer.
    let cfg = GcnConfig::new(graph.features.cols(), &[32], graph.classes);

    // 3. Training options: 4 virtual GPUs, every paper optimization on.
    let opts = TrainOptions::quick(4);
    println!(
        "machine: {}, {} GPUs, overlap={}, permute={}",
        opts.machine.name, opts.gpus, opts.overlap, opts.permute
    );

    // 4. Partition and train.
    let problem = Problem::from_graph(&graph, &cfg, &opts);
    let mut trainer = Trainer::new(problem, cfg, opts).expect("problem fits in GPU memory");
    println!(
        "planned memory per GPU: {:.1} MiB\n",
        trainer.memory_per_gpu() as f64 / (1 << 20) as f64
    );

    println!(
        "{:>5} {:>10} {:>10} {:>9} {:>14}",
        "epoch", "loss", "train", "test", "sim epoch (ms)"
    );
    let mut last = None;
    for epoch in 0..60 {
        let report = trainer.train_epoch().expect("train");
        if epoch % 5 == 0 || epoch == 59 {
            println!(
                "{:>5} {:>10.4} {:>9.1}% {:>8.1}% {:>14.3}",
                epoch,
                report.loss,
                report.train_acc * 100.0,
                report.test_acc * 100.0,
                report.sim_seconds * 1e3
            );
        }
        last = Some(report);
    }

    let report = last.expect("trained at least one epoch");
    println!("\nwhere the simulated epoch went (kernel-time %):");
    for (cat, pct) in report.breakdown(true) {
        println!("  {:<12} {:>5.1}%", cat.name(), pct);
    }
    assert!(report.test_acc > 0.8, "expected the GCN to denoise the communities");
    println!("\nok: test accuracy {:.1}%", report.test_acc * 100.0);
}
