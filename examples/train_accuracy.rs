//! Accuracy experiment: GCN vs a graph-blind MLP (the paper's §2
//! motivation, and the §6 "matches the DGL accuracy curve" check).
//!
//! ```sh
//! cargo run --release --example train_accuracy
//! ```
//!
//! Generates a Reddit-flavoured community graph with *noisy* features so
//! that features alone are weakly informative, then trains (a) MG-GCN on 4
//! virtual GPUs and (b) an MLP on the same features. Neighborhood
//! averaging should lift the GCN far above the MLP — and the multi-GPU
//! trajectory is verified against a single-GPU run, the same correctness
//! check the paper performs against DGL.

use mg_gcn::baselines::mlp::MlpTrainer;
use mg_gcn::prelude::*;

fn train_gcn(graph: &Graph, gpus: usize, epochs: usize) -> Vec<EpochReport> {
    let cfg = GcnConfig::new(graph.features.cols(), &[32], graph.classes);
    let mut opts = TrainOptions::quick(gpus);
    opts.permute = false; // keep trajectories bit-comparable across GPU counts
    let problem = Problem::from_graph(graph, &cfg, &opts);
    let mut trainer = Trainer::new(problem, cfg, opts).expect("fits");
    trainer.train(epochs).expect("train")
}

fn main() {
    let mut sbm_cfg = SbmConfig::community_benchmark(3_000, 6);
    sbm_cfg.noise = 2.5; // features alone are weak evidence
    let graph = sbm::generate(&sbm_cfg, 1234);
    println!(
        "graph: {} vertices, {} edges, {} communities, feature noise {}",
        graph.n(),
        graph.adj.nnz(),
        graph.classes,
        sbm_cfg.noise
    );

    let epochs = 80;

    // (a) the distributed GCN, 4 virtual GPUs.
    let gcn = train_gcn(&graph, 4, epochs);
    let gcn_last = gcn.last().expect("trained");

    // (b) single-GPU check: the trajectory must match the 4-GPU one.
    let gcn_1 = train_gcn(&graph, 1, epochs);
    let max_loss_gap = gcn
        .iter()
        .zip(&gcn_1)
        .map(|(a, b)| (a.loss - b.loss).abs() / b.loss.abs().max(1.0))
        .fold(0.0f64, f64::max);
    println!("max relative loss gap 4-GPU vs 1-GPU: {max_loss_gap:.2e} (paper: matches DGL curve)");
    assert!(max_loss_gap < 1e-3, "multi-GPU training must match single-GPU");

    // (c) the MLP foil.
    let cfg = GcnConfig::new(graph.features.cols(), &[32], graph.classes);
    let mut mlp = MlpTrainer::new(&graph, &cfg);
    let mut mlp_last = None;
    for _ in 0..epochs {
        mlp_last = Some(mlp.train_epoch());
    }
    let mlp_last = mlp_last.expect("trained");

    println!("\n{:<18} {:>12} {:>12}", "model", "train acc", "test acc");
    println!(
        "{:<18} {:>11.1}% {:>11.1}%",
        "MG-GCN (4 GPUs)",
        gcn_last.train_acc * 100.0,
        gcn_last.test_acc * 100.0
    );
    println!(
        "{:<18} {:>11.1}% {:>11.1}%",
        "MLP (no graph)",
        mlp_last.train_acc * 100.0,
        mlp_last.test_acc * 100.0
    );

    assert!(
        gcn_last.test_acc > mlp_last.test_acc + 0.1,
        "GCN should clearly beat the graph-blind MLP"
    );
    println!(
        "\nok: the graph is worth {:.1} accuracy points here",
        (gcn_last.test_acc - mlp_last.test_acc) * 100.0
    );
}
