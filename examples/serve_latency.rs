//! Serving latency: checkpoint → ServingModel → batched online queries.
//!
//! ```sh
//! cargo run --release --example serve_latency
//! ```
//!
//! Trains a small GCN, freezes it into a serving model, and replays the
//! same seeded request trace under three configurations on one simulated
//! A100: batch-size-1, micro-batched with a cold propagation cache, and
//! micro-batched warm. Shows the two effects the serving subsystem is
//! built around — batching amortizes per-request fixed costs into
//! sustained throughput, and the cache removes the layer-0 SpMM for hot
//! vertices — while every answer stays bit-identical to the full-graph
//! forward pass.

use mg_gcn::gpusim::{GpuSpec, MachineSpec};
use mg_gcn::prelude::*;
use mg_gcn::serve::generate_load;

fn main() {
    // 1. Train a model worth serving.
    let graph = sbm::generate(&SbmConfig::community_benchmark(2_000, 5), 42);
    let cfg = GcnConfig::new(graph.features.cols(), &[32], graph.classes);
    let opts = TrainOptions::quick(2);
    let problem = Problem::from_graph(&graph, &cfg, &opts);
    let mut trainer = Trainer::new(problem, cfg, opts).expect("fits");
    for _ in 0..15 {
        trainer.train_epoch().expect("train");
    }
    let checkpoint = mg_gcn::core::checkpoint::Checkpoint::from_trainer(&trainer);

    // 2. Freeze it into a serving model.
    let model = ServingModel::from_checkpoint(&checkpoint, &graph).expect("valid checkpoint");
    println!(
        "serving a {}-layer model over {} vertices ({} -> {} dims)\n",
        model.layers(),
        model.vertices(),
        model.feat_dim(),
        model.out_dim()
    );

    // 3. One seeded open-loop trace: 100k qps, 80% of traffic on the
    //    hottest 5% of vertices.
    let trace = generate_load(&LoadGenConfig::skewed(100_000.0, 2_000, model.vertices(), 7));
    let machine = || MachineSpec::uniform("1xA100", GpuSpec::a100(), 1, 12, 300.0e9);

    // 4a. Batch-size-1 baseline, no cache.
    let mut unbatched =
        Server::new(model.clone(), ServeConfig::new(machine(), BatchPolicy::unbatched(), 0));
    let base = unbatched.serve("unbatched", &trace);

    // 4b. Micro-batched (1 ms window, up to 32 requests) + 64 MiB cache,
    //     cold then warm.
    let policy = BatchPolicy::new(1.0e-3, 32);
    let mut server = Server::new(model.clone(), ServeConfig::new(machine(), policy, 64 << 20));
    let cold = server.serve("batched-cold", &trace);
    let warm = server.serve("batched-warm", &trace);

    for r in [&base, &cold, &warm] {
        println!("{}", r.render());
    }
    println!(
        "\nbatching speedup: {:.1}x sustained throughput",
        cold.throughput_rps / base.throughput_rps
    );
    println!(
        "warm cache: {:.1}% hit rate, {:.1}% less compute per request",
        warm.cache_hit_rate * 100.0,
        (1.0 - warm.compute_per_request_us / cold.compute_per_request_us) * 100.0
    );

    // 5. The served answers are bit-identical to the full forward pass.
    let reference = server.model().forward_full();
    let sample: Vec<u32> = vec![1, 17, 123, 999, 1999];
    let out = server.query(&sample);
    for (i, &v) in sample.iter().enumerate() {
        assert_eq!(out.row(i), reference.row(v as usize));
    }
    println!("\nspot-check: served outputs match the full forward pass bit-for-bit");
}
