//! Integration tests for the future-work extensions: multi-node machines,
//! attention, checkpoint/fit workflows, tracing/profiles, and the
//! mini-batch comparison — all through the public facade.

use mg_gcn::baselines::minibatch::{MiniBatchConfig, MiniBatchTrainer};
use mg_gcn::core::attention::GatLayer;
use mg_gcn::core::checkpoint::Checkpoint;
use mg_gcn::core::fit::{fit, FitOptions, StopReason};
use mg_gcn::gpusim::{trace, Profile};
use mg_gcn::prelude::*;

fn graph(n: usize, seed: u64) -> Graph {
    sbm::generate(&SbmConfig::community_benchmark(n, 4), seed)
}

#[test]
fn cluster_machine_hurts_cross_node_scaling() {
    // The §1 CAGNET observation must reproduce through the public API.
    let card = datasets::PRODUCTS;
    let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
    let epoch = |gpus: usize| {
        let machine = MachineSpec::a100_cluster(2, 25.0e9);
        let opts = TrainOptions::full(machine, gpus);
        let problem = Problem::from_stats(&card, &opts);
        Trainer::new(problem, cfg.clone(), opts)
            .expect("fits")
            .train_epoch()
            .expect("train")
            .sim_seconds
    };
    let one_node = epoch(8);
    let two_nodes = epoch(16);
    assert!(
        two_nodes > one_node,
        "crossing the NIC should hurt: 8 GPUs {one_node}, 16 GPUs {two_nodes}"
    );
}

#[test]
fn fit_reaches_good_accuracy_with_early_stop() {
    let g = graph(500, 3);
    let cfg = GcnConfig::new(g.features.cols(), &[24], g.classes);
    let opts = TrainOptions::quick(3);
    let problem = Problem::from_graph(&g, &cfg, &opts);
    let mut trainer = Trainer::new(problem, cfg, opts).expect("fits");
    let result = fit(
        &mut trainer,
        &FitOptions { target_accuracy: 0.9, max_epochs: 150, ..Default::default() },
    )
    .expect("fit");
    assert_eq!(result.stopped, StopReason::TargetReached);
    assert!(result.best_accuracy >= 0.9);
    assert!(result.sim_time > 0.0);
    // Time-to-accuracy is part of the §6 workflow.
    assert!(result.epochs_to(0.5).is_some());
}

#[test]
fn checkpoint_roundtrips_through_facade() {
    let g = graph(200, 5);
    let cfg = GcnConfig::new(g.features.cols(), &[12], g.classes);
    let opts = TrainOptions::quick(2);
    let problem = Problem::from_graph(&g, &cfg, &opts);
    let mut trainer = Trainer::new(problem, cfg, opts).expect("fits");
    trainer.train(4).expect("train");
    let path = std::env::temp_dir().join(format!("mggcn_ext_{}.ckpt", std::process::id()));
    Checkpoint::from_trainer(&trainer).save(&path).expect("save");
    let back = Checkpoint::load(&path).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(back.epoch, 4);
    back.restore_into(&mut trainer).expect("restore");
}

#[test]
fn gat_layer_outputs_are_finite_distributions() {
    let g = graph(150, 7);
    let layer = GatLayer::new(g.features.cols(), 8, 11);
    let (att, out) = layer.forward(&g.adj, &g.features);
    assert!(out.as_slice().iter().all(|x| x.is_finite()));
    for v in 0..g.n() {
        let s: f32 = att.row(v).map(|(_, a)| a).sum();
        assert!(s == 0.0 || (s - 1.0).abs() < 1e-4);
    }
}

#[test]
fn profile_and_trace_from_a_real_epoch() {
    let card = datasets::ARXIV;
    let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
    let opts = TrainOptions::full(MachineSpec::dgx_a100(), 4);
    let problem = Problem::from_stats(&card, &opts);
    let mut trainer = Trainer::new(problem, cfg, opts).expect("fits");
    let report = trainer.train_epoch().expect("train");
    let profile = Profile::from_timeline(&report.timeline, report.sim_seconds);
    assert!(profile.kernels.iter().any(|k| k.label == "spmm"));
    assert!(profile.utilization() > 0.0 && profile.utilization() <= 1.0);
    let json = trace::to_chrome_trace(&report.timeline);
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("bcast-H"));
}

#[test]
fn minibatch_and_fullbatch_both_learn_but_sampler_does_more_work() {
    let mut sbm_cfg = SbmConfig::community_benchmark(700, 3);
    sbm_cfg.intra_degree = 14.0;
    let g = sbm::generate(&sbm_cfg, 9);
    let cfg = GcnConfig::new(g.features.cols(), &[16], g.classes);

    let opts = TrainOptions::quick(2);
    let problem = Problem::from_graph(&g, &cfg, &opts);
    let mut full = Trainer::new(problem, cfg.clone(), opts).expect("fits");
    let full_acc = full.train(25).expect("train").pop().expect("trained").train_acc;

    let mb = MiniBatchConfig { batch_size: 32, fanouts: vec![10; cfg.layers()], seed: 1 };
    let mut mini = MiniBatchTrainer::new(&g, &cfg, mb);
    let mut last = mini.train_epoch();
    let mut touched = last.work_touched;
    for _ in 1..25 {
        last = mini.train_epoch();
        touched += last.work_touched;
    }
    assert!(full_acc > 0.7, "full-batch accuracy {full_acc}");
    assert!(last.train_acc > 0.6, "mini-batch accuracy {}", last.train_acc);
    assert!(
        touched / 25 > g.n(),
        "sampler work {} per epoch should exceed n {}",
        touched / 25,
        g.n()
    );
}

#[test]
fn sddmm_powers_attention_consistently_with_spmm() {
    // With uniform (zeroed) attention vectors, a GAT layer must equal the
    // mean-aggregation SpMM path — cross-crate consistency.
    let g = graph(100, 13);
    let mut layer = GatLayer::new(g.features.cols(), 6, 17);
    layer.a_src.fill(0.0);
    layer.a_dst.fill(0.0);
    let (_, out) = layer.forward(&g.adj, &g.features);

    let norm = g.adj.normalize_rows();
    let mut hw = mg_gcn::dense::Dense::zeros(g.n(), 6);
    mg_gcn::dense::gemm(&g.features, &layer.w, &mut hw, mg_gcn::dense::Accumulate::Overwrite);
    let mut plain = mg_gcn::dense::Dense::zeros(g.n(), 6);
    mg_gcn::sparse::spmm(&norm, &hw, &mut plain, mg_gcn::dense::Accumulate::Overwrite);
    assert!(out.max_abs_diff(&plain) < 1e-4);
}
