//! Workspace-level integration tests: exercise the public facade the way a
//! downstream user would, spanning graph generation → partitioning →
//! distributed training → reporting, plus the full baseline comparison
//! path on paper-scale stat cards.

use mg_gcn::baselines::{cagnet, dgl, distgnn, mlp::MlpTrainer};
use mg_gcn::prelude::*;

fn community_graph(n: usize, seed: u64) -> Graph {
    sbm::generate(&SbmConfig::community_benchmark(n, 4), seed)
}

#[test]
fn facade_quickstart_path_works() {
    let graph = community_graph(300, 1);
    let cfg = GcnConfig::new(graph.features.cols(), &[16], graph.classes);
    let opts = TrainOptions::quick(2);
    let problem = Problem::from_graph(&graph, &cfg, &opts);
    let mut trainer = Trainer::new(problem, cfg, opts).expect("fits");
    let reports = trainer.train(10).expect("train");
    assert_eq!(reports.len(), 10);
    // Everything is seeded, so the loss trajectory is a fixed curve. Pin
    // it value-by-value: a partitioning or kernel regression shows up as
    // a shifted curve long before it flips the old "loss decreased" check.
    // The tolerance absorbs libm differences across platforms (exp/ln are
    // not bit-specified), which perturb the f32 math at ~1e-7 per op; 5e-3
    // relative after 10 epochs is comfortably above that and far below any
    // real defect.
    let expect = [
        181.827903, 164.415918, 148.528849, 133.958771, 120.570031, 108.171105, 96.626152,
        85.899246, 75.994066, 66.872723,
    ];
    for (e, (r, want)) in reports.iter().zip(expect).enumerate() {
        let rel = (r.loss - want).abs() / want;
        assert!(
            rel < 5e-3,
            "epoch {e}: loss {} drifted from seeded trajectory {want} (rel {rel:.2e})",
            r.loss
        );
    }
    let last = reports.last().expect("ten epochs");
    assert!(last.train_acc > 0.8, "seeded run ends at 0.8559 train acc, got {}", last.train_acc);
    assert!(reports.iter().all(|r| r.sim_seconds > 0.0));
}

#[test]
fn gcn_beats_mlp_on_noisy_communities() {
    let mut sbm_cfg = SbmConfig::community_benchmark(800, 4);
    sbm_cfg.noise = 2.5;
    let graph = sbm::generate(&sbm_cfg, 2);
    let cfg = GcnConfig::new(graph.features.cols(), &[24], graph.classes);

    let opts = TrainOptions::quick(4);
    let problem = Problem::from_graph(&graph, &cfg, &opts);
    let mut gcn = Trainer::new(problem, cfg.clone(), opts).expect("fits");
    let gcn_acc = gcn.train(60).expect("train").last().expect("trained").test_acc;

    let mut mlp = MlpTrainer::new(&graph, &cfg);
    let mlp_acc = mlp.train(60).test_acc;

    assert!(gcn_acc > mlp_acc + 0.05, "GCN {gcn_acc:.3} should beat MLP {mlp_acc:.3}");
}

#[test]
fn every_figure_dataset_runs_on_both_machines() {
    for card in mg_gcn::graph::datasets::FIGURE_DATASETS {
        let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
        for machine in [MachineSpec::dgx_v100(), MachineSpec::dgx_a100()] {
            let mut any_ran = false;
            for gpus in [1usize, 2, 4, 8] {
                let opts = TrainOptions::full(machine.clone(), gpus);
                let problem = Problem::from_stats(&card, &opts);
                if let Ok(mut t) = Trainer::new(problem, cfg.clone(), opts) {
                    let r = t.train_epoch().expect("train");
                    assert!(r.sim_seconds > 0.0, "{} on {}", card.name, machine.name);
                    any_ran = true;
                }
            }
            assert!(any_ran, "{} should fit somewhere on {}", card.name, machine.name);
        }
    }
}

#[test]
fn full_comparison_matrix_is_sane() {
    // On every dataset both baselines (where they fit) are slower than
    // MG-GCN at the same GPU count — the paper's headline claim.
    let m = MachineSpec::dgx_v100;
    for card in [
        mg_gcn::graph::datasets::ARXIV,
        mg_gcn::graph::datasets::PRODUCTS,
        mg_gcn::graph::datasets::REDDIT,
    ] {
        let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
        // DGL at 1 GPU.
        let opts = dgl::options(m(), &cfg);
        let problem = Problem::from_stats(&card, &opts);
        let t_dgl = Trainer::new(problem, cfg.clone(), opts)
            .expect("dgl fits")
            .train_epoch()
            .expect("train")
            .sim_seconds;
        let opts = TrainOptions::full(m(), 1);
        let problem = Problem::from_stats(&card, &opts);
        let t_mg1 = Trainer::new(problem, cfg.clone(), opts)
            .expect("mg fits")
            .train_epoch()
            .expect("train")
            .sim_seconds;
        assert!(t_mg1 < t_dgl, "{}: MG-GCN {t_mg1} vs DGL {t_dgl}", card.name);

        // CAGNET at 8 GPUs.
        let opts = cagnet::options(m(), 8);
        let problem = Problem::from_stats(&card, &opts);
        let t_cag = Trainer::new(problem, cfg.clone(), opts)
            .expect("cagnet fits")
            .train_epoch()
            .expect("train")
            .sim_seconds;
        let opts = TrainOptions::full(m(), 8);
        let problem = Problem::from_stats(&card, &opts);
        let t_mg8 = Trainer::new(problem, cfg.clone(), opts)
            .expect("mg fits")
            .train_epoch()
            .expect("train")
            .sim_seconds;
        assert!(t_mg8 < t_cag, "{}: MG-GCN {t_mg8} vs CAGNET {t_cag}", card.name);
    }
}

#[test]
fn distgnn_headline_ratios_hold() {
    // §6.6: MG-GCN at 8 A100s vs DistGNN's best published numbers —
    // 40× Reddit, 12.4× Products, 1.77× Proteins (ours should be the same
    // order of magnitude and always a win).
    let cases = [
        ("Reddit", mg_gcn::graph::datasets::REDDIT, GcnConfig::model_b(602, 41), 40.0),
        ("Products", mg_gcn::graph::datasets::PRODUCTS, GcnConfig::model_c(104, 47), 12.4),
        ("Proteins", mg_gcn::graph::datasets::PROTEINS, GcnConfig::model_c(128, 256), 1.77),
    ];
    for (name, card, cfg, paper_ratio) in cases {
        let (_, t_dist) = distgnn::best_published(name).expect("published");
        let opts = TrainOptions::full(MachineSpec::dgx_a100(), 8);
        let problem = Problem::from_stats(&card, &opts);
        let t_mg = Trainer::new(problem, cfg, opts)
            .expect("fits")
            .train_epoch()
            .expect("train")
            .sim_seconds;
        let ratio = t_dist / t_mg;
        assert!(ratio > 1.0, "{name}: MG-GCN must win ({ratio:.1})");
        // Our virtual machine has a lower per-epoch host floor than the
        // paper's testbed, so tiny-model ratios run high (see
        // EXPERIMENTS.md); bound loosely but require the same order.
        assert!(
            ratio > paper_ratio / 5.0 && ratio < paper_ratio * 12.0,
            "{name}: ratio {ratio:.1} vs paper {paper_ratio}"
        );
    }
}

#[test]
fn io_roundtrip_through_training() {
    // Write a generated graph to disk, read it back, train on it.
    let graph = community_graph(150, 3);
    let path = std::env::temp_dir().join(format!("mggcn_e2e_{}.el", std::process::id()));
    mg_gcn::graph::io::write_edge_list(&path, &graph.adj).expect("write");
    let adj = mg_gcn::graph::io::read_edge_list(&path, Some(graph.n())).expect("read");
    std::fs::remove_file(&path).ok();
    assert_eq!(adj, graph.adj);
    let rebuilt = Graph::new(
        adj,
        graph.features.clone(),
        graph.labels.clone(),
        graph.classes,
        graph.split.clone(),
    );
    let cfg = GcnConfig::new(rebuilt.features.cols(), &[8], rebuilt.classes);
    let opts = TrainOptions::quick(3);
    let problem = Problem::from_graph(&rebuilt, &cfg, &opts);
    let mut trainer = Trainer::new(problem, cfg, opts).expect("fits");
    assert!(trainer.train_epoch().expect("train").loss.is_finite());
}

#[test]
fn reproducibility_across_runs() {
    // The same seed must give bit-identical losses, twice.
    let run = || {
        let graph = community_graph(200, 9);
        let cfg = GcnConfig::new(graph.features.cols(), &[12], graph.classes);
        let opts = TrainOptions::quick(3);
        let problem = Problem::from_graph(&graph, &cfg, &opts);
        let mut trainer = Trainer::new(problem, cfg, opts).expect("fits");
        trainer.train(5).expect("train").into_iter().map(|r| r.loss).collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
