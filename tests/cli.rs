//! Smoke tests for the `mggcn` CLI binary — the interface most downstream
//! users touch first.

use std::process::Command;

fn mggcn() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mggcn"))
}

#[test]
fn datasets_lists_table1() {
    let out = mggcn().arg("datasets").output().expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["Cora", "Arxiv", "Papers", "Products", "Proteins", "Reddit"] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn simulate_reports_epoch_and_breakdown() {
    let out = mggcn()
        .args(["simulate", "--dataset", "Arxiv", "--machine", "v100", "--gpus", "4"])
        .output()
        .expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Arxiv on DGX-V100 x4"), "{text}");
    assert!(text.contains("SpMM"), "{text}");
}

#[test]
fn simulate_profile_and_trace() {
    let trace = std::env::temp_dir().join(format!("mggcn_cli_{}.json", std::process::id()));
    let out = mggcn()
        .args([
            "simulate",
            "--dataset",
            "Reddit",
            "--gpus",
            "8",
            "--profile",
            "--trace",
            trace.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("utilization"), "{text}");
    let json = std::fs::read_to_string(&trace).expect("trace written");
    std::fs::remove_file(&trace).ok();
    assert!(json.contains("traceEvents"));
}

#[test]
fn simulate_reports_oom_gracefully() {
    let out = mggcn()
        .args(["simulate", "--dataset", "Papers", "--machine", "v100", "--gpus", "2"])
        .output()
        .expect("run");
    assert!(out.status.success(), "OOM is a report, not a crash");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("out of memory"), "{text}");
}

#[test]
fn train_and_checkpoint() {
    let ckpt = std::env::temp_dir().join(format!("mggcn_cli_{}.ckpt", std::process::id()));
    let out = mggcn()
        .args([
            "train",
            "--vertices",
            "300",
            "--gpus",
            "2",
            "--epochs",
            "8",
            "--checkpoint",
            ckpt.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("final test accuracy"), "{text}");
    assert!(ckpt.exists(), "checkpoint file written");
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn memory_shows_fit_matrix() {
    let out = mggcn()
        .args(["memory", "--dataset", "Proteins", "--hidden", "512", "--layers", "2"])
        .output()
        .expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("GiB"), "{text}");
    assert!(text.contains("OOM"), "Proteins at 1 GPU should be OOM:\n{text}");
}

#[test]
fn train_on_the_threaded_backend_reports_wall_time() {
    let out = mggcn()
        .args(["train", "--vertices", "250", "--gpus", "2", "--epochs", "3"])
        .args(["--backend", "threaded", "--threads", "2"])
        .output()
        .expect("run");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("backend threaded"), "{text}");
    assert!(text.contains("wall ms"), "threaded epochs must report wall time:\n{text}");
}

#[test]
fn train_rejects_unknown_backend() {
    let out =
        mggcn().args(["train", "--vertices", "200", "--backend", "quantum"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown backend"), "{err}");
}

#[test]
fn bench_exec_writes_schema_complete_json() {
    let path = std::env::temp_dir().join(format!("mggcn_cli_bench_{}.json", std::process::id()));
    let out = mggcn()
        .args(["bench-exec", "--gpus", "2", "--vertices", "400", "--hidden", "16"])
        .args(["--epochs", "3", "--threads", "1,2", "--out", path.to_str().expect("utf8 path")])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let json = std::fs::read_to_string(&path).expect("BENCH_exec.json written");
    std::fs::remove_file(&path).ok();
    for key in [
        "\"bench\":\"exec\"",
        "\"backend\":\"threaded\"",
        "\"pool_size\":",
        "\"gpus\":2",
        "\"results\":[",
        "\"threads\":1",
        "\"threads\":2",
        "\"epoch_ms_p50\":",
        "\"speedup\":",
        "\"category_ms\":",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = mggcn().arg("bogus").output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "{err}");
}

#[test]
fn train_resume_roundtrip() {
    let ckpt = std::env::temp_dir().join(format!("mggcn_cli_resume_{}.ckpt", std::process::id()));
    let args_base = ["train", "--vertices", "250", "--gpus", "2", "--epochs", "5"];
    let out = mggcn()
        .args(args_base)
        .args(["--checkpoint", ckpt.to_str().expect("utf8 path")])
        .output()
        .expect("run");
    assert!(out.status.success());
    // Resume from the checkpoint and train further.
    let out = mggcn()
        .args(args_base)
        .args(["--resume", ckpt.to_str().expect("utf8 path")])
        .output()
        .expect("run");
    std::fs::remove_file(&ckpt).ok();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("resumed from"), "{text}");
}

#[test]
fn train_resume_from_garbage_fails_cleanly() {
    let bad = std::env::temp_dir().join(format!("mggcn_cli_bad_{}.ckpt", std::process::id()));
    std::fs::write(&bad, b"definitely not a checkpoint").expect("write");
    let out = mggcn()
        .args(["train", "--vertices", "200", "--gpus", "2", "--epochs", "2"])
        .args(["--resume", bad.to_str().expect("utf8 path")])
        .output()
        .expect("run");
    std::fs::remove_file(&bad).ok();
    assert!(!out.status.success(), "bad checkpoint must be an error");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("resume failed"), "{err}");
}

#[test]
fn analyze_dump_prints_the_annotated_op_stream() {
    let out = mggcn()
        .args(["analyze", "--gpus", "1", "--vertices", "300", "--hidden", "8", "--dump"])
        .output()
        .expect("run");
    assert!(out.status.success(), "clean schedules must exit 0");
    let text = String::from_utf8_lossy(&out.stdout);

    // The dump is the effect-annotated op stream `mggcn-analyze` verifies:
    // one line per op with kind, category, lane placement, wait edges and
    // declared read/write sets.
    assert!(text.contains("op   0 "), "ops are numbered from 0:\n{text}");
    let op_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("op ")).collect();
    assert!(op_lines.len() >= 10, "a 2-layer epoch dumps many ops:\n{text}");
    for l in &op_lines {
        assert!(l.contains("lanes=[g"), "op line lost lane placement: {l}");
    }
    // Trainer ops declare their effect sets (serving extraction ops may
    // not); the bulk of the stream must carry them.
    let annotated = op_lines.iter().filter(|l| l.contains("R[") && l.contains("W[")).count();
    assert!(annotated >= 10, "only {annotated} op lines carry R[..] W[..] sets:\n{text}");
    // Dependency edges and both work kinds appear somewhere in the stream.
    assert!(op_lines.iter().any(|l| l.contains("waits=[")), "no wait edges:\n{text}");
    assert!(op_lines.iter().any(|l| l.contains(" compute ")), "no compute ops:\n{text}");
    assert!(op_lines.iter().any(|l| l.contains(" Comm ")), "no comm ops:\n{text}");
}
