//! # MG-GCN in Rust
//!
//! A full reproduction of *"MG-GCN: A Scalable multi-GPU GCN Training
//! Framework"* (Balın, Sancak, Çatalyürek — ICPP 2022) as a Rust workspace.
//!
//! The original system trains full-batch Graph Convolutional Networks
//! across the GPUs of a DGX node with three ingredients: a 1D-row
//! partitioned, broadcast-staged distributed SpMM; aggressive buffer reuse
//! (`L + 3` large buffers for an `L`-layer model); and communication/
//! computation overlap on two CUDA streams. This crate reproduces all of
//! it on a *virtual* multi-GPU machine: schedules are identical, kernels
//! compute real numerics on the CPU, and a calibrated discrete-event model
//! provides DGX-V100/DGX-A100 timing for the paper's every figure and
//! table.
//!
//! ## Crate map
//!
//! | module | re-export of | contents |
//! |---|---|---|
//! | [`dense`] | `mggcn-dense` | row-major matrices, parallel GeMM, elementwise kernels |
//! | [`sparse`] | `mggcn-sparse` | CSR/COO, normalization, 2D tiling, parallel SpMM |
//! | [`graph`] | `mggcn-graph` | dataset cards, BTER/Chung–Lu/SBM generators, permutation, IO |
//! | [`gpusim`] | `mggcn-gpusim` | machine specs, memory tracking, streams/events, DES engine |
//! | [`analyze`] | `mggcn-analyze` | static schedule verification: hazards, deadlock-freedom, liveness coloring |
//! | [`comm`] | `mggcn-comm` | NCCL-like collectives, §5.1 1D-vs-1.5D analysis |
//! | [`core`] | `mggcn-core` | the trainer: staged SpMM, buffer reuse, overlap, Adam, loss |
//! | [`baselines`] | `mggcn-baselines` | DGL-like, CAGNET-like, DistGNN model, MLP |
//! | [`serve`] | `mggcn-serve` | online inference: propagation cache, micro-batching, latency stats |
//! | [`cluster`] | `mggcn-cluster` | sharded serving tier: consistent-hash routing, cache-aware partitioning, admission control, load shedding |
//! | [`exec`] | `mggcn-exec` | real execution: worker-per-GPU runtime, deterministic kernel pool, wall-clock profiling |
//! | [`trace`] | `mggcn-trace` | observability: structured spans, metrics registry, Chrome-trace export, derived overlap/memory metrics |
//! | [`topo`] | `mggcn-topo` | hierarchical multi-node studies: §5.1 1D/1.5D crossover, NIC sweeps, `BENCH_topo.json` |
//!
//! ## Quick start
//!
//! ```
//! use mg_gcn::prelude::*;
//!
//! // A community graph with known ground truth, 4 virtual GPUs.
//! let graph = sbm::generate(&SbmConfig::community_benchmark(400, 4), 7);
//! let cfg = GcnConfig::new(graph.features.cols(), &[32], graph.classes);
//! let opts = TrainOptions::quick(4);
//! let problem = Problem::from_graph(&graph, &cfg, &opts);
//! let mut trainer = Trainer::new(problem, cfg, opts).unwrap();
//! for _ in 0..5 {
//!     let report = trainer.train_epoch().unwrap();
//!     assert!(report.loss.is_finite());
//! }
//! ```
//!
//! To really execute epochs on worker-per-GPU threads (bit-identical
//! numerics, measured wall-clock in `report.measured`), select the
//! threaded backend: `opts.backend = Backend::Threaded;`.

#![forbid(unsafe_code)]

pub use mggcn_analyze as analyze;
pub use mggcn_baselines as baselines;
pub use mggcn_cluster as cluster;
pub use mggcn_comm as comm;
pub use mggcn_core as core;
pub use mggcn_dense as dense;
pub use mggcn_exec as exec;
pub use mggcn_gpusim as gpusim;
pub use mggcn_graph as graph;
pub use mggcn_serve as serve;
pub use mggcn_sparse as sparse;
pub use mggcn_topo as topo;
pub use mggcn_trace as trace;

/// The names most programs need.
pub mod prelude {
    pub use mggcn_cluster::{AdmissionPolicy, Cluster, ClusterConfig, PartitionPlan};
    pub use mggcn_core::config::{GcnConfig, Partition, TrainOptions};
    pub use mggcn_core::memplan::{max_layers, BufferPolicy, MemoryPlan};
    pub use mggcn_core::metrics::EpochReport;
    pub use mggcn_core::problem::Problem;
    pub use mggcn_core::trainer::TrainError;
    pub use mggcn_core::trainer::Trainer;
    pub use mggcn_exec::Backend;
    pub use mggcn_gpusim::{Category, MachineSpec};
    pub use mggcn_graph::datasets;
    pub use mggcn_graph::generators::sbm::{self, SbmConfig};
    pub use mggcn_graph::Graph;
    pub use mggcn_serve::{BatchPolicy, LoadGenConfig, ServeConfig, Server, ServingModel};
    pub use mggcn_trace::Tracer;
}
