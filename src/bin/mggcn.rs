//! `mggcn` — command-line front end for the MG-GCN reproduction.
//!
//! ```text
//! mggcn train    [--gpus N] [--epochs E] [--hidden H] [--vertices V]
//!                [--no-overlap] [--no-permute] [--checkpoint PATH]
//!                [--resume PATH] [--backend simulated|threaded] [--threads T]
//!                [--partition 1d|1.5d] [--nodes N] [--nic GBPS]
//!                [--trace PATH.json]
//! mggcn simulate --dataset NAME [--machine v100|a100] [--gpus N]
//!                [--model a|b|c|d] [--profile] [--trace PATH.json]
//! mggcn memory   --dataset NAME [--hidden H] [--layers L]
//! mggcn datasets
//! mggcn serve-bench [--qps Q] [--batch-window S] [--max-batch B] [--cache-mb MB]
//!                   [--requests N] [--vertices V] [--gpus N] [--epochs E] [--seed S]
//!                   [--trace PATH.json]
//! mggcn serve-bench --check PATH.json
//! mggcn cluster-bench [--shards P] [--gpus-per-shard G] [--qps-mult M]
//!                     [--requests N] [--vertices V] [--epochs E] [--seed S]
//!                     [--slo-ms MS] [--max-degraded R] [--batch-window S]
//!                     [--max-batch B] [--cache-mb MB]
//!                     [--backend simulated|threaded] [--threads T]
//!                     [--out BENCH_cluster.json] [--trace PATH.json]
//! mggcn cluster-bench --check PATH.json
//! mggcn bench-exec  [--gpus P] [--vertices V] [--hidden H] [--epochs E]
//!                   [--threads LIST] [--out PATH]
//! mggcn trace    [--gpus N] [--vertices V] [--hidden H] [--epochs E]
//!                [--backend simulated|threaded] [--threads T]
//!                [--out BENCH_trace.json] [--chrome PATH.json]
//! mggcn trace    --check PATH.json
//! mggcn analyze  [--gpus N] [--vertices V] [--hidden H] [--dump]
//!                [--audit-effects] [--model-check] [--json] [--out PATH]
//! mggcn analyze  --dataset NAME [--machine v100|a100] [--gpus N] [--model a|b|c|d]
//!                [--partition 1d|1.5d] [--dump] [--json] [--out PATH]
//! mggcn topo-bench [--out BENCH_topo.json]
//! mggcn topo-bench --check PATH.json
//! ```
//!
//! `train` runs real full-batch training on a generated community graph;
//! `simulate` runs the paper-scale timing model on a Table 1 dataset card;
//! `serve-bench` trains a small model, freezes it into a serving replica
//! set, and replays a seeded open-loop trace under three configurations
//! (unbatched, micro-batched cold-cache, micro-batched warm-cache),
//! printing a JSON report with p50/p95/p99 latency for each.
//! `bench-exec` really executes epochs on the threaded backend at each
//! kernel-pool width in `--threads` and writes measured wall-clock epoch
//! times and speedups to `BENCH_exec.json`.
//! `cluster-bench` shards that serving replica set `--shards` ways behind a
//! cache-aware partitioner and a consistent-hash router, calibrates the
//! cluster's saturation throughput, then drives it at `--qps-mult` times
//! capacity with bounded admission: admitted requests must meet the
//! `--slo-ms` p99 and shed requests get tagged degraded answers whose rate
//! must stay under `--max-degraded`. It writes + schema-validates
//! `BENCH_cluster.json` and exits nonzero on any violated bound, making it
//! a CI gate; `--check PATH` validates an existing artifact offline.
//! `trace` runs a small traced training job, checks the recorded broadcast
//! byte counters against the §5.1 closed form and the per-GPU memory
//! high-watermark against the §4.2 `L + 3` plan, then writes + validates
//! `BENCH_trace.json` (and optionally a Chrome trace); it exits nonzero
//! if a check fails, making it a CI gate. `--check PATH` validates an
//! existing trace artifact (either kind, auto-detected) without running.
//! `analyze` statically verifies recorded schedules — data-hazard freedom,
//! deadlock freedom, and the partition's liveness budget (§4.2 `L + 3`
//! for 1D, `L + 4` for 1.5D) — across a P ∈ {1,2,4,8} × partition ×
//! op-order × overlap sweep plus a serving batch schedule (or one
//! paper-scale dataset schedule with `--dataset`); it exits nonzero on
//! any finding, and `--dump` prints the annotated op stream.
//! `--audit-effects` shadow-executes each materialized schedule's op
//! bodies and fails on any access the declarations miss;
//! `--model-check` DPOR-explores every HB-distinct linearization of
//! small P ∈ {1,2,3} schedules and requires bit-identical final
//! weights; `--json` (with optional `--out PATH`) emits the byte-stable
//! `mggcn-analyze-v1` machine-readable report.
//! `topo-bench` runs the §5.1 hierarchical-machine study — closed-form
//! and DES 1D-vs-1.5D verdicts on DGX-1 and DGX-A100, a split-quad NIC
//! sweep pinning the crossover bandwidth, a papers100M-scale end-to-end
//! epoch sweep on two A100 quads, a traced intra-/inter-node byte split
//! on a 2-node machine, and an analyze preflight over every generated
//! schedule — then writes + schema-validates `BENCH_topo.json`, exiting
//! nonzero if any verdict fails. `--check PATH` validates an existing
//! artifact offline.

use mg_gcn::core::checkpoint::Checkpoint;
use mg_gcn::gpusim::Profile;
use mg_gcn::prelude::*;
use std::collections::HashMap;
use std::process::exit;
use std::time::Instant;

fn parse_flags(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let takes_value = i + 1 < args.len() && !args[i + 1].starts_with("--");
            if takes_value {
                flags.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            }
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    (positional, flags)
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  mggcn train    [--gpus N] [--epochs E] [--hidden H] [--vertices V]\n                 [--no-overlap] [--no-permute] [--checkpoint PATH] [--resume PATH]\n                 [--backend simulated|threaded] [--threads T] [--trace PATH]\n                 [--partition 1d|1.5d] [--nodes N] [--nic GBPS] [--staleness K]\n  mggcn simulate --dataset NAME [--machine v100|a100] [--gpus N] [--model a|b|c|d] [--profile] [--trace PATH]\n  mggcn memory   --dataset NAME [--hidden H] [--layers L]\n  mggcn datasets\n  mggcn serve-bench [--qps Q] [--batch-window S] [--max-batch B] [--cache-mb MB]\n                    [--requests N] [--vertices V] [--gpus N] [--epochs E] [--seed S] [--trace PATH]\n  mggcn serve-bench --check PATH\n  mggcn cluster-bench [--shards P] [--gpus-per-shard G] [--qps-mult M] [--requests N]\n                      [--vertices V] [--epochs E] [--seed S] [--slo-ms MS] [--max-degraded R]\n                      [--batch-window S] [--max-batch B] [--cache-mb MB]\n                      [--backend simulated|threaded] [--threads T] [--out PATH] [--trace PATH]\n  mggcn cluster-bench --check PATH\n  mggcn bench-exec  [--gpus P] [--vertices V] [--hidden H] [--epochs E] [--threads LIST]\n                    [--staleness LIST] [--nic GBPS] [--out PATH]\n  mggcn bench-exec  --check PATH\n  mggcn trace    [--gpus N] [--vertices V] [--hidden H] [--epochs E]\n                 [--backend simulated|threaded] [--threads T] [--out PATH] [--chrome PATH]\n  mggcn trace    --check PATH\n  mggcn analyze  [--gpus N] [--vertices V] [--hidden H] [--dump]\n                 [--audit-effects] [--model-check] [--json] [--out PATH]\n  mggcn analyze  --dataset NAME [--machine v100|a100] [--gpus N] [--model a|b|c|d]\n                 [--partition 1d|1.5d] [--dump] [--json] [--out PATH]\n  mggcn topo-bench [--out BENCH_topo.json]\n  mggcn topo-bench --check PATH"
    );
    exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let (_, flags) = parse_flags(&args[1..]);
    match cmd.as_str() {
        "train" => cmd_train(&flags),
        "simulate" => cmd_simulate(&flags),
        "memory" => cmd_memory(&flags),
        "datasets" => cmd_datasets(),
        "serve-bench" => cmd_serve_bench(&flags),
        "cluster-bench" => cmd_cluster_bench(&flags),
        "bench-exec" => cmd_bench_exec(&flags),
        "trace" => cmd_trace(&flags),
        "analyze" => cmd_analyze(&flags),
        "topo-bench" => cmd_topo_bench(&flags),
        _ => usage(),
    }
}

/// Pin the kernel-pool size (must run before any parallel kernel).
fn set_pool_threads(n: usize) {
    if mg_gcn::exec::pool_size() != n {
        eprintln!(
            "note: kernel pool was already initialized with {} thread(s); \
             capping the active count at {n} instead",
            mg_gcn::exec::pool_size()
        );
    }
    mg_gcn::exec::set_active_threads(n);
}

fn cmd_train(flags: &HashMap<String, String>) {
    let gpus: usize = get(flags, "gpus", 4);
    let epochs: usize = get(flags, "epochs", 40);
    let hidden: usize = get(flags, "hidden", 32);
    let vertices: usize = get(flags, "vertices", 2000);
    let backend = match flags.get("backend").map(String::as_str) {
        None => Backend::Simulated,
        Some(name) => Backend::parse(name).unwrap_or_else(|| {
            eprintln!("unknown backend {name:?} (expected simulated or threaded)");
            exit(2)
        }),
    };
    if let Some(t) = flags.get("threads") {
        let Ok(t) = t.parse::<usize>() else {
            eprintln!("--threads expects a positive integer");
            exit(2)
        };
        std::env::set_var("MGGCN_THREADS", t.to_string());
        set_pool_threads(t);
    }
    let partition = match flags.get("partition").map(String::as_str) {
        None => Partition::OneD,
        Some(s) => Partition::parse(s).unwrap_or_else(|| {
            eprintln!("unknown partition {s:?} (expected 1d or 1.5d)");
            exit(2)
        }),
    };
    let nodes: usize = get(flags, "nodes", 1);
    let graph = sbm::generate(&SbmConfig::community_benchmark(vertices, 5), 42);
    let cfg = GcnConfig::new(graph.features.cols(), &[hidden], graph.classes);
    let mut opts = if nodes > 1 {
        // A hierarchical cluster of A100 nodes: gpus must split evenly
        // across nodes so the 1.5D replication groups stay node-aligned.
        if !gpus.is_multiple_of(nodes) {
            eprintln!("--gpus ({gpus}) must be a multiple of --nodes ({nodes})");
            exit(2)
        }
        let nic_gbps: f64 = get(flags, "nic", 50.0);
        let machine = mg_gcn::gpusim::MachineSpec::hier_cluster(
            &format!("A100-{nodes}x{}", gpus / nodes),
            mg_gcn::gpusim::GpuSpec::a100(),
            nodes,
            gpus / nodes,
            12,
            25.0e9,
            nic_gbps * 1e9,
        );
        let mut o = TrainOptions::full(machine, gpus);
        // Exact gradients, matching `quick`'s single-node defaults.
        o.skip_first_backward_spmm = false;
        o
    } else {
        TrainOptions::quick(gpus)
    };
    opts.partition = partition;
    opts.overlap = !flags.contains_key("no-overlap");
    opts.permute = !flags.contains_key("no-permute");
    opts.backend = backend;
    // Bounded-staleness pipelining (DESIGN §15): epoch e+1's broadcasts
    // prefetch k-epoch-old snapshots during epoch e's backward pass.
    opts.staleness = get(flags, "staleness", 0);
    let staleness = opts.staleness;
    let opts_machine_name = opts.machine.name.clone();
    let problem = Problem::from_graph(&graph, &cfg, &opts);
    let mut trainer = match Trainer::new(problem, cfg, opts) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    };
    if let Some(path) = flags.get("resume") {
        match Checkpoint::load(std::path::Path::new(path))
            .and_then(|ck| ck.restore_into(&mut trainer).map(|()| ck.epoch))
        {
            Ok(epoch) => println!("resumed from {path} at epoch {epoch}"),
            Err(e) => {
                eprintln!("resume failed: {e}");
                exit(1);
            }
        }
    }
    let tracer = flags.get("trace").map(|_| std::sync::Arc::new(mg_gcn::trace::Tracer::new()));
    if let Some(t) = &tracer {
        trainer.set_tracer(t.clone());
    }
    let stale_note = if staleness > 0 {
        format!(", staleness {staleness} (fused cross-epoch pipeline)")
    } else {
        String::new()
    };
    println!(
        "training: {} vertices, {} edges, {} GPUs on {}, {} partition, hidden {}, backend {}{}",
        graph.n(),
        graph.adj.nnz(),
        gpus,
        opts_machine_name,
        partition.name(),
        hidden,
        backend.name(),
        stale_note
    );
    let mut last_report = None;
    if staleness > 0 {
        // Fused multi-epoch dispatch: the whole run is one schedule, so
        // epoch e+1's prefetch broadcasts really overlap epoch e.
        let reports = match trainer.train(epochs) {
            Ok(rs) => rs,
            Err(err) => {
                eprintln!("pipelined training failed: {err}");
                exit(1);
            }
        };
        for r in reports {
            if r.epoch % 10 == 0 || r.epoch + 1 == epochs {
                print_train_epoch(&r);
            }
            last_report = Some(r);
        }
    } else {
        for e in 0..epochs {
            let r = match trainer.train_epoch() {
                Ok(r) => r,
                Err(err) => {
                    eprintln!("epoch {e} failed: {err}");
                    exit(1);
                }
            };
            if e % 10 == 0 || e + 1 == epochs {
                print_train_epoch(&r);
            }
            last_report = Some(r);
        }
    }
    if let Some(path) = flags.get("checkpoint") {
        let ck = Checkpoint::from_trainer(&trainer);
        match ck.save(std::path::Path::new(path)) {
            Ok(()) => println!("checkpoint written to {path}"),
            Err(e) => eprintln!("checkpoint failed: {e}"),
        }
    }
    if let (Some(path), Some(tracer)) = (flags.get("trace"), &tracer) {
        trace_verdicts(tracer, &trainer.expected_broadcast_bytes(), epochs);
        match tracer.write_chrome_trace(std::path::Path::new(path), true) {
            Ok(()) => println!("chrome trace written to {path} (open in chrome://tracing)"),
            Err(e) => eprintln!("trace failed: {e}"),
        }
    }
    if let Some(r) = last_report {
        println!("final test accuracy: {:.1}%", r.test_acc * 100.0);
    }
}

fn print_train_epoch(r: &mg_gcn::core::metrics::EpochReport) {
    let wall = r
        .measured
        .as_ref()
        .map(|m| format!(", {:.2} wall ms", m.wall_seconds * 1e3))
        .unwrap_or_default();
    println!(
        "epoch {:>4}  loss {:>9.4}  train {:>5.1}%  test {:>5.1}%  ({:.2} sim ms{wall})",
        r.epoch,
        r.loss,
        r.train_acc * 100.0,
        r.test_acc * 100.0,
        r.sim_seconds * 1e3
    );
}

/// Print the two trace verdicts — traced broadcast bytes vs the §5.1
/// closed form, and per-GPU high-watermark vs the §4.2 `L + 3` plan —
/// and return whether both hold.
fn trace_verdicts(
    tracer: &mg_gcn::trace::Tracer,
    expected_per_epoch: &[u64],
    epochs: usize,
) -> bool {
    let expected: Vec<u64> = expected_per_epoch.iter().map(|&b| b * epochs as u64).collect();
    let traced = tracer.broadcast_stage_bytes();
    let bytes_ok = traced == expected;
    if bytes_ok {
        let total: u64 = traced.iter().sum();
        println!(
            "trace: broadcast bytes match closed form exactly \
             ({} stages, {total} bytes over {epochs} epoch(s))",
            traced.len()
        );
    } else {
        eprintln!("trace: broadcast byte MISMATCH: traced {traced:?} vs closed form {expected:?}");
    }
    let mem_ok = tracer.memory_bound_ok();
    match mem_ok {
        Some(true) => {
            let peak =
                tracer.memory_high_watermarks().into_iter().map(|(_, b)| b).max().unwrap_or(0);
            let bound = tracer.gauge("mem.plan.big_buffers_bytes").unwrap_or(0.0);
            println!(
                "trace: per-GPU high-watermark {:.2} MiB within L+3 plan {:.2} MiB",
                peak as f64 / (1 << 20) as f64,
                bound / (1 << 20) as f64
            );
        }
        Some(false) => eprintln!(
            "trace: memory high-watermark EXCEEDS the L+3 plan: {:?} vs bound {:?}",
            tracer.memory_high_watermarks(),
            tracer.gauge("mem.plan.big_buffers_bytes")
        ),
        None => println!("trace: no memory watermarks recorded"),
    }
    bytes_ok && mem_ok != Some(false)
}

fn model_for(name: &str, card: &datasets::DatasetCard) -> GcnConfig {
    match name {
        "a" => GcnConfig::model_a(card.feat_dim, card.classes),
        "b" => GcnConfig::model_b(card.feat_dim, card.classes),
        "c" => GcnConfig::model_c(card.feat_dim, card.classes),
        "d" => GcnConfig::model_d(card.feat_dim, card.classes),
        other => {
            eprintln!("unknown model {other:?} (expected a, b, c or d)");
            exit(2)
        }
    }
}

fn cmd_simulate(flags: &HashMap<String, String>) {
    let name = flags.get("dataset").cloned().unwrap_or_else(|| usage());
    let Some(card) = datasets::by_name(&name) else {
        eprintln!("unknown dataset {name:?}; try `mggcn datasets`");
        exit(1)
    };
    let machine = match flags.get("machine").map(String::as_str).unwrap_or("a100") {
        "v100" => MachineSpec::dgx_v100(),
        "a100" => MachineSpec::dgx_a100(),
        other => {
            eprintln!("unknown machine {other:?} (expected v100 or a100)");
            exit(2)
        }
    };
    let gpus: usize = get(flags, "gpus", 8);
    let cfg = model_for(flags.get("model").map(String::as_str).unwrap_or("a"), &card);
    let opts = TrainOptions::full(machine.clone(), gpus);
    let problem = Problem::from_stats(&card, &opts);
    let mut trainer = match Trainer::new(problem, cfg, opts) {
        Ok(t) => t,
        Err(e) => {
            println!("{}: {e}", card.name);
            exit(0)
        }
    };
    let report = trainer.train_epoch().expect("simulated backend cannot fail");
    println!(
        "{} on {} x{}: epoch {:.4} s  ({:.1} MiB/GPU planned)",
        card.name,
        machine.name,
        gpus,
        report.sim_seconds,
        trainer.memory_per_gpu() as f64 / (1 << 20) as f64
    );
    println!("breakdown (kernel %):");
    for (cat, pct) in report.breakdown(true) {
        println!("  {:<12} {:>5.1}%", cat.name(), pct);
    }
    if flags.contains_key("profile") {
        println!("\nprofile:");
        let profile = Profile::from_timeline(&report.timeline, report.sim_seconds);
        print!("{}", profile.render());
    }
    if let Some(path) = flags.get("trace") {
        match mg_gcn::gpusim::trace::write_chrome_trace(
            &report.timeline,
            std::path::Path::new(path),
        ) {
            Ok(()) => println!("chrome trace written to {path} (open in chrome://tracing)"),
            Err(e) => eprintln!("trace failed: {e}"),
        }
    }
}

fn cmd_memory(flags: &HashMap<String, String>) {
    let name = flags.get("dataset").cloned().unwrap_or_else(|| usage());
    let Some(card) = datasets::by_name(&name) else {
        eprintln!("unknown dataset {name:?}");
        exit(1)
    };
    let hidden: usize = get(flags, "hidden", 512);
    let layers: usize = get(flags, "layers", 2);
    let cfg = GcnConfig::new(card.feat_dim, &vec![hidden; layers - 1], card.classes);
    println!("{}: {layers}-layer, hidden {hidden}", card.name);
    for gpus in [1u64, 2, 4, 8] {
        let plan = MemoryPlan::new(card.n as u64, card.m as u64, &cfg, gpus, BufferPolicy::MgGcn);
        let gib = plan.total() as f64 / (1u64 << 30) as f64;
        let v100 = if plan.fits(32 << 30) { "fits" } else { "OOM" };
        let a100 = if plan.fits(80 << 30) { "fits" } else { "OOM" };
        println!("  {gpus} GPU(s): {gib:>7.1} GiB   V100: {v100:<5} A100: {a100}");
    }
}

/// Train a small community-graph model and freeze it for serving — the
/// shared front half of `serve-bench` and `cluster-bench`.
fn train_serving_model(vertices: usize, epochs: usize, seed: u64) -> (Graph, ServingModel) {
    let graph = sbm::generate(&SbmConfig::community_benchmark(vertices, 5), seed);
    let cfg = GcnConfig::new(graph.features.cols(), &[32], graph.classes);
    let opts = TrainOptions::quick(2);
    let problem = Problem::from_graph(&graph, &cfg, &opts);
    let mut trainer = match Trainer::new(problem, cfg, opts) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    };
    for _ in 0..epochs {
        trainer.train_epoch().expect("simulated backend cannot fail");
    }
    let ck = Checkpoint::from_trainer(&trainer);
    match ServingModel::from_checkpoint(&ck, &graph) {
        Ok(m) => (graph, m),
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    }
}

fn cmd_serve_bench(flags: &HashMap<String, String>) {
    if let Some(path) = flags.get("check") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1)
        });
        match mg_gcn::serve::validate_serve_bench(&text) {
            Ok(()) => println!("{path}: valid serve-bench report"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                exit(1);
            }
        }
        return;
    }

    let qps: f64 = get(flags, "qps", 100_000.0);
    let window: f64 = get(flags, "batch-window", 1.0e-3);
    let max_batch: usize = get(flags, "max-batch", 32);
    let cache_mb: usize = get(flags, "cache-mb", 64);
    let requests: usize = get(flags, "requests", 2000);
    let vertices: usize = get(flags, "vertices", 2000);
    let gpus: usize = get(flags, "gpus", 1);
    let epochs: usize = get(flags, "epochs", 15);
    let seed: u64 = get(flags, "seed", 42);

    // Train a small model and freeze its checkpoint into a serving model.
    let (graph, model) = train_serving_model(vertices, epochs, seed);
    eprintln!(
        "serving {} vertices, {} edges, {}-layer model on {} simulated A100(s)",
        graph.n(),
        graph.adj.nnz(),
        model.layers(),
        gpus
    );

    let machine = || {
        mg_gcn::gpusim::MachineSpec::uniform(
            "A100-serve",
            mg_gcn::gpusim::GpuSpec::a100(),
            gpus,
            12,
            300.0e9,
        )
    };
    let trace = mg_gcn::serve::generate_load(&LoadGenConfig::skewed(qps, requests, vertices, seed));
    let tracer = flags.get("trace").map(|_| std::sync::Arc::new(mg_gcn::trace::Tracer::new()));

    // Batch-size-1 baseline on identical hardware, no cache.
    let mut unbatched =
        Server::new(model.clone(), ServeConfig::new(machine(), BatchPolicy::unbatched(), 0));
    let base = unbatched.serve("unbatched", &trace);

    // Micro-batched with the propagation cache: cold pass, then warm.
    // Only the batched server is traced so the cache-hit/miss counters and
    // latency histograms describe one configuration, not a mixture.
    let policy = BatchPolicy::new(window, max_batch);
    let mut server = Server::new(model, ServeConfig::new(machine(), policy, cache_mb << 20));
    if let Some(t) = &tracer {
        server.set_tracer(t.clone());
    }
    let cold = server.serve("batched-cold", &trace);
    let warm = server.serve("batched-warm", &trace);

    for r in [&base, &cold, &warm] {
        eprintln!("{}", r.render());
    }
    let batching_speedup = cold.throughput_rps / base.throughput_rps;
    let warm_compute_reduction = 1.0 - warm.compute_per_request_us / cold.compute_per_request_us;
    eprintln!(
        "batching speedup {batching_speedup:.2}x, warm-cache compute reduction {:.1}%",
        warm_compute_reduction * 100.0
    );
    // Emit through the shared writer and self-validate against the same
    // schema contract CI enforces on the committed artifact.
    let mut doc = mg_gcn::trace::json::JsonWriter::new()
        .f64("qps", qps, 1)
        .f64("batch_window_s", window, 6)
        .usize("max_batch", max_batch)
        .usize("cache_mb", cache_mb)
        .usize("gpus", gpus)
        .arr("configs", &[base.to_json(), cold.to_json(), warm.to_json()])
        .f64("batching_speedup", batching_speedup, 3)
        .f64("warm_compute_reduction", warm_compute_reduction, 4);
    if let Some(t) = &tracer {
        doc = doc.raw("trace", &t.bench_json());
    }
    let json = doc.finish();
    if let Err(e) = mg_gcn::serve::validate_serve_bench(&json) {
        eprintln!("serve-bench emitted a schema-INVALID report: {e}");
        exit(1);
    }
    println!("{json}");
    if let (Some(path), Some(t)) = (flags.get("trace"), &tracer) {
        match t.write_chrome_trace(std::path::Path::new(path), true) {
            Ok(()) => eprintln!("chrome trace written to {path} (open in chrome://tracing)"),
            Err(e) => eprintln!("trace failed: {e}"),
        }
    }
}

/// `cluster-bench`: shard the serving replica set, calibrate saturation
/// throughput, then overload the cluster and gate on the admitted-request
/// p99 SLO and the degraded-answer-rate bound. Writes + schema-validates
/// `BENCH_cluster.json`; exits nonzero on any violated bound.
fn cmd_cluster_bench(flags: &HashMap<String, String>) {
    use mg_gcn::cluster::{validate_cluster_bench, BENCH_CLUSTER_SCHEMA};
    use mg_gcn::trace::json::JsonWriter;

    if let Some(path) = flags.get("check") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1)
        });
        match validate_cluster_bench(&text) {
            Ok(()) => println!("{path}: valid cluster-bench report"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                exit(1);
            }
        }
        return;
    }

    let shards: usize = get(flags, "shards", 2);
    let gpus_per_shard: usize = get(flags, "gpus-per-shard", 2);
    let qps_mult: f64 = get(flags, "qps-mult", 2.0);
    let requests: usize = get(flags, "requests", 2000);
    let vertices: usize = get(flags, "vertices", 1500);
    let epochs: usize = get(flags, "epochs", 10);
    let seed: u64 = get(flags, "seed", 42);
    let slo_ms: f64 = get(flags, "slo-ms", 50.0);
    let max_degraded: f64 = get(flags, "max-degraded", 0.9);
    let window: f64 = get(flags, "batch-window", 1.0e-3);
    let max_batch: usize = get(flags, "max-batch", 32);
    let cache_mb: usize = get(flags, "cache-mb", 16);
    let out = flags.get("out").cloned().unwrap_or_else(|| "BENCH_cluster.json".to_string());
    let backend = match flags.get("backend").map(String::as_str) {
        None => Backend::Simulated,
        Some(name) => Backend::parse(name).unwrap_or_else(|| {
            eprintln!("unknown backend {name:?} (expected simulated or threaded)");
            exit(2)
        }),
    };
    if let Some(t) = flags.get("threads") {
        let Ok(t) = t.parse::<usize>() else {
            eprintln!("--threads expects a positive integer");
            exit(2)
        };
        std::env::set_var("MGGCN_THREADS", t.to_string());
        set_pool_threads(t);
    }

    let (graph, model) = train_serving_model(vertices, epochs, seed);
    eprintln!(
        "cluster: {} vertices, {} edges, {}-layer model, {} shard(s) x {} GPU(s), backend {}",
        graph.n(),
        graph.adj.nnz(),
        model.layers(),
        shards,
        gpus_per_shard,
        backend.name()
    );

    // Partition comparison: cache-aware label propagation vs the random
    // baseline, scored as cross-shard k-hop fan-out bytes (§5.1 pricing).
    let hops = model.layers();
    let d = model.feat_dim();
    let random = PartitionPlan::random(graph.n(), shards, seed);
    let aware = PartitionPlan::cache_aware(&graph.adj, shards, seed);
    let (_, random_bytes) = random.fanout_bytes(&graph.adj, hops, d);
    let (_, aware_bytes) = aware.fanout_bytes(&graph.adj, hops, d);
    let reduction =
        if random_bytes > 0 { 1.0 - aware_bytes as f64 / random_bytes as f64 } else { 0.0 };
    eprintln!(
        "partition: cache-aware {aware_bytes} B cross-shard {hops}-hop fan-out vs \
         random {random_bytes} B ({:.1}% reduction), shard sizes {:?}",
        reduction * 100.0,
        aware.sizes()
    );

    let mut cfg = ClusterConfig::new(shards, gpus_per_shard, BatchPolicy::new(window, max_batch));
    cfg.cache_bytes = cache_mb << 20;
    cfg.backend = backend;
    let mut cluster = Cluster::new(&model, cfg, Some(&aware));
    let tracer = std::sync::Arc::new(mg_gcn::trace::Tracer::new());
    cluster.set_tracer(tracer.clone());

    // Calibrate in two passes: a moderate pass to warm the per-shard
    // caches, then a saturating pass (arrivals far above service rate, so
    // every batch fills) whose measurement is the real steady-state
    // capacity — warm caches and full batches amortize so much that a
    // cold-cache estimate would understate capacity several-fold and the
    // "overload" run would not actually overload. Then drive at
    // qps-mult x capacity with bounded admission; the admitted-latency
    // bound is structural: window + max_queue_delay + one batch's service.
    let warmup =
        mg_gcn::serve::generate_load(&LoadGenConfig::skewed(10_000.0, 600, graph.n(), seed));
    cluster.measure_capacity(&warmup);
    let saturating =
        mg_gcn::serve::generate_load(&LoadGenConfig::skewed(2.0e7, 800, graph.n(), seed));
    let capacity = cluster.measure_capacity(&saturating);
    let qps = capacity * qps_mult;
    let max_queue_delay = (slo_ms * 1e-3 * 0.5).max(window);
    cluster.set_admission(AdmissionPolicy::new(max_queue_delay, 4 * gpus_per_shard));
    eprintln!(
        "capacity {capacity:.0} rps -> overload at {qps:.0} rps ({qps_mult}x), \
         admission: queue delay <= {:.1} ms, inflight <= {}",
        max_queue_delay * 1e3,
        4 * gpus_per_shard
    );
    let trace =
        mg_gcn::serve::generate_load(&LoadGenConfig::skewed(qps, requests, graph.n(), seed + 1));
    let outcome = cluster.serve_trace("overload", &trace);
    let report = &outcome.report;
    eprintln!("{}", report.render());
    for s in &report.shards {
        eprintln!(
            "  shard {}: {} req ({} exact, {} degraded), {} batches ({} shed), \
             p99 {:.3} ms, hit rate {:.1}%",
            s.shard,
            s.requests,
            s.admitted,
            s.degraded,
            s.batches,
            s.shed_batches,
            s.p99_ms,
            s.cache_hit_rate * 100.0
        );
    }

    let p99_ok = report.admitted_p99_ms <= slo_ms;
    let degraded_bounded = report.degraded_rate <= max_degraded;
    let degraded_nonzero = report.degraded > 0;
    let all_answered = outcome.answers.len() == trace.len();
    // Under genuine overload the cluster must shed *something* — a zero
    // degraded rate would mean admission control never engaged.
    let need_shedding = qps_mult > 1.0;
    let ok = p99_ok && degraded_bounded && all_answered && (!need_shedding || degraded_nonzero);

    let partition = JsonWriter::new()
        .str("strategy", aware.strategy)
        .u64("cross_shard_fanout_bytes", aware_bytes)
        .u64("random_fanout_bytes", random_bytes)
        .f64("reduction", reduction, 4)
        .finish();
    let slo = JsonWriter::new()
        .f64("p99_ms", slo_ms, 3)
        .f64("max_degraded_rate", max_degraded, 4)
        .finish();
    let verdict = JsonWriter::new()
        .bool("p99_ok", p99_ok)
        .bool("degraded_bounded", degraded_bounded)
        .bool("degraded_nonzero", degraded_nonzero)
        .bool("all_answered", all_answered)
        .finish();
    let json = JsonWriter::new()
        .str("bench", "cluster")
        .str("schema", BENCH_CLUSTER_SCHEMA)
        .usize("shards", shards)
        .usize("gpus_per_shard", gpus_per_shard)
        .f64("capacity_rps", capacity, 1)
        .f64("qps", qps, 1)
        .f64("qps_multiplier", qps_mult, 2)
        .raw("partition", &partition)
        .raw("slo", &slo)
        .raw("result", &report.to_json())
        .raw("verdict", &verdict)
        .finish();
    // The file on disk is what CI consumes: write, re-read, validate.
    if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
        eprintln!("failed to write {out}: {e}");
        exit(1);
    }
    let text = std::fs::read_to_string(&out).expect("just wrote it");
    if let Err(e) = validate_cluster_bench(&text) {
        eprintln!("{out}: INVALID: {e}");
        exit(1);
    }
    eprintln!("wrote {out} (schema {BENCH_CLUSTER_SCHEMA})");
    println!("{json}");
    if let Some(path) = flags.get("trace") {
        match tracer.write_chrome_trace(std::path::Path::new(path), backend == Backend::Threaded) {
            Ok(()) => eprintln!("chrome trace written to {path} (open in chrome://tracing)"),
            Err(e) => eprintln!("trace failed: {e}"),
        }
    }
    if !ok {
        eprintln!(
            "cluster-bench FAILED: p99_ok={p99_ok} degraded_bounded={degraded_bounded} \
             degraded_nonzero={degraded_nonzero} all_answered={all_answered}"
        );
        exit(1);
    }
}

/// `bench-exec`: measure real epoch wall-clock on the threaded backend at
/// each kernel-pool width, against the same model/graph, and report the
/// speedup over 1 thread; then sweep `--staleness` on a NIC-bound 2×2
/// hierarchical cluster in the simulator, reporting speedup-vs-k
/// (DESIGN §15). Writes `BENCH_exec.json`; `--check PATH` validates an
/// existing artifact (schema + the k=1 improvement gate) for CI.
fn cmd_bench_exec(flags: &HashMap<String, String>) {
    if let Some(path) = flags.get("check") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1)
        });
        match validate_exec_bench(&text) {
            Ok(msg) => {
                println!("{path}: {msg}");
                return;
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                exit(1)
            }
        }
    }
    let gpus: usize = get(flags, "gpus", 2);
    let vertices: usize = get(flags, "vertices", 3000);
    let hidden: usize = get(flags, "hidden", 128);
    let epochs: usize = get(flags, "epochs", 5);
    let out = flags.get("out").cloned().unwrap_or_else(|| "BENCH_exec.json".to_string());
    let threads: Vec<usize> = flags
        .get("threads")
        .map(String::as_str)
        .unwrap_or("1,2,4")
        .split(',')
        .map(|t| {
            t.trim().parse::<usize>().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                eprintln!("--threads expects a comma-separated list of positive integers");
                exit(2)
            })
        })
        .collect();
    let max_threads = *threads.iter().max().expect("nonempty thread list");
    // Size the pool once, before first use, at the widest sweep point;
    // narrower points are swept with set_active_threads.
    if std::env::var("MGGCN_THREADS").is_err() {
        std::env::set_var("MGGCN_THREADS", max_threads.to_string());
    }
    eprintln!(
        "bench-exec: {gpus} GPUs, {vertices} vertices, hidden {hidden}, \
         {epochs} epochs/point, pool size {}",
        mg_gcn::exec::pool_size()
    );

    let graph = sbm::generate(&SbmConfig::community_benchmark(vertices, 5), 42);
    let cfg = GcnConfig::new(graph.features.cols(), &[hidden], graph.classes);
    let make_trainer = || {
        let opts = {
            let mut o = TrainOptions::quick(gpus);
            o.backend = Backend::Threaded;
            o
        };
        let problem = Problem::from_graph(&graph, &cfg, &opts);
        Trainer::new(problem, cfg.clone(), opts).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(1)
        })
    };

    let mut results: Vec<String> = Vec::new();
    let mut baseline_p50 = None;
    for &t in &threads {
        mg_gcn::exec::set_active_threads(t);
        let mut trainer = make_trainer();
        // Warm-up epoch: first-touch allocation, pool spawn.
        trainer.train_epoch().unwrap_or_else(|e| {
            eprintln!("epoch failed: {e}");
            exit(1)
        });
        let mut epoch_ms: Vec<f64> = Vec::with_capacity(epochs);
        let mut categories: std::collections::BTreeMap<String, f64> = Default::default();
        for _ in 0..epochs {
            let start = Instant::now();
            let r = trainer.train_epoch().unwrap_or_else(|e| {
                eprintln!("epoch failed: {e}");
                exit(1)
            });
            let m = r.measured.expect("threaded backend measures");
            // Whole-epoch wall (scheduling included), not just body time.
            let _ = start;
            epoch_ms.push(m.wall_seconds * 1e3);
            for (cat, secs) in &m.category_seconds {
                *categories.entry(cat.name().to_string()).or_insert(0.0) += secs * 1e3;
            }
        }
        epoch_ms.sort_by(f64::total_cmp);
        let p50 = epoch_ms[epoch_ms.len() / 2];
        let baseline = *baseline_p50.get_or_insert(p50);
        let speedup = baseline / p50;
        for v in categories.values_mut() {
            *v /= epochs as f64;
        }
        let cats_json: Vec<String> =
            categories.iter().map(|(k, v)| format!("\"{k}\":{v:.4}")).collect();
        eprintln!(
            "  threads {t}: epoch p50 {p50:.2} ms, speedup {speedup:.2}x vs {} thread(s)",
            threads[0]
        );
        results.push(format!(
            "{{\"threads\":{t},\"epoch_ms_p50\":{p50:.4},\"speedup\":{speedup:.4},\
             \"category_ms\":{{{}}}}}",
            cats_json.join(",")
        ));
    }
    mg_gcn::exec::set_active_threads(0);

    // Bounded-staleness sweep (DESIGN §15): deterministic simulated epoch
    // time at each k on a NIC-bound 2-node × 2-GPU hierarchical cluster,
    // where epoch e+1's prefetch broadcasts can hide under epoch e's
    // backward pass. Reported as speedup over k=0 (the fresh pipeline).
    let stale_list: Vec<usize> = flags
        .get("staleness")
        .map(String::as_str)
        .unwrap_or("0,1,2")
        .split(',')
        .map(|k| {
            k.trim().parse::<usize>().unwrap_or_else(|_| {
                eprintln!("--staleness expects a comma-separated list of non-negative integers");
                exit(2)
            })
        })
        .collect();
    // 1 GB/s default keeps the card NIC-bound: slow enough that cross-node
    // broadcasts dominate what prefetch can hide, fast enough that the NIC
    // is not saturated (a saturated NIC bounds the epoch by total bytes and
    // no amount of pipelining helps).
    let nic_gbps: f64 = get(flags, "nic", 1.0);
    let sim_epochs = epochs.max(3);
    let machine = mg_gcn::gpusim::MachineSpec::hier_cluster(
        "bench-2x2",
        mg_gcn::gpusim::GpuSpec::a100(),
        2,
        2,
        12,
        25.0e9,
        nic_gbps * 1e9,
    );
    eprintln!(
        "bench-exec staleness sweep: 4 GPUs on {}, NIC {nic_gbps} GB/s, \
         {sim_epochs} simulated epochs/point",
        machine.name
    );
    let mut stale_results: Vec<String> = Vec::new();
    let mut fresh_ms = None;
    for &k in &stale_list {
        let mut o = TrainOptions::full(machine.clone(), 4);
        o.skip_first_backward_spmm = false;
        o.permute = false;
        o.staleness = k;
        let problem = Problem::from_graph(&graph, &cfg, &o);
        let mut trainer = Trainer::new(problem, cfg.clone(), o).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(1)
        });
        let reports = trainer.train(sim_epochs).unwrap_or_else(|e| {
            eprintln!("staleness {k} failed: {e}");
            exit(1)
        });
        let total_s: f64 = reports.iter().map(|r| r.sim_seconds).sum();
        let epoch_ms = total_s / sim_epochs as f64 * 1e3;
        let baseline = *fresh_ms.get_or_insert(epoch_ms);
        let speedup = baseline / epoch_ms;
        eprintln!("  staleness {k}: epoch {epoch_ms:.3} sim ms, speedup {speedup:.3}x vs k=0");
        stale_results.push(format!(
            "{{\"staleness\":{k},\"epoch_ms_sim\":{epoch_ms:.4},\"speedup_vs_fresh\":{speedup:.4}}}"
        ));
    }

    let json = format!(
        "{{\"bench\":\"exec\",\"backend\":\"threaded\",\"pool_size\":{},\
         \"gpus\":{gpus},\"vertices\":{vertices},\"hidden\":{hidden},\
         \"epochs_per_point\":{epochs},\"results\":[{}],\
         \"staleness_sim\":{{\"machine\":\"{}\",\"gpus\":4,\"nic_gbps\":{nic_gbps},\
         \"epochs_per_point\":{sim_epochs},\"results\":[{}]}}}}",
        mg_gcn::exec::pool_size(),
        results.join(","),
        machine.name,
        stale_results.join(",")
    );
    match std::fs::write(&out, format!("{json}\n")) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => {
            eprintln!("failed to write {out}: {e}");
            exit(1);
        }
    }
    println!("{json}");
}

/// Schema + bounds validator for `BENCH_exec.json` (the `--check` CI
/// gate): the threaded thread-sweep must be present and well-formed, and
/// the §15 staleness sweep must show k=0 as the 1.0x baseline and a
/// measurable simulated epoch-time improvement at k=1 on the NIC-bound
/// multi-node card.
fn validate_exec_bench(text: &str) -> Result<String, String> {
    use mg_gcn::trace::json::{self, Value};
    let v = json::parse(text)?;
    match v.get("bench").and_then(Value::as_str) {
        Some("exec") => {}
        other => return Err(format!("bench must be \"exec\", got {other:?}")),
    }
    for key in ["pool_size", "gpus", "vertices", "hidden", "epochs_per_point"] {
        v.get(key).and_then(Value::as_num).ok_or(format!("missing number `{key}`"))?;
    }
    let results = v.get("results").and_then(Value::as_arr).ok_or("missing array `results`")?;
    if results.is_empty() {
        return Err("empty thread sweep".into());
    }
    for r in results {
        for key in ["threads", "epoch_ms_p50", "speedup"] {
            let x = r.get(key).and_then(Value::as_num).ok_or(format!("result missing `{key}`"))?;
            if !(x.is_finite() && x > 0.0) {
                return Err(format!("result `{key}` must be finite and positive, got {x}"));
            }
        }
        r.get("category_ms").and_then(Value::as_obj).ok_or("result missing `category_ms`")?;
    }
    let sim = v.get("staleness_sim").ok_or("missing `staleness_sim` (DESIGN §15 sweep)")?;
    sim.get("machine").and_then(Value::as_str).ok_or("staleness_sim missing `machine`")?;
    let srs = sim.get("results").and_then(Value::as_arr).ok_or("staleness_sim missing results")?;
    let mut k0 = None;
    let mut k1 = None;
    for r in srs {
        let k = r.get("staleness").and_then(Value::as_num).ok_or("entry missing `staleness`")?;
        let ms = r.get("epoch_ms_sim").and_then(Value::as_num).ok_or("missing `epoch_ms_sim`")?;
        let sp = r
            .get("speedup_vs_fresh")
            .and_then(Value::as_num)
            .ok_or("missing `speedup_vs_fresh`")?;
        if !(ms.is_finite() && ms > 0.0 && sp.is_finite() && sp > 0.0) {
            return Err(format!("staleness {k}: non-positive epoch time or speedup"));
        }
        if k == 0.0 {
            k0 = Some(sp);
        }
        if k == 1.0 {
            k1 = Some(sp);
        }
    }
    let k0 = k0.ok_or("staleness sweep must include k=0 (the fresh baseline)")?;
    if (k0 - 1.0).abs() > 1e-9 {
        return Err(format!("k=0 must be the 1.0x baseline, got {k0}"));
    }
    let k1 = k1.ok_or("staleness sweep must include k=1")?;
    // The simulator is deterministic, so the gate is a real floor, not a
    // noise band: prefetch must hide at least half a percent of epoch time
    // on the NIC-bound card (measured 1.3% at the committed settings).
    if k1 < 1.005 {
        return Err(format!(
            "k=1 must show a measurable epoch-time improvement on the NIC-bound card \
             (speedup_vs_fresh >= 1.005), got {k1}"
        ));
    }
    Ok(format!("valid exec bench (staleness k=1 speedup {k1:.3}x)"))
}

/// `trace`: run a small traced training job and verify its recorded
/// metrics against the paper's closed forms, or (`--check PATH`) validate
/// an existing trace artifact. Exits nonzero on any failed check, so CI
/// can gate on it.
fn cmd_trace(flags: &HashMap<String, String>) {
    if let Some(path) = flags.get("check") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1)
        });
        // Auto-detect the artifact kind: a Chrome trace has `traceEvents`,
        // a metrics dump has `bench: "trace"`.
        let verdict = if text.contains("\"traceEvents\"") {
            mg_gcn::trace::chrome::validate_chrome_trace(&text).map(|s| {
                format!("valid chrome trace: {} events, {} metadata records", s.events, s.metas)
            })
        } else {
            mg_gcn::trace::chrome::validate_bench_trace(&text)
                .map(|()| "valid BENCH_trace metrics dump".to_string())
        };
        match verdict {
            Ok(msg) => println!("{path}: {msg}"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                exit(1);
            }
        }
        return;
    }

    let gpus: usize = get(flags, "gpus", 2);
    let vertices: usize = get(flags, "vertices", 1500);
    let hidden: usize = get(flags, "hidden", 32);
    let epochs: usize = get(flags, "epochs", 3);
    let out = flags.get("out").cloned().unwrap_or_else(|| "BENCH_trace.json".to_string());
    let backend = match flags.get("backend").map(String::as_str) {
        None => Backend::Threaded,
        Some(name) => Backend::parse(name).unwrap_or_else(|| {
            eprintln!("unknown backend {name:?} (expected simulated or threaded)");
            exit(2)
        }),
    };
    if let Some(t) = flags.get("threads") {
        let Ok(t) = t.parse::<usize>() else {
            eprintln!("--threads expects a positive integer");
            exit(2)
        };
        std::env::set_var("MGGCN_THREADS", t.to_string());
        set_pool_threads(t);
    }

    let graph = sbm::generate(&SbmConfig::community_benchmark(vertices, 5), 42);
    let cfg = GcnConfig::new(graph.features.cols(), &[hidden], graph.classes);
    let mut opts = TrainOptions::quick(gpus);
    opts.backend = backend;
    let problem = Problem::from_graph(&graph, &cfg, &opts);
    let mut trainer = match Trainer::new(problem, cfg, opts) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    };
    let tracer = std::sync::Arc::new(mg_gcn::trace::Tracer::new());
    trainer.set_tracer(tracer.clone());
    eprintln!(
        "trace: {} vertices, {gpus} GPUs, hidden {hidden}, {epochs} epoch(s), backend {}",
        graph.n(),
        backend.name()
    );
    for e in 0..epochs {
        if let Err(err) = trainer.train_epoch() {
            eprintln!("epoch {e} failed: {err}");
            exit(1);
        }
    }

    let ok = trace_verdicts(&tracer, &trainer.expected_broadcast_bytes(), epochs);

    // Write both artifacts, then re-read and schema-validate them — the
    // files on disk are what CI consumes, so they are what gets checked.
    if let Err(e) = tracer.write_bench_json(std::path::Path::new(&out)) {
        eprintln!("failed to write {out}: {e}");
        exit(1);
    }
    let text = std::fs::read_to_string(&out).expect("just wrote it");
    if let Err(e) = mg_gcn::trace::chrome::validate_bench_trace(&text) {
        eprintln!("{out}: INVALID: {e}");
        exit(1);
    }
    println!("wrote {out} (schema {})", mg_gcn::trace::BENCH_TRACE_SCHEMA);
    if let Some(path) = flags.get("chrome") {
        if let Err(e) = tracer.write_chrome_trace(std::path::Path::new(path), true) {
            eprintln!("failed to write {path}: {e}");
            exit(1);
        }
        let text = std::fs::read_to_string(path).expect("just wrote it");
        match mg_gcn::trace::chrome::validate_chrome_trace(&text) {
            Ok(s) => println!(
                "wrote {path}: {} events, {} metadata records (open in chrome://tracing)",
                s.events, s.metas
            ),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                exit(1);
            }
        }
    }
    if !ok {
        exit(1);
    }
}

/// One verified schedule in the analyze report: its static verification
/// result plus (under `--audit-effects`) the effect-soundness audit.
struct AnalyzedSchedule {
    label: String,
    report: mg_gcn::analyze::Report,
    audit: Option<mg_gcn::analyze::EffectAudit>,
}

impl AnalyzedSchedule {
    fn clean(&self) -> bool {
        self.report.clean() && self.audit.as_ref().is_none_or(|a| a.clean())
    }
}

/// One model-checked schedule: exhaustive footprint-reduced exploration
/// plus a capped device-level cross-check.
struct ModelChecked {
    label: String,
    exhaustive: mg_gcn::analyze::DporResult,
    device: mg_gcn::analyze::DporResult,
}

impl ModelChecked {
    fn clean(&self) -> bool {
        self.exhaustive.deterministic() && !self.exhaustive.truncated && self.device.deterministic()
    }
}

const ANALYZE_SCHEMA: &str = "mggcn-analyze-v1";

/// Render the machine-readable analyze report. Deterministic: findings
/// and warnings are canonically sorted by the analyzer, labels are fixed
/// by the sweep order, so the output is byte-stable across runs.
fn analyze_json(rows: &[AnalyzedSchedule], mc: &[ModelChecked]) -> String {
    use mg_gcn::trace::json::{escape, JsonWriter};
    // `arr` takes pre-rendered JSON values, so quote + escape each line.
    let render = |xs: &[String]| -> Vec<String> {
        xs.iter().map(|s| format!("\"{}\"", escape(s))).collect()
    };
    let schedules: Vec<String> = rows
        .iter()
        .map(|r| {
            let findings: Vec<String> = r.report.findings.iter().map(|f| f.to_string()).collect();
            let warnings: Vec<String> = r.report.warnings.iter().map(|w| w.to_string()).collect();
            let mut w = JsonWriter::new()
                .str("label", r.label.trim_end())
                .usize("ops", r.report.ops)
                .usize("edges", r.report.edges)
                .bool("clean", r.clean())
                .arr("findings", &render(&findings))
                .arr("warnings", &render(&warnings));
            if let Some(lv) = &r.report.liveness {
                w = w.usize("buffers_needed", lv.buffers_needed);
            }
            if let Some(b) = r.report.budget {
                w = w.usize("budget", b);
            }
            if let Some(a) = &r.audit {
                let af: Vec<String> = a.findings.iter().map(|f| f.to_string()).collect();
                let aw: Vec<String> = a.warnings.iter().map(|x| x.to_string()).collect();
                w = w.raw(
                    "audit",
                    &JsonWriter::new()
                        .bool("clean", a.clean())
                        .arr("findings", &render(&af))
                        .arr("warnings", &render(&aw))
                        .finish(),
                );
            }
            w.finish()
        })
        .collect();
    let checks: Vec<String> = mc
        .iter()
        .map(|m| {
            JsonWriter::new()
                .str("label", &m.label)
                .bool("clean", m.clean())
                .usize("executions", m.exhaustive.executions)
                .bool("truncated", m.exhaustive.truncated)
                .bool("deterministic", m.exhaustive.deterministic())
                .usize("device_executions", m.device.executions)
                .bool("device_deterministic", m.device.deterministic())
                .finish()
        })
        .collect();
    let dirty =
        rows.iter().filter(|r| !r.clean()).count() + mc.iter().filter(|m| !m.clean()).count();
    let mut w = JsonWriter::new()
        .str("schema", ANALYZE_SCHEMA)
        .usize("schedules", rows.len())
        .usize("dirty", dirty)
        .raw("reports", &format!("[{}]", schedules.join(",")));
    if !mc.is_empty() {
        w = w.raw("model_check", &format!("[{}]", checks.join(",")));
    }
    w.finish()
}

/// Validate an analyze JSON document against the `mggcn-analyze-v1`
/// schema using the in-tree parser.
fn validate_analyze_json(text: &str) -> Result<(), String> {
    use mg_gcn::trace::json::parse;
    let doc = parse(text)?;
    let schema = doc.get("schema").and_then(|v| v.as_str()).ok_or("missing schema")?;
    if schema != ANALYZE_SCHEMA {
        return Err(format!("schema {schema:?}, expected {ANALYZE_SCHEMA:?}"));
    }
    let n = doc.get("schedules").and_then(|v| v.as_num()).ok_or("missing schedules count")?;
    doc.get("dirty").and_then(|v| v.as_num()).ok_or("missing dirty count")?;
    let reports = doc.get("reports").and_then(|v| v.as_arr()).ok_or("missing reports array")?;
    if reports.len() != n as usize {
        return Err(format!("reports array has {} entries, header says {n}", reports.len()));
    }
    for (i, r) in reports.iter().enumerate() {
        for key in ["label", "ops", "edges", "clean", "findings", "warnings"] {
            if r.get(key).is_none() {
                return Err(format!("reports[{i}] missing {key:?}"));
            }
        }
    }
    if let Some(mc) = doc.get("model_check") {
        let arr = mc.as_arr().ok_or("model_check is not an array")?;
        for (i, m) in arr.iter().enumerate() {
            for key in ["label", "clean", "executions", "deterministic"] {
                if m.get(key).is_none() {
                    return Err(format!("model_check[{i}] missing {key:?}"));
                }
            }
        }
    }
    Ok(())
}

/// Emit the analyze JSON (stdout, or `--out PATH` with re-read
/// validation — the file on disk is what CI consumes, so it is what gets
/// checked).
fn emit_analyze_json(
    rows: &[AnalyzedSchedule],
    mc: &[ModelChecked],
    flags: &HashMap<String, String>,
) {
    let text = analyze_json(rows, mc);
    if let Err(e) = validate_analyze_json(&text) {
        eprintln!("internal error: emitted JSON fails its own schema: {e}");
        exit(1);
    }
    match flags.get("out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{text}\n")) {
                eprintln!("failed to write {path}: {e}");
                exit(1);
            }
            let back = std::fs::read_to_string(path).expect("just wrote it");
            if let Err(e) = validate_analyze_json(&back) {
                eprintln!("{path}: INVALID: {e}");
                exit(1);
            }
            println!("wrote {path} (schema {ANALYZE_SCHEMA})");
        }
        None => println!("{text}"),
    }
}

/// `analyze`: statically verify recorded schedules. Without `--dataset`,
/// sweeps trainer schedules over P ∈ {1,2,4,8} (or just `--gpus`) ×
/// op-order × overlap on a generated community graph, plus one serving
/// batch schedule; with `--dataset`, verifies a single paper-scale epoch
/// schedule. Exits nonzero if any schedule has a finding, so CI can gate
/// on it. `--dump` prints each op stream annotated with buffer effects.
///
/// `--audit-effects` additionally shadow-executes every materialized
/// schedule's bodies and diffs observed reads/writes/stale ages against
/// the declarations (under-declaration fails the run). `--model-check`
/// exhaustively executes every HB-distinct linearization of small
/// schedules at P ∈ {1,2,3} and requires bit-identical final weights.
/// `--json` (optionally with `--out PATH`) emits the byte-stable
/// `mggcn-analyze-v1` machine-readable report.
fn cmd_analyze(flags: &HashMap<String, String>) {
    use mg_gcn::analyze::{analyze, analyze_budget, audit_effects, BudgetSpec};
    let dump = flags.contains_key("dump");
    let audit = flags.contains_key("audit-effects");
    let want_json = flags.contains_key("json") || flags.contains_key("out");
    let mut rows: Vec<AnalyzedSchedule> = Vec::new();

    // Dataset path: one paper-scale schedule (the CI smoke target).
    if let Some(name) = flags.get("dataset") {
        let Some(card) = datasets::by_name(name) else {
            eprintln!("unknown dataset {name:?}; try `mggcn datasets`");
            exit(1)
        };
        let machine = match flags.get("machine").map(String::as_str).unwrap_or("a100") {
            "v100" => MachineSpec::dgx_v100(),
            "a100" => MachineSpec::dgx_a100(),
            other => {
                eprintln!("unknown machine {other:?} (expected v100 or a100)");
                exit(2)
            }
        };
        let gpus: usize = get(flags, "gpus", 4);
        let partition = match flags.get("partition").map(String::as_str) {
            None => Partition::OneD,
            Some(s) => Partition::parse(s).unwrap_or_else(|| {
                eprintln!("unknown partition {s:?} (expected 1d or 1.5d)");
                exit(2)
            }),
        };
        let cfg = model_for(flags.get("model").map(String::as_str).unwrap_or("a"), &card);
        let mut opts = TrainOptions::full(machine.clone(), gpus);
        opts.partition = partition;
        let problem = Problem::from_stats(&card, &opts);
        let trainer = match Trainer::new(problem, cfg.clone(), opts) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{}: cannot build schedule: {e}", card.name);
                exit(1)
            }
        };
        let sched = trainer.epoch_schedule();
        let budget = match partition {
            Partition::OneD => BudgetSpec::mg_gcn(cfg.layers()),
            Partition::OneFiveD => BudgetSpec::mg_gcn_15d(cfg.layers()),
        };
        let report = analyze_budget(&sched, &budget);
        if dump {
            print!("{}", sched.dump_ops());
        }
        println!("{} on {} x{} ({}):", card.name, machine.name, gpus, partition.name());
        print!("{}", report.render());
        if audit {
            // Descriptor-backed problems carry shapes, not tensors: the
            // ops have no bodies, so there is nothing to shadow-execute.
            println!("effect audit skipped: descriptor-only dataset schedules have no op bodies");
        }
        let row = AnalyzedSchedule {
            label: format!("{} on {} x{} ({})", card.name, machine.name, gpus, partition.name()),
            report,
            audit: None,
        };
        let ok = row.clean();
        if want_json {
            emit_analyze_json(&[row], &[], flags);
        }
        exit(if ok { 0 } else { 1 });
    }

    // Sweep path: every trainer schedule shape on a generated graph.
    let vertices: usize = get(flags, "vertices", 600);
    let hidden: usize = get(flags, "hidden", 16);
    let graph = sbm::generate(&SbmConfig::community_benchmark(vertices, 5), 42);
    let cfg = GcnConfig::new(graph.features.cols(), &[hidden], graph.classes);
    let gpu_list: Vec<usize> = match flags.get("gpus") {
        Some(v) => vec![v.parse().unwrap_or_else(|_| {
            eprintln!("--gpus expects a positive integer");
            exit(2)
        })],
        None => vec![1, 2, 4, 8],
    };
    let mut dirty = 0usize;
    let mut total = 0usize;
    for &gpus in &gpu_list {
        for partition in [Partition::OneD, Partition::OneFiveD] {
            // 1.5D needs an even GPU count ≥ 2.
            if partition == Partition::OneFiveD && (gpus < 2 || !gpus.is_multiple_of(2)) {
                continue;
            }
            for overlap in [false, true] {
                for op_order in [false, true] {
                    let mut opts = TrainOptions::quick(gpus);
                    opts.overlap = overlap;
                    opts.op_order_opt = op_order;
                    opts.partition = partition;
                    let problem = Problem::from_graph(&graph, &cfg, &opts);
                    let trainer = match Trainer::new(problem, cfg.clone(), opts) {
                        Ok(t) => t,
                        Err(e) => {
                            eprintln!("error: {e}");
                            exit(1)
                        }
                    };
                    let sched = trainer.epoch_schedule();
                    let budget = match partition {
                        Partition::OneD => BudgetSpec::mg_gcn(cfg.layers()),
                        Partition::OneFiveD => BudgetSpec::mg_gcn_15d(cfg.layers()),
                    };
                    let report = analyze_budget(&sched, &budget);
                    let label = format!(
                        "trainer P={gpus} {:<4} overlap={} op-order={}",
                        partition.name(),
                        if overlap { "on " } else { "off" },
                        if op_order { "on " } else { "off" },
                    );
                    print_schedule_report(&label, dump.then(|| sched.dump_ops()), &report);
                    let fx = audit.then(|| {
                        let actual = trainer.record_actual_effects(trainer.epoch_schedule());
                        let a = audit_effects(&sched.op_infos(), &actual);
                        print_effect_audit(&a);
                        a
                    });
                    total += 1;
                    let row = AnalyzedSchedule { label, report, audit: fx };
                    dirty += usize::from(!row.clean());
                    rows.push(row);
                }
            }
        }
    }

    // Bounded-staleness pipelines (DESIGN §15): fused 3-epoch schedules
    // with every cross-epoch stale read declared must verify clean.
    for &gpus in &gpu_list {
        if gpus < 2 {
            continue; // P = 1 has no remote tiles to read stale
        }
        for partition in [Partition::OneD, Partition::OneFiveD] {
            if partition == Partition::OneFiveD && !gpus.is_multiple_of(2) {
                continue;
            }
            for k in [1usize, 2] {
                let mut opts = TrainOptions::quick(gpus);
                opts.partition = partition;
                opts.staleness = k;
                let problem = Problem::from_graph(&graph, &cfg, &opts);
                let trainer = match Trainer::new(problem, cfg.clone(), opts.clone()) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("error: {e}");
                        exit(1)
                    }
                };
                let sched = trainer.pipelined_schedule(3);
                let budget = match partition {
                    Partition::OneD => BudgetSpec::mg_gcn(cfg.layers()),
                    Partition::OneFiveD => BudgetSpec::mg_gcn_15d(cfg.layers()),
                }
                .with_staleness(mg_gcn::core::trainer::sf_buffer_count(&cfg, &opts));
                let report = analyze_budget(&sched, &budget);
                let label = format!("stale   P={gpus} {:<4} k={k} (3 epochs)   ", partition.name());
                print_schedule_report(&label, dump.then(|| sched.dump_ops()), &report);
                let fx = audit.then(|| {
                    let actual = trainer.record_actual_effects(trainer.pipelined_schedule(3));
                    let a = audit_effects(&sched.op_infos(), &actual);
                    print_effect_audit(&a);
                    a
                });
                total += 1;
                let row = AnalyzedSchedule { label, report, audit: fx };
                dirty += usize::from(!row.clean());
                rows.push(row);
            }
        }
    }

    // One serving batch schedule: train briefly, freeze, record a batch.
    let serve_cfg = GcnConfig::new(graph.features.cols(), &[hidden], graph.classes);
    let opts = TrainOptions::quick(2);
    let problem = Problem::from_graph(&graph, &serve_cfg, &opts);
    let mut trainer = Trainer::new(problem, serve_cfg, opts).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(1)
    });
    for _ in 0..3 {
        trainer.train_epoch().expect("simulated backend cannot fail");
    }
    let ck = Checkpoint::from_trainer(&trainer);
    let model = ServingModel::from_checkpoint(&ck, &graph).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(1)
    });
    let machine = mg_gcn::gpusim::MachineSpec::uniform(
        "A100-serve",
        mg_gcn::gpusim::GpuSpec::a100(),
        1,
        12,
        300.0e9,
    );
    let mut server =
        Server::new(model, ServeConfig::new(machine, BatchPolicy::new(1e-3, 16), 1 << 20));
    let batch: Vec<u32> = vec![3, 17, 42, 101];
    let sched = server.batch_schedule(&batch, 0);
    let report = analyze(&sched);
    let label = format!("serve  batch of {} on 1 replica  ", batch.len());
    print_schedule_report(&label, dump.then(|| sched.dump_ops()), &report);
    if audit {
        // The serving context is a frozen inference state, not the
        // trainer's device state; its bodies run under a different ctx
        // type, so the training-side shadow interpreter does not apply.
        println!("  effect audit skipped: serving schedules use a frozen inference context");
    }
    total += 1;
    let row = AnalyzedSchedule { label, report, audit: None };
    dirty += usize::from(!row.clean());
    rows.push(row);

    // DPOR linearization model checking: exhaustively execute every
    // HB-distinct linearization of small schedules and require
    // bit-identical final weights. Footprint dependence (sound given the
    // effect audit) must reduce a clean schedule to one trace; the capped
    // device-dependence pass cross-checks the reduction empirically.
    let mut checks: Vec<ModelChecked> = Vec::new();
    if flags.contains_key("model-check") {
        use mg_gcn::analyze::{model_check, DporOptions};
        let small = sbm::generate(&SbmConfig::community_benchmark(24, 2), 11);
        let small_cfg = GcnConfig::new(small.features.cols(), &[4], small.classes);
        for gpus in [1usize, 2, 3] {
            let mut opts = TrainOptions::quick(gpus);
            opts.permute = false;
            opts.overlap = true;
            let problem = Problem::from_graph(&small, &small_cfg, &opts);
            let trainer = Trainer::new(problem, small_cfg.clone(), opts).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                exit(1)
            });
            let sched = trainer.epoch_schedule();
            let infos = sched.op_infos();
            let exhaustive = model_check(&infos, &DporOptions::default(), &mut |order| {
                trainer.linearization_digest(|_| {}, order)
            });
            let device_opts = DporOptions { max_executions: 128, device_dependence: true };
            let device = model_check(&infos, &device_opts, &mut |order| {
                trainer.linearization_digest(|_| {}, order)
            });
            let mc = ModelChecked {
                label: format!("model-check P={gpus} ({} ops)", sched.op_count()),
                exhaustive,
                device,
            };
            let verdict = if mc.clean() {
                format!(
                    "deterministic ({} trace, {} device-level interleavings agree)",
                    mc.exhaustive.executions, mc.device.executions
                )
            } else if let Some(d) =
                mc.exhaustive.divergence.as_ref().or(mc.device.divergence.as_ref())
            {
                format!("DIVERGENT: digest {:#018x} != baseline {:#018x}", d.digest, d.baseline)
            } else {
                "TRUNCATED before the exploration finished".to_string()
            };
            println!("{:<42} {verdict}", mc.label);
            total += 1;
            dirty += usize::from(!mc.clean());
            checks.push(mc);
        }
    }

    if want_json {
        emit_analyze_json(&rows, &checks, flags);
    }
    if dirty > 0 {
        eprintln!("{dirty} of {total} schedules FAILED verification");
        exit(1);
    }
    let extra = match (audit, checks.is_empty()) {
        (true, false) => ", effect-sound, linearization-deterministic",
        (true, true) => ", effect-sound",
        (false, false) => ", linearization-deterministic",
        (false, true) => "",
    };
    println!("all {total} schedules verified: hazard-free, deadlock-free, within budget{extra}");
}

/// One-line audit verdict printed under each swept schedule when
/// `--audit-effects` is on (full detail comes from `render()` on
/// failure).
fn print_effect_audit(a: &mg_gcn::analyze::EffectAudit) {
    if a.clean() {
        let warn = a.warnings.len();
        if warn == 0 {
            println!("  effect audit: declarations match observed accesses");
        } else {
            println!("  effect audit: sound ({warn} over-declaration warning(s))");
        }
    } else {
        print!("{}", a.render());
    }
}

/// Print one schedule's verification result: a one-line verdict in sweep
/// mode, or the full annotated op stream + report under `--dump`.
fn print_schedule_report(label: &str, dump: Option<String>, report: &mg_gcn::analyze::Report) {
    if let Some(ops) = dump {
        println!("--- {} ---", label.trim_end());
        print!("{ops}");
        print!("{}", report.render());
        return;
    }
    let buffers = match (&report.liveness, report.budget) {
        (Some(lv), Some(b)) => format!(", buffers {}/{}", lv.buffers_needed, b),
        (Some(lv), None) => format!(", buffers {}", lv.buffers_needed),
        _ => String::new(),
    };
    if report.clean() {
        println!("{label}: clean ({} ops, {} edges{buffers})", report.ops, report.edges);
    } else {
        println!("{label}: {} finding(s)", report.findings.len());
        for f in &report.findings {
            println!("    {f}");
        }
    }
}

/// `topo-bench`: the §5.1 hierarchical-machine study. Runs the closed-form
/// and DES 1D-vs-1.5D verdicts on DGX-1/DGX-A100, the split-quad NIC sweep
/// (crossover ≈ 100 GB/s), a papers100M-scale end-to-end epoch sweep on
/// two A100 quads, the traced intra-/inter-node byte split on a 2-node
/// machine, and an analyze preflight over every generated 1D and 1.5D
/// schedule; writes + schema-validates `BENCH_topo.json` and exits
/// nonzero if any verdict fails (a CI gate). `--check PATH` validates an
/// existing artifact without running anything.
fn cmd_topo_bench(flags: &HashMap<String, String>) {
    use mg_gcn::topo::{self, TopoBenchOptions};
    if let Some(path) = flags.get("check") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1)
        });
        match topo::validate_topo_bench(&text) {
            Ok(()) => {
                println!("{path}: valid {} stat card, all verdicts pass", topo::BENCH_TOPO_SCHEMA);
                return;
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                exit(1)
            }
        }
    }
    let out = flags.get("out").cloned().unwrap_or_else(|| "BENCH_topo.json".to_string());
    let start = Instant::now();
    let bench = topo::run_topo_bench(&TopoBenchOptions::default());
    println!("§5.1 verdicts (t_15d / t_1d; above 1 means 1D wins):");
    for v in [&bench.paper_dgx1, &bench.paper_a100] {
        println!(
            "  {:<12} closed {:.4}  sim {:.4}  (1.5D memory ×{:.0})",
            v.machine, v.slowdown_closed, v.slowdown_sim, v.mem_factor_15d
        );
    }
    match bench.crossover_gbps {
        Some(x) => println!("split-quad NIC sweep: 1.5D overtakes 1D below {x:.1} GB/s"),
        None => println!("split-quad NIC sweep: no crossover found"),
    }
    println!("papers100M end-to-end epochs (P=8, two A100 quads):");
    for p in &bench.e2e {
        println!(
            "  NIC {:>6.1} GB/s: 1D {:>7.3} s   1.5D {:>7.3} s   ratio {:.3}  ({} wins)",
            p.nic_gbps,
            p.t_1d,
            p.t_15d,
            p.slowdown_15d(),
            if p.slowdown_15d() < 1.0 { "1.5D" } else { "1D" }
        );
    }
    println!(
        "2-node traced bytes: 1D intra {} / inter {}; 1.5D intra {} / inter {}",
        bench.traffic_1d.intra_node,
        bench.traffic_1d.inter_node,
        bench.traffic_15d.intra_node,
        bench.traffic_15d.inter_node
    );
    println!(
        "analyze preflight: {}/{} schedules clean",
        bench.preflight.clean, bench.preflight.schedules
    );
    let json = bench.to_json();
    if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    }
    let written = std::fs::read_to_string(&out).unwrap_or_default();
    let ok = match topo::validate_topo_bench(&written) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("{out}: verdicts FAILED validation: {e}");
            false
        }
    };
    println!("wrote {out} in {:.1}s", start.elapsed().as_secs_f64());
    if !ok {
        exit(1);
    }
}

fn cmd_datasets() {
    println!(
        "{:<10} {:>12} {:>14} {:>6} {:>6} {:>5}",
        "name", "vertices", "edges", "d(0)", "cls", "k"
    );
    for card in mg_gcn::graph::datasets::BENCHMARKS {
        println!(
            "{:<10} {:>12} {:>14} {:>6} {:>6} {:>5.0}",
            card.name, card.n, card.m, card.feat_dim, card.classes, card.avg_degree
        );
    }
}
