#!/usr/bin/env bash
# Hermetic CI for the MG-GCN reproduction. Everything runs offline: all
# third-party dependencies are in-tree path crates (crates/rand, crates/rayon,
# crates/proptest, crates/criterion), so no registry access is attempted.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> rustfmt (workspace)"
cargo fmt --check

echo "==> clippy -D warnings (workspace, all targets)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> unsafe audit (forbid(unsafe_code) everywhere but the rayon shim)"
# Every crate root carries #![forbid(unsafe_code)]. The single sanctioned
# unsafe site is the in-tree rayon shim's type-erased job dispatch
# (crates/rayon/src/pool.rs); any other `unsafe` token fails CI.
for lib in src/lib.rs crates/*/src/lib.rs; do
  [ "${lib}" = "crates/rayon/src/lib.rs" ] && continue
  grep -qF '#![forbid(unsafe_code)]' "${lib}" || {
    echo "${lib} is missing #![forbid(unsafe_code)]" >&2
    exit 1
  }
done
if grep -rn '\bunsafe\b' --include='*.rs' src crates \
  | grep -v 'unsafe_code' | grep -v '^crates/rayon/src/pool.rs:'; then
  echo "new unsafe code outside crates/rayon/src/pool.rs" >&2
  exit 1
fi

echo "==> build (release, workspace)"
cargo build --release --workspace

echo "==> tests (workspace, kernel pool width 1)"
MGGCN_THREADS=1 cargo test -q --workspace

echo "==> tests (workspace, kernel pool width 4)"
# Oversubscribed on small CI boxes — that is the point: the threaded
# backend must be bit-identical at any pool width, including widths
# wider than the machine.
MGGCN_THREADS=4 cargo test -q --workspace

echo "==> conformance harness (testkit: differential + golden + 50-seed fuzz)"
# Failing fuzz seeds are printed by the test for replay via
# MGGCN_FUZZ_SEED=<seed> cargo test -p mggcn-testkit --test fuzz_corpus
MGGCN_FUZZ_SEEDS=50 cargo test -q -p mggcn-testkit

echo "==> chaos conformance (seeded fault matrix x pool widths)"
# Seeded fault plans — worker death mid-collective, slow links, preemption,
# cluster cache-node loss, kills landing inside a pipelined epoch's
# prefetch window (Scenario::StaleEpochKill) — against every subsystem
# on the sched core.
# Budgeted like the fuzz pass: 2 widths x 2 base seeds x 8-seed sweeps.
# A red run names its seed; replay with
#   MGGCN_CHAOS_SEED=<seed> cargo test -p mggcn-testkit --test chaos_invariants
for threads in 1 4; do
  for seed in 12648430 271828; do
    MGGCN_THREADS="${threads}" MGGCN_CHAOS_SEED="${seed}" MGGCN_CHAOS_SEEDS=8 \
      cargo test -q -p mggcn-testkit --test chaos_invariants
  done
done

echo "==> bench-exec smoke (threaded runtime really executes; JSON schema)"
# Wall-clock speedup is asserted only in shape, not magnitude — CI cores
# vary. The staleness_sim card is simulated-clock and deterministic, so
# the validator's k=1 speedup floor is a real gate on the fresh artifact
# AND on the committed one (regenerate with
#   ./target/release/mggcn bench-exec --gpus 2 --vertices 800 --hidden 32 \
#     --epochs 5 --out BENCH_exec.json
# whenever the cost models change).
BENCH_OUT="$(mktemp -d)/BENCH_exec.json"
./target/release/mggcn bench-exec --gpus 2 --vertices 500 --hidden 32 \
  --epochs 3 --threads 1,2 --out "${BENCH_OUT}" >/dev/null
for key in '"bench":"exec"' '"backend":"threaded"' '"pool_size":' \
           '"results":[' '"threads":1' '"threads":2' \
           '"epoch_ms_p50":' '"speedup":' '"category_ms":' \
           '"staleness_sim":' '"speedup_vs_fresh":'; do
  grep -qF "${key}" "${BENCH_OUT}" || {
    echo "BENCH_exec.json missing ${key}:" >&2
    cat "${BENCH_OUT}" >&2
    exit 1
  }
done
./target/release/mggcn bench-exec --check "${BENCH_OUT}" >/dev/null
rm -f "${BENCH_OUT}"
./target/release/mggcn bench-exec --check BENCH_exec.json >/dev/null

echo "==> staleness smoke (DESIGN §15: fused pipelines on a 2x2 cluster)"
# k=0 must be the old trainer bit for bit (covered by the differential
# suite); here the CLI path trains end-to-end at k in {0,1} on the
# 2-node hierarchical cluster under both pool widths. The analyze smoke
# below re-verifies every fused shape with stale reads declared.
for threads in 1 4; do
  for k in 0 1; do
    MGGCN_THREADS="${threads}" ./target/release/mggcn train \
      --gpus 4 --nodes 2 --nic 1 --staleness "${k}" \
      --vertices 400 --hidden 16 --epochs 3 --backend threaded >/dev/null
  done
done

echo "==> trace smoke (traced epoch; §5.1 bytes + §4.2 memory bound; schemas)"
# `mggcn trace` exits nonzero if the traced broadcast byte counters
# diverge from the comm::analysis closed form or a per-GPU memory
# high-watermark exceeds the L+3 plan. Run at both pool widths — the
# sim-clock numbers must not depend on the width.
TRACE_DIR="$(mktemp -d)"
for threads in 1 4; do
  MGGCN_THREADS="${threads}" ./target/release/mggcn trace \
    --gpus 2 --vertices 500 --hidden 16 --epochs 2 \
    --out "${TRACE_DIR}/BENCH_trace.json" \
    --chrome "${TRACE_DIR}/trace.json" >/dev/null
  ./target/release/mggcn trace --check "${TRACE_DIR}/BENCH_trace.json" >/dev/null
  ./target/release/mggcn trace --check "${TRACE_DIR}/trace.json" >/dev/null
done
for key in '"bench":"trace"' '"schema":"mggcn-trace-v1"' \
           '"sim.bcast.bytes.total"' '"mem.plan.big_buffers_bytes"' \
           '"overlap_efficiency"' '"mem_bound_ok":true'; do
  grep -qF "${key}" "${TRACE_DIR}/BENCH_trace.json" || {
    echo "BENCH_trace.json missing ${key}:" >&2
    cat "${TRACE_DIR}/BENCH_trace.json" >&2
    exit 1
  }
done
rm -rf "${TRACE_DIR}"

echo "==> serve-bench schema check (shared JSON writer round-trips the validator)"
SERVE_DIR="$(mktemp -d)"
./target/release/mggcn serve-bench --qps 50000 --requests 400 --vertices 400 \
  --epochs 4 >"${SERVE_DIR}/BENCH_serve.json"
./target/release/mggcn serve-bench --check "${SERVE_DIR}/BENCH_serve.json" >/dev/null
rm -rf "${SERVE_DIR}"

echo "==> cluster-bench smoke (sharded tier; p99 SLO + shedding gate; schema)"
# `mggcn cluster-bench` exits nonzero unless the admitted-request p99 meets
# the SLO, the degraded rate stays bounded, shedding engaged under the
# deliberate overload, and every request was answered. All accounting is on
# the simulated clock, so both pool widths must produce identical reports.
CLUSTER_DIR="$(mktemp -d)"
for threads in 1 4; do
  for topo in "2 2" "4 1"; do
    read -r shards gpus <<<"${topo}"
    out="${CLUSTER_DIR}/BENCH_cluster_${shards}x${gpus}_t${threads}.json"
    MGGCN_THREADS="${threads}" ./target/release/mggcn cluster-bench \
      --shards "${shards}" --gpus-per-shard "${gpus}" \
      --requests 1200 --vertices 1200 --epochs 8 \
      --out "${out}" >/dev/null
    ./target/release/mggcn cluster-bench --check "${out}" >/dev/null
    for key in '"bench":"cluster"' '"schema":"mggcn-cluster-v1"' \
               '"capacity_rps":' '"reduction":' '"p99_ok":true' \
               '"degraded_nonzero":true' '"all_answered":true'; do
      grep -qF "${key}" "${out}" || {
        echo "${out} missing ${key}:" >&2
        cat "${out}" >&2
        exit 1
      }
    done
  done
done
rm -rf "${CLUSTER_DIR}"

echo "==> analyze smoke (static schedule verification; Reddit model A, P=4)"
# `mggcn analyze` exits nonzero if any recorded schedule has an unordered
# buffer conflict, a dependency cycle, an undeclared cross-epoch stale
# read (§15 fused pipelines), or a liveness coloring that needs more big
# buffers than the budget (L+3, +RP for 1.5D, +SF under staleness).
./target/release/mggcn analyze >/dev/null
./target/release/mggcn analyze --dataset reddit --gpus 4
./target/release/mggcn analyze --dataset reddit --gpus 4 --partition 1.5d

echo "==> effect-soundness + model-check smoke (shadow oracle; DPOR linearizations)"
# `--audit-effects` shadow-executes every materialized schedule's bodies
# and fails on any read/write/stale-age the declarations miss;
# `--model-check` DPOR-explores the HB linearizations of P in {1,2,3}
# schedules and fails unless final weights are bit-identical. The JSON
# report must round-trip the in-tree parser and be byte-stable.
ANALYZE_DIR="$(mktemp -d)"
for gpus in 1 2; do
  ./target/release/mggcn analyze --gpus "${gpus}" --audit-effects --model-check \
    --json --out "${ANALYZE_DIR}/analyze_p${gpus}.json" >/dev/null
  ./target/release/mggcn analyze --gpus "${gpus}" --audit-effects --model-check \
    --json --out "${ANALYZE_DIR}/analyze_p${gpus}_again.json" >/dev/null
  cmp "${ANALYZE_DIR}/analyze_p${gpus}.json" "${ANALYZE_DIR}/analyze_p${gpus}_again.json" || {
    echo "analyze --json is not byte-stable at P=${gpus}" >&2
    exit 1
  }
  for key in '"schema":"mggcn-analyze-v1"' '"dirty":0' '"model_check":[' \
             '"deterministic":true'; do
    grep -qF "${key}" "${ANALYZE_DIR}/analyze_p${gpus}.json" || {
      echo "analyze_p${gpus}.json missing ${key}:" >&2
      cat "${ANALYZE_DIR}/analyze_p${gpus}.json" >&2
      exit 1
    }
  done
done
rm -rf "${ANALYZE_DIR}"

echo "==> topo smoke (2-node cluster training; §5.1 crossover card; schema)"
# Train on a 2-node x 2-GPU hierarchical machine under both partitionings
# and both kernel-pool widths — numerics must be identical in all four
# cells (the 1.5D reduce re-folds partials in canonical stage order).
# Then `mggcn topo-bench` reproduces the §5.1 verdicts (closed form AND
# discrete-event), locates the NIC crossover, runs the papers100M e2e
# sweep, and exits nonzero if any verdict fails. The committed
# BENCH_topo.json must also still validate — regenerate it with
#   ./target/release/mggcn topo-bench --out BENCH_topo.json
# whenever the cost models change.
for threads in 1 4; do
  for partition in 1d 1.5d; do
    MGGCN_THREADS="${threads}" ./target/release/mggcn train \
      --gpus 4 --nodes 2 --partition "${partition}" \
      --vertices 400 --hidden 16 --epochs 3 >/dev/null
  done
done
TOPO_DIR="$(mktemp -d)"
./target/release/mggcn topo-bench --out "${TOPO_DIR}/BENCH_topo.json" >/dev/null
./target/release/mggcn topo-bench --check "${TOPO_DIR}/BENCH_topo.json" >/dev/null
rm -rf "${TOPO_DIR}"
./target/release/mggcn topo-bench --check BENCH_topo.json >/dev/null

echo "==> CI green"
