#!/usr/bin/env bash
# Hermetic CI for the MG-GCN reproduction. Everything runs offline: all
# third-party dependencies are in-tree path crates (crates/rand, crates/rayon,
# crates/proptest, crates/criterion), so no registry access is attempted.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> rustfmt (serve crate)"
cargo fmt -p mggcn-serve --check

echo "==> clippy -D warnings (serve crate)"
cargo clippy -p mggcn-serve --all-targets -- -D warnings

echo "==> build (release, workspace)"
cargo build --release --workspace

echo "==> tests (workspace)"
cargo test -q --workspace

echo "==> conformance harness (testkit: differential + golden + 50-seed fuzz)"
# Failing fuzz seeds are printed by the test for replay via
# MGGCN_FUZZ_SEED=<seed> cargo test -p mggcn-testkit --test fuzz_corpus
MGGCN_FUZZ_SEEDS=50 cargo test -q -p mggcn-testkit

echo "==> CI green"
