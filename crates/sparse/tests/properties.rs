//! Property-based tests for the sparse substrate: CSR construction,
//! transposition, normalization, tiling, and SpMM against a dense oracle.

use mggcn_dense::{gemm, Accumulate, Dense};
use mggcn_sparse::{spmm, Coo, Csr, PartitionVec, TileGrid};
use proptest::prelude::*;

/// Strategy: a random sparse matrix as (rows, cols, entries).
fn sparse_matrix() -> impl Strategy<Value = (usize, usize, Vec<(u32, u32, f32)>)> {
    (1usize..20, 1usize..20).prop_flat_map(|(r, c)| {
        let entry = (0..r as u32, 0..c as u32, -10.0f32..10.0);
        (Just(r), Just(c), proptest::collection::vec(entry, 0..60))
    })
}

/// Strategy: a random square sparse matrix.
fn square_sparse() -> impl Strategy<Value = (usize, Vec<(u32, u32, f32)>)> {
    (2usize..16).prop_flat_map(|n| {
        let entry = (0..n as u32, 0..n as u32, 0.1f32..5.0);
        (Just(n), proptest::collection::vec(entry, 0..50))
    })
}

fn build(r: usize, c: usize, entries: &[(u32, u32, f32)]) -> Csr {
    let mut coo = Coo::new(r, c);
    for &(i, j, v) in entries {
        coo.push(i, j, v);
    }
    coo.to_csr()
}

proptest! {
    #[test]
    fn csr_rows_are_sorted_and_in_range((r, c, entries) in sparse_matrix()) {
        let m = build(r, c, &entries);
        for row in 0..m.rows() {
            let cols: Vec<u32> = m.row(row).map(|(cc, _)| cc).collect();
            prop_assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {row} not strictly sorted");
            prop_assert!(cols.iter().all(|&cc| (cc as usize) < c));
        }
        prop_assert_eq!(*m.row_ptr().last().unwrap(), m.nnz());
    }

    #[test]
    fn duplicate_summing_preserves_dense_equivalent((r, c, entries) in sparse_matrix()) {
        let m = build(r, c, &entries);
        let mut expect = Dense::zeros(r, c);
        for &(i, j, v) in &entries {
            let cur = expect.get(i as usize, j as usize);
            expect.set(i as usize, j as usize, cur + v);
        }
        prop_assert!(m.to_dense().max_abs_diff(&expect) < 1e-4);
    }

    #[test]
    fn transpose_is_involutive((r, c, entries) in sparse_matrix()) {
        let m = build(r, c, &entries);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_matches_dense_transpose((r, c, entries) in sparse_matrix()) {
        let m = build(r, c, &entries);
        let d = m.to_dense().transpose();
        prop_assert!(m.transpose().to_dense().max_abs_diff(&d) < 1e-5);
    }

    #[test]
    fn normalize_columns_is_column_stochastic((n, entries) in square_sparse()) {
        let m = build(n, n, &entries).normalize_columns();
        let d = m.to_dense();
        for col in 0..n {
            let s: f32 = (0..n).map(|row| d.get(row, col)).sum();
            prop_assert!(s == 0.0 || (s - 1.0).abs() < 1e-5, "col {col} sums to {s}");
        }
    }

    #[test]
    fn spmm_matches_dense_oracle(
        (r, c, entries) in sparse_matrix(),
        d in 1usize..8,
        seed in 0u64..1000,
    ) {
        let a = build(r, c, &entries);
        let b = Dense::from_fn(c, d, |i, j| ((i * d + j) as f32 + seed as f32).sin());
        let mut fast = Dense::zeros(r, d);
        spmm(&a, &b, &mut fast, Accumulate::Overwrite);
        let mut slow = Dense::zeros(r, d);
        gemm(&a.to_dense(), &b, &mut slow, Accumulate::Overwrite);
        prop_assert!(fast.max_abs_diff(&slow) < 1e-3);
    }

    #[test]
    fn tiling_conserves_every_entry((n, entries) in square_sparse(), parts in 1usize..5) {
        let a = build(n, n, &entries);
        let grid = TileGrid::symmetric_uniform(&a, parts.min(n));
        prop_assert_eq!(grid.nnz(), a.nnz());
        // Reassemble and compare densified.
        let mut re = Dense::zeros(n, n);
        for t in grid.tiles() {
            for lr in 0..t.csr.rows() {
                for (lc, v) in t.csr.row(lr) {
                    let cur = re.get(t.row_offset + lr, t.col_offset + lc as usize);
                    re.set(t.row_offset + lr, t.col_offset + lc as usize, cur + v);
                }
            }
        }
        prop_assert!(re.max_abs_diff(&a.to_dense()) < 1e-5);
    }

    #[test]
    fn staged_tile_spmm_equals_monolithic(
        (n, entries) in square_sparse(),
        parts in 1usize..5,
        d in 1usize..6,
    ) {
        // The §4.1 algorithm in miniature: sum over column tiles of
        // A^{i s} · B_s equals A · B.
        let parts = parts.min(n);
        let a = build(n, n, &entries);
        let b = Dense::from_fn(n, d, |i, j| ((i + 3 * j) as f32).cos());
        let grid = TileGrid::symmetric_uniform(&a, parts);
        let p = grid.row_partition().clone();
        let mut staged = Dense::zeros(n, d);
        for s in 0..parts {
            let b_tile = b.row_block(p.start(s), p.len(s));
            for i in 0..parts {
                let tile = grid.tile(i, s);
                let mut out = staged.row_block(p.start(i), p.len(i));
                spmm(&tile.csr, &b_tile, &mut out, Accumulate::Add);
                // Write back the block.
                for lr in 0..p.len(i) {
                    staged.row_mut(p.start(i) + lr).copy_from_slice(out.row(lr));
                }
            }
        }
        let mut mono = Dense::zeros(n, d);
        spmm(&a, &b, &mut mono, Accumulate::Overwrite);
        prop_assert!(staged.max_abs_diff(&mono) < 1e-3);
    }

    #[test]
    fn partition_vector_invariants(n in 0usize..500, parts in 1usize..12) {
        let p = PartitionVec::uniform(n, parts);
        prop_assert_eq!(p.parts(), parts);
        prop_assert_eq!(p.total(), n);
        let sum: usize = (0..parts).map(|i| p.len(i)).sum();
        prop_assert_eq!(sum, n);
        // Uniformity: sizes differ by at most one.
        let max = (0..parts).map(|i| p.len(i)).max().unwrap();
        let min = (0..parts).map(|i| p.len(i)).min().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn part_of_is_consistent(n in 1usize..300, parts in 1usize..10, idx_frac in 0.0f64..1.0) {
        let p = PartitionVec::uniform(n, parts);
        let idx = ((n - 1) as f64 * idx_frac) as usize;
        let part = p.part_of(idx);
        prop_assert!(p.start(part) <= idx);
        prop_assert!(idx < p.end(part));
    }

    #[test]
    fn permute_symmetric_preserves_multiset((n, entries) in square_sparse(), seed in 0u64..100) {
        let a = build(n, n, &entries);
        let perm = mggcn_graph_free_permutation(n, seed);
        let pa = a.permute_symmetric(&perm);
        prop_assert_eq!(pa.nnz(), a.nnz());
        let mut v1: Vec<i64> = a.values().iter().map(|&v| (v * 1e4) as i64).collect();
        let mut v2: Vec<i64> = pa.values().iter().map(|&v| (v * 1e4) as i64).collect();
        v1.sort_unstable();
        v2.sort_unstable();
        prop_assert_eq!(v1, v2);
    }
}

/// Minimal Fisher–Yates so this crate's tests need no graph dependency.
fn mggcn_graph_free_permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #[test]
    fn select_rows_matches_per_row_reads((r, c, entries) in sparse_matrix(), seed in 0u64..50) {
        let a = build(r, c, &entries);
        // A pseudo-random subset of rows, possibly with repeats.
        let picks: Vec<u32> = (0..r)
            .filter(|i| !(i * 7 + seed as usize).is_multiple_of(3))
            .map(|i| i as u32)
            .collect();
        prop_assume!(!picks.is_empty());
        let sub = a.select_rows(&picks);
        prop_assert_eq!(sub.rows(), picks.len());
        prop_assert_eq!(sub.cols(), a.cols());
        for (new_r, &old_r) in picks.iter().enumerate() {
            let want: Vec<(u32, f32)> = a.row(old_r as usize).collect();
            let got: Vec<(u32, f32)> = sub.row(new_r).collect();
            prop_assert_eq!(got, want);
        }
    }
}
