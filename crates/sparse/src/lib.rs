//! Sparse-matrix substrate for the MG-GCN reproduction.
//!
//! The paper stores the normalized adjacency `Â` in Compressed Sparse Row
//! format and calls cuSPARSE SpMM on 2D tiles of it (§4.1, §6). This crate
//! provides the equivalent pieces:
//!
//! * [`Coo`] / [`Csr`] matrices and conversions,
//! * in-degree normalization (paper eq. 2) and transposition,
//! * partition vectors (paper eq. 13) and symmetric 2D tiling
//!   (paper eqs. 14–15),
//! * a Rayon-parallel CSR [`spmm()`](spmm::spmm) kernel with an accumulate variant for the
//!   staged multi-GPU algorithm,
//! * the [`sddmm()`](sddmm::sddmm) kernel (+ row-wise softmax) for attention models — the
//!   paper's §7 future-work item, which shares SpMM's tiling and
//!   communication structure.

//! # Example
//!
//! ```
//! use mggcn_dense::{Accumulate, Dense};
//! use mggcn_sparse::{spmm, Coo, TileGrid};
//!
//! // A tiny ring graph, tiled 2x2 the way GPU 0 and 1 would hold it.
//! let mut coo = Coo::new(4, 4);
//! for i in 0..4u32 {
//!     coo.push(i, (i + 1) % 4, 1.0);
//! }
//! let a = coo.to_csr();
//! let grid = TileGrid::symmetric_uniform(&a, 2);
//!
//! // Staged SpMM: every GPU accumulates its tile row against each stage.
//! let h = Dense::from_fn(4, 3, |r, c| (r * 3 + c) as f32);
//! let mut out = Dense::zeros(2, 3); // GPU 0's result rows
//! for s in 0..2 {
//!     let tile = &grid.tile(0, s).csr;
//!     let h_s = h.row_block(grid.col_partition().start(s), tile.cols());
//!     let acc = if s == 0 { Accumulate::Overwrite } else { Accumulate::Add };
//!     spmm(tile, &h_s, &mut out, acc);
//! }
//! // Row 0 aggregates vertex 1's features.
//! assert_eq!(out.row(0), h.row(1));
//! ```

#![forbid(unsafe_code)]

pub mod csc;
pub mod csr;
pub mod partition;
pub mod sddmm;
pub mod spmm;

pub use csc::{spmm_csc, Csc};
pub use csr::{Coo, Csr};
pub use partition::{PartitionVec, Tile, TileGrid};
pub use sddmm::{rowwise_softmax, sddmm};
pub use spmm::{spmm, spmm_rows};
