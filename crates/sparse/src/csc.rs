//! Compressed Sparse Column matrices.
//!
//! The forward pass multiplies by `Âᵀ`; storing `Â` once in CSC makes its
//! transpose available for free (a CSC matrix *is* its transpose's CSR).
//! This gives users a choice the paper's C++ code makes implicitly with
//! cuSPARSE's `CUSPARSE_OPERATION_TRANSPOSE`: keep one copy and run the
//! transposed kernel, or keep both orientations and run the straight one.
//! [`spmm_csc`] computes `C = Aᵀ · B` directly from CSC storage.

use crate::csr::Csr;
use mggcn_dense::gemm::Accumulate;
use mggcn_dense::Dense;
use rayon::prelude::*;

/// Compressed Sparse Column matrix (`f32` values, `u32` row indices).
#[derive(Clone, Debug, PartialEq)]
pub struct Csc {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f32>,
}

impl Csc {
    /// Convert from CSR — `O(nnz + rows + cols)` counting sort.
    pub fn from_csr(a: &Csr) -> Self {
        let t = a.transpose(); // CSR of Aᵀ has exactly CSC(A)'s layout
        Self {
            rows: a.rows(),
            cols: a.cols(),
            col_ptr: t.row_ptr().to_vec(),
            row_idx: t.col_idx().to_vec(),
            values: t.values().to_vec(),
        }
    }

    /// Convert back to CSR.
    pub fn to_csr(&self) -> Csr {
        // CSC(A) is CSR(Aᵀ); transpose once more to get CSR(A).
        let at = Csr::from_parts(
            self.cols,
            self.rows,
            self.col_ptr.clone(),
            self.row_idx.clone(),
            self.values.clone(),
        );
        at.transpose()
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Iterate column `c`'s `(row, value)` pairs.
    pub fn col(&self, c: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        let range = self.col_ptr[c]..self.col_ptr[c + 1];
        self.row_idx[range.clone()].iter().copied().zip(self.values[range].iter().copied())
    }
}

/// `C = Aᵀ · B` with `A` in CSC (`rows × cols`), `B: rows × d`,
/// `C: cols × d` — the transposed product without materializing `Aᵀ`.
///
/// In CSC, column `j` of `A` lists exactly the entries of row `j` of `Aᵀ`,
/// so each output row is an independent gather — same parallel shape as
/// the CSR SpMM.
pub fn spmm_csc(a: &Csc, b: &Dense, c: &mut Dense, acc: Accumulate) {
    assert_eq!(a.rows(), b.rows(), "spmm_csc inner dimension mismatch");
    assert_eq!(a.cols(), c.rows(), "spmm_csc output rows mismatch");
    assert_eq!(b.cols(), c.cols(), "spmm_csc output cols mismatch");
    let d = b.cols();
    let b_data = b.as_slice();
    const ROW_BLOCK: usize = 32;
    c.as_mut_slice().par_chunks_mut(ROW_BLOCK * d).enumerate().for_each(|(blk, c_chunk)| {
        let col0 = blk * ROW_BLOCK;
        for (i, c_row) in c_chunk.chunks_mut(d).enumerate() {
            let j = col0 + i;
            if acc == Accumulate::Overwrite {
                c_row.fill(0.0);
            }
            for (r, v) in a.col(j) {
                let b_row = &b_data[r as usize * d..(r as usize + 1) * d];
                for (cj, bj) in c_row.iter_mut().zip(b_row) {
                    *cj += v * bj;
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Coo;
    use crate::spmm::spmm;

    fn sample() -> Csr {
        let mut coo = Coo::new(4, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(1, 1, 3.0);
        coo.push(3, 0, 4.0);
        coo.push(3, 2, 5.0);
        coo.to_csr()
    }

    #[test]
    fn csr_csc_roundtrip() {
        let a = sample();
        let back = Csc::from_csr(&a).to_csr();
        assert_eq!(a, back);
    }

    #[test]
    fn csc_columns_list_rows() {
        let csc = Csc::from_csr(&sample());
        assert_eq!(csc.col(0).collect::<Vec<_>>(), vec![(0, 1.0), (3, 4.0)]);
        assert_eq!(csc.col(1).collect::<Vec<_>>(), vec![(1, 3.0)]);
        assert_eq!(csc.col(2).collect::<Vec<_>>(), vec![(0, 2.0), (3, 5.0)]);
    }

    #[test]
    fn spmm_csc_equals_transposed_csr_spmm() {
        let a = sample();
        let csc = Csc::from_csr(&a);
        let b = Dense::from_fn(4, 5, |r, c| ((r * 5 + c) as f32).sin());
        let mut via_csc = Dense::zeros(3, 5);
        spmm_csc(&csc, &b, &mut via_csc, Accumulate::Overwrite);
        let mut via_transpose = Dense::zeros(3, 5);
        spmm(&a.transpose(), &b, &mut via_transpose, Accumulate::Overwrite);
        assert!(via_csc.max_abs_diff(&via_transpose) < 1e-5);
    }

    #[test]
    fn spmm_csc_accumulates() {
        let a = sample();
        let csc = Csc::from_csr(&a);
        let b = Dense::from_fn(4, 2, |r, c| (r + c) as f32);
        let mut out = Dense::zeros(3, 2);
        spmm_csc(&csc, &b, &mut out, Accumulate::Overwrite);
        let first = out.clone();
        spmm_csc(&csc, &b, &mut out, Accumulate::Add);
        let mut doubled = first.clone();
        for x in doubled.as_mut_slice() {
            *x *= 2.0;
        }
        assert!(out.max_abs_diff(&doubled) < 1e-5);
    }

    #[test]
    fn nnz_preserved() {
        let a = sample();
        assert_eq!(Csc::from_csr(&a).nnz(), a.nnz());
    }
}
