//! COO and CSR sparse matrices.

/// Coordinate-format builder for sparse matrices.
///
/// Duplicate entries are summed on conversion to [`Csr`], matching the
/// behaviour graph loaders expect for multigraph edge lists.
#[derive(Clone, Debug)]
pub struct Coo {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f32)>,
}

impl Coo {
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols, entries: Vec::new() }
    }

    pub fn with_capacity(rows: usize, cols: usize, nnz: usize) -> Self {
        Self { rows, cols, entries: Vec::with_capacity(nnz) }
    }

    /// Add entry `(r, c) = v`. Panics on out-of-range coordinates.
    pub fn push(&mut self, r: u32, c: u32, v: f32) {
        debug_assert!((r as usize) < self.rows && (c as usize) < self.cols);
        self.entries.push((r, c, v));
    }

    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn entries(&self) -> &[(u32, u32, f32)] {
        &self.entries
    }

    /// Convert to CSR, summing duplicate `(r, c)` entries.
    pub fn to_csr(mut self) -> Csr {
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx: Vec<u32> = Vec::with_capacity(self.entries.len());
        let mut values: Vec<f32> = Vec::with_capacity(self.entries.len());
        let mut last: Option<(u32, u32)> = None;
        for &(r, c, v) in &self.entries {
            if last == Some((r, c)) {
                *values.last_mut().expect("duplicate follows an emitted entry") += v;
            } else {
                col_idx.push(c);
                values.push(v);
                row_ptr[r as usize + 1] += 1;
                last = Some((r, c));
            }
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Csr { rows: self.rows, cols: self.cols, row_ptr, col_idx, values }
    }
}

/// Compressed Sparse Row matrix with `f32` values and `u32` column indices
/// (the paper's storage format; §6: "cuSPARSE ... with the Compressed Sparse
/// Row format").
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// Build directly from raw parts, validating the CSR invariants.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr length");
        assert_eq!(*row_ptr.last().unwrap_or(&0), col_idx.len(), "row_ptr terminal");
        assert_eq!(col_idx.len(), values.len(), "col/val length");
        debug_assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]), "row_ptr monotone");
        debug_assert!(col_idx.iter().all(|&c| (c as usize) < cols), "col index range");
        Self { rows, cols, row_ptr, col_idx, values }
    }

    /// Check every CSR structural invariant at runtime, naming the first
    /// violation. `from_parts` asserts the cheap subset and only
    /// debug-asserts the `O(nnz)` ones; the conformance harness calls
    /// this on matrices produced by transforms (transpose, column
    /// normalization, graph-delta application), where a structural break
    /// would otherwise surface only as silently wrong numerics.
    pub fn validate(&self) -> Result<(), String> {
        if self.row_ptr.len() != self.rows + 1 {
            return Err(format!(
                "row_ptr has {} entries for {} rows",
                self.row_ptr.len(),
                self.rows
            ));
        }
        if self.row_ptr[0] != 0 {
            return Err(format!("row_ptr[0] = {}, must be 0", self.row_ptr[0]));
        }
        if let Some(r) = self.row_ptr.windows(2).position(|w| w[0] > w[1]) {
            return Err(format!("row_ptr decreases at row {r}"));
        }
        if *self.row_ptr.last().expect("nonempty row_ptr") != self.col_idx.len() {
            return Err(format!(
                "row_ptr terminal {} != nnz {}",
                self.row_ptr[self.rows],
                self.col_idx.len()
            ));
        }
        if self.col_idx.len() != self.values.len() {
            return Err(format!(
                "{} column indices vs {} values",
                self.col_idx.len(),
                self.values.len()
            ));
        }
        if let Some(i) = self.col_idx.iter().position(|&c| (c as usize) >= self.cols) {
            return Err(format!(
                "column index {} at position {i} out of range for {} cols",
                self.col_idx[i], self.cols
            ));
        }
        if let Some(i) = self.values.iter().position(|v| !v.is_finite()) {
            return Err(format!("non-finite value {} at position {i}", self.values[i]));
        }
        Ok(())
    }

    /// An empty `rows × cols` matrix.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Self { rows, cols, row_ptr: vec![0; rows + 1], col_idx: Vec::new(), values: Vec::new() }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Iterate the `(col, value)` pairs of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        let range = self.row_ptr[r]..self.row_ptr[r + 1];
        self.col_idx[range.clone()].iter().copied().zip(self.values[range].iter().copied())
    }

    /// Number of nonzeros in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Transpose via counting sort — `O(nnz + rows + cols)`.
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let mut row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                let pos = cursor[c as usize];
                cursor[c as usize] += 1;
                col_idx[pos] = r as u32;
                values[pos] = v;
            }
        }
        // `row_ptr` kept from pre-scatter counts; terminal already == nnz.
        row_ptr[self.cols] = self.nnz();
        Csr { rows: self.cols, cols: self.rows, row_ptr, col_idx, values }
    }

    /// In-degree normalization (paper eq. 2): divide each entry `A(u, v)` by
    /// the total in-weight of `v` (its column sum), so every column of the
    /// result sums to 1 and `Âᵀ·H` averages each vertex's in-neighbors.
    pub fn normalize_columns(&self) -> Csr {
        let mut col_sums = vec![0.0f64; self.cols];
        for (c, v) in self.col_idx.iter().zip(&self.values) {
            col_sums[*c as usize] += *v as f64;
        }
        let values = self
            .col_idx
            .iter()
            .zip(&self.values)
            .map(|(&c, &v)| {
                let s = col_sums[c as usize];
                if s == 0.0 {
                    0.0
                } else {
                    (v as f64 / s) as f32
                }
            })
            .collect();
        Csr { values, ..self.clone() }
    }

    /// Row normalization: divide each entry by its row sum, so `Â·H`
    /// averages each row's neighbors (mean aggregation over out-lists —
    /// the form mini-batch blocks use, where edges already point from a
    /// vertex to its sampled neighbors).
    pub fn normalize_rows(&self) -> Csr {
        let mut values = self.values.clone();
        for r in 0..self.rows {
            let range = self.row_ptr[r]..self.row_ptr[r + 1];
            let sum: f64 = values[range.clone()].iter().map(|&v| v as f64).sum();
            if sum != 0.0 {
                for v in &mut values[range] {
                    *v = (*v as f64 / sum) as f32;
                }
            }
        }
        Csr { values, ..self.clone() }
    }

    /// Symmetric relabeling by a permutation: entry `(u, v)` moves to
    /// `(perm[u], perm[v])`. This is the paper's §5.2 random-permutation
    /// load-balancing step applied to the adjacency matrix.
    pub fn permute_symmetric(&self, perm: &[u32]) -> Csr {
        assert_eq!(self.rows, self.cols, "symmetric permutation needs a square matrix");
        assert_eq!(perm.len(), self.rows);
        let mut coo = Coo::with_capacity(self.rows, self.cols, self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                coo.push(perm[r], perm[c as usize], v);
            }
        }
        coo.to_csr()
    }

    /// Densify (tests / tiny examples only).
    pub fn to_dense(&self) -> mggcn_dense::Dense {
        let mut d = mggcn_dense::Dense::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                d.set(r, c as usize, d.get(r, c as usize) + v);
            }
        }
        d
    }

    /// Set every stored value to 1.0 — turns a weighted/multigraph adjacency
    /// into a binary one after duplicate-summing.
    pub fn binarize(&mut self) {
        self.values.fill(1.0);
    }

    /// Extract the listed rows (in the given order) into a new matrix with
    /// the same column space.
    ///
    /// ```
    /// use mggcn_sparse::{Coo, Csr};
    /// let mut coo = Coo::new(3, 3);
    /// coo.push(0, 1, 1.0);
    /// coo.push(2, 0, 2.0);
    /// let a = coo.to_csr();
    /// let picked = a.select_rows(&[2, 0]);
    /// assert_eq!(picked.rows(), 2);
    /// assert_eq!(picked.row(0).collect::<Vec<_>>(), vec![(0, 2.0)]);
    /// assert_eq!(picked.row(1).collect::<Vec<_>>(), vec![(1, 1.0)]);
    /// ```
    pub fn select_rows(&self, rows: &[u32]) -> Csr {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        row_ptr.push(0usize);
        let nnz: usize = rows.iter().map(|&r| self.row_nnz(r as usize)).sum();
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for &r in rows {
            for (c, v) in self.row(r as usize) {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Csr { rows: rows.len(), cols: self.cols, row_ptr, col_idx, values }
    }

    /// Bytes this matrix occupies on a device: row_ptr (8B each) +
    /// col_idx (4B) + values (4B). Used by the memory tracker.
    pub fn device_bytes(&self) -> u64 {
        (self.row_ptr.len() * 8 + self.col_idx.len() * 4 + self.values.len() * 4) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // 3x4: [[1,0,2,0],[0,0,0,3],[4,5,0,0]]
        let mut coo = Coo::new(3, 4);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(1, 3, 3.0);
        coo.push(2, 0, 4.0);
        coo.push(2, 1, 5.0);
        coo.to_csr()
    }

    #[test]
    fn validate_accepts_well_formed_and_names_the_break() {
        assert_eq!(sample().validate(), Ok(()));
        assert_eq!(Csr::empty(0, 0).validate(), Ok(()));
        assert_eq!(sample().transpose().validate(), Ok(()));

        // Broken matrices can't come from `from_parts` (it debug-asserts),
        // so build them field-by-field — this module lives in the file.
        let m = sample();
        let mut bad = m.clone();
        bad.cols = 2; // stored indices 2 and 3 now out of range
        let err = bad.validate().expect_err("out-of-range column");
        assert!(err.contains("out of range"), "got: {err}");

        let mut nan = m.clone();
        nan.values[1] = f32::NAN;
        let err = nan.validate().expect_err("non-finite value");
        assert!(err.contains("non-finite"), "got: {err}");

        let mut dec = m;
        dec.row_ptr[1] = 3;
        dec.row_ptr[2] = 2;
        let err = dec.validate().expect_err("decreasing row_ptr");
        assert!(err.contains("decreases"), "got: {err}");
    }

    #[test]
    fn coo_to_csr_basic() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row_ptr(), &[0, 2, 3, 5]);
        assert_eq!(m.row(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, 2.0)]);
    }

    #[test]
    fn coo_duplicates_are_summed() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(0, 1, 2.5);
        coo.push(1, 0, 1.0);
        let m = coo.to_csr();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.row(0).collect::<Vec<_>>(), vec![(1, 3.5)]);
    }

    #[test]
    fn duplicates_do_not_merge_across_rows() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 1, 2.0); // same column, different row: must stay separate
        let m = coo.to_csr();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.row(1).collect::<Vec<_>>(), vec![(1, 2.0)]);
    }

    #[test]
    fn transpose_matches_dense() {
        let m = sample();
        let td = m.transpose().to_dense();
        let d = m.to_dense().transpose();
        assert_eq!(td.max_abs_diff(&d), 0.0);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn normalize_columns_sums_to_one() {
        let m = sample().normalize_columns();
        let d = m.to_dense();
        for c in 0..4 {
            let s: f32 = (0..3).map(|r| d.get(r, c)).sum();
            assert!((s - 1.0).abs() < 1e-6 || s == 0.0, "col {c} sums to {s}");
        }
    }

    #[test]
    fn normalize_rows_sums_to_one() {
        let m = sample().normalize_rows();
        let d = m.to_dense();
        for r in 0..3 {
            let s: f32 = (0..4).map(|c| d.get(r, c)).sum();
            assert!((s - 1.0).abs() < 1e-6 || s == 0.0, "row {r} sums to {s}");
        }
    }

    #[test]
    fn permute_symmetric_relabels() {
        // 2x2 with single entry (0,1); perm swaps 0 and 1 -> entry at (1,0).
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 7.0);
        let m = coo.to_csr();
        let p = m.permute_symmetric(&[1, 0]);
        assert_eq!(p.row(1).collect::<Vec<_>>(), vec![(0, 7.0)]);
        assert_eq!(p.row_nnz(0), 0);
    }

    #[test]
    fn empty_matrix() {
        let m = Csr::empty(5, 5);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.row_nnz(3), 0);
    }
}
