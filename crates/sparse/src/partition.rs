//! Partition vectors and 2D tiling (paper §4.1, eqs. 13–15).
//!
//! A partition vector `p` with `P` parts is a monotone sequence
//! `0 = p(0) ≤ … ≤ p(P) = n`; tile `(i, j)` of a matrix is the sub-matrix
//! with rows `[p(i), p(i+1))` and columns `[q(j), q(j+1))`, re-indexed to
//! local coordinates. MG-GCN uses symmetric uniform partitioning (`p = q`,
//! equal-size ranges) and relies on a random vertex permutation — not on a
//! smarter partitioner — for nnz balance (§5.2).

use crate::csr::{Coo, Csr};

/// A partition vector (paper eq. 13).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionVec {
    bounds: Vec<usize>,
}

impl PartitionVec {
    /// Uniform partition of `n` items into `parts` parts; the first
    /// `n mod parts` parts get one extra item.
    pub fn uniform(n: usize, parts: usize) -> Self {
        assert!(parts > 0, "need at least one part");
        let base = n / parts;
        let extra = n % parts;
        let mut bounds = Vec::with_capacity(parts + 1);
        let mut acc = 0;
        bounds.push(0);
        for i in 0..parts {
            acc += base + usize::from(i < extra);
            bounds.push(acc);
        }
        Self { bounds }
    }

    /// Build from explicit boundaries. Panics unless monotone and starting
    /// at zero.
    pub fn from_bounds(bounds: Vec<usize>) -> Self {
        assert!(bounds.len() >= 2, "need at least one part");
        assert_eq!(bounds[0], 0, "partition must start at 0");
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "partition must be monotone");
        Self { bounds }
    }

    pub fn parts(&self) -> usize {
        self.bounds.len() - 1
    }

    pub fn total(&self) -> usize {
        *self.bounds.last().expect("bounds nonempty")
    }

    /// Start of part `i`.
    pub fn start(&self, i: usize) -> usize {
        self.bounds[i]
    }

    /// Exclusive end of part `i`.
    pub fn end(&self, i: usize) -> usize {
        self.bounds[i + 1]
    }

    /// Size of part `i`.
    pub fn len(&self, i: usize) -> usize {
        self.end(i) - self.start(i)
    }

    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Largest part size (broadcast buffers are sized to this).
    pub fn max_len(&self) -> usize {
        (0..self.parts()).map(|i| self.len(i)).max().unwrap_or(0)
    }

    /// Which part an index belongs to (binary search).
    pub fn part_of(&self, idx: usize) -> usize {
        assert!(idx < self.total());
        match self.bounds.binary_search(&idx) {
            Ok(mut i) => {
                // Boundary of an empty part: advance to the part that owns it.
                while self.bounds[i + 1] == idx {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        }
    }
}

/// One tile of a 2D-partitioned sparse matrix: a local-coordinate [`Csr`]
/// plus its global position.
#[derive(Clone, Debug)]
pub struct Tile {
    /// Tile row (stage owner in the 1D-row algorithm).
    pub i: usize,
    /// Tile column.
    pub j: usize,
    /// Global row offset of local row 0.
    pub row_offset: usize,
    /// Global column offset of local column 0.
    pub col_offset: usize,
    /// The tile contents in local coordinates.
    pub csr: Csr,
}

/// All `P × Q` tiles of a sparse matrix (paper Fig 2).
#[derive(Clone, Debug)]
pub struct TileGrid {
    p: PartitionVec,
    q: PartitionVec,
    /// Row-major `P × Q` tiles.
    tiles: Vec<Tile>,
}

impl TileGrid {
    /// Tile `a` by row partition `p` and column partition `q`.
    pub fn new(a: &Csr, p: PartitionVec, q: PartitionVec) -> Self {
        assert_eq!(p.total(), a.rows(), "row partition must cover the matrix");
        assert_eq!(q.total(), a.cols(), "column partition must cover the matrix");
        let (np, nq) = (p.parts(), q.parts());
        let mut builders: Vec<Coo> =
            (0..np * nq).map(|t| Coo::new(p.len(t / nq), q.len(t % nq))).collect();
        for r in 0..a.rows() {
            let ti = p.part_of(r);
            let local_r = (r - p.start(ti)) as u32;
            for (c, v) in a.row(r) {
                let tj = q.part_of(c as usize);
                let local_c = (c as usize - q.start(tj)) as u32;
                builders[ti * nq + tj].push(local_r, local_c, v);
            }
        }
        let tiles = builders
            .into_iter()
            .enumerate()
            .map(|(t, coo)| {
                let (i, j) = (t / nq, t % nq);
                Tile { i, j, row_offset: p.start(i), col_offset: q.start(j), csr: coo.to_csr() }
            })
            .collect();
        Self { p, q, tiles }
    }

    /// Symmetric uniform tiling into `parts × parts` (the MG-GCN layout).
    pub fn symmetric_uniform(a: &Csr, parts: usize) -> Self {
        assert_eq!(a.rows(), a.cols(), "symmetric tiling needs a square matrix");
        let p = PartitionVec::uniform(a.rows(), parts);
        Self::new(a, p.clone(), p)
    }

    pub fn row_partition(&self) -> &PartitionVec {
        &self.p
    }

    pub fn col_partition(&self) -> &PartitionVec {
        &self.q
    }

    pub fn tile(&self, i: usize, j: usize) -> &Tile {
        &self.tiles[i * self.q.parts() + j]
    }

    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Total nnz across tiles (equals the source matrix's nnz).
    pub fn nnz(&self) -> usize {
        self.tiles.iter().map(|t| t.csr.nnz()).sum()
    }

    /// nnz of each tile as a `P × Q` row-major vector — the load-balance
    /// statistic behind the paper's Fig 6.
    pub fn tile_nnz(&self) -> Vec<usize> {
        self.tiles.iter().map(|t| t.csr.nnz()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_partition_covers_exactly() {
        let p = PartitionVec::uniform(10, 3);
        assert_eq!(p.parts(), 3);
        assert_eq!(p.total(), 10);
        assert_eq!((p.len(0), p.len(1), p.len(2)), (4, 3, 3));
    }

    #[test]
    fn uniform_partition_single_part() {
        let p = PartitionVec::uniform(7, 1);
        assert_eq!(p.start(0), 0);
        assert_eq!(p.end(0), 7);
    }

    #[test]
    fn part_of_roundtrips() {
        let p = PartitionVec::uniform(100, 7);
        for idx in 0..100 {
            let part = p.part_of(idx);
            assert!(p.start(part) <= idx && idx < p.end(part));
        }
    }

    #[test]
    fn max_len_is_first_part_for_uniform() {
        let p = PartitionVec::uniform(11, 4);
        assert_eq!(p.max_len(), 3);
    }

    fn ring(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i as u32, ((i + 1) % n) as u32, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn tiling_preserves_nnz_and_values() {
        let a = ring(10);
        let grid = TileGrid::symmetric_uniform(&a, 4);
        assert_eq!(grid.nnz(), a.nnz());
        // Reassemble and compare densified.
        let mut re = mggcn_dense::Dense::zeros(10, 10);
        for t in grid.tiles() {
            for r in 0..t.csr.rows() {
                for (c, v) in t.csr.row(r) {
                    re.set(t.row_offset + r, t.col_offset + c as usize, v);
                }
            }
        }
        assert_eq!(re.max_abs_diff(&a.to_dense()), 0.0);
    }

    #[test]
    fn tile_shapes_match_partition() {
        let a = ring(11);
        let grid = TileGrid::symmetric_uniform(&a, 3);
        for t in grid.tiles() {
            assert_eq!(t.csr.rows(), grid.row_partition().len(t.i));
            assert_eq!(t.csr.cols(), grid.col_partition().len(t.j));
        }
    }

    #[test]
    fn rectangular_tiling() {
        // 1 x P column tiling — the paper's rejected "solution 2" layout.
        let a = ring(9);
        let p = PartitionVec::uniform(9, 1);
        let q = PartitionVec::uniform(9, 3);
        let grid = TileGrid::new(&a, p, q);
        assert_eq!(grid.tiles().len(), 3);
        assert_eq!(grid.nnz(), 9);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn from_bounds_rejects_decreasing() {
        let _ = PartitionVec::from_bounds(vec![0, 5, 3]);
    }
}
