//! Sampled Dense-Dense Matrix Multiplication.
//!
//! `C(i, j) = S(i, j) · ⟨A[i, :], B[j, :]⟩` for every nonzero of the
//! sparsity pattern `S` — the kernel behind Graph Attention Network scores,
//! which the paper names as the next kernel to parallelize ("accelerate the
//! Sampled Dense Dense Matrix Multiplication (SDDMM) kernel to enable
//! parallel training of several other models such as Graph Attention
//! Networks", §7). The output reuses `S`'s pattern, so the same 2D tiling
//! and staged-broadcast machinery used for SpMM applies: at stage `s`,
//! GPU `j` needs `B`'s tile `s` to score its edges into columns of part
//! `s` — identical communication structure.

use crate::csr::Csr;
use mggcn_dense::Dense;
use rayon::prelude::*;

/// Rows per parallel task (mirrors the SpMM choice).
const ROW_BLOCK: usize = 32;

/// Compute `C = S ⊙ (A · Bᵀ)` restricted to `S`'s sparsity pattern.
///
/// * `s`: `r × c` pattern (values act as per-edge scale factors; use a
///   binarized matrix for plain attention logits);
/// * `a`: `r × d` row features; `b`: `c × d` column features;
/// * returns a CSR with `s`'s pattern and the sampled products as values.
pub fn sddmm(s: &Csr, a: &Dense, b: &Dense) -> Csr {
    assert_eq!(s.rows(), a.rows(), "sddmm row-feature mismatch");
    assert_eq!(s.cols(), b.rows(), "sddmm col-feature mismatch");
    assert_eq!(a.cols(), b.cols(), "sddmm feature widths differ");
    let d = a.cols();
    let mut values = vec![0.0f32; s.nnz()];
    let row_ptr = s.row_ptr();
    let col_idx = s.col_idx();
    let s_values = s.values();
    let a_data = a.as_slice();
    let b_data = b.as_slice();

    // Parallelize over row blocks; each block writes a disjoint value range.
    let blocks: Vec<(usize, usize)> =
        (0..s.rows()).step_by(ROW_BLOCK).map(|r0| (r0, (r0 + ROW_BLOCK).min(s.rows()))).collect();
    // Split `values` into per-block slices by row_ptr boundaries.
    let mut slices: Vec<&mut [f32]> = Vec::with_capacity(blocks.len());
    let mut rest = values.as_mut_slice();
    for &(r0, r1) in &blocks {
        let len = row_ptr[r1] - row_ptr[r0];
        let (head, tail) = rest.split_at_mut(len);
        slices.push(head);
        rest = tail;
    }
    blocks.par_iter().zip(slices).for_each(|(&(r0, r1), out)| {
        let base = row_ptr[r0];
        for r in r0..r1 {
            let a_row = &a_data[r * d..(r + 1) * d];
            for e in row_ptr[r]..row_ptr[r + 1] {
                let j = col_idx[e] as usize;
                let b_row = &b_data[j * d..(j + 1) * d];
                let dot: f32 = a_row.iter().zip(b_row).map(|(x, y)| x * y).sum();
                out[e - base] = s_values[e] * dot;
            }
        }
    });
    Csr::from_parts(s.rows(), s.cols(), row_ptr.to_vec(), col_idx.to_vec(), values)
}

/// Row-wise softmax over a CSR's values — the normalization step that
/// turns SDDMM logits into attention coefficients.
pub fn rowwise_softmax(c: &Csr) -> Csr {
    let mut values = c.values().to_vec();
    let row_ptr = c.row_ptr();
    for r in 0..c.rows() {
        let range = row_ptr[r]..row_ptr[r + 1];
        if range.is_empty() {
            continue;
        }
        let vals = &mut values[range];
        let max = vals.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in vals.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in vals.iter_mut() {
            *v /= sum;
        }
    }
    Csr::from_parts(c.rows(), c.cols(), row_ptr.to_vec(), c.col_idx().to_vec(), values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Coo;

    fn pattern() -> Csr {
        let mut coo = Coo::new(3, 4);
        coo.push(0, 1, 1.0);
        coo.push(0, 3, 1.0);
        coo.push(1, 0, 2.0); // scale factor 2
        coo.push(2, 2, 1.0);
        coo.to_csr()
    }

    #[test]
    fn sddmm_matches_manual_dots() {
        let s = pattern();
        let a = Dense::from_fn(3, 2, |r, c| (r * 2 + c) as f32); // rows: [0,1],[2,3],[4,5]
        let b = Dense::from_fn(4, 2, |r, c| (r + c) as f32); // rows: [0,1],[1,2],[2,3],[3,4]
        let c = sddmm(&s, &a, &b);
        // (0,1): [0,1]·[1,2] = 2; (0,3): [0,1]·[3,4] = 4
        assert_eq!(c.row(0).collect::<Vec<_>>(), vec![(1, 2.0), (3, 4.0)]);
        // (1,0): 2 * [2,3]·[0,1] = 6
        assert_eq!(c.row(1).collect::<Vec<_>>(), vec![(0, 6.0)]);
        // (2,2): [4,5]·[2,3] = 23
        assert_eq!(c.row(2).collect::<Vec<_>>(), vec![(2, 23.0)]);
    }

    #[test]
    fn sddmm_preserves_pattern() {
        let s = pattern();
        let a = Dense::zeros(3, 5);
        let b = Dense::zeros(4, 5);
        let c = sddmm(&s, &a, &b);
        assert_eq!(c.nnz(), s.nnz());
        assert_eq!(c.row_ptr(), s.row_ptr());
        assert_eq!(c.col_idx(), s.col_idx());
        assert!(c.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sddmm_parallel_path_matches_serial() {
        // Exceed ROW_BLOCK to exercise the parallel split.
        let n = 150;
        let mut coo = Coo::new(n, n);
        for i in 0..n as u32 {
            coo.push(i, (i * 7 + 1) % n as u32, 1.0);
            coo.push(i, (i * 3 + 2) % n as u32, 1.0);
        }
        let s = coo.to_csr();
        let a = Dense::from_fn(n, 8, |r, c| ((r + c) as f32).sin());
        let b = Dense::from_fn(n, 8, |r, c| ((r * 2 + c) as f32).cos());
        let fast = sddmm(&s, &a, &b);
        // Serial oracle.
        for r in 0..n {
            for (idx, (j, v)) in fast.row(r).enumerate() {
                let _ = idx;
                let dot: f32 = a.row(r).iter().zip(b.row(j as usize)).map(|(x, y)| x * y).sum();
                let want = s.row(r).find(|&(jj, _)| jj == j).expect("pattern").1 * dot;
                assert!((v - want).abs() < 1e-4, "({r},{j}): {v} vs {want}");
            }
        }
    }

    #[test]
    fn rowwise_softmax_rows_sum_to_one() {
        let s = pattern();
        let a = Dense::from_fn(3, 2, |r, c| (r + c) as f32 * 0.3);
        let b = Dense::from_fn(4, 2, |r, c| (r as f32 - c as f32) * 0.2);
        let att = rowwise_softmax(&sddmm(&s, &a, &b));
        for r in 0..3 {
            let sum: f32 = att.row(r).map(|(_, v)| v).sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
            assert!(att.row(r).all(|(_, v)| v > 0.0));
        }
    }

    #[test]
    fn empty_rows_are_fine() {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 1, 1.0); // rows 1..3 empty
        let s = coo.to_csr();
        let a = Dense::from_fn(4, 3, |r, _| r as f32);
        let b = Dense::from_fn(4, 3, |r, _| r as f32);
        let c = rowwise_softmax(&sddmm(&s, &a, &b));
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.row(0).next().map(|(_, v)| v), Some(1.0));
    }
}
