//! Sparse-matrix × dense-matrix multiplication (the paper's dominant kernel,
//! 60–94% of GCN runtime per §6.1).
//!
//! `C = A · B` (or `C += A · B`) with `A` in CSR and `B`, `C` row-major
//! dense. Parallelism is over output rows; each row's accumulation is a
//! gather of `B` rows scaled by the CSR values — the same access pattern as
//! cuSPARSE's CSR SpMM, and memory-bandwidth bound for the same reason.

use crate::csr::Csr;
use mggcn_dense::gemm::Accumulate;
use mggcn_dense::Dense;
use rayon::prelude::*;

/// Rows handled per parallel task. Irregular row lengths make smaller blocks
/// (plus Rayon's work stealing) the better load-balance choice than the
/// dense kernel's.
const ROW_BLOCK: usize = 32;

/// `C = A · B` / `C += A · B` with `A: r×c` CSR, `B: c×d`, `C: r×d`.
pub fn spmm(a: &Csr, b: &Dense, c: &mut Dense, acc: Accumulate) {
    assert_eq!(a.cols(), b.rows(), "spmm inner dimension mismatch");
    assert_eq!(a.rows(), c.rows(), "spmm output rows mismatch");
    assert_eq!(b.cols(), c.cols(), "spmm output cols mismatch");
    let d = b.cols();
    let b_data = b.as_slice();
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    c.as_mut_slice().par_chunks_mut(ROW_BLOCK * d).enumerate().for_each(|(blk, c_chunk)| {
        let row0 = blk * ROW_BLOCK;
        for (i, c_row) in c_chunk.chunks_mut(d).enumerate() {
            let r = row0 + i;
            if acc == Accumulate::Overwrite {
                c_row.fill(0.0);
            }
            for e in row_ptr[r]..row_ptr[r + 1] {
                let v = values[e];
                let b_row = &b_data[col_idx[e] as usize * d..(col_idx[e] as usize + 1) * d];
                for (cj, bj) in c_row.iter_mut().zip(b_row) {
                    *cj += v * bj;
                }
            }
        }
    });
}

/// Row-sliced SpMM: `C[i, :] (+)= A[rows[i], :] · B` for each requested
/// row, with `C: rows.len()×d`.
///
/// This is the serving-path kernel: an inference batch only needs the
/// aggregations of the vertices in its k-hop block, so it multiplies just
/// those rows instead of all of `A`. Each output row accumulates in the
/// same CSR order as [`spmm`], so for any requested row the result is
/// **bit-identical** to the corresponding row of the full product — the
/// guarantee the propagation cache relies on.
pub fn spmm_rows(a: &Csr, rows: &[u32], b: &Dense, c: &mut Dense, acc: Accumulate) {
    assert_eq!(a.cols(), b.rows(), "spmm_rows inner dimension mismatch");
    assert_eq!(rows.len(), c.rows(), "spmm_rows output rows mismatch");
    assert_eq!(b.cols(), c.cols(), "spmm_rows output cols mismatch");
    let d = b.cols();
    let b_data = b.as_slice();
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();
    let values = a.values();
    c.as_mut_slice().par_chunks_mut(ROW_BLOCK * d).enumerate().for_each(|(blk, c_chunk)| {
        let out0 = blk * ROW_BLOCK;
        for (i, c_row) in c_chunk.chunks_mut(d).enumerate() {
            let r = rows[out0 + i] as usize;
            assert!(r < a.rows(), "spmm_rows row {r} out of bounds");
            if acc == Accumulate::Overwrite {
                c_row.fill(0.0);
            }
            for e in row_ptr[r]..row_ptr[r + 1] {
                let v = values[e];
                let b_row = &b_data[col_idx[e] as usize * d..(col_idx[e] as usize + 1) * d];
                for (cj, bj) in c_row.iter_mut().zip(b_row) {
                    *cj += v * bj;
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Coo;
    use mggcn_dense::gemm;

    fn random_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> Csr {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut coo = Coo::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if rng.gen_bool(density) {
                    coo.push(r as u32, c as u32, rng.gen_range(-1.0..1.0));
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn spmm_matches_dense_gemm() {
        let a = random_sparse(17, 23, 0.2, 1);
        let b = Dense::from_fn(23, 9, |r, c| ((r * 9 + c) as f32).cos());
        let mut c_sparse = Dense::zeros(17, 9);
        spmm(&a, &b, &mut c_sparse, Accumulate::Overwrite);
        let mut c_dense = Dense::zeros(17, 9);
        gemm(&a.to_dense(), &b, &mut c_dense, Accumulate::Overwrite);
        assert!(c_sparse.max_abs_diff(&c_dense) < 1e-4);
    }

    #[test]
    fn spmm_accumulate_adds_partials() {
        // Staged execution: C = A0*B0 + A1*B1 must equal the one-shot product.
        let a = random_sparse(10, 10, 0.3, 2);
        let b = Dense::from_fn(10, 4, |r, c| (r + c) as f32 * 0.1);
        // One shot.
        let mut full = Dense::zeros(10, 4);
        spmm(&a, &b, &mut full, Accumulate::Overwrite);
        // Two column-stages.
        let grid = crate::partition::TileGrid::new(
            &a,
            crate::partition::PartitionVec::uniform(10, 1),
            crate::partition::PartitionVec::uniform(10, 2),
        );
        let mut staged = Dense::zeros(10, 4);
        for t in grid.tiles() {
            let b_tile = b.row_block(t.col_offset, t.csr.cols());
            spmm(&t.csr, &b_tile, &mut staged, Accumulate::Add);
        }
        assert!(staged.max_abs_diff(&full) < 1e-5);
    }

    #[test]
    fn spmm_empty_matrix_zeroes_output() {
        let a = Csr::empty(4, 4);
        let b = Dense::from_fn(4, 3, |_, _| 1.0);
        let mut c = Dense::from_fn(4, 3, |_, _| 9.0);
        spmm(&a, &b, &mut c, Accumulate::Overwrite);
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn spmm_rows_bit_identical_to_full_rows() {
        let a = random_sparse(40, 30, 0.15, 7);
        let b = Dense::from_fn(30, 6, |r, c| ((r * 6 + c) as f32).sin());
        let mut full = Dense::zeros(40, 6);
        spmm(&a, &b, &mut full, Accumulate::Overwrite);
        let rows: Vec<u32> = vec![3, 0, 17, 39, 17, 8];
        let mut sliced = Dense::zeros(rows.len(), 6);
        spmm_rows(&a, &rows, &b, &mut sliced, Accumulate::Overwrite);
        for (i, &r) in rows.iter().enumerate() {
            assert_eq!(sliced.row(i), full.row(r as usize), "row {r} differs");
        }
    }

    #[test]
    fn spmm_rows_accumulates() {
        let a = random_sparse(12, 12, 0.3, 8);
        let b = Dense::from_fn(12, 3, |r, c| (r + c) as f32 * 0.2);
        let rows: Vec<u32> = (0..12).collect();
        let mut twice = Dense::zeros(12, 3);
        spmm_rows(&a, &rows, &b, &mut twice, Accumulate::Overwrite);
        spmm_rows(&a, &rows, &b, &mut twice, Accumulate::Add);
        let mut once = Dense::zeros(12, 3);
        spmm(&a, &b, &mut once, Accumulate::Overwrite);
        for (t, o) in twice.as_slice().iter().zip(once.as_slice()) {
            assert!((t - 2.0 * o).abs() < 1e-5);
        }
    }

    #[test]
    fn spmm_rows_empty_selection() {
        let a = random_sparse(5, 5, 0.4, 9);
        let b = Dense::from_fn(5, 2, |_, _| 1.0);
        let mut c = Dense::zeros(0, 2);
        spmm_rows(&a, &[], &b, &mut c, Accumulate::Overwrite);
        assert_eq!(c.rows(), 0);
    }

    #[test]
    fn spmm_large_parallel_path() {
        let a = random_sparse(300, 150, 0.05, 3);
        let b = Dense::from_fn(150, 8, |r, c| ((r * 8 + c) as f32).sin());
        let mut c1 = Dense::zeros(300, 8);
        spmm(&a, &b, &mut c1, Accumulate::Overwrite);
        let mut c2 = Dense::zeros(300, 8);
        gemm(&a.to_dense(), &b, &mut c2, Accumulate::Overwrite);
        assert!(c1.max_abs_diff(&c2) < 1e-3);
    }
}
