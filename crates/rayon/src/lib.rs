//! In-tree, dependency-free stand-in for `rayon`, backed by a real
//! deterministic thread pool.
//!
//! The build environment resolves crates hermetically (no registry
//! access), so this crate provides the rayon 1.x API surface the
//! workspace uses — `par_iter`/`par_iter_mut`/`par_chunks_mut`/
//! `into_par_iter`, `map`/`zip`/`enumerate`/`for_each`/`collect`, the
//! two-closure `fold`/`reduce` pair, and `current_num_threads` —
//! executing on the fixed-size kernel pool in [`pool`] (size from
//! `MGGCN_THREADS`, default `available_parallelism`; work-stealing-free,
//! statically chunked).
//!
//! # Determinism contract
//!
//! Results are **bit-identical** for every thread count, including 1:
//!
//! * `for_each` pieces write disjoint items, so piece geometry cannot
//!   change any value;
//! * `map`+`collect` re-concatenates per-piece outputs in index order,
//!   reproducing the sequential element order exactly;
//! * `fold`/`reduce` — the only place accumulation *grouping* is
//!   observable in f32 — uses a piece count that is a pure function of
//!   the input length ([`pool::fold_pieces`]), never of the thread
//!   count, and combines partials left-to-right on the calling thread.
//!
//! Every kernel in the workspace is deterministic given those rules, so
//! `MGGCN_THREADS=1` and `MGGCN_THREADS=64` train bit-identical models.

mod pool;

pub use pool::{effective_threads, pool_size, set_active_threads};

use std::sync::Mutex;

/// A splittable source of items: the engine behind every parallel
/// iterator here. A producer knows its length, can split itself at an
/// index, and can convert into a sequential iterator for draining one
/// piece on one thread.
pub trait Producer: Send + Sized {
    type Item: Send;
    type SeqIter: Iterator<Item = Self::Item>;

    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Split into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);
    fn into_seq(self) -> Self::SeqIter;
}

/// Split `prod` into `q` balanced pieces (sizes differ by at most one).
fn split_into<P: Producer>(mut prod: P, q: usize) -> Vec<P> {
    let n = prod.len();
    let (base, rem) = (n / q, n % q);
    let mut out = Vec::with_capacity(q);
    for i in 0..q.saturating_sub(1) {
        let take = base + usize::from(i < rem);
        let (head, tail) = prod.split_at(take);
        out.push(head);
        prod = tail;
    }
    out.push(prod);
    out
}

/// Run `f` over every piece of `prod`, split `q` ways, on the pool.
/// `f` receives `(piece_index, piece)`.
fn drive<P, F>(prod: P, q: usize, f: F)
where
    P: Producer,
    F: Fn(usize, P) + Sync,
{
    debug_assert!(q >= 1);
    let slots: Vec<Mutex<Option<P>>> =
        split_into(prod, q).into_iter().map(|p| Mutex::new(Some(p))).collect();
    pool::run_pieces(slots.len(), |i| {
        let piece =
            slots[i].lock().unwrap_or_else(|e| e.into_inner()).take().expect("piece claimed twice");
        f(i, piece);
    });
}

/// Partial fold results, one per piece, in piece order. Produced by
/// [`ParallelIterator::fold`]; consumed by [`FoldResult::reduce`].
pub struct FoldResult<T> {
    partials: Vec<T>,
}

impl<T> FoldResult<T> {
    /// rayon-style reduce: combine the per-piece partials sequentially,
    /// left to right, starting from `identity()` — the grouping is fixed
    /// by the piece plan, not by scheduling.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: FnMut(T, T) -> T,
    {
        self.partials.into_iter().fold(identity(), op)
    }
}

/// The rayon-like parallel iterator API, implemented for every
/// [`Producer`].
pub trait ParallelIterator: Producer {
    /// Run `f` on every item, in parallel over disjoint pieces.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let n = self.len();
        if n == 0 {
            return;
        }
        drive(self, pool::pieces_for(n), |_, piece| piece.into_seq().for_each(&f));
    }

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send + Clone,
    {
        Map { base: self, f }
    }

    fn zip<B>(self, other: B) -> Zip<Self, B::Prod>
    where
        B: IntoParallelIterator,
    {
        Zip { a: self, b: other.into_par_iter() }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self, offset: 0 }
    }

    /// rayon-style fold: one accumulator per piece, each folded
    /// sequentially from `identity()`. Piece geometry is a pure function
    /// of `len` (see [`pool::fold_pieces`]), so the f32 accumulation
    /// grouping — hence the result — is independent of the thread count.
    fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> FoldResult<T>
    where
        T: Send,
        ID: Fn() -> T + Sync,
        F: Fn(T, Self::Item) -> T + Sync,
    {
        let n = self.len();
        let q = pool::fold_pieces(n);
        let slots: Vec<Mutex<Option<T>>> = (0..q).map(|_| Mutex::new(None)).collect();
        drive(self, q, |i, piece| {
            let acc = piece.into_seq().fold(identity(), &fold_op);
            *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(acc);
        });
        let partials = slots
            .into_iter()
            .map(|s| {
                s.into_inner().unwrap_or_else(|e| e.into_inner()).expect("piece fold completed")
            })
            .collect();
        FoldResult { partials }
    }

    /// Collect into any `FromIterator` target. Per-piece outputs are
    /// concatenated in piece order, so element order matches the
    /// sequential iteration exactly (and `Result` collection
    /// short-circuits on the first error in that order).
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        let n = self.len();
        if n == 0 {
            return std::iter::empty().collect();
        }
        let q = pool::pieces_for(n);
        let slots: Vec<Mutex<Option<Vec<Self::Item>>>> = (0..q).map(|_| Mutex::new(None)).collect();
        drive(self, q, |i, piece| {
            *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(piece.into_seq().collect());
        });
        slots
            .into_iter()
            .flat_map(|s| {
                s.into_inner().unwrap_or_else(|e| e.into_inner()).expect("piece collected")
            })
            .collect()
    }
}

impl<P: Producer> ParallelIterator for P {}

/// Conversion into a parallel iterator (a [`Producer`]).
pub trait IntoParallelIterator {
    type Item: Send;
    type Prod: Producer<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Prod;
}

/// Producers are trivially their own parallel iterators.
macro_rules! identity_into_par_iter {
    ($ty:ty | $($g:tt)*) => {
        impl<$($g)*> IntoParallelIterator for $ty
        where
            $ty: Producer,
        {
            type Item = <Self as Producer>::Item;
            type Prod = Self;
            fn into_par_iter(self) -> Self {
                self
            }
        }
    };
}

// ---------------------------------------------------------------------
// Concrete producers.
// ---------------------------------------------------------------------

/// Shared slice items (`par_iter`).
pub struct SliceProducer<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    type SeqIter = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(index);
        (Self { slice: a }, Self { slice: b })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.slice.iter()
    }
}
identity_into_par_iter!(SliceProducer<'a, T> | 'a, T: Sync);

/// Mutable slice items (`par_iter_mut`).
pub struct SliceMutProducer<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    type SeqIter = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(index);
        (Self { slice: a }, Self { slice: b })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.slice.iter_mut()
    }
}
identity_into_par_iter!(SliceMutProducer<'a, T> | 'a, T: Send);

/// Shared chunks (`par_chunks`). Length is counted in chunks.
pub struct ChunksProducer<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    type SeqIter = std::slice::Chunks<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at(mid);
        (Self { slice: a, size: self.size }, Self { slice: b, size: self.size })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks(self.size)
    }
}
identity_into_par_iter!(ChunksProducer<'a, T> | 'a, T: Sync);

/// Mutable chunks (`par_chunks_mut`) — the workhorse of every kernel.
pub struct ChunksMutProducer<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    type SeqIter = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(mid);
        (Self { slice: a, size: self.size }, Self { slice: b, size: self.size })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks_mut(self.size)
    }
}
identity_into_par_iter!(ChunksMutProducer<'a, T> | 'a, T: Send);

/// `(a..b).into_par_iter()` over `usize`.
pub struct RangeProducer {
    start: usize,
    end: usize,
}

impl Producer for RangeProducer {
    type Item = usize;
    type SeqIter = std::ops::Range<usize>;

    fn len(&self) -> usize {
        self.end - self.start
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = self.start + index;
        (Self { start: self.start, end: mid }, Self { start: mid, end: self.end })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.start..self.end
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Prod = RangeProducer;
    fn into_par_iter(self) -> RangeProducer {
        RangeProducer { start: self.start, end: self.end.max(self.start) }
    }
}

/// Owned `Vec` items (`vec.into_par_iter()`).
pub struct VecProducer<T> {
    items: Vec<T>,
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    type SeqIter = std::vec::IntoIter<T>;

    fn len(&self) -> usize {
        self.items.len()
    }
    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.items.split_off(index);
        (self, Self { items: tail })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.items.into_iter()
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Prod = VecProducer<T>;
    fn into_par_iter(self) -> VecProducer<T> {
        VecProducer { items: self }
    }
}

/// Lock-step pairing; length is the shorter side.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type SeqIter = std::iter::Zip<A::SeqIter, B::SeqIter>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(index);
        let (b1, b2) = self.b.split_at(index);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.a.into_seq().zip(self.b.into_seq())
    }
}
identity_into_par_iter!(Zip<A, B> | A, B);

/// Global-index pairing; splits keep the base offset.
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for Enumerate<P> {
    type Item = (usize, P::Item);
    type SeqIter = std::iter::Zip<std::ops::Range<usize>, P::SeqIter>;

    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Enumerate { base: a, offset: self.offset },
            Enumerate { base: b, offset: self.offset + index },
        )
    }
    fn into_seq(self) -> Self::SeqIter {
        let n = self.base.len();
        (self.offset..self.offset + n).zip(self.base.into_seq())
    }
}
identity_into_par_iter!(Enumerate<P> | P);

/// Item transformation; the closure is cloned across splits.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> Producer for Map<P, F>
where
    P: Producer,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send + Clone,
{
    type Item = R;
    type SeqIter = std::iter::Map<P::SeqIter, F>;

    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (Map { base: a, f: self.f.clone() }, Map { base: b, f: self.f })
    }
    fn into_seq(self) -> Self::SeqIter {
        self.base.into_seq().map(self.f)
    }
}
identity_into_par_iter!(Map<P, F> | P, F);

// ---------------------------------------------------------------------
// Slice entry points.
// ---------------------------------------------------------------------

/// `par_iter`/`par_chunks` on slices (and, via deref, `Vec`).
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> SliceProducer<'_, T>;
    fn par_chunks(&self, chunk_size: usize) -> ChunksProducer<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceProducer<'_, T> {
        SliceProducer { slice: self }
    }

    fn par_chunks(&self, chunk_size: usize) -> ChunksProducer<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunksProducer { slice: self, size: chunk_size }
    }
}

/// `par_iter_mut`/`par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> SliceMutProducer<'_, T>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMutProducer<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> SliceMutProducer<'_, T> {
        SliceMutProducer { slice: self }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMutProducer<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunksMutProducer { slice: self, size: chunk_size }
    }
}

/// Number of threads that will cooperate on the next parallel region:
/// the actual pool size (from `MGGCN_THREADS`, default
/// `available_parallelism`), clamped by [`set_active_threads`]. Reports
/// 1 when the pool is effectively disabled.
pub fn current_num_threads() -> usize {
    effective_threads()
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_and_enumerate() {
        let mut buf = vec![0u32; 10];
        buf.par_chunks_mut(3).enumerate().for_each(|(blk, chunk)| {
            for c in chunk {
                *c = blk as u32;
            }
        });
        assert_eq!(buf, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn fold_reduce_pair() {
        let total = (0usize..10)
            .into_par_iter()
            .fold(|| 0usize, |acc, x| acc + x)
            .reduce(|| 0usize, |a, b| a + b);
        assert_eq!(total, 45);
    }

    #[test]
    fn collect_results() {
        let parsed: Result<Vec<u32>, ()> =
            vec!["1", "2", "3"].into_par_iter().map(|s| s.parse().map_err(|_| ())).collect();
        assert_eq!(parsed, Ok(vec![1, 2, 3]));
    }

    #[test]
    fn zip_with_plain_vec() {
        let keys = [1u32, 2, 3];
        let vals = vec!["a", "b", "c"];
        let pairs: Vec<(u32, &str)> = keys.par_iter().map(|&k| k).zip(vals).collect();
        assert_eq!(pairs, [(1, "a"), (2, "b"), (3, "c")]);
    }

    #[test]
    fn for_each_visits_every_item_once() {
        // Big enough to split across many pieces.
        let mut buf = vec![0u64; 100_000];
        buf.par_iter_mut().enumerate().for_each(|(i, x)| *x = i as u64 + 1);
        for (i, &x) in buf.iter().enumerate() {
            assert_eq!(x, i as u64 + 1);
        }
    }

    #[test]
    fn fold_grouping_is_thread_count_independent() {
        // The fold piece plan is a function of len only; throttling the
        // pool must not change the (f32-order-sensitive) result bits.
        let data: Vec<f32> =
            (0..50_000).map(|i| ((i * 2654435761u64 as usize) as f32).sin()).collect();
        let sum_with = |threads: usize| {
            let prev = crate::set_active_threads(threads);
            let s = (0..data.len())
                .into_par_iter()
                .fold(|| 0.0f32, |acc, i| acc + data[i])
                .reduce(|| 0.0f32, |a, b| a + b);
            crate::set_active_threads(prev);
            s
        };
        let s1 = sum_with(1);
        for t in [2usize, 3, 8] {
            assert_eq!(s1.to_bits(), sum_with(t).to_bits(), "threads={t}");
        }
    }

    #[test]
    fn collect_preserves_order_across_pieces() {
        let v: Vec<usize> = (0..10_000).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(v.len(), 10_000);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * 3);
        }
    }

    #[test]
    fn panic_in_piece_propagates_and_pool_survives() {
        for round in 0..3 {
            let hits = AtomicUsize::new(0);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                (0..10_000usize).into_par_iter().for_each(|i| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    if i == 4321 {
                        panic!("piece blew up (round {round})");
                    }
                });
            }));
            assert!(r.is_err(), "panic must propagate to the caller");
        }
        // The pool still works after unwinding.
        let total =
            (0..1000usize).into_par_iter().fold(|| 0usize, |a, x| a + x).reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 499_500);
    }

    #[test]
    fn current_num_threads_reports_pool_not_machine() {
        let n = crate::current_num_threads();
        assert!(n >= 1);
        assert!(n <= crate::pool_size());
        let prev = crate::set_active_threads(1);
        assert_eq!(crate::current_num_threads(), 1);
        crate::set_active_threads(prev);
    }

    #[test]
    fn triple_zip_matches_sequential() {
        let a: Vec<f32> = (0..5000).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..5000).map(|i| (i * 7) as f32).collect();
        let mut out = vec![0.0f32; 5000];
        out.par_iter_mut().zip(a.par_iter()).zip(b.par_iter()).for_each(|((o, &x), &y)| *o = x + y);
        for i in 0..5000 {
            assert_eq!(out[i], a[i] + b[i]);
        }
    }
}
