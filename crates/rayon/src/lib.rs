//! In-tree, dependency-free stand-in for `rayon`.
//!
//! The build environment resolves crates hermetically (no registry
//! access), so this crate provides the rayon 1.x API surface the
//! workspace uses — `par_iter`/`par_iter_mut`/`par_chunks_mut`/
//! `into_par_iter`, the two-closure `fold`/`reduce` pair, and
//! `current_num_threads` — executing *sequentially*. Every kernel in the
//! workspace was written to be deterministic regardless of rayon's split
//! points (per-row/per-chunk independence), so sequential execution is
//! observationally identical, just single-threaded. Simulated timing
//! comes from `gpusim`'s cost model, not wall-clock, so tier-1 behavior
//! is unchanged.

/// A "parallel" iterator: a thin wrapper over a sequential iterator.
///
/// Implements [`Iterator`] by delegation, so the std adapters
/// (`enumerate`, `map`, `zip`, `for_each`, `collect`, ...) all work.
/// The rayon-specific two-closure `fold`/`reduce` are inherent methods,
/// which take precedence over the single-closure std versions.
pub struct ParIter<I>(I);

impl<I: Iterator> Iterator for ParIter<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<I: Iterator> ParIter<I> {
    /// rayon-style fold: one accumulator per "thread" (here: exactly one),
    /// yielding an iterator of partial results.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        ParIter(std::iter::once(Iterator::fold(self.0, identity(), fold_op)))
    }

    /// rayon-style reduce with an identity-producing closure.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        Iterator::fold(self.0, identity(), op)
    }
}

/// Anything iterable can be a "parallel" iterator.
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;

    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

/// `par_iter`/`par_chunks` on slices (and, via deref, `Vec`).
pub trait ParallelSlice<T> {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(chunk_size))
    }
}

/// `par_iter_mut`/`par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T> {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(chunk_size))
    }
}

/// Number of worker threads rayon would use: the machine's parallelism.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_and_enumerate() {
        let mut buf = vec![0u32; 10];
        buf.par_chunks_mut(3).enumerate().for_each(|(blk, chunk)| {
            for c in chunk {
                *c = blk as u32;
            }
        });
        assert_eq!(buf, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn fold_reduce_pair() {
        let total = (0usize..10)
            .into_par_iter()
            .fold(|| 0usize, |acc, x| acc + x)
            .reduce(|| 0usize, |a, b| a + b);
        assert_eq!(total, 45);
    }

    #[test]
    fn collect_results() {
        let parsed: Result<Vec<u32>, ()> =
            vec!["1", "2", "3"].into_par_iter().map(|s| s.parse().map_err(|_| ())).collect();
        assert_eq!(parsed, Ok(vec![1, 2, 3]));
    }

    #[test]
    fn zip_with_plain_vec() {
        let keys = [1u32, 2, 3];
        let vals = vec!["a", "b", "c"];
        let pairs: Vec<(u32, &str)> = keys.par_iter().map(|&k| k).zip(vals).collect();
        assert_eq!(pairs, [(1, "a"), (2, "b"), (3, "c")]);
    }
}
