//! The deterministic kernel pool: a fixed-size, work-stealing-free thread
//! pool executing statically chunked piece lists.
//!
//! Design constraints (DESIGN.md §9):
//!
//! * **Fixed size** — `MGGCN_THREADS` (else `available_parallelism`),
//!   resolved once at first use; workers are spawned lazily and persist
//!   for the process lifetime.
//! * **No work stealing** — a parallel region is a fixed list of
//!   `pieces` whose *contents* are a pure function of the input length
//!   (and, for order-insensitive regions, the active thread count).
//!   Threads claim piece *indices* from a shared counter; which thread
//!   runs a piece is scheduling noise, what each piece computes is not.
//! * **Panic propagation** — a panicking piece poisons the region
//!   (remaining pieces are skipped), and the payload is re-thrown on the
//!   calling thread once the region quiesces. The pool itself survives.
//! * **Runtime throttling** — [`set_active_threads`] bounds how many
//!   threads (including the caller) may participate in subsequent
//!   regions, so in-process scaling sweeps (`mggcn bench-exec`) can
//!   measure 1..N threads without re-spawning pools.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Runtime cap on participating threads; 0 means "use the whole pool".
static ACTIVE_LIMIT: AtomicUsize = AtomicUsize::new(0);

/// Bound the number of threads (caller included) that participate in
/// parallel regions from now on. `0` restores the full pool. Values above
/// the pool size are clamped. Returns the previous limit.
pub fn set_active_threads(n: usize) -> usize {
    ACTIVE_LIMIT.swap(n, Ordering::SeqCst)
}

/// Threads that will cooperate on the next parallel region: the pool size
/// clamped by [`set_active_threads`]. This is what
/// [`current_num_threads`](crate::current_num_threads) reports.
pub fn effective_threads() -> usize {
    let size = Pool::global().size;
    match ACTIVE_LIMIT.load(Ordering::SeqCst) {
        0 => size,
        n => n.min(size),
    }
}

/// Total threads in the pool (caller + persistent workers), fixed at
/// first use from `MGGCN_THREADS` / `available_parallelism`.
pub fn pool_size() -> usize {
    Pool::global().size
}

/// One parallel region: `pieces` indices executed exactly once each.
struct Job {
    /// Type-erased `&F` where `F: Fn(usize) + Sync`, valid until the
    /// submitting thread returns from [`run_pieces`].
    func: *const (),
    call: unsafe fn(*const (), usize),
    pieces: usize,
    /// Next unclaimed piece index.
    next: AtomicUsize,
    /// Participation slots taken (the caller holds slot 0).
    joiners: AtomicUsize,
    /// Max participants for this region (caller included).
    max_joiners: usize,
    /// Set once any piece panics; remaining pieces are skipped.
    poisoned: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Completed (ran or skipped) piece count, paired with `done_cv`.
    done: Mutex<usize>,
    done_cv: Condvar,
}

// SAFETY: `func` is only dereferenced through `call` for claimed piece
// indices `< pieces`; the referent (`F: Sync`) outlives every such call
// because the submitting thread blocks until `done == pieces`, and each
// piece marks itself done only after its call returns.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    fn exhausted(&self) -> bool {
        self.next.load(Ordering::SeqCst) >= self.pieces
    }

    /// Try to take a participation slot. Fails when the region already
    /// has `max_joiners` participants or nothing is left to claim.
    fn try_join(&self) -> bool {
        if self.exhausted() {
            return false;
        }
        if self.joiners.fetch_add(1, Ordering::SeqCst) >= self.max_joiners {
            self.joiners.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        true
    }

    /// Claim and run pieces until none are left.
    fn run_claims(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::SeqCst);
            if i >= self.pieces {
                return;
            }
            if !self.poisoned.load(Ordering::SeqCst) {
                // SAFETY: i < pieces and the region is not finished, so
                // `func` is alive (see the Send/Sync justification).
                let r = catch_unwind(AssertUnwindSafe(|| unsafe { (self.call)(self.func, i) }));
                if let Err(payload) = r {
                    self.poisoned.store(true, Ordering::SeqCst);
                    let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            let mut d = self.done.lock().unwrap_or_else(|e| e.into_inner());
            *d += 1;
            if *d == self.pieces {
                self.done_cv.notify_all();
            }
        }
    }

    /// Block until every piece has run or been skipped.
    fn wait(&self) {
        let mut d = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while *d < self.pieces {
            d = self.done_cv.wait(d).unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct Pool {
    size: usize,
    queue: Mutex<VecDeque<Arc<Job>>>,
    wake: Condvar,
}

impl Pool {
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            let size = std::env::var("MGGCN_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
                });
            Pool { size, queue: Mutex::new(VecDeque::new()), wake: Condvar::new() }
        })
    }

    /// Spawn the persistent workers exactly once (pool size permitting).
    fn ensure_workers(&'static self) {
        static SPAWNED: OnceLock<()> = OnceLock::new();
        SPAWNED.get_or_init(|| {
            for w in 1..self.size {
                std::thread::Builder::new()
                    .name(format!("mggcn-pool-{w}"))
                    .spawn(move || self.worker_loop())
                    .expect("spawn pool worker");
            }
        });
    }

    fn worker_loop(&'static self) {
        loop {
            let job = {
                let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    while q.front().is_some_and(|j| j.exhausted()) {
                        q.pop_front();
                    }
                    if let Some(j) = q.iter().find(|j| j.try_join()) {
                        break j.clone();
                    }
                    q = self.wake.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            };
            job.run_claims();
            job.joiners.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn inject(&self, job: Arc<Job>) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(job);
        drop(q);
        self.wake.notify_all();
    }

    fn remove(&self, job: &Arc<Job>) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.retain(|j| !Arc::ptr_eq(j, job));
        drop(q);
        // Workers parked on this job's account must re-examine the queue.
        self.wake.notify_all();
    }
}

/// Execute `f(0), f(1), …, f(pieces-1)`, each exactly once, across the
/// active threads. Blocks until all pieces finish; re-throws the first
/// piece panic on this thread.
pub(crate) fn run_pieces<F>(pieces: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if pieces == 0 {
        return;
    }
    let pool = Pool::global();
    let threads = effective_threads();
    if pieces == 1 || threads <= 1 {
        for i in 0..pieces {
            f(i);
        }
        return;
    }
    pool.ensure_workers();
    unsafe fn call<F: Fn(usize) + Sync>(p: *const (), i: usize) {
        (*(p as *const F))(i)
    }
    let job = Arc::new(Job {
        func: &f as *const F as *const (),
        call: call::<F>,
        pieces,
        next: AtomicUsize::new(0),
        joiners: AtomicUsize::new(1), // the caller
        max_joiners: threads,
        poisoned: AtomicBool::new(false),
        panic: Mutex::new(None),
        done: Mutex::new(0),
        done_cv: Condvar::new(),
    });
    pool.inject(job.clone());
    job.run_claims();
    job.wait();
    pool.remove(&job);
    let payload = job.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(p) = payload {
        std::panic::resume_unwind(p);
    }
}

/// Piece count for **order-insensitive** regions (`for_each`, `map` +
/// `collect`): scales with the active thread count for load balance;
/// results are unaffected because pieces write disjoint outputs (or are
/// re-concatenated in index order).
pub(crate) fn pieces_for(len: usize) -> usize {
    len.min(effective_threads().saturating_mul(4)).max(1)
}

/// Piece count for **order-sensitive** regions (`fold`/`reduce`): a pure
/// function of `len`, never of the thread count, so f32 accumulation
/// grouping — and therefore every trained weight — is bit-identical for
/// any `MGGCN_THREADS`. Lengths ≤ [`FOLD_CHUNK`] collapse to one piece,
/// which reproduces plain sequential accumulation exactly.
pub(crate) fn fold_pieces(len: usize) -> usize {
    const MAX_PIECES: usize = 64;
    len.div_ceil(FOLD_CHUNK).clamp(1, MAX_PIECES)
}

/// Minimum items per fold piece (see [`fold_pieces`]).
pub(crate) const FOLD_CHUNK: usize = 1024;
