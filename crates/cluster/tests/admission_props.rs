//! Property tests for per-shard admission control — the bounds that make
//! the overload story a construction property:
//!
//! * the verdict is a pure function of `(queue_delay, inflight)` matching
//!   the documented spec (inflight checked first, at-bound admits);
//! * under random arrival/service processes, every *admitted* batch
//!   respects both bounds: its queue delay never exceeds
//!   `max_queue_delay` and the shard never holds more than
//!   `max_inflight` unfinished batches;
//! * shed decisions are deterministic per seed — the same arrival
//!   process yields the same verdict sequence, which is what makes a
//!   chaos failure replayable from its seed alone;
//! * `ShedReason::Fault` is reserved for injection: `admit` never
//!   produces it.

use mggcn_cluster::{AdmissionPolicy, ShedReason, Verdict};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Replay one random arrival process through the same earliest-free-GPU
/// bookkeeping `Cluster::serve_trace` uses, returning the verdict
/// sequence plus the observed bound witnesses.
struct TraceOutcome {
    verdicts: Vec<Verdict>,
    max_admitted_delay: f64,
    max_inflight_seen: usize,
}

fn run_trace(policy: &AdmissionPolicy, seed: u64, gpus: usize, n: usize) -> TraceOutcome {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ready = 0.0f64;
    let mut free_at = vec![0.0f64; gpus];
    let mut completions: Vec<f64> = Vec::new();
    let mut out = TraceOutcome {
        verdicts: Vec::with_capacity(n),
        max_admitted_delay: 0.0,
        max_inflight_seen: 0,
    };
    for _ in 0..n {
        // Bursty arrivals against slower service: contention guaranteed.
        ready += rng.gen_range(0.0..2.0e-4);
        let service = rng.gen_range(1.0e-5..6.0e-4);
        completions.retain(|&c| c > ready);
        let gpu = (0..gpus).min_by(|&x, &y| free_at[x].total_cmp(&free_at[y])).expect("has GPUs");
        let start = ready.max(free_at[gpu]);
        let queue_delay = start - ready;
        let v = policy.admit(queue_delay, completions.len());
        if v == Verdict::Admit {
            let done = start + service;
            free_at[gpu] = done;
            completions.push(done);
            out.max_admitted_delay = out.max_admitted_delay.max(queue_delay);
            out.max_inflight_seen = out.max_inflight_seen.max(completions.len());
        }
        out.verdicts.push(v);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn verdict_matches_the_documented_spec(
        max_delay in 0.0f64..1e-2,
        max_inflight in 1usize..8,
        queue_delay in 0.0f64..2e-2,
        inflight in 0usize..16,
    ) {
        let p = AdmissionPolicy::new(max_delay, max_inflight);
        let want = if inflight >= max_inflight {
            Verdict::Shed(ShedReason::Inflight)
        } else if queue_delay > max_delay {
            Verdict::Shed(ShedReason::QueueDelay)
        } else {
            Verdict::Admit
        };
        prop_assert_eq!(p.admit(queue_delay, inflight), want);
        // Fault is injection-only: no input reaches it through admit.
        prop_assert!(p.admit(queue_delay, inflight) != Verdict::Shed(ShedReason::Fault));
    }

    #[test]
    fn admitted_batches_respect_both_bounds_under_random_arrivals(
        max_delay in 0.0f64..5e-4,
        max_inflight in 1usize..6,
        gpus in 1usize..4,
        seed in any::<u64>(),
    ) {
        let p = AdmissionPolicy::new(max_delay, max_inflight);
        let out = run_trace(&p, seed, gpus, 400);
        prop_assert!(
            out.max_admitted_delay <= max_delay,
            "admitted batch waited {} > bound {}", out.max_admitted_delay, max_delay
        );
        prop_assert!(
            out.max_inflight_seen <= max_inflight,
            "shard held {} inflight > bound {}", out.max_inflight_seen, max_inflight
        );
    }

    #[test]
    fn shed_decisions_are_deterministic_per_seed(
        max_delay in 0.0f64..5e-4,
        max_inflight in 1usize..6,
        gpus in 1usize..4,
        seed in any::<u64>(),
    ) {
        let p = AdmissionPolicy::new(max_delay, max_inflight);
        let a = run_trace(&p, seed, gpus, 400);
        let b = run_trace(&p, seed, gpus, 400);
        prop_assert_eq!(a.verdicts, b.verdicts, "seed {} not replayable", seed);
    }

    #[test]
    fn unbounded_policy_sheds_nothing(
        gpus in 1usize..4,
        seed in any::<u64>(),
    ) {
        let out = run_trace(&AdmissionPolicy::unbounded(), seed, gpus, 200);
        prop_assert!(out.verdicts.iter().all(|v| *v == Verdict::Admit));
    }
}
