//! Property tests for the consistent-hash ring — the two guarantees the
//! routing tier leans on:
//!
//! * **balance**: with enough virtual nodes, every shard's share of a key
//!   population stays within a constant factor of fair;
//! * **minimal remapping**: membership changes move only the keys they
//!   must — on join, a key either keeps its old shard or moves to the new
//!   one; on leave, only the departed shard's keys relocate.

use mggcn_cluster::HashRing;
use proptest::prelude::*;

proptest! {
    #[test]
    fn key_balance_stays_within_bound(
        shards in 2usize..8,
        key_base in 0u64..1_000_000,
    ) {
        let vnodes = 128;
        let keys = 4000u64;
        let ring = HashRing::new(shards, vnodes);
        let mut counts = vec![0usize; shards];
        for k in key_base..key_base + keys {
            counts[ring.shard_of(k) as usize] += 1;
        }
        let fair = keys as f64 / shards as f64;
        for (s, &c) in counts.iter().enumerate() {
            prop_assert!(c > 0, "shard {} received no keys", s);
            let ratio = c as f64 / fair;
            // 128 vnodes keep the arc-length variance small; 2x fair is a
            // generous constant-factor bound that holds with margin.
            prop_assert!(
                (0.5..=2.0).contains(&ratio),
                "shard {} holds {} of {} keys ({}x fair)", s, c, keys, ratio
            );
        }
    }

    #[test]
    fn adding_a_shard_remaps_minimally(
        shards in 1usize..7,
        vnodes in 8usize..64,
        key_base in 0u64..1_000_000,
    ) {
        let mut ring = HashRing::new(shards, vnodes);
        let keys: Vec<u64> = (key_base..key_base + 1500).collect();
        let before: Vec<u32> = keys.iter().map(|&k| ring.shard_of(k)).collect();
        let new_shard = shards as u32;
        ring.add_shard(new_shard);
        let mut moved = 0usize;
        for (&k, &old) in keys.iter().zip(&before) {
            let now = ring.shard_of(k);
            // Minimal remapping: a key keeps its shard or joins the new one.
            prop_assert!(
                now == old || now == new_shard,
                "key {} moved {} -> {} (not the new shard)", k, old, now
            );
            if now != old {
                moved += 1;
            }
        }
        // The new shard claims about 1/(shards+1) of the keyspace; allow a
        // wide band for small vnode counts.
        let expected = keys.len() / (shards + 1);
        prop_assert!(
            moved <= expected * 3 + 50,
            "{} keys moved, expected about {}", moved, expected
        );
    }

    #[test]
    fn removing_a_shard_relocates_only_its_keys(
        shards in 2usize..8,
        vnodes in 8usize..64,
        victim_pick in 0usize..8,
        key_base in 0u64..1_000_000,
    ) {
        let mut ring = HashRing::new(shards, vnodes);
        let victim = (victim_pick % shards) as u32;
        let keys: Vec<u64> = (key_base..key_base + 1500).collect();
        let before: Vec<u32> = keys.iter().map(|&k| ring.shard_of(k)).collect();
        prop_assert!(ring.remove_shard(victim));
        for (&k, &old) in keys.iter().zip(&before) {
            let now = ring.shard_of(k);
            prop_assert!(now != victim, "key {} still routes to removed shard", k);
            if old != victim {
                prop_assert_eq!(
                    now, old,
                    "key {} moved {} -> {} though its shard survived", k, old, now
                );
            }
        }
    }
}
