//! Consistent-hash ring for request routing.
//!
//! Each shard owns `vnodes` pseudo-random points on a `u64` ring; a key is
//! routed to the shard owning the first point at or after the key's hash
//! (wrapping). Two properties make this the right router for a replica
//! set whose membership changes:
//!
//! * **balance** — with enough virtual nodes, shards receive near-equal
//!   key shares without any coordination;
//! * **minimal remapping** — adding a shard moves to it only the keys
//!   that fall into the arcs its new points claim; every other key keeps
//!   its old shard *exactly*. Removing a shard relocates only that
//!   shard's keys. Both are asserted by seeded property tests.
//!
//! Hashing is SplitMix64 — deterministic across runs and platforms, no
//! external dependency.

/// SplitMix64: a fast, well-distributed 64-bit mixer (public-domain
/// constants from Steele et al.).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A consistent-hash ring over shard ids.
#[derive(Clone, Debug)]
pub struct HashRing {
    vnodes: usize,
    /// Ring points sorted by (hash, shard) — the shard tiebreak makes the
    /// ring deterministic even under (astronomically unlikely) collisions.
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// A ring over shards `0..shards`, each with `vnodes` virtual nodes.
    pub fn new(shards: usize, vnodes: usize) -> Self {
        assert!(shards >= 1, "ring needs at least one shard");
        assert!(vnodes >= 1, "each shard needs at least one virtual node");
        let mut ring = Self { vnodes, points: Vec::with_capacity(shards * vnodes) };
        for id in 0..shards as u32 {
            ring.insert_points(id);
        }
        ring.points.sort_unstable();
        ring
    }

    fn insert_points(&mut self, id: u32) {
        for replica in 0..self.vnodes as u64 {
            let h = splitmix64(((id as u64) << 32) ^ replica ^ 0xc0ff_ee00_dead_beef);
            self.points.push((h, id));
        }
    }

    /// Number of ring points (shards × vnodes).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Distinct shard ids currently on the ring, ascending.
    pub fn shard_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.points.iter().map(|&(_, id)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Add a shard's virtual nodes to the ring (no-op if present).
    pub fn add_shard(&mut self, id: u32) {
        if self.points.iter().any(|&(_, s)| s == id) {
            return;
        }
        self.insert_points(id);
        self.points.sort_unstable();
    }

    /// Remove a shard's virtual nodes. Returns whether it was present;
    /// refuses to empty the ring.
    pub fn remove_shard(&mut self, id: u32) -> bool {
        let present = self.points.iter().any(|&(_, s)| s == id);
        if !present {
            return false;
        }
        assert!(self.shard_ids().len() > 1, "cannot remove the last shard");
        self.points.retain(|&(_, s)| s != id);
        true
    }

    /// The shard owning `key`: the first ring point at or after the key's
    /// hash, wrapping past the top of the ring.
    pub fn shard_of(&self, key: u64) -> u32 {
        let h = splitmix64(key);
        let i = self.points.partition_point(|&(p, _)| p < h);
        self.points[if i == self.points.len() { 0 } else { i }].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let ring = HashRing::new(4, 32);
        assert_eq!(ring.len(), 4 * 32);
        for key in 0..1000u64 {
            let s = ring.shard_of(key);
            assert!(s < 4);
            assert_eq!(s, ring.shard_of(key), "same key must route identically");
        }
    }

    #[test]
    fn add_then_remove_restores_the_original_ring() {
        let mut ring = HashRing::new(3, 16);
        let before: Vec<u32> = (0..500).map(|k| ring.shard_of(k)).collect();
        ring.add_shard(3);
        assert_eq!(ring.shard_ids(), vec![0, 1, 2, 3]);
        ring.remove_shard(3);
        let after: Vec<u32> = (0..500).map(|k| ring.shard_of(k)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn remove_absent_shard_is_a_noop() {
        let mut ring = HashRing::new(2, 8);
        assert!(!ring.remove_shard(7));
        assert_eq!(ring.shard_ids(), vec![0, 1]);
    }
}
