//! Sharded multi-replica GCN serving: the cluster tier above `serve`.
//!
//! One simulated machine serves one model well (`mggcn-serve`); this crate
//! scales that out the way production GNN inference does — by putting a
//! routing front end over `P` shard replicas and making overload a
//! designed-for state instead of a failure mode:
//!
//! * **routing** ([`ring`], [`Router`]): a consistent-hash ring (SplitMix64,
//!   virtual nodes) with proptest-verified balance and minimal-remapping
//!   properties, overridden per-vertex by a partition plan when one is
//!   installed;
//! * **cache-aware partitioning** ([`partition`]): balance-capped label
//!   propagation over the CSR adjacency homes each vertex with its k-hop
//!   neighborhood, scored by the exact §5.1 byte accounting
//!   (`comm::analysis`) as cross-shard fan-out bytes — measurably below a
//!   random partition on community graphs;
//! * **admission control + load shedding** ([`admission`]): bounded queue
//!   delay and bounded inflight per shard; everything over the bound is
//!   shed to a **degraded** answer (the shard's cached layer-0 aggregation
//!   row through the dense tail — deterministic, tagged, fixed cost) so the
//!   admitted-request p99 SLO holds by construction and nothing ever waits
//!   unboundedly;
//! * **cluster-wide accounting** ([`report`]): per-shard and merged latency
//!   quantiles, shed counters, and the `BENCH_cluster.json` schema contract
//!   (`validate_cluster_bench`) that `mggcn cluster-bench` gates CI on.
//!
//! Admitted answers are bit-identical to the single-replica oracle
//! ([`mggcn_serve::ServingModel::forward_full`]) for any shard count and
//! either execution backend — asserted by the testkit differential suite.

#![forbid(unsafe_code)]

pub mod admission;
pub mod cluster;
pub mod partition;
pub mod report;
pub mod ring;

pub use admission::{AdmissionPolicy, ShedReason, Verdict};
pub use cluster::{Answer, Cluster, ClusterConfig, ClusterOutcome, Router};
pub use partition::PartitionPlan;
pub use report::{
    validate_cluster_bench, validate_cluster_report, ClusterReport, ShardReport,
    BENCH_CLUSTER_SCHEMA,
};
pub use ring::{splitmix64, HashRing};
