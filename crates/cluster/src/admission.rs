//! Per-shard admission control: bounded queues, deterministic shedding.
//!
//! A shard admits a batch only while its queue delay and inflight count
//! stay under policy bounds; everything else is **shed** to the degraded
//! path instead of queueing without limit. That single rule is what turns
//! the open-loop overload test into a bounded system: an admitted
//! request's latency is at most
//!
//! ```text
//! window + max_queue_delay + max batch service time
//! ```
//!
//! (batching delay + the admission bound + the service of its own batch),
//! so the admitted-request p99 SLO holds *by construction* at any offered
//! load, while shed requests get an immediate degraded answer with a
//! fixed host-side cost — never a timeout.

/// Admission policy for one shard.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionPolicy {
    /// Maximum seconds a new batch may wait for a free replica GPU before
    /// the shard sheds it.
    pub max_queue_delay: f64,
    /// Maximum batches admitted but not yet completed (per shard, across
    /// its replica GPUs).
    pub max_inflight: usize,
}

impl AdmissionPolicy {
    pub fn new(max_queue_delay: f64, max_inflight: usize) -> Self {
        assert!(max_queue_delay >= 0.0, "queue-delay bound must be non-negative");
        assert!(max_inflight >= 1, "a shard must admit at least one batch");
        Self { max_queue_delay, max_inflight }
    }

    /// Effectively no admission control (differential tests: every request
    /// must take the exact path).
    pub fn unbounded() -> Self {
        Self { max_queue_delay: f64::INFINITY, max_inflight: usize::MAX }
    }
}

/// The admission verdict for one batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    Admit,
    /// Shed: the queue-delay bound or the inflight bound would be
    /// violated. Carries which bound tripped, for counters.
    Shed(ShedReason),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    QueueDelay,
    Inflight,
    /// The shard (or its cache node) is down: the batch never reaches
    /// admission proper and is forced onto the degraded path. Only ever
    /// produced by fault injection, not by [`AdmissionPolicy::admit`].
    Fault,
}

impl AdmissionPolicy {
    /// Decide one batch: `queue_delay` is how long it would wait for the
    /// earliest-free replica GPU, `inflight` the batches already admitted
    /// and not yet completed at its ready time.
    pub fn admit(&self, queue_delay: f64, inflight: usize) -> Verdict {
        if inflight >= self.max_inflight {
            Verdict::Shed(ShedReason::Inflight)
        } else if queue_delay > self.max_queue_delay {
            Verdict::Shed(ShedReason::QueueDelay)
        } else {
            Verdict::Admit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_trip_in_priority_order() {
        let p = AdmissionPolicy::new(2e-3, 4);
        assert_eq!(p.admit(0.0, 0), Verdict::Admit);
        assert_eq!(p.admit(2e-3, 3), Verdict::Admit, "at the bound is still admitted");
        assert_eq!(p.admit(3e-3, 0), Verdict::Shed(ShedReason::QueueDelay));
        assert_eq!(p.admit(0.0, 4), Verdict::Shed(ShedReason::Inflight));
        // Inflight is checked first: a full shard sheds regardless of delay.
        assert_eq!(p.admit(9.0, 9), Verdict::Shed(ShedReason::Inflight));
    }

    #[test]
    fn unbounded_policy_admits_everything() {
        let p = AdmissionPolicy::unbounded();
        assert_eq!(p.admit(1e9, usize::MAX - 1), Verdict::Admit);
    }
}
