//! The sharded serving front end: routing, per-shard batching + admission,
//! load shedding, and cluster-wide latency accounting.
//!
//! A [`Cluster`] is `P` shards, each a full [`serve::Server`] replica set
//! (model weights and graph are `Arc`-shared, so replication is cheap).
//! The [`Router`] homes every vertex on one shard — by cache-aware
//! [`PartitionPlan`] when one is installed, by consistent-hash ring
//! otherwise (and for any vertex outside the plan, e.g. after growth) —
//! so each shard's propagation cache only ever holds rows for its own
//! residents and the hot set it actually serves.
//!
//! [`Cluster::serve_trace`] runs an arrival-ordered request trace to
//! completion on the simulated clock: per shard, requests micro-batch
//! under the shared [`BatchPolicy`], each closed batch passes the
//! [`AdmissionPolicy`] (bounded queue delay, bounded inflight), admitted
//! batches execute on the earliest-free replica GPU via
//! [`Server::run_batch`] (bit-identical to the single-replica oracle),
//! and shed batches get immediate **degraded** answers from
//! [`Server::degraded_answer`] — tagged, deterministic, fixed cost, never
//! a timeout. Every request is answered exactly once; the latency of an
//! admitted request is bounded by `window + max_queue_delay + batch
//! service`, which is what makes the p99 SLO a construction property
//! rather than a tuning accident.

use crate::admission::{AdmissionPolicy, ShedReason, Verdict};
use crate::partition::PartitionPlan;
use crate::report::{ClusterReport, ShardReport};
use crate::ring::HashRing;
use mggcn_exec::Backend;
use mggcn_gpusim::{GpuSpec, LatencyStats, MachineSpec};
use mggcn_serve::{form_batches, BatchPolicy, Request, ServeConfig, Server, ServingModel};
use mggcn_trace::Tracer;
use std::sync::Arc;

/// Cluster-wide configuration: topology, batching, admission, fallback.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    pub shards: usize,
    pub gpus_per_shard: usize,
    pub policy: BatchPolicy,
    /// Per-shard propagation-cache budget, bytes.
    pub cache_bytes: usize,
    pub admission: AdmissionPolicy,
    pub backend: Backend,
    /// Virtual nodes per shard on the routing ring.
    pub vnodes: usize,
    /// Fixed host-side cost of one degraded answer, seconds.
    pub degraded_cost: f64,
}

impl ClusterConfig {
    pub fn new(shards: usize, gpus_per_shard: usize, policy: BatchPolicy) -> Self {
        assert!(shards >= 1, "cluster needs at least one shard");
        assert!(gpus_per_shard >= 1, "each shard needs at least one replica GPU");
        Self {
            shards,
            gpus_per_shard,
            policy,
            cache_bytes: 1 << 20,
            admission: AdmissionPolicy::unbounded(),
            backend: Backend::Simulated,
            vnodes: 64,
            degraded_cost: 20.0e-6,
        }
    }

    /// The per-shard machine: `gpus_per_shard` A100s behind NVSwitch.
    pub fn shard_machine(&self) -> MachineSpec {
        MachineSpec::uniform("shard", GpuSpec::a100(), self.gpus_per_shard, 12, 25.0e9)
    }
}

/// Routes a vertex to its home shard: partition plan first, hash ring for
/// anything the plan does not cover (or when no plan is installed).
#[derive(Clone, Debug)]
pub struct Router {
    ring: HashRing,
    assignment: Option<Vec<u32>>,
}

impl Router {
    /// Pure consistent-hash routing.
    pub fn hash_only(shards: usize, vnodes: usize) -> Self {
        Self { ring: HashRing::new(shards, vnodes), assignment: None }
    }

    /// Plan-backed routing with the ring as fallback for out-of-plan keys.
    pub fn with_plan(plan: &PartitionPlan, vnodes: usize) -> Self {
        Self { ring: HashRing::new(plan.shards, vnodes), assignment: Some(plan.assignment.clone()) }
    }

    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The home shard of `vertex`.
    pub fn route(&self, vertex: u32) -> u32 {
        if let Some(a) = &self.assignment {
            if let Some(&shard) = a.get(vertex as usize) {
                return shard;
            }
        }
        self.ring.shard_of(vertex as u64)
    }
}

/// One answered request. Exactly one answer exists per request id;
/// `degraded` distinguishes the exact batched path from the shed
/// fallback, and `from_cache` says whether a degraded answer used the
/// cached layer-0 aggregation row (vs. the raw feature row).
#[derive(Clone, Debug)]
pub struct Answer {
    pub id: u64,
    pub vertex: u32,
    pub shard: u32,
    pub row: Vec<f32>,
    pub degraded: bool,
    pub from_cache: bool,
    /// Answer time minus arrival, seconds on the simulated clock.
    pub latency: f64,
}

/// The full outcome of one trace: every answer plus the aggregate report.
pub struct ClusterOutcome {
    pub answers: Vec<Answer>,
    pub report: ClusterReport,
}

/// A sharded multi-replica serving cluster.
pub struct Cluster {
    shards: Vec<Server>,
    router: Router,
    cfg: ClusterConfig,
    tracer: Option<Arc<Tracer>>,
}

impl Cluster {
    /// Build a cluster of full replicas of `model`. With a partition plan
    /// the router homes vertices cache-aware; without one it hashes.
    pub fn new(model: &ServingModel, cfg: ClusterConfig, plan: Option<&PartitionPlan>) -> Self {
        if let Some(p) = plan {
            assert_eq!(p.shards, cfg.shards, "plan shard count must match the cluster");
        }
        let router = match plan {
            Some(p) => Router::with_plan(p, cfg.vnodes),
            None => Router::hash_only(cfg.shards, cfg.vnodes),
        };
        let shards = (0..cfg.shards)
            .map(|_| {
                let mut sc = ServeConfig::new(cfg.shard_machine(), cfg.policy, cfg.cache_bytes);
                sc.backend = cfg.backend;
                Server::new(model.clone(), sc)
            })
            .collect();
        Self { shards, router, cfg, tracer: None }
    }

    pub fn router(&self) -> &Router {
        &self.router
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    pub fn shard(&self, id: usize) -> &Server {
        &self.shards[id]
    }

    /// Override the admission policy (capacity calibration runs unbounded,
    /// the overload run bounded).
    pub fn set_admission(&mut self, policy: AdmissionPolicy) {
        self.cfg.admission = policy;
    }

    /// Attach a tracer: cluster routing/shed counters and latency
    /// histograms, plus every shard's batch timelines.
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        for s in &mut self.shards {
            s.set_tracer(tracer.clone());
        }
        self.tracer = Some(tracer);
    }

    /// Serve an arrival-ordered trace to completion. Every request gets
    /// exactly one answer — exact (admitted) or degraded (shed) — and the
    /// returned answers are sorted by request id.
    pub fn serve_trace(&mut self, label: &str, requests: &[Request]) -> ClusterOutcome {
        if requests.is_empty() {
            return ClusterOutcome { answers: Vec::new(), report: ClusterReport::zero(label) };
        }
        for w in requests.windows(2) {
            assert!(w[0].arrival <= w[1].arrival, "requests must be arrival-sorted");
        }

        // Route: per-shard sub-traces keep global arrival order.
        let mut per_shard: Vec<Vec<Request>> = vec![Vec::new(); self.cfg.shards];
        for r in requests {
            let shard = self.router.route(r.vertex);
            per_shard[shard as usize].push(*r);
        }

        let mut answers: Vec<Answer> = Vec::with_capacity(requests.len());
        let mut shard_reports: Vec<ShardReport> = Vec::with_capacity(self.cfg.shards);
        let mut cluster_admitted = LatencyStats::new();
        let mut cluster_degraded = LatencyStats::new();
        let mut compute_seconds = 0.0f64;
        let mut shed_queue_delay = 0usize;
        let mut shed_inflight = 0usize;
        let mut last_answer = 0.0f64;

        for (sid, shard_reqs) in per_shard.iter().enumerate() {
            if let Some(t) = &self.tracer {
                t.counter_add(&format!("cluster.routed.shard{sid}"), shard_reqs.len() as u64);
            }
            let server = &mut self.shards[sid];
            let stats_before = *server.cache().stats();
            let batches = form_batches(shard_reqs, &self.cfg.policy);
            let mut free_at = vec![0.0f64; self.cfg.gpus_per_shard];
            // Completion times of admitted-but-unfinished batches, pruned
            // against each batch's ready time (ready times are
            // nondecreasing, see `form_batches`).
            let mut completions: Vec<f64> = Vec::new();
            let mut admitted_lat = LatencyStats::new();
            let mut shard_admitted = 0usize;
            let mut shard_degraded = 0usize;
            let mut shard_shed = 0usize;
            let mut shard_compute = 0.0f64;

            for b in &batches {
                completions.retain(|&c| c > b.ready_at);
                let gpu = (0..free_at.len())
                    .min_by(|&x, &y| free_at[x].total_cmp(&free_at[y]))
                    .expect("shard has GPUs");
                let start = b.ready_at.max(free_at[gpu]);
                let queue_delay = start - b.ready_at;
                match self.cfg.admission.admit(queue_delay, completions.len()) {
                    Verdict::Admit => {
                        let (out, service) = server.run_batch(&b.vertices(), gpu);
                        let done = start + service;
                        free_at[gpu] = done;
                        completions.push(done);
                        shard_compute += service;
                        shard_admitted += b.len();
                        last_answer = last_answer.max(done);
                        for (i, r) in b.requests.iter().enumerate() {
                            let latency = done - r.arrival;
                            admitted_lat.record(latency);
                            answers.push(Answer {
                                id: r.id,
                                vertex: r.vertex,
                                shard: sid as u32,
                                row: out.row(i).to_vec(),
                                degraded: false,
                                from_cache: false,
                                latency,
                            });
                            if let Some(t) = &self.tracer {
                                t.latency_record("cluster.admitted_latency_seconds", latency);
                            }
                        }
                    }
                    Verdict::Shed(reason) => {
                        shard_shed += 1;
                        match reason {
                            ShedReason::QueueDelay => shed_queue_delay += 1,
                            ShedReason::Inflight => shed_inflight += 1,
                        }
                        if let Some(t) = &self.tracer {
                            let name = match reason {
                                ShedReason::QueueDelay => "cluster.shed.queue_delay",
                                ShedReason::Inflight => "cluster.shed.inflight",
                            };
                            t.counter_add(name, 1);
                        }
                        // Degraded answers are served host-side at the
                        // batch's ready time — no GPU queueing, fixed cost.
                        let done = b.ready_at + self.cfg.degraded_cost;
                        shard_degraded += b.len();
                        last_answer = last_answer.max(done);
                        for r in &b.requests {
                            let (row, from_cache) = server.degraded_answer(r.vertex);
                            let latency = done - r.arrival;
                            cluster_degraded.record(latency);
                            answers.push(Answer {
                                id: r.id,
                                vertex: r.vertex,
                                shard: sid as u32,
                                row,
                                degraded: true,
                                from_cache,
                                latency,
                            });
                            if let Some(t) = &self.tracer {
                                t.latency_record("cluster.degraded_latency_seconds", latency);
                            }
                        }
                    }
                }
            }

            let s = server.cache().stats();
            let (h, m) = (s.hits - stats_before.hits, s.misses - stats_before.misses);
            let hit_rate = if h + m > 0 { h as f64 / (h + m) as f64 } else { 0.0 };
            shard_reports.push(ShardReport {
                shard: sid as u32,
                requests: shard_reqs.len(),
                admitted: shard_admitted,
                degraded: shard_degraded,
                batches: batches.len(),
                shed_batches: shard_shed,
                p50_ms: admitted_lat.p50() * 1e3,
                p99_ms: admitted_lat.p99() * 1e3,
                max_ms: admitted_lat.max() * 1e3,
                compute_seconds: shard_compute,
                cache_hit_rate: hit_rate,
            });
            compute_seconds += shard_compute;
            cluster_admitted.merge(&admitted_lat);
        }

        if let Some(t) = &self.tracer {
            t.counter_add("cluster.requests", requests.len() as u64);
            t.counter_add("cluster.admitted", cluster_admitted.count() as u64);
            t.counter_add("cluster.degraded", cluster_degraded.count() as u64);
        }

        answers.sort_by_key(|a| a.id);
        debug_assert_eq!(answers.len(), requests.len(), "every request answered exactly once");

        let admitted = cluster_admitted.count();
        let degraded = cluster_degraded.count();
        let duration = (last_answer - requests[0].arrival).max(f64::MIN_POSITIVE);
        let report = ClusterReport {
            label: label.to_string(),
            requests: requests.len(),
            admitted,
            degraded,
            degraded_rate: degraded as f64 / requests.len() as f64,
            duration,
            throughput_rps: requests.len() as f64 / duration,
            admitted_mean_ms: cluster_admitted.mean() * 1e3,
            admitted_p50_ms: cluster_admitted.p50() * 1e3,
            admitted_p95_ms: cluster_admitted.p95() * 1e3,
            admitted_p99_ms: cluster_admitted.p99() * 1e3,
            admitted_max_ms: cluster_admitted.max() * 1e3,
            degraded_p99_ms: cluster_degraded.p99() * 1e3,
            degraded_max_ms: cluster_degraded.max() * 1e3,
            compute_seconds,
            shed_queue_delay,
            shed_inflight,
            shards: shard_reports,
        };
        ClusterOutcome { answers, report }
    }

    /// Estimate the cluster's saturation throughput (requests/second) by
    /// serving `sample` with admission disabled and amortizing the
    /// measured GPU-busy seconds over the full replica pool:
    /// `capacity = requests · total_gpus / compute_seconds`. The sample
    /// also warms the propagation caches, so a subsequent overload run
    /// measures steady-state behaviour.
    pub fn measure_capacity(&mut self, sample: &[Request]) -> f64 {
        let saved = self.cfg.admission;
        self.cfg.admission = AdmissionPolicy::unbounded();
        let outcome = self.serve_trace("calibrate", sample);
        self.cfg.admission = saved;
        if outcome.report.compute_seconds <= 0.0 {
            return f64::INFINITY;
        }
        let total_gpus = (self.cfg.shards * self.cfg.gpus_per_shard) as f64;
        sample.len() as f64 * total_gpus / outcome.report.compute_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_dense::Dense;
    use mggcn_graph::generators::chung_lu;
    use mggcn_serve::LoadGenConfig;

    fn tiny_model(n: usize) -> ServingModel {
        let adj = chung_lu::generate(&vec![4u32; n], 9);
        let feats = Dense::from_fn(n, 6, |r, c| ((r + 2 * c) as f32).sin());
        let w0 = Dense::from_fn(6, 5, |r, c| ((r * 2 + c) as f32).cos() * 0.3);
        let w1 = Dense::from_fn(5, 3, |r, c| ((r + 3 * c) as f32).sin() * 0.3);
        ServingModel::from_parts(vec![w0, w1], adj, feats).expect("valid model")
    }

    fn trace(n_req: usize, vertices: usize, qps: f64) -> Vec<Request> {
        mggcn_serve::generate_load(&LoadGenConfig::uniform(qps, n_req, vertices, 11))
    }

    #[test]
    fn empty_trace_yields_zero_report() {
        let model = tiny_model(32);
        let mut cluster =
            Cluster::new(&model, ClusterConfig::new(2, 1, BatchPolicy::new(1e-3, 8)), None);
        let out = cluster.serve_trace("empty", &[]);
        assert!(out.answers.is_empty());
        assert_eq!(out.report.requests, 0);
    }

    #[test]
    fn unbounded_cluster_answers_everything_exactly_and_matches_oracle() {
        let model = tiny_model(64);
        let reference = model.forward_full();
        let cfg = ClusterConfig::new(2, 2, BatchPolicy::new(1e-3, 8));
        let plan = PartitionPlan::random(64, 2, 5);
        let mut cluster = Cluster::new(&model, cfg, Some(&plan));
        let reqs = trace(120, 64, 5000.0);
        let out = cluster.serve_trace("exact", &reqs);
        assert_eq!(out.answers.len(), reqs.len());
        assert_eq!(out.report.degraded, 0);
        for (a, r) in out.answers.iter().zip(&reqs) {
            assert_eq!(a.id, r.id, "answers sorted by request id");
            assert!(!a.degraded);
            assert_eq!(a.shard, plan.shard_of(a.vertex), "plan governs routing");
            assert_eq!(a.row, reference.row(a.vertex as usize), "bit-identical to oracle");
            assert!(a.latency > 0.0 && a.latency.is_finite());
        }
    }

    #[test]
    fn tight_admission_sheds_but_answers_every_request() {
        let model = tiny_model(64);
        let reference = model.forward_full();
        let mut cfg = ClusterConfig::new(2, 1, BatchPolicy::new(1e-4, 4));
        cfg.admission = AdmissionPolicy::new(0.0, 1);
        let mut cluster = Cluster::new(&model, cfg, None);
        // Far beyond one GPU per shard: shedding must kick in.
        let reqs = trace(400, 64, 2.0e6);
        let out = cluster.serve_trace("overload", &reqs);
        assert_eq!(out.answers.len(), reqs.len(), "no request is dropped");
        assert!(out.report.degraded > 0, "overload must shed");
        assert!(out.report.admitted > 0, "shedding must not starve the exact path");
        for a in &out.answers {
            if !a.degraded {
                assert_eq!(a.row, reference.row(a.vertex as usize));
            }
            assert!(a.latency.is_finite() && a.latency >= 0.0);
        }
        // Degraded latency is bounded by window + degraded cost.
        let bound = 1e-4 + cluster.config().degraded_cost + 1e-12;
        assert!(out.answers.iter().filter(|a| a.degraded).all(|a| a.latency <= bound));
    }

    #[test]
    fn capacity_estimate_is_finite_and_positive() {
        let model = tiny_model(48);
        let mut cluster =
            Cluster::new(&model, ClusterConfig::new(2, 2, BatchPolicy::new(1e-3, 8)), None);
        let cap = cluster.measure_capacity(&trace(100, 48, 1000.0));
        assert!(cap.is_finite() && cap > 0.0, "capacity {cap}");
    }

    #[test]
    fn router_prefers_plan_and_falls_back_to_ring() {
        let plan = PartitionPlan { shards: 3, assignment: vec![2, 0, 1], strategy: "cache-aware" };
        let router = Router::with_plan(&plan, 16);
        assert_eq!(router.route(0), 2);
        assert_eq!(router.route(2), 1);
        // Vertex 99 is outside the plan: the ring answers, in range.
        assert!(router.route(99) < 3);
    }
}
