//! The sharded serving front end: routing, per-shard batching + admission,
//! load shedding, and cluster-wide latency accounting.
//!
//! A [`Cluster`] is `P` shards, each a full [`serve::Server`] replica set
//! (model weights and graph are `Arc`-shared, so replication is cheap).
//! The [`Router`] homes every vertex on one shard — by cache-aware
//! [`PartitionPlan`] when one is installed, by consistent-hash ring
//! otherwise (and for any vertex outside the plan, e.g. after growth) —
//! so each shard's propagation cache only ever holds rows for its own
//! residents and the hot set it actually serves.
//!
//! [`Cluster::serve_trace`] runs an arrival-ordered request trace to
//! completion on the simulated clock: per shard, requests micro-batch
//! under the shared [`BatchPolicy`], each closed batch passes the
//! [`AdmissionPolicy`] (bounded queue delay, bounded inflight), admitted
//! batches execute on the earliest-free replica GPU via
//! [`Server::run_batch`] (bit-identical to the single-replica oracle),
//! and shed batches get immediate **degraded** answers from
//! [`Server::degraded_answer`] — tagged, deterministic, fixed cost, never
//! a timeout. Every request is answered exactly once; the latency of an
//! admitted request is bounded by `window + max_queue_delay + batch
//! service`, which is what makes the p99 SLO a construction property
//! rather than a tuning accident.

use crate::admission::{AdmissionPolicy, ShedReason, Verdict};
use crate::partition::PartitionPlan;
use crate::report::{ClusterReport, ShardReport};
use crate::ring::HashRing;
use mggcn_exec::Backend;
use mggcn_gpusim::{GpuSpec, LatencyStats, MachineSpec};
use mggcn_sched::{Action, Component, DispatchSite, EventQueue, Injector, Policy, Scheduler};
use mggcn_serve::{form_batches, Batch, BatchPolicy, Request, ServeConfig, Server, ServingModel};
use mggcn_trace::Tracer;
use std::sync::Arc;

/// Cluster-wide configuration: topology, batching, admission, fallback.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    pub shards: usize,
    pub gpus_per_shard: usize,
    pub policy: BatchPolicy,
    /// Per-shard propagation-cache budget, bytes.
    pub cache_bytes: usize,
    pub admission: AdmissionPolicy,
    pub backend: Backend,
    /// Virtual nodes per shard on the routing ring.
    pub vnodes: usize,
    /// Fixed host-side cost of one degraded answer, seconds.
    pub degraded_cost: f64,
}

impl ClusterConfig {
    pub fn new(shards: usize, gpus_per_shard: usize, policy: BatchPolicy) -> Self {
        assert!(shards >= 1, "cluster needs at least one shard");
        assert!(gpus_per_shard >= 1, "each shard needs at least one replica GPU");
        Self {
            shards,
            gpus_per_shard,
            policy,
            cache_bytes: 1 << 20,
            admission: AdmissionPolicy::unbounded(),
            backend: Backend::Simulated,
            vnodes: 64,
            degraded_cost: 20.0e-6,
        }
    }

    /// The per-shard machine: `gpus_per_shard` A100s behind NVSwitch.
    pub fn shard_machine(&self) -> MachineSpec {
        MachineSpec::uniform("shard", GpuSpec::a100(), self.gpus_per_shard, 12, 25.0e9)
    }
}

/// Routes a vertex to its home shard: partition plan first, hash ring for
/// anything the plan does not cover (or when no plan is installed).
#[derive(Clone, Debug)]
pub struct Router {
    ring: HashRing,
    assignment: Option<Vec<u32>>,
}

impl Router {
    /// Pure consistent-hash routing.
    pub fn hash_only(shards: usize, vnodes: usize) -> Self {
        Self { ring: HashRing::new(shards, vnodes), assignment: None }
    }

    /// Plan-backed routing with the ring as fallback for out-of-plan keys.
    pub fn with_plan(plan: &PartitionPlan, vnodes: usize) -> Self {
        Self { ring: HashRing::new(plan.shards, vnodes), assignment: Some(plan.assignment.clone()) }
    }

    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The home shard of `vertex`.
    pub fn route(&self, vertex: u32) -> u32 {
        if let Some(a) = &self.assignment {
            if let Some(&shard) = a.get(vertex as usize) {
                return shard;
            }
        }
        self.ring.shard_of(vertex as u64)
    }
}

/// One answered request. Exactly one answer exists per request id;
/// `degraded` distinguishes the exact batched path from the shed
/// fallback, and `from_cache` says whether a degraded answer used the
/// cached layer-0 aggregation row (vs. the raw feature row).
#[derive(Clone, Debug)]
pub struct Answer {
    pub id: u64,
    pub vertex: u32,
    pub shard: u32,
    pub row: Vec<f32>,
    pub degraded: bool,
    pub from_cache: bool,
    /// Answer time minus arrival, seconds on the simulated clock.
    pub latency: f64,
}

/// The full outcome of one trace: every answer plus the aggregate report.
pub struct ClusterOutcome {
    pub answers: Vec<Answer>,
    pub report: ClusterReport,
}

/// A sharded multi-replica serving cluster.
pub struct Cluster {
    shards: Vec<Server>,
    router: Router,
    cfg: ClusterConfig,
    tracer: Option<Arc<Tracer>>,
}

impl Cluster {
    /// Build a cluster of full replicas of `model`. With a partition plan
    /// the router homes vertices cache-aware; without one it hashes.
    pub fn new(model: &ServingModel, cfg: ClusterConfig, plan: Option<&PartitionPlan>) -> Self {
        if let Some(p) = plan {
            assert_eq!(p.shards, cfg.shards, "plan shard count must match the cluster");
        }
        let router = match plan {
            Some(p) => Router::with_plan(p, cfg.vnodes),
            None => Router::hash_only(cfg.shards, cfg.vnodes),
        };
        let shards = (0..cfg.shards)
            .map(|_| {
                let mut sc = ServeConfig::new(cfg.shard_machine(), cfg.policy, cfg.cache_bytes);
                sc.backend = cfg.backend;
                Server::new(model.clone(), sc)
            })
            .collect();
        Self { shards, router, cfg, tracer: None }
    }

    pub fn router(&self) -> &Router {
        &self.router
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    pub fn shard(&self, id: usize) -> &Server {
        &self.shards[id]
    }

    /// Override the admission policy (capacity calibration runs unbounded,
    /// the overload run bounded).
    pub fn set_admission(&mut self, policy: AdmissionPolicy) {
        self.cfg.admission = policy;
    }

    /// Attach a tracer: cluster routing/shed counters and latency
    /// histograms, plus every shard's batch timelines.
    pub fn set_tracer(&mut self, tracer: Arc<Tracer>) {
        for s in &mut self.shards {
            s.set_tracer(tracer.clone());
        }
        self.tracer = Some(tracer);
    }

    /// Serve an arrival-ordered trace to completion. Every request gets
    /// exactly one answer — exact (admitted) or degraded (shed) — and the
    /// returned answers are sorted by request id.
    pub fn serve_trace(&mut self, label: &str, requests: &[Request]) -> ClusterOutcome {
        self.serve_trace_chaos(label, requests, &Injector::none())
    }

    /// [`serve_trace`](Self::serve_trace) under fault injection. Each
    /// shard's batch loop is a scheduler [`Component`] ([`ShardSweep`]),
    /// run shard-major so the fault-free path stays bit-identical to the
    /// legacy sequential sweep. The injector can defer batches
    /// (preemption) or take a shard down — shard loss forces tagged
    /// degraded answers with a fixed host-side cost (never a timeout) and
    /// drops the dead shard's propagation cache (cache-node loss).
    pub fn serve_trace_chaos(
        &mut self,
        label: &str,
        requests: &[Request],
        inj: &Injector,
    ) -> ClusterOutcome {
        if requests.is_empty() {
            return ClusterOutcome { answers: Vec::new(), report: ClusterReport::zero(label) };
        }
        for w in requests.windows(2) {
            assert!(w[0].arrival <= w[1].arrival, "requests must be arrival-sorted");
        }

        // Route: per-shard sub-traces keep global arrival order.
        let mut per_shard: Vec<Vec<Request>> = vec![Vec::new(); self.cfg.shards];
        for r in requests {
            let shard = self.router.route(r.vertex);
            per_shard[shard as usize].push(*r);
        }

        let mut answers: Vec<Answer> = Vec::with_capacity(requests.len());
        let mut shard_reports: Vec<ShardReport> = Vec::with_capacity(self.cfg.shards);
        let mut cluster_admitted = LatencyStats::new();
        let mut cluster_degraded = LatencyStats::new();
        let mut compute_seconds = 0.0f64;
        let mut shed_queue_delay = 0usize;
        let mut shed_inflight = 0usize;
        let mut shed_fault = 0usize;
        let mut last_answer = 0.0f64;

        for (sid, shard_reqs) in per_shard.iter().enumerate() {
            if let Some(t) = &self.tracer {
                t.counter_add(&format!("cluster.routed.shard{sid}"), shard_reqs.len() as u64);
            }
            let server = &mut self.shards[sid];
            let stats_before = *server.cache().stats();
            let batches = form_batches(shard_reqs, &self.cfg.policy);
            let n_batches = batches.len();
            // Batches enter the event queue at their ready times; ready
            // times are nondecreasing (see `form_batches`) and ties pop
            // FIFO, so dispatch order equals formation order.
            let mut queue = EventQueue::new();
            for b in batches {
                queue.push(b.ready_at, b);
            }
            let mut sweep = ShardSweep {
                sid,
                server,
                admission: self.cfg.admission,
                degraded_cost: self.cfg.degraded_cost,
                tracer: self.tracer.clone(),
                queue,
                seq: 0,
                free_at: vec![0.0f64; self.cfg.gpus_per_shard],
                completions: Vec::new(),
                lost: None,
                admitted_lat: LatencyStats::new(),
                shard_admitted: 0,
                shard_degraded: 0,
                shard_shed: 0,
                shard_compute: 0.0,
                answers: &mut answers,
                cluster_degraded: &mut cluster_degraded,
                last_answer: &mut last_answer,
                shed_queue_delay: &mut shed_queue_delay,
                shed_inflight: &mut shed_inflight,
                shed_fault: &mut shed_fault,
            };
            Scheduler::new(Policy::DiscreteEvent)
                .run(&mut [&mut sweep], inj)
                .expect("shard sweep cannot stall: every queued batch has a finite ready time");

            let s = sweep.server.cache().stats();
            let (h, m) = (s.hits - stats_before.hits, s.misses - stats_before.misses);
            let hit_rate = if h + m > 0 { h as f64 / (h + m) as f64 } else { 0.0 };
            shard_reports.push(ShardReport {
                shard: sid as u32,
                requests: shard_reqs.len(),
                admitted: sweep.shard_admitted,
                degraded: sweep.shard_degraded,
                batches: n_batches,
                shed_batches: sweep.shard_shed,
                p50_ms: sweep.admitted_lat.p50() * 1e3,
                p99_ms: sweep.admitted_lat.p99() * 1e3,
                max_ms: sweep.admitted_lat.max() * 1e3,
                compute_seconds: sweep.shard_compute,
                cache_hit_rate: hit_rate,
            });
            compute_seconds += sweep.shard_compute;
            cluster_admitted.merge(&sweep.admitted_lat);
        }

        if let Some(t) = &self.tracer {
            t.counter_add("cluster.requests", requests.len() as u64);
            t.counter_add("cluster.admitted", cluster_admitted.count() as u64);
            t.counter_add("cluster.degraded", cluster_degraded.count() as u64);
        }

        answers.sort_by_key(|a| a.id);
        debug_assert_eq!(answers.len(), requests.len(), "every request answered exactly once");

        let admitted = cluster_admitted.count();
        let degraded = cluster_degraded.count();
        let duration = (last_answer - requests[0].arrival).max(f64::MIN_POSITIVE);
        let report = ClusterReport {
            label: label.to_string(),
            requests: requests.len(),
            admitted,
            degraded,
            degraded_rate: degraded as f64 / requests.len() as f64,
            duration,
            throughput_rps: requests.len() as f64 / duration,
            admitted_mean_ms: cluster_admitted.mean() * 1e3,
            admitted_p50_ms: cluster_admitted.p50() * 1e3,
            admitted_p95_ms: cluster_admitted.p95() * 1e3,
            admitted_p99_ms: cluster_admitted.p99() * 1e3,
            admitted_max_ms: cluster_admitted.max() * 1e3,
            degraded_p99_ms: cluster_degraded.p99() * 1e3,
            degraded_max_ms: cluster_degraded.max() * 1e3,
            compute_seconds,
            shed_queue_delay,
            shed_inflight,
            shed_fault,
            shards: shard_reports,
        };
        ClusterOutcome { answers, report }
    }

    /// Estimate the cluster's saturation throughput (requests/second) by
    /// serving `sample` with admission disabled and amortizing the
    /// measured GPU-busy seconds over the full replica pool:
    /// `capacity = requests · total_gpus / compute_seconds`. The sample
    /// also warms the propagation caches, so a subsequent overload run
    /// measures steady-state behaviour.
    pub fn measure_capacity(&mut self, sample: &[Request]) -> f64 {
        let saved = self.cfg.admission;
        self.cfg.admission = AdmissionPolicy::unbounded();
        let outcome = self.serve_trace("calibrate", sample);
        self.cfg.admission = saved;
        if outcome.report.compute_seconds <= 0.0 {
            return f64::INFINITY;
        }
        let total_gpus = (self.cfg.shards * self.cfg.gpus_per_shard) as f64;
        sample.len() as f64 * total_gpus / outcome.report.compute_seconds
    }
}

/// One shard's batch loop as a scheduler [`Component`]. The event queue
/// holds formed batches keyed by ready time; each dispatch replays the
/// legacy admit-or-shed step for one batch. Injection hooks sit at the
/// dispatch point: a pause defers the batch (preemption), a kill or a
/// planned [`ShardLoss`](mggcn_sched::ShardLoss) takes the shard down —
/// from the loss instant on, every batch is forced degraded with
/// [`ShedReason::Fault`] and the propagation cache is dropped once
/// (cache-node loss), so surviving shards stay bit-identical while the
/// dead shard degrades gracefully instead of timing out.
struct ShardSweep<'a> {
    sid: usize,
    server: &'a mut Server,
    admission: AdmissionPolicy,
    degraded_cost: f64,
    tracer: Option<Arc<Tracer>>,
    queue: EventQueue<Batch>,
    /// Per-shard dispatch counter — the structural coordinate faults
    /// match on (deterministic, independent of wall clock).
    seq: usize,
    free_at: Vec<f64>,
    /// Completion times of admitted-but-unfinished batches, pruned
    /// against each batch's ready time (ready times are nondecreasing).
    completions: Vec<f64>,
    /// Simulated time the shard went down (cache already dropped).
    lost: Option<f64>,
    admitted_lat: LatencyStats,
    shard_admitted: usize,
    shard_degraded: usize,
    shard_shed: usize,
    shard_compute: f64,
    answers: &'a mut Vec<Answer>,
    cluster_degraded: &'a mut LatencyStats,
    last_answer: &'a mut f64,
    shed_queue_delay: &'a mut usize,
    shed_inflight: &'a mut usize,
    shed_fault: &'a mut usize,
}

impl ShardSweep<'_> {
    fn mark_lost(&mut self, at: f64) {
        if self.lost.is_none() {
            self.lost = Some(at);
            // Cache-node loss rides along with shard loss: the resident
            // rows are gone, so degraded answers fall back to raw
            // feature rows (still deterministic, still tagged).
            self.server.drop_cache();
            if let Some(t) = &self.tracer {
                t.counter_add(&format!("cluster.shard{}.lost", self.sid), 1);
            }
        }
    }

    /// Serve every request of `b` a degraded answer completing at `done`.
    fn degrade(&mut self, b: &Batch, done: f64) {
        self.shard_degraded += b.len();
        *self.last_answer = self.last_answer.max(done);
        for r in &b.requests {
            let (row, from_cache) = self.server.degraded_answer(r.vertex);
            let latency = done - r.arrival;
            self.cluster_degraded.record(latency);
            self.answers.push(Answer {
                id: r.id,
                vertex: r.vertex,
                shard: self.sid as u32,
                row,
                degraded: true,
                from_cache,
                latency,
            });
            if let Some(t) = &self.tracer {
                t.latency_record("cluster.degraded_latency_seconds", latency);
            }
        }
    }
}

impl Component for ShardSweep<'_> {
    fn label(&self) -> String {
        format!("cluster shard {}", self.sid)
    }

    fn dispatch(&mut self, now: f64, inj: &Injector) -> bool {
        let mut progressed = false;
        while let Some(t) = self.queue.peek_time() {
            if t > now {
                break;
            }
            let (_, b) = self.queue.pop().expect("peeked");
            let seq = self.seq;
            self.seq += 1;
            progressed = true;
            match inj.at(DispatchSite::BatchDispatch { shard: self.sid, seq }) {
                Action::Pause { seconds } => {
                    // Preemption: the batch is deferred, not lost — it
                    // re-dispatches (under a fresh seq) after the pause.
                    self.queue.push(now + seconds, b);
                    continue;
                }
                Action::Kill => self.mark_lost(now),
                Action::None => {}
            }
            if self.lost.is_some() || inj.shard_down(self.sid, now).is_some() {
                self.mark_lost(now);
                // The dead shard never queues a batch: forced degraded
                // answers at a fixed host-side cost, never a timeout.
                self.shard_shed += 1;
                *self.shed_fault += 1;
                if let Some(t) = &self.tracer {
                    t.counter_add("cluster.shed.fault", 1);
                }
                let done = now.max(b.ready_at) + self.degraded_cost;
                self.degrade(&b, done);
                continue;
            }
            self.completions.retain(|&c| c > b.ready_at);
            let gpu = (0..self.free_at.len())
                .min_by(|&x, &y| self.free_at[x].total_cmp(&self.free_at[y]))
                .expect("shard has GPUs");
            let start = now.max(b.ready_at).max(self.free_at[gpu]);
            let queue_delay = start - b.ready_at;
            match self.admission.admit(queue_delay, self.completions.len()) {
                Verdict::Admit => {
                    let (out, service) = self.server.run_batch(&b.vertices(), gpu);
                    let done = start + service;
                    self.free_at[gpu] = done;
                    self.completions.push(done);
                    self.shard_compute += service;
                    self.shard_admitted += b.len();
                    *self.last_answer = self.last_answer.max(done);
                    for (i, r) in b.requests.iter().enumerate() {
                        let latency = done - r.arrival;
                        self.admitted_lat.record(latency);
                        self.answers.push(Answer {
                            id: r.id,
                            vertex: r.vertex,
                            shard: self.sid as u32,
                            row: out.row(i).to_vec(),
                            degraded: false,
                            from_cache: false,
                            latency,
                        });
                        if let Some(t) = &self.tracer {
                            t.latency_record("cluster.admitted_latency_seconds", latency);
                        }
                    }
                }
                Verdict::Shed(reason) => {
                    self.shard_shed += 1;
                    match reason {
                        ShedReason::QueueDelay => *self.shed_queue_delay += 1,
                        ShedReason::Inflight => *self.shed_inflight += 1,
                        ShedReason::Fault => unreachable!("admit() never returns Fault"),
                    }
                    if let Some(t) = &self.tracer {
                        let name = match reason {
                            ShedReason::QueueDelay => "cluster.shed.queue_delay",
                            ShedReason::Inflight => "cluster.shed.inflight",
                            ShedReason::Fault => "cluster.shed.fault",
                        };
                        t.counter_add(name, 1);
                    }
                    // Degraded answers are served host-side at the
                    // batch's ready time — no GPU queueing, fixed cost.
                    let done = b.ready_at + self.degraded_cost;
                    self.degrade(&b, done);
                }
            }
        }
        progressed
    }

    fn next_event(&mut self, _now: f64) -> Option<f64> {
        self.queue.peek_time()
    }

    fn advance(&mut self, _next: f64, _inj: &Injector) -> bool {
        false
    }

    fn is_done(&self) -> bool {
        self.queue.is_empty()
    }

    fn stuck(&self) -> Vec<String> {
        vec![format!("shard {} holds {} undispatched batches", self.sid, self.queue.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_dense::Dense;
    use mggcn_graph::generators::chung_lu;
    use mggcn_serve::LoadGenConfig;

    fn tiny_model(n: usize) -> ServingModel {
        let adj = chung_lu::generate(&vec![4u32; n], 9);
        let feats = Dense::from_fn(n, 6, |r, c| ((r + 2 * c) as f32).sin());
        let w0 = Dense::from_fn(6, 5, |r, c| ((r * 2 + c) as f32).cos() * 0.3);
        let w1 = Dense::from_fn(5, 3, |r, c| ((r + 3 * c) as f32).sin() * 0.3);
        ServingModel::from_parts(vec![w0, w1], adj, feats).expect("valid model")
    }

    fn trace(n_req: usize, vertices: usize, qps: f64) -> Vec<Request> {
        mggcn_serve::generate_load(&LoadGenConfig::uniform(qps, n_req, vertices, 11))
    }

    #[test]
    fn empty_trace_yields_zero_report() {
        let model = tiny_model(32);
        let mut cluster =
            Cluster::new(&model, ClusterConfig::new(2, 1, BatchPolicy::new(1e-3, 8)), None);
        let out = cluster.serve_trace("empty", &[]);
        assert!(out.answers.is_empty());
        assert_eq!(out.report.requests, 0);
    }

    #[test]
    fn unbounded_cluster_answers_everything_exactly_and_matches_oracle() {
        let model = tiny_model(64);
        let reference = model.forward_full();
        let cfg = ClusterConfig::new(2, 2, BatchPolicy::new(1e-3, 8));
        let plan = PartitionPlan::random(64, 2, 5);
        let mut cluster = Cluster::new(&model, cfg, Some(&plan));
        let reqs = trace(120, 64, 5000.0);
        let out = cluster.serve_trace("exact", &reqs);
        assert_eq!(out.answers.len(), reqs.len());
        assert_eq!(out.report.degraded, 0);
        for (a, r) in out.answers.iter().zip(&reqs) {
            assert_eq!(a.id, r.id, "answers sorted by request id");
            assert!(!a.degraded);
            assert_eq!(a.shard, plan.shard_of(a.vertex), "plan governs routing");
            assert_eq!(a.row, reference.row(a.vertex as usize), "bit-identical to oracle");
            assert!(a.latency > 0.0 && a.latency.is_finite());
        }
    }

    #[test]
    fn tight_admission_sheds_but_answers_every_request() {
        let model = tiny_model(64);
        let reference = model.forward_full();
        let mut cfg = ClusterConfig::new(2, 1, BatchPolicy::new(1e-4, 4));
        cfg.admission = AdmissionPolicy::new(0.0, 1);
        let mut cluster = Cluster::new(&model, cfg, None);
        // Far beyond one GPU per shard: shedding must kick in.
        let reqs = trace(400, 64, 2.0e6);
        let out = cluster.serve_trace("overload", &reqs);
        assert_eq!(out.answers.len(), reqs.len(), "no request is dropped");
        assert!(out.report.degraded > 0, "overload must shed");
        assert!(out.report.admitted > 0, "shedding must not starve the exact path");
        for a in &out.answers {
            if !a.degraded {
                assert_eq!(a.row, reference.row(a.vertex as usize));
            }
            assert!(a.latency.is_finite() && a.latency >= 0.0);
        }
        // Degraded latency is bounded by window + degraded cost.
        let bound = 1e-4 + cluster.config().degraded_cost + 1e-12;
        assert!(out.answers.iter().filter(|a| a.degraded).all(|a| a.latency <= bound));
    }

    #[test]
    fn capacity_estimate_is_finite_and_positive() {
        let model = tiny_model(48);
        let mut cluster =
            Cluster::new(&model, ClusterConfig::new(2, 2, BatchPolicy::new(1e-3, 8)), None);
        let cap = cluster.measure_capacity(&trace(100, 48, 1000.0));
        assert!(cap.is_finite() && cap > 0.0, "capacity {cap}");
    }

    #[test]
    fn router_prefers_plan_and_falls_back_to_ring() {
        let plan = PartitionPlan { shards: 3, assignment: vec![2, 0, 1], strategy: "cache-aware" };
        let router = Router::with_plan(&plan, 16);
        assert_eq!(router.route(0), 2);
        assert_eq!(router.route(2), 1);
        // Vertex 99 is outside the plan: the ring answers, in range.
        assert!(router.route(99) < 3);
    }
}
