//! Cache-aware shard partitioning, scored by exact byte accounting.
//!
//! A shard serves the queries homed on it; answering a query for vertex
//! `v` needs the feature rows of `v`'s k-hop neighborhood (k = model
//! layers). Every neighborhood row homed on *another* shard is feature
//! traffic across the interconnect — and a row the shard's propagation
//! cache can never amortize across its own residents. The partitioner's
//! objective is therefore the **cross-shard k-hop fan-out**: the total
//! number of (query vertex, foreign neighbor) pairs, priced at
//! `4·d` bytes per row by the same §5.1 closed form the trainer's
//! broadcast accounting uses ([`mggcn_comm::analysis::partition_fanout_bytes`]).
//!
//! Two plans are provided: the locality-blind random baseline and the
//! cache-aware plan (balance-capped label propagation over the CSR
//! adjacency, `mggcn_graph::partition`). A testkit differential test
//! asserts the cache-aware plan strictly reduces fan-out bytes on
//! community graphs, with the accounting recomputed brute-force.

use mggcn_comm::analysis::partition_fanout_bytes;
use mggcn_graph::partition::{label_propagation, random_assignment, shard_sizes};
use mggcn_graph::sampling::khop_neighborhood;
use mggcn_sparse::Csr;

/// A vertex → shard assignment plus the knobs that produced it.
#[derive(Clone, Debug)]
pub struct PartitionPlan {
    pub shards: usize,
    pub assignment: Vec<u32>,
    /// Human-readable strategy tag ("random" / "cache-aware").
    pub strategy: &'static str,
}

impl PartitionPlan {
    /// Seeded balanced random baseline.
    pub fn random(n: usize, shards: usize, seed: u64) -> Self {
        Self { shards, assignment: random_assignment(n, shards, seed), strategy: "random" }
    }

    /// Cache-aware plan: balance-capped label propagation over `adj`.
    pub fn cache_aware(adj: &Csr, shards: usize, seed: u64) -> Self {
        let assignment = label_propagation(adj, shards, 8, 0.1, seed);
        Self { shards, assignment, strategy: "cache-aware" }
    }

    /// Per-shard vertex counts.
    pub fn sizes(&self) -> Vec<usize> {
        shard_sizes(&self.assignment, self.shards)
    }

    /// The home shard of a vertex.
    pub fn shard_of(&self, vertex: u32) -> u32 {
        self.assignment[vertex as usize]
    }

    /// Exact cross-shard k-hop fan-out row counts: entry `s` is the number
    /// of (query vertex homed on `s`, k-hop neighbor homed elsewhere)
    /// pairs — each one a foreign feature row shard `s` must fetch to
    /// answer that query exactly.
    pub fn cross_shard_fanout_rows(&self, adj: &Csr, hops: usize) -> Vec<usize> {
        let mut foreign = vec![0usize; self.shards];
        for v in 0..adj.rows() as u32 {
            let home = self.assignment[v as usize];
            for u in khop_neighborhood(adj, &[v], hops) {
                if self.assignment[u as usize] != home {
                    foreign[home as usize] += 1;
                }
            }
        }
        foreign
    }

    /// Price the fan-out in bytes (`4·rows·d` per shard, §5.1 accounting)
    /// and return (per-shard bytes, total).
    pub fn fanout_bytes(&self, adj: &Csr, hops: usize, d: usize) -> (Vec<u64>, u64) {
        let rows = self.cross_shard_fanout_rows(adj, hops);
        let bytes = partition_fanout_bytes(&rows, d);
        let total = bytes.iter().sum();
        (bytes, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_graph::generators::sbm::{self, SbmConfig};

    #[test]
    fn single_shard_has_zero_fanout() {
        let graph = sbm::generate(&SbmConfig::community_benchmark(80, 2), 1);
        let plan = PartitionPlan::random(graph.n(), 1, 3);
        let (bytes, total) = plan.fanout_bytes(&graph.adj, 2, 8);
        assert_eq!(bytes, vec![0]);
        assert_eq!(total, 0);
    }

    #[test]
    fn fanout_accounting_matches_a_hand_count_on_a_path() {
        // Path 0-1-2-3 split [0,1 | 2,3]; 1-hop neighborhoods:
        //   0:{0,1} 1:{0,1,2} 2:{1,2,3} 3:{2,3}
        // foreign pairs: shard0 gets (1,2); shard1 gets (2,1) → 1 row each.
        let mut coo = mggcn_sparse::Coo::new(4, 4);
        for (a, b) in [(0u32, 1u32), (1, 2), (2, 3)] {
            coo.push(a, b, 1.0);
            coo.push(b, a, 1.0);
        }
        let adj = coo.to_csr();
        let plan =
            PartitionPlan { shards: 2, assignment: vec![0, 0, 1, 1], strategy: "cache-aware" };
        assert_eq!(plan.cross_shard_fanout_rows(&adj, 1), vec![1, 1]);
        let (bytes, total) = plan.fanout_bytes(&adj, 1, 5);
        assert_eq!(bytes, vec![20, 20]);
        assert_eq!(total, 40);
    }

    #[test]
    fn cache_aware_beats_random_on_community_graphs() {
        let graph = sbm::generate(&SbmConfig::community_benchmark(400, 4), 17);
        let random = PartitionPlan::random(graph.n(), 4, 17);
        let aware = PartitionPlan::cache_aware(&graph.adj, 4, 17);
        let (_, random_bytes) = random.fanout_bytes(&graph.adj, 2, 16);
        let (_, aware_bytes) = aware.fanout_bytes(&graph.adj, 2, 16);
        assert!(
            aware_bytes < random_bytes,
            "cache-aware {aware_bytes} must beat random {random_bytes}"
        );
    }
}
