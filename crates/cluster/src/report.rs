//! Cluster serving reports and the `BENCH_cluster.json` schema contract.
//!
//! [`ClusterReport`] aggregates one [`serve_trace`](crate::Cluster::serve_trace)
//! run: per-shard admission/shed/latency accounting plus cluster-wide
//! quantiles computed over the *union* of per-shard samples (merged via
//! `LatencyStats::merge`, never averaged — averaging quantiles is wrong).
//! Everything is emitted through `trace`'s shared [`JsonWriter`], and
//! [`validate_cluster_bench`] is the schema validator CI runs against the
//! committed `BENCH_cluster.json` artifact.

use mggcn_trace::json::{self, JsonWriter};

/// Schema tag stamped into `BENCH_cluster.json`; bump on breaking changes.
pub const BENCH_CLUSTER_SCHEMA: &str = "mggcn-cluster-v1";

/// One shard's share of a serving run.
#[derive(Clone, Debug)]
pub struct ShardReport {
    pub shard: u32,
    pub requests: usize,
    pub admitted: usize,
    pub degraded: usize,
    pub batches: usize,
    pub shed_batches: usize,
    /// Admitted-request latency quantiles, milliseconds.
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
    /// Simulated GPU-busy seconds on this shard's replicas.
    pub compute_seconds: f64,
    pub cache_hit_rate: f64,
}

impl ShardReport {
    pub fn to_json(&self) -> String {
        JsonWriter::new()
            .u64("shard", self.shard as u64)
            .usize("requests", self.requests)
            .usize("admitted", self.admitted)
            .usize("degraded", self.degraded)
            .usize("batches", self.batches)
            .usize("shed_batches", self.shed_batches)
            .f64("p50_ms", self.p50_ms, 4)
            .f64("p99_ms", self.p99_ms, 4)
            .f64("max_ms", self.max_ms, 4)
            .f64("compute_s", self.compute_seconds, 6)
            .f64("cache_hit_rate", self.cache_hit_rate, 4)
            .finish()
    }
}

/// Aggregate outcome of serving one trace across all shards.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    pub label: String,
    pub requests: usize,
    /// Requests answered exactly (admitted batches).
    pub admitted: usize,
    /// Requests answered degraded (shed batches). Every request is one or
    /// the other — the cluster never times out.
    pub degraded: usize,
    pub degraded_rate: f64,
    /// Last answer time minus first arrival, seconds.
    pub duration: f64,
    pub throughput_rps: f64,
    /// Admitted-request latency, milliseconds.
    pub admitted_mean_ms: f64,
    pub admitted_p50_ms: f64,
    pub admitted_p95_ms: f64,
    pub admitted_p99_ms: f64,
    pub admitted_max_ms: f64,
    /// Degraded-answer latency (bounded by window + degraded cost).
    pub degraded_p99_ms: f64,
    pub degraded_max_ms: f64,
    pub compute_seconds: f64,
    /// Shed batch counts by tripped bound.
    pub shed_queue_delay: usize,
    pub shed_inflight: usize,
    /// Batches forced degraded by an injected shard/cache-node fault
    /// (always 0 outside chaos runs).
    pub shed_fault: usize,
    pub shards: Vec<ShardReport>,
}

impl ClusterReport {
    /// The all-zero report an empty trace produces.
    pub fn zero(label: &str) -> Self {
        Self {
            label: label.to_string(),
            requests: 0,
            admitted: 0,
            degraded: 0,
            degraded_rate: 0.0,
            duration: 0.0,
            throughput_rps: 0.0,
            admitted_mean_ms: 0.0,
            admitted_p50_ms: 0.0,
            admitted_p95_ms: 0.0,
            admitted_p99_ms: 0.0,
            admitted_max_ms: 0.0,
            degraded_p99_ms: 0.0,
            degraded_max_ms: 0.0,
            compute_seconds: 0.0,
            shed_queue_delay: 0,
            shed_inflight: 0,
            shed_fault: 0,
            shards: Vec::new(),
        }
    }

    pub fn to_json(&self) -> String {
        let admitted_ms = JsonWriter::new()
            .f64("mean", self.admitted_mean_ms, 4)
            .f64("p50", self.admitted_p50_ms, 4)
            .f64("p95", self.admitted_p95_ms, 4)
            .f64("p99", self.admitted_p99_ms, 4)
            .f64("max", self.admitted_max_ms, 4)
            .finish();
        let degraded_ms = JsonWriter::new()
            .f64("p99", self.degraded_p99_ms, 4)
            .f64("max", self.degraded_max_ms, 4)
            .finish();
        let shed = JsonWriter::new()
            .usize("queue_delay", self.shed_queue_delay)
            .usize("inflight", self.shed_inflight)
            .usize("fault", self.shed_fault)
            .finish();
        let shards: Vec<String> = self.shards.iter().map(ShardReport::to_json).collect();
        JsonWriter::new()
            .str("label", &self.label)
            .usize("requests", self.requests)
            .usize("admitted", self.admitted)
            .usize("degraded", self.degraded)
            .f64("degraded_rate", self.degraded_rate, 4)
            .f64("duration_s", self.duration, 6)
            .f64("throughput_rps", self.throughput_rps, 1)
            .raw("admitted_latency_ms", &admitted_ms)
            .raw("degraded_latency_ms", &degraded_ms)
            .f64("compute_s", self.compute_seconds, 6)
            .raw("shed_batches", &shed)
            .arr("shards", &shards)
            .finish()
    }

    pub fn render(&self) -> String {
        format!(
            "{:<18} {:>6} req ({} exact, {} degraded = {:>5.1}%) | {:>9.0} rps | \
             admitted p50 {:>7.3}ms p99 {:>7.3}ms max {:>7.3}ms | degraded p99 {:>6.3}ms | \
             shed {}q+{}i",
            self.label,
            self.requests,
            self.admitted,
            self.degraded,
            self.degraded_rate * 100.0,
            self.throughput_rps,
            self.admitted_p50_ms,
            self.admitted_p99_ms,
            self.admitted_max_ms,
            self.degraded_p99_ms,
            self.shed_queue_delay,
            self.shed_inflight,
        )
    }
}

/// Schema-validate one serialized [`ClusterReport`] object.
pub fn validate_cluster_report(v: &json::Value) -> Result<(), String> {
    v.get("label").and_then(json::Value::as_str).ok_or("report missing string `label`")?;
    for key in [
        "requests",
        "admitted",
        "degraded",
        "degraded_rate",
        "duration_s",
        "throughput_rps",
        "compute_s",
    ] {
        v.get(key).and_then(json::Value::as_num).ok_or(format!("report missing number `{key}`"))?;
    }
    let adm = v.get("admitted_latency_ms").ok_or("report missing `admitted_latency_ms`")?;
    for key in ["mean", "p50", "p95", "p99", "max"] {
        adm.get(key)
            .and_then(json::Value::as_num)
            .ok_or(format!("admitted_latency_ms missing number `{key}`"))?;
    }
    let deg = v.get("degraded_latency_ms").ok_or("report missing `degraded_latency_ms`")?;
    for key in ["p99", "max"] {
        deg.get(key)
            .and_then(json::Value::as_num)
            .ok_or(format!("degraded_latency_ms missing number `{key}`"))?;
    }
    let shed = v.get("shed_batches").ok_or("report missing `shed_batches`")?;
    for key in ["queue_delay", "inflight"] {
        shed.get(key)
            .and_then(json::Value::as_num)
            .ok_or(format!("shed_batches missing number `{key}`"))?;
    }
    let shards = v.get("shards").and_then(json::Value::as_arr).ok_or("missing array `shards`")?;
    for (i, s) in shards.iter().enumerate() {
        for key in [
            "shard",
            "requests",
            "admitted",
            "degraded",
            "batches",
            "p50_ms",
            "p99_ms",
            "compute_s",
        ] {
            s.get(key)
                .and_then(json::Value::as_num)
                .ok_or(format!("shards[{i}] missing number `{key}`"))?;
        }
    }
    Ok(())
}

/// Schema-validate the full `mggcn cluster-bench` JSON document — the CI
/// contract for the committed `BENCH_cluster.json` artifact: identity +
/// schema tags, the partition comparison, the SLO under test, the overload
/// run's [`ClusterReport`], and the boolean verdict the exit code reflects.
pub fn validate_cluster_bench(text: &str) -> Result<(), String> {
    let v = json::parse(text)?;
    match v.get("bench").and_then(json::Value::as_str) {
        Some("cluster") => {}
        _ => return Err("`bench` must be the string \"cluster\"".into()),
    }
    match v.get("schema").and_then(json::Value::as_str) {
        Some(BENCH_CLUSTER_SCHEMA) => {}
        Some(other) => return Err(format!("unknown schema `{other}`")),
        None => return Err("missing string `schema`".into()),
    }
    for key in ["shards", "gpus_per_shard", "capacity_rps", "qps", "qps_multiplier"] {
        v.get(key).and_then(json::Value::as_num).ok_or(format!("missing number `{key}`"))?;
    }
    let part = v.get("partition").ok_or("missing `partition`")?;
    part.get("strategy").and_then(json::Value::as_str).ok_or("partition missing `strategy`")?;
    for key in ["cross_shard_fanout_bytes", "random_fanout_bytes", "reduction"] {
        part.get(key)
            .and_then(json::Value::as_num)
            .ok_or(format!("partition missing number `{key}`"))?;
    }
    let slo = v.get("slo").ok_or("missing `slo`")?;
    for key in ["p99_ms", "max_degraded_rate"] {
        slo.get(key).and_then(json::Value::as_num).ok_or(format!("slo missing number `{key}`"))?;
    }
    let result = v.get("result").ok_or("missing `result`")?;
    validate_cluster_report(result).map_err(|e| format!("result: {e}"))?;
    let verdict = v.get("verdict").ok_or("missing `verdict`")?;
    for key in ["p99_ok", "degraded_bounded", "degraded_nonzero", "all_answered"] {
        verdict
            .get(key)
            .and_then(json::Value::as_bool)
            .ok_or(format!("verdict missing bool `{key}`"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_report_json_is_schema_valid() {
        let r = ClusterReport::zero("empty");
        let v = json::parse(&r.to_json()).expect("valid JSON");
        validate_cluster_report(&v).expect("schema-valid");
        assert_eq!(v.get("requests").unwrap().as_num(), Some(0.0));
    }

    #[test]
    fn bench_validator_rejects_missing_and_mislabeled_documents() {
        assert!(validate_cluster_bench("{}").is_err());
        assert!(validate_cluster_bench("{\"bench\":\"cluster\"}").is_err());
        let wrong_schema =
            JsonWriter::new().str("bench", "cluster").str("schema", "mggcn-cluster-v0").finish();
        let err = validate_cluster_bench(&wrong_schema).unwrap_err();
        assert!(err.contains("unknown schema"), "{err}");
    }

    #[test]
    fn bench_validator_accepts_a_complete_document() {
        let partition = JsonWriter::new()
            .str("strategy", "cache-aware")
            .u64("cross_shard_fanout_bytes", 1000)
            .u64("random_fanout_bytes", 4000)
            .f64("reduction", 0.75, 4)
            .finish();
        let slo =
            JsonWriter::new().f64("p99_ms", 50.0, 1).f64("max_degraded_rate", 0.5, 2).finish();
        let verdict = JsonWriter::new()
            .bool("p99_ok", true)
            .bool("degraded_bounded", true)
            .bool("degraded_nonzero", true)
            .bool("all_answered", true)
            .finish();
        let doc = JsonWriter::new()
            .str("bench", "cluster")
            .str("schema", BENCH_CLUSTER_SCHEMA)
            .u64("shards", 2)
            .u64("gpus_per_shard", 2)
            .f64("capacity_rps", 1e5, 1)
            .f64("qps", 2e5, 1)
            .f64("qps_multiplier", 2.0, 2)
            .raw("partition", &partition)
            .raw("slo", &slo)
            .raw("result", &ClusterReport::zero("overload").to_json())
            .raw("verdict", &verdict)
            .finish();
        validate_cluster_bench(&doc).expect("complete document validates");
    }
}
