//! Mini-batch (sampling-based) GCN trainer — the approach the paper
//! contrasts with full-batch training (§1, §3).
//!
//! GraphSAGE-style: each step samples a fanout-capped `L`-hop block around
//! a random batch of training vertices, runs mean-aggregation GCN layers
//! on the block, and steps Adam on the batch loss. Two properties the
//! paper leans on are measurable here:
//!
//! * **neighborhood explosion** — the per-epoch touched-vertex count
//!   (`work_touched`) grows far beyond `n` on dense graphs;
//! * **gradient noise** — mini-batch loss curves are noisier and can land
//!   at lower accuracy than full-batch ("mini-batch training can lead to
//!   lower accuracy compared to full-batch training", §1).

use mggcn_core::config::GcnConfig;
use mggcn_core::loss::softmax_xent_inplace;
use mggcn_core::optimizer::{adam_step, AdamParams};
use mggcn_dense::{
    gemm, gemm_a_bt, gemm_at_b, init, relu_backward, relu_inplace, Accumulate, Dense,
};
use mggcn_graph::sampling::{sample_block, SampledBlock};
use mggcn_graph::Graph;
use mggcn_sparse::{spmm, Csr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Mini-batch trainer configuration.
#[derive(Clone, Debug)]
pub struct MiniBatchConfig {
    pub batch_size: usize,
    /// Per-hop fanout caps, innermost layer first (length = GCN depth).
    pub fanouts: Vec<usize>,
    pub seed: u64,
}

impl Default for MiniBatchConfig {
    fn default() -> Self {
        Self { batch_size: 64, fanouts: vec![10, 10], seed: 0x6a11 }
    }
}

/// Metrics of one mini-batch epoch (a full pass over the training set).
#[derive(Clone, Copy, Debug)]
pub struct MiniBatchReport {
    pub loss: f64,
    pub train_acc: f64,
    /// Total vertices touched across all batches — the §1 explosion
    /// statistic; compare against `n` (full-batch touches each vertex once).
    pub work_touched: usize,
    pub batches: usize,
}

/// A sampling-based GCN trainer on a materialized graph.
pub struct MiniBatchTrainer {
    graph: Graph,
    cfg: GcnConfig,
    mb: MiniBatchConfig,
    weights: Vec<Dense>,
    adam_m: Vec<Dense>,
    adam_v: Vec<Dense>,
    params: AdamParams,
    train_ids: Vec<u32>,
    rng: SmallRng,
    t: u64,
}

impl MiniBatchTrainer {
    pub fn new(graph: &Graph, cfg: &GcnConfig, mb: MiniBatchConfig) -> Self {
        assert_eq!(mb.fanouts.len(), cfg.layers(), "one fanout per GCN layer");
        let train_ids: Vec<u32> = graph
            .split
            .train
            .iter()
            .enumerate()
            .filter_map(|(v, &t)| t.then_some(v as u32))
            .collect();
        assert!(!train_ids.is_empty(), "no training vertices");
        let layers = cfg.layers();
        Self {
            graph: graph.clone(),
            cfg: cfg.clone(),
            weights: (0..layers)
                .map(|l| init::glorot_seeded(cfg.d_in(l), cfg.d_out(l), cfg.seed + l as u64))
                .collect(),
            adam_m: (0..layers).map(|l| Dense::zeros(cfg.d_in(l), cfg.d_out(l))).collect(),
            adam_v: (0..layers).map(|l| Dense::zeros(cfg.d_in(l), cfg.d_out(l))).collect(),
            params: AdamParams { lr: cfg.lr, ..AdamParams::default() },
            rng: SmallRng::seed_from_u64(mb.seed),
            train_ids,
            mb,
            t: 0,
        }
    }

    /// One epoch = one shuffled pass over the training vertices.
    pub fn train_epoch(&mut self) -> MiniBatchReport {
        // Shuffle the training ids.
        for i in (1..self.train_ids.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            self.train_ids.swap(i, j);
        }
        let mut report = MiniBatchReport { loss: 0.0, train_acc: 0.0, work_touched: 0, batches: 0 };
        let mut correct = 0usize;
        let mut total = 0usize;
        let ids = self.train_ids.clone();
        for batch in ids.chunks(self.mb.batch_size) {
            let seed = self.rng.gen();
            let block = sample_block(&self.graph.adj, batch, &self.mb.fanouts, seed);
            report.work_touched += block.touched();
            report.batches += 1;
            let (loss, c, n) = self.train_step(&block);
            report.loss += loss;
            correct += c;
            total += n;
        }
        report.train_acc = if total == 0 { 0.0 } else { correct as f64 / total as f64 };
        report
    }

    /// Forward/backward on one sampled block; returns (loss, correct, count).
    fn train_step(&mut self, block: &SampledBlock) -> (f64, usize, usize) {
        let n_local = block.touched();
        let batch_n = block.layer_sizes[0];
        // Mean aggregation with a self edge.
        let agg = with_self_loops(&block.adj).normalize_rows();
        // Gather local features.
        let d0 = self.cfg.dims[0];
        let mut h = Dense::zeros(n_local, d0);
        for (local, &global) in block.vertices.iter().enumerate() {
            h.row_mut(local).copy_from_slice(self.graph.features.row(global as usize));
        }
        // Forward over the whole block (a simplification of per-layer
        // shrinking blocks; costs more compute, changes no semantics).
        let layers = self.cfg.layers();
        let mut acts = vec![h];
        for l in 0..layers {
            let mut hw = Dense::zeros(n_local, self.cfg.d_out(l));
            gemm(&acts[l], &self.weights[l], &mut hw, Accumulate::Overwrite);
            let mut z = Dense::zeros(n_local, self.cfg.d_out(l));
            spmm(&agg, &hw, &mut z, Accumulate::Overwrite);
            if l + 1 < layers {
                relu_inplace(z.as_mut_slice());
            }
            acts.push(z);
        }
        // Loss on the batch rows only.
        let labels: Vec<u32> =
            block.vertices.iter().map(|&v| self.graph.labels[v as usize]).collect();
        let mut mask = vec![false; n_local];
        mask[..batch_n].fill(true);
        let no_test = vec![false; n_local];
        let mut grad = acts.pop().expect("logits");
        let stats = softmax_xent_inplace(&mut grad, &labels, &mask, &no_test, batch_n);
        // Backward (transposed aggregation for the gradient path).
        let agg_t = agg.transpose();
        self.t += 1;
        for l in (0..layers).rev() {
            let masked = if l + 1 < layers {
                let mut m = Dense::zeros(n_local, self.cfg.d_out(l));
                relu_backward(grad.as_slice(), acts[l + 1].as_slice(), m.as_mut_slice());
                m
            } else {
                grad
            };
            let mut hw_g = Dense::zeros(n_local, self.cfg.d_out(l));
            spmm(&agg_t, &masked, &mut hw_g, Accumulate::Overwrite);
            let mut w_g = Dense::zeros(self.cfg.d_in(l), self.cfg.d_out(l));
            gemm_at_b(&acts[l], &hw_g, &mut w_g, Accumulate::Overwrite);
            if l > 0 {
                let mut h_g = Dense::zeros(n_local, self.cfg.d_in(l));
                gemm_a_bt(&hw_g, &self.weights[l], &mut h_g, Accumulate::Overwrite);
                grad = h_g;
            } else {
                grad = Dense::zeros(0, 0);
            }
            adam_step(
                &self.params,
                self.t,
                self.weights[l].as_mut_slice(),
                w_g.as_slice(),
                self.adam_m[l].as_mut_slice(),
                self.adam_v[l].as_mut_slice(),
            );
        }
        (stats.loss_sum, stats.train_correct, stats.train_total)
    }
}

/// Add unit self loops to an adjacency (so every vertex keeps its own
/// signal through mean aggregation).
fn with_self_loops(a: &Csr) -> Csr {
    let mut coo = mggcn_sparse::Coo::with_capacity(a.rows(), a.cols(), a.nnz() + a.rows());
    for r in 0..a.rows() {
        coo.push(r as u32, r as u32, 1.0);
        for (c, v) in a.row(r) {
            coo.push(r as u32, c, v);
        }
    }
    let mut out = coo.to_csr();
    out.binarize();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_graph::generators::sbm::{self, SbmConfig};

    fn graph() -> Graph {
        sbm::generate(&SbmConfig::community_benchmark(400, 3), 21)
    }

    #[test]
    fn minibatch_loss_decreases() {
        let g = graph();
        let cfg = GcnConfig::new(g.features.cols(), &[16, 16], g.classes);
        let mb = MiniBatchConfig { batch_size: 32, fanouts: vec![8; cfg.layers()], seed: 1 };
        let mut t = MiniBatchTrainer::new(&g, &cfg, mb);
        let first = t.train_epoch();
        let mut last = first;
        for _ in 0..10 {
            last = t.train_epoch();
        }
        assert!(last.loss < first.loss, "loss {} -> {}", first.loss, last.loss);
        assert!(last.train_acc > 0.5, "train acc {}", last.train_acc);
    }

    #[test]
    fn work_exceeds_full_batch_on_dense_graphs() {
        // On a dense community graph, the per-epoch touched count should
        // exceed n substantially — the §1 explosion argument.
        let mut cfg_sbm = SbmConfig::community_benchmark(500, 3);
        cfg_sbm.intra_degree = 20.0;
        let g = sbm::generate(&cfg_sbm, 5);
        let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
        let mb = MiniBatchConfig { batch_size: 16, fanouts: vec![15; cfg.layers()], seed: 2 };
        let mut t = MiniBatchTrainer::new(&g, &cfg, mb);
        let report = t.train_epoch();
        assert!(
            report.work_touched > g.n(),
            "touched {} should exceed n = {}",
            report.work_touched,
            g.n()
        );
    }

    #[test]
    #[should_panic(expected = "one fanout per GCN layer")]
    fn fanout_arity_checked() {
        let g = graph();
        let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
        let mb = MiniBatchConfig { fanouts: vec![5, 5, 5], ..Default::default() };
        let _ = MiniBatchTrainer::new(&g, &cfg, mb);
    }
}
