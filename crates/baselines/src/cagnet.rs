//! CAGNET-like baseline (Tripathy, Yelick & Buluç, SC'20).
//!
//! CAGNET's best configuration in the paper's figures is its 1D algorithm —
//! the same broadcast-staged SpMM family as MG-GCN (§4.1) — implemented on
//! PyTorch without MG-GCN's optimizations:
//!
//! * no communication/computation overlap (single stream);
//! * no buffer reuse (~3 live buffers per layer; its Proteins runs OOM on
//!   8 V100s where MG-GCN fits in 4);
//! * no vertex permutation (original ordering);
//! * no op-order selection or first-layer skip;
//! * PyTorch kernel efficiencies and dispatch overhead.
//!
//! The 1.5D communication variant of §5.1 is exposed through
//! [`mggcn_comm::analysis`]; [`t_15d_epoch_comm`] applies it per epoch.

use mggcn_comm::analysis::{analyze, CommAnalysis};
use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_core::memplan::BufferPolicy;
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_gpusim::{CostModel, MachineSpec, OomError};

const CAGNET_SPMM_EFFICIENCY: f64 = 0.45;
const CAGNET_GEMM_EFFICIENCY: f64 = 0.55;
const CAGNET_STREAMING_EFFICIENCY: f64 = 0.55;
const CAGNET_LAUNCH_OVERHEAD: f64 = 25.0e-6;

/// Training options for a CAGNET-1D-like run on `gpus` GPUs.
pub fn options(machine: MachineSpec, gpus: usize) -> TrainOptions {
    let mut o = TrainOptions::full(machine, gpus);
    o.permute = false;
    o.overlap = false;
    o.op_order_opt = false;
    o.skip_first_backward_spmm = false;
    o.cost = CostModel {
        gemm_efficiency: CAGNET_GEMM_EFFICIENCY,
        spmm_efficiency: CAGNET_SPMM_EFFICIENCY,
        streaming_efficiency: CAGNET_STREAMING_EFFICIENCY,
    };
    o.launch_overhead = CAGNET_LAUNCH_OVERHEAD;
    o.buffer_policy = BufferPolicy::CagnetFullGather;
    o.epoch_host_overhead = 8.0e-3;
    o
}

/// Build a CAGNET-like trainer.
pub fn trainer(
    problem: Problem,
    cfg: GcnConfig,
    machine: MachineSpec,
    gpus: usize,
) -> Result<Trainer, OomError> {
    Trainer::new(problem, cfg, options(machine, gpus))
}

/// §5.1 communication comparison for one epoch of a model on a machine:
/// the feature matrix moves once per SpMM, i.e. `2L − 1` times per epoch
/// with the first-layer backward skip, `2L` without.
pub fn t_15d_epoch_comm(
    machine: &MachineSpec,
    n: usize,
    cfg: &GcnConfig,
    skip_first_backward: bool,
) -> (f64, f64) {
    let layers = cfg.layers();
    let spmm_count = if skip_first_backward { 2 * layers - 1 } else { 2 * layers };
    let mut t_1d = 0.0;
    let mut t_15d = 0.0;
    for l in 0..spmm_count {
        // Forward SpMM l moves width d(l+1) (GeMM-first order); reuse the
        // forward widths for the mirrored backward passes.
        let idx = if l < layers { l } else { 2 * layers - 1 - l };
        let width = cfg.d_out(idx.min(layers - 1));
        let a: CommAnalysis = analyze(machine, n as f64 * width as f64 * 4.0);
        t_1d += a.t_1d;
        t_15d += a.t_15d;
    }
    (t_1d, t_15d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_core::config::GcnConfig;
    use mggcn_graph::datasets;

    fn epoch_time(card: &mggcn_graph::DatasetCard, gpus: usize) -> Option<f64> {
        let machine = MachineSpec::dgx_v100();
        let opts = options(machine.clone(), gpus);
        let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
        let problem = Problem::from_stats(card, &opts);
        trainer(problem, cfg, machine, gpus)
            .ok()
            .and_then(|mut t| Some(t.train_epoch().ok()?.sim_seconds))
    }

    fn mggcn_time(card: &mggcn_graph::DatasetCard, gpus: usize) -> f64 {
        let machine = MachineSpec::dgx_v100();
        let opts = TrainOptions::full(machine, gpus);
        let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
        let problem = Problem::from_stats(card, &opts);
        let mut t = Trainer::new(problem, cfg, opts).expect("fits");
        t.train_epoch().expect("train").sim_seconds
    }

    #[test]
    fn mggcn_beats_cagnet_at_eight_gpus() {
        // Paper §6.5: 8-GPU speedups vs CAGNET — 2.66× Reddit, 8.6×
        // Products, 2.35× Arxiv. Require a win of the right order.
        for (card, lo, hi) in [
            (datasets::REDDIT, 1.8, 6.5),
            (datasets::PRODUCTS, 3.0, 14.0),
            (datasets::ARXIV, 1.3, 6.5),
        ] {
            let cag = epoch_time(&card, 8).expect("cagnet fits");
            let mg = mggcn_time(&card, 8);
            let speedup = cag / mg;
            assert!(
                speedup > lo && speedup < hi,
                "{}: speedup {speedup:.2} outside [{lo}, {hi}]",
                card.name
            );
        }
    }

    #[test]
    fn cagnet_ooms_on_proteins_where_mggcn_fits() {
        // §6.5: "we are not able to run CAGNET with Proteins using 8 GPUs
        // because of CAGNET's memory requirement; however, MG-GCN is able
        // to fit Proteins into only 4 GPUs."
        let card = datasets::PROTEINS;
        assert!(epoch_time(&card, 8).is_none(), "CAGNET should OOM on Proteins @8");
        let machine = MachineSpec::dgx_v100();
        let opts = TrainOptions::full(machine, 4);
        let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
        let problem = Problem::from_stats(&card, &opts);
        assert!(Trainer::new(problem, cfg, opts).is_ok(), "MG-GCN should fit @4");
    }

    #[test]
    fn t15d_slower_on_v100_faster_on_a100() {
        let cfg = GcnConfig::model_a(602, 41);
        let (t1, t15) = t_15d_epoch_comm(&MachineSpec::dgx_v100(), 233_000, &cfg, true);
        assert!(t15 > t1, "1.5D should lose on DGX-1");
        let (t1a, t15a) = t_15d_epoch_comm(&MachineSpec::dgx_a100(), 233_000, &cfg, true);
        assert!(t15a < t1a, "1.5D should win on DGX-A100");
    }
}
