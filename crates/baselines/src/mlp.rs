//! Graph-blind MLP baseline.
//!
//! §2 of the paper motivates GCNs by contrast with "simple multi-layer
//! perceptron models that do not take into account the relations of
//! instances". This trainer is that foil: the same widths, loss and Adam,
//! but no adjacency — so on community-structured data with noisy features
//! the GCN's neighborhood averaging should win clearly.

use mggcn_core::config::GcnConfig;
use mggcn_core::loss::softmax_xent_inplace;
use mggcn_core::optimizer::{adam_step, AdamParams};
use mggcn_dense::{
    gemm, gemm_a_bt, gemm_at_b, init, relu_backward, relu_inplace, Accumulate, Dense,
};
use mggcn_graph::Graph;

/// A full-batch MLP trainer on vertex features alone.
pub struct MlpTrainer {
    x: Dense,
    labels: Vec<u32>,
    train_mask: Vec<bool>,
    test_mask: Vec<bool>,
    weights: Vec<Dense>,
    adam_m: Vec<Dense>,
    adam_v: Vec<Dense>,
    dims: Vec<usize>,
    params: AdamParams,
    t: u64,
}

/// One MLP epoch's metrics.
#[derive(Clone, Copy, Debug)]
pub struct MlpReport {
    pub loss: f64,
    pub train_acc: f64,
    pub test_acc: f64,
}

impl MlpTrainer {
    pub fn new(graph: &Graph, cfg: &GcnConfig) -> Self {
        let layers = cfg.layers();
        Self {
            x: graph.features.clone(),
            labels: graph.labels.clone(),
            train_mask: graph.split.train.clone(),
            test_mask: graph.split.test.clone(),
            weights: (0..layers)
                .map(|l| init::glorot_seeded(cfg.d_in(l), cfg.d_out(l), cfg.seed + 77 + l as u64))
                .collect(),
            adam_m: (0..layers).map(|l| Dense::zeros(cfg.d_in(l), cfg.d_out(l))).collect(),
            adam_v: (0..layers).map(|l| Dense::zeros(cfg.d_in(l), cfg.d_out(l))).collect(),
            dims: cfg.dims.clone(),
            params: AdamParams { lr: cfg.lr, ..AdamParams::default() },
            t: 0,
        }
    }

    /// One full-batch epoch.
    pub fn train_epoch(&mut self) -> MlpReport {
        let layers = self.weights.len();
        let n = self.x.rows();
        let mut acts: Vec<Dense> = vec![self.x.clone()];
        for l in 0..layers {
            let mut z = Dense::zeros(n, self.dims[l + 1]);
            gemm(&acts[l], &self.weights[l], &mut z, Accumulate::Overwrite);
            if l + 1 < layers {
                relu_inplace(z.as_mut_slice());
            }
            acts.push(z);
        }
        let train_count = self.train_mask.iter().filter(|&&b| b).count().max(1);
        let mut grad = acts.pop().expect("logits");
        let stats = softmax_xent_inplace(
            &mut grad,
            &self.labels,
            &self.train_mask,
            &self.test_mask,
            train_count,
        );
        self.t += 1;
        for l in (0..layers).rev() {
            let masked = if l + 1 < layers {
                let mut m = Dense::zeros(n, self.dims[l + 1]);
                relu_backward(grad.as_slice(), acts[l + 1].as_slice(), m.as_mut_slice());
                m
            } else {
                grad
            };
            let mut w_g = Dense::zeros(self.dims[l], self.dims[l + 1]);
            gemm_at_b(&acts[l], &masked, &mut w_g, Accumulate::Overwrite);
            if l > 0 {
                let mut h_g = Dense::zeros(n, self.dims[l]);
                gemm_a_bt(&masked, &self.weights[l], &mut h_g, Accumulate::Overwrite);
                grad = h_g;
            } else {
                grad = Dense::zeros(0, 0);
            }
            adam_step(
                &self.params,
                self.t,
                self.weights[l].as_mut_slice(),
                w_g.as_slice(),
                self.adam_m[l].as_mut_slice(),
                self.adam_v[l].as_mut_slice(),
            );
        }
        MlpReport {
            loss: stats.loss_sum,
            train_acc: if stats.train_total == 0 {
                0.0
            } else {
                stats.train_correct as f64 / stats.train_total as f64
            },
            test_acc: if stats.test_total == 0 {
                0.0
            } else {
                stats.test_correct as f64 / stats.test_total as f64
            },
        }
    }

    /// Train `epochs` epochs, returning the last report.
    pub fn train(&mut self, epochs: usize) -> MlpReport {
        let mut last = self.train_epoch();
        for _ in 1..epochs {
            last = self.train_epoch();
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_graph::generators::sbm::{self, SbmConfig};

    #[test]
    fn mlp_learns_separable_features() {
        let mut cfg_sbm = SbmConfig::community_benchmark(300, 3);
        cfg_sbm.noise = 0.2; // easy features: MLP should do well
        let graph = sbm::generate(&cfg_sbm, 5);
        let cfg = GcnConfig::new(graph.features.cols(), &[16], graph.classes);
        let mut mlp = MlpTrainer::new(&graph, &cfg);
        let report = mlp.train(60);
        assert!(report.test_acc > 0.8, "test acc {}", report.test_acc);
    }

    #[test]
    fn mlp_struggles_with_noisy_features() {
        let mut cfg_sbm = SbmConfig::community_benchmark(300, 3);
        cfg_sbm.noise = 4.0; // heavy noise: structure-blind model capped
        let graph = sbm::generate(&cfg_sbm, 6);
        let cfg = GcnConfig::new(graph.features.cols(), &[16], graph.classes);
        let mut mlp = MlpTrainer::new(&graph, &cfg);
        let report = mlp.train(60);
        assert!(report.test_acc < 0.8, "test acc {}", report.test_acc);
    }

    #[test]
    fn loss_decreases() {
        let graph = sbm::generate(&SbmConfig::community_benchmark(200, 4), 7);
        let cfg = GcnConfig::new(graph.features.cols(), &[8], graph.classes);
        let mut mlp = MlpTrainer::new(&graph, &cfg);
        let first = mlp.train_epoch().loss;
        let last = mlp.train(40).loss;
        assert!(last < first, "loss {first} -> {last}");
    }
}
