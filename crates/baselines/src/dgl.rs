//! DGL-like baseline.
//!
//! DGL (v0.7.1 in the paper) trains correct full-batch GCNs on one GPU but
//! with none of MG-GCN's §4 optimizations. We model it as the same kernel
//! pipeline with:
//!
//! * single GPU only (§1: "most of the existing systems, such as DGL, lack
//!   the support for multi-GPU training");
//! * per-layer buffer allocation — ~3 live hidden-width buffers per layer
//!   at the backward peak (calibrated from Fig 12a's 20-layer limit);
//! * fixed GeMM→SpMM order and no first-layer backward-SpMM skip;
//! * lower effective kernel efficiency and a larger per-launch overhead
//!   (Python dispatch, framework bookkeeping, separate normalization and
//!   activation materialization). The efficiency knobs are calibrated so
//!   the single-GPU gap lands in the paper's measured 1.4–3.1× band.

use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_core::memplan::BufferPolicy;
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_gpusim::{CostModel, MachineSpec, OomError};

/// Kernel-efficiency haircut relative to the paper's hand-tuned CUDA.
const DGL_SPMM_EFFICIENCY: f64 = 0.33;
const DGL_GEMM_EFFICIENCY: f64 = 0.52;
const DGL_STREAMING_EFFICIENCY: f64 = 0.45;
/// Python/framework per-kernel dispatch cost.
const DGL_LAUNCH_OVERHEAD: f64 = 200.0e-6;

/// Training options describing a DGL-like run on one GPU of `machine`.
pub fn options(machine: MachineSpec, cfg: &GcnConfig) -> TrainOptions {
    let mut o = TrainOptions::full(machine, 1);
    o.permute = false;
    o.overlap = false;
    // DGL's GraphConv multiplies by W first when in_feats > out_feats —
    // the same trick as §4.4's forward half — so the baseline keeps it.
    o.op_order_opt = true;
    // When layer 0 is SpMM-first, autograd retains ÂᵀX and the layer-0
    // backward needs no SpMM at all — only MG-GCN's shared buffers force a
    // recomputation there (which §4.4 then skips). Cost-wise the two are
    // identical, so the baseline "skips" exactly when DGL's autograd would.
    o.skip_first_backward_spmm = cfg.d_in(0) < cfg.d_out(0);
    o.cost = CostModel {
        gemm_efficiency: DGL_GEMM_EFFICIENCY,
        spmm_efficiency: DGL_SPMM_EFFICIENCY,
        streaming_efficiency: DGL_STREAMING_EFFICIENCY,
    };
    o.launch_overhead = DGL_LAUNCH_OVERHEAD;
    o.buffer_policy = BufferPolicy::PerLayer3;
    o.epoch_host_overhead = 10.0e-3;
    o
}

/// Build a DGL-like trainer for a materialized or stat-card problem.
/// Fails with OOM exactly when the per-layer allocation does not fit.
pub fn trainer(
    problem: Problem,
    cfg: GcnConfig,
    machine: MachineSpec,
) -> Result<Trainer, OomError> {
    let opts = options(machine, &cfg);
    Trainer::new(problem, cfg, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_core::config::GcnConfig;
    use mggcn_graph::datasets;

    fn epoch_time(card: &mggcn_graph::DatasetCard, machine: MachineSpec) -> f64 {
        let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
        let opts = options(machine.clone(), &cfg);
        let problem = Problem::from_stats(card, &opts);
        let mut t = trainer(problem, cfg, machine).expect("fits");
        t.train_epoch().expect("train").sim_seconds
    }

    fn mggcn_time(card: &mggcn_graph::DatasetCard, machine: MachineSpec) -> f64 {
        let opts = TrainOptions::full(machine, 1);
        let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
        let problem = Problem::from_stats(card, &opts);
        let mut t = Trainer::new(problem, cfg, opts).expect("fits");
        t.train_epoch().expect("train").sim_seconds
    }

    #[test]
    fn mggcn_beats_dgl_single_gpu_in_paper_band() {
        // Paper §6.5: single-GPU speedups vs DGL on DGX-V100 are 2.72×
        // (Reddit), 1.42× (Products), 1.76× (Arxiv), 3.1× (Cora). Check
        // each lands within a loose band around the measured value.
        let m = MachineSpec::dgx_v100();
        for (card, lo, hi) in [
            (datasets::REDDIT, 1.7, 4.0),
            (datasets::PRODUCTS, 1.1, 2.8),
            (datasets::ARXIV, 1.2, 3.2),
            (datasets::CORA, 1.4, 6.0),
        ] {
            let speedup = epoch_time(&card, m.clone()) / mggcn_time(&card, m.clone());
            assert!(
                speedup > lo && speedup < hi,
                "{}: speedup {speedup:.2} outside [{lo}, {hi}]",
                card.name
            );
        }
    }

    #[test]
    fn dgl_is_single_gpu() {
        let o = options(MachineSpec::dgx_a100(), &GcnConfig::model_a(602, 41));
        assert_eq!(o.gpus, 1);
        assert!(!o.overlap);
    }

    #[test]
    fn dgl_ooms_where_paper_says() {
        // Fig 10/13: DGL runs out of memory on Proteins on both machines.
        let card = datasets::PROTEINS;
        let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
        for machine in [MachineSpec::dgx_v100(), MachineSpec::dgx_a100()] {
            let opts = options(machine.clone(), &cfg);
            let problem = Problem::from_stats(&card, &opts);
            assert!(trainer(problem, cfg.clone(), machine).is_err(), "Proteins should OOM");
        }
    }
}
