//! DistGNN comparison data and CPU-cluster cost model (paper §6.6, Table 2).
//!
//! The paper could not run DistGNN ("the source code ... is not available")
//! and compares against the numbers published in the DistGNN paper. We do
//! the same: [`published_epoch_time`] carries Table 2 verbatim, and
//! [`modeled_epoch_time`] is a coarse roofline model of the Xeon-9242
//! cluster that reproduces those numbers within a small factor — enough to
//! extrapolate socket counts the table does not list.

use mggcn_core::config::GcnConfig;
use mggcn_graph::DatasetCard;

/// Table 2 of the paper (epoch seconds). `None` where the original work
/// reported no number.
pub fn published_epoch_time(dataset: &str, sockets: usize) -> Option<f64> {
    match (dataset, sockets) {
        ("Reddit", 1) => Some(0.60),
        ("Reddit", 16) => Some(0.61),
        ("Papers", 1) => Some(1000.0),
        ("Papers", 128) => Some(36.45),
        ("Products", 1) => Some(11.0),
        ("Products", 64) => Some(1.74),
        ("Proteins", 1) => Some(100.0),
        ("Protein", 1) => Some(100.0),
        ("Proteins", 64) => Some(2.63),
        ("Protein", 64) => Some(2.63),
        _ => None,
    }
}

/// Best published DistGNN epoch time for a dataset, `(sockets, seconds)`.
pub fn best_published(dataset: &str) -> Option<(usize, f64)> {
    match dataset {
        "Reddit" => Some((1, 0.60)),
        "Papers" => Some((128, 36.45)),
        "Products" => Some((64, 1.74)),
        "Proteins" | "Protein" => Some((64, 2.63)),
        _ => None,
    }
}

/// One dual-socket Xeon 9242 node as DistGNN used it, per socket.
#[derive(Clone, Copy, Debug)]
pub struct SocketSpec {
    /// Effective fp32 FLOP/s a framework SpMM/GeMM extracts per socket.
    pub flops: f64,
    /// Memory bandwidth per socket (bytes/s).
    pub mem_bw: f64,
    /// Interconnect bandwidth per node (bytes/s, Mellanox HDR).
    pub net_bw: f64,
}

impl Default for SocketSpec {
    fn default() -> Self {
        // 48 cores @ 2.3 GHz with AVX-512 peak ≈ 7 TFLOPs; frameworks on
        // sparse workloads see a small fraction. 6-channel DDR4 ≈ 140 GB/s.
        Self { flops: 0.35e12, mem_bw: 140.0e9, net_bw: 25.0e9 }
    }
}

/// Coarse DistGNN epoch model: per-socket memory-bound aggregation plus
/// vertex-cut halo exchange whose volume decays slowly with the partition
/// count (Libra's replication factor grows with cuts).
pub fn modeled_epoch_time(
    card: &DatasetCard,
    cfg: &GcnConfig,
    sockets: usize,
    spec: &SocketSpec,
) -> f64 {
    let p = sockets as f64;
    // Aggregation traffic per layer at its hidden width: CSR structure +
    // gathered neighbour rows + output rows. Forward and backward both
    // aggregate, hence the factor 2.
    let mut spmm_bytes = 0.0f64;
    let mut d_sum = 0.0f64;
    for l in 0..cfg.layers() {
        let d = cfg.d_out(l) as f64;
        d_sum += d;
        spmm_bytes += card.m as f64 * (8.0 + 4.0 * d) + card.n as f64 * d * 4.0;
    }
    // Libra's vertex cut replicates high-degree vertices on many parts, so
    // the aggregate work grows with the cut: replication ≈ 1 + k/6, capped
    // at P. For Reddit (k = 492) this saturates and explains DistGNN's
    // flat published scaling (0.60 s → 0.61 s from 1 to 16 sockets).
    let replication = (1.0 + card.avg_degree / 6.0).min(p);
    let compute = 2.0 * spmm_bytes * replication / (spec.mem_bw * p);
    // Halo exchange of replicated feature rows per layer.
    let comm = if sockets == 1 {
        0.0
    } else {
        let replicated = card.n as f64 * replication.min(8.0) * 0.3;
        2.0 * replicated * d_sum * 4.0 / (spec.net_bw * p)
    };
    compute + comm
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_graph::datasets;

    #[test]
    fn table2_values_present() {
        assert_eq!(published_epoch_time("Reddit", 1), Some(0.60));
        assert_eq!(published_epoch_time("Papers", 128), Some(36.45));
        assert_eq!(published_epoch_time("Products", 64), Some(1.74));
        assert_eq!(published_epoch_time("Proteins", 64), Some(2.63));
        assert_eq!(published_epoch_time("Reddit", 64), None);
    }

    #[test]
    fn model_matches_published_single_socket_within_factor_three() {
        for (card, cfg, name) in [
            (datasets::REDDIT, GcnConfig::model_b(602, 41), "Reddit"),
            (datasets::PRODUCTS, GcnConfig::model_c(104, 47), "Products"),
            (datasets::PROTEINS, GcnConfig::model_c(128, 256), "Proteins"),
        ] {
            let published = published_epoch_time(name, 1).expect("has value");
            let modeled = modeled_epoch_time(&card, &cfg, 1, &SocketSpec::default());
            let ratio = modeled / published;
            assert!(
                (0.33..3.0).contains(&ratio),
                "{name}: modeled {modeled:.2}s vs published {published}s (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn model_scales_down_with_sockets() {
        let cfg = GcnConfig::model_c(128, 172);
        let t1 = modeled_epoch_time(&datasets::PAPERS, &cfg, 1, &SocketSpec::default());
        let t128 = modeled_epoch_time(&datasets::PAPERS, &cfg, 128, &SocketSpec::default());
        assert!(t128 < t1 / 10.0, "t1 {t1} t128 {t128}");
    }

    #[test]
    fn reddit_scaling_is_flat_like_published() {
        // Table 2: Reddit barely improves from 1 to 16 sockets (0.60 ->
        // 0.61 s); the replication model must reproduce that plateau.
        let cfg = GcnConfig::model_b(602, 41);
        let t1 = modeled_epoch_time(&datasets::REDDIT, &cfg, 1, &SocketSpec::default());
        let t16 = modeled_epoch_time(&datasets::REDDIT, &cfg, 16, &SocketSpec::default());
        assert!(
            t16 > t1 * 0.8,
            "Reddit should not scale under a saturating vertex cut: {t1} -> {t16}"
        );
    }

    #[test]
    fn products_scaling_matches_published_ratio() {
        // Published: 11 s -> 1.74 s at 64 sockets (6.3x). Replication
        // r = 1 + 52/6 ≈ 9.7 gives 64/9.7 ≈ 6.6x in the model.
        let cfg = GcnConfig::model_c(104, 47);
        let t1 = modeled_epoch_time(&datasets::PRODUCTS, &cfg, 1, &SocketSpec::default());
        let t64 = modeled_epoch_time(&datasets::PRODUCTS, &cfg, 64, &SocketSpec::default());
        let speedup = t1 / t64;
        assert!(
            (3.0..12.0).contains(&speedup),
            "Products model speedup {speedup:.1} (published 6.3x)"
        );
    }

    #[test]
    fn best_published_is_consistent_with_table() {
        let (s, t) = best_published("Products").unwrap();
        assert_eq!(published_epoch_time("Products", s), Some(t));
    }
}
