//! Comparison systems for the MG-GCN evaluation.
//!
//! The paper measures against three systems; each is reproduced at the
//! fidelity the comparison needs:
//!
//! * [`dgl`] — a DGL-like single-GPU trainer: correct numerics, per-layer
//!   buffer allocation (no §4.2 reuse), fixed GeMM→SpMM order, no
//!   first-layer-skip, and framework overheads. Expressed as a configured
//!   [`mggcn_core::Trainer`], so it shares kernels and differs only in the
//!   things the paper credits for its wins.
//! * [`cagnet`] — a CAGNET-like 1D multi-GPU trainer (same broadcast
//!   algorithm family, minus overlap/reuse/permutation) plus the 1.5D
//!   communication variant used in the §5.1 analysis.
//! * [`distgnn`] — DistGNN's published Table 2 epoch times and a CPU-cluster
//!   cost model that reproduces them (the paper itself compares against
//!   published numbers; so do we).
//! * [`mlp`] — a graph-blind MLP trained on raw features, the accuracy foil
//!   that shows the GCN actually uses the graph.
//! * [`minibatch`] — a GraphSAGE-style sampling trainer, the approach the
//!   paper's §1 argues against; it exposes the neighborhood-explosion
//!   statistic the argument rests on.

#![forbid(unsafe_code)]

pub mod cagnet;
pub mod dgl;
pub mod distgnn;
pub mod minibatch;
pub mod mlp;
