//! mggcn-exec — the real multi-threaded execution runtime.
//!
//! `gpusim` *times* an op schedule; this crate *runs* one. It spawns one
//! OS thread per simulated GPU and executes the schedule's op bodies with
//! real synchronization, mapping the simulator's concepts onto threads:
//!
//! * **stream FIFOs + CUDA events** → each worker executes its GPU's ops
//!   in the simulator's deterministic completion order (a topological
//!   linearization that respects every lane FIFO), and blocks on the
//!   completion flags of an op's explicit `waits` — including the
//!   BC1/BC2 double-buffer WAR fences, which arrive here as ordinary
//!   dependency edges;
//! * **NCCL rendezvous** → a collective appears in every participant's
//!   worklist; participants count arrivals, the lowest-numbered GPU
//!   (the leader) runs the collective body once all have arrived — at
//!   which point every participant is quiescent, so cross-GPU reads are
//!   safe — and its completion releases the others (a barrier);
//! * **device failure** → a panicking body poisons the run: the error is
//!   recorded, every waiting worker is released, and [`execute`] returns
//!   `Err` instead of deadlocking a barrier.
//!
//! Deadlock freedom: the worklists are restrictions of one global
//! linearization in which every op's waits precede it, so by induction
//! the op with the globally smallest unfinished position can always make
//! progress.
//!
//! Each body is wall-clock timed, producing a measured per-op/per-category
//! profile next to the simulated timeline, so modeled and measured time
//! can be compared in one report ([`ExecReport`]).

#![forbid(unsafe_code)]

use mggcn_gpusim::engine::{OpDesc, OpRecord, SimOutcome};
use mggcn_gpusim::{Category, OpId, RunReport, Schedule};
use mggcn_sched::{Action, DispatchSite, Injector};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

pub use rayon::{current_num_threads, pool_size, set_active_threads};

/// How a trainer/server executes its op schedules.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// Discrete-event simulation only: bodies run sequentially on the
    /// calling thread in simulated-completion order (the seed behavior).
    #[default]
    Simulated,
    /// Real execution: worker-per-GPU threads + the parallel kernel pool.
    /// Numerics are bit-identical to [`Backend::Simulated`].
    Threaded,
}

impl Backend {
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "simulated" | "sim" => Some(Backend::Simulated),
            "threaded" | "exec" => Some(Backend::Threaded),
            _ => None,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Backend::Simulated => "simulated",
            Backend::Threaded => "threaded",
        }
    }
}

/// Wall-clock measurement of one executed op body, or of time a worker
/// spent blocked before it (`category == Category::Barrier`): rendezvous
/// arrivals, waiting for the leader, and dependency waits all surface as
/// barrier spans so per-category sums account for the whole wall time
/// instead of silently attributing stalls to op categories.
#[derive(Clone, Copy, Debug)]
pub struct WallSpan {
    pub gpu: usize,
    pub stream: usize,
    pub category: Category,
    pub label: &'static str,
    /// Offset from the run's start (workers spawned), seconds.
    pub start: f64,
    /// Measured duration, seconds.
    pub seconds: f64,
}

impl WallSpan {
    /// Offset of the span's end from the run's start, seconds.
    pub fn end(&self) -> f64 {
        self.start + self.seconds
    }
}

/// Outcome of really executing a schedule: the simulated timing report
/// plus measured wall-clock, side by side.
#[derive(Debug)]
pub struct ExecReport {
    /// The rate-based DES prediction for the same schedule.
    pub sim: RunReport,
    /// Measured end-to-end wall-clock seconds (workers spawned → joined).
    pub wall_seconds: f64,
    /// Measured per-op spans (plus `Barrier` wait spans), in each worker's
    /// execution order.
    pub spans: Vec<WallSpan>,
    /// Ops whose bodies actually ran (barrier wait spans excluded).
    pub bodies_run: usize,
}

impl ExecReport {
    /// Total measured seconds per category (collective bodies count once,
    /// on the leader). Worker stall time appears under
    /// [`Category::Barrier`], so summing a GPU's entries approximates its
    /// whole wall time instead of just its busy time.
    pub fn category_wall_seconds(&self) -> BTreeMap<Category, f64> {
        let mut out = BTreeMap::new();
        for s in &self.spans {
            *out.entry(s.category).or_insert(0.0) += s.seconds;
        }
        out
    }
}

/// Execution failed: some worker's op body panicked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecError {
    pub gpu: usize,
    pub label: &'static str,
    pub message: String,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker for gpu {} panicked in op `{}`: {}", self.gpu, self.label, self.message)
    }
}

impl std::error::Error for ExecError {}

/// Fault injection for robustness tests: panic inside the N-th body
/// executed process-wide (counting from 0). `-1` disables.
#[doc(hidden)]
pub fn inject_panic_at_body(n: i64) {
    BODY_COUNTER.store(0, Ordering::SeqCst);
    PANIC_AT.store(n, Ordering::SeqCst);
}

static PANIC_AT: AtomicI64 = AtomicI64::new(-1);
static BODY_COUNTER: AtomicI64 = AtomicI64::new(0);

fn fault_check(label: &str) {
    let target = PANIC_AT.load(Ordering::SeqCst);
    if target >= 0 {
        let k = BODY_COUNTER.fetch_add(1, Ordering::SeqCst);
        // Disarm only when this body is the target, so a later body
        // cannot also fire (one-shot), and earlier ones leave it armed.
        if k == target
            && PANIC_AT.compare_exchange(target, -1, Ordering::SeqCst, Ordering::SeqCst).is_ok()
        {
            panic!("injected fault in `{label}`");
        }
    }
}

/// Safety net against lost wakeups: waiters re-check their predicate at
/// least this often even with no notification.
const WAIT_TICK: Duration = Duration::from_millis(50);

/// Waits shorter than this leave no `Barrier` span — an uncontended
/// predicate check costs a mutex lock (~100ns) and recording it would
/// double the span count with noise.
const WAIT_SPAN_MIN: f64 = 10e-6;

/// Per-op static metadata: descriptor, participating (gpu, stream)
/// lanes, and dependency list.
type OpMeta = (OpDesc, Vec<(usize, usize)>, Vec<OpId>);

struct Shared<'a, Ctx> {
    records: Vec<Mutex<Option<OpRecord<Ctx>>>>,
    meta: Vec<OpMeta>,
    done: Vec<AtomicBool>,
    arrivals: Vec<AtomicUsize>,
    failed: AtomicBool,
    error: Mutex<Option<ExecError>>,
    /// Global event channel: completions, arrivals and failures all
    /// notify here; waiters hold the lock while checking predicates.
    gate: Mutex<()>,
    cv: Condvar,
    ctx: &'a Ctx,
    /// Run epoch: wall spans record offsets from this instant.
    t0: Instant,
    /// Chaos hooks, consulted at every per-worker dispatch (no-op by
    /// default). Sites are `(gpu, worklist index)` — a pure function of the
    /// deterministic worklists, so fault plans replay identically
    /// regardless of thread interleaving or pool width.
    inj: &'a Injector,
}

impl<'a, Ctx> Shared<'a, Ctx> {
    /// Wait until `pred()` holds or the run has failed. Returns false on
    /// failure (caller bails out).
    fn wait_until(&self, mut pred: impl FnMut() -> bool) -> bool {
        let mut guard = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.failed.load(Ordering::SeqCst) {
                return false;
            }
            if pred() {
                return true;
            }
            let (g, _) = self.cv.wait_timeout(guard, WAIT_TICK).unwrap_or_else(|e| {
                let (g, t) = e.into_inner();
                (g, t)
            });
            guard = g;
        }
    }

    fn notify(&self) {
        let _g = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        self.cv.notify_all();
    }

    fn mark_done(&self, id: OpId) {
        self.done[id].store(true, Ordering::SeqCst);
        self.notify();
    }

    fn fail(&self, gpu: usize, label: &'static str, payload: Box<dyn std::any::Any + Send>) {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into());
        {
            let mut slot = self.error.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(ExecError { gpu, label, message });
            }
        }
        self.failed.store(true, Ordering::SeqCst);
        self.notify();
    }

    fn waits_satisfied(&self, id: OpId) -> bool {
        self.meta[id].2.iter().all(|&w| self.done[w].load(Ordering::SeqCst))
    }

    /// Like [`Shared::wait_until`], but attributes measurable blocked time
    /// to a `Category::Barrier` wall span (the op's own label is kept so
    /// the stall can be traced back to what was waited on).
    fn timed_wait(
        &self,
        gpu: usize,
        stream: usize,
        desc: &OpDesc,
        spans: &mut Vec<WallSpan>,
        pred: impl FnMut() -> bool,
    ) -> bool {
        let begin = Instant::now();
        let ok = self.wait_until(pred);
        let seconds = begin.elapsed().as_secs_f64();
        if seconds >= WAIT_SPAN_MIN {
            let start = begin.duration_since(self.t0).as_secs_f64();
            spans.push(WallSpan {
                gpu,
                stream,
                category: Category::Barrier,
                label: desc.label,
                start,
                seconds,
            });
        }
        ok
    }

    /// Run one worker: execute `work` (this GPU's slice of the global
    /// completion order), honoring waits and collective rendezvous.
    fn worker(&self, gpu: usize, work: &[OpId], spans: &mut Vec<WallSpan>) {
        for (seq, &id) in work.iter().enumerate() {
            let (desc, lanes, _) = &self.meta[id];
            let leader = lanes.iter().map(|&(g, _)| g).min().expect("op has lanes");
            let stream =
                lanes.iter().find(|&&(g, _)| g == gpu).map(|&(_, s)| s).expect("op is on this gpu");
            if !self.inj.is_noop() {
                let site = DispatchSite::ExecOp { gpu, seq, collective: lanes.len() > 1 };
                match self.inj.at(site) {
                    Action::Kill => {
                        // Worker death. For a collective site the peers are
                        // already arriving at the rendezvous; the failed
                        // flag releases every waiter in bounded time, so
                        // the run ends with a tagged error, not a hang.
                        self.fail(
                            gpu,
                            desc.label,
                            Box::new(format!("injected worker death (gpu {gpu}, dispatch {seq})")),
                        );
                        return;
                    }
                    Action::Pause { seconds } => {
                        // Preemption: the worker is descheduled before the
                        // op. The pause is blocked time, so it lands in the
                        // reserved Barrier category — never inside the op's
                        // own category (which would corrupt the measured
                        // per-category profile).
                        let begin = Instant::now();
                        std::thread::sleep(Duration::from_secs_f64(seconds));
                        spans.push(WallSpan {
                            gpu,
                            stream,
                            category: Category::Barrier,
                            label: desc.label,
                            start: begin.duration_since(self.t0).as_secs_f64(),
                            seconds: begin.elapsed().as_secs_f64(),
                        });
                    }
                    Action::None => {}
                }
            }
            if lanes.len() > 1 {
                // Collective rendezvous: announce arrival, then either run
                // it (leader, after full quiescence) or wait for the leader.
                self.arrivals[id].fetch_add(1, Ordering::SeqCst);
                self.notify();
                if gpu == leader {
                    let all = lanes.len();
                    if !self.timed_wait(gpu, stream, desc, spans, || {
                        self.arrivals[id].load(Ordering::SeqCst) == all && self.waits_satisfied(id)
                    }) {
                        return;
                    }
                    if !self.run_body(id, gpu, stream, desc, spans) {
                        return;
                    }
                    self.mark_done(id);
                } else if !self
                    .timed_wait(gpu, stream, desc, spans, || self.done[id].load(Ordering::SeqCst))
                {
                    return;
                }
            } else {
                if !self.timed_wait(gpu, stream, desc, spans, || self.waits_satisfied(id)) {
                    return;
                }
                if !self.run_body(id, gpu, stream, desc, spans) {
                    return;
                }
                self.mark_done(id);
            }
        }
    }

    /// Execute the body of `id` (if any) under panic capture and timing.
    /// Returns false when the run is now failed.
    fn run_body(
        &self,
        id: OpId,
        gpu: usize,
        stream: usize,
        desc: &OpDesc,
        spans: &mut Vec<WallSpan>,
    ) -> bool {
        let body =
            self.records[id].lock().unwrap_or_else(|e| e.into_inner()).take().and_then(|r| r.body);
        let Some(body) = body else { return true };
        let label = desc.label;
        let begin = Instant::now();
        let r = catch_unwind(AssertUnwindSafe(|| {
            fault_check(label);
            body(self.ctx);
        }));
        let seconds = begin.elapsed().as_secs_f64();
        match r {
            Ok(()) => {
                let start = begin.duration_since(self.t0).as_secs_f64();
                spans.push(WallSpan {
                    gpu,
                    stream,
                    category: desc.category,
                    label,
                    start,
                    seconds,
                });
                true
            }
            Err(payload) => {
                self.fail(gpu, label, payload);
                false
            }
        }
    }
}

/// Really execute `sched` against `ctx` with one worker thread per GPU.
///
/// Numerics are bit-identical to `sched.run(ctx)`: each worker replays
/// its GPU's slice of the simulator's deterministic completion order, and
/// all cross-GPU orderings that matter are dependency edges or collective
/// barriers, enforced here with real synchronization.
pub fn execute<Ctx: Sync>(sched: Schedule<Ctx>, ctx: &Ctx) -> Result<ExecReport, ExecError> {
    execute_chaos(sched, ctx, &Injector::none())
}

/// [`execute`] with fault/preemption injection: every per-worker dispatch
/// consults `inj` before processing its op.
///
/// * [`Action::Pause`] deschedules the worker for the given duration; the
///   blocked time is recorded as a [`Category::Barrier`] wall span.
/// * [`Action::Kill`] terminates the worker with a tagged
///   `"injected worker death"` error; the failed flag releases all other
///   workers (including peers blocked mid-rendezvous), so the run fails in
///   bounded time instead of hanging.
///
/// With the no-op injector this is exactly [`execute`]: the hooks cost one
/// branch per dispatch and inject nothing.
pub fn execute_chaos<Ctx: Sync>(
    sched: Schedule<Ctx>,
    ctx: &Ctx,
    inj: &Injector,
) -> Result<ExecReport, ExecError> {
    // Static pre-flight before any worker starts: a schedule with a
    // dependency cycle would hang the barriers, one with an unordered
    // buffer conflict would corrupt data non-deterministically under real
    // threads, and one reading a never-initialized scratch buffer would
    // consume allocator garbage. All are cheap to prove absent on the
    // recorded op DAG.
    if let Err(message) = mggcn_analyze::preflight(&sched) {
        return Err(ExecError { gpu: 0, label: "preflight", message });
    }
    let gpu_count = sched.machine().gpu_count();
    let SimOutcome { report, completion_order } = sched.simulate();
    let records = sched.into_records();

    let meta: Vec<OpMeta> =
        records.iter().map(|r| (r.desc, r.lanes.clone(), r.waits.clone())).collect();
    let n_ops = records.len();

    // Per-GPU worklists: the global completion order restricted to each
    // GPU's lanes (collectives appear in every participant's list).
    let mut worklists: Vec<Vec<OpId>> = vec![Vec::new(); gpu_count];
    for &id in &completion_order {
        for &(g, _) in &meta[id].1 {
            worklists[g].push(id);
        }
    }

    let shared = Shared {
        records: records.into_iter().map(|r| Mutex::new(Some(r))).collect(),
        meta,
        done: (0..n_ops).map(|_| AtomicBool::new(false)).collect(),
        arrivals: (0..n_ops).map(|_| AtomicUsize::new(0)).collect(),
        failed: AtomicBool::new(false),
        error: Mutex::new(None),
        gate: Mutex::new(()),
        cv: Condvar::new(),
        ctx,
        t0: Instant::now(),
        inj,
    };

    let start = shared.t0;
    let mut all_spans: Vec<Vec<WallSpan>> = Vec::with_capacity(gpu_count);
    std::thread::scope(|scope| {
        let handles: Vec<_> = worklists
            .iter()
            .enumerate()
            .map(|(gpu, work)| {
                let shared = &shared;
                scope.spawn(move || {
                    let mut spans = Vec::with_capacity(work.len());
                    shared.worker(gpu, work, &mut spans);
                    spans
                })
            })
            .collect();
        for h in handles {
            // A worker thread itself cannot panic — bodies are caught —
            // but stay defensive about the join.
            match h.join() {
                Ok(spans) => all_spans.push(spans),
                Err(payload) => shared.fail(usize::MAX, "worker", payload),
            }
        }
    });
    let wall_seconds = start.elapsed().as_secs_f64();

    if let Some(err) = shared.error.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(err);
    }
    let spans: Vec<WallSpan> = all_spans.into_iter().flatten().collect();
    let bodies_run = spans.iter().filter(|s| s.category != Category::Barrier).count();
    Ok(ExecReport { sim: report, wall_seconds, spans, bodies_run })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_gpusim::engine::OpDesc;
    use mggcn_gpusim::{GpuSpec, MachineSpec, Work};
    use std::sync::atomic::AtomicU64;

    fn machine(n: usize) -> MachineSpec {
        let mut m = MachineSpec::uniform("exec-test", GpuSpec::v100(), n, 6, 25.0e9);
        m.comm_latency = 0.0;
        m
    }

    fn fixed() -> Work {
        Work::Fixed { seconds: 1e-6 }
    }

    #[test]
    fn bodies_run_exactly_once_and_in_dependency_order() {
        // GPU-local chains plus a cross-GPU wait; log (gpu, step) pairs.
        let log: Mutex<Vec<(usize, u32)>> = Mutex::new(Vec::new());
        let mut s: Schedule<Mutex<Vec<(usize, u32)>>> = Schedule::new(machine(2));
        let mut last = None;
        for step in 0..3u32 {
            for gpu in 0..2usize {
                let waits: Vec<OpId> = last.into_iter().collect();
                last = Some(s.launch(
                    gpu,
                    0,
                    fixed(),
                    OpDesc::new(Category::Other, "step"),
                    &waits,
                    Some(Box::new(move |l: &Mutex<Vec<(usize, u32)>>| {
                        l.lock().unwrap().push((gpu, step))
                    })),
                ));
            }
        }
        let r = execute(s, &log).expect("no panic");
        assert_eq!(r.bodies_run, 6);
        let got = log.into_inner().unwrap();
        assert_eq!(got.len(), 6);
        // The zig-zag waits serialize everything globally.
        let expect: Vec<(usize, u32)> =
            (0..3u32).flat_map(|s| (0..2usize).map(move |g| (g, s))).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn collective_barrier_sees_all_prior_writes() {
        // Each GPU writes its slot, then an all-lane collective sums them.
        // The leader must observe every participant's write.
        struct Ctx {
            slots: Vec<AtomicU64>,
            total: AtomicU64,
        }
        let p = 4;
        let ctx =
            Ctx { slots: (0..p).map(|_| AtomicU64::new(0)).collect(), total: AtomicU64::new(0) };
        let mut s: Schedule<Ctx> = Schedule::new(machine(p));
        for g in 0..p {
            s.launch(
                g,
                0,
                fixed(),
                OpDesc::new(Category::Other, "write"),
                &[],
                Some(Box::new(move |c: &Ctx| {
                    c.slots[g].store((g as u64 + 1) * 10, Ordering::SeqCst)
                })),
            );
        }
        let lanes: Vec<(usize, usize)> = (0..p).map(|g| (g, 1)).collect();
        s.collective(
            &lanes,
            1.0e6,
            25.0e9,
            OpDesc::new(Category::Comm, "sum"),
            &[],
            Some(Box::new(|c: &Ctx| {
                let t: u64 = c.slots.iter().map(|s| s.load(Ordering::SeqCst)).sum();
                c.total.store(t, Ordering::SeqCst);
            })),
        );
        // After the barrier, every GPU doubles its own slot — must not race
        // with the collective read.
        for g in 0..p {
            // The collective is op index p.
            s.launch(
                g,
                0,
                fixed(),
                OpDesc::new(Category::Other, "after"),
                &[p],
                Some(Box::new(move |c: &Ctx| {
                    c.slots[g].fetch_add(1, Ordering::SeqCst);
                })),
            );
        }
        let r = execute(s, &ctx).expect("no panic");
        assert_eq!(ctx.total.load(Ordering::SeqCst), 10 + 20 + 30 + 40);
        assert_eq!(r.bodies_run, 2 * p + 1);
    }

    #[test]
    fn panic_in_body_returns_err_without_hanging() {
        let p = 4;
        let ctx = ();
        let mut s: Schedule<()> = Schedule::new(machine(p));
        for g in 0..p {
            s.launch(
                g,
                0,
                fixed(),
                OpDesc::new(Category::Other, "pre"),
                &[],
                Some(Box::new(move |_: &()| {
                    if g == 2 {
                        panic!("device 2 exploded");
                    }
                })),
            );
        }
        // A collective behind the panicking op: its barrier must not hang.
        let lanes: Vec<(usize, usize)> = (0..p).map(|g| (g, 0)).collect();
        s.collective(&lanes, 1.0e6, 25.0e9, OpDesc::new(Category::Comm, "barrier"), &[], None);
        let start = Instant::now();
        let err = execute(s, &ctx).expect_err("must fail");
        assert!(start.elapsed() < Duration::from_secs(10), "bounded-time failure");
        assert_eq!(err.gpu, 2);
        assert!(err.message.contains("device 2 exploded"), "{err}");
    }

    #[test]
    fn wall_spans_cover_executed_bodies() {
        let ctx = ();
        let mut s: Schedule<()> = Schedule::new(machine(2));
        for g in 0..2 {
            s.launch(
                g,
                0,
                fixed(),
                OpDesc::new(Category::GeMM, "work"),
                &[],
                Some(Box::new(|_: &()| std::thread::sleep(Duration::from_millis(2)))),
            );
        }
        let r = execute(s, &ctx).expect("ok");
        assert_eq!(r.bodies_run, 2);
        let body_spans = r.spans.iter().filter(|s| s.category != Category::Barrier).count();
        assert_eq!(body_spans, 2);
        let cats = r.category_wall_seconds();
        assert!(cats[&Category::GeMM] >= 0.004 * 0.5, "timed sleeps: {cats:?}");
        assert!(r.wall_seconds > 0.0);
        assert!(r.sim.makespan > 0.0);
        for s in &r.spans {
            assert!(s.start >= 0.0 && s.end() <= r.wall_seconds + 1e-3, "{s:?}");
        }
    }

    /// Regression for the measured-profile accounting: time a worker spends
    /// blocked (dependency waits, rendezvous) must land in the `Barrier`
    /// category — not inside the waiting op's own category — and per-GPU
    /// category sums must account for the whole epoch wall time up to
    /// scheduling slack.
    #[test]
    fn wait_time_lands_in_barrier_category() {
        let ctx = ();
        let mut s: Schedule<()> = Schedule::new(machine(2));
        // GPU 0 works for ~40ms; GPU 1's only op depends on it, so GPU 1
        // spends those 40ms blocked.
        let a = s.launch(
            0,
            0,
            fixed(),
            OpDesc::new(Category::GeMM, "long"),
            &[],
            Some(Box::new(|_: &()| std::thread::sleep(Duration::from_millis(40)))),
        );
        s.launch(
            1,
            0,
            fixed(),
            OpDesc::new(Category::GeMM, "short"),
            &[a],
            Some(Box::new(|_: &()| std::thread::sleep(Duration::from_millis(2)))),
        );
        let r = execute(s, &ctx).expect("ok");

        // GPU 1's blocked time is barrier, not GeMM.
        let gpu1_barrier: f64 = r
            .spans
            .iter()
            .filter(|s| s.gpu == 1 && s.category == Category::Barrier)
            .map(|s| s.seconds)
            .sum();
        let gpu1_gemm: f64 = r
            .spans
            .iter()
            .filter(|s| s.gpu == 1 && s.category == Category::GeMM)
            .map(|s| s.seconds)
            .sum();
        assert!(gpu1_barrier >= 0.020, "wait not attributed to barrier: {gpu1_barrier}");
        assert!(gpu1_gemm < 0.020, "wait double-counted into GeMM: {gpu1_gemm}");

        // Per-GPU category sums ≈ wall time (generous slack for spawn and
        // scheduler jitter on loaded CI machines).
        for gpu in 0..2 {
            let sum: f64 = r.spans.iter().filter(|s| s.gpu == gpu).map(|s| s.seconds).sum();
            assert!(
                sum <= r.wall_seconds + 1e-3,
                "gpu {gpu} category sum {sum} exceeds wall {}",
                r.wall_seconds
            );
            assert!(
                sum >= 0.5 * r.wall_seconds,
                "gpu {gpu} category sum {sum} far below wall {}",
                r.wall_seconds
            );
        }
    }

    /// Companion regression to `wait_time_lands_in_barrier_category` for
    /// *injected* pauses: a chaos-plan preemption deschedules the worker
    /// before its op, and that blocked time must be attributed to the
    /// reserved `Barrier` category — never folded into the op's own
    /// category — while results stay identical to the fault-free run.
    #[test]
    fn injected_pause_lands_in_barrier_category() {
        use mggcn_sched::{FaultPlan, PauseAt};
        let ctx = Mutex::new(Vec::new());
        let mk = || {
            let mut s: Schedule<Mutex<Vec<usize>>> = Schedule::new(machine(2));
            for g in 0..2usize {
                s.launch(
                    g,
                    0,
                    fixed(),
                    OpDesc::new(Category::GeMM, "work"),
                    &[],
                    Some(Box::new(move |l: &Mutex<Vec<usize>>| l.lock().unwrap().push(g))),
                );
            }
            s
        };
        // Pause GPU 1 for 30ms before its first (and only) dispatch.
        let plan = FaultPlan {
            pauses: vec![PauseAt { gpu: 1, seq: 0, seconds: 0.030 }],
            ..FaultPlan::none()
        };
        let inj = Injector::new(plan);
        let r = execute_chaos(mk(), &ctx, &inj).expect("pauses are recoverable");
        assert_eq!(r.bodies_run, 2, "both bodies still run");
        assert_eq!(inj.fired().len(), 1, "the pause fired");

        let gpu1_barrier: f64 = r
            .spans
            .iter()
            .filter(|s| s.gpu == 1 && s.category == Category::Barrier)
            .map(|s| s.seconds)
            .sum();
        let gpu1_gemm: f64 = r
            .spans
            .iter()
            .filter(|s| s.gpu == 1 && s.category == Category::GeMM)
            .map(|s| s.seconds)
            .sum();
        assert!(gpu1_barrier >= 0.025, "pause not attributed to Barrier: {gpu1_barrier}");
        assert!(gpu1_gemm < 0.025, "pause leaked into the op's category: {gpu1_gemm}");

        // No silent corruption: same writes as a fault-free run (order may
        // legitimately differ across GPUs — both ops are independent).
        let mut got = std::mem::take(&mut *ctx.lock().unwrap());
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
    }

    /// Injected worker death must fail the run in bounded time with a
    /// tagged error — even when peers are blocked mid-rendezvous on a
    /// collective the dead worker never reaches.
    #[test]
    fn injected_death_mid_collective_fails_bounded_and_tagged() {
        use mggcn_sched::{FaultPlan, Kill};
        let p = 4;
        let mut s: Schedule<()> = Schedule::new(machine(p));
        let lanes: Vec<(usize, usize)> = (0..p).map(|g| (g, 0)).collect();
        s.collective(&lanes, 1.0e6, 25.0e9, OpDesc::new(Category::Comm, "allreduce"), &[], None);
        // Kill GPU 2 at its first dispatch — the collective itself, so the
        // other three participants are already arriving at the rendezvous.
        let plan = FaultPlan { kills: vec![Kill { gpu: 2, seq: 0 }], ..FaultPlan::none() };
        let inj = Injector::new(plan);
        let start = Instant::now();
        let err = execute_chaos(s, &(), &inj).expect_err("death must fail the run");
        assert!(start.elapsed() < Duration::from_secs(10), "bounded-time failure");
        assert_eq!(err.gpu, 2);
        assert!(err.message.contains("injected worker death"), "untagged error: {err}");
    }

    /// A schedule whose declared effects conflict without an ordering edge
    /// must be rejected before any worker thread (or body) starts.
    #[test]
    fn preflight_rejects_unordered_buffer_conflict() {
        use mggcn_gpusim::{BufId, Effects};
        let ran = AtomicBool::new(false);
        let mut s: Schedule<AtomicBool> = Schedule::new(machine(1));
        let buf = BufId::new(0, "HW");
        s.launch_fx(
            0,
            0,
            fixed(),
            OpDesc::new(Category::GeMM, "writer"),
            &[],
            Effects::none().writes([buf]),
            Some(Box::new(|r: &AtomicBool| r.store(true, Ordering::SeqCst))),
        );
        s.launch_fx(
            0,
            1,
            fixed(),
            OpDesc::new(Category::SpMM, "reader"),
            &[],
            Effects::none().reads([buf]),
            Some(Box::new(|r: &AtomicBool| r.store(true, Ordering::SeqCst))),
        );
        let err = execute(s, &ran).expect_err("hazardous schedule accepted");
        assert_eq!(err.label, "preflight");
        assert!(err.message.contains("RAW hazard"), "unexpected message: {}", err.message);
        assert!(!ran.load(Ordering::SeqCst), "a body ran despite preflight failure");
    }

    /// The def-use pass rides along in preflight: a schedule reading a
    /// scratch-family buffer nothing ever wrote is rejected before any
    /// worker thread (or body) starts.
    #[test]
    fn preflight_rejects_uninitialized_scratch_read() {
        use mggcn_gpusim::{BufId, Effects};
        let ran = AtomicBool::new(false);
        let mut s: Schedule<AtomicBool> = Schedule::new(machine(1));
        s.launch_fx(
            0,
            0,
            fixed(),
            OpDesc::new(Category::SpMM, "reader"),
            &[],
            Effects::none().reads([BufId::new(0, "BC1")]),
            Some(Box::new(|r: &AtomicBool| r.store(true, Ordering::SeqCst))),
        );
        let err = execute(s, &ran).expect_err("uninitialized read accepted");
        assert_eq!(err.label, "preflight");
        assert!(err.message.contains("uninitialized read"), "unexpected message: {}", err.message);
        assert!(!ran.load(Ordering::SeqCst), "a body ran despite preflight failure");
    }
}
