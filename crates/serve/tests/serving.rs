//! End-to-end serving guarantees:
//!
//! 1. the batched, cached serving path returns outputs **bit-identical**
//!    to the reference full-graph forward pass — cold, warm, and after a
//!    graph-delta invalidation;
//! 2. micro-batching sustains ≥2× the throughput of batch-size-1 serving
//!    on the same simulated hardware;
//! 3. a warm propagation cache reduces mean per-request compute vs cold.

use mggcn_dense::Dense;
use mggcn_gpusim::{GpuSpec, MachineSpec};
use mggcn_graph::generators::chung_lu;
use mggcn_serve::{generate_load, BatchPolicy, LoadGenConfig, ServeConfig, Server, ServingModel};

fn model(n: usize, d0: usize, hidden: usize, classes: usize, seed: u64) -> ServingModel {
    let adj = chung_lu::generate(&vec![6u32; n], seed);
    let feats = Dense::from_fn(n, d0, |r, c| ((r * d0 + c) as f32 * 0.37).sin());
    let w0 = Dense::from_fn(d0, hidden, |r, c| ((r + 5 * c) as f32 * 0.61).cos() * 0.4);
    let w1 = Dense::from_fn(hidden, classes, |r, c| ((3 * r + c) as f32 * 0.53).sin() * 0.4);
    ServingModel::from_parts(vec![w0, w1], adj, feats).expect("valid model")
}

fn config(policy: BatchPolicy, cache_bytes: usize) -> ServeConfig {
    ServeConfig::new(MachineSpec::dgx_a100(), policy, cache_bytes)
}

#[test]
fn served_outputs_bit_identical_to_full_forward() {
    let m = model(200, 16, 12, 5, 11);
    let reference = m.forward_full();
    let mut server = Server::new(m, config(BatchPolicy::new(1e-3, 16), 1 << 20));

    // Cold pass: every aggregation row computed via the induced block.
    let queries: Vec<u32> = vec![0, 7, 42, 199, 7, 63];
    let out = server.query(&queries);
    for (i, &v) in queries.iter().enumerate() {
        assert_eq!(out.row(i), reference.row(v as usize), "cold row {v}");
    }
    assert!(server.cache().stats().insertions > 0, "cold pass must populate the cache");

    // Warm pass: same queries again, now served from cached rows.
    let hits_before = server.cache().stats().hits;
    let out2 = server.query(&queries);
    assert!(server.cache().stats().hits > hits_before, "warm pass must hit the cache");
    for (i, &v) in queries.iter().enumerate() {
        assert_eq!(out2.row(i), reference.row(v as usize), "warm row {v}");
    }
}

#[test]
fn outputs_stay_bit_identical_after_graph_delta() {
    let m = model(150, 12, 10, 4, 13);
    let mut server = Server::new(m, config(BatchPolicy::new(1e-3, 16), 1 << 20));

    // Warm the cache over a broad query set.
    let all: Vec<u32> = (0..150).collect();
    server.query(&all);
    assert!(server.cache().stats().insertions > 0);

    // Mutate the graph; affected cached rows must be invalidated.
    let (invalidated, evicted) = server.apply_delta(&[(3, 77), (10, 140)]);
    assert!(!invalidated.is_empty());
    assert!(evicted > 0, "warm cache must lose the affected rows");

    // Every output — served through the surviving cache entries plus
    // recomputation — matches the post-delta reference bit-for-bit.
    let reference = server.model().forward_full();
    let out = server.query(&all);
    for v in 0..150usize {
        assert_eq!(out.row(v), reference.row(v), "post-delta row {v}");
    }
}

#[test]
fn micro_batching_doubles_sustained_throughput() {
    // Identical trace and hardware; only the batching policy differs.
    // Caching is disabled on both sides to isolate the batching effect,
    // and the single-GPU machine is driven past its unbatched capacity so
    // sustained throughput reflects service rate, not the arrival rate.
    let trace = generate_load(&LoadGenConfig::uniform(100_000.0, 400, 300, 21));
    let machine = || MachineSpec::uniform("1xA100", GpuSpec::a100(), 1, 12, 300.0e9);

    let mut unbatched = Server::new(
        model(300, 16, 12, 5, 17),
        ServeConfig::new(machine(), BatchPolicy::unbatched(), 0),
    );
    let single = unbatched.serve("unbatched", &trace);

    let mut batched = Server::new(
        model(300, 16, 12, 5, 17),
        ServeConfig::new(machine(), BatchPolicy::new(1e-3, 32), 0),
    );
    let micro = batched.serve("batched", &trace);

    assert!(micro.mean_batch > 1.5, "trace must actually coalesce");
    assert!(
        micro.throughput_rps >= 2.0 * single.throughput_rps,
        "batched {:.0} rps vs unbatched {:.0} rps",
        micro.throughput_rps,
        single.throughput_rps
    );
}

#[test]
fn warm_cache_reduces_mean_per_request_compute() {
    // Hot-skewed traffic over a cache big enough for the working set.
    let trace = generate_load(&LoadGenConfig::skewed(20_000.0, 300, 200, 29));
    let mut server =
        Server::new(model(200, 16, 12, 5, 19), config(BatchPolicy::new(1e-3, 16), 8 << 20));

    let cold = server.serve("cold", &trace);
    let warm = server.serve("warm", &trace);

    assert!(warm.cache_hit_rate > 0.9, "second pass must be warm, got {}", warm.cache_hit_rate);
    assert!(
        warm.compute_per_request_us < cold.compute_per_request_us,
        "warm {:.2}us/req must beat cold {:.2}us/req",
        warm.compute_per_request_us,
        cold.compute_per_request_us
    );
}

/// Pins `Server::apply_delta`'s contract through the cache-invalidation
/// rename: the first element is the 1-hop out-neighborhood of the delta
/// endpoints in the updated operator (the *invalidated* vertices —
/// serve-side cache coherence, nothing to do with training-time bounded
/// staleness), and the second counts rows actually evicted, which is
/// zero on a cold cache and bounded by the invalidated set when warm.
#[test]
fn apply_delta_returns_invalidated_vertices_and_eviction_count() {
    let m = model(120, 10, 8, 4, 17);
    let mut server = Server::new(m, config(BatchPolicy::new(1e-3, 16), 1 << 20));

    // Cold cache: the invalidated set is purely structural, evictions 0.
    let (cold_invalidated, cold_evicted) = server.apply_delta(&[(5, 60)]);
    assert!(cold_invalidated.contains(&5) && cold_invalidated.contains(&60));
    assert_eq!(cold_evicted, 0, "nothing cached, nothing to evict");

    // Warm the cache, re-apply the same delta: the structural set is
    // identical (same endpoints, same operator shape — the edge already
    // exists, so re-adding it changes no sparsity pattern), and now the
    // eviction count is positive but never exceeds the invalidated set.
    let all: Vec<u32> = (0..120).collect();
    server.query(&all);
    let (warm_invalidated, warm_evicted) = server.apply_delta(&[(5, 60)]);
    assert_eq!(warm_invalidated, cold_invalidated, "structural set must not depend on cache state");
    assert!(warm_evicted > 0, "warm cache must evict the affected rows");
    assert!(warm_evicted <= warm_invalidated.len());

    // Served outputs still match a from-scratch forward bit-for-bit.
    let reference = server.model().forward_full();
    let out = server.query(&all);
    for v in 0..120usize {
        assert_eq!(out.row(v), reference.row(v), "post-delta row {v}");
    }
}
