//! Property tests for the propagation cache and its interaction with
//! graph deltas:
//!
//! * the size bound is an invariant under arbitrary operation sequences;
//! * a hit after an insert returns exactly the inserted bits;
//! * a graph delta invalidates exactly the 1-hop out-neighborhood of the
//!   delta's endpoints — no more, no less.

use mggcn_dense::Dense;
use mggcn_graph::generators::chung_lu;
use mggcn_graph::sampling::khop_neighborhood;
use mggcn_serve::{PropagationCache, ServingModel};
use proptest::prelude::*;

proptest! {
    #[test]
    fn capacity_is_never_exceeded(
        capacity_rows in 1usize..8,
        ops in proptest::collection::vec((0u32..32, 0u8..4), 1..200),
    ) {
        let stride = 3;
        let mut c = PropagationCache::new(capacity_rows * stride * 4, stride);
        prop_assert_eq!(c.capacity_rows(), capacity_rows);
        let row = |v: u32| vec![v as f32; stride];
        for (v, op) in ops {
            match op {
                0 | 1 => c.insert(v, &row(v)),
                2 => { c.get(v); }
                _ => { c.invalidate(v); }
            }
            prop_assert!(c.len() <= capacity_rows, "len {} > cap {}", c.len(), capacity_rows);
            prop_assert!(c.bytes_used() <= capacity_rows * stride * 4);
        }
    }

    #[test]
    fn hit_after_insert_returns_inserted_bits(
        vertex in 0u32..1000,
        payload in proptest::collection::vec(-1.0e6f32..1.0e6, 5),
        churn in proptest::collection::vec(0u32..1000, 0..20),
    ) {
        let mut c = PropagationCache::new(64 * 5 * 4, 5);
        // Churn first so `vertex` lands in an arbitrary slot.
        for v in churn {
            c.insert(v, &[v as f32; 5]);
        }
        c.insert(vertex, &payload);
        let got = c.get(vertex).expect("just inserted");
        prop_assert_eq!(got, &payload[..]);
    }

    #[test]
    fn delta_invalidates_exactly_the_one_hop_out_neighborhood(
        seed in 0u64..50,
        u in 0u32..60,
        v in 0u32..60,
    ) {
        let n = 60usize;
        let adj = chung_lu::generate(&vec![4u32; n], seed);
        let feats = Dense::from_fn(n, 6, |r, c| ((r + c) as f32).sin());
        let w = Dense::from_fn(6, 3, |r, c| ((r * 2 + c) as f32).cos());
        let mut model = ServingModel::from_parts(vec![w], adj, feats).unwrap();

        // Cache every vertex's aggregation row, then apply one delta.
        let mut cache = PropagationCache::new(n * 6 * 4, 6);
        let all: Vec<u32> = (0..n as u32).collect();
        let rows = model.aggregation_rows(&all);
        for (i, &g) in all.iter().enumerate() {
            cache.insert(g, rows.row(i));
        }
        let invalidated = model.apply_delta(&[(u, v)]);
        cache.invalidate_many(&invalidated);

        // The evicted set is exactly the 1-hop out-neighborhood of {u, v}
        // in the updated operator: those vertices are gone, all others
        // are still resident.
        let mut expected = khop_neighborhood(model.a_hat_t(), &[u, v], 1);
        expected.sort_unstable();
        for g in 0..n as u32 {
            let should_be_invalid = expected.binary_search(&g).is_ok();
            prop_assert_eq!(
                cache.contains(g),
                !should_be_invalid,
                "vertex {} residency wrong after delta ({}, {})", g, u, v
            );
        }
    }
}
