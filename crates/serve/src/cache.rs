//! The propagation cache: a size-bounded LRU over per-vertex layer-1
//! aggregation rows (`Â·H⁰`), the CaPGNN idea applied to this stack.
//!
//! The expensive part of serving a GCN query is the first layer's SpMM —
//! it touches the raw feature matrix, whose width dwarfs the hidden
//! layers. But a vertex's layer-1 aggregation row depends only on the
//! graph and `H⁰`, both frozen between graph deltas, so repeat queries can
//! reuse it bit-for-bit. This cache stores those rows.
//!
//! The implementation is **drop-free**: all storage lives in flat `Vec`s
//! (one `f32` arena holding fixed-stride rows, plus intrusive prev/next
//! slot links for the LRU order), so there are no per-entry allocations,
//! no linked `Box` chains to drop recursively, and eviction is O(1).

use std::collections::HashMap;

const NIL: u32 = u32::MAX;

/// Hit/miss/eviction counters, cheap enough to always keep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    pub invalidations: u64,
}

impl CacheStats {
    /// Hits over lookups, 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// Size-bounded LRU cache of fixed-stride `f32` rows keyed by vertex id.
#[derive(Clone, Debug)]
pub struct PropagationCache {
    stride: usize,
    capacity_rows: usize,
    /// Row arena: slot `s` owns `data[s*stride .. (s+1)*stride]`.
    data: Vec<f32>,
    keys: Vec<u32>,
    /// Intrusive doubly-linked LRU list over slots (`head` = most recent).
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32,
    tail: u32,
    free: Vec<u32>,
    map: HashMap<u32, u32>,
    stats: CacheStats,
}

impl PropagationCache {
    /// A cache bounded by `capacity_bytes`, holding rows of `stride`
    /// floats. A budget smaller than one row disables the cache (every
    /// lookup misses, inserts are dropped).
    pub fn new(capacity_bytes: usize, stride: usize) -> Self {
        let row_bytes = stride.max(1) * std::mem::size_of::<f32>();
        let capacity_rows = capacity_bytes / row_bytes;
        Self {
            stride,
            capacity_rows,
            data: Vec::new(),
            keys: Vec::new(),
            prev: Vec::new(),
            next: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            map: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Maximum number of resident rows.
    pub fn capacity_rows(&self) -> usize {
        self.capacity_rows
    }

    /// Currently resident rows.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes of row payload currently resident.
    pub fn bytes_used(&self) -> usize {
        self.len() * self.stride * std::mem::size_of::<f32>()
    }

    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Look up a vertex's row, promoting it to most-recently-used.
    pub fn get(&mut self, vertex: u32) -> Option<&[f32]> {
        match self.map.get(&vertex).copied() {
            Some(slot) => {
                self.stats.hits += 1;
                self.unlink(slot);
                self.push_front(slot);
                let s = slot as usize;
                Some(&self.data[s * self.stride..(s + 1) * self.stride])
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Check residency without touching LRU order or hit/miss counters.
    pub fn contains(&self, vertex: u32) -> bool {
        self.map.contains_key(&vertex)
    }

    /// Insert (or overwrite) a vertex's row, evicting the least-recently
    /// used row if the cache is full. Rows must match the stride.
    pub fn insert(&mut self, vertex: u32, row: &[f32]) {
        assert_eq!(row.len(), self.stride, "cache row stride mismatch");
        if self.capacity_rows == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&vertex) {
            let s = slot as usize;
            self.data[s * self.stride..(s + 1) * self.stride].copy_from_slice(row);
            self.unlink(slot);
            self.push_front(slot);
            self.stats.insertions += 1;
            return;
        }
        let slot = if let Some(slot) = self.free.pop() {
            slot
        } else if self.keys.len() < self.capacity_rows {
            // Grow the slab by one slot.
            let slot = self.keys.len() as u32;
            self.data.resize(self.data.len() + self.stride, 0.0);
            self.keys.push(NIL);
            self.prev.push(NIL);
            self.next.push(NIL);
            slot
        } else {
            // Evict the LRU tail.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "full cache must have a tail");
            self.unlink(victim);
            self.map.remove(&self.keys[victim as usize]);
            self.stats.evictions += 1;
            victim
        };
        let s = slot as usize;
        self.data[s * self.stride..(s + 1) * self.stride].copy_from_slice(row);
        self.keys[s] = vertex;
        self.map.insert(vertex, slot);
        self.push_front(slot);
        self.stats.insertions += 1;
    }

    /// Remove one vertex's row. Returns whether it was resident.
    pub fn invalidate(&mut self, vertex: u32) -> bool {
        match self.map.remove(&vertex) {
            Some(slot) => {
                self.unlink(slot);
                self.keys[slot as usize] = NIL;
                self.free.push(slot);
                self.stats.invalidations += 1;
                true
            }
            None => false,
        }
    }

    /// Remove a set of vertices; returns how many were resident.
    pub fn invalidate_many(&mut self, vertices: &[u32]) -> usize {
        vertices.iter().filter(|&&v| self.invalidate(v)).count()
    }

    /// Drop everything (counts as invalidations).
    pub fn clear(&mut self) {
        let resident: Vec<u32> = self.map.keys().copied().collect();
        self.invalidate_many(&resident);
    }

    /// Resident keys in LRU order, most recent first (tests/debugging).
    pub fn keys_mru_first(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        let mut s = self.head;
        while s != NIL {
            out.push(self.keys[s as usize]);
            s = self.next[s as usize];
        }
        out
    }

    fn unlink(&mut self, slot: u32) {
        let s = slot as usize;
        let (p, n) = (self.prev[s], self.next[s]);
        if p != NIL {
            self.next[p as usize] = n;
        } else if self.head == slot {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else if self.tail == slot {
            self.tail = p;
        }
        self.prev[s] = NIL;
        self.next[s] = NIL;
    }

    fn push_front(&mut self, slot: u32) {
        let s = slot as usize;
        self.prev[s] = NIL;
        self.next[s] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: u32, stride: usize) -> Vec<f32> {
        (0..stride).map(|i| v as f32 + i as f32 * 0.5).collect()
    }

    #[test]
    fn hit_after_insert_returns_same_bits() {
        let mut c = PropagationCache::new(1024, 4);
        let r = row(7, 4);
        c.insert(7, &r);
        let got = c.get(7).expect("hit");
        assert_eq!(got, &r[..]);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn capacity_is_enforced_by_lru_eviction() {
        // 3 rows of 2 floats = 24 bytes.
        let mut c = PropagationCache::new(24, 2);
        assert_eq!(c.capacity_rows(), 3);
        for v in 0..5 {
            c.insert(v, &row(v, 2));
            assert!(c.len() <= 3);
        }
        // 0 and 1 were evicted, 2..5 resident.
        assert!(!c.contains(0) && !c.contains(1));
        assert!(c.contains(2) && c.contains(3) && c.contains(4));
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn get_promotes_to_mru() {
        let mut c = PropagationCache::new(24, 2);
        for v in 0..3 {
            c.insert(v, &row(v, 2));
        }
        c.get(0); // 0 is now MRU; 1 is LRU.
        c.insert(3, &row(3, 2));
        assert!(c.contains(0), "promoted entry must survive eviction");
        assert!(!c.contains(1), "LRU entry must be the victim");
        assert_eq!(c.keys_mru_first(), vec![3, 0, 2]);
    }

    #[test]
    fn invalidate_frees_a_slot() {
        let mut c = PropagationCache::new(16, 2);
        c.insert(1, &row(1, 2));
        c.insert(2, &row(2, 2));
        assert!(c.invalidate(1));
        assert!(!c.invalidate(1), "double invalidate is a no-op");
        assert_eq!(c.len(), 1);
        c.insert(3, &row(3, 2));
        assert_eq!(c.stats().evictions, 0, "freed slot is reused, not evicted");
        assert!(c.get(1).is_none());
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn zero_budget_disables_cache() {
        let mut c = PropagationCache::new(4, 8); // less than one row
        c.insert(1, &row(1, 8));
        assert_eq!(c.len(), 0);
        assert!(c.get(1).is_none());
    }

    #[test]
    fn overwrite_keeps_single_entry() {
        let mut c = PropagationCache::new(64, 2);
        c.insert(5, &[1.0, 2.0]);
        c.insert(5, &[3.0, 4.0]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(5).unwrap(), &[3.0, 4.0]);
    }
}
