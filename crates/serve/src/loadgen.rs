//! Deterministic open-loop load generation.
//!
//! Arrivals follow a Poisson process (exponential inter-arrival times) at
//! a target QPS — open-loop, so the generator never waits for the server
//! and queueing delay shows up honestly in the latency tail. Queried
//! vertices are drawn with a configurable hot-set skew: real inference
//! traffic concentrates on popular entities, which is what makes a
//! propagation cache pay off.
//!
//! Everything is seeded, so a (seed, config) pair always produces the
//! same trace.

use crate::batcher::Request;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Open-loop arrival generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct LoadGenConfig {
    /// Mean arrival rate, requests per simulated second.
    pub qps: f64,
    /// Number of requests to generate.
    pub n_requests: usize,
    /// Vertex id space: requests target `0..vertices`.
    pub vertices: usize,
    /// Fraction of the vertex space forming the hot set (e.g. 0.05).
    pub hot_fraction: f64,
    /// Probability a request targets the hot set (e.g. 0.8). Zero gives
    /// uniform traffic.
    pub hot_weight: f64,
    pub seed: u64,
}

impl LoadGenConfig {
    pub fn uniform(qps: f64, n_requests: usize, vertices: usize, seed: u64) -> Self {
        Self { qps, n_requests, vertices, hot_fraction: 0.0, hot_weight: 0.0, seed }
    }

    /// 80% of traffic on the hottest 5% of vertices.
    pub fn skewed(qps: f64, n_requests: usize, vertices: usize, seed: u64) -> Self {
        Self { qps, n_requests, vertices, hot_fraction: 0.05, hot_weight: 0.8, seed }
    }
}

/// Aggregate shape of a request trace — what rate the open loop actually
/// produced. An empty trace is a valid summary (all zeros), not a panic:
/// callers sweep `n_requests` down to 0 when bisecting capacity.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TraceSummary {
    pub requests: usize,
    /// Last arrival minus first arrival, seconds; 0 for < 2 requests.
    pub span_seconds: f64,
    /// Measured arrival rate over the span; 0 when the span is empty.
    pub measured_qps: f64,
}

/// Summarize an arrival-sorted trace. Returns the zero summary for an
/// empty (or single-request) trace instead of panicking on `last()`.
pub fn summarize(reqs: &[Request]) -> TraceSummary {
    let (Some(first), Some(last)) = (reqs.first(), reqs.last()) else {
        return TraceSummary::default();
    };
    let span = last.arrival - first.arrival;
    TraceSummary {
        requests: reqs.len(),
        span_seconds: span,
        measured_qps: if span > 0.0 { reqs.len() as f64 / span } else { 0.0 },
    }
}

/// Generate an arrival-sorted request trace.
pub fn generate(cfg: &LoadGenConfig) -> Vec<Request> {
    assert!(cfg.qps > 0.0, "qps must be positive");
    assert!(cfg.vertices > 0, "need a nonempty vertex space");
    assert!((0.0..=1.0).contains(&cfg.hot_fraction) && (0.0..=1.0).contains(&cfg.hot_weight));
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let hot = ((cfg.vertices as f64 * cfg.hot_fraction) as usize).max(1);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(cfg.n_requests);
    for id in 0..cfg.n_requests as u64 {
        // Exponential inter-arrival: -ln(1-u)/qps with u in [0, 1).
        let u: f64 = rng.gen();
        t += -(1.0 - u).ln() / cfg.qps;
        let vertex = if cfg.hot_weight > 0.0 && rng.gen::<f64>() < cfg.hot_weight {
            rng.gen_range(0..hot) as u32
        } else {
            rng.gen_range(0..cfg.vertices) as u32
        };
        out.push(Request { id, vertex, arrival: t });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_per_seed() {
        let cfg = LoadGenConfig::skewed(1000.0, 200, 500, 42);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        let c = generate(&LoadGenConfig { seed: 43, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_sorted_and_rate_is_roughly_right() {
        let cfg = LoadGenConfig::uniform(2000.0, 4000, 100, 7);
        let reqs = generate(&cfg);
        assert_eq!(reqs.len(), 4000);
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let rate = summarize(&reqs).measured_qps;
        assert!((rate - 2000.0).abs() / 2000.0 < 0.15, "measured rate {rate}");
        assert!(reqs.iter().all(|r| (r.vertex as usize) < 100));
    }

    #[test]
    fn empty_and_singleton_traces_summarize_to_zero() {
        assert_eq!(summarize(&[]), TraceSummary::default());
        let one = generate(&LoadGenConfig::uniform(100.0, 1, 10, 1));
        let s = summarize(&one);
        assert_eq!(s.requests, 1);
        assert_eq!(s.span_seconds, 0.0);
        assert_eq!(s.measured_qps, 0.0);
        // n_requests = 0 is a valid config, not a panic.
        assert!(generate(&LoadGenConfig::uniform(100.0, 0, 10, 1)).is_empty());
    }

    #[test]
    fn hot_set_receives_most_traffic() {
        let cfg = LoadGenConfig::skewed(1000.0, 5000, 1000, 3);
        let reqs = generate(&cfg);
        let hot = (1000.0 * cfg.hot_fraction) as u32;
        let on_hot = reqs.iter().filter(|r| r.vertex < hot).count();
        // hot_weight 0.8 plus uniform spillover; allow generous slack.
        let frac = on_hot as f64 / reqs.len() as f64;
        assert!(frac > 0.7, "hot fraction {frac}");
    }
}
