//! Request micro-batching: coalesce concurrent inference requests into
//! one k-hop extraction + batched forward pass.
//!
//! Per-batch costs (kernel launches, subgraph extraction) dominate online
//! GCN inference at small request sizes, so the server amortizes them by
//! holding the first request of a batch for up to a *window* and admitting
//! everything that arrives in the meantime, up to a size cap. Batching is
//! a pure function of the arrival sequence and the policy, so simulated
//! runs are exactly reproducible.

/// One inference request: "what is the model output for this vertex?"
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Request {
    pub id: u64,
    pub vertex: u32,
    /// Arrival time, seconds on the simulated clock.
    pub arrival: f64,
}

/// Micro-batching policy.
#[derive(Clone, Copy, Debug)]
pub struct BatchPolicy {
    /// How long the first request of a batch may wait for company,
    /// seconds. Zero batches only simultaneous arrivals.
    pub window: f64,
    /// Hard cap on requests per batch; the batch closes early when full.
    pub max_batch: usize,
}

impl BatchPolicy {
    pub fn new(window: f64, max_batch: usize) -> Self {
        assert!(window >= 0.0, "window must be non-negative");
        assert!(max_batch >= 1, "batches hold at least one request");
        Self { window, max_batch }
    }

    /// Degenerate policy: every request is its own batch.
    pub fn unbatched() -> Self {
        Self { window: 0.0, max_batch: 1 }
    }
}

/// A closed batch, ready for execution at `ready_at`.
#[derive(Clone, Debug)]
pub struct Batch {
    pub requests: Vec<Request>,
    /// When the batch closed: the window expiry, or the arrival of the
    /// request that filled it.
    pub ready_at: f64,
}

impl Batch {
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The queried vertices, in request order (duplicates preserved).
    pub fn vertices(&self) -> Vec<u32> {
        self.requests.iter().map(|r| r.vertex).collect()
    }
}

/// Partition an arrival-ordered request stream into batches under
/// `policy`. The input must be sorted by arrival time (panics otherwise);
/// each batch opens at its first request's arrival and closes at
/// `open + window`, or earlier when `max_batch` is reached.
pub fn form_batches(requests: &[Request], policy: &BatchPolicy) -> Vec<Batch> {
    for w in requests.windows(2) {
        assert!(w[0].arrival <= w[1].arrival, "requests must be arrival-sorted");
    }
    let mut batches = Vec::new();
    let mut i = 0;
    while i < requests.len() {
        let open = requests[i].arrival;
        let close = open + policy.window;
        let mut members = vec![requests[i]];
        i += 1;
        while i < requests.len() && members.len() < policy.max_batch && requests[i].arrival <= close
        {
            members.push(requests[i]);
            i += 1;
        }
        let ready_at = if members.len() == policy.max_batch {
            members.last().expect("nonempty").arrival
        } else {
            close
        };
        batches.push(Batch { requests: members, ready_at });
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, vertex: u32, arrival: f64) -> Request {
        Request { id, vertex, arrival }
    }

    #[test]
    fn unbatched_policy_isolates_requests() {
        let reqs = vec![req(0, 5, 0.0), req(1, 6, 0.0), req(2, 7, 1.0)];
        let batches = form_batches(&reqs, &BatchPolicy::unbatched());
        assert_eq!(batches.len(), 3);
        assert!(batches.iter().all(|b| b.len() == 1));
        assert_eq!(batches[0].ready_at, 0.0);
    }

    #[test]
    fn window_coalesces_nearby_arrivals() {
        let reqs = vec![req(0, 1, 0.0), req(1, 2, 0.004), req(2, 3, 0.009), req(3, 4, 0.02)];
        let batches = form_batches(&reqs, &BatchPolicy::new(0.010, 64));
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].vertices(), vec![1, 2, 3]);
        assert!((batches[0].ready_at - 0.010).abs() < 1e-12);
        assert_eq!(batches[1].vertices(), vec![4]);
        assert!((batches[1].ready_at - 0.030).abs() < 1e-12);
    }

    #[test]
    fn size_cap_closes_early() {
        let reqs: Vec<Request> = (0..5).map(|i| req(i, i as u32, i as f64 * 0.001)).collect();
        let batches = form_batches(&reqs, &BatchPolicy::new(1.0, 2));
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 2);
        // A full batch is ready at the arrival of the filling request, not
        // at window expiry.
        assert!((batches[0].ready_at - 0.001).abs() < 1e-12);
    }

    #[test]
    fn every_request_lands_in_exactly_one_batch() {
        let reqs: Vec<Request> = (0..97).map(|i| req(i, i as u32, i as f64 * 0.0007)).collect();
        let batches = form_batches(&reqs, &BatchPolicy::new(0.005, 8));
        let total: usize = batches.iter().map(Batch::len).sum();
        assert_eq!(total, 97);
        let mut ids: Vec<u64> =
            batches.iter().flat_map(|b| b.requests.iter().map(|r| r.id)).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..97).collect::<Vec<u64>>());
    }
}
