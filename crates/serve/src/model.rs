//! The frozen serving model: checkpoint weights + graph, replicated on
//! every simulated GPU.
//!
//! Serving freezes a trained checkpoint into immutable state shared by all
//! replicas (`Arc`s, so per-batch execution contexts can hold it without
//! copying): the layer weights, the feature matrix `H⁰`, and the
//! column-normalized transposed adjacency `Âᵀ` the forward pass multiplies
//! by. The forward pass is aggregation-first at every layer,
//! `H⁽ˡ⁺¹⁾ = σ((Âᵀ·H⁽ˡ⁾)·Wˡ)`, which makes the layer-0 aggregation rows
//! (`Âᵀ·H⁰`) pure per-vertex functions of frozen state — exactly what the
//! propagation cache stores.
//!
//! Graph deltas (new edges) re-normalize the adjacency and report the
//! 1-hop out-neighborhood of the touched endpoints as the invalidation
//! set — a superset of the rows whose aggregations actually change under
//! any of the usual normalizations, so cached entries that survive remain
//! bit-exact.

use mggcn_core::checkpoint::Checkpoint;
use mggcn_dense::{gemm, relu_inplace, Accumulate, Dense};
use mggcn_graph::sampling::khop_neighborhood;
use mggcn_graph::Graph;
use mggcn_sparse::{spmm, spmm_rows, Coo, Csr};
use std::sync::Arc;

/// A frozen GCN ready to answer queries.
#[derive(Clone, Debug)]
pub struct ServingModel {
    /// Raw adjacency, kept for delta application.
    adj: Csr,
    a_hat_t: Arc<Csr>,
    features: Arc<Dense>,
    weights: Arc<Vec<Dense>>,
}

impl ServingModel {
    /// Freeze `checkpoint`'s weights over `graph`. Fails when the weight
    /// chain does not compose with the feature width.
    pub fn from_checkpoint(checkpoint: &Checkpoint, graph: &Graph) -> Result<Self, String> {
        Self::from_parts(checkpoint.weights.clone(), graph.adj.clone(), graph.features.clone())
    }

    /// Freeze explicit weights over an adjacency + feature matrix.
    pub fn from_parts(weights: Vec<Dense>, adj: Csr, features: Dense) -> Result<Self, String> {
        if weights.is_empty() {
            return Err("serving model needs at least one layer".into());
        }
        if adj.rows() != adj.cols() {
            return Err(format!("adjacency must be square, got {}x{}", adj.rows(), adj.cols()));
        }
        if adj.rows() != features.rows() {
            return Err(format!("feature rows {} != vertex count {}", features.rows(), adj.rows()));
        }
        let mut d = features.cols();
        for (l, w) in weights.iter().enumerate() {
            if w.rows() != d {
                return Err(format!("layer {l} expects input width {}, got {d}", w.rows()));
            }
            d = w.cols();
        }
        let a_hat_t = adj.normalize_columns().transpose();
        Ok(Self {
            adj,
            a_hat_t: Arc::new(a_hat_t),
            features: Arc::new(features),
            weights: Arc::new(weights),
        })
    }

    pub fn layers(&self) -> usize {
        self.weights.len()
    }

    pub fn vertices(&self) -> usize {
        self.adj.rows()
    }

    /// Input feature width (`H⁰` columns) — the propagation-cache stride.
    pub fn feat_dim(&self) -> usize {
        self.features.cols()
    }

    /// Output width (class count).
    pub fn out_dim(&self) -> usize {
        self.weights.last().expect("nonempty").cols()
    }

    /// The raw (un-normalized) adjacency the propagation operator derives
    /// from — conformance tests rebuild a reference operator from it after
    /// [`apply_delta`](Self::apply_delta).
    pub fn adj(&self) -> &Csr {
        &self.adj
    }

    pub fn a_hat_t(&self) -> &Arc<Csr> {
        &self.a_hat_t
    }

    pub fn features(&self) -> &Arc<Dense> {
        &self.features
    }

    pub fn weights(&self) -> &Arc<Vec<Dense>> {
        &self.weights
    }

    /// Reference full-graph forward pass, `H⁽ˡ⁺¹⁾ = σ((Âᵀ·H⁽ˡ⁾)·Wˡ)` with
    /// no activation on the last layer. The batched/cached serving path
    /// must reproduce these rows bit-for-bit.
    pub fn forward_full(&self) -> Dense {
        let n = self.vertices();
        let mut h = (*self.features).clone();
        for (l, w) in self.weights.iter().enumerate() {
            let mut agg = Dense::zeros(n, h.cols());
            spmm(&self.a_hat_t, &h, &mut agg, Accumulate::Overwrite);
            let mut z = Dense::zeros(n, w.cols());
            gemm(&agg, w, &mut z, Accumulate::Overwrite);
            if l + 1 < self.weights.len() {
                relu_inplace(z.as_mut_slice());
            }
            h = z;
        }
        h
    }

    /// Layer-0 aggregation rows `(Âᵀ·H⁰)[v]` for the given vertices —
    /// what the propagation cache stores, computed from scratch.
    pub fn aggregation_rows(&self, vertices: &[u32]) -> Dense {
        let mut out = Dense::zeros(vertices.len(), self.feat_dim());
        spmm_rows(&self.a_hat_t, vertices, &self.features, &mut out, Accumulate::Overwrite);
        out
    }

    /// Apply a graph delta: add undirected edges (unit weight, both
    /// directions), re-normalize, and return the vertices whose cached
    /// aggregations must be invalidated — the endpoints plus their 1-hop
    /// out-neighborhood in the updated operator.
    pub fn apply_delta(&mut self, edges: &[(u32, u32)]) -> Vec<u32> {
        if edges.is_empty() {
            return Vec::new();
        }
        let n = self.adj.rows();
        let mut coo = Coo::with_capacity(n, n, self.adj.nnz() + edges.len() * 2);
        for r in 0..n {
            for (c, v) in self.adj.row(r) {
                coo.push(r as u32, c, v);
            }
        }
        let mut endpoints = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            assert!((u as usize) < n && (v as usize) < n, "delta endpoint out of range");
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
            endpoints.push(u);
            endpoints.push(v);
        }
        self.adj = coo.to_csr();
        self.a_hat_t = Arc::new(self.adj.normalize_columns().transpose());
        khop_neighborhood(&self.a_hat_t, &endpoints, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_graph::generators::chung_lu;

    fn tiny_model(n: usize, d0: usize, hidden: usize, classes: usize, seed: u64) -> ServingModel {
        let adj = chung_lu::generate(&vec![4u32; n], seed);
        let feats = Dense::from_fn(n, d0, |r, c| ((r * d0 + c) as f32).sin());
        let w0 = Dense::from_fn(d0, hidden, |r, c| ((r + 3 * c) as f32).cos() * 0.3);
        let w1 = Dense::from_fn(hidden, classes, |r, c| ((2 * r + c) as f32).sin() * 0.3);
        ServingModel::from_parts(vec![w0, w1], adj, feats).expect("valid model")
    }

    #[test]
    fn shape_validation_rejects_mismatches() {
        let adj = chung_lu::generate(&[3u32; 10], 1);
        let feats = Dense::zeros(10, 4);
        let bad_w = Dense::zeros(5, 2); // expects input width 4
        assert!(ServingModel::from_parts(vec![bad_w], adj.clone(), feats.clone()).is_err());
        let feats_short = Dense::zeros(9, 4);
        let w = Dense::zeros(4, 2);
        assert!(ServingModel::from_parts(vec![w], adj, feats_short).is_err());
    }

    #[test]
    fn forward_full_shapes_and_finiteness() {
        let m = tiny_model(30, 6, 5, 3, 2);
        let out = m.forward_full();
        assert_eq!(out.rows(), 30);
        assert_eq!(out.cols(), 3);
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn aggregation_rows_match_full_spmm() {
        let m = tiny_model(25, 5, 4, 2, 3);
        let mut full = Dense::zeros(25, 5);
        spmm(m.a_hat_t(), m.features(), &mut full, Accumulate::Overwrite);
        let some = m.aggregation_rows(&[0, 7, 24]);
        assert_eq!(some.row(0), full.row(0));
        assert_eq!(some.row(1), full.row(7));
        assert_eq!(some.row(2), full.row(24));
    }

    #[test]
    fn delta_adds_edges_and_reports_neighborhood() {
        let mut m = tiny_model(20, 4, 3, 2, 4);
        let before = m.adj.nnz();
        let invalidated = m.apply_delta(&[(0, 19)]);
        assert!(m.adj.nnz() >= before + 2);
        assert!(invalidated.contains(&0) && invalidated.contains(&19));
        // The invalidation set is the 1-hop out-neighborhood of {0, 19}.
        let expect = khop_neighborhood(m.a_hat_t(), &[0, 19], 1);
        let mut a = invalidated.clone();
        let mut b = expect.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn delta_changes_forward_output() {
        let mut m = tiny_model(20, 4, 3, 2, 5);
        let before = m.forward_full();
        m.apply_delta(&[(0, 10)]);
        let after = m.forward_full();
        assert_ne!(before, after, "adding an edge must change some output");
    }
}
