//! Online GCN inference on the simulated multi-GPU machine.
//!
//! MG-GCN's training side ends with a checkpoint; this crate is the
//! serving side: it freezes that checkpoint into a [`ServingModel`]
//! replicated on every simulated GPU and answers per-vertex inference
//! queries online, with the three mechanisms real GNN serving systems
//! lean on:
//!
//! * a **propagation cache** ([`PropagationCache`]) of per-vertex layer-1
//!   aggregation rows, LRU-bounded and explicitly invalidated on graph
//!   deltas — the CaPGNN idea applied to this stack;
//! * **request micro-batching** ([`batcher`]): concurrent requests within
//!   a time/size window collapse into one k-hop induced-subgraph
//!   extraction plus one batched row-sliced forward pass, amortizing the
//!   per-batch fixed costs that dominate small-query inference;
//! * **latency observability**: a seeded open-loop [`loadgen`], per-request
//!   latency quantiles (p50/p95/p99) through `gpusim`'s [`LatencyStats`],
//!   and a JSON [`ServeReport`] surfaced by `mggcn serve-bench`.
//!
//! The batched, cached serving path is *bit-identical* to the reference
//! full-graph forward pass ([`ServingModel::forward_full`]): induced
//! blocks preserve full-graph accumulation order, cached rows are exact
//! bit copies, and delta invalidation removes a superset of every row
//! whose aggregation changed.
//!
//! # Example
//!
//! ```
//! use mggcn_serve::{BatchPolicy, ServeConfig, Server, ServingModel};
//! use mggcn_dense::Dense;
//! use mggcn_gpusim::MachineSpec;
//! use mggcn_graph::generators::chung_lu;
//!
//! let adj = chung_lu::generate(&vec![4u32; 64], 1);
//! let feats = Dense::from_fn(64, 8, |r, c| ((r + c) as f32).sin());
//! let w0 = Dense::from_fn(8, 6, |r, c| ((r * 2 + c) as f32).cos() * 0.2);
//! let w1 = Dense::from_fn(6, 3, |r, c| ((r + 3 * c) as f32).sin() * 0.2);
//! let model = ServingModel::from_parts(vec![w0, w1], adj, feats).unwrap();
//!
//! let reference = model.forward_full();
//! let cfg = ServeConfig::new(MachineSpec::dgx_a100(), BatchPolicy::new(1e-3, 16), 1 << 20);
//! let mut server = Server::new(model, cfg);
//! let out = server.query(&[3, 17, 42]);
//! assert_eq!(out.row(0), reference.row(3)); // bit-identical
//! ```

#![forbid(unsafe_code)]

pub mod batcher;
pub mod cache;
pub mod loadgen;
pub mod model;
pub mod server;

pub use batcher::{form_batches, Batch, BatchPolicy, Request};
pub use cache::{CacheStats, PropagationCache};
pub use loadgen::{generate as generate_load, summarize, LoadGenConfig, TraceSummary};
pub use model::ServingModel;
pub use server::{
    validate_report_json, validate_serve_bench, BatchCtx, ServeConfig, ServeReport, Server,
};
