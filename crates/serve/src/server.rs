//! The serving engine: batches → tagged op schedules on the simulated
//! machine → bit-exact outputs + latency accounting.
//!
//! Each batch becomes one [`Schedule`] on a replica GPU's stream 0:
//!
//! * `serve-extract` — k-hop induced-subgraph extraction (fixed cost plus
//!   a per-edge term), paid **once per batch** — the quantity
//!   micro-batching amortizes;
//! * `serve-gather` — feature rows + cached aggregation rows into device
//!   buffers;
//! * `serve-spmm` — row-sliced SpMM per layer; at layer 0 only the
//!   **cache-miss** rows are computed, so a warm propagation cache
//!   shrinks the dominant kernel;
//! * `serve-gemm` / `serve-relu` — the dense tail of each layer;
//! * `serve-output` — gather per-request output rows.
//!
//! Op bodies execute the real numerics against a [`BatchCtx`], so the
//! same schedule that is timed also produces the answers — and those
//! answers are bit-identical to [`ServingModel::forward_full`] rows (the
//! induced block preserves full-graph accumulation order; see
//! `graph::sampling::khop_induced`).
//!
//! Replica scheduling is earliest-free: batches are executed in arrival
//! order on the least-loaded GPU, and a request's latency is its batch's
//! completion time minus its own arrival.

use crate::batcher::{form_batches, Batch, BatchPolicy, Request};
use crate::cache::{CacheStats, PropagationCache};
use crate::model::ServingModel;
use mggcn_dense::{gemm, relu_inplace, Accumulate, Dense};
use mggcn_exec::Backend;
use mggcn_gpusim::engine::OpDesc;
use mggcn_gpusim::{
    BufId, Category, CostModel, Effects, LatencyStats, MachineSpec, Schedule, Work,
};
use mggcn_graph::sampling::{khop_induced, InducedBlock};
use mggcn_sched::{Action, Component, DispatchSite, EventQueue, Injector, Policy, Scheduler};
use mggcn_sparse::spmm_rows;
use mggcn_trace::json::{self, JsonWriter};
use std::sync::{Arc, Mutex};

/// Serving configuration: hardware, cost model, batching and cache knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    pub machine: MachineSpec,
    pub cost: CostModel,
    pub policy: BatchPolicy,
    /// Propagation-cache budget in bytes (0 disables caching).
    pub cache_bytes: usize,
    /// Fixed host-side cost of one k-hop extraction, seconds.
    pub extract_fixed: f64,
    /// Per-induced-edge extraction cost, seconds.
    pub extract_per_edge: f64,
    /// How batch schedules execute: simulated (bodies on the calling
    /// thread) or really on the `mggcn-exec` runtime. Outputs and latency
    /// accounting are bit-identical; the threaded path additionally
    /// exercises real synchronization.
    pub backend: Backend,
}

impl ServeConfig {
    pub fn new(machine: MachineSpec, policy: BatchPolicy, cache_bytes: usize) -> Self {
        Self {
            machine,
            cost: CostModel::default(),
            policy,
            cache_bytes,
            extract_fixed: 40.0e-6,
            extract_per_edge: 1.0e-9,
            backend: Backend::Simulated,
        }
    }
}

/// Per-batch execution context the op bodies compute over. Public so a
/// batch schedule ([`Server::batch_schedule`]) is a nameable type for
/// static analysis; the fields stay internal to the serving engine.
pub struct BatchCtx {
    block: InducedBlock,
    features: Arc<Dense>,
    weights: Arc<Vec<Dense>>,
    /// Local row ids each layer must produce (`locals_within(L-1-l)`).
    rows_per_layer: Vec<Vec<u32>>,
    /// Cache hits for layer 0: (local id, cached aggregation row bits).
    hits: Vec<(u32, Vec<f32>)>,
    /// Layer-0 rows that must be recomputed (local ids, ascending).
    misses: Vec<u32>,
    /// Current layer input, full block height (uncomputed rows stay 0 and
    /// are never referenced by valid output rows).
    h: Dense,
    /// Current layer aggregation, full block height.
    agg: Dense,
    /// Computed miss rows, saved for post-run cache insertion.
    miss_agg: Dense,
    /// Per-request local seed ids, request order.
    seeds_local: Vec<u32>,
    /// Per-request output rows.
    out: Dense,
}

/// Outcome of serving one trace: throughput, latency quantiles, compute
/// and cache behaviour — the JSON payload of `mggcn serve-bench`.
#[derive(Clone, Debug)]
pub struct ServeReport {
    pub label: String,
    pub requests: usize,
    pub batches: usize,
    pub mean_batch: f64,
    /// Last batch completion minus first arrival, seconds.
    pub duration: f64,
    pub throughput_rps: f64,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
    /// Total simulated GPU-busy seconds across all batches.
    pub compute_seconds: f64,
    pub compute_per_request_us: f64,
    pub cache: CacheStats,
    pub cache_hit_rate: f64,
}

impl ServeReport {
    /// The all-zero report an empty trace produces.
    pub fn zero(label: &str) -> Self {
        Self {
            label: label.to_string(),
            requests: 0,
            batches: 0,
            mean_batch: 0.0,
            duration: 0.0,
            throughput_rps: 0.0,
            mean_ms: 0.0,
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            max_ms: 0.0,
            compute_seconds: 0.0,
            compute_per_request_us: 0.0,
            cache: CacheStats::default(),
            cache_hit_rate: 0.0,
        }
    }

    pub fn to_json(&self) -> String {
        let latency = JsonWriter::new()
            .f64("mean", self.mean_ms, 4)
            .f64("p50", self.p50_ms, 4)
            .f64("p95", self.p95_ms, 4)
            .f64("p99", self.p99_ms, 4)
            .f64("max", self.max_ms, 4)
            .finish();
        let cache = JsonWriter::new()
            .u64("hits", self.cache.hits)
            .u64("misses", self.cache.misses)
            .u64("evictions", self.cache.evictions)
            .u64("invalidations", self.cache.invalidations)
            .f64("hit_rate", self.cache_hit_rate, 4)
            .finish();
        JsonWriter::new()
            .str("label", &self.label)
            .usize("requests", self.requests)
            .usize("batches", self.batches)
            .f64("mean_batch", self.mean_batch, 3)
            .f64("duration_s", self.duration, 6)
            .f64("throughput_rps", self.throughput_rps, 1)
            .raw("latency_ms", &latency)
            .f64("compute_s", self.compute_seconds, 6)
            .f64("compute_per_request_us", self.compute_per_request_us, 3)
            .raw("cache", &cache)
            .finish()
    }

    pub fn render(&self) -> String {
        format!(
            "{:<24} {:>6} req {:>5} batches (mean {:>5.1}) | {:>9.0} rps | \
             p50 {:>7.3}ms p95 {:>7.3}ms p99 {:>7.3}ms | {:>7.1}us compute/req | hit rate {:>5.1}%",
            self.label,
            self.requests,
            self.batches,
            self.mean_batch,
            self.throughput_rps,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.compute_per_request_us,
            self.cache_hit_rate * 100.0,
        )
    }
}

/// An online inference server over a frozen [`ServingModel`].
pub struct Server {
    model: ServingModel,
    cache: PropagationCache,
    cfg: ServeConfig,
    /// Observation-only tracer (batch timelines, cache hit/miss counters,
    /// latency histograms); `None` records nothing.
    tracer: Option<Arc<mggcn_trace::Tracer>>,
}

impl Server {
    pub fn new(model: ServingModel, cfg: ServeConfig) -> Self {
        let cache = PropagationCache::new(cfg.cache_bytes, model.feat_dim());
        Self { model, cache, cfg, tracer: None }
    }

    /// Attach a tracer; every subsequent batch ingests its timeline and
    /// cache/latency metrics. Ingestion happens after each schedule has
    /// run, so served outputs are unaffected.
    pub fn set_tracer(&mut self, tracer: Arc<mggcn_trace::Tracer>) {
        self.tracer = Some(tracer);
    }

    pub fn model(&self) -> &ServingModel {
        &self.model
    }

    pub fn cache(&self) -> &PropagationCache {
        &self.cache
    }

    /// Model a cache-node loss: evict every resident row. Counters
    /// survive (the eviction shows up as invalidations), so report
    /// deltas computed across a fault stay monotone.
    pub fn drop_cache(&mut self) {
        self.cache.clear();
    }

    /// Answer one batch of vertex queries immediately (no batching delay,
    /// replica 0). Returns one output row per queried vertex, bit-identical
    /// to the corresponding [`ServingModel::forward_full`] rows.
    pub fn query(&mut self, vertices: &[u32]) -> Dense {
        self.execute_batch(vertices, 0).0
    }

    /// Execute one batch of vertex queries on a specific replica GPU,
    /// returning (per-request output rows, simulated service seconds) —
    /// the building block a multi-shard front end schedules around.
    /// Outputs are bit-identical to [`ServingModel::forward_full`] rows.
    pub fn run_batch(&mut self, vertices: &[u32], gpu: usize) -> (Dense, f64) {
        self.execute_batch(vertices, gpu)
    }

    /// Answer one vertex **without touching the GPU queue**: the overload
    /// fallback. Returns (output row, whether the layer-0 aggregation came
    /// from the propagation cache).
    ///
    /// The degraded forward pass uses the cached aggregation row when
    /// resident (exact layer-0 aggregation — the expensive SpMM the cache
    /// exists to skip) and the vertex's raw feature row otherwise, then
    /// applies the dense tail with **identity propagation** for layers ≥ 1
    /// (no neighbor rows are available without the k-hop extraction this
    /// path exists to avoid). The answer is approximate and must be tagged
    /// degraded by the caller; it is deterministic, finite, and costs
    /// O(Σ dᵢ·dᵢ₊₁) host work with no queueing.
    pub fn degraded_answer(&mut self, vertex: u32) -> (Vec<f32>, bool) {
        assert!((vertex as usize) < self.model.vertices(), "vertex out of range");
        let (mut h, cached) = match self.cache.get(vertex) {
            Some(row) => (row.to_vec(), true),
            None => (self.model.features().row(vertex as usize).to_vec(), false),
        };
        let weights = self.model.weights().clone();
        for (l, w) in weights.iter().enumerate() {
            let mut z = vec![0.0f32; w.cols()];
            for (i, &x) in h.iter().enumerate() {
                let wrow = w.row(i);
                for (j, zj) in z.iter_mut().enumerate() {
                    *zj += x * wrow[j];
                }
            }
            if l + 1 < weights.len() {
                relu_inplace(&mut z);
            }
            h = z;
        }
        (h, cached)
    }

    /// Apply a graph delta and invalidate the affected cache rows.
    /// Returns (vertices whose aggregation changed, rows actually evicted).
    ///
    /// Terminology: these are cache-*invalidated* vertices — rows whose
    /// cached propagation no longer matches the mutated graph and must be
    /// recomputed on next touch. This is unrelated to training-time
    /// bounded staleness (`--staleness`, DESIGN §15), where reads of
    /// k-epoch-old snapshots are *declared, intentional* state.
    pub fn apply_delta(&mut self, edges: &[(u32, u32)]) -> (Vec<u32>, usize) {
        let invalidated = self.model.apply_delta(edges);
        let evicted = self.cache.invalidate_many(&invalidated);
        (invalidated, evicted)
    }

    /// Serve a full arrival-ordered trace under the configured batching
    /// policy and machine, returning the aggregate report. The propagation
    /// cache persists across calls (serve the same trace twice to measure
    /// warm-cache behaviour); replica clocks reset per call.
    pub fn serve(&mut self, label: &str, requests: &[Request]) -> ServeReport {
        self.serve_chaos(label, requests, &Injector::none())
    }

    /// [`Server::serve`] with fault/preemption injection. Batch dispatch is
    /// driven by the unified `mggcn-sched` core: the batcher becomes a
    /// [`Component`] whose events are batch-ready instants, and every
    /// dispatch consults `inj` (an [`Action::Pause`] defers the batch —
    /// preemption of the batching front end; every deferred request's extra
    /// queueing shows up in its latency). With the no-op injector the
    /// report is bit-identical to the legacy inline loop: batches pop in
    /// formation order (ready times are nondecreasing and ties preserve
    /// insertion order) and all accounting runs in the same sequence.
    pub fn serve_chaos(
        &mut self,
        label: &str,
        requests: &[Request],
        inj: &Injector,
    ) -> ServeReport {
        if requests.is_empty() {
            // An empty trace is a valid (if dull) workload — zero-request
            // summary, not a panic.
            return ServeReport::zero(label);
        }
        let stats_before = *self.cache.stats();
        let batches = form_batches(requests, &self.cfg.policy);
        let n_batches = batches.len();
        let gpu_count = self.cfg.machine.gpu_count();
        let (mut latency, compute_seconds, last_done) = {
            let mut queue = EventQueue::new();
            for b in batches {
                queue.push(b.ready_at, b);
            }
            let mut sweep = BatchSweep {
                server: self,
                shard: 0,
                queue,
                seq: 0,
                free_at: vec![0.0f64; gpu_count],
                latency: LatencyStats::new(),
                compute_seconds: 0.0,
                last_done: 0.0,
            };
            Scheduler::new(Policy::DiscreteEvent)
                .run(&mut [&mut sweep], inj)
                .expect("batch sweep cannot stall: every batch has a ready time");
            (sweep.latency, sweep.compute_seconds, sweep.last_done)
        };
        if let Some(tracer) = &self.tracer {
            tracer.counter_add("serve.requests", requests.len() as u64);
        }
        let first_arrival = requests[0].arrival;
        let duration = (last_done - first_arrival).max(f64::MIN_POSITIVE);
        let s = self.cache.stats();
        let cache = CacheStats {
            hits: s.hits - stats_before.hits,
            misses: s.misses - stats_before.misses,
            insertions: s.insertions - stats_before.insertions,
            evictions: s.evictions - stats_before.evictions,
            invalidations: s.invalidations - stats_before.invalidations,
        };
        ServeReport {
            label: label.to_string(),
            requests: requests.len(),
            batches: n_batches,
            mean_batch: requests.len() as f64 / n_batches as f64,
            duration,
            throughput_rps: requests.len() as f64 / duration,
            mean_ms: latency.mean() * 1e3,
            p50_ms: latency.p50() * 1e3,
            p95_ms: latency.p95() * 1e3,
            p99_ms: latency.p99() * 1e3,
            max_ms: latency.max() * 1e3,
            compute_seconds,
            compute_per_request_us: compute_seconds / requests.len() as f64 * 1e6,
            cache,
            cache_hit_rate: cache.hit_rate(),
        }
    }

    /// Build (but do not run) the tagged op schedule one batch of vertex
    /// queries would execute on `gpu` — the input `mggcn analyze` verifies
    /// for the serving path. Probes the propagation cache exactly as
    /// execution would (the op costs depend on the miss count), so cache
    /// hit/miss statistics advance; nothing is inserted because no body
    /// runs.
    pub fn batch_schedule(&mut self, vertices: &[u32], gpu: usize) -> Schedule<Mutex<BatchCtx>> {
        self.build_batch(vertices, gpu).0
    }

    /// Build one batch's schedule plus the context its bodies compute
    /// over. Returns (schedule, context, cache hits, cache misses).
    fn build_batch(
        &mut self,
        vertices: &[u32],
        gpu: usize,
    ) -> (Schedule<Mutex<BatchCtx>>, Mutex<BatchCtx>, u64, u64) {
        assert!(!vertices.is_empty(), "empty batch");
        let layers = self.model.layers();
        let d0 = self.model.feat_dim();
        let block = khop_induced(self.model.a_hat_t(), vertices, layers);
        let n_local = block.vertices.len();
        let rows_per_layer: Vec<Vec<u32>> =
            (0..layers).map(|l| block.locals_within((layers - 1 - l) as u32)).collect();

        // Probe the cache for layer-0 aggregation rows (host-side: the
        // schedule's costs depend on the miss count).
        let mut hits: Vec<(u32, Vec<f32>)> = Vec::new();
        let mut misses: Vec<u32> = Vec::new();
        for &l in &rows_per_layer[0] {
            let g = block.vertices[l as usize];
            match self.cache.get(g) {
                Some(row) => hits.push((l, row.to_vec())),
                None => misses.push(l),
            }
        }
        let miss_nnz: usize = misses.iter().map(|&l| block.adj.row_nnz(l as usize)).sum();

        let seeds_local: Vec<u32> = vertices
            .iter()
            .map(|&v| block.local_of(v).expect("seed is in its own block"))
            .collect();

        let spec = self.cfg.machine.gpus[gpu];
        let cost = self.cfg.cost;
        let mut sched: Schedule<Mutex<BatchCtx>> = Schedule::new(self.cfg.machine.clone());
        let stream = 0;

        // Subgraph extraction: per-batch fixed cost (the batching lever).
        sched.launch(
            gpu,
            stream,
            Work::Fixed {
                seconds: self.cfg.extract_fixed
                    + self.cfg.extract_per_edge * block.adj.nnz() as f64,
            },
            OpDesc::new(Category::Other, "serve-extract"),
            &[],
            None,
        );

        // Gather feature rows + cached aggregation rows.
        let gather_elems = (n_local * d0 + hits.len() * d0) as u64;
        sched.launch_fx(
            gpu,
            stream,
            cost.elementwise(gather_elems, 1.0),
            OpDesc::new(Category::Other, "serve-gather"),
            &[],
            Effects::none().writes([BufId::new(gpu, "SRV_H"), BufId::new(gpu, "SRV_AGG")]),
            Some(Box::new(move |ctx: &Mutex<BatchCtx>| {
                let ctx = &mut *lock_ctx(ctx);
                let n = ctx.block.vertices.len();
                let d = ctx.features.cols();
                let mut h = Dense::zeros(n, d);
                for (l, &g) in ctx.block.vertices.iter().enumerate() {
                    h.row_mut(l).copy_from_slice(ctx.features.row(g as usize));
                }
                let mut agg = Dense::zeros(n, d);
                for (l, row) in &ctx.hits {
                    agg.row_mut(*l as usize).copy_from_slice(row);
                }
                ctx.h = h;
                ctx.agg = agg;
            })),
        );

        for l in 0..layers {
            let w = &self.model.weights()[l];
            let (d_in, d_out) = (w.rows(), w.cols());
            let n_rows = rows_per_layer[l].len();
            if l == 0 {
                // Layer 0: row-sliced SpMM over cache misses only.
                if !misses.is_empty() {
                    sched.launch_fx(
                        gpu,
                        stream,
                        cost.spmm(
                            &spec,
                            misses.len() as u64,
                            n_local as u64,
                            miss_nnz as u64,
                            d0 as u64,
                            false,
                        ),
                        OpDesc::new(Category::SpMM, "serve-spmm"),
                        &[],
                        // Only the miss rows of the aggregation buffer are
                        // overwritten — the cache hits survive (RMW).
                        Effects::none()
                            .reads([BufId::new(gpu, "SRV_H")])
                            .rw(BufId::new(gpu, "SRV_AGG"))
                            .writes([BufId::new(gpu, "SRV_MISS")]),
                        Some(Box::new(move |ctx: &Mutex<BatchCtx>| {
                            let BatchCtx { block, misses, h, agg, miss_agg, .. } =
                                &mut *lock_ctx(ctx);
                            let mut out = Dense::zeros(misses.len(), h.cols());
                            spmm_rows(&block.adj, misses, h, &mut out, Accumulate::Overwrite);
                            for (i, &lm) in misses.iter().enumerate() {
                                agg.row_mut(lm as usize).copy_from_slice(out.row(i));
                            }
                            *miss_agg = out;
                        })),
                    );
                }
            } else {
                let nnz: usize =
                    rows_per_layer[l].iter().map(|&r| block.adj.row_nnz(r as usize)).sum();
                sched.launch_fx(
                    gpu,
                    stream,
                    cost.spmm(&spec, n_rows as u64, n_local as u64, nnz as u64, d_in as u64, false),
                    OpDesc::new(Category::SpMM, "serve-spmm"),
                    &[],
                    Effects::none()
                        .reads([BufId::new(gpu, "SRV_H")])
                        .writes([BufId::new(gpu, "SRV_AGG")]),
                    Some(Box::new(move |ctx: &Mutex<BatchCtx>| {
                        let BatchCtx { block, rows_per_layer, h, agg, .. } = &mut *lock_ctx(ctx);
                        let rows = &rows_per_layer[l];
                        let mut out = Dense::zeros(rows.len(), h.cols());
                        spmm_rows(&block.adj, rows, h, &mut out, Accumulate::Overwrite);
                        let mut full = Dense::zeros(block.vertices.len(), h.cols());
                        for (i, &r) in rows.iter().enumerate() {
                            full.row_mut(r as usize).copy_from_slice(out.row(i));
                        }
                        *agg = full;
                    })),
                );
            }

            sched.launch_fx(
                gpu,
                stream,
                cost.gemm(&spec, n_rows as u64, d_in as u64, d_out as u64),
                OpDesc::new(Category::GeMM, "serve-gemm"),
                &[],
                Effects::none()
                    .reads([BufId::new(gpu, "SRV_AGG")])
                    .writes([BufId::new(gpu, "SRV_H")]),
                Some(Box::new(move |ctx: &Mutex<BatchCtx>| {
                    let BatchCtx { block, weights, rows_per_layer, h, agg, .. } =
                        &mut *lock_ctx(ctx);
                    let w = &weights[l];
                    let rows = &rows_per_layer[l];
                    let mut compact_in = Dense::zeros(rows.len(), w.rows());
                    for (i, &r) in rows.iter().enumerate() {
                        compact_in.row_mut(i).copy_from_slice(agg.row(r as usize));
                    }
                    let mut compact_z = Dense::zeros(rows.len(), w.cols());
                    gemm(&compact_in, w, &mut compact_z, Accumulate::Overwrite);
                    let mut full = Dense::zeros(block.vertices.len(), w.cols());
                    for (i, &r) in rows.iter().enumerate() {
                        full.row_mut(r as usize).copy_from_slice(compact_z.row(i));
                    }
                    *h = full;
                })),
            );

            if l + 1 < layers {
                sched.launch_fx(
                    gpu,
                    stream,
                    cost.elementwise((n_rows * d_out) as u64, 2.0),
                    OpDesc::new(Category::Activation, "serve-relu"),
                    &[],
                    Effects::none().rw(BufId::new(gpu, "SRV_H")),
                    Some(Box::new(move |ctx: &Mutex<BatchCtx>| {
                        let BatchCtx { rows_per_layer, h, .. } = &mut *lock_ctx(ctx);
                        for &r in &rows_per_layer[l] {
                            relu_inplace(h.row_mut(r as usize));
                        }
                    })),
                );
            }
        }

        let classes = self.model.out_dim();
        sched.launch_fx(
            gpu,
            stream,
            cost.elementwise((vertices.len() * classes) as u64, 2.0),
            OpDesc::new(Category::Other, "serve-output"),
            &[],
            Effects::none().reads([BufId::new(gpu, "SRV_H")]).writes([BufId::new(gpu, "SRV_OUT")]),
            Some(Box::new(move |ctx: &Mutex<BatchCtx>| {
                let ctx = &mut *lock_ctx(ctx);
                let mut out = Dense::zeros(ctx.seeds_local.len(), ctx.h.cols());
                for (i, &s) in ctx.seeds_local.iter().enumerate() {
                    out.row_mut(i).copy_from_slice(ctx.h.row(s as usize));
                }
                ctx.out = out;
            })),
        );

        let (hit_count, miss_count) = (hits.len() as u64, misses.len() as u64);
        let ctx = Mutex::new(BatchCtx {
            block,
            features: self.model.features().clone(),
            weights: self.model.weights().clone(),
            rows_per_layer,
            hits,
            misses,
            h: Dense::zeros(0, 0),
            agg: Dense::zeros(0, 0),
            miss_agg: Dense::zeros(0, 0),
            seeds_local,
            out: Dense::zeros(0, 0),
        });
        (sched, ctx, hit_count, miss_count)
    }

    /// Execute one batch on `gpu`: build the tagged op schedule, run it
    /// (bodies compute the numerics), feed newly computed aggregation rows
    /// back into the cache. Returns (per-request outputs, service seconds).
    fn execute_batch(&mut self, vertices: &[u32], gpu: usize) -> (Dense, f64) {
        let (sched, ctx, hit_count, miss_count) = self.build_batch(vertices, gpu);
        // Both backends report the *simulated* machine's service time, so
        // latency accounting is deterministic; the threaded path executes
        // the same bodies on the worker runtime (single-GPU schedule → one
        // worker, real dependency enforcement).
        let makespan = match self.cfg.backend {
            Backend::Simulated => {
                let r = sched.run(&ctx);
                if let Some(tracer) = &self.tracer {
                    tracer.ingest_sim_timeline(&r.timeline, r.makespan);
                }
                r.makespan
            }
            Backend::Threaded => {
                let r = mggcn_exec::execute(sched, &ctx).expect("serve bodies do not panic");
                if let Some(tracer) = &self.tracer {
                    tracer.ingest_wall_spans(&r.spans, r.wall_seconds);
                    tracer.ingest_sim_timeline(&r.sim.timeline, r.sim.makespan);
                }
                r.sim.makespan
            }
        };
        if let Some(tracer) = &self.tracer {
            tracer.counter_add("serve.batches", 1);
            tracer.counter_add("serve.cache.hits", hit_count);
            tracer.counter_add("serve.cache.misses", miss_count);
            tracer.latency_record("serve.batch_service_seconds", makespan);
        }
        let ctx = ctx.into_inner().unwrap_or_else(|e| e.into_inner());

        // Feed freshly computed aggregation rows back into the cache.
        for (i, &lm) in ctx.misses.iter().enumerate() {
            let g = ctx.block.vertices[lm as usize];
            self.cache.insert(g, ctx.miss_agg.row(i));
        }
        (ctx.out, makespan)
    }
}

/// The serving batcher as a scheduler [`Component`]: pending batches sit in
/// an [`EventQueue`] keyed by ready time, and each dispatch services every
/// batch that is ready at the current instant — replica selection
/// (earliest-free GPU), execution, and latency accounting run in exactly the
/// legacy loop's order. The service itself is virtual bookkeeping
/// (`free_at`), so the component retires nothing in `advance`; its events
/// are purely batch-ready instants.
struct BatchSweep<'s> {
    server: &'s mut Server,
    /// Identity of this sweep at [`DispatchSite::BatchDispatch`] sites
    /// (shard id in a cluster, 0 standalone).
    shard: usize,
    queue: EventQueue<Batch>,
    /// Dispatch counter: the `seq` coordinate fault plans match on.
    seq: usize,
    free_at: Vec<f64>,
    latency: LatencyStats,
    compute_seconds: f64,
    last_done: f64,
}

impl Component for BatchSweep<'_> {
    fn label(&self) -> String {
        format!("serve batch sweep (shard {})", self.shard)
    }

    fn dispatch(&mut self, now: f64, inj: &Injector) -> bool {
        let mut any = false;
        while self.queue.peek_time().is_some_and(|t| t <= now) {
            let (ready_at, b) = self.queue.pop().expect("peeked");
            let seq = self.seq;
            self.seq += 1;
            if !inj.is_noop() {
                match inj.at(DispatchSite::BatchDispatch { shard: self.shard, seq }) {
                    Action::Pause { seconds } => {
                        // The batching front end is preempted: defer the
                        // batch. It re-dispatches (under a fresh seq) at
                        // now + pause; the extra queueing lands in every
                        // member request's latency.
                        self.queue.push(now + seconds, b);
                        any = true;
                        continue;
                    }
                    // A single-node server has no failover target — kills
                    // model node loss and are meaningful at cluster level
                    // (shard loss ⇒ degraded answers). Ignored here.
                    Action::Kill | Action::None => {}
                }
            }
            let gpu = (0..self.free_at.len())
                .min_by(|&a, &b| self.free_at[a].total_cmp(&self.free_at[b]))
                .expect("machine has GPUs");
            let (_, service) = self.server.execute_batch(&b.vertices(), gpu);
            // A deferred batch starts no earlier than its deferred dispatch.
            let start = ready_at.max(b.ready_at).max(self.free_at[gpu]);
            let done = start + service;
            self.free_at[gpu] = done;
            self.last_done = self.last_done.max(done);
            self.compute_seconds += service;
            for r in &b.requests {
                let seconds = done - r.arrival;
                self.latency.record(seconds);
                if let Some(tracer) = &self.server.tracer {
                    tracer.latency_record("serve.latency_seconds", seconds);
                }
            }
            any = true;
        }
        any
    }

    fn next_event(&mut self, _now: f64) -> Option<f64> {
        self.queue.peek_time()
    }

    fn advance(&mut self, _next: f64, _inj: &Injector) -> bool {
        false
    }

    fn is_done(&self) -> bool {
        self.queue.is_empty()
    }

    fn stuck(&self) -> Vec<String> {
        self.queue
            .peek_time()
            .map(|t| vec![format!("shard {} batch pending at t={t}", self.shard)])
            .unwrap_or_default()
    }
}

/// Lock a batch context, recovering from poisoning (a panicked body has
/// already been reported by the executor).
fn lock_ctx(ctx: &Mutex<BatchCtx>) -> std::sync::MutexGuard<'_, BatchCtx> {
    ctx.lock().unwrap_or_else(|e| e.into_inner())
}

/// Schema-validate one serialized [`ServeReport`] object.
pub fn validate_report_json(v: &json::Value) -> Result<(), String> {
    v.get("label").and_then(json::Value::as_str).ok_or("report missing string `label`")?;
    for key in ["requests", "batches", "mean_batch", "duration_s", "throughput_rps", "compute_s"] {
        v.get(key).and_then(json::Value::as_num).ok_or(format!("report missing number `{key}`"))?;
    }
    let latency = v.get("latency_ms").ok_or("report missing `latency_ms`")?;
    for key in ["mean", "p50", "p95", "p99", "max"] {
        latency
            .get(key)
            .and_then(json::Value::as_num)
            .ok_or(format!("latency_ms missing number `{key}`"))?;
    }
    let cache = v.get("cache").ok_or("report missing `cache`")?;
    for key in ["hits", "misses", "evictions", "invalidations", "hit_rate"] {
        cache.get(key).and_then(json::Value::as_num).ok_or(format!("cache missing `{key}`"))?;
    }
    Ok(())
}

/// Schema-validate the full `mggcn serve-bench` JSON document: top-level
/// knobs, a non-empty `configs` array of well-formed reports, and the
/// derived comparison metrics. This is the CI contract for the artifact.
pub fn validate_serve_bench(text: &str) -> Result<(), String> {
    let v = json::parse(text)?;
    for key in ["qps", "batch_window_s", "max_batch", "cache_mb", "gpus", "batching_speedup"] {
        v.get(key).and_then(json::Value::as_num).ok_or(format!("missing number `{key}`"))?;
    }
    v.get("warm_compute_reduction")
        .and_then(json::Value::as_num)
        .ok_or("missing number `warm_compute_reduction`")?;
    let configs =
        v.get("configs").and_then(json::Value::as_arr).ok_or("missing array `configs`")?;
    if configs.is_empty() {
        return Err("`configs` must not be empty".into());
    }
    for (i, c) in configs.iter().enumerate() {
        validate_report_json(c).map_err(|e| format!("configs[{i}]: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::BatchPolicy;
    use mggcn_gpusim::MachineSpec;
    use mggcn_graph::generators::chung_lu;

    fn tiny_server(cache_bytes: usize) -> (Server, Dense) {
        let n = 48;
        let adj = chung_lu::generate(&vec![4u32; n], 5);
        let feats = Dense::from_fn(n, 6, |r, c| ((r + 2 * c) as f32).sin());
        let w0 = Dense::from_fn(6, 5, |r, c| ((r * 2 + c) as f32).cos() * 0.3);
        let w1 = Dense::from_fn(5, 3, |r, c| ((r + 3 * c) as f32).sin() * 0.3);
        let model = ServingModel::from_parts(vec![w0, w1], adj, feats).expect("valid model");
        let reference = model.forward_full();
        let cfg = ServeConfig::new(MachineSpec::dgx_a100(), BatchPolicy::new(1e-3, 8), cache_bytes);
        (Server::new(model, cfg), reference)
    }

    #[test]
    fn empty_trace_yields_zero_report_not_panic() {
        let (mut server, _) = tiny_server(1 << 16);
        let r = server.serve("empty", &[]);
        assert_eq!(r.requests, 0);
        assert_eq!(r.batches, 0);
        assert_eq!(r.p99_ms, 0.0);
        assert_eq!(r.throughput_rps, 0.0);
        // And its JSON is still schema-valid.
        validate_report_json(&json::parse(&r.to_json()).unwrap()).unwrap();
    }

    #[test]
    fn report_json_emitted_by_shared_writer_is_schema_valid() {
        let (mut server, _) = tiny_server(1 << 16);
        let reqs: Vec<Request> = (0..20)
            .map(|i| Request { id: i, vertex: (i % 13) as u32, arrival: i as f64 * 1e-4 })
            .collect();
        let r = server.serve("smoke", &reqs);
        let v = json::parse(&r.to_json()).expect("valid JSON");
        validate_report_json(&v).expect("schema-valid report");
        assert_eq!(v.get("requests").unwrap().as_num(), Some(20.0));
    }

    #[test]
    fn run_batch_matches_the_full_forward_oracle() {
        let (mut server, reference) = tiny_server(1 << 16);
        let batch = vec![1u32, 7, 30, 7];
        let (out, service) = server.run_batch(&batch, 0);
        assert!(service > 0.0);
        for (i, &v) in batch.iter().enumerate() {
            assert_eq!(out.row(i), reference.row(v as usize), "row {v} differs");
        }
    }

    #[test]
    fn degraded_answer_is_deterministic_finite_and_tagged() {
        let (mut server, _) = tiny_server(1 << 16);
        // Cold: no cached aggregation → uncached tag.
        let (cold, cached) = server.degraded_answer(3);
        assert!(!cached);
        assert!(cold.iter().all(|v| v.is_finite()));
        // Warm the cache via the exact path, then the degraded answer uses
        // the exact layer-0 aggregation row.
        server.query(&[3]);
        let (warm, cached) = server.degraded_answer(3);
        assert!(cached, "row must be resident after an exact query");
        assert!(warm.iter().all(|v| v.is_finite()));
        let (warm2, _) = server.degraded_answer(3);
        assert_eq!(warm, warm2, "degraded path must be deterministic");
        assert_eq!(warm.len(), server.model().out_dim());
    }

    #[test]
    fn validate_serve_bench_accepts_good_and_rejects_bad() {
        let (mut server, _) = tiny_server(0);
        let reqs: Vec<Request> =
            (0..8).map(|i| Request { id: i, vertex: i as u32, arrival: i as f64 * 1e-4 }).collect();
        let report = server.serve("cfg", &reqs).to_json();
        let doc = JsonWriter::new()
            .f64("qps", 1000.0, 1)
            .f64("batch_window_s", 1e-3, 6)
            .u64("max_batch", 8)
            .u64("cache_mb", 0)
            .u64("gpus", 1)
            .arr("configs", &[report])
            .f64("batching_speedup", 1.0, 3)
            .f64("warm_compute_reduction", 0.0, 4)
            .finish();
        validate_serve_bench(&doc).expect("well-formed bench document");
        assert!(validate_serve_bench("{}").is_err());
        assert!(validate_serve_bench("{\"qps\":1}").is_err());
    }
}
