//! A minimal f64 row-major matrix for the oracle.
//!
//! The production stack computes in f32 (the paper trains in single
//! precision); the oracle deliberately does everything in f64 with naive
//! triple loops and *no* buffer reuse, so its rounding error is ~1e-16
//! per op and any disagreement beyond f32 noise implicates the production
//! path, not the reference.

use mggcn_dense::Dense;

/// Row-major f64 matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct M64 {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl M64 {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Widen an f32 matrix (exact: every f32 is representable in f64).
    pub fn from_f32(m: &Dense) -> Self {
        Self {
            rows: m.rows(),
            cols: m.cols(),
            data: m.as_slice().iter().map(|&x| x as f64).collect(),
        }
    }

    /// Narrow to f32 (rounds).
    pub fn to_f32(&self) -> Dense {
        Dense::from_vec(self.rows, self.cols, self.data.iter().map(|&x| x as f32).collect())
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// `C = A · B`, naive.
    pub fn matmul(&self, b: &M64) -> M64 {
        assert_eq!(self.cols, b.rows, "matmul inner dimension mismatch");
        let mut c = M64::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..b.cols {
                    c.data[i * b.cols + j] += aik * b.get(k, j);
                }
            }
        }
        c
    }

    /// `C = Aᵀ · B`, naive.
    pub fn t_matmul(&self, b: &M64) -> M64 {
        assert_eq!(self.rows, b.rows, "t_matmul reduction dimension mismatch");
        let mut c = M64::zeros(self.cols, b.cols);
        for k in 0..self.rows {
            for i in 0..self.cols {
                let aki = self.get(k, i);
                if aki == 0.0 {
                    continue;
                }
                for j in 0..b.cols {
                    c.data[i * b.cols + j] += aki * b.get(k, j);
                }
            }
        }
        c
    }

    /// `C = A · Bᵀ`, naive.
    pub fn matmul_t(&self, b: &M64) -> M64 {
        assert_eq!(self.cols, b.cols, "matmul_t inner dimension mismatch");
        let mut c = M64::zeros(self.rows, b.rows);
        for i in 0..self.rows {
            for j in 0..b.rows {
                let mut s = 0.0;
                for k in 0..self.cols {
                    s += self.get(i, k) * b.get(j, k);
                }
                c.data[i * b.rows + j] = s;
            }
        }
        c
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// Largest absolute elementwise difference.
    pub fn max_abs_diff(&self, other: &M64) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data.iter().zip(&other.data).fold(0.0f64, |m, (&a, &b)| m.max((a - b).abs()))
    }
}

/// Max elementwise difference between `a` (f64) and `b` (f32), relative to
/// the larger of `a`'s max magnitude and `floor` — the harness's standard
/// layer-level comparison (per-element relative error is meaningless near
/// sign changes, where gradients pass through zero).
pub fn max_rel_diff_f32(a: &M64, b: &Dense, floor: f64) -> f64 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    let scale = a.max_abs().max(floor);
    let mut worst = 0.0f64;
    for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
        worst = worst.max((x - y as f64).abs() / scale);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = M64::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = M64::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_products_agree() {
        let a = M64::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = M64::from_vec(3, 2, vec![0.5, -1.0, 2.0, 0.0, 1.0, 3.0]);
        // Aᵀ·B two ways: dedicated kernel vs explicit transpose.
        let mut at = M64::zeros(2, 3);
        for r in 0..3 {
            for c in 0..2 {
                at.set(c, r, a.get(r, c));
            }
        }
        assert!(a.t_matmul(&b).max_abs_diff(&at.matmul(&b)) < 1e-15);
        // A·Bᵀ likewise.
        let mut bt = M64::zeros(2, 3);
        for r in 0..3 {
            for c in 0..2 {
                bt.set(c, r, b.get(r, c));
            }
        }
        assert!(a.matmul_t(&b).max_abs_diff(&a.matmul(&bt)) < 1e-15);
    }

    #[test]
    fn f32_roundtrip_is_exact() {
        let d = Dense::from_fn(3, 3, |r, c| (r as f32 - c as f32) * 0.37);
        let wide = M64::from_f32(&d);
        assert_eq!(wide.to_f32(), d);
    }
}
