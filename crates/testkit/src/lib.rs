//! mggcn-testkit — the differential-testing and conformance harness.
//!
//! The production stack's core claim (paper §4.1) is that partitioning is
//! a *performance* decision, never a numerical one: training on P GPUs
//! must compute the same model as training on one. This crate checks that
//! claim from the outside:
//!
//! * [`oracle`] — a standalone f64 dense reference GCN sharing only its
//!   inputs (seeded weights, the f32 `Â`) with the trainer;
//! * [`dense64`] — the f64 matrix type and comparison helpers;
//! * [`corpus`] — a deterministic seeded fuzz corpus driving
//!   train → checkpoint → restore → serve on degenerate graphs;
//! * integration tests (under `tests/`) — finite-difference gradient
//!   checking, P-invariance over P ∈ {1,2,3,4,8}, golden gpusim schedules,
//!   memory-plan conformance, and the fuzz driver.
//!
//! # Tolerance policy
//!
//! Three comparison regimes, from tightest to loosest:
//!
//! 1. **Bit-identical** — same arithmetic in the same order. Applies to:
//!    checkpoint resume vs. uninterrupted training (restore copies exact
//!    state, execution is deterministic), and forward activations across
//!    P (the SpMM accumulates each output row in CSR column order, which
//!    partitioning does not change).
//! 2. **f64 relative, ≤ [`FD_GRAD_TOL`]** — oracle analytic gradients vs.
//!    central finite differences on the oracle's own loss. Pure f64, so
//!    only the O(h²) truncation error separates the two.
//! 3. **f32-noise relative** — any comparison that crosses an f32
//!    summation-order boundary: trainer vs. oracle, and P vs. P′ *weight*
//!    state (the `W_G = HᵀG` reduction sums per-shard partials whose
//!    grouping depends on P). These cannot be bit-identical by
//!    construction; the bounds ([`P_LOSS_TOL`], [`P_WEIGHT_TOL`],
//!    [`TRAINER_VS_ORACLE_TOL`]) are set a comfortable margin above
//!    observed error yet well below anything a real defect produces.
//!
//! Relative error is always measured against the max-magnitude of the
//! reference side (with a floor), never elementwise — per-element relative
//! error is meaningless where a gradient passes through zero.

#![forbid(unsafe_code)]

pub mod corpus;
pub mod dense64;
pub mod oracle;

/// Max allowed relative error between oracle analytic gradients and f64
/// central differences (acceptance bound; regime 2 above).
pub const FD_GRAD_TOL: f64 = 1e-6;

/// Max allowed relative error between the trainer's f32 gradients/logits
/// and the oracle's f64 ones (regime 3).
pub const TRAINER_VS_ORACLE_TOL: f64 = 5e-4;

/// Max allowed relative loss difference between runs at different P, or
/// between permuted/unpermuted and op-order-swapped runs (regime 3).
pub const P_LOSS_TOL: f64 = 1e-4;

/// Max allowed relative weight difference across P after training
/// (regime 3; drift compounds over epochs, so this is looser than the
/// per-epoch loss bound).
pub const P_WEIGHT_TOL: f64 = 5e-4;

/// Scale floor for relative comparisons: quantities smaller than this are
/// compared absolutely against it.
pub const REL_FLOOR: f64 = 1e-8;

/// Relative difference between two scalars, with [`REL_FLOOR`].
pub fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(REL_FLOOR)
}

/// Compare `actual` against the checked-in snapshot `goldens/<name>`,
/// panicking with the first differing line on drift. Regenerate after an
/// intentional change with `UPDATE_GOLDENS=1 cargo test -p mggcn-testkit`.
pub fn check_golden(name: &str, actual: &str) {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("goldens").join(name);
    if std::env::var("UPDATE_GOLDENS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().expect("goldens dir")).expect("mkdir goldens");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden {name}; generate with \
             UPDATE_GOLDENS=1 cargo test -p mggcn-testkit"
        )
    });
    if want != actual {
        let diff = want
            .lines()
            .zip(actual.lines())
            .position(|(a, b)| a != b)
            .map(|i| {
                format!(
                    "first differing line {}:\n  golden: {}\n  actual: {}",
                    i + 1,
                    want.lines().nth(i).unwrap_or("<eof>"),
                    actual.lines().nth(i).unwrap_or("<eof>")
                )
            })
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: golden {} vs actual {}",
                    want.lines().count(),
                    actual.lines().count()
                )
            });
        panic!(
            "output drifted from golden {name}; {diff}\n\
             If the change is intentional, regenerate with UPDATE_GOLDENS=1."
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_diff_basics() {
        assert_eq!(rel_diff(1.0, 1.0), 0.0);
        assert!((rel_diff(1.0, 1.1) - 0.1 / 1.1).abs() < 1e-12);
        // Tiny values fall back to the floor instead of blowing up.
        assert!(rel_diff(1e-300, -1e-300) < 1e-290);
    }
}
