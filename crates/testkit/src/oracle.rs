//! The reference GCN oracle: a standalone f64 dense implementation of
//! exactly the model the distributed trainer computes.
//!
//! No partitioning, no staged broadcasts, no buffer reuse, no schedule —
//! just eqs. 5–11 of the paper written as naive dense algebra over a
//! *densified* `Â`. The one deliberate coupling to the production stack is
//! the inputs: weights are initialized with the same seeded Glorot draw
//! and `Â` is the same column-normalized f32 matrix the trainer tiles
//! (widened to f64 exactly), so the oracle and the trainer start from
//! bit-identical state and any divergence is arithmetic, not data.
//!
//! Semantics mirrored from the production kernels:
//!
//! * forward per layer: `H⁽ˡ⁺¹⁾ = relu(Âᵀ·(H⁽ˡ⁾·Wˡ))`, no activation on
//!   the last layer ([`mggcn_core::trainer`]);
//! * loss: masked softmax cross-entropy normalized by the *global* train
//!   count, zero gradient off the train mask ([`mggcn_core::loss`]),
//!   argmax ties resolved to the highest index (`max_by` keeps the last
//!   maximum);
//! * ReLU backward masks on `activation > 0.0`
//!   ([`mggcn_dense::relu_backward_merge`]);
//! * Adam with the trainer's hyperparameters and 1-based step count
//!   ([`mggcn_core::optimizer`]).

use crate::dense64::M64;
use mggcn_core::config::GcnConfig;
use mggcn_dense::init;
use mggcn_graph::Graph;
use mggcn_sparse::Csr;

/// Adam hyperparameters in f64, matching `AdamParams::default()`.
const BETA1: f64 = 0.9;
const BETA2: f64 = 0.999;
const EPS: f64 = 1e-8;

/// What one oracle epoch reports.
#[derive(Clone, Copy, Debug)]
pub struct RefEpoch {
    pub loss: f64,
    pub train_acc: f64,
    pub test_acc: f64,
}

/// The f64 reference GCN.
pub struct ReferenceGcn {
    a_hat: M64,
    a_hat_t: M64,
    features: M64,
    labels: Vec<u32>,
    train_mask: Vec<bool>,
    test_mask: Vec<bool>,
    train_count: usize,
    cfg: GcnConfig,
    pub weights: Vec<M64>,
    adam_m: Vec<M64>,
    adam_v: Vec<M64>,
    epoch: usize,
}

fn densify(a: &Csr) -> M64 {
    let mut m = M64::zeros(a.rows(), a.cols());
    for r in 0..a.rows() {
        for (c, v) in a.row(r) {
            m.set(r, c as usize, v as f64);
        }
    }
    m
}

impl ReferenceGcn {
    /// Build the oracle over `graph` with the same seeded weights the
    /// trainer would replicate on every GPU.
    pub fn new(graph: &Graph, cfg: &GcnConfig) -> Self {
        assert_eq!(graph.features.cols(), cfg.dims[0], "feature width must match d(0)");
        let (a_hat, a_hat_t) = graph.normalized_adj();
        let weights: Vec<M64> = (0..cfg.layers())
            .map(|l| {
                M64::from_f32(&init::glorot_seeded(cfg.d_in(l), cfg.d_out(l), cfg.seed + l as u64))
            })
            .collect();
        let moments: Vec<M64> =
            (0..cfg.layers()).map(|l| M64::zeros(cfg.d_in(l), cfg.d_out(l))).collect();
        Self {
            a_hat: densify(&a_hat),
            a_hat_t: densify(&a_hat_t),
            features: M64::from_f32(&graph.features),
            labels: graph.labels.clone(),
            train_mask: graph.split.train.clone(),
            test_mask: graph.split.test.clone(),
            train_count: graph.split.train_count(),
            cfg: cfg.clone(),
            weights,
            adam_m: moments.clone(),
            adam_v: moments,
            epoch: 0,
        }
    }

    /// Replace the weights (e.g. with a trained checkpoint's, widened).
    pub fn set_weights(&mut self, weights: &[mggcn_dense::Dense]) {
        assert_eq!(weights.len(), self.weights.len(), "layer count mismatch");
        self.weights = weights.iter().map(M64::from_f32).collect();
    }

    pub fn layers(&self) -> usize {
        self.cfg.layers()
    }

    /// Global training-vertex count. Note the production convention the
    /// oracle mirrors: the *reported* loss is the sum over train vertices,
    /// but the gradient descends the mean — finite differences on
    /// [`Self::loss_at`] must divide by this count to match
    /// [`Self::gradients`].
    pub fn train_count(&self) -> usize {
        self.train_count
    }

    pub fn epochs_trained(&self) -> usize {
        self.epoch
    }

    /// Forward pass: returns `[H⁰, H¹, …, H^L]` where the last entry holds
    /// raw logits (no activation).
    pub fn forward(&self) -> Vec<M64> {
        self.forward_with(&self.weights)
    }

    fn forward_with(&self, weights: &[M64]) -> Vec<M64> {
        let layers = weights.len();
        let mut acts = Vec::with_capacity(layers + 1);
        acts.push(self.features.clone());
        for (l, w) in weights.iter().enumerate() {
            let hw = acts[l].matmul(w);
            let mut z = self.a_hat_t.matmul(&hw);
            if l + 1 < layers {
                for x in z.as_mut_slice() {
                    if *x < 0.0 {
                        *x = 0.0;
                    }
                }
            }
            acts.push(z);
        }
        acts
    }

    /// Masked softmax cross-entropy over `logits`: returns the loss report
    /// and the gradient w.r.t. the logits.
    pub fn loss_and_grad(&self, logits: &M64) -> (RefEpoch, M64) {
        let classes = logits.cols();
        let inv_n = 1.0 / self.train_count.max(1) as f64;
        let mut grad = M64::zeros(logits.rows(), classes);
        let mut loss = 0.0f64;
        let (mut tc, mut tt, mut ec, mut et) = (0usize, 0usize, 0usize, 0usize);
        for r in 0..logits.rows() {
            let row = logits.row(r);
            let label = self.labels[r] as usize;
            let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<f64> = row.iter().map(|&x| (x - max).exp()).collect();
            let sum: f64 = exps.iter().sum();
            // Last maximum wins, matching `max_by` in the f32 loss kernel.
            let mut argmax = 0usize;
            for (i, &e) in exps.iter().enumerate() {
                if e >= exps[argmax] {
                    argmax = i;
                }
            }
            let p_label = exps[label] / sum;
            if self.train_mask[r] {
                loss += -(p_label.max(1e-30).ln());
                tt += 1;
                tc += usize::from(argmax == label);
                let g = grad.row_mut(r);
                for (gi, &e) in g.iter_mut().zip(&exps) {
                    *gi = e / sum * inv_n;
                }
                g[label] -= inv_n;
            } else if self.test_mask[r] {
                et += 1;
                ec += usize::from(argmax == label);
            }
        }
        let report = RefEpoch {
            loss,
            train_acc: if tt == 0 { 0.0 } else { tc as f64 / tt as f64 },
            test_acc: if et == 0 { 0.0 } else { ec as f64 / et as f64 },
        };
        (report, grad)
    }

    /// Backward pass (paper eqs. 8–11): per-layer weight gradients given
    /// the forward activations and the loss gradient over the logits.
    pub fn backward(&self, acts: &[M64], dlogits: M64) -> Vec<M64> {
        let layers = self.weights.len();
        let mut wgrads = vec![M64::zeros(0, 0); layers];
        let mut g = dlogits; // gradient w.r.t. AHW(l) = Âᵀ·(H⁽ˡ⁾·Wˡ)
        for l in (0..layers).rev() {
            // (eq. 9) HW_G = Â · AHW_G.
            let dm = self.a_hat.matmul(&g);
            // (eq. 10) W_G = H⁽ˡ⁾ᵀ · HW_G.
            wgrads[l] = acts[l].t_matmul(&dm);
            if l > 0 {
                // (eq. 11) H_G = HW_G · Wᵀ, then ReLU backward (eq. 8).
                let mut dh = dm.matmul_t(&self.weights[l]);
                for (x, &a) in dh.as_mut_slice().iter_mut().zip(acts[l].as_slice()) {
                    if a <= 0.0 {
                        *x = 0.0;
                    }
                }
                g = dh;
            }
        }
        wgrads
    }

    /// Loss + per-layer weight gradients at the current weights, with no
    /// update — the differential-testing counterpart of
    /// `Trainer::compute_gradients`.
    pub fn gradients(&self) -> (RefEpoch, Vec<M64>) {
        let acts = self.forward();
        let (report, dlogits) = self.loss_and_grad(acts.last().expect("logits"));
        (report, self.backward(&acts, dlogits))
    }

    /// Loss at explicitly given weights — the finite-difference probe.
    pub fn loss_at(&self, weights: &[M64]) -> f64 {
        let acts = self.forward_with(weights);
        let (report, _) = self.loss_and_grad(acts.last().expect("logits"));
        report.loss
    }

    /// One full epoch: forward, loss, backward, Adam. Mirrors
    /// `Trainer::train_epoch` (every replica applies the same update, so
    /// one f64 model stands in for all of them).
    pub fn train_epoch(&mut self) -> RefEpoch {
        let (report, wgrads) = self.gradients();
        let t = self.epoch as u64 + 1;
        let lr = self.cfg.lr as f64 * self.cfg.lr_schedule.factor(self.epoch) as f64;
        let bc1 = 1.0 - BETA1.powi(t as i32);
        let bc2 = 1.0 - BETA2.powi(t as i32);
        for (l, g) in wgrads.iter().enumerate() {
            let w = &mut self.weights[l];
            for i in 0..w.as_slice().len() {
                let grad = g.as_slice()[i];
                let m = &mut self.adam_m[l].as_mut_slice()[i];
                *m = BETA1 * *m + (1.0 - BETA1) * grad;
                let v = &mut self.adam_v[l].as_mut_slice()[i];
                *v = BETA2 * *v + (1.0 - BETA2) * grad * grad;
                let m_hat = self.adam_m[l].as_slice()[i] / bc1;
                let v_hat = self.adam_v[l].as_slice()[i] / bc2;
                w.as_mut_slice()[i] -= lr * m_hat / (v_hat.sqrt() + EPS);
            }
        }
        self.epoch += 1;
        report
    }

    /// Train `epochs` epochs, returning every report.
    pub fn train(&mut self, epochs: usize) -> Vec<RefEpoch> {
        (0..epochs).map(|_| self.train_epoch()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_graph::generators::sbm::{self, SbmConfig};

    fn setup() -> (Graph, GcnConfig) {
        let g = sbm::generate(&SbmConfig::community_benchmark(60, 3), 11);
        let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
        (g, cfg)
    }

    #[test]
    fn oracle_loss_decreases() {
        let (g, cfg) = setup();
        let mut oracle = ReferenceGcn::new(&g, &cfg);
        let reports = oracle.train(10);
        assert!(reports[9].loss < reports[0].loss, "{} vs {}", reports[9].loss, reports[0].loss);
        assert!(reports.iter().all(|r| r.loss.is_finite()));
    }

    #[test]
    fn forward_shapes_follow_dims() {
        let (g, cfg) = setup();
        let oracle = ReferenceGcn::new(&g, &cfg);
        let acts = oracle.forward();
        assert_eq!(acts.len(), cfg.layers() + 1);
        for (l, a) in acts.iter().enumerate() {
            assert_eq!((a.rows(), a.cols()), (g.n(), cfg.dims[l]));
        }
    }

    #[test]
    fn uniform_logits_loss_is_log_classes_times_train_count() {
        // Zero weights give zero logits: per-train-vertex loss = ln(classes).
        let (g, cfg) = setup();
        let mut oracle = ReferenceGcn::new(&g, &cfg);
        for w in &mut oracle.weights {
            for x in w.as_mut_slice() {
                *x = 0.0;
            }
        }
        let (report, _) = oracle.gradients();
        let expect = g.split.train_count() as f64 * (g.classes as f64).ln();
        assert!((report.loss - expect).abs() < 1e-9, "{} vs {expect}", report.loss);
    }

    #[test]
    fn gradient_rows_vanish_off_train_mask() {
        let (g, cfg) = setup();
        let oracle = ReferenceGcn::new(&g, &cfg);
        let acts = oracle.forward();
        let (_, dlogits) = oracle.loss_and_grad(acts.last().unwrap());
        for r in 0..g.n() {
            if !g.split.train[r] {
                assert!(dlogits.row(r).iter().all(|&x| x == 0.0), "row {r}");
            }
        }
    }
}
