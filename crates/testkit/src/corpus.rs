//! The deterministic fuzz corpus: seeded degenerate training problems
//! driven end-to-end through train → checkpoint → restore → serve.
//!
//! Every case derives entirely from one `u64` seed, so a failure report
//! is a replay command. The generator deliberately over-samples the edge
//! geometry the partitioned kernels are most likely to get wrong:
//! edge-free graphs (column normalization of all-zero columns), isolated
//! vertices, `n == P` single-row tiles, and both growing
//! (`d(l) < d(l+1)`, the §4.4 SpMM-first regime) and shrinking layer
//! stacks.

use crate::dense64::max_rel_diff_f32;
use crate::oracle::ReferenceGcn;
use crate::{rel_diff, P_LOSS_TOL, REL_FLOOR, TRAINER_VS_ORACLE_TOL};
use mggcn_core::checkpoint::Checkpoint;
use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_exec::Backend;
use mggcn_graph::Graph;
use mggcn_serve::ServingModel;
use mggcn_sparse::Coo;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Graph shapes the generator rotates through.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Shape {
    /// No edges at all: `Â` is all-zero, every aggregation is zero.
    Empty,
    /// Sparse random edges; isolated vertices occur naturally.
    Sparse,
    /// A cycle: connected, every column nonzero.
    Ring,
}

/// One seeded end-to-end problem.
pub struct FuzzCase {
    pub seed: u64,
    pub shape: Shape,
    pub graph: Graph,
    pub cfg: GcnConfig,
    pub gpus: usize,
    pub permute: bool,
    pub epochs: usize,
    /// Which execution backend drives the trainer (the oracle is always
    /// sequential f64). Defaults to `Simulated`; the differential suite
    /// re-runs the corpus with `Threaded`.
    pub backend: Backend,
}

impl FuzzCase {
    /// Derive a case from `seed` alone.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xf022_f022_f022_f022);
        let gpus = rng.gen_range(1usize..=4);
        // One case in five is the n == P degenerate: every tile is a
        // single row (or empty after uneven splits).
        let n = if rng.gen_bool(0.2) { gpus } else { rng.gen_range(gpus.max(2)..=40) };
        let shape = match rng.gen_range(0u32..3) {
            0 => Shape::Empty,
            1 => Shape::Sparse,
            _ => Shape::Ring,
        };
        let mut coo = Coo::new(n, n);
        match shape {
            Shape::Empty => {}
            Shape::Sparse => {
                for _ in 0..rng.gen_range(0..2 * n) {
                    let u = rng.gen_range(0..n as u32);
                    let v = rng.gen_range(0..n as u32);
                    coo.push(u, v, 1.0);
                    coo.push(v, u, 1.0);
                }
            }
            Shape::Ring => {
                for i in 0..n {
                    let j = (i + 1) % n;
                    coo.push(i as u32, j as u32, 1.0);
                    coo.push(j as u32, i as u32, 1.0);
                }
            }
        }
        let classes = rng.gen_range(2usize..=5);
        // Alternate growing and shrinking stacks; growing (d0 < d1)
        // exercises the §4.4 SpMM-before-GeMM order.
        let (d0, hidden) = if rng.gen_bool(0.5) {
            (rng.gen_range(2usize..=4), rng.gen_range(8usize..=12))
        } else {
            (rng.gen_range(8usize..=12), rng.gen_range(2usize..=4))
        };
        let layers = rng.gen_range(1usize..=2);
        let graph = Graph::synthesize(coo.to_csr(), d0, classes, seed ^ 0x9e37_79b9);
        let mut cfg = if layers == 1 {
            GcnConfig::new(d0, &[], classes)
        } else {
            GcnConfig::new(d0, &[hidden], classes)
        };
        cfg.seed = seed ^ 0x5eed;
        Self {
            seed,
            shape,
            graph,
            cfg,
            gpus,
            permute: rng.gen_bool(0.5),
            epochs: rng.gen_range(1usize..=3),
            backend: Backend::Simulated,
        }
    }

    /// The same case, driven through a different execution backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// One-line summary for failure reports.
    pub fn describe(&self) -> String {
        format!(
            "seed={} shape={:?} n={} nnz={} dims={:?} P={} permute={} epochs={}",
            self.seed,
            self.shape,
            self.graph.n(),
            self.graph.adj.nnz(),
            self.cfg.dims,
            self.gpus,
            self.permute,
            self.epochs
        )
    }

    /// The training options this case runs under.
    pub fn opts(&self) -> TrainOptions {
        let mut o = TrainOptions::quick(self.gpus);
        o.permute = self.permute;
        o.backend = self.backend;
        o
    }

    /// A fresh trainer for this case (deterministic: two calls train
    /// identically).
    pub fn trainer(&self) -> Result<Trainer, String> {
        let problem = Problem::from_graph(&self.graph, &self.cfg, &self.opts());
        Trainer::new(problem, self.cfg.clone(), self.opts())
            .map_err(|e| format!("trainer OOM on a toy problem: {e:?}"))
    }
}

macro_rules! check {
    ($cond:expr, $($arg:tt)*) => {
        // Bind first: `!(a < b)` on floats trips clippy's partial-ord lint.
        let holds: bool = $cond;
        if !holds {
            return Err(format!($($arg)*));
        }
    };
}

/// Drive one case end-to-end. `Err` carries a human-readable diagnosis;
/// the caller prepends the replay seed.
pub fn run_case(case: &FuzzCase) -> Result<(), String> {
    case.graph
        .adj
        .validate()
        .map_err(|e| format!("generator produced a malformed adjacency: {e}"))?;

    // 1. Train, with the f64 oracle shadowing every epoch.
    let mut trainer = case.trainer()?;
    let mut oracle = ReferenceGcn::new(&case.graph, &case.cfg);
    for e in 0..case.epochs {
        let got = trainer.train_epoch().map_err(|err| format!("epoch {e} failed: {err}"))?;
        let want = oracle.train_epoch();
        check!(got.loss.is_finite(), "epoch {e}: non-finite loss {}", got.loss);
        check!(
            rel_diff(got.loss, want.loss) < P_LOSS_TOL,
            "epoch {e}: trainer loss {} diverged from oracle {}",
            got.loss,
            want.loss
        );
    }

    // 2. Checkpoint → save → load → restore → train must be bit-identical
    //    to training straight through (deterministic execution).
    let halves = case.epochs.div_ceil(2);
    let mut first = case.trainer()?;
    first.train(halves).map_err(|err| format!("first-half training failed: {err}"))?;
    let ck = Checkpoint::from_trainer(&first);
    let path =
        std::env::temp_dir().join(format!("mggcn_fuzz_{}_{}.ckpt", std::process::id(), case.seed));
    ck.save(&path).map_err(|e| format!("checkpoint save failed: {e}"))?;
    let loaded = Checkpoint::load(&path).map_err(|e| format!("checkpoint load failed: {e}"))?;
    std::fs::remove_file(&path).ok();
    check!(loaded == ck, "checkpoint did not round-trip through disk");
    let mut resumed = case.trainer()?;
    loaded.restore_into(&mut resumed).map_err(|e| format!("restore failed: {e}"))?;
    resumed.train(case.epochs - halves).map_err(|err| format!("resumed training failed: {err}"))?;
    let (ga, gb) = (trainer.state().gpu(0), resumed.state().gpu(0));
    let (a, b) = (&ga.weights, &gb.weights);
    for l in 0..a.len() {
        check!(
            a[l].as_slice() == b[l].as_slice(),
            "resumed weights differ from straight-through at layer {l}"
        );
    }
    drop((ga, gb));

    // 3. Serve the final checkpoint and compare logits against the oracle
    //    evaluated at the same (f32) weights.
    let final_ck = Checkpoint::from_trainer(&trainer);
    let model = ServingModel::from_checkpoint(&final_ck, &case.graph)
        .map_err(|e| format!("serving rejected a valid checkpoint: {e}"))?;
    let served = model.forward_full();
    check!(served.as_slice().iter().all(|v| v.is_finite()), "serving produced non-finite logits");
    oracle.set_weights(&final_ck.weights);
    let reference = oracle.forward();
    let logits = reference.last().expect("logits");
    let err = max_rel_diff_f32(logits, &served, REL_FLOOR.max(logits.max_abs() * 1e-3));
    check!(err < TRAINER_VS_ORACLE_TOL, "served logits diverge from oracle by {err:.3e}");

    // 4. Graph delta: add an edge online, then check the server's
    //    re-normalized operator is structurally sound, the invalidation
    //    set covers the endpoints, and the post-delta logits match an
    //    oracle rebuilt on the updated graph at the same weights.
    if case.graph.n() >= 2 {
        let mut model = model;
        let (u, v) = (0u32, (case.graph.n() - 1) as u32);
        let invalidated = model.apply_delta(&[(u, v)]);
        check!(
            invalidated.contains(&u) && invalidated.contains(&v),
            "delta invalidation set {invalidated:?} misses an endpoint of ({u},{v})"
        );
        model.adj().validate().map_err(|e| format!("delta left a malformed adjacency: {e}"))?;
        let updated = Graph::new(
            model.adj().clone(),
            case.graph.features.clone(),
            case.graph.labels.clone(),
            case.graph.classes,
            case.graph.split.clone(),
        );
        let mut oracle = ReferenceGcn::new(&updated, &case.cfg);
        oracle.set_weights(&final_ck.weights);
        let reference = oracle.forward();
        let logits = reference.last().expect("logits");
        let served = model.forward_full();
        let err = max_rel_diff_f32(logits, &served, REL_FLOOR.max(logits.max_abs() * 1e-3));
        check!(
            err < TRAINER_VS_ORACLE_TOL,
            "post-delta served logits diverge from oracle by {err:.3e}"
        );
    }
    Ok(())
}

/// Run seeds `0..count`, collecting failures as `(seed, diagnosis)`.
pub fn run_corpus(count: u64) -> Vec<(u64, String)> {
    run_corpus_with(count, Backend::Simulated)
}

/// Run seeds `0..count` on a specific execution backend.
pub fn run_corpus_with(count: u64, backend: Backend) -> Vec<(u64, String)> {
    let mut failures = Vec::new();
    for seed in 0..count {
        let case = FuzzCase::from_seed(seed).with_backend(backend);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_case(&case)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => failures.push((seed, format!("{msg} [{}]", case.describe()))),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic".into());
                failures.push((seed, format!("panic: {msg} [{}]", case.describe())));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let a = FuzzCase::from_seed(7);
        let b = FuzzCase::from_seed(7);
        assert_eq!(a.describe(), b.describe());
        assert_eq!(a.graph.adj, b.graph.adj);
        assert_eq!(a.graph.features, b.graph.features);
    }

    #[test]
    fn generator_covers_the_degenerate_shapes() {
        let cases: Vec<FuzzCase> = (0..60).map(FuzzCase::from_seed).collect();
        assert!(cases.iter().any(|c| c.shape == Shape::Empty), "no empty graphs");
        assert!(cases.iter().any(|c| c.graph.n() == c.gpus && c.gpus > 1), "no n == P cases");
        assert!(
            cases.iter().any(|c| c.cfg.dims.windows(2).any(|w| w[0] < w[1])),
            "no growing layer"
        );
        assert!(
            cases.iter().any(|c| c.cfg.dims.windows(2).any(|w| w[0] > w[1])),
            "no shrinking layer"
        );
        assert!(cases.iter().any(|c| c.cfg.layers() == 1), "no single-layer model");
    }
}
