//! Differential test for the cache-aware partitioner's objective: the
//! cross-shard k-hop fan-out accounting must agree exactly with a
//! brute-force neighborhood walk priced by the §5.1 closed form, and the
//! cache-aware plan must measurably reduce it versus a random partition
//! on community-structured graphs.

use mggcn_cluster::PartitionPlan;
use mggcn_comm::analysis::partition_fanout_bytes;
use mggcn_graph::generators::sbm::{self, SbmConfig};
use mggcn_sparse::Csr;
use std::collections::BTreeSet;

/// Brute-force k-hop neighborhood (BFS over CSR rows), independent of
/// `graph::sampling::khop_neighborhood`.
fn khop_bfs(adj: &Csr, seed: u32, hops: usize) -> BTreeSet<u32> {
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    seen.insert(seed);
    let mut frontier = vec![seed];
    for _ in 0..hops {
        let mut next = Vec::new();
        for &v in &frontier {
            for (u, _) in adj.row(v as usize) {
                if seen.insert(u) {
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    seen
}

/// Brute-force per-shard foreign-row counts.
fn fanout_rows_bfs(adj: &Csr, assignment: &[u32], shards: usize, hops: usize) -> Vec<usize> {
    let mut foreign = vec![0usize; shards];
    for v in 0..adj.rows() as u32 {
        let home = assignment[v as usize];
        for u in khop_bfs(adj, v, hops) {
            if assignment[u as usize] != home {
                foreign[home as usize] += 1;
            }
        }
    }
    foreign
}

#[test]
fn fanout_accounting_matches_a_brute_force_walk_exactly() {
    let graph = sbm::generate(&SbmConfig::community_benchmark(160, 4), 23);
    let d = 12usize;
    for shards in [2usize, 3, 4] {
        for hops in [1usize, 2] {
            for plan in [
                PartitionPlan::random(graph.n(), shards, 31),
                PartitionPlan::cache_aware(&graph.adj, shards, 31),
            ] {
                let rows = plan.cross_shard_fanout_rows(&graph.adj, hops);
                let expect = fanout_rows_bfs(&graph.adj, &plan.assignment, shards, hops);
                assert_eq!(
                    rows, expect,
                    "{} plan, {shards} shards, {hops} hops: row counts diverge",
                    plan.strategy
                );
                // Byte pricing is the exact §5.1 closed form: 4·rows·d.
                let (bytes, total) = plan.fanout_bytes(&graph.adj, hops, d);
                assert_eq!(bytes, partition_fanout_bytes(&expect, d));
                for (b, r) in bytes.iter().zip(&expect) {
                    assert_eq!(*b, 4 * *r as u64 * d as u64);
                }
                assert_eq!(total, bytes.iter().sum::<u64>());
            }
        }
    }
}

#[test]
fn cache_aware_partition_reduces_cross_shard_fanout_bytes() {
    // Community graphs across several sizes/seeds: label propagation must
    // beat random every time, and by a real margin in aggregate.
    let mut total_random = 0u64;
    let mut total_aware = 0u64;
    for (n, communities, seed) in [(240usize, 4usize, 1u64), (320, 4, 2), (400, 8, 3)] {
        let graph = sbm::generate(&SbmConfig::community_benchmark(n, communities), seed);
        let shards = 4;
        let random = PartitionPlan::random(graph.n(), shards, seed);
        let aware = PartitionPlan::cache_aware(&graph.adj, shards, seed);
        let (_, rb) = random.fanout_bytes(&graph.adj, 2, 16);
        let (_, ab) = aware.fanout_bytes(&graph.adj, 2, 16);
        assert!(ab < rb, "n={n}: cache-aware {ab} must beat random {rb}");
        total_random += rb;
        total_aware += ab;
    }
    assert!(
        (total_aware as f64) < 0.8 * total_random as f64,
        "aggregate reduction too small: {total_aware} vs {total_random}"
    );
}

#[test]
fn partitions_stay_balanced() {
    let graph = sbm::generate(&SbmConfig::community_benchmark(300, 4), 5);
    for shards in [2usize, 3, 4] {
        let aware = PartitionPlan::cache_aware(&graph.adj, shards, 5);
        let sizes = aware.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), graph.n());
        let cap = (graph.n() as f64 / shards as f64 * 1.1).ceil() as usize;
        for (s, &sz) in sizes.iter().enumerate() {
            assert!(sz <= cap, "shard {s} holds {sz} > cap {cap}");
            assert!(sz > 0, "shard {s} is empty");
        }
    }
}
