//! Property tests for the trace layer's paper-invariant metrics.
//!
//! Over random graphs and P ∈ {1, 2, 4, 8}:
//!
//! * the traced per-stage broadcast byte counters must equal the §5.1
//!   closed form (`comm::analysis::epoch_broadcast_bytes`) **exactly** —
//!   the schedule moves `rows[s]·d·4` bytes per staged broadcast and the
//!   tracer dedups collective lanes by op id, so there is no legitimate
//!   source of even one byte of disagreement;
//! * the traced per-GPU memory high-watermark must respect the §4.2
//!   `L + 3` big-buffer plan the trainer was admitted under.

use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_graph::generators::sbm::{self, SbmConfig};
use mggcn_trace::Tracer;
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct Scenario {
    seed: u64,
    n: usize,
    hidden: Vec<usize>,
    gpus: usize,
    epochs: usize,
    op_order_opt: bool,
    skip_first_backward_spmm: bool,
    overlap: bool,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        any::<u64>(),
        16usize..80,
        proptest::collection::vec(2usize..24, 0..3),
        0usize..4,
        1usize..=2,
        (any::<bool>(), any::<bool>(), any::<bool>()),
    )
        .prop_map(|(seed, n, hidden, p_idx, epochs, (op_order_opt, skip, overlap))| Scenario {
            seed,
            n,
            hidden,
            gpus: [1, 2, 4, 8][p_idx],
            epochs,
            op_order_opt,
            skip_first_backward_spmm: skip,
            overlap,
        })
}

fn run(s: &Scenario) -> (Arc<Tracer>, Trainer) {
    let g = sbm::generate(&SbmConfig::community_benchmark(s.n, 3), s.seed);
    let cfg = GcnConfig::new(g.features.cols(), &s.hidden, g.classes);
    let mut opts = TrainOptions::quick(s.gpus);
    opts.permute = false;
    opts.op_order_opt = s.op_order_opt;
    opts.skip_first_backward_spmm = s.skip_first_backward_spmm;
    opts.overlap = s.overlap;
    let problem = Problem::from_graph(&g, &cfg, &opts);
    let mut t = Trainer::new(problem, cfg, opts).expect("toy problem fits");
    let tracer = Arc::new(Tracer::new());
    t.set_tracer(tracer.clone());
    for _ in 0..s.epochs {
        t.train_epoch().expect("simulated backend cannot fail");
    }
    (tracer, t)
}

proptest! {
    // Every case trains real epochs, so keep the count modest; the
    // scenario space is still swept across P, depth, both §4.4 flags and
    // overlap on/off.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn traced_broadcast_bytes_equal_the_closed_form_exactly(s in scenario()) {
        let (tracer, trainer) = run(&s);
        let per_epoch = trainer.expected_broadcast_bytes();
        let expected: Vec<u64> =
            per_epoch.iter().map(|&b| b * s.epochs as u64).collect();
        let traced = tracer.broadcast_stage_bytes();
        prop_assert_eq!(
            traced,
            expected,
            "per-stage broadcast counters diverged from §5.1 closed form: {:?}",
            s
        );
    }

    #[test]
    fn traced_high_watermark_respects_the_l_plus_3_plan(s in scenario()) {
        let (tracer, trainer) = run(&s);
        let bound = trainer.plan().big_buffers;
        let marks = tracer.memory_high_watermarks();
        prop_assert_eq!(marks.len(), s.gpus, "one watermark per GPU");
        for (gpu, bytes) in &marks {
            prop_assert!(
                *bytes <= bound,
                "GPU {} high-watermark {} exceeds the L+3 plan {} ({:?})",
                gpu, bytes, bound, s
            );
        }
        prop_assert_eq!(tracer.memory_bound_ok(), Some(true));
    }
}

#[test]
fn stage_counters_accumulate_linearly_over_epochs() {
    // Three epochs record exactly 3× one epoch's bytes — no drift, no
    // double counting of collective lanes.
    let s = Scenario {
        seed: 9,
        n: 48,
        hidden: vec![8],
        gpus: 4,
        epochs: 3,
        op_order_opt: true,
        skip_first_backward_spmm: false,
        overlap: true,
    };
    let (tracer, trainer) = run(&s);
    let per_epoch = trainer.expected_broadcast_bytes();
    let expected: Vec<u64> = per_epoch.iter().map(|&b| b * 3).collect();
    assert_eq!(tracer.broadcast_stage_bytes(), expected);
}
