//! P-invariance differential tests (paper §4.1: partitioning is a
//! performance decision, never a numerical one).
//!
//! Training on P GPUs must compute the same model as on one. Exactly
//! bit-identical it is not: the weight-gradient reduction sums per-shard
//! partials whose grouping follows P, so runs at different P differ by
//! f32 summation-order noise. The tests pin that noise under tight
//! relative bounds — any partitioning defect (dropped tile, misaligned
//! shard, wrong broadcast stage) produces errors orders of magnitude
//! larger. The same argument covers the §5.2 vertex permutation and the
//! §4.4 op-order swap: both reorder arithmetic without changing the math.

use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_core::metrics::EpochReport;
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_dense::Dense;
use mggcn_graph::generators::sbm::{self, SbmConfig};
use mggcn_graph::Graph;
use mggcn_testkit::{rel_diff, P_LOSS_TOL, P_WEIGHT_TOL, REL_FLOOR};

const EPOCHS: usize = 5;

fn graph(seed: u64) -> Graph {
    sbm::generate(&SbmConfig::community_benchmark(96, 3), seed)
}

fn run(g: &Graph, cfg: &GcnConfig, opts: TrainOptions) -> (Vec<EpochReport>, Vec<Dense>) {
    let problem = Problem::from_graph(g, cfg, &opts);
    let mut t = Trainer::new(problem, cfg.clone(), opts).expect("fits");
    let reports = t.train(EPOCHS).expect("train");
    let weights = t.state().gpu(0).weights.clone();
    (reports, weights)
}

fn max_weight_rel_diff(a: &[Dense], b: &[Dense]) -> f64 {
    let mut worst = 0.0f64;
    for (wa, wb) in a.iter().zip(b) {
        let scale = wa.max_abs().max(REL_FLOOR as f32) as f64;
        for (&x, &y) in wa.as_slice().iter().zip(wb.as_slice()) {
            worst = worst.max(((x as f64) - (y as f64)).abs() / scale);
        }
    }
    worst
}

fn assert_equivalent(
    label: &str,
    (ra, wa): &(Vec<EpochReport>, Vec<Dense>),
    (rb, wb): &(Vec<EpochReport>, Vec<Dense>),
) {
    for e in 0..EPOCHS {
        let d = rel_diff(ra[e].loss, rb[e].loss);
        assert!(
            d < P_LOSS_TOL,
            "{label}: epoch {e} loss {} vs {} (rel {d:.3e})",
            ra[e].loss,
            rb[e].loss
        );
    }
    // Accuracy is a discrete function of the logits; identical math must
    // give identical counts.
    assert_eq!(ra[EPOCHS - 1].train_acc, rb[EPOCHS - 1].train_acc, "{label}: train accuracy");
    let d = max_weight_rel_diff(wa, wb);
    assert!(d < P_WEIGHT_TOL, "{label}: weight divergence {d:.3e} after {EPOCHS} epochs");
}

#[test]
fn training_is_invariant_across_gpu_counts() {
    // Acceptance set: P ∈ {1, 2, 3, 4, 8}, all compared against P = 1.
    for seed in [3u64, 21] {
        let g = graph(seed);
        let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
        let mut base_opts = TrainOptions::quick(1);
        base_opts.permute = false;
        let baseline = run(&g, &cfg, base_opts);
        for gpus in [2usize, 3, 4, 8] {
            let mut opts = TrainOptions::quick(gpus);
            opts.permute = false;
            let other = run(&g, &cfg, opts);
            assert_equivalent(&format!("seed {seed}, P=1 vs P={gpus}"), &baseline, &other);
        }
    }
}

#[test]
fn training_is_invariant_under_vertex_permutation() {
    // §5.2: the random permutation balances tiles; it must not change the
    // trained model beyond f32 noise.
    let g = graph(7);
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    let mut plain = TrainOptions::quick(2);
    plain.permute = false;
    let baseline = run(&g, &cfg, plain);
    for perm_seed in [1u64, 0xbabe, 42] {
        let mut opts = TrainOptions::quick(2);
        opts.permute = true;
        opts.perm_seed = perm_seed;
        let permuted = run(&g, &cfg, opts);
        assert_equivalent(&format!("perm_seed {perm_seed:#x}"), &baseline, &permuted);
    }
}

#[test]
fn training_is_invariant_under_op_order_swap() {
    // §4.4: with d(0) < d(1) the optimizer runs the SpMM before the GeMM.
    // Either order computes ÂᵀH W — swap the flag and compare. The SBM
    // benchmark's d(0)=32 > hidden=8 never triggers the swap, so use a
    // widening model (hidden 64 > 32).
    let g = graph(13);
    let cfg = GcnConfig::new(g.features.cols(), &[64], g.classes);
    for gpus in [1usize, 3] {
        let mut with = TrainOptions::quick(gpus);
        with.permute = false;
        with.op_order_opt = true;
        let mut without = with.clone();
        without.op_order_opt = false;
        let a = run(&g, &cfg, with);
        let b = run(&g, &cfg, without);
        assert_equivalent(&format!("op order, P={gpus}"), &a, &b);
    }
}

#[test]
fn overlap_does_not_change_numerics() {
    // §4.3 double-buffered overlap reorders execution in *time* only; the
    // data dependencies force identical values, so this one is exact.
    let g = graph(29);
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    let mut on = TrainOptions::quick(4);
    on.permute = false;
    let mut off = on.clone();
    off.overlap = false;
    let (ra, wa) = run(&g, &cfg, on);
    let (rb, wb) = run(&g, &cfg, off);
    for e in 0..EPOCHS {
        assert_eq!(ra[e].loss, rb[e].loss, "epoch {e} loss must be bit-identical");
    }
    for (x, y) in wa.iter().zip(&wb) {
        assert_eq!(x.as_slice(), y.as_slice(), "weights must be bit-identical");
    }
}
