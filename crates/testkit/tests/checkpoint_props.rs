//! Property tests for `core::checkpoint`: stopping and resuming training
//! is invisible. For any P, graph seed, and split point, save → disk →
//! load → restore → train must be *bit-identical* to training straight
//! through — restore copies exact f32 state and execution is
//! deterministic, so this one regime admits no tolerance at all.

use mggcn_core::checkpoint::Checkpoint;
use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_graph::generators::sbm::{self, SbmConfig};
use proptest::prelude::*;

fn trainer(graph_seed: u64, gpus: usize) -> Trainer {
    let g = sbm::generate(&SbmConfig::community_benchmark(72, 3), graph_seed);
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    let mut opts = TrainOptions::quick(gpus);
    opts.permute = false;
    let problem = Problem::from_graph(&g, &cfg, &opts);
    Trainer::new(problem, cfg, opts).expect("fits")
}

fn weights(t: &Trainer) -> Vec<Vec<f32>> {
    t.state().gpu(0).weights.iter().map(|w| w.as_slice().to_vec()).collect()
}

fn moments(t: &Trainer) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
    let g0 = t.state().gpu(0);
    (
        g0.adam_m.iter().map(|m| m.as_slice().to_vec()).collect(),
        g0.adam_v.iter().map(|m| m.as_slice().to_vec()).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn resume_is_bit_identical_to_uninterrupted(
        graph_seed in 0u64..1000,
        gpus in 1usize..=3,
        split_at in 1usize..4,
    ) {
        let total = split_at + 2;

        // Straight through.
        let mut straight = trainer(graph_seed, gpus);
        let full: Vec<f64> = straight.train(total).expect("train").into_iter().map(|r| r.loss).collect();

        // Interrupted: train, checkpoint through disk, restore into a
        // *fresh* trainer, finish.
        let mut before = trainer(graph_seed, gpus);
        before.train(split_at).expect("train");
        let path = std::env::temp_dir().join(format!(
            "mggcn_prop_{}_{graph_seed}_{gpus}_{split_at}.ckpt",
            std::process::id()
        ));
        Checkpoint::from_trainer(&before).save(&path).expect("save");
        let loaded = Checkpoint::load(&path).expect("load");
        std::fs::remove_file(&path).ok();

        let mut resumed = trainer(graph_seed, gpus);
        loaded.restore_into(&mut resumed).expect("restore");
        prop_assert_eq!(resumed.epochs_trained(), split_at, "epoch counter must restore");
        let tail: Vec<f64> = resumed.train(total - split_at).expect("train").into_iter().map(|r| r.loss).collect();

        // Losses bit-identical from the split point on…
        for (e, (a, b)) in full[split_at..].iter().zip(&tail).enumerate() {
            prop_assert_eq!(a, b, "epoch {} loss diverged after resume", split_at + e);
        }
        // …and the full optimizer state (weights + both Adam moments) too.
        prop_assert_eq!(weights(&straight), weights(&resumed));
        prop_assert_eq!(moments(&straight), moments(&resumed));
    }

    #[test]
    fn checkpoint_roundtrip_is_lossless(graph_seed in 0u64..1000, epochs in 1usize..4) {
        let mut t = trainer(graph_seed, 2);
        t.train(epochs).expect("train");
        let ck = Checkpoint::from_trainer(&t);
        let path = std::env::temp_dir().join(format!(
            "mggcn_prop_rt_{}_{graph_seed}_{epochs}.ckpt",
            std::process::id()
        ));
        ck.save(&path).expect("save");
        let back = Checkpoint::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(ck, back, "disk round-trip must preserve every bit");
    }

    #[test]
    fn restore_crosses_gpu_counts(graph_seed in 0u64..1000) {
        // Weights are replicated, so a checkpoint from P GPUs restores
        // into a P′-GPU trainer; subsequent training stays within f32
        // summation noise of the origin (exactness is per-P, §4.1).
        let mut src = trainer(graph_seed, 1);
        src.train(2).expect("train");
        let ck = Checkpoint::from_trainer(&src);
        let mut dst = trainer(graph_seed, 3);
        ck.restore_into(&mut dst).expect("restore across P");
        prop_assert_eq!(weights(&src), weights(&dst), "restored replicas must match bitwise");
        let r = dst.train(1);
        prop_assert!(r.expect("train")[0].loss.is_finite());
    }
}
