//! Mutation harness for the static schedule verifier.
//!
//! Three claims pin `mggcn-analyze` to the real trainer:
//!
//! * **Zero false positives** — every schedule the trainer actually
//!   builds (`P ∈ {1, 2, 4, 8}` × op-order × overlap) analyzes clean,
//!   and its liveness coloring reproduces the §4.2 budget: exactly
//!   `L + 3` big buffers under overlap with `P ≥ 2`, fewer when the
//!   broadcasts serialize (the second broadcast buffer is bought *for*
//!   the overlap).
//! * **Zero false negatives** — deleting any load-bearing dependency
//!   edge, or swapping a stage's `BC1`/`BC2` double-buffer slot, is
//!   flagged. Edges whose removal leaves the pair happens-before-ordered
//!   through another path (same-lane FIFO, a collective rendezvous) are
//!   *redundant*: removing them must stay clean, which the harness
//!   proves instead of asserting blindly.
//! * **Findings are real** — one flagged WAR mutant is executed and its
//!   loss diverges from the f64 oracle the clean schedule matches: the
//!   analyzer's report corresponds to actual data corruption.

use mggcn_analyze::{analyze_budget, analyze_ops, BudgetSpec, Hb};
use mggcn_core::config::{GcnConfig, Partition, TrainOptions};
use mggcn_core::problem::Problem;
use mggcn_core::trainer::{sf_buffer_count, Trainer};
use mggcn_gpusim::{GpuSpec, MachineSpec, OpId};
use mggcn_graph::generators::sbm::{self, SbmConfig};
use mggcn_graph::Graph;
use mggcn_testkit::oracle::ReferenceGcn;
use mggcn_testkit::{rel_diff, P_LOSS_TOL};

fn graph() -> Graph {
    sbm::generate(&SbmConfig::community_benchmark(60, 3), 5)
}

fn trainer(g: &Graph, hidden: &[usize], gpus: usize, overlap: bool) -> Trainer {
    let cfg = GcnConfig::new(g.features.cols(), hidden, g.classes);
    let mut opts = TrainOptions::quick(gpus);
    opts.permute = false;
    opts.overlap = overlap;
    let problem = Problem::from_graph(g, &cfg, &opts);
    Trainer::new(problem, cfg, opts).expect("toy problem fits")
}

#[test]
fn real_schedules_analyze_clean_with_the_planned_buffer_count() {
    let g = graph();
    // hidden=8 shrinks (GeMM-first everywhere); hidden=64 widens layer 0,
    // so §4.4 swaps it to SpMM-first.
    for hidden in [&[8usize][..], &[64usize][..]] {
        for gpus in [1usize, 2, 4, 8] {
            for overlap in [true, false] {
                let t = trainer(&g, hidden, gpus, overlap);
                let layers = t.config().layers();
                let sched = t.epoch_schedule();
                let report = analyze_budget(&sched, &BudgetSpec::mg_gcn(layers));
                assert!(
                    report.clean(),
                    "hidden={hidden:?} P={gpus} overlap={overlap}:\n{}",
                    report.render()
                );
                let lv = report.liveness.as_ref().expect("liveness ran");
                let budget = layers + 3;
                if overlap && gpus >= 2 {
                    // The paper's configuration uses every budgeted buffer.
                    assert_eq!(
                        lv.buffers_needed,
                        budget,
                        "hidden={hidden:?} P={gpus}: overlap needs exactly L+3\n{}",
                        report.render()
                    );
                } else {
                    // Serialized broadcasts time-slice BC1/BC2; P=1 has a
                    // single stage and never names BC2.
                    assert!(
                        lv.buffers_needed < budget,
                        "hidden={hidden:?} P={gpus} overlap={overlap}: \
                         expected under-budget, got {}/{budget}",
                        lv.buffers_needed
                    );
                }
            }
        }
    }
}

#[test]
fn every_deleted_wait_edge_is_flagged_or_provably_redundant() {
    let g = graph();
    for (hidden, gpus, overlap) in
        [(&[8usize][..], 4, true), (&[8][..], 2, false), (&[64][..], 2, true)]
    {
        let t = trainer(&g, hidden, gpus, overlap);
        let edges = t.epoch_schedule().wait_edges();
        assert!(!edges.is_empty());
        let (mut flagged, mut redundant) = (0usize, 0usize);
        for &(op, wait) in &edges {
            let mut mutant = t.epoch_schedule();
            mutant.remove_wait(op, wait);
            let infos = mutant.op_infos();
            let hb = Hb::of_ops(&infos);
            // Removing an edge cannot create a cycle, so ordered() is
            // meaningful: the edge was redundant iff the pair stays
            // ordered through some other path.
            assert!(hb.cycle.is_none());
            let report = analyze_ops(&infos, None);
            if hb.ordered(wait, op) {
                redundant += 1;
                assert!(
                    report.clean(),
                    "P={gpus} overlap={overlap}: edge {wait}->{op} is redundant \
                     but its removal was flagged:\n{}",
                    report.render()
                );
            } else {
                flagged += 1;
                assert!(
                    !report.clean(),
                    "P={gpus} overlap={overlap}: load-bearing edge {wait}->{op} \
                     deleted without a finding (false negative)"
                );
            }
        }
        // Overlapped schedules carry real cross-stream edges; serialized
        // ones ride the lane FIFO, so every explicit wait is redundant.
        if overlap {
            assert!(flagged > 0, "no load-bearing edges among {}", edges.len());
        }
        assert!(redundant > 0, "no redundant edges among {}", edges.len());
    }
}

/// Swap one broadcast stage's double-buffer slot (writer and its readers
/// together, so the mutation is consistent — only the *pipelining* is
/// wrong, exactly the §4.3 bug class).
fn swap_bc_slot_of_stage(
    sched: &mut mggcn_gpusim::Schedule<mggcn_core::state::DeviceState>,
    stage: usize,
) {
    let infos = sched.op_infos();
    let bcast = infos
        .iter()
        .find(|o| o.desc.label == "bcast-H" && o.desc.stage == Some(stage))
        .expect("stage broadcast exists")
        .id;
    let group: Vec<OpId> = infos
        .iter()
        .filter(|o| o.id == bcast || (o.desc.label == "spmm" && o.waits.contains(&bcast)))
        .map(|o| o.id)
        .collect();
    drop(infos);
    for id in group {
        let fx = sched.effects_mut(id);
        for b in fx.reads.iter_mut().chain(fx.writes.iter_mut()) {
            b.name = match b.name {
                "BC1" => "BC2",
                "BC2" => "BC1",
                other => other,
            };
        }
    }
}

#[test]
fn bc_slot_swaps_are_flagged_exactly_when_overlapped() {
    let g = graph();
    for stage in 0..4 {
        // Overlapped: the swapped stage collides with its neighbors'
        // in-flight broadcasts — every stage must be flagged.
        let t = trainer(&g, &[8], 4, true);
        let mut mutant = t.epoch_schedule();
        swap_bc_slot_of_stage(&mut mutant, stage);
        let report = analyze_ops(&mutant.op_infos(), None);
        assert!(
            !report.clean(),
            "stage {stage} BC swap not flagged under overlap (false negative)"
        );

        // Serialized: broadcasts and consumers share one lane per GPU, so
        // slot choice is immaterial — the analyzer must agree.
        let t = trainer(&g, &[8], 4, false);
        let mut mutant = t.epoch_schedule();
        swap_bc_slot_of_stage(&mut mutant, stage);
        let report = analyze_ops(&mutant.op_infos(), None);
        assert!(
            report.clean(),
            "stage {stage} BC swap flagged under serialization (false positive):\n{}",
            report.render()
        );
    }
}

#[test]
fn flagged_war_mutant_corrupts_real_training() {
    // Near-instant communication so the mutant's early broadcast really
    // does land before its victim readers run.
    let g = graph();
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    let mut opts = TrainOptions::quick(4);
    opts.permute = false;
    opts.machine = MachineSpec::uniform("fast-comm", GpuSpec::a100(), 4, 12, 1.0e15);
    opts.machine.comm_latency = 0.0;
    opts.launch_overhead = 0.0;

    let mk = || {
        let problem = Problem::from_graph(&g, &cfg, &opts);
        Trainer::new(problem, cfg.clone(), opts.clone()).expect("fits")
    };

    let oracle_loss = ReferenceGcn::new(&g, &cfg).train_epoch().loss;
    let mut clean = mk();
    let clean_loss = clean.train_epoch().expect("clean epoch").loss;
    assert!(
        rel_diff(clean_loss, oracle_loss) < P_LOSS_TOL,
        "clean schedule diverges from oracle: {clean_loss} vs {oracle_loss}"
    );

    // Delete the WAR guards of forward stage 2's broadcast: the waits on
    // stage 0's SpMM readers of BC1. The broadcast may now overwrite BC1
    // while stage 0 is still consuming it.
    let mutant_trainer = mk();
    let mut sched = mutant_trainer.epoch_schedule();
    let (bcast, victim_waits): (OpId, Vec<OpId>) = {
        let infos = sched.op_infos();
        let b = infos
            .iter()
            .find(|o| o.desc.label == "bcast-H" && o.desc.stage == Some(2))
            .expect("stage-2 broadcast");
        let victims = b.waits.iter().copied().filter(|&w| infos[w].desc.label == "spmm").collect();
        (b.id, victims)
    };
    assert_eq!(victim_waits.len(), 4, "one WAR guard per reader GPU");
    for w in victim_waits {
        sched.remove_wait(bcast, w);
    }

    let report = analyze_ops(&sched.op_infos(), None);
    assert!(!report.clean(), "deleted WAR guards must be flagged");
    assert!(
        report.findings.iter().any(|f| f.to_string().contains("WAR hazard on BC1")),
        "expected a BC1 WAR finding, got:\n{}",
        report.render()
    );

    // Execute the mutant: the corruption the analyzer predicted is real.
    mutant_trainer.state().reset_scratch();
    sched.run(mutant_trainer.state());
    let mutant_loss = mutant_trainer.state().total_loss();
    assert!(
        rel_diff(mutant_loss, oracle_loss) > P_LOSS_TOL,
        "mutant loss {mutant_loss} still matches the oracle {oracle_loss} — \
         the flagged hazard did not manifest"
    );
}

// ---------------------------------------------------------------------------
// Bounded-staleness (DESIGN §15): the epoch-crossing happens-before pass.
// ---------------------------------------------------------------------------

fn stale_trainer(g: &Graph, gpus: usize, partition: Partition, k: usize) -> Trainer {
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    let mut opts = TrainOptions::quick(gpus);
    opts.permute = false;
    opts.partition = partition;
    opts.staleness = k;
    let problem = Problem::from_graph(g, &cfg, &opts);
    Trainer::new(problem, cfg, opts).expect("toy problem fits")
}

/// Every fused schedule the trainer builds analyzes clean under the
/// §15 budget (`L + 3` plus the SF snapshot family): all stale reads are
/// *declared*, so the epoch-crossing pass reports nothing — and the
/// claim is non-vacuous because the schedules really do carry StaleRead
/// declarations.
#[test]
fn pipelined_schedules_analyze_clean_with_declared_stale_reads() {
    let g = graph();
    for partition in [Partition::OneD, Partition::OneFiveD] {
        for gpus in [2usize, 4, 8] {
            for k in [1usize, 2] {
                let t = stale_trainer(&g, gpus, partition, k);
                let layers = t.config().layers();
                let sf = sf_buffer_count(t.config(), t.options());
                let base = match partition {
                    Partition::OneD => BudgetSpec::mg_gcn(layers),
                    Partition::OneFiveD => BudgetSpec::mg_gcn_15d(layers),
                };
                let sched = t.pipelined_schedule(3);
                let report = analyze_budget(&sched, &base.with_staleness(sf));
                assert!(
                    report.clean(),
                    "{} P={gpus} k={k}:\n{}",
                    partition.name(),
                    report.render()
                );
                let declared =
                    sched.op_infos().iter().filter(|o| !o.effects.stale_reads.is_empty()).count();
                assert!(
                    declared > 0,
                    "{} P={gpus} k={k}: no StaleRead declarations in a fused schedule",
                    partition.name()
                );
            }
        }
    }
}

/// Deleting any *cross-epoch* wait edge must surface as a finding or be
/// provably redundant (the pair stays happens-before-ordered through
/// another path, which leaves the HB closure — and hence every finding
/// class, including the stale-age computation — unchanged).
#[test]
fn deleted_cross_epoch_wait_edges_are_flagged_or_provably_redundant() {
    let g = graph();
    let t = stale_trainer(&g, 4, Partition::OneD, 1);
    let sched = t.pipelined_schedule(2);
    let infos = sched.op_infos();
    let cross: Vec<(OpId, OpId)> = sched
        .wait_edges()
        .into_iter()
        .filter(|&(op, wait)| {
            let (oe, we) = (infos[op].desc.epoch, infos[wait].desc.epoch);
            oe.is_some() && we.is_some() && oe != we
        })
        .collect();
    drop(infos);
    assert!(!cross.is_empty(), "fused schedule has no cross-epoch edges");

    let (mut flagged, mut redundant) = (0usize, 0usize);
    for &(op, wait) in &cross {
        let mut mutant = t.pipelined_schedule(2);
        mutant.remove_wait(op, wait);
        let infos = mutant.op_infos();
        let hb = Hb::of_ops(&infos);
        assert!(hb.cycle.is_none());
        let report = analyze_ops(&infos, None);
        if hb.ordered(wait, op) {
            redundant += 1;
            assert!(
                report.clean(),
                "cross-epoch edge {wait}->{op} is redundant but flagged:\n{}",
                report.render()
            );
        } else {
            flagged += 1;
            assert!(
                !report.clean(),
                "load-bearing cross-epoch edge {wait}->{op} deleted without a \
                 finding (false negative)"
            );
        }
    }
    assert!(flagged > 0, "no load-bearing cross-epoch edges among {}", cross.len());
    assert!(redundant > 0, "no redundant cross-epoch edges among {}", cross.len());
}

/// Stripping the StaleRead declaration off one prefetch broadcast turns
/// it into an *undeclared* stale read: the analyzer must flag exactly
/// that class, and executing the mutant on a fast-comm machine shows the
/// flagged read really does consume old state — the stale epoch's loss
/// measurably diverges from the fresh f64 oracle that the k = 0 pipeline
/// matches on the same machine.
#[test]
fn undeclared_stale_read_mutant_is_flagged_and_corrupts_loss() {
    let g = graph();
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    let mut opts = TrainOptions::quick(4);
    opts.permute = false;
    opts.machine = MachineSpec::uniform("fast-comm", GpuSpec::a100(), 4, 12, 1.0e15);
    opts.machine.comm_latency = 0.0;
    opts.launch_overhead = 0.0;

    // Fresh trainer matches the oracle at epoch 1 on this machine.
    let mut oracle = ReferenceGcn::new(&g, &cfg);
    let oracle_loss = oracle.train(2).last().expect("epochs").loss;
    let problem = Problem::from_graph(&g, &cfg, &opts);
    let mut fresh = Trainer::new(problem, cfg.clone(), opts.clone()).expect("fits");
    let fresh_loss = fresh.train(2).expect("train").last().expect("epochs").loss;
    assert!(
        rel_diff(fresh_loss, oracle_loss) < P_LOSS_TOL,
        "fresh pipeline diverges from oracle: {fresh_loss} vs {oracle_loss}"
    );

    opts.staleness = 1;
    let problem = Problem::from_graph(&g, &cfg, &opts);
    let t = Trainer::new(problem, cfg.clone(), opts).expect("fits");
    let mut sched = t.pipelined_schedule(2);
    let victim = sched
        .op_infos()
        .iter()
        .find(|o| o.desc.epoch == Some(1) && !o.effects.stale_reads.is_empty())
        .expect("epoch-1 prefetch broadcast declares a stale read")
        .id;
    sched.effects_mut(victim).stale_reads.clear();

    let report = analyze_ops(&sched.op_infos(), None);
    let stale_findings: Vec<String> = report
        .findings
        .iter()
        .map(|f| f.to_string())
        .filter(|s| s.contains("undeclared stale read"))
        .collect();
    assert!(
        !stale_findings.is_empty(),
        "stripping the declaration must surface an undeclared StaleRead:\n{}",
        report.render()
    );

    // Execute: the flagged read genuinely consumes epoch-0 state.
    t.state().reset_scratch();
    sched.run(t.state());
    let stale_loss: f64 = (0..4).map(|gpu| t.state().gpu(gpu).epoch_stats[1].0).sum();
    assert!(
        rel_diff(stale_loss, oracle_loss) > P_LOSS_TOL,
        "undeclared stale read did not manifest: epoch-1 loss {stale_loss} \
         still matches the fresh oracle {oracle_loss}"
    );
}
