//! Mutation harness for the static schedule verifier.
//!
//! Three claims pin `mggcn-analyze` to the real trainer:
//!
//! * **Zero false positives** — every schedule the trainer actually
//!   builds (`P ∈ {1, 2, 4, 8}` × op-order × overlap) analyzes clean,
//!   and its liveness coloring reproduces the §4.2 budget: exactly
//!   `L + 3` big buffers under overlap with `P ≥ 2`, fewer when the
//!   broadcasts serialize (the second broadcast buffer is bought *for*
//!   the overlap).
//! * **Zero false negatives** — deleting any load-bearing dependency
//!   edge, or swapping a stage's `BC1`/`BC2` double-buffer slot, is
//!   flagged. Edges whose removal leaves the pair happens-before-ordered
//!   through another path (same-lane FIFO, a collective rendezvous) are
//!   *redundant*: removing them must stay clean, which the harness
//!   proves instead of asserting blindly.
//! * **Findings are real** — one flagged WAR mutant is executed and its
//!   loss diverges from the f64 oracle the clean schedule matches: the
//!   analyzer's report corresponds to actual data corruption.

use mggcn_analyze::{analyze_budget, analyze_ops, BudgetSpec, Hb};
use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_gpusim::{GpuSpec, MachineSpec, OpId};
use mggcn_graph::generators::sbm::{self, SbmConfig};
use mggcn_graph::Graph;
use mggcn_testkit::oracle::ReferenceGcn;
use mggcn_testkit::{rel_diff, P_LOSS_TOL};

fn graph() -> Graph {
    sbm::generate(&SbmConfig::community_benchmark(60, 3), 5)
}

fn trainer(g: &Graph, hidden: &[usize], gpus: usize, overlap: bool) -> Trainer {
    let cfg = GcnConfig::new(g.features.cols(), hidden, g.classes);
    let mut opts = TrainOptions::quick(gpus);
    opts.permute = false;
    opts.overlap = overlap;
    let problem = Problem::from_graph(g, &cfg, &opts);
    Trainer::new(problem, cfg, opts).expect("toy problem fits")
}

#[test]
fn real_schedules_analyze_clean_with_the_planned_buffer_count() {
    let g = graph();
    // hidden=8 shrinks (GeMM-first everywhere); hidden=64 widens layer 0,
    // so §4.4 swaps it to SpMM-first.
    for hidden in [&[8usize][..], &[64usize][..]] {
        for gpus in [1usize, 2, 4, 8] {
            for overlap in [true, false] {
                let t = trainer(&g, hidden, gpus, overlap);
                let layers = t.config().layers();
                let sched = t.epoch_schedule();
                let report = analyze_budget(&sched, &BudgetSpec::mg_gcn(layers));
                assert!(
                    report.clean(),
                    "hidden={hidden:?} P={gpus} overlap={overlap}:\n{}",
                    report.render()
                );
                let lv = report.liveness.as_ref().expect("liveness ran");
                let budget = layers + 3;
                if overlap && gpus >= 2 {
                    // The paper's configuration uses every budgeted buffer.
                    assert_eq!(
                        lv.buffers_needed,
                        budget,
                        "hidden={hidden:?} P={gpus}: overlap needs exactly L+3\n{}",
                        report.render()
                    );
                } else {
                    // Serialized broadcasts time-slice BC1/BC2; P=1 has a
                    // single stage and never names BC2.
                    assert!(
                        lv.buffers_needed < budget,
                        "hidden={hidden:?} P={gpus} overlap={overlap}: \
                         expected under-budget, got {}/{budget}",
                        lv.buffers_needed
                    );
                }
            }
        }
    }
}

#[test]
fn every_deleted_wait_edge_is_flagged_or_provably_redundant() {
    let g = graph();
    for (hidden, gpus, overlap) in
        [(&[8usize][..], 4, true), (&[8][..], 2, false), (&[64][..], 2, true)]
    {
        let t = trainer(&g, hidden, gpus, overlap);
        let edges = t.epoch_schedule().wait_edges();
        assert!(!edges.is_empty());
        let (mut flagged, mut redundant) = (0usize, 0usize);
        for &(op, wait) in &edges {
            let mut mutant = t.epoch_schedule();
            mutant.remove_wait(op, wait);
            let infos = mutant.op_infos();
            let hb = Hb::of_ops(&infos);
            // Removing an edge cannot create a cycle, so ordered() is
            // meaningful: the edge was redundant iff the pair stays
            // ordered through some other path.
            assert!(hb.cycle.is_none());
            let report = analyze_ops(&infos, None);
            if hb.ordered(wait, op) {
                redundant += 1;
                assert!(
                    report.clean(),
                    "P={gpus} overlap={overlap}: edge {wait}->{op} is redundant \
                     but its removal was flagged:\n{}",
                    report.render()
                );
            } else {
                flagged += 1;
                assert!(
                    !report.clean(),
                    "P={gpus} overlap={overlap}: load-bearing edge {wait}->{op} \
                     deleted without a finding (false negative)"
                );
            }
        }
        // Overlapped schedules carry real cross-stream edges; serialized
        // ones ride the lane FIFO, so every explicit wait is redundant.
        if overlap {
            assert!(flagged > 0, "no load-bearing edges among {}", edges.len());
        }
        assert!(redundant > 0, "no redundant edges among {}", edges.len());
    }
}

/// Swap one broadcast stage's double-buffer slot (writer and its readers
/// together, so the mutation is consistent — only the *pipelining* is
/// wrong, exactly the §4.3 bug class).
fn swap_bc_slot_of_stage(
    sched: &mut mggcn_gpusim::Schedule<mggcn_core::state::DeviceState>,
    stage: usize,
) {
    let infos = sched.op_infos();
    let bcast = infos
        .iter()
        .find(|o| o.desc.label == "bcast-H" && o.desc.stage == Some(stage))
        .expect("stage broadcast exists")
        .id;
    let group: Vec<OpId> = infos
        .iter()
        .filter(|o| o.id == bcast || (o.desc.label == "spmm" && o.waits.contains(&bcast)))
        .map(|o| o.id)
        .collect();
    drop(infos);
    for id in group {
        let fx = sched.effects_mut(id);
        for b in fx.reads.iter_mut().chain(fx.writes.iter_mut()) {
            b.name = match b.name {
                "BC1" => "BC2",
                "BC2" => "BC1",
                other => other,
            };
        }
    }
}

#[test]
fn bc_slot_swaps_are_flagged_exactly_when_overlapped() {
    let g = graph();
    for stage in 0..4 {
        // Overlapped: the swapped stage collides with its neighbors'
        // in-flight broadcasts — every stage must be flagged.
        let t = trainer(&g, &[8], 4, true);
        let mut mutant = t.epoch_schedule();
        swap_bc_slot_of_stage(&mut mutant, stage);
        let report = analyze_ops(&mutant.op_infos(), None);
        assert!(
            !report.clean(),
            "stage {stage} BC swap not flagged under overlap (false negative)"
        );

        // Serialized: broadcasts and consumers share one lane per GPU, so
        // slot choice is immaterial — the analyzer must agree.
        let t = trainer(&g, &[8], 4, false);
        let mut mutant = t.epoch_schedule();
        swap_bc_slot_of_stage(&mut mutant, stage);
        let report = analyze_ops(&mutant.op_infos(), None);
        assert!(
            report.clean(),
            "stage {stage} BC swap flagged under serialization (false positive):\n{}",
            report.render()
        );
    }
}

#[test]
fn flagged_war_mutant_corrupts_real_training() {
    // Near-instant communication so the mutant's early broadcast really
    // does land before its victim readers run.
    let g = graph();
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    let mut opts = TrainOptions::quick(4);
    opts.permute = false;
    opts.machine = MachineSpec::uniform("fast-comm", GpuSpec::a100(), 4, 12, 1.0e15);
    opts.machine.comm_latency = 0.0;
    opts.launch_overhead = 0.0;

    let mk = || {
        let problem = Problem::from_graph(&g, &cfg, &opts);
        Trainer::new(problem, cfg.clone(), opts.clone()).expect("fits")
    };

    let oracle_loss = ReferenceGcn::new(&g, &cfg).train_epoch().loss;
    let mut clean = mk();
    let clean_loss = clean.train_epoch().expect("clean epoch").loss;
    assert!(
        rel_diff(clean_loss, oracle_loss) < P_LOSS_TOL,
        "clean schedule diverges from oracle: {clean_loss} vs {oracle_loss}"
    );

    // Delete the WAR guards of forward stage 2's broadcast: the waits on
    // stage 0's SpMM readers of BC1. The broadcast may now overwrite BC1
    // while stage 0 is still consuming it.
    let mutant_trainer = mk();
    let mut sched = mutant_trainer.epoch_schedule();
    let (bcast, victim_waits): (OpId, Vec<OpId>) = {
        let infos = sched.op_infos();
        let b = infos
            .iter()
            .find(|o| o.desc.label == "bcast-H" && o.desc.stage == Some(2))
            .expect("stage-2 broadcast");
        let victims = b.waits.iter().copied().filter(|&w| infos[w].desc.label == "spmm").collect();
        (b.id, victims)
    };
    assert_eq!(victim_waits.len(), 4, "one WAR guard per reader GPU");
    for w in victim_waits {
        sched.remove_wait(bcast, w);
    }

    let report = analyze_ops(&sched.op_infos(), None);
    assert!(!report.clean(), "deleted WAR guards must be flagged");
    assert!(
        report.findings.iter().any(|f| f.to_string().contains("WAR hazard on BC1")),
        "expected a BC1 WAR finding, got:\n{}",
        report.render()
    );

    // Execute the mutant: the corruption the analyzer predicted is real.
    mutant_trainer.state().reset_scratch();
    sched.run(mutant_trainer.state());
    let mutant_loss = mutant_trainer.state().total_loss();
    assert!(
        rel_diff(mutant_loss, oracle_loss) > P_LOSS_TOL,
        "mutant loss {mutant_loss} still matches the oracle {oracle_loss} — \
         the flagged hazard did not manifest"
    );
}
