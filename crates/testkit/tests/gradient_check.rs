//! Finite-difference gradient checking (ISSUE acceptance: ≤ 1e-6 max
//! relative error on every layer) plus the trainer-vs-oracle differential.
//!
//! The chain of trust: central differences on the oracle's f64 loss
//! validate the oracle's analytic backward to ~1e-8; the trainer's f32
//! gradients then validate against the oracle's analytic gradients at the
//! f32-noise tolerance. Together they pin `trainer::backward` to the loss
//! surface with no shared code between the two implementations.

use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_graph::generators::sbm::{self, SbmConfig};
use mggcn_graph::Graph;
use mggcn_testkit::dense64::{max_rel_diff_f32, M64};
use mggcn_testkit::oracle::ReferenceGcn;
use mggcn_testkit::{FD_GRAD_TOL, REL_FLOOR, TRAINER_VS_ORACLE_TOL};

fn setup(hidden: &[usize]) -> (Graph, GcnConfig) {
    let g = sbm::generate(&SbmConfig::community_benchmark(48, 3), 17);
    let cfg = GcnConfig::new(g.features.cols(), hidden, g.classes);
    (g, cfg)
}

/// Central-difference gradient of the oracle's *objective* (mean loss;
/// the reported loss is a sum, the gradient descends the mean) w.r.t.
/// layer `l`.
fn fd_gradient(oracle: &ReferenceGcn, weights: &[M64], l: usize) -> M64 {
    let inv_n = 1.0 / oracle.train_count() as f64;
    let (rows, cols) = (weights[l].rows(), weights[l].cols());
    let mut grad = M64::zeros(rows, cols);
    let mut probe: Vec<M64> = weights.to_vec();
    for r in 0..rows {
        for c in 0..cols {
            let w0 = weights[l].get(r, c);
            let h = 1e-6 * w0.abs().max(1.0);
            probe[l].set(r, c, w0 + h);
            let up = oracle.loss_at(&probe);
            probe[l].set(r, c, w0 - h);
            let down = oracle.loss_at(&probe);
            probe[l].set(r, c, w0);
            grad.set(r, c, inv_n * (up - down) / (2.0 * h));
        }
    }
    grad
}

fn check_layers(oracle: &ReferenceGcn, label: &str) {
    let (_, analytic) = oracle.gradients();
    let weights = oracle.weights.clone();
    for (l, a) in analytic.iter().enumerate() {
        let fd = fd_gradient(oracle, &weights, l);
        let scale = fd.max_abs().max(REL_FLOOR);
        let err = fd.max_abs_diff(a) / scale;
        assert!(
            err <= FD_GRAD_TOL,
            "{label} layer {l}: FD vs analytic rel error {err:.3e} > {FD_GRAD_TOL:.0e}"
        );
    }
}

#[test]
fn oracle_analytic_gradients_match_finite_differences() {
    let (g, cfg) = setup(&[8]);
    check_layers(&ReferenceGcn::new(&g, &cfg), "2-layer");
}

#[test]
fn finite_differences_hold_for_three_layer_model() {
    let (g, cfg) = setup(&[6, 10]);
    check_layers(&ReferenceGcn::new(&g, &cfg), "3-layer");
}

#[test]
fn finite_differences_hold_after_training_moves_the_weights() {
    // At initialization gradients can be atypically well-behaved; re-check
    // at a point Adam actually visits.
    let (g, cfg) = setup(&[8]);
    let mut oracle = ReferenceGcn::new(&g, &cfg);
    oracle.train(5);
    check_layers(&oracle, "trained");
}

#[test]
fn trainer_gradients_match_oracle_on_every_layer() {
    let (g, cfg) = setup(&[8]);
    for gpus in [1usize, 3] {
        let mut opts = TrainOptions::quick(gpus);
        opts.permute = false;
        let problem = Problem::from_graph(&g, &cfg, &opts);
        let mut trainer = Trainer::new(problem, cfg.clone(), opts).expect("fits");
        let got = trainer.compute_gradients();
        let oracle = ReferenceGcn::new(&g, &cfg);
        let (_, want) = oracle.gradients();
        assert_eq!(got.len(), want.len());
        for l in 0..got.len() {
            let err = max_rel_diff_f32(&want[l], &got[l], REL_FLOOR);
            assert!(
                err <= TRAINER_VS_ORACLE_TOL,
                "P={gpus} layer {l}: trainer vs oracle rel error {err:.3e}"
            );
        }
    }
}

#[test]
fn compute_gradients_does_not_advance_training() {
    let (g, cfg) = setup(&[8]);
    let opts = TrainOptions::quick(2);
    let problem = Problem::from_graph(&g, &cfg, &opts);
    let mut trainer = Trainer::new(problem, cfg.clone(), opts).expect("fits");
    let before: Vec<Vec<f32>> =
        trainer.state().gpu(0).weights.iter().map(|w| w.as_slice().to_vec()).collect();
    let _ = trainer.compute_gradients();
    let after: Vec<Vec<f32>> =
        trainer.state().gpu(0).weights.iter().map(|w| w.as_slice().to_vec()).collect();
    assert_eq!(before, after, "probing gradients must not update weights");
    assert_eq!(trainer.epochs_trained(), 0);
}
