//! Failure semantics of the threaded execution backend: a panicking op
//! body must surface as a prompt `Err` from `train_epoch` — never a
//! deadlock — and must not corrupt anything a checkpoint restore cannot
//! repair.
//!
//! The injected fault fires inside an arbitrary kernel body mid-epoch,
//! while other workers are blocked on barriers and fences that the dead
//! worker will never signal. The executor's failure flag plus its
//! re-checking waits turn that into bounded-time unwinding. This file
//! holds exactly one test because the injection counter is process-wide
//! state.

use mggcn_core::checkpoint::Checkpoint;
use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_exec::Backend;
use mggcn_graph::generators::sbm::{self, SbmConfig};
use std::time::{Duration, Instant};

#[test]
fn injected_worker_panic_fails_fast_and_checkpoint_recovers() {
    if std::env::var("MGGCN_THREADS").is_err() {
        std::env::set_var("MGGCN_THREADS", "4");
    }
    let g = sbm::generate(&SbmConfig::community_benchmark(96, 3), 17);
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    let mut opts = TrainOptions::quick(4);
    opts.backend = Backend::Threaded;
    let trainer = |opts: &TrainOptions| {
        let problem = Problem::from_graph(&g, &cfg, opts);
        Trainer::new(problem, cfg.clone(), opts.clone()).expect("fits")
    };

    // Healthy prefix: two threaded epochs, then checkpoint.
    let mut t = trainer(&opts);
    t.train(2).expect("healthy epochs");
    let ck = Checkpoint::from_trainer(&t);

    // Inject: the 5th body of the next epoch panics on whichever worker
    // claims it. The epoch must fail, promptly.
    mggcn_exec::inject_panic_at_body(5);
    let start = Instant::now();
    let err = t.train_epoch().expect_err("a panicking worker must fail the epoch");
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(30),
        "failure took {elapsed:?}; workers must not hang on a dead peer"
    );
    let msg = err.to_string();
    assert!(msg.contains("injected fault"), "error lost the panic payload: {msg}");
    assert!(msg.contains("panicked"), "error does not name the failure mode: {msg}");

    // Recovery: restore the pre-fault checkpoint into the *same* trainer
    // (whose device state the aborted epoch may have half-written) and
    // train on. The result must be bit-identical to a fresh trainer
    // resumed from the same checkpoint — the fault left no residue a
    // restore cannot clear.
    ck.restore_into(&mut t).expect("restore into the faulted trainer");
    let after = t.train_epoch().expect("training must continue after recovery");
    assert!(after.loss.is_finite());

    let mut clean = trainer(&opts);
    ck.restore_into(&mut clean).expect("restore into a fresh trainer");
    let want = clean.train_epoch().expect("clean resumed epoch");
    assert_eq!(after.loss, want.loss, "recovered epoch loss must be bit-identical");
    let (ga, gb) = (t.state().gpu(0), clean.state().gpu(0));
    for (l, (x, y)) in ga.weights.iter().zip(&gb.weights).enumerate() {
        assert_eq!(x.as_slice(), y.as_slice(), "recovered weights differ at layer {l}");
    }
}
