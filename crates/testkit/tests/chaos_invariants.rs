//! Chaos conformance suite: seeded fault plans against every subsystem
//! that dispatches through the `mggcn-sched` core, proving three
//! invariants per scenario class:
//!
//! 1. **No deadlock** — every run terminates within a structural bound,
//!    with `Ok` or a *labeled* error (a tagged `ExecError` or a `Stall`
//!    naming the stuck lanes). Never a hang, never an anonymous panic.
//! 2. **No silent corruption** — runs that survive injection produce
//!    results bit-identical to the fault-free oracle; runs that do not
//!    survive fail loudly.
//! 3. **Graceful degradation** — cluster shard/cache-node loss yields
//!    tagged degraded answers with a fixed host-side latency bound,
//!    never timeouts, while surviving shards stay bit-identical.
//!
//! Every scenario is derived from a seed (`FaultPlan::seeded`), so any
//! CI failure replays exactly with
//! `MGGCN_CHAOS_SEED=<seed> cargo test -p mggcn-testkit --test chaos_invariants`.
//! `MGGCN_CHAOS_SEEDS=<n>` widens the sweep (seeds `base..base+n`).

use mggcn_cluster::{AdmissionPolicy, Cluster, ClusterConfig};
use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_dense::Dense;
use mggcn_exec::{execute, execute_chaos};
use mggcn_gpusim::engine::OpDesc;
use mggcn_gpusim::{Category, GpuSpec, MachineSpec, Schedule, Work};
use mggcn_graph::generators::chung_lu;
use mggcn_graph::generators::sbm::{self, SbmConfig};
use mggcn_sched::{
    chaos_seed, chaos_seed_count, FaultPlan, Injector, Kill, Policy, Scenario, ShardLoss,
};
use mggcn_serve::{BatchPolicy, LoadGenConfig, Request, ServingModel};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Generous wall-clock ceiling for "bounded": everything here simulates
/// or runs millisecond-scale bodies, so half a minute means a hang.
const BOUND: Duration = Duration::from_secs(30);

fn seeds() -> Vec<u64> {
    let base = chaos_seed();
    (0..chaos_seed_count(3) as u64).map(|i| base.wrapping_add(i)).collect()
}

/// A real 2-GPU training epoch schedule — collectives, waits, multiple
/// streams — the richest dispatch structure the repo produces.
fn epoch_schedule(gpus: usize) -> Schedule<mggcn_core::state::DeviceState> {
    let g = sbm::generate(&SbmConfig::community_benchmark(60, 3), 5);
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    let mut opts = TrainOptions::quick(gpus);
    opts.permute = false;
    let problem = Problem::from_graph(&g, &cfg, &opts);
    let trainer = Trainer::new(problem, cfg, opts).expect("fits");
    trainer.epoch_schedule()
}

// ---------------------------------------------------------------------
// Oracle identity: the injection machinery itself must cost nothing.
// ---------------------------------------------------------------------

#[test]
fn noop_injector_is_bit_identical_to_the_legacy_simulator() {
    let s = epoch_schedule(2);
    let base = s.simulate();
    let alt = s
        .simulate_with(Policy::DiscreteEvent, &Injector::none())
        .expect("fault-free run cannot stall");
    assert_eq!(
        base.report.makespan.to_bits(),
        alt.report.makespan.to_bits(),
        "makespan drifted under the no-op injector"
    );
    assert_eq!(base.completion_order, alt.completion_order);
    assert_eq!(base.report.ops_executed, alt.report.ops_executed);
}

// ---------------------------------------------------------------------
// Scenario: slow links (recoverable — the run completes, just later).
// ---------------------------------------------------------------------

#[test]
fn slow_links_terminate_and_never_beat_the_fault_free_oracle() {
    let s = epoch_schedule(2);
    let base = s.simulate();
    let mut base_set = base.completion_order.clone();
    base_set.sort_unstable();
    for seed in seeds() {
        let plan = FaultPlan::seeded(seed, Scenario::SlowLink { gpus: 2 });
        let start = Instant::now();
        let a = s
            .simulate_with(Policy::DiscreteEvent, &Injector::new(plan.clone()))
            .unwrap_or_else(|st| panic!("slow links must be recoverable (seed {seed}): {st}"));
        assert!(start.elapsed() < BOUND, "seed {seed} blew the time bound");
        assert!(
            a.report.makespan >= base.report.makespan * (1.0 - 1e-12),
            "seed {seed}: slowing links sped the run up ({} < {})",
            a.report.makespan,
            base.report.makespan
        );
        let mut set = a.completion_order.clone();
        set.sort_unstable();
        assert_eq!(set, base_set, "seed {seed}: ops lost or duplicated");
        // Replay: the same seed must reproduce the run bit for bit.
        let b = s.simulate_with(Policy::DiscreteEvent, &Injector::new(plan)).expect("replay");
        assert_eq!(a.report.makespan.to_bits(), b.report.makespan.to_bits(), "seed {seed}");
        assert_eq!(a.completion_order, b.completion_order, "seed {seed}");
    }
}

// ---------------------------------------------------------------------
// Scenario: NIC degradation on a multi-node 1.5D run (recoverable).
// ---------------------------------------------------------------------

/// A 1.5D epoch schedule on a 2-node × 2-GPU hierarchical machine —
/// group broadcasts on NVLink, pairwise cross-group reductions over the
/// NIC — the schedule class `Scenario::NicDegrade` is aimed at.
fn epoch_schedule_15d_multinode() -> Schedule<mggcn_core::state::DeviceState> {
    let g = sbm::generate(&SbmConfig::community_benchmark(60, 3), 5);
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    let machine = MachineSpec::hier_cluster("chaos-2x2", GpuSpec::a100(), 2, 2, 12, 25.0e9, 50.0e9);
    let mut opts = TrainOptions::full(machine, 4);
    opts.partition = mggcn_core::config::Partition::OneFiveD;
    opts.permute = false;
    let problem = Problem::from_graph(&g, &cfg, &opts);
    let trainer = Trainer::new(problem, cfg, opts).expect("fits");
    trainer.epoch_schedule()
}

#[test]
fn nic_degrade_delays_15d_multinode_runs_but_loses_nothing() {
    let s = epoch_schedule_15d_multinode();
    let base = s.simulate();
    let mut base_set = base.completion_order.clone();
    base_set.sort_unstable();
    for seed in seeds() {
        let plan = FaultPlan::seeded(seed, Scenario::NicDegrade { nodes: 2, gpus_per_node: 2 });
        let start = Instant::now();
        let a = s
            .simulate_with(Policy::DiscreteEvent, &Injector::new(plan.clone()))
            .unwrap_or_else(|st| panic!("NIC degradation must be recoverable (seed {seed}): {st}"));
        assert!(start.elapsed() < BOUND, "seed {seed} blew the time bound");
        // Lossless: every op completes, exactly once.
        let mut set = a.completion_order.clone();
        set.sort_unstable();
        assert_eq!(set, base_set, "seed {seed}: ops lost or duplicated");
        assert_eq!(a.report.ops_executed, base.report.ops_executed, "seed {seed}");
        // Just later: a degraded fabric can never beat the healthy one.
        assert!(
            a.report.makespan >= base.report.makespan * (1.0 - 1e-12),
            "seed {seed}: degrading the NIC sped the run up ({} < {})",
            a.report.makespan,
            base.report.makespan
        );
        // Replay: the seed is the whole story.
        let b = s.simulate_with(Policy::DiscreteEvent, &Injector::new(plan)).expect("replay");
        assert_eq!(a.report.makespan.to_bits(), b.report.makespan.to_bits(), "seed {seed}");
        assert_eq!(a.completion_order, b.completion_order, "seed {seed}");
    }
}

// ---------------------------------------------------------------------
// Scenario: worker death (unrecoverable in the sim — bounded, labeled).
// ---------------------------------------------------------------------

#[test]
fn sim_worker_death_stalls_bounded_with_the_stuck_lanes_named() {
    let s = epoch_schedule(2);
    // Kill op 0 at promotion regardless of which GPU hosts it: lanes
    // behind it block and the run must surface a labeled stall.
    let plan =
        FaultPlan { kills: (0..2).map(|g| Kill { gpu: g, seq: 0 }).collect(), ..FaultPlan::none() };
    let start = Instant::now();
    let stall = match s.simulate_with(Policy::DiscreteEvent, &Injector::new(plan)) {
        Err(stall) => stall,
        Ok(_) => panic!("a killed head op must stall the schedule"),
    };
    assert!(start.elapsed() < BOUND, "stall detection must be bounded");
    assert!(!stall.stuck.is_empty(), "stall must name the blocked work");
    assert!(
        stall.stuck.iter().all(|l| l.contains("lane")),
        "stuck entries keep the legacy lane format: {:?}",
        stall.stuck
    );
}

#[test]
fn seeded_worker_death_either_fails_labeled_or_matches_the_oracle() {
    let s = epoch_schedule(2);
    let base = s.simulate();
    let n_ops = base.report.ops_executed;
    for seed in seeds() {
        let plan = FaultPlan::seeded(seed, Scenario::WorkerDeath { gpus: 2, ops_per_gpu: n_ops });
        let start = Instant::now();
        match s.simulate_with(Policy::DiscreteEvent, &Injector::new(plan)) {
            // The kill coordinate missed (wrong GPU for that op id):
            // the run must then be indistinguishable from fault-free.
            Ok(out) => {
                assert_eq!(out.report.makespan.to_bits(), base.report.makespan.to_bits());
                assert_eq!(out.completion_order, base.completion_order);
            }
            Err(stall) => {
                assert!(!stall.stuck.is_empty(), "seed {seed}: unlabeled stall");
            }
        }
        assert!(start.elapsed() < BOUND, "seed {seed} blew the time bound");
    }
}

// ---------------------------------------------------------------------
// Lockstep conformance: CycleSync is a debugging view of the same run.
// ---------------------------------------------------------------------

#[test]
fn cyclesync_retires_the_same_ops_with_quantized_makespan() {
    let s = epoch_schedule(2);
    let base = s.simulate();
    let quantum = (base.report.makespan / 512.0).max(1e-7);
    let lock = s
        .simulate_with(Policy::CycleSync { quantum }, &Injector::none())
        .expect("lockstep run cannot stall");
    assert_eq!(lock.report.ops_executed, base.report.ops_executed);
    let (mut a, mut b) = (lock.completion_order.clone(), base.completion_order.clone());
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "lockstep lost or duplicated ops");
    // Completions quantize to grid points: never earlier than the DES
    // oracle, and at most one quantum of slack per retirement round.
    assert!(lock.report.makespan >= base.report.makespan - 1e-12);
    let bound = base.report.makespan + quantum * (base.report.ops_executed as f64 + 2.0);
    assert!(
        lock.report.makespan <= bound,
        "lockstep makespan {} exceeds quantized bound {bound}",
        lock.report.makespan
    );
}

// ---------------------------------------------------------------------
// Threaded executor: preemption is transparent, death is tagged.
// ---------------------------------------------------------------------

fn exec_machine(gpus: usize) -> MachineSpec {
    MachineSpec::uniform("chaos", GpuSpec::v100(), gpus, 6, 25.0e9)
}

fn writer_schedule(gpus: usize) -> Schedule<Mutex<Vec<usize>>> {
    let mut s: Schedule<Mutex<Vec<usize>>> = Schedule::new(exec_machine(gpus));
    for g in 0..gpus {
        s.launch(
            g,
            0,
            Work::Fixed { seconds: 1e-6 },
            OpDesc::new(Category::GeMM, "write"),
            &[],
            Some(Box::new(move |l: &Mutex<Vec<usize>>| l.lock().unwrap().push(g))),
        );
    }
    s
}

#[test]
fn exec_preemption_leaves_results_bit_identical_to_fault_free() {
    let oracle = Mutex::new(Vec::new());
    execute(writer_schedule(2), &oracle).expect("fault-free run");
    let mut want = std::mem::take(&mut *oracle.lock().unwrap());
    want.sort_unstable();

    for seed in seeds() {
        let plan = FaultPlan::seeded(
            seed,
            Scenario::Preemption { gpus: 2, ops_per_gpu: 1, max_pause: 5e-3 },
        );
        let inj = Injector::new(plan);
        let ctx = Mutex::new(Vec::new());
        let start = Instant::now();
        let r = execute_chaos(writer_schedule(2), &ctx, &inj)
            .unwrap_or_else(|e| panic!("preemption must be recoverable (seed {seed}): {e}"));
        assert!(start.elapsed() < BOUND, "seed {seed} blew the time bound");
        assert_eq!(r.bodies_run, 2, "seed {seed}: a paused body was dropped");
        let mut got = std::mem::take(&mut *ctx.lock().unwrap());
        got.sort_unstable();
        assert_eq!(got, want, "seed {seed}: pause corrupted results");
    }
}

#[test]
fn exec_death_mid_collective_fails_bounded_and_tagged_for_every_seed() {
    for seed in seeds() {
        // Every worker's first dispatch is the collective, so whichever
        // GPU the seed picks, the kill fires mid-rendezvous.
        let plan = FaultPlan::seeded(seed, Scenario::WorkerDeath { gpus: 4, ops_per_gpu: 1 });
        let mut s: Schedule<()> = Schedule::new(exec_machine(4));
        let lanes: Vec<(usize, usize)> = (0..4).map(|g| (g, 0)).collect();
        s.collective(&lanes, 1.0e6, 25.0e9, OpDesc::new(Category::Comm, "allreduce"), &[], None);
        let start = Instant::now();
        let err = execute_chaos(s, &(), &Injector::new(plan))
            .expect_err("a dead rendezvous participant must fail the run");
        assert!(start.elapsed() < BOUND, "seed {seed}: peers hung on the dead worker");
        assert!(
            err.message.contains("injected worker death"),
            "seed {seed}: untagged error: {err}"
        );
    }
}

// ---------------------------------------------------------------------
// Cluster: shard/cache-node loss degrades gracefully, never times out.
// ---------------------------------------------------------------------

fn serving_model(n: usize) -> ServingModel {
    let adj = chung_lu::generate(&vec![4u32; n], 9);
    let feats = Dense::from_fn(n, 6, |r, c| ((r + 2 * c) as f32).sin());
    let w0 = Dense::from_fn(6, 5, |r, c| ((r * 2 + c) as f32).cos() * 0.3);
    let w1 = Dense::from_fn(5, 3, |r, c| ((r + 3 * c) as f32).sin() * 0.3);
    ServingModel::from_parts(vec![w0, w1], adj, feats).expect("valid model")
}

fn cluster_and_trace(model: &ServingModel) -> (Cluster, Vec<Request>) {
    let mut cfg = ClusterConfig::new(2, 1, BatchPolicy::new(1e-3, 8));
    cfg.admission = AdmissionPolicy::unbounded();
    let cluster = Cluster::new(model, cfg, None);
    let reqs = mggcn_serve::generate_load(&LoadGenConfig::uniform(5000.0, 160, 64, 11));
    (cluster, reqs)
}

#[test]
fn cluster_cache_node_loss_degrades_the_dead_shard_and_spares_the_rest() {
    let model = serving_model(64);
    let (mut oracle_cluster, reqs) = cluster_and_trace(&model);
    let oracle = oracle_cluster.serve_trace("oracle", &reqs);
    assert_eq!(oracle.report.shed_fault, 0, "fault-free run must not count faults");

    let window = 1e-3;
    let plan = FaultPlan { shard_loss: vec![ShardLoss { shard: 0, at: 0.0 }], ..FaultPlan::none() };
    let inj = Injector::new(plan.clone());
    let (mut cluster, _) = cluster_and_trace(&model);
    let start = Instant::now();
    let out = cluster.serve_trace_chaos("cache-loss", &reqs, &inj);
    assert!(start.elapsed() < BOUND, "shard loss must not stall the sweep");

    // Graceful degradation: every request still gets exactly one answer.
    assert_eq!(out.answers.len(), reqs.len(), "requests lost under shard loss");
    assert!(out.report.shed_fault > 0, "the loss never fired");
    let degraded_bound = window + cluster.config().degraded_cost + 1e-9;
    for (a, o) in out.answers.iter().zip(&oracle.answers) {
        assert_eq!(a.id, o.id, "answers stay sorted by request id");
        if a.shard == 0 {
            // Dead shard: tagged degraded, bounded latency — never a
            // timeout — and the lost cache forces raw-feature fallback.
            assert!(a.degraded, "request {} on the dead shard escaped tagging", a.id);
            assert!(!a.from_cache, "request {} used a cache that was lost", a.id);
            assert!(
                a.latency <= degraded_bound,
                "request {}: degraded latency {} exceeds bound {degraded_bound}",
                a.id,
                a.latency
            );
        } else {
            // Surviving shard: bit-identical to the fault-free oracle.
            assert!(!a.degraded, "survivor {} was degraded", a.id);
            assert_eq!(a.row, o.row, "survivor {} row drifted", a.id);
            assert_eq!(a.latency.to_bits(), o.latency.to_bits(), "survivor {} latency", a.id);
        }
    }

    // Replay: same plan, fresh cluster, identical outcome.
    let (mut again, _) = cluster_and_trace(&model);
    let rerun = again.serve_trace_chaos("cache-loss", &reqs, &Injector::new(plan));
    assert_eq!(rerun.report.shed_fault, out.report.shed_fault);
    for (a, b) in out.answers.iter().zip(&rerun.answers) {
        assert_eq!(a.row, b.row);
        assert_eq!(a.latency.to_bits(), b.latency.to_bits());
    }
}

#[test]
fn seeded_cache_loss_answers_everything_for_every_seed() {
    let model = serving_model(64);
    for seed in seeds() {
        let plan = FaultPlan::seeded(seed, Scenario::CacheLoss { shards: 2, horizon: 0.02 });
        let (mut cluster, reqs) = cluster_and_trace(&model);
        let start = Instant::now();
        let out = cluster.serve_trace_chaos("seeded-loss", &reqs, &Injector::new(plan));
        assert!(start.elapsed() < BOUND, "seed {seed} blew the time bound");
        assert_eq!(out.answers.len(), reqs.len(), "seed {seed}: requests lost");
        assert_eq!(
            out.report.admitted + out.report.degraded,
            reqs.len(),
            "seed {seed}: answers neither exact nor degraded"
        );
        for a in &out.answers {
            assert!(a.latency.is_finite() && a.latency >= 0.0, "seed {seed}: bad latency");
            assert!(a.row.iter().all(|x| x.is_finite()), "seed {seed}: corrupt row");
        }
    }
}

// ---------------------------------------------------------------------
// Replayability: the seed is the whole story.
// ---------------------------------------------------------------------

#[test]
fn seeded_plans_are_deterministic_for_every_scenario_class() {
    let classes = [
        Scenario::WorkerDeath { gpus: 4, ops_per_gpu: 9 },
        Scenario::SlowLink { gpus: 4 },
        Scenario::Preemption { gpus: 4, ops_per_gpu: 9, max_pause: 0.01 },
        Scenario::CacheLoss { shards: 4, horizon: 1.0 },
        Scenario::NicDegrade { nodes: 2, gpus_per_node: 4 },
    ];
    for seed in seeds() {
        for sc in classes {
            let a = FaultPlan::seeded(seed, sc);
            let b = FaultPlan::seeded(seed, sc);
            assert_eq!(a, b, "seed {seed}, scenario {sc:?}: plan not replayable");
            assert_eq!(a.seed, seed, "plan must record its seed");
            assert!(!a.is_empty(), "seed {seed}, scenario {sc:?}: empty plan");
        }
    }
}

// ---------------------------------------------------------------------
// Scenario: worker death while the next epoch's stale broadcasts are in
// flight (DESIGN §15). Three invariants: the sim surfaces a bounded,
// labeled stall (or is oracle-identical when the kill coordinate
// misses); the threaded executor dies tagged; and restarting from the
// checkpoint at the last completed epoch is clean — bit-identical to a
// never-faulted run from the same checkpoint.
// ---------------------------------------------------------------------

/// A fused bounded-staleness schedule: 3 epochs at k=1 on 2 GPUs, where
/// epoch e+1's prefetch broadcasts overlap epoch e's backward pass.
fn pipelined_trainer(gpus: usize) -> Trainer {
    let g = sbm::generate(&SbmConfig::community_benchmark(60, 3), 5);
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    let mut opts = TrainOptions::quick(gpus);
    opts.permute = false;
    opts.staleness = 1;
    let problem = Problem::from_graph(&g, &cfg, &opts);
    Trainer::new(problem, cfg, opts).expect("fits")
}

#[test]
fn sim_stale_epoch_kill_stalls_labeled_or_matches_the_oracle() {
    let t = pipelined_trainer(2);
    let s = t.pipelined_schedule(3);
    let base = s.simulate();
    // k=1 snapshots every epoch, so the three epochs have identical op
    // counts and the global op-id range of epoch 1 is exactly the second
    // third — the window `Scenario::StaleEpochKill` aims at.
    let n_ops = base.report.ops_executed;
    assert_eq!(n_ops % 3, 0, "fused k=1 epochs must have equal op counts");
    for seed in seeds() {
        let plan =
            FaultPlan::seeded(seed, Scenario::StaleEpochKill { gpus: 2, ops_per_epoch: n_ops / 3 });
        let start = Instant::now();
        match s.simulate_with(Policy::DiscreteEvent, &Injector::new(plan)) {
            // Kill coordinate missed (wrong GPU for that op id): the run
            // must be indistinguishable from fault-free.
            Ok(out) => {
                assert_eq!(out.report.makespan.to_bits(), base.report.makespan.to_bits());
                assert_eq!(out.completion_order, base.completion_order);
            }
            Err(stall) => {
                assert!(!stall.stuck.is_empty(), "seed {seed}: unlabeled stall");
                assert!(
                    stall.stuck.iter().all(|l| l.contains("lane")),
                    "seed {seed}: stuck entries must name lanes: {:?}",
                    stall.stuck
                );
            }
        }
        assert!(start.elapsed() < BOUND, "seed {seed} blew the time bound");
    }
}

#[test]
fn stale_epoch_kill_dies_tagged_and_restarts_cleanly_from_checkpoint() {
    let mut t = pipelined_trainer(2);
    t.train(1).expect("epoch 0");
    let ck = mggcn_core::checkpoint::Checkpoint::from_trainer(&t);
    assert_eq!(ck.epoch, 1, "checkpoint records the last completed epoch");

    // Per-worker dispatches in one epoch of the fused schedule: the
    // seeded kill window `[ops_per_epoch, 2·ops_per_epoch)` then lands
    // inside the second epoch of any ≥2-epoch run for every GPU.
    let sched = t.pipelined_schedule(2);
    let infos = sched.op_infos();
    let first_epoch = infos.iter().filter_map(|o| o.desc.epoch).min().expect("tagged ops");
    let ops_per_epoch = (0..2)
        .map(|g| {
            infos
                .iter()
                .filter(|o| {
                    o.desc.epoch == Some(first_epoch) && o.lanes.iter().any(|&(l, _)| l == g)
                })
                .count()
        })
        .min()
        .expect("two workers");
    drop(infos);
    drop(sched);
    assert!(ops_per_epoch > 0);

    // Never-faulted control: restore the checkpoint, train two epochs.
    let mut control = pipelined_trainer(2);
    control.restore(&ck).expect("restore control");
    let control_reports = control.train(2).expect("control");
    let control_weights = control.state().gpu(0).weights.clone();

    let mut killed = 0usize;
    for seed in seeds() {
        let plan = FaultPlan::seeded(seed, Scenario::StaleEpochKill { gpus: 2, ops_per_epoch });
        let mut victim = pipelined_trainer(2);
        victim.restore(&ck).expect("restore victim");
        let sched = victim.pipelined_schedule(2);
        victim.state().reset_scratch();
        let start = Instant::now();
        match execute_chaos(sched, victim.state(), &Injector::new(plan)) {
            Ok(_) => {}
            Err(err) => {
                killed += 1;
                assert!(
                    err.message.contains("injected worker death"),
                    "seed {seed}: untagged error: {err}"
                );
            }
        }
        assert!(start.elapsed() < BOUND, "seed {seed}: peers hung on the dead worker");

        // Clean restart over the (possibly mid-epoch-corrupt) state:
        // restore the checkpoint and retrain — bit-identical to the
        // never-faulted control, resuming at the checkpointed epoch.
        victim.restore(&ck).expect("restore after crash");
        let reports = victim.train(2).expect("recovery");
        for (r, c) in reports.iter().zip(&control_reports) {
            assert_eq!(r.epoch, c.epoch, "seed {seed}: epochs must resume at ck.epoch");
            assert!(
                r.loss == c.loss,
                "seed {seed}: recovery epoch {} loss {} != control {} — the crash left residue",
                r.epoch,
                r.loss,
                c.loss
            );
        }
        for (l, (x, y)) in victim.state().gpu(0).weights.iter().zip(&control_weights).enumerate() {
            assert_eq!(x.as_slice(), y.as_slice(), "seed {seed}: layer {l} weights differ");
        }
    }
    assert!(killed > 0, "no seed's kill fired inside the stale-broadcast window");
}
