//! Partitioning differential tests for the multi-node 1.5D pipeline.
//!
//! Three claims, each load-bearing for `--partition 1.5d`:
//!
//! 1. **Single-node collapse** (property): on a hierarchical machine with
//!    `nodes = 1`, the 1.5D schedule's traced broadcast bytes equal the
//!    §5.1 closed form (`comm::analysis::epoch_broadcast_bytes`) exactly,
//!    and the machine-aware locality split reports zero inter-node bytes
//!    — a one-node hierarchy *is* the flat machine.
//! 2. **Bit-identity on the fuzz corpus**: for every seeded degenerate
//!    problem (empty graphs, `n == P` single-row tiles, growing and
//!    shrinking stacks), 1.5D training is bit-identical to 1D — same
//!    loss bits every epoch, same final weight bits — and both stay
//!    within tolerance of the sequential f64 oracle. The cross-group
//!    reduction re-folds partials in canonical stage order, so there is
//!    no legitimate source of even one ULP of disagreement.
//! 3. **Machine invariance**: moving the same 1.5D problem from a flat
//!    NVSwitch machine to a 2-node cluster changes wire placement and
//!    timing, never numerics.

use mggcn_core::config::{GcnConfig, Partition, TrainOptions};
use mggcn_core::metrics::EpochReport;
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_dense::Dense;
use mggcn_gpusim::{GpuSpec, MachineSpec};
use mggcn_graph::generators::sbm::{self, SbmConfig};
use mggcn_graph::Graph;
use mggcn_testkit::corpus::FuzzCase;
use mggcn_testkit::oracle::ReferenceGcn;
use mggcn_testkit::{rel_diff, P_LOSS_TOL};
use mggcn_trace::Tracer;
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------
// 1. Single-node collapse of the hierarchical byte accounting.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Collapse {
    seed: u64,
    n: usize,
    hidden: Vec<usize>,
    gpus: usize,
    epochs: usize,
    op_order_opt: bool,
    skip_first_backward_spmm: bool,
    overlap: bool,
}

fn collapse_scenario() -> impl Strategy<Value = Collapse> {
    (
        any::<u64>(),
        16usize..80,
        proptest::collection::vec(2usize..24, 0..3),
        0usize..3,
        1usize..=2,
        (any::<bool>(), any::<bool>(), any::<bool>()),
    )
        .prop_map(|(seed, n, hidden, p_idx, epochs, (op_order_opt, skip, overlap))| Collapse {
            seed,
            n,
            hidden,
            gpus: [2, 4, 8][p_idx],
            epochs,
            op_order_opt,
            skip_first_backward_spmm: skip,
            overlap,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn single_node_hierarchy_collapses_to_the_51_closed_form(s in collapse_scenario()) {
        let g = sbm::generate(&SbmConfig::community_benchmark(s.n, 3), s.seed);
        let cfg = GcnConfig::new(g.features.cols(), &s.hidden, g.classes);
        // One node holding all P GPUs: hierarchical in type, flat in fact.
        let machine = MachineSpec::hier_cluster(
            "one-node", GpuSpec::a100(), 1, s.gpus, 12, 25.0e9, 50.0e9,
        );
        let mut opts = TrainOptions::full(machine, s.gpus);
        opts.partition = Partition::OneFiveD;
        opts.permute = false;
        opts.op_order_opt = s.op_order_opt;
        opts.skip_first_backward_spmm = s.skip_first_backward_spmm;
        opts.overlap = s.overlap;
        let problem = Problem::from_graph(&g, &cfg, &opts);
        let rows: Vec<usize> = (0..s.gpus).map(|i| problem.rows_of(i)).collect();
        let mut t = Trainer::new(problem, cfg.clone(), opts).expect("toy problem fits");
        let tracer = Arc::new(Tracer::new());
        t.set_tracer(tracer.clone());
        for _ in 0..s.epochs {
            t.train_epoch().expect("simulated backend cannot fail");
        }

        // Byte accounting: exactly the §5.1 closed form. At P = 2 the
        // replication groups are singletons, so every group broadcast is
        // a resident no-op — zero bytes by the same single-participant
        // rule the closed form applies to P = 1.
        let per_epoch: Vec<u64> = if s.gpus == 2 {
            vec![0; 2]
        } else {
            mggcn_comm::analysis::epoch_broadcast_bytes(
                &rows, &cfg.dims, s.op_order_opt, s.skip_first_backward_spmm,
            )
        };
        let expected: Vec<u64> = per_epoch.iter().map(|&b| b * s.epochs as u64).collect();
        prop_assert_eq!(tracer.broadcast_stage_bytes(), expected, "scenario {:?}", s);

        // Locality: one node means nothing ever crosses a NIC.
        let intra = tracer.counter("sim.comm.bytes.intra_node");
        let inter = tracer.counter("sim.comm.bytes.inter_node");
        let total = tracer.counter("sim.comm.bytes.total");
        prop_assert_eq!(inter, 0, "inter-node bytes on a single node: {:?}", s);
        prop_assert_eq!(intra, total, "locality split must partition the total: {:?}", s);
    }
}

// ---------------------------------------------------------------------
// 2. 1.5D ≡ 1D ≡ f64 oracle on the fuzz corpus.
// ---------------------------------------------------------------------

fn train_with(
    graph: &Graph,
    cfg: &GcnConfig,
    mut opts: TrainOptions,
    partition: Partition,
    epochs: usize,
) -> (Vec<EpochReport>, Vec<Dense>) {
    opts.partition = partition;
    let problem = Problem::from_graph(graph, cfg, &opts);
    let mut t = Trainer::new(problem, cfg.clone(), opts).expect("fits");
    let reports = t.train(epochs).expect("train");
    let weights = t.state().gpu(0).weights.clone();
    (reports, weights)
}

fn assert_bitwise_equal(
    label: &str,
    a: &(Vec<EpochReport>, Vec<Dense>),
    b: &(Vec<EpochReport>, Vec<Dense>),
) {
    for (e, (ra, rb)) in a.0.iter().zip(&b.0).enumerate() {
        assert_eq!(
            ra.loss.to_bits(),
            rb.loss.to_bits(),
            "{label}: epoch {e} loss bits differ ({} vs {})",
            ra.loss,
            rb.loss
        );
    }
    for (l, (wa, wb)) in a.1.iter().zip(&b.1).enumerate() {
        assert_eq!(wa.as_slice(), wb.as_slice(), "{label}: layer {l} weight bits differ");
    }
}

#[test]
fn fuzz_corpus_15d_is_bit_identical_to_1d_and_tracks_the_oracle() {
    let mut failures = Vec::new();
    for seed in 0..24u64 {
        let case = FuzzCase::from_seed(seed);
        // 1.5D needs an even GPU count: round the corpus's 1..=4 up.
        let gpus = case.gpus + case.gpus % 2;
        let mut opts = TrainOptions::quick(gpus);
        opts.permute = case.permute;
        let one_d = train_with(&case.graph, &case.cfg, opts.clone(), Partition::OneD, case.epochs);
        let one_five = train_with(&case.graph, &case.cfg, opts, Partition::OneFiveD, case.epochs);
        let a = &one_d;
        let b = &one_five;
        let bitwise = a.0.iter().zip(&b.0).all(|(x, y)| x.loss.to_bits() == y.loss.to_bits())
            && a.1.iter().zip(&b.1).all(|(x, y)| x.as_slice() == y.as_slice());
        if !bitwise {
            failures.push((seed, format!("1.5D != 1D bitwise: {}", case.describe())));
            continue;
        }
        // Both (being bit-identical, either) must track the f64 oracle.
        let mut oracle = ReferenceGcn::new(&case.graph, &case.cfg);
        for (e, got) in one_five.0.iter().enumerate() {
            let want = oracle.train_epoch();
            let d = rel_diff(got.loss, want.loss);
            if d >= P_LOSS_TOL {
                failures.push((
                    seed,
                    format!(
                        "epoch {e}: 1.5D loss {} vs oracle {} (rel {d:.3e}): {}",
                        got.loss,
                        want.loss,
                        case.describe()
                    ),
                ));
                break;
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} corpus seed(s) failed:\n{}",
        failures.len(),
        failures.iter().map(|(s, d)| format!("  seed {s}: {d}")).collect::<Vec<_>>().join("\n")
    );
}

// ---------------------------------------------------------------------
// 3. Machine placement never touches numerics.
// ---------------------------------------------------------------------

#[test]
fn moving_15d_to_a_two_node_cluster_changes_nothing_but_time() {
    let g = sbm::generate(&SbmConfig::community_benchmark(96, 3), 17);
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    let flat = TrainOptions::quick(4);
    let mut clustered = TrainOptions::full(
        MachineSpec::hier_cluster("2x2", GpuSpec::a100(), 2, 2, 12, 25.0e9, 50.0e9),
        4,
    );
    clustered.skip_first_backward_spmm = false; // match quick()'s exact gradients
    let a = train_with(&g, &cfg, flat, Partition::OneFiveD, 4);
    let b = train_with(&g, &cfg, clustered, Partition::OneFiveD, 4);
    assert_bitwise_equal("flat vs 2-node cluster", &a, &b);
    // And both equal plain 1D on the flat machine.
    let c = train_with(&g, &cfg, TrainOptions::quick(4), Partition::OneD, 4);
    assert_bitwise_equal("1.5D vs 1D", &a, &c);
}
