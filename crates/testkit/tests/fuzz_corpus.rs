//! The seeded fuzz pass: N deterministic degenerate problems driven
//! through train → checkpoint → restore → serve, each shadowed by the f64
//! oracle.
//!
//! * `MGGCN_FUZZ_SEEDS=N` sets the corpus size (default 50 — the CI
//!   budget).
//! * `MGGCN_FUZZ_SEED=K` replays a single failing seed with its full
//!   diagnosis.
//!
//! Failures print every offending seed so a red CI run is immediately
//! replayable:
//!
//! ```text
//! MGGCN_FUZZ_SEED=17 cargo test -p mggcn-testkit --test fuzz_corpus
//! ```

use mggcn_testkit::corpus::{run_case, run_corpus, FuzzCase};

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

#[test]
fn corpus_survives_end_to_end() {
    if let Some(seed) = env_u64("MGGCN_FUZZ_SEED") {
        let case = FuzzCase::from_seed(seed);
        eprintln!("replaying {}", case.describe());
        if let Err(msg) = run_case(&case) {
            panic!("seed {seed} failed: {msg}");
        }
        return;
    }
    let count = env_u64("MGGCN_FUZZ_SEEDS").unwrap_or(50);
    let failures = run_corpus(count);
    if !failures.is_empty() {
        eprintln!("{} of {count} fuzz seeds failed:", failures.len());
        for (seed, msg) in &failures {
            eprintln!("  seed {seed}: {msg}");
            eprintln!(
                "    replay: MGGCN_FUZZ_SEED={seed} cargo test -p mggcn-testkit --test fuzz_corpus"
            );
        }
        panic!("{} fuzz failures (seeds above)", failures.len());
    }
}
