//! Effect-soundness oracle harness: the declared `Effects` the static
//! analyses trust are checked against what schedule bodies *actually* do.
//!
//! Two claims pin the oracle to the real trainer:
//!
//! * **Every real schedule audits clean** — across partitions, GPU
//!   counts, overlap modes, and staleness depths, the shadow-interpreted
//!   run observes no read, write, or stale consumption the site did not
//!   declare. Over-declarations may warn (the classic 1.5D reduce
//!   declares its `RP` source but refolds from shards); under-declaration
//!   is a hard finding and there must be none.
//! * **The oracle is not vacuous** — stripping a declaration off a site
//!   whose body really performs the access is caught as exactly the
//!   right finding class (undeclared write / read / stale age).

use mggcn_analyze::{audit_effects, Finding};
use mggcn_core::config::{GcnConfig, Partition, TrainOptions};
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_graph::generators::sbm::{self, SbmConfig};
use mggcn_graph::Graph;

fn graph() -> Graph {
    sbm::generate(&SbmConfig::community_benchmark(60, 3), 5)
}

fn trainer(g: &Graph, gpus: usize, partition: Partition, overlap: bool, k: usize) -> Trainer {
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    let mut opts = TrainOptions::quick(gpus);
    opts.permute = false;
    opts.partition = partition;
    opts.overlap = overlap;
    opts.staleness = k;
    let problem = Problem::from_graph(g, &cfg, &opts);
    Trainer::new(problem, cfg, opts).expect("toy problem fits")
}

#[test]
fn every_real_schedule_audits_clean() {
    let g = graph();
    let mut audited = 0usize;
    let mut observed_accesses = 0usize;
    for partition in [Partition::OneD, Partition::OneFiveD] {
        for gpus in [1usize, 2, 4] {
            if partition == Partition::OneFiveD && gpus == 1 {
                continue;
            }
            for overlap in [true, false] {
                let t = trainer(&g, gpus, partition, overlap, 0);
                let sched = t.epoch_schedule();
                let actual = t.record_actual_effects(t.epoch_schedule());
                let audit = audit_effects(&sched.op_infos(), &actual);
                assert!(audit.clean(), "{} P={gpus} overlap={overlap}:\n{audit}", partition.name());
                audited += 1;
                observed_accesses +=
                    actual.iter().map(|a| a.reads.len() + a.writes.len()).sum::<usize>();
            }
        }
    }
    assert!(audited >= 10, "sweep too small: {audited} schedules");
    assert!(observed_accesses > 0, "shadow run observed nothing — oracle is vacuous");
}

#[test]
fn pipelined_schedules_audit_clean_including_observed_stale_ages() {
    let g = graph();
    let mut stale_observed = 0usize;
    for partition in [Partition::OneD, Partition::OneFiveD] {
        for gpus in [2usize, 4] {
            for k in [1usize, 2] {
                let t = trainer(&g, gpus, partition, true, k);
                let sched = t.pipelined_schedule(3);
                let actual = t.record_actual_effects(t.pipelined_schedule(3));
                let audit = audit_effects(&sched.op_infos(), &actual);
                assert!(audit.clean(), "{} P={gpus} k={k}:\n{audit}", partition.name());
                stale_observed += actual.iter().filter(|a| !a.stale.is_empty()).count();
            }
        }
    }
    // The stale half of the oracle really ran: cross-epoch consumptions
    // were observed (and all were covered by declarations).
    assert!(stale_observed > 0, "no stale consumption observed in any fused schedule");
}

#[test]
fn stripping_a_declared_write_is_caught() {
    let g = graph();
    let t = trainer(&g, 2, Partition::OneD, true, 0);
    let actual = t.record_actual_effects(t.epoch_schedule());
    // Victim: the first op whose body observably writes a declared buffer.
    let mut sched = t.epoch_schedule();
    let (op, buf) = sched
        .op_infos()
        .iter()
        .find_map(|o| {
            actual[o.id].writes.iter().find(|b| o.effects.writes.contains(b)).map(|&b| (o.id, b))
        })
        .expect("some op observably writes a declared buffer");
    sched.effects_mut(op).writes.retain(|b| *b != buf);

    let audit = audit_effects(&sched.op_infos(), &actual);
    assert!(
        audit.findings.iter().any(|f| matches!(
            f,
            Finding::UndeclaredWrite { op: o, buf: b, .. } if *o == op && *b == buf
        )),
        "stripped write of {buf} on op {op} not caught:\n{audit}"
    );
}

#[test]
fn stripping_a_declared_read_is_caught() {
    let g = graph();
    let t = trainer(&g, 2, Partition::OneD, true, 0);
    let actual = t.record_actual_effects(t.epoch_schedule());
    let mut sched = t.epoch_schedule();
    let (op, buf) = sched
        .op_infos()
        .iter()
        .find_map(|o| {
            actual[o.id].reads.iter().find(|b| o.effects.reads.contains(b)).map(|&b| (o.id, b))
        })
        .expect("some op observably reads a declared buffer");
    sched.effects_mut(op).reads.retain(|b| *b != buf);

    let audit = audit_effects(&sched.op_infos(), &actual);
    assert!(
        audit.findings.iter().any(|f| matches!(
            f,
            Finding::UndeclaredRead { op: o, buf: b, .. } if *o == op && *b == buf
        )),
        "stripped read of {buf} on op {op} not caught:\n{audit}"
    );
}

#[test]
fn stripping_a_stale_declaration_is_caught_with_the_observed_age() {
    let g = graph();
    let t = trainer(&g, 4, Partition::OneD, true, 1);
    let actual = t.record_actual_effects(t.pipelined_schedule(2));
    let mut sched = t.pipelined_schedule(2);
    // Victim: an op that observably consumed stale state under a
    // matching declaration.
    let (op, buf, age) = sched
        .op_infos()
        .iter()
        .find_map(|o| {
            actual[o.id]
                .stale
                .iter()
                .find(|&(b, _)| o.effects.stale_age(*b).is_some())
                .map(|(&b, &a)| (o.id, b, a))
        })
        .expect("some op observably consumes declared stale state");
    sched.effects_mut(op).stale_reads.clear();

    let audit = audit_effects(&sched.op_infos(), &actual);
    assert!(
        audit.findings.iter().any(|f| matches!(
            f,
            Finding::UndeclaredStaleAge { op: o, buf: b, age: a, declared: None, .. }
                if *o == op && *b == buf && *a == age
        )),
        "stripped stale declaration on op {op} ({buf}, age {age}) not caught:\n{audit}"
    );
}
