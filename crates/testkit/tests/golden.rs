//! Golden-snapshot tests: gpusim schedule structure and the §4.2 memory
//! plan.
//!
//! The schedule dumps pin op order, lane placement and dependency edges —
//! the invariants behind §4.2 (buffer reuse is only safe under this
//! ordering) and §4.3 (double-buffer broadcast waits) — without recording
//! work magnitudes, so cost-model tuning never invalidates them.
//!
//! Regenerate after an intentional schedule change with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p mggcn-testkit --test golden
//! ```

use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_core::memplan::{BufferPolicy, MemoryPlan};
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_graph::generators::sbm::{self, SbmConfig};
use mggcn_graph::Graph;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("goldens").join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDENS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().expect("goldens dir")).expect("mkdir goldens");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("missing golden {name}; generate with UPDATE_GOLDENS=1 cargo test -p mggcn-testkit --test golden")
    });
    if want != actual {
        let diff_line = want
            .lines()
            .zip(actual.lines())
            .position(|(a, b)| a != b)
            .map(|i| {
                format!(
                    "first differing line {}:\n  golden: {}\n  actual: {}",
                    i + 1,
                    want.lines().nth(i).unwrap_or("<eof>"),
                    actual.lines().nth(i).unwrap_or("<eof>")
                )
            })
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: golden {} vs actual {}",
                    want.lines().count(),
                    actual.lines().count()
                )
            });
        panic!(
            "schedule drifted from golden {name}; {diff_line}\n\
             If the change is intentional, regenerate with UPDATE_GOLDENS=1."
        );
    }
}

fn graph() -> Graph {
    sbm::generate(&SbmConfig::community_benchmark(60, 3), 5)
}

fn dump(g: &Graph, cfg: &GcnConfig, opts: TrainOptions) -> String {
    let problem = Problem::from_graph(g, cfg, &opts);
    let trainer = Trainer::new(problem, cfg.clone(), opts).expect("fits");
    trainer.epoch_schedule_dump()
}

#[test]
fn schedule_single_gpu() {
    let g = graph();
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    let mut opts = TrainOptions::quick(1);
    opts.permute = false;
    check_golden("schedule_p1.txt", &dump(&g, &cfg, opts));
}

#[test]
fn schedule_three_gpus_overlapped() {
    // The paper's configuration: staged broadcasts on stream 1, SpMMs
    // waiting on their stage's broadcast, broadcasts waiting on the
    // double-buffer's previous reader (§4.3).
    let g = graph();
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    let mut opts = TrainOptions::quick(3);
    opts.permute = false;
    check_golden("schedule_p3_overlap.txt", &dump(&g, &cfg, opts));
}

#[test]
fn schedule_three_gpus_serialized() {
    let g = graph();
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    let mut opts = TrainOptions::quick(3);
    opts.permute = false;
    opts.overlap = false;
    check_golden("schedule_p3_serial.txt", &dump(&g, &cfg, opts));
}

#[test]
fn schedule_op_order_swap_on_widening_layer() {
    // d(0)=32 < d(1)=64 triggers §4.4 SpMM-before-GeMM in layer 0.
    let g = graph();
    let cfg = GcnConfig::new(g.features.cols(), &[64], g.classes);
    let mut opts = TrainOptions::quick(2);
    opts.permute = false;
    check_golden("schedule_p2_spmm_first.txt", &dump(&g, &cfg, opts));
}

#[test]
fn schedule_skip_first_backward_spmm() {
    let g = graph();
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    let mut opts = TrainOptions::quick(2);
    opts.permute = false;
    opts.skip_first_backward_spmm = true;
    check_golden("schedule_p2_skip_bwd.txt", &dump(&g, &cfg, opts));
}

#[test]
fn memplan_big_buffers_are_exactly_l_plus_3() {
    // §4.2: the working set is L AHW buffers + HW + BC1 + BC2, each sized
    // n_p × d_max — never more, regardless of depth or GPU count.
    let g = graph();
    for hidden in [&[8][..], &[8, 8], &[8, 8, 8, 8]] {
        let cfg = GcnConfig::new(g.features.cols(), hidden, g.classes);
        for gpus in [1usize, 2, 4] {
            let mut opts = TrainOptions::quick(gpus);
            opts.permute = false;
            let problem = Problem::from_graph(&g, &cfg, &opts);
            let trainer = Trainer::new(problem, cfg.clone(), opts).expect("fits");
            let plan = trainer.plan();
            let n_p = (g.n() as u64).div_ceil(gpus as u64);
            let buffer_bytes = n_p * cfg.max_dim() as u64 * 4;
            assert_eq!(
                plan.big_buffers % buffer_bytes,
                0,
                "big-buffer bytes must be whole buffers"
            );
            assert_eq!(
                plan.big_buffers / buffer_bytes,
                cfg.layers() as u64 + 3,
                "L={} P={gpus}: expected exactly L+3 big buffers",
                cfg.layers()
            );
        }
    }
}

#[test]
fn memplan_paper_scale_golden() {
    // Fixed-integer plan for Reddit / model A on 4 GPUs — any change to
    // the §4.2 accounting shows up as a diff here.
    let n = 232_965u64;
    let m = 114_615_892u64;
    let cfg = GcnConfig::model_a(602, 41);
    let mut out = String::new();
    for policy in [BufferPolicy::MgGcn, BufferPolicy::PerLayer6, BufferPolicy::CagnetFullGather] {
        let plan = MemoryPlan::new(n, m, &cfg, 4, policy);
        out.push_str(&format!(
            "{policy:?}: adjacency={} features={} big_buffers={} weights={} labels={} total={}\n",
            plan.adjacency,
            plan.features,
            plan.big_buffers,
            plan.weights,
            plan.labels,
            plan.total()
        ));
    }
    check_golden("memplan_reddit_model_a_p4.txt", &out);
}
