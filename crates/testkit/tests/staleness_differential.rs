//! Bounded-staleness conformance suite (ISSUE 9 / DESIGN §15).
//!
//! Three claims pin the `--staleness k` pipeline to the existing stack:
//!
//! * **k = 0 is the old trainer, bit for bit** — the option's default
//!   path never enters the fused multi-epoch builder, so the committed
//!   schedule goldens and every loss/weight trajectory are unchanged.
//! * **k ≥ 1 is deterministic and backend-invariant** — the fused
//!   schedule replays identically on the threaded backend, fused
//!   `train(N)` equals N sequential `train_epoch()` calls (snapshot
//!   cadence is keyed on absolute epoch, and SF persists on the
//!   trainer), and P = 1 staleness is a numeric no-op (there are no
//!   remote tiles to read stale).
//! * **k ≥ 1 still converges** — planted-partition replicas trained at
//!   k ∈ {0, 1, 2} track the f64 oracle's loss trajectory and land in
//!   its accuracy band, while genuinely computing *different* numbers
//!   from k = 0 whenever remote tiles exist (staleness must not be a
//!   silent no-op at P ≥ 2).

use mggcn_core::config::{GcnConfig, Partition, TrainOptions};
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_dense::Dense;
use mggcn_exec::Backend;
use mggcn_graph::generators::sbm::{self, SbmConfig};
use mggcn_graph::Graph;
use mggcn_testkit::oracle::ReferenceGcn;
use mggcn_testkit::{check_golden, rel_diff};

const EPOCHS: usize = 3;

/// Max relative loss gap between a bounded-staleness run and the fresh
/// f64 oracle, per epoch. Stale remote tiles steer Adam down a genuinely
/// different trajectory, and the relative gap widens as the loss shrinks;
/// the observed worst case on the planted partitions is 2.73e-1 (k=2,
/// P=4, epoch 6), pinned here with ~30% headroom. The accuracy band
/// below is the actual convergence criterion — this bound only keeps the
/// trajectory tethered to the oracle's.
const STALE_LOSS_TOL: f64 = 0.35;

/// Max absolute test-accuracy gap vs. the oracle after convergence
/// (observed worst case 0.0192, at k=2).
const STALE_ACC_TOL: f64 = 0.05;

fn ensure_pool() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        if std::env::var("MGGCN_THREADS").is_err() {
            std::env::set_var("MGGCN_THREADS", "4");
        }
    });
}

fn graph(seed: u64) -> Graph {
    sbm::generate(&SbmConfig::community_benchmark(96, 3), seed)
}

/// Train `epochs` epochs, return (losses, final weights, test accuracy).
fn run_n(
    g: &Graph,
    cfg: &GcnConfig,
    opts: TrainOptions,
    epochs: usize,
) -> (Vec<f64>, Vec<Dense>, f64) {
    let problem = Problem::from_graph(g, cfg, &opts);
    let mut t = Trainer::new(problem, cfg.clone(), opts).expect("fits");
    let reports = t.train(epochs).expect("train");
    let losses = reports.iter().map(|r| r.loss).collect();
    let acc = reports.last().expect("epochs").test_acc;
    let weights = t.state().gpu(0).weights.clone();
    (losses, weights, acc)
}

fn run(g: &Graph, cfg: &GcnConfig, opts: TrainOptions) -> (Vec<f64>, Vec<Dense>, f64) {
    run_n(g, cfg, opts, EPOCHS)
}

fn assert_bit_identical(
    label: &str,
    (la, wa, aa): &(Vec<f64>, Vec<Dense>, f64),
    (lb, wb, ab): &(Vec<f64>, Vec<Dense>, f64),
) {
    assert_eq!(la.len(), lb.len(), "{label}: epoch counts differ");
    for e in 0..la.len() {
        assert!(
            la[e] == lb[e],
            "{label}: epoch {e} loss {} != {} (must be bit-identical)",
            la[e],
            lb[e]
        );
    }
    assert!(aa == ab, "{label}: test accuracy diverged");
    for (l, (x, y)) in wa.iter().zip(wb).enumerate() {
        assert_eq!(x.as_slice(), y.as_slice(), "{label}: layer {l} weights differ");
    }
}

/// `--staleness 0` must leave the schedule builder untouched: explicit
/// k = 0 reproduces the committed goldens byte for byte.
#[test]
fn staleness_zero_schedules_match_committed_goldens() {
    let g = sbm::generate(&SbmConfig::community_benchmark(60, 3), 5);
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);

    let dump = |gpus: usize| {
        let mut opts = TrainOptions::quick(gpus);
        opts.permute = false;
        opts.staleness = 0; // explicit, not just the default
        let problem = Problem::from_graph(&g, &cfg, &opts);
        Trainer::new(problem, cfg.clone(), opts).expect("fits").epoch_schedule_dump()
    };
    check_golden("schedule_p1.txt", &dump(1));
    check_golden("schedule_p3_overlap.txt", &dump(3));
}

/// Explicit k = 0 trains bit-identically to the default options across
/// GPU counts, both partitionings, and both backends.
#[test]
fn staleness_zero_training_is_bit_identical_to_default() {
    ensure_pool();
    let g = graph(5);
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    for partition in [Partition::OneD, Partition::OneFiveD] {
        for gpus in [1usize, 2, 4, 8] {
            if partition == Partition::OneFiveD && gpus < 2 {
                continue;
            }
            for backend in [Backend::Simulated, Backend::Threaded] {
                let mut opts = TrainOptions::quick(gpus);
                opts.permute = false;
                opts.partition = partition;
                opts.backend = backend;
                let baseline = run(&g, &cfg, opts.clone());
                opts.staleness = 0;
                let explicit = run(&g, &cfg, opts);
                assert_bit_identical(
                    &format!("P={gpus} {} {backend:?}", partition.name()),
                    &baseline,
                    &explicit,
                );
            }
        }
    }
}

/// P = 1 has no remote tiles, so every read is the fresh local path:
/// k ∈ {1, 2} must be numerically indistinguishable from k = 0 even
/// though the fused builder emits snapshot ops for timing.
#[test]
fn single_gpu_staleness_is_a_numeric_noop() {
    ensure_pool();
    let g = graph(7);
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    let mut opts = TrainOptions::quick(1);
    opts.permute = false;
    let fresh = run(&g, &cfg, opts.clone());
    for k in [1usize, 2] {
        opts.staleness = k;
        let stale = run(&g, &cfg, opts.clone());
        assert_bit_identical(&format!("P=1 k={k}"), &fresh, &stale);
    }
}

/// Fused `train(N)` must equal N sequential `train_epoch()` calls: the
/// snapshot cadence keys on absolute epoch and SF persists on the
/// trainer, so slicing the pipeline at epoch boundaries is invisible.
#[test]
fn fused_train_matches_sequential_epochs() {
    ensure_pool();
    let g = graph(5);
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    for (k, partition) in
        [(1usize, Partition::OneD), (2, Partition::OneD), (1, Partition::OneFiveD)]
    {
        let mut opts = TrainOptions::quick(4);
        opts.permute = false;
        opts.partition = partition;
        opts.staleness = k;
        let fused = run_n(&g, &cfg, opts.clone(), 4);

        let problem = Problem::from_graph(&g, &cfg, &opts);
        let mut t = Trainer::new(problem, cfg.clone(), opts).expect("fits");
        let mut losses = Vec::new();
        let mut acc = 0.0;
        for _ in 0..4 {
            let r = t.train_epoch().expect("epoch");
            losses.push(r.loss);
            acc = r.test_acc;
        }
        let weights = t.state().gpu(0).weights.clone();
        assert_bit_identical(
            &format!("k={k} {} fused vs sequential", partition.name()),
            &fused,
            &(losses, weights, acc),
        );
    }
}

/// At P ≥ 2, k ≥ 1 must actually change the numbers: epoch 0 trains
/// fully fresh (it seeds the snapshot), so its loss is bit-equal to the
/// fresh run, while later epochs consume stale remote tiles and diverge.
#[test]
fn staleness_changes_numerics_exactly_from_epoch_one() {
    ensure_pool();
    let g = graph(5);
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    let mut opts = TrainOptions::quick(4);
    opts.permute = false;
    let (fresh, ..) = run(&g, &cfg, opts.clone());
    opts.staleness = 1;
    let (stale, ..) = run(&g, &cfg, opts);
    assert!(fresh[0] == stale[0], "epoch 0 is fully fresh: {} != {}", fresh[0], stale[0]);
    assert!(
        fresh[1..] != stale[1..],
        "k=1 at P=4 must consume stale tiles from epoch 1 on; \
         identical trajectories mean the prefetch path is dead code"
    );
}

/// The threaded backend replays the fused multi-epoch schedule
/// bit-identically to the simulator at k ∈ {1, 2}.
#[test]
fn threaded_matches_simulated_under_staleness() {
    ensure_pool();
    let g = graph(5);
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    for partition in [Partition::OneD, Partition::OneFiveD] {
        for k in [1usize, 2] {
            let mut opts = TrainOptions::quick(4);
            opts.permute = false;
            opts.partition = partition;
            opts.staleness = k;
            let baseline = run(&g, &cfg, opts.clone());
            for threads in [1usize, 4] {
                let prev = mggcn_exec::set_active_threads(threads);
                opts.backend = Backend::Threaded;
                let threaded = run(&g, &cfg, opts.clone());
                mggcn_exec::set_active_threads(prev);
                opts.backend = Backend::Simulated;
                assert_bit_identical(
                    &format!("{} k={k} threads={threads}", partition.name()),
                    &baseline,
                    &threaded,
                );
            }
        }
    }
}

/// Convergence: planted-partition replicas trained at k ∈ {0, 1, 2}
/// track the fresh f64 oracle's loss trajectory epoch by epoch and land
/// in its test-accuracy band. Replay any failure with the seed in the
/// assertion message.
#[test]
fn stale_replicas_reach_the_oracle_band() {
    ensure_pool();
    const SEED: u64 = 5;
    const CONV_EPOCHS: usize = 8;
    let g = graph(SEED);
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);

    let mut oracle = ReferenceGcn::new(&g, &cfg);
    let ref_epochs = oracle.train(CONV_EPOCHS);

    for partition in [Partition::OneD, Partition::OneFiveD] {
        for gpus in [2usize, 4] {
            for k in [0usize, 1, 2] {
                let mut opts = TrainOptions::quick(gpus);
                opts.permute = false;
                opts.partition = partition;
                opts.staleness = k;
                let (losses, _, acc) = run_n(&g, &cfg, opts, CONV_EPOCHS);
                for (e, (l, r)) in losses.iter().zip(&ref_epochs).enumerate() {
                    assert!(
                        rel_diff(*l, r.loss) < STALE_LOSS_TOL,
                        "seed={SEED} {} P={gpus} k={k} epoch {e}: loss {l} vs oracle {} \
                         (rel {:.3e} > {STALE_LOSS_TOL:.0e})",
                        partition.name(),
                        r.loss,
                        rel_diff(*l, r.loss)
                    );
                }
                let ref_acc = ref_epochs.last().expect("epochs").test_acc;
                assert!(
                    (acc - ref_acc).abs() < STALE_ACC_TOL,
                    "seed={SEED} {} P={gpus} k={k}: test acc {acc} vs oracle {ref_acc}",
                    partition.name()
                );
            }
        }
    }
}
