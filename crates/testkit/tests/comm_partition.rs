//! Satellite coverage: collective byte accounting against the §5.1 cost
//! formulas, and §5.2 tile-balance invariants under random permutation.

use mggcn_comm::analysis::analyze;
use mggcn_comm::{all_gather, all_reduce_sum, broadcast, reduce_sum};
use mggcn_gpusim::MachineSpec;
use mggcn_graph::random_permutation;
use mggcn_sparse::{Coo, Csr, PartitionVec, TileGrid};

// ---------------------------------------------------------------- §5.1 ---

#[test]
fn one_d_time_accounts_for_exactly_the_feature_matrix() {
    // 1D does P broadcasts of nd/P bytes at full fan-out, so
    // t_1d · bw == nd: every byte of the feature matrix crosses the root's
    // links exactly once per SpMM, no more.
    for machine in [MachineSpec::dgx_a100(), MachineSpec::dgx_v100()] {
        let nd_bytes = 3.7e8;
        let a = analyze(&machine, nd_bytes);
        let all: Vec<usize> = (0..machine.gpu_count()).collect();
        let bw = machine.broadcast_bw(0, &all);
        let moved = a.t_1d * bw;
        assert!(
            (moved - nd_bytes).abs() / nd_bytes < 1e-12,
            "1D moved {moved} bytes, expected {nd_bytes}"
        );
    }
}

#[test]
fn fifteen_d_time_composes_from_machine_primitives() {
    // §5.1's c = 2 algorithm: two group-local broadcast rounds of
    // nd/(P/2) bytes plus one cross-group reduction of the same size.
    for machine in [MachineSpec::dgx_a100(), MachineSpec::dgx_v100()] {
        let nd_bytes = 1.0e9;
        let p = machine.gpu_count();
        let a = analyze(&machine, nd_bytes);
        let group: Vec<usize> = (0..p / 2).collect();
        let per_round = nd_bytes / (p as f64 / 2.0);
        let expect = 2.0 * per_round / machine.broadcast_bw(0, &group)
            + per_round / machine.reduce_bw(0, &[0, p / 2]);
        assert!(
            (a.t_15d - expect).abs() / expect < 1e-12,
            "t_15d {} vs composed {expect}",
            a.t_15d
        );
        // And 1.5D's price is the 2x memory replication.
        assert_eq!(a.mem_factor_15d, 2.0);
    }
}

#[test]
fn staged_broadcast_volume_equals_one_d_formula() {
    // The data plane moves what the cost plane charges for: P stage
    // broadcasts of the (at most max_len·d)-element shard deliver every
    // feature row to every GPU exactly once — Σ shard sizes = n·d.
    let (n, d, p) = (23usize, 4usize, 4usize);
    let part = PartitionVec::uniform(n, p);
    let features: Vec<f32> = (0..n * d).map(|i| i as f32).collect();
    let mut received: Vec<Vec<f32>> = vec![Vec::new(); p];
    let mut total_elems = 0usize;
    for stage in 0..p {
        let shard = &features[part.start(stage) * d..part.end(stage) * d];
        total_elems += shard.len();
        let mut bufs: Vec<Vec<f32>> = vec![vec![0.0; shard.len()]; p];
        {
            let mut dsts: Vec<&mut [f32]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
            broadcast(shard, &mut dsts);
        }
        for (g, b) in bufs.into_iter().enumerate() {
            received[g].extend_from_slice(&b);
        }
    }
    assert_eq!(total_elems, n * d, "staged volume must equal the full matrix");
    for (g, r) in received.iter().enumerate() {
        assert_eq!(r, &features, "GPU {g} must reassemble the full feature matrix");
    }
}

#[test]
fn ring_all_reduce_volume_formula() {
    // The trainer charges the ring volume 2·bytes·(P−1)/P per gradient
    // all-reduce. Sanity-pin the formula's shape: monotone in P,
    // approaching 2·bytes, and exactly 0 at P = 1 (the collective
    // degenerates to a no-op — all_reduce_sum on one buffer).
    let bytes = 4096.0f64;
    let vol = |p: f64| 2.0 * bytes * (p - 1.0) / p;
    assert_eq!(vol(1.0), 0.0);
    assert!(vol(2.0) < vol(4.0) && vol(4.0) < vol(8.0));
    assert!((vol(8.0) - 2.0 * bytes * 7.0 / 8.0).abs() < 1e-9);
    let mut only = vec![1.0f32, 2.0];
    let before = only.clone();
    all_reduce_sum(&mut [&mut only]);
    assert_eq!(only, before, "P=1 all-reduce must move nothing");
}

#[test]
fn all_reduce_equals_reduce_then_broadcast_bytes_and_values() {
    // The §4.1 gradient consistency contract: after the collective every
    // replica holds the identical global sum, and the sum equals the
    // explicit reduce → broadcast composition.
    let srcs: Vec<Vec<f32>> =
        (0..4).map(|g| (0..6).map(|i| (g * 6 + i) as f32 * 0.25).collect()).collect();
    let mut reduced = vec![0.0f32; 6];
    {
        let refs: Vec<&[f32]> = srcs.iter().map(|s| s.as_slice()).collect();
        reduce_sum(&refs, &mut reduced);
    }
    let mut replicas = srcs.clone();
    {
        let mut refs: Vec<&mut [f32]> = replicas.iter_mut().map(|b| b.as_mut_slice()).collect();
        all_reduce_sum(&mut refs);
    }
    for r in &replicas {
        assert_eq!(r, &reduced);
    }
    // all_gather byte accounting: each output holds Σ shard lengths.
    let shards: Vec<&[f32]> = srcs.iter().map(|s| &s.as_slice()[..3]).collect();
    let mut outs: Vec<Vec<f32>> = vec![vec![0.0; 12]; 2];
    {
        let mut refs: Vec<&mut [f32]> = outs.iter_mut().map(|b| b.as_mut_slice()).collect();
        all_gather(&shards, &mut refs);
    }
    assert_eq!(outs[0].len(), shards.iter().map(|s| s.len()).sum::<usize>());
    assert_eq!(outs[0], outs[1]);
}

// ---------------------------------------------------------------- §5.2 ---

/// A deliberately localized graph: every vertex links to its `w` nearest
/// neighbors, so in natural order all nnz sits on the diagonal tiles.
fn banded(n: usize, w: usize) -> Csr {
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        for o in 1..=w {
            let j = (i + o) % n;
            coo.push(i as u32, j as u32, 1.0);
            coo.push(j as u32, i as u32, 1.0);
        }
    }
    coo.to_csr()
}

fn tile_imbalance(grid: &TileGrid) -> f64 {
    let nnz = grid.tile_nnz();
    let max = *nnz.iter().max().expect("tiles") as f64;
    let mean = nnz.iter().sum::<usize>() as f64 / nnz.len() as f64;
    max / mean
}

#[test]
fn partition_sizes_differ_by_at_most_one() {
    for (n, p) in [(100usize, 7usize), (8, 8), (23, 4), (5, 5)] {
        let part = PartitionVec::uniform(n, p);
        let sizes: Vec<usize> = (0..p).map(|i| part.len(i)).collect();
        let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
        assert!(max - min <= 1, "n={n} P={p}: sizes {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), n);
    }
}

#[test]
fn permutation_preserves_tiling_invariants() {
    let a = banded(96, 3);
    let perm = random_permutation(96, 11);
    let pa = a.permute_symmetric(&perm);
    for p in [2usize, 3, 4] {
        let g0 = TileGrid::symmetric_uniform(&a, p);
        let g1 = TileGrid::symmetric_uniform(&pa, p);
        // Permutation relabels, never creates or drops entries.
        assert_eq!(g0.nnz(), g1.nnz());
        assert_eq!(g0.nnz(), a.nnz());
        // Both grids cover the matrix with the same uniform partition.
        assert_eq!(g0.row_partition(), g1.row_partition());
    }
}

#[test]
fn random_permutation_balances_a_localized_graph() {
    // §5.2's argument: uniform partition + random vertex permutation gives
    // near-balanced tiles regardless of the original ordering. The banded
    // graph is the adversarial input — natural order puts ~everything on
    // the P diagonal tiles (imbalance ≈ P), the permuted order spreads it.
    let a = banded(240, 4);
    let p = 4usize;
    let natural = tile_imbalance(&TileGrid::symmetric_uniform(&a, p));
    assert!(natural > 2.5, "banded graph should start badly imbalanced, got {natural:.2}");
    for seed in [1u64, 7, 0xbabe] {
        let perm = random_permutation(240, seed);
        let permuted = tile_imbalance(&TileGrid::symmetric_uniform(&a.permute_symmetric(&perm), p));
        assert!(
            permuted < 1.5,
            "seed {seed}: permuted imbalance {permuted:.2} (natural {natural:.2})"
        );
        assert!(permuted < natural);
    }
}
