//! Backend differential suite: the threaded executor must be
//! **bit-identical** to the simulated backend, not merely close.
//!
//! Both backends replay the same deterministic linearization of the op
//! schedule (the threaded workers enforce the simulator's dependency
//! order with barriers and fences), and every parallel kernel in the
//! pool folds with a length-only chunk geometry, so there is no
//! legitimate source of divergence. Any difference — a single ULP in a
//! single weight — is a synchronization or partitioning bug, which is
//! why these tests compare with `==` rather than tolerances, across
//! GPU counts, kernel-pool widths, both §4.4 op orders, and §4.3
//! overlap on/off, plus the whole fuzz corpus.

use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_dense::Dense;
use mggcn_exec::Backend;
use mggcn_graph::generators::sbm::{self, SbmConfig};
use mggcn_graph::Graph;

const EPOCHS: usize = 3;

/// Pin the kernel pool wide enough to sweep `--threads ∈ {1,2,4}` even
/// on a 1-core CI box. Must run before the first parallel kernel; every
/// test calls it first.
fn ensure_pool() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        if std::env::var("MGGCN_THREADS").is_err() {
            std::env::set_var("MGGCN_THREADS", "4");
        }
    });
}

fn graph(seed: u64) -> Graph {
    sbm::generate(&SbmConfig::community_benchmark(96, 3), seed)
}

/// Train EPOCHS epochs and return (losses, final weights, test accuracy).
fn run(g: &Graph, cfg: &GcnConfig, opts: TrainOptions) -> (Vec<f64>, Vec<Dense>, f64) {
    let problem = Problem::from_graph(g, cfg, &opts);
    let mut t = Trainer::new(problem, cfg.clone(), opts).expect("fits");
    let reports = t.train(EPOCHS).expect("train");
    let losses = reports.iter().map(|r| r.loss).collect();
    let acc = reports.last().expect("epochs").test_acc;
    let weights = t.state().gpu(0).weights.clone();
    (losses, weights, acc)
}

fn assert_bit_identical(
    label: &str,
    (la, wa, aa): &(Vec<f64>, Vec<Dense>, f64),
    (lb, wb, ab): &(Vec<f64>, Vec<Dense>, f64),
) {
    for e in 0..EPOCHS {
        assert!(
            la[e] == lb[e],
            "{label}: epoch {e} loss {} != {} (must be bit-identical)",
            la[e],
            lb[e]
        );
    }
    assert!(aa == ab, "{label}: test accuracy diverged");
    for (l, (x, y)) in wa.iter().zip(wb).enumerate() {
        assert_eq!(x.as_slice(), y.as_slice(), "{label}: layer {l} weights differ");
    }
}

#[test]
fn threaded_matches_simulated_across_gpu_counts_and_pool_widths() {
    ensure_pool();
    let g = graph(5);
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    for gpus in [1usize, 2, 4, 8] {
        let mut opts = TrainOptions::quick(gpus);
        opts.permute = false;
        let baseline = run(&g, &cfg, opts.clone());
        for threads in [1usize, 2, 4] {
            let prev = mggcn_exec::set_active_threads(threads);
            opts.backend = Backend::Threaded;
            let threaded = run(&g, &cfg, opts.clone());
            mggcn_exec::set_active_threads(prev);
            assert_bit_identical(&format!("P={gpus}, threads={threads}"), &baseline, &threaded);
        }
    }
}

#[test]
fn threaded_matches_simulated_under_op_order_and_overlap() {
    ensure_pool();
    // hidden 64 > d(0)=32 triggers the §4.4 SpMM-first order when the
    // flag is on, so both order variants genuinely differ in schedule.
    let g = graph(11);
    let cfg = GcnConfig::new(g.features.cols(), &[64], g.classes);
    for op_order_opt in [false, true] {
        for overlap in [false, true] {
            let mut opts = TrainOptions::quick(4);
            opts.permute = false;
            opts.op_order_opt = op_order_opt;
            opts.overlap = overlap;
            let baseline = run(&g, &cfg, opts.clone());
            for threads in [1usize, 4] {
                let prev = mggcn_exec::set_active_threads(threads);
                opts.backend = Backend::Threaded;
                let threaded = run(&g, &cfg, opts.clone());
                mggcn_exec::set_active_threads(prev);
                assert_bit_identical(
                    &format!("op_order={op_order_opt}, overlap={overlap}, threads={threads}"),
                    &baseline,
                    &threaded,
                );
            }
        }
    }
}

#[test]
fn threaded_epochs_report_wall_clock_measurements() {
    ensure_pool();
    let g = graph(23);
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    let mut opts = TrainOptions::quick(2);
    opts.backend = Backend::Threaded;
    let problem = Problem::from_graph(&g, &cfg, &opts);
    let mut t = Trainer::new(problem, cfg.clone(), opts).expect("fits");
    let r = t.train_epoch().expect("train");
    let m = r.measured.expect("threaded backend must measure wall time");
    assert!(m.wall_seconds > 0.0, "zero wall time");
    assert!(m.bodies_run > 0, "no bodies executed");
    assert!(!m.category_seconds.is_empty(), "per-category wall breakdown missing");
    // The simulated backend reports no measurement.
    let mut opts = TrainOptions::quick(2);
    opts.backend = Backend::Simulated;
    let problem = Problem::from_graph(&g, &cfg, &opts);
    let mut t = Trainer::new(problem, cfg, opts).expect("fits");
    assert!(t.train_epoch().expect("train").measured.is_none());
}

#[test]
fn serving_is_bit_identical_and_equally_timed_across_backends() {
    use mggcn_serve::{generate_load, BatchPolicy, LoadGenConfig, ServeConfig, Server};
    ensure_pool();
    let g = graph(31);
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    let opts = TrainOptions::quick(2);
    let problem = Problem::from_graph(&g, &cfg, &opts);
    let mut t = Trainer::new(problem, cfg.clone(), opts).expect("fits");
    t.train(2).expect("train");
    let ck = mggcn_core::checkpoint::Checkpoint::from_trainer(&t);
    let trace = generate_load(&LoadGenConfig::uniform(2000.0, 40, g.n(), 7));

    let mut reports = Vec::new();
    let mut outputs = Vec::new();
    for backend in [Backend::Simulated, Backend::Threaded] {
        let model = mggcn_serve::ServingModel::from_checkpoint(&ck, &g).expect("model");
        let mut cfg = ServeConfig::new(
            mggcn_gpusim::MachineSpec::dgx_a100(),
            BatchPolicy::new(1e-3, 16),
            1 << 20,
        );
        cfg.backend = backend;
        let mut server = Server::new(model, cfg);
        outputs.push(server.query(&[0, 7, 42, 95, 7]));
        reports.push(server.serve(backend.name(), &trace));
    }
    assert_eq!(
        outputs[0].as_slice(),
        outputs[1].as_slice(),
        "served logits must be bit-identical across backends"
    );
    // Latency accounting is defined on the *simulated* machine for both
    // backends, so the reports agree exactly.
    assert_eq!(reports[0].p50_ms, reports[1].p50_ms, "p50 diverged");
    assert_eq!(reports[0].p99_ms, reports[1].p99_ms, "p99 diverged");
}

#[test]
fn fuzz_corpus_passes_on_the_threaded_backend() {
    ensure_pool();
    let count = std::env::var("MGGCN_FUZZ_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(25);
    let failures = mggcn_testkit::corpus::run_corpus_with(count, Backend::Threaded);
    if !failures.is_empty() {
        eprintln!("{} of {count} threaded fuzz seeds failed:", failures.len());
        for (seed, msg) in &failures {
            eprintln!("  seed {seed}: {msg}");
        }
        panic!("{} threaded fuzz failures (seeds above)", failures.len());
    }
}
