//! DPOR linearization model checking against the real trainer.
//!
//! The hazard pass proves pairwise ordering; this harness proves the
//! global property training actually relies on: for every linearization
//! of the happens-before partial order the trainer's schedule admits,
//! executing the bodies in that order produces **bit-identical final
//! weights**.
//!
//! Under the default footprint dependence (justified by the effect
//! oracle: bodies touch exactly their declared buffers, so disjoint
//! footprints commute), a hazard-free schedule has exactly one
//! Mazurkiewicz trace — the single executed representative *is* the
//! determinism proof. The device-dependence mode then cross-checks the
//! reduction empirically: it also orders same-GPU ops, executing many
//! linearizations the footprint relation proved redundant, and all of
//! them must agree bit-for-bit.
//!
//! The converse claim makes the check non-vacuous: deleting a
//! load-bearing wait edge admits linearizations the dependency structure
//! was supposed to forbid, and the checker exhibits one whose weights
//! diverge — a concrete interleaving counterexample, not just a static
//! finding.

use mggcn_analyze::{model_check, DporOptions, Hb};
use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_graph::generators::sbm::{self, SbmConfig};
use mggcn_graph::Graph;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn graph() -> Graph {
    sbm::generate(&SbmConfig::community_benchmark(24, 2), 11)
}

/// Tiny model so each explored linearization is cheap to execute; the
/// determinism claim is about ordering, not scale.
fn trainer(g: &Graph, gpus: usize) -> Trainer {
    let cfg = GcnConfig::new(g.features.cols(), &[4], g.classes);
    let mut opts = TrainOptions::quick(gpus);
    opts.permute = false;
    opts.overlap = true;
    let problem = Problem::from_graph(g, &cfg, &opts);
    Trainer::new(problem, cfg, opts).expect("toy problem fits")
}

#[test]
fn all_linearizations_of_real_schedules_give_bit_identical_weights() {
    let g = graph();
    for gpus in [1usize, 2, 3] {
        let t = trainer(&g, gpus);
        let sched = t.epoch_schedule();
        let r = model_check(&sched.op_infos(), &DporOptions::default(), &mut |order| {
            t.linearization_digest(|_| {}, order)
        });
        assert!(r.deterministic(), "P={gpus}: linearizations diverge: {:?}", r.divergence);
        assert!(!r.truncated, "P={gpus}: exploration truncated at {} executions", r.executions);
        // Hazard-free + audited footprints ⟹ a single Mazurkiewicz
        // trace: the one representative executed is the proof.
        assert_eq!(r.executions, 1, "P={gpus}: a clean schedule must reduce to one trace");
        assert!(r.baseline.is_some());
    }
}

#[test]
fn device_level_interleavings_agree_with_the_reduction() {
    // Belt-and-braces: explore orders the footprint relation prunes
    // (same-GPU, disjoint-buffer commutations) and check they really are
    // redundant — every executed linearization lands identical weights.
    let g = graph();
    for gpus in [2usize, 3] {
        let t = trainer(&g, gpus);
        let sched = t.epoch_schedule();
        let opts = DporOptions { max_executions: 256, device_dependence: true };
        let r = model_check(&sched.op_infos(), &opts, &mut |order| {
            t.linearization_digest(|_| {}, order)
        });
        assert!(
            r.deterministic(),
            "P={gpus}: device-level order changed the weights: {:?}",
            r.divergence
        );
        assert!(r.executions > 1, "P={gpus}: device mode explored nothing beyond the reduction");
    }
}

#[test]
fn deleting_a_load_bearing_wait_edge_yields_a_divergent_linearization() {
    let g = graph();
    let t = trainer(&g, 2);
    // Load-bearing edges: removal leaves the pair unordered (the same
    // redundancy criterion the static mutation harness uses).
    let base = t.epoch_schedule();
    let edges = base.wait_edges();
    let load_bearing: Vec<(usize, usize)> = edges
        .iter()
        .copied()
        .filter(|&(op, wait)| {
            let mut mutant = t.epoch_schedule();
            mutant.remove_wait(op, wait);
            let infos = mutant.op_infos();
            !Hb::of_ops(&infos).ordered(wait, op)
        })
        .collect();
    assert!(!load_bearing.is_empty(), "no load-bearing edges among {}", edges.len());

    let mut divergent = 0usize;
    let mut checked = 0usize;
    for &(op, wait) in &load_bearing {
        let mut mutant = t.epoch_schedule();
        mutant.remove_wait(op, wait);
        let r = model_check(&mutant.op_infos(), &DporOptions::default(), &mut |order| {
            // An illegal order may trip a shape assertion inside a body
            // instead of silently corrupting — either way the
            // linearization observably differs, so map a panic to an
            // order-derived sentinel digest.
            catch_unwind(AssertUnwindSafe(|| {
                t.linearization_digest(|s| s.remove_wait(op, wait), order)
            }))
            .unwrap_or_else(|_| {
                order.iter().fold(0x0bad5eed0bad5eedu64, |h, &id| {
                    (h ^ id as u64).wrapping_mul(0x100000001b3)
                })
            })
        });
        checked += 1;
        if let Some(d) = r.divergence {
            assert_ne!(d.digest, d.baseline);
            assert_eq!(d.order.len(), base.op_count(), "counterexample is a complete order");
            divergent += 1;
        }
        if divergent > 0 && checked >= 3 {
            break; // the claim is witnessed; keep the suite fast
        }
    }
    assert!(
        divergent > 0,
        "no deleted load-bearing edge produced a divergent linearization \
         ({checked} checked) — the model checker is vacuous"
    );
}
