//! Golden-snapshot test for the sim-clock Chrome-trace export.
//!
//! The simulated clock is pure f64 discrete-event arithmetic, so the
//! `include_wall = false` export must be **byte-identical** run-to-run,
//! across kernel-pool widths, and across execution backends (both
//! backends run the same `simulate()`), which is what makes it safe to
//! pin as a golden. Wall-clock spans are real measurements and are
//! excluded here (they get schema validation instead).
//!
//! Regenerate after an intentional schedule or export change with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p mggcn-testkit --test trace_golden
//! ```

use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_exec::Backend;
use mggcn_graph::generators::sbm::{self, SbmConfig};
use mggcn_trace::Tracer;
use std::sync::Arc;

const EPOCHS: usize = 2;

/// Pin the kernel pool wide enough to sweep widths even on a 1-core CI
/// box. Must run before the first parallel kernel.
fn ensure_pool() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        if std::env::var("MGGCN_THREADS").is_err() {
            std::env::set_var("MGGCN_THREADS", "4");
        }
    });
}

/// The pinned scenario: seeded graph, 2-layer model, P = 2, 2 epochs.
fn traced_run(backend: Backend) -> Arc<Tracer> {
    let g = sbm::generate(&SbmConfig::community_benchmark(60, 3), 5);
    let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
    let mut opts = TrainOptions::quick(2);
    opts.permute = false;
    opts.backend = backend;
    let problem = Problem::from_graph(&g, &cfg, &opts);
    let mut t = Trainer::new(problem, cfg.clone(), opts).expect("fits");
    let tracer = Arc::new(Tracer::new());
    t.set_tracer(tracer.clone());
    for _ in 0..EPOCHS {
        t.train_epoch().expect("train");
    }
    tracer
}

#[test]
fn sim_clock_chrome_trace_matches_golden_and_reruns_byte_identical() {
    ensure_pool();
    let out = traced_run(Backend::Simulated).chrome_trace(false);
    mggcn_testkit::check_golden("trace_p2_sim_chrome.json", &out);
    let again = traced_run(Backend::Simulated).chrome_trace(false);
    assert_eq!(out, again, "same seeded run must export byte-identically");
}

#[test]
fn sim_clock_export_is_invariant_across_backends_and_pool_widths() {
    ensure_pool();
    let reference = traced_run(Backend::Simulated).chrome_trace(false);
    for threads in [1usize, 4] {
        let prev = mggcn_exec::set_active_threads(threads);
        let got = traced_run(Backend::Threaded).chrome_trace(false);
        mggcn_exec::set_active_threads(prev);
        assert_eq!(
            reference, got,
            "sim-clock chrome export diverged on the threaded backend at {threads} thread(s)"
        );
    }
}

#[test]
fn full_export_with_wall_spans_is_schema_valid() {
    ensure_pool();
    let prev = mggcn_exec::set_active_threads(2);
    let tracer = traced_run(Backend::Threaded);
    mggcn_exec::set_active_threads(prev);
    let text = tracer.chrome_trace(true);
    let summary =
        mggcn_trace::chrome::validate_chrome_trace(&text).expect("schema-valid chrome trace");
    // Wall spans double the process space (pid 1000+gpu), so the full
    // export has strictly more metadata records than the sim-only one.
    let sim_only = mggcn_trace::chrome::validate_chrome_trace(&tracer.chrome_trace(false))
        .expect("sim-only export valid");
    assert!(summary.events > sim_only.events, "wall spans missing from full export");
    assert!(summary.metas > sim_only.metas, "wall process metadata missing");
    mggcn_trace::chrome::validate_bench_trace(&tracer.bench_json())
        .expect("bench json schema-valid");
}
