//! Tracing must be **observation-only**: attaching a tracer cannot change
//! a single bit of what the system computes.
//!
//! Both integration points make this claim by construction — the trainer
//! and server ingest spans strictly *after* a schedule has run, and a
//! `None` tracer records nothing — so this suite verifies it the hard
//! way: every fuzz-corpus seed is trained twice (tracer on / tracer off)
//! on **both** backends, and losses, final weights, and served logits are
//! compared with `==`. One ULP of divergence is a bug in the trace
//! integration, not noise.

use mggcn_core::checkpoint::Checkpoint;
use mggcn_dense::Dense;
use mggcn_exec::Backend;
use mggcn_serve::{BatchPolicy, ServeConfig, Server, ServingModel};
use mggcn_testkit::corpus::FuzzCase;
use mggcn_trace::Tracer;
use std::sync::Arc;

fn ensure_pool() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        if std::env::var("MGGCN_THREADS").is_err() {
            std::env::set_var("MGGCN_THREADS", "4");
        }
    });
}

struct Outcome {
    losses: Vec<f64>,
    weights: Vec<Dense>,
    served: Dense,
}

/// Train a fuzz case end-to-end and serve a few vertices, optionally with
/// a tracer attached to both the trainer and the server.
fn run(case: &FuzzCase, traced: bool) -> Outcome {
    let mut trainer = case.trainer().expect("toy problem fits");
    let tracer = traced.then(|| Arc::new(Tracer::new()));
    if let Some(t) = &tracer {
        trainer.set_tracer(t.clone());
    }
    let mut losses = Vec::new();
    for e in 0..case.epochs {
        losses.push(
            trainer
                .train_epoch()
                .unwrap_or_else(|err| panic!("epoch {e} failed [{}]: {err}", case.describe()))
                .loss,
        );
    }
    let weights = trainer.state().gpu(0).weights.clone();

    let ck = Checkpoint::from_trainer(&trainer);
    let model = ServingModel::from_checkpoint(&ck, &case.graph).expect("serving model");
    let mut cfg = ServeConfig::new(
        mggcn_gpusim::MachineSpec::dgx_a100(),
        BatchPolicy::new(1e-3, 16),
        1 << 20,
    );
    cfg.backend = case.backend;
    let mut server = Server::new(model, cfg);
    if let Some(t) = &tracer {
        server.set_tracer(t.clone());
    }
    let n = case.graph.n() as u32;
    let ids: Vec<u32> = [0, n / 2, n - 1].into_iter().filter(|&v| v < n).collect();
    let served = server.query(&ids);

    if let Some(t) = &tracer {
        // The tracer really observed the run — this differential would be
        // vacuous if the traced arm silently recorded nothing.
        assert!(t.counter("sim.timelines") > 0, "tracer saw no timelines");
        assert!(!t.chrome_trace(false).is_empty(), "tracer produced an empty export");
    }
    Outcome { losses, weights, served }
}

fn assert_identical(label: &str, on: &Outcome, off: &Outcome) {
    assert_eq!(on.losses, off.losses, "{label}: losses changed under tracing");
    assert_eq!(on.weights.len(), off.weights.len(), "{label}: layer count");
    for (l, (a, b)) in on.weights.iter().zip(&off.weights).enumerate() {
        assert_eq!(a.as_slice(), b.as_slice(), "{label}: layer {l} weights changed under tracing");
    }
    assert_eq!(
        on.served.as_slice(),
        off.served.as_slice(),
        "{label}: served logits changed under tracing"
    );
}

#[test]
fn tracing_is_observation_only_on_the_fuzz_corpus() {
    ensure_pool();
    let count: u64 =
        std::env::var("MGGCN_FUZZ_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(12);
    for backend in [Backend::Simulated, Backend::Threaded] {
        for seed in 0..count {
            let case = FuzzCase::from_seed(seed).with_backend(backend);
            if case.epochs == 0 || case.graph.n() == 0 {
                continue;
            }
            let on = run(&case, true);
            let off = run(&case, false);
            assert_identical(&format!("backend={} {}", backend.name(), case.describe()), &on, &off);
        }
    }
}

#[test]
fn tracing_is_observation_only_across_pool_widths() {
    // The threaded backend's wait instrumentation (Barrier spans) must
    // not perturb numerics at any kernel-pool width.
    ensure_pool();
    let case = FuzzCase::from_seed(3).with_backend(Backend::Threaded);
    for threads in [1usize, 4] {
        let prev = mggcn_exec::set_active_threads(threads);
        let on = run(&case, true);
        let off = run(&case, false);
        mggcn_exec::set_active_threads(prev);
        assert_identical(&format!("threads={threads}"), &on, &off);
    }
}
