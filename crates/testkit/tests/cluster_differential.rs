//! Differential conformance for the sharded serving tier: a cluster of
//! any shard count, on either execution backend, must answer every
//! non-degraded request **bit-identically** to the single-replica
//! full-graph oracle ([`ServingModel::forward_full`]) — sharding, routing,
//! batching, replica scheduling and per-shard caches are all
//! latency/locality mechanisms, never numerics.
//!
//! Under tight admission the cluster must still answer *every* request:
//! shed ones come back tagged degraded with bounded latency, admitted
//! ones stay bit-exact.

use mggcn_cluster::{AdmissionPolicy, Cluster, ClusterConfig, PartitionPlan};
use mggcn_dense::Dense;
use mggcn_exec::Backend;
use mggcn_graph::generators::sbm::{self, SbmConfig};
use mggcn_serve::{generate_load, BatchPolicy, LoadGenConfig, ServingModel};

fn model(n: usize, seed: u64) -> (ServingModel, Dense, mggcn_sparse::Csr) {
    let graph = sbm::generate(&SbmConfig::community_benchmark(n, 4), seed);
    let feats = Dense::from_fn(n, 8, |r, c| ((r * 3 + c) as f32).sin());
    let w0 = Dense::from_fn(8, 6, |r, c| ((r * 2 + c) as f32).cos() * 0.25);
    let w1 = Dense::from_fn(6, 4, |r, c| ((r + 3 * c) as f32).sin() * 0.25);
    let m = ServingModel::from_parts(vec![w0, w1], graph.adj.clone(), feats).expect("valid");
    let oracle = m.forward_full();
    (m, oracle, graph.adj)
}

#[test]
fn sharded_serving_matches_the_oracle_across_shard_counts_and_backends() {
    let (m, oracle, adj) = model(240, 7);
    let reqs = generate_load(&LoadGenConfig::skewed(50_000.0, 500, 240, 13));
    for shards in [1usize, 2, 4] {
        let plan = PartitionPlan::cache_aware(&adj, shards, 7);
        for backend in [Backend::Simulated, Backend::Threaded] {
            let mut cfg = ClusterConfig::new(shards, 2, BatchPolicy::new(5e-4, 16));
            cfg.backend = backend;
            // Unbounded admission: every answer must take the exact path.
            cfg.admission = AdmissionPolicy::unbounded();
            let mut cluster = Cluster::new(&m, cfg, Some(&plan));
            let out = cluster.serve_trace("diff", &reqs);
            assert_eq!(out.answers.len(), reqs.len());
            assert_eq!(out.report.degraded, 0, "unbounded admission never sheds");
            for a in &out.answers {
                assert!(!a.degraded);
                assert_eq!(
                    a.row,
                    oracle.row(a.vertex as usize),
                    "vertex {} differs at P={shards} backend {}",
                    a.vertex,
                    backend.name()
                );
            }
        }
    }
}

#[test]
fn shard_count_does_not_change_any_admitted_answer() {
    // Same trace through P=1 and P=4: the exact answers must agree bit-for-
    // bit with each other (both equal the oracle, checked independently
    // above — this asserts the cross-P property directly on ids).
    let (m, _, adj) = model(180, 11);
    let reqs = generate_load(&LoadGenConfig::uniform(40_000.0, 300, 180, 5));
    let run = |shards: usize| {
        let plan = PartitionPlan::cache_aware(&adj, shards, 3);
        let cfg = ClusterConfig::new(shards, 1, BatchPolicy::new(5e-4, 8));
        let mut cluster = Cluster::new(&m, cfg, Some(&plan));
        cluster.serve_trace("p", &reqs).answers
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one.len(), four.len());
    for (a, b) in one.iter().zip(&four) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.row, b.row, "request {} answered differently at P=1 vs P=4", a.id);
    }
}

#[test]
fn tight_admission_sheds_with_tagged_bounded_degraded_answers() {
    let (m, oracle, adj) = model(200, 3);
    let plan = PartitionPlan::cache_aware(&adj, 2, 3);
    let window = 2e-4;
    let mut cfg = ClusterConfig::new(2, 1, BatchPolicy::new(window, 8));
    cfg.admission = AdmissionPolicy::new(0.0, 1);
    let degraded_cost = cfg.degraded_cost;
    let mut cluster = Cluster::new(&m, cfg, Some(&plan));
    // Way past one replica GPU per shard: shedding must engage.
    let reqs = generate_load(&LoadGenConfig::uniform(3.0e6, 600, 200, 17));
    let out = cluster.serve_trace("overload", &reqs);

    assert_eq!(out.answers.len(), reqs.len(), "overload never drops a request");
    assert!(out.report.degraded > 0, "overload must shed");
    assert!(out.report.admitted > 0, "admission must not starve");
    assert_eq!(out.report.admitted + out.report.degraded, out.report.requests);
    let bound = window + degraded_cost + 1e-12;
    for a in &out.answers {
        if a.degraded {
            // Tagged, bounded, finite — never a timeout.
            assert!(a.latency <= bound, "degraded latency {} over bound {bound}", a.latency);
            assert!(a.row.iter().all(|v| v.is_finite()));
            assert_eq!(a.row.len(), m.out_dim());
        } else {
            // Admitted answers stay bit-exact even while shedding.
            assert_eq!(a.row, oracle.row(a.vertex as usize));
        }
    }
}

#[test]
fn degraded_answers_are_deterministic_across_identical_runs() {
    let (m, _, adj) = model(160, 19);
    let plan = PartitionPlan::cache_aware(&adj, 2, 9);
    let run = || {
        let mut cfg = ClusterConfig::new(2, 1, BatchPolicy::new(1e-4, 4));
        cfg.admission = AdmissionPolicy::new(0.0, 1);
        let mut cluster = Cluster::new(&m, cfg, Some(&plan));
        let reqs = generate_load(&LoadGenConfig::uniform(2.0e6, 400, 160, 23));
        cluster.serve_trace("det", &reqs)
    };
    let a = run();
    let b = run();
    assert!(a.report.degraded > 0);
    assert_eq!(a.report.degraded, b.report.degraded);
    for (x, y) in a.answers.iter().zip(&b.answers) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.degraded, y.degraded);
        assert_eq!(x.row, y.row, "request {} not reproducible", x.id);
        assert_eq!(x.latency, y.latency);
    }
}
