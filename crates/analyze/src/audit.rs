//! Effect-soundness oracle — diff declared [`mggcn_gpusim::Effects`]
//! against shadow-observed [`ActualEffects`].
//!
//! Every analysis in this crate trusts the hand-maintained declarations
//! at each `launch_fx`/`collective_fx` site. This pass closes the loop:
//! `mggcn_core::shadow::record_actual_effects` executes the schedule's
//! bodies against a fresh device state with instrumented accessors and
//! per-op fingerprint diffing, and [`audit_effects`] compares what each
//! body *did* to what its site *declared*:
//!
//! * **Under-declaration is a hard [`Finding`]** — a read, write, or
//!   stale consumption the body performed but the site never declared
//!   means the hazard/HB analysis ran on an unsound footprint; anything
//!   it proved about the schedule is void.
//! * **Over-declaration is a [`Warning`]** — a declared access the body
//!   never exercised only costs precision (extra conservative ordering
//!   edges). A declared write that did not materialize is suppressed
//!   when the site also declares — and the body performed — a read of
//!   the same buffer: a read-modify-write may legitimately write back
//!   bytes identical to what it read, which state diffing cannot see.
//!
//! The observed stale age must be *covered* by the declaration: a
//! [`Finding::UndeclaredStaleAge`] fires iff `actual age > declared
//! bound` (no declaration counts as bound 0).

use crate::{canonicalize, canonicalize_warnings, Finding, Warning};
use mggcn_gpusim::shadow::ActualEffects;
use mggcn_gpusim::{BufId, OpInfo};
use std::collections::BTreeSet;
use std::fmt;

/// Result of auditing one schedule's declarations against one observed
/// run. `clean()` requires zero findings; warnings are advisory.
#[derive(Clone, Debug, Default)]
pub struct EffectAudit {
    pub findings: Vec<Finding>,
    pub warnings: Vec<Warning>,
}

impl EffectAudit {
    /// No under-declarations: the static analyses ran on a sound footprint.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable summary (the `--audit-effects` CLI output).
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for EffectAudit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.findings.is_empty() {
            writeln!(f, "effect audit: declarations cover every observed access")?;
        } else {
            writeln!(f, "effect audit: {} under-declaration(s):", self.findings.len())?;
            for finding in &self.findings {
                writeln!(f, "  {finding}")?;
            }
        }
        if !self.warnings.is_empty() {
            writeln!(f, "{} warning(s):", self.warnings.len())?;
            for w in &self.warnings {
                writeln!(f, "  {w}")?;
            }
        }
        Ok(())
    }
}

/// Diff each op's declared effects against the actual effects a shadow
/// run observed for it. `actual` must be indexed by op id, exactly as
/// `record_actual_effects` returns it.
pub fn audit_effects(ops: &[OpInfo<'_>], actual: &[ActualEffects]) -> EffectAudit {
    assert_eq!(ops.len(), actual.len(), "actual-effects log must cover every op of the schedule");
    let mut findings = Vec::new();
    let mut warnings = Vec::new();
    for (op, act) in ops.iter().zip(actual) {
        // A StaleRead declaration is a read declaration with an age bound.
        let declared_reads: BTreeSet<BufId> = op
            .effects
            .reads
            .iter()
            .copied()
            .chain(op.effects.stale_reads.iter().map(|s| s.buf))
            .collect();
        let declared_writes: BTreeSet<BufId> = op.effects.writes.iter().copied().collect();

        for &b in &act.reads {
            if !declared_reads.contains(&b) {
                findings.push(Finding::UndeclaredRead { op: op.id, label: op.desc.label, buf: b });
            }
        }
        for &b in &act.writes {
            if !declared_writes.contains(&b) {
                findings.push(Finding::UndeclaredWrite { op: op.id, label: op.desc.label, buf: b });
            }
        }
        for (&b, &age) in &act.stale {
            let declared = op.effects.stale_age(b);
            if declared.is_none_or(|d| d < age) {
                findings.push(Finding::UndeclaredStaleAge {
                    op: op.id,
                    label: op.desc.label,
                    buf: b,
                    age,
                    declared,
                });
            }
        }

        for &b in &declared_reads {
            if !act.reads.contains(&b) {
                warnings.push(Warning::OverDeclaredRead {
                    op: op.id,
                    label: op.desc.label,
                    buf: b,
                });
            }
        }
        for &b in &declared_writes {
            if act.writes.contains(&b) {
                continue;
            }
            // RMW suppression: the declared write may have landed bytes
            // identical to what the declared-and-performed read saw.
            if declared_reads.contains(&b) && act.reads.contains(&b) {
                continue;
            }
            warnings.push(Warning::OverDeclaredWrite { op: op.id, label: op.desc.label, buf: b });
        }
    }
    canonicalize(&mut findings);
    canonicalize_warnings(&mut warnings);
    EffectAudit { findings, warnings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_gpusim::engine::OpDesc;
    use mggcn_gpusim::{Category, Effects, GpuSpec, MachineSpec, Schedule, StaleRead, Work};

    fn sched_with(fx: Effects) -> Schedule<()> {
        let mut s: Schedule<()> =
            Schedule::new(MachineSpec::uniform("test", GpuSpec::v100(), 1, 6, 25.0e9));
        s.launch_fx(
            0,
            0,
            Work::Fixed { seconds: 0.1 },
            OpDesc::new(Category::Other, "op"),
            &[],
            fx,
            None,
        );
        s
    }

    fn hw() -> BufId {
        BufId::new(0, "HW")
    }

    fn act(reads: &[BufId], writes: &[BufId], stale: &[(BufId, usize)]) -> Vec<ActualEffects> {
        vec![ActualEffects {
            reads: reads.iter().copied().collect(),
            writes: writes.iter().copied().collect(),
            stale: stale.iter().copied().collect(),
        }]
    }

    #[test]
    fn exact_match_is_clean() {
        let s = sched_with(Effects::none().reads([hw()]).writes([BufId::new(0, "BC1")]));
        let audit = audit_effects(&s.op_infos(), &act(&[hw()], &[BufId::new(0, "BC1")], &[]));
        assert!(audit.clean());
        assert!(audit.warnings.is_empty());
        assert!(audit.render().contains("declarations cover every observed access"));
    }

    #[test]
    fn undeclared_read_and_write_are_findings() {
        let s = sched_with(Effects::none().reads([hw()]));
        let bc = BufId::new(0, "BC1");
        let audit = audit_effects(&s.op_infos(), &act(&[hw(), bc], &[bc], &[]));
        assert_eq!(audit.findings.len(), 2);
        assert!(matches!(audit.findings[0], Finding::UndeclaredRead { buf, .. } if buf == bc));
        assert!(matches!(audit.findings[1], Finding::UndeclaredWrite { buf, .. } if buf == bc));
        assert!(!audit.clean());
    }

    #[test]
    fn stale_declaration_counts_as_a_read() {
        let sf = BufId::indexed(0, "SF", 0);
        let s = sched_with(Effects::none().stale([StaleRead { buf: sf, age: 1 }]));
        assert!(audit_effects(&s.op_infos(), &act(&[sf], &[], &[(sf, 1)])).clean());
    }

    #[test]
    fn observed_age_beyond_declared_bound_is_a_finding() {
        let sf = BufId::indexed(0, "SF", 0);
        let s = sched_with(Effects::none().stale([StaleRead { buf: sf, age: 1 }]));
        let audit = audit_effects(&s.op_infos(), &act(&[sf], &[], &[(sf, 2)]));
        assert!(matches!(
            audit.findings[..],
            [Finding::UndeclaredStaleAge { age: 2, declared: Some(1), .. }]
        ));
        // And an undeclared stale consumption on a plain read:
        let plain = sched_with(Effects::none().reads([sf]));
        let audit = audit_effects(&plain.op_infos(), &act(&[sf], &[], &[(sf, 1)]));
        assert!(matches!(
            audit.findings[..],
            [Finding::UndeclaredStaleAge { age: 1, declared: None, .. }]
        ));
    }

    #[test]
    fn over_declarations_are_warnings_with_rmw_suppression() {
        // Declared RMW whose write landed identical bytes: read observed,
        // write not — suppressed. A pure over-declared read still warns.
        let bc = BufId::new(0, "BC1");
        let s = sched_with(Effects::none().rw(hw()).reads([bc]));
        let audit = audit_effects(&s.op_infos(), &act(&[hw()], &[], &[]));
        assert!(audit.clean());
        assert_eq!(audit.warnings.len(), 1);
        assert!(matches!(audit.warnings[0], Warning::OverDeclaredRead { buf, .. } if buf == bc));

        // Without the observed read, the unexercised write warns too.
        let s = sched_with(Effects::none().writes([hw()]));
        let audit = audit_effects(&s.op_infos(), &act(&[], &[], &[]));
        assert!(matches!(audit.warnings[..], [Warning::OverDeclaredWrite { .. }]));
    }

    #[test]
    #[should_panic(expected = "must cover every op")]
    fn mismatched_log_length_panics() {
        let s = sched_with(Effects::none());
        let _ = audit_effects(&s.op_infos(), &[]);
    }
}
