//! DPOR linearization model checking — execute every happens-before-
//! distinct linearization of a schedule and check that the result is
//! identical in all of them.
//!
//! The hazard pass proves *pairwise* conflicting accesses are ordered;
//! this pass proves the global claim the trainer actually relies on: the
//! declared dependency structure pins down the final weights, so any
//! execution order the simulator (or the threaded backend) happens to
//! pick produces bit-identical results. The checker enumerates
//! linear extensions of the HB partial order with **sleep-set partial-
//! order reduction**: two adjacent independent ops commute, so only one
//! representative per Mazurkiewicz trace needs executing. Sleep sets
//! prune the redundant representatives without ever pruning a trace
//! entirely, which keeps the search sound.
//!
//! Two ops are *dependent* when their declared footprints conflict (one
//! writes a buffer the other touches). Treating disjoint-footprint ops
//! as commuting is sound **conditional on the effect-soundness oracle**
//! (pass 1 of the stack): the audit proves each body touches exactly the
//! buffers its site declares, so swapping two adjacent ops with disjoint
//! footprints cannot change any buffer's final contents. Run the audit
//! before trusting the reduction. A hazard-free schedule then has
//! exactly one Mazurkiewicz trace — the single executed representative
//! *is* the proof that every linearization agrees. Setting
//! [`DporOptions::device_dependence`] additionally orders any two ops
//! occupying a shared GPU, exploring orders the footprint relation would
//! prune (a belt-and-braces mode that grows exponentially; pair it with
//! a cap).
//!
//! The caller supplies the execution oracle: a closure mapping a complete
//! linearization to a digest (in practice
//! `mggcn_core::Trainer::linearization_digest`, an FNV hash of every
//! GPU's final weight bits). The first divergent digest is returned as a
//! counterexample; exploration is capped so a pathological schedule
//! reports [`DporResult::truncated`] instead of running forever.

use crate::hb::Hb;
use mggcn_gpusim::{BufId, OpId, OpInfo};
use std::collections::BTreeSet;

/// Knobs for [`model_check`].
#[derive(Clone, Debug)]
pub struct DporOptions {
    /// Maximum complete linearizations to execute before giving up with
    /// `truncated = true`.
    pub max_executions: usize,
    /// Also treat any two ops occupying a shared GPU as dependent, not
    /// just footprint conflicts. Explores device-level interleavings the
    /// (audit-justified) footprint relation prunes; exponentially more
    /// representatives.
    pub device_dependence: bool,
}

impl Default for DporOptions {
    fn default() -> Self {
        Self { max_executions: 4096, device_dependence: false }
    }
}

/// A linearization whose digest differs from the first one executed.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The complete execution order that produced the divergent digest.
    pub order: Vec<OpId>,
    /// Its digest.
    pub digest: u64,
    /// The digest of the first linearization executed.
    pub baseline: u64,
}

/// Outcome of exploring a schedule's linearizations.
#[derive(Clone, Debug)]
pub struct DporResult {
    /// Complete linearizations executed (after sleep-set reduction).
    pub executions: usize,
    /// True when the execution cap stopped exploration early; the
    /// determinism verdict then only covers the executed prefix.
    pub truncated: bool,
    /// Digest of the first linearization, if any was executed.
    pub baseline: Option<u64>,
    /// First counterexample found, if any. Exploration stops at the
    /// first divergence.
    pub divergence: Option<Divergence>,
}

impl DporResult {
    /// Every explored linearization produced the same digest.
    pub fn deterministic(&self) -> bool {
        self.divergence.is_none()
    }
}

struct Search<'a> {
    n: usize,
    /// Direct HB predecessors (lane FIFO + waits + rendezvous edges).
    preds: Vec<Vec<OpId>>,
    /// Symmetric dependence matrix, `n × n` row-major.
    deps: Vec<bool>,
    run: &'a mut dyn FnMut(&[OpId]) -> u64,
    max_executions: usize,
    order: Vec<OpId>,
    done: Vec<bool>,
    result: DporResult,
}

impl Search<'_> {
    fn dependent(&self, a: OpId, b: OpId) -> bool {
        self.deps[a * self.n + b]
    }

    fn finished(&self) -> bool {
        self.result.truncated || self.result.divergence.is_some()
    }

    fn explore(&mut self, sleep: BTreeSet<OpId>) {
        if self.finished() {
            return;
        }
        if self.order.len() == self.n {
            if self.result.executions >= self.max_executions {
                self.result.truncated = true;
                return;
            }
            self.result.executions += 1;
            let digest = (self.run)(&self.order);
            match self.result.baseline {
                None => self.result.baseline = Some(digest),
                Some(baseline) if baseline != digest => {
                    self.result.divergence =
                        Some(Divergence { order: self.order.clone(), digest, baseline });
                }
                _ => {}
            }
            return;
        }
        let enabled: Vec<OpId> = (0..self.n)
            .filter(|&t| !self.done[t] && self.preds[t].iter().all(|&p| self.done[p]))
            .collect();
        // A sleeping transition's subtree is a redundant commutation of a
        // subtree already explored from this node; skipping it here (and
        // dead-ending when nothing else is enabled) is the reduction.
        let mut local_sleep = sleep;
        let candidates: Vec<OpId> =
            enabled.iter().copied().filter(|t| !local_sleep.contains(t)).collect();
        for t in candidates {
            let child_sleep: BTreeSet<OpId> =
                local_sleep.iter().copied().filter(|&s| !self.dependent(s, t)).collect();
            self.done[t] = true;
            self.order.push(t);
            self.explore(child_sleep);
            self.order.pop();
            self.done[t] = false;
            if self.finished() {
                return;
            }
            local_sleep.insert(t);
        }
    }
}

/// Footprint of one op for the dependence relation: buffers written,
/// buffers touched at all, and GPUs occupied.
struct Footprint {
    writes: BTreeSet<BufId>,
    touches: BTreeSet<BufId>,
    gpus: BTreeSet<usize>,
}

impl Footprint {
    fn of(op: &OpInfo<'_>) -> Self {
        let writes: BTreeSet<BufId> = op.effects.writes.iter().copied().collect();
        let touches: BTreeSet<BufId> = op
            .effects
            .reads
            .iter()
            .copied()
            .chain(op.effects.stale_reads.iter().map(|s| s.buf))
            .chain(writes.iter().copied())
            .collect();
        let gpus = op.lanes.iter().map(|&(g, _)| g).collect();
        Self { writes, touches, gpus }
    }

    fn conflicts(&self, other: &Self, device_dependence: bool) -> bool {
        if device_dependence && self.gpus.iter().any(|g| other.gpus.contains(g)) {
            return true;
        }
        self.writes.iter().any(|b| other.touches.contains(b))
            || other.writes.iter().any(|b| self.touches.contains(b))
    }
}

/// Explore every HB-distinct linearization of `ops` (one representative
/// per Mazurkiewicz trace), executing each through `run` and comparing
/// digests. The schedule must be deadlock-free (panics on an HB cycle —
/// run [`crate::analyze_ops`] first).
pub fn model_check(
    ops: &[OpInfo<'_>],
    opts: &DporOptions,
    run: &mut dyn FnMut(&[OpId]) -> u64,
) -> DporResult {
    let hb = Hb::of_ops(ops);
    assert!(hb.cycle.is_none(), "model_check requires a deadlock-free schedule");
    let n = ops.len();
    let mut preds: Vec<Vec<OpId>> = vec![Vec::new(); n];
    for &(from, to) in &hb.edges {
        preds[to].push(from);
    }
    let footprints: Vec<Footprint> = ops.iter().map(Footprint::of).collect();
    let mut deps = vec![false; n * n];
    for a in 0..n {
        for b in (a + 1)..n {
            if footprints[a].conflicts(&footprints[b], opts.device_dependence) {
                deps[a * n + b] = true;
                deps[b * n + a] = true;
            }
        }
    }
    let mut search = Search {
        n,
        preds,
        deps,
        run,
        max_executions: opts.max_executions,
        order: Vec::with_capacity(n),
        done: vec![false; n],
        result: DporResult { executions: 0, truncated: false, baseline: None, divergence: None },
    };
    search.explore(BTreeSet::new());
    search.result
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_gpusim::engine::OpDesc;
    use mggcn_gpusim::{Category, Effects, GpuSpec, MachineSpec, Schedule, Work};

    fn machine(n: usize) -> MachineSpec {
        MachineSpec::uniform("test", GpuSpec::v100(), n, 6, 25.0e9)
    }

    fn fixed() -> Work {
        Work::Fixed { seconds: 0.1 }
    }

    fn desc(label: &'static str) -> OpDesc {
        OpDesc::new(Category::Other, label)
    }

    /// Order-sensitive digest: distinguishes any two distinct orders.
    fn order_digest(order: &[OpId]) -> u64 {
        order
            .iter()
            .fold(0xcbf29ce484222325u64, |h, &id| (h ^ id as u64).wrapping_mul(0x100000001b3))
    }

    #[test]
    fn fully_independent_ops_explore_one_representative() {
        // Three ops on three GPUs, disjoint buffers: 6 linearizations,
        // one Mazurkiewicz trace — sleep sets prune to a single run.
        let mut s: Schedule<()> = Schedule::new(machine(3));
        for g in 0..3 {
            s.launch_fx(
                g,
                0,
                fixed(),
                desc("w"),
                &[],
                Effects::none().writes([BufId::new(g, "HW")]),
                None,
            );
        }
        let mut count = 0usize;
        let r = model_check(&s.op_infos(), &DporOptions::default(), &mut |_| {
            count += 1;
            42
        });
        assert_eq!(r.executions, 1);
        assert_eq!(count, 1);
        assert!(r.deterministic());
        assert!(!r.truncated);
        assert_eq!(r.baseline, Some(42));
    }

    #[test]
    fn dependent_unordered_ops_explore_both_orders_and_catch_divergence() {
        // Two ops writing the same buffer, no wait edge: dependent, so
        // both orders run — and an order-sensitive oracle reports the
        // divergence.
        let mut s: Schedule<()> = Schedule::new(machine(1));
        let shared = BufId::new(0, "HW");
        s.launch_fx(0, 0, fixed(), desc("a"), &[], Effects::none().writes([shared]), None);
        s.launch_fx(0, 1, fixed(), desc("b"), &[], Effects::none().writes([shared]), None);
        let r = model_check(&s.op_infos(), &DporOptions::default(), &mut order_digest);
        assert_eq!(r.executions, 2);
        let d = r.divergence.expect("order-sensitive digest must diverge");
        assert_ne!(d.digest, d.baseline);
        assert_eq!(d.order.len(), 2);
    }

    #[test]
    fn device_dependence_orders_disjoint_footprints_on_a_shared_gpu() {
        // Disjoint buffers on one GPU: independent under the default
        // relation (one representative), dependent in device mode (both
        // orders).
        let build = || {
            let mut s: Schedule<()> = Schedule::new(machine(1));
            s.launch_fx(
                0,
                0,
                fixed(),
                desc("a"),
                &[],
                Effects::none().writes([BufId::new(0, "HW")]),
                None,
            );
            s.launch_fx(
                0,
                1,
                fixed(),
                desc("b"),
                &[],
                Effects::none().writes([BufId::new(0, "RP")]),
                None,
            );
            s
        };
        let footprint =
            model_check(&build().op_infos(), &DporOptions::default(), &mut order_digest);
        assert_eq!(footprint.executions, 1);
        let device = model_check(
            &build().op_infos(),
            &DporOptions { device_dependence: true, ..DporOptions::default() },
            &mut order_digest,
        );
        assert_eq!(device.executions, 2);
        assert!(device.divergence.is_some());
    }

    #[test]
    fn wait_edges_leave_a_single_linearization() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        let a = s.launch_fx(0, 0, fixed(), desc("a"), &[], Effects::none(), None);
        let b = s.launch_fx(0, 1, fixed(), desc("b"), &[a], Effects::none(), None);
        s.launch_fx(0, 0, fixed(), desc("c"), &[b], Effects::none(), None);
        let r = model_check(&s.op_infos(), &DporOptions::default(), &mut order_digest);
        assert_eq!(r.executions, 1);
        assert!(r.deterministic());
    }

    #[test]
    fn execution_cap_truncates() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_fx(0, 0, fixed(), desc("a"), &[], Effects::none(), None);
        s.launch_fx(0, 1, fixed(), desc("b"), &[], Effects::none(), None);
        let r = model_check(
            &s.op_infos(),
            &DporOptions { max_executions: 1, device_dependence: true },
            &mut |_| 7,
        );
        assert_eq!(r.executions, 1);
        assert!(r.truncated);
        assert!(r.deterministic(), "no divergence seen within the cap");
    }

    #[test]
    #[should_panic(expected = "deadlock-free")]
    fn cyclic_schedules_are_rejected() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        let p = s.launch(0, 1, fixed(), desc("p"), &[], None);
        s.launch(0, 0, fixed(), desc("x"), &[p + 2], None);
        s.launch(0, 0, fixed(), desc("y"), &[], None);
        let _ = model_check(&s.op_infos(), &DporOptions::default(), &mut |_| 0);
    }

    /// A conflicting-footprint pair on *different* GPUs is still
    /// dependent — buffer conflicts, not just device sharing.
    #[test]
    fn cross_gpu_footprint_conflict_is_dependent() {
        let mut s: Schedule<()> = Schedule::new(machine(2));
        let shared = BufId::new(0, "BC1");
        s.launch_fx(0, 0, fixed(), desc("w"), &[], Effects::none().writes([shared]), None);
        s.launch_fx(1, 0, fixed(), desc("r"), &[], Effects::none().reads([shared]), None);
        let r = model_check(&s.op_infos(), &DporOptions::default(), &mut order_digest);
        assert_eq!(r.executions, 2, "both orders of a dependent pair must run");
        assert!(r.divergence.is_some());
    }
}
