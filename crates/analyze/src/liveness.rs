//! Live-range extraction and buffer coloring — the §4.2 `L + 3` bound as
//! a property of the schedule.
//!
//! `core::memplan` *budgets* `L + 3` big buffers per GPU (`AHW.0..L-1`,
//! `HW`, `BC1`, `BC2`); this module *proves* the schedule's big-buffer
//! traffic is colorable within that budget. Per GPU:
//!
//! 1. Split each physical buffer's accesses into **value ranges**: a pure
//!    write (write without read — `gemm` overwriting `HW`) starts a new
//!    value; read-modify-writes (in-place ReLU, accumulating SpMM) extend
//!    the current one. A range is live from its defining op to its last
//!    access.
//! 2. Two ranges on *different* physical buffers **interfere** unless one
//!    range's last access happens-before the other's definition — only
//!    then could a single allocation serve both.
//! 3. **Greedily color** ranges in definition order; the color count is
//!    the number of physical buffers the schedule actually needs.
//!
//! This distinguishes allocation from necessity: with `overlap` on, the
//! double-buffered broadcast makes `BC1`/`BC2` ranges genuinely
//! concurrent (need = `L + 3`); serialized schedules (`overlap` off, or
//! `P = 1` where only one stage exists) color with fewer — the analyzer
//! shows the second broadcast buffer is bought *for* the overlap.
//!
//! Runs only on hazard-free schedules: hazard-freedom makes every pair of
//! conflicting accesses HB-ordered, so per-buffer access sequences have a
//! well-defined order and range splitting is sound.

use crate::hb::Hb;
use mggcn_gpusim::{BufId, OpId, OpInfo};
use std::collections::BTreeMap;

/// Liveness result over the whole schedule (maxima across GPUs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Liveness {
    /// Distinct physical big buffers referenced (max over GPUs) — what the
    /// schedule *names*.
    pub buffers_bound: usize,
    /// Colors needed for the live ranges (max over GPUs) — what the
    /// schedule *needs*.
    pub buffers_needed: usize,
    /// Per-GPU `(gpu, named, needed)` rows, ascending by GPU.
    pub per_gpu: Vec<(usize, usize, usize)>,
}

/// One value range on one physical buffer.
struct Range {
    buf: BufId,
    def: OpId,
    last: OpId,
    def_pos: usize,
}

/// Compute liveness of the big-buffer families in `names` over a
/// hazard-free schedule.
pub fn liveness(ops: &[OpInfo<'_>], hb: &Hb, names: &[&str]) -> Liveness {
    // (gpu, buf) -> accesses (op, reads, writes) in topo order.
    let mut accesses: BTreeMap<BufId, Vec<(OpId, bool, bool)>> = BTreeMap::new();
    for op in ops {
        let mut per_op: BTreeMap<BufId, (bool, bool)> = BTreeMap::new();
        for &b in &op.effects.reads {
            if names.contains(&b.name) {
                per_op.entry(b).or_default().0 = true;
            }
        }
        for &b in &op.effects.writes {
            if names.contains(&b.name) {
                per_op.entry(b).or_default().1 = true;
            }
        }
        for (b, (r, w)) in per_op {
            accesses.entry(b).or_default().push((op.id, r, w));
        }
    }
    for list in accesses.values_mut() {
        list.sort_by_key(|&(op, _, _)| hb.topo_pos(op));
    }

    // Split into value ranges.
    let mut ranges_by_gpu: BTreeMap<usize, Vec<Range>> = BTreeMap::new();
    for (&buf, list) in &accesses {
        let ranges = ranges_by_gpu.entry(buf.gpu).or_default();
        let mut current: Option<Range> = None;
        for &(op, r, w) in list {
            let pure_write = w && !r;
            match &mut current {
                Some(range) if !pure_write => range.last = op,
                _ => {
                    // A pure write starts a new value; so does the first
                    // access (a read of a live-in value).
                    if let Some(done) = current.take() {
                        ranges.push(done);
                    }
                    current = Some(Range { buf, def: op, last: op, def_pos: hb.topo_pos(op) });
                }
            }
        }
        if let Some(done) = current.take() {
            ranges.push(done);
        }
    }

    let mut per_gpu: Vec<(usize, usize, usize)> = Vec::new();
    for (&gpu, ranges) in &mut ranges_by_gpu {
        // The coloring question is posed over *physical buffers* (each is
        // one allocation): two buffers can share an allocation iff no pair
        // of their value ranges interferes. Same-buffer ranges are
        // time-sliced by construction and never conflict.
        ranges.sort_by_key(|r| (r.def_pos, r.buf));
        let mut bufs: Vec<BufId> = Vec::new(); // unique, first-definition order
        for r in ranges.iter() {
            if !bufs.contains(&r.buf) {
                bufs.push(r.buf);
            }
        }
        let named = bufs.len();
        let ranges_of = |b: BufId| ranges.iter().filter(move |r| r.buf == b);
        let interferes = |a: BufId, b: BufId| -> bool {
            ranges_of(a).any(|ra| {
                ranges_of(b).any(|rb| !hb.ordered(ra.last, rb.def) && !hb.ordered(rb.last, ra.def))
            })
        };
        // Greedy coloring in first-definition order.
        let mut colors: Vec<usize> = Vec::with_capacity(named);
        let mut needed = 0usize;
        for (i, &b) in bufs.iter().enumerate() {
            let mut used = vec![false; needed + 1];
            for (j, &prev) in bufs[..i].iter().enumerate() {
                if interferes(prev, b) {
                    used[colors[j]] = true;
                }
            }
            let c = used.iter().position(|&u| !u).expect("a free color exists");
            colors.push(c);
            needed = needed.max(c + 1);
        }
        per_gpu.push((gpu, named, needed));
    }

    Liveness {
        buffers_bound: per_gpu.iter().map(|&(_, n, _)| n).max().unwrap_or(0),
        buffers_needed: per_gpu.iter().map(|&(_, _, c)| c).max().unwrap_or(0),
        per_gpu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_gpusim::engine::OpDesc;
    use mggcn_gpusim::{Category, Effects, GpuSpec, MachineSpec, Schedule, Work};

    fn machine(n: usize) -> MachineSpec {
        MachineSpec::uniform("test", GpuSpec::v100(), n, 6, 25.0e9)
    }

    fn fixed() -> Work {
        Work::Fixed { seconds: 0.1 }
    }

    fn desc(label: &'static str) -> OpDesc {
        OpDesc::new(Category::Other, label)
    }

    fn run(s: &Schedule<()>, names: &[&str]) -> Liveness {
        let infos = s.op_infos();
        let hb = Hb::of_ops(&infos);
        liveness(&infos, &hb, names)
    }

    #[test]
    fn empty_schedule_has_zero_everything() {
        let s: Schedule<()> = Schedule::new(machine(2));
        let lv = run(&s, &["AHW", "HW", "BC1", "BC2"]);
        assert_eq!(lv.buffers_bound, 0);
        assert_eq!(lv.buffers_needed, 0);
        assert!(lv.per_gpu.is_empty());
    }

    #[test]
    fn single_op_schedule_needs_exactly_one_buffer() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_fx(
            0,
            0,
            fixed(),
            desc("w"),
            &[],
            Effects::none().writes([BufId::new(0, "HW")]),
            None,
        );
        let lv = run(&s, &["HW"]);
        assert_eq!(lv.buffers_bound, 1);
        assert_eq!(lv.buffers_needed, 1);
        assert_eq!(lv.per_gpu, vec![(0, 1, 1)]);
        // An op outside the requested families is invisible.
        assert_eq!(run(&s, &["BC1"]).buffers_bound, 0);
    }

    /// P=1 single-lane "collective" degenerate case: the broadcast family
    /// time-slices on the one lane, so one BC buffer suffices even though
    /// two are named — the §4.2 claim that BC2 is bought for the overlap.
    #[test]
    fn single_lane_collectives_at_p1_share_one_allocation() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        for slot in 0..2 {
            let name = if slot == 0 { "BC1" } else { "BC2" };
            let b = BufId::new(0, name);
            s.collective_fx(
                &[(0, 0)],
                1.0e6,
                25.0e9,
                desc("bcast"),
                &[],
                Effects::none().writes([b]),
                None,
            );
            s.launch_fx(0, 0, fixed(), desc("spmm"), &[], Effects::none().reads([b]), None);
        }
        let lv = run(&s, &["BC1", "BC2"]);
        assert_eq!(lv.buffers_bound, 2, "both slots are named");
        assert_eq!(lv.buffers_needed, 1, "one lane time-slices them");
    }

    /// An RMW-only chain (accumulating SpMM shape: one defining write,
    /// then rw, rw, ...) is a single value range — and re-derives the
    /// §4.2 count: a second buffer defined strictly after the chain's
    /// last access shares its allocation.
    #[test]
    fn rmw_only_chain_is_one_range_and_frees_its_color() {
        let a = BufId::indexed(0, "AHW", 0);
        let b = BufId::new(0, "HW");
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_fx(0, 0, fixed(), desc("def"), &[], Effects::none().writes([a]), None);
        for _ in 0..3 {
            s.launch_fx(0, 0, fixed(), desc("acc"), &[], Effects::none().rw(a), None);
        }
        s.launch_fx(0, 0, fixed(), desc("def-b"), &[], Effects::none().writes([b]), None);
        s.launch_fx(0, 0, fixed(), desc("use-b"), &[], Effects::none().reads([b]), None);
        let lv = run(&s, &["AHW", "HW"]);
        assert_eq!(lv.buffers_bound, 2);
        assert_eq!(lv.buffers_needed, 1, "the RMW chain must not split into ranges");

        // Contrast: pure writes split values, but same-buffer ranges
        // still time-slice — a fresh def of `a` mid-chain changes nothing
        // for the count.
        s.launch_fx(0, 0, fixed(), desc("redef"), &[], Effects::none().writes([a]), None);
        s.launch_fx(0, 0, fixed(), desc("use-a"), &[], Effects::none().reads([a]), None);
        let lv = run(&s, &["AHW", "HW"]);
        assert_eq!(lv.buffers_needed, 1);
    }
}
