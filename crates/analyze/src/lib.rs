//! mggcn-analyze — static verification of recorded schedules.
//!
//! The engine warns that "a schedule missing a double-buffer WAR
//! dependency will corrupt real data the same way real hardware would"
//! (`gpusim::engine`). This crate turns that class of bug into a static
//! finding: every `launch_fx`/`collective_fx` site declares the logical
//! buffers it reads and writes ([`mggcn_gpusim::Effects`]), and three
//! analyses run over the happens-before relation induced by lane FIFOs,
//! explicit waits, and collective rendezvous ([`hb::Hb`]):
//!
//! 1. **Hazard detection** — every RAW/WAR/WAW pair on the same buffer
//!    must be HB-ordered ([`Finding::Hazard`] otherwise);
//! 2. **Deadlock-freedom** — the dependency digraph must be acyclic; a
//!    cycle is exactly a simulator deadlock and a threaded-backend hang
//!    ([`Finding::Deadlock`]);
//! 3. **Liveness coloring** — big-buffer live ranges must be colorable
//!    within `core::memplan`'s `L + 3` budget ([`Finding::OverBudget`];
//!    see [`liveness`]).
//!
//! Entry points: [`analyze`] (hazards + deadlock), [`analyze_budget`]
//! (adds the liveness bound), and [`preflight`] (the cheap gate
//! `mggcn-exec` runs before spawning workers). The CLI surface is
//! `mggcn analyze`.

pub mod hb;
pub mod liveness;

pub use hb::Hb;
pub use liveness::Liveness;

use mggcn_gpusim::{BufId, OpId, OpInfo, Schedule};
use std::collections::BTreeMap;
use std::fmt;

/// Data-race kind, named from the id-order of the unordered pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HazardKind {
    /// Read-after-write unordered.
    Raw,
    /// Write-after-read unordered (the dropped double-buffer edge class).
    War,
    /// Write-after-write unordered.
    Waw,
}

impl HazardKind {
    pub fn name(&self) -> &'static str {
        match self {
            HazardKind::Raw => "RAW",
            HazardKind::War => "WAR",
            HazardKind::Waw => "WAW",
        }
    }
}

/// One verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Finding {
    /// Two conflicting accesses to `buf` with no happens-before order:
    /// the body outcome depends on simulated timing — real corruption.
    Hazard {
        kind: HazardKind,
        buf: BufId,
        first: OpId,
        first_label: &'static str,
        second: OpId,
        second_label: &'static str,
    },
    /// The dependency digraph has a cycle: the schedule deadlocks in the
    /// simulator and hangs the threaded backend.
    Deadlock { cycle: Vec<OpId> },
    /// A GPU's live ranges need more big buffers than the plan budgets.
    OverBudget { gpu: usize, needed: usize, budget: usize },
    /// An epoch-tagged op reads `buf` whose last happens-before writer ran
    /// `age` epochs earlier, without declaring a sufficient
    /// [`mggcn_gpusim::StaleRead`] bound. Cross-epoch consumption must be
    /// *explicit state*, never an accident: a bounded-staleness pipeline
    /// declares every such read (and is then clean); anything else is a
    /// latent ordering bug even though the pair is HB-ordered.
    StaleRead {
        buf: BufId,
        writer: OpId,
        writer_label: &'static str,
        reader: OpId,
        reader_label: &'static str,
        /// Actual epoch gap between writer and reader.
        age: usize,
        /// The bound the reader declared, if any (insufficient when `Some`).
        declared: Option<usize>,
    },
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::Hazard { kind, buf, first, first_label, second, second_label } => write!(
                f,
                "{} hazard on {buf}: op {first} ({first_label}) and op {second} \
                 ({second_label}) are not ordered",
                kind.name()
            ),
            Finding::Deadlock { cycle } => {
                let ids: Vec<String> = cycle.iter().map(|id| id.to_string()).collect();
                write!(f, "dependency cycle (deadlock): ops [{}]", ids.join(" -> "))
            }
            Finding::OverBudget { gpu, needed, budget } => {
                write!(f, "GPU {gpu} needs {needed} big buffers but the plan budgets {budget}")
            }
            Finding::StaleRead {
                buf,
                writer,
                writer_label,
                reader,
                reader_label,
                age,
                declared,
            } => match declared {
                None => write!(
                    f,
                    "undeclared stale read of {buf}: op {reader} ({reader_label}) consumes \
                         op {writer} ({writer_label}) from {age} epoch(s) earlier without a \
                         StaleRead declaration"
                ),
                Some(d) => write!(
                    f,
                    "under-declared stale read of {buf}: op {reader} ({reader_label}) \
                         declares age<={d} but consumes op {writer} ({writer_label}) from \
                         {age} epoch(s) earlier"
                ),
            },
        }
    }
}

/// The big-buffer family names and budget the liveness analysis checks.
#[derive(Clone, Debug)]
pub struct BudgetSpec {
    /// Buffer family names counted as "big" (per-GPU `n/P × d` buffers).
    pub names: Vec<&'static str>,
    /// Maximum allocations the plan budgets per GPU.
    pub budget: usize,
}

impl BudgetSpec {
    /// The MG-GCN §4.2 plan: `L` activation buffers + `HW` + the two
    /// broadcast buffers, for a model with `layers` layers.
    pub fn mg_gcn(layers: usize) -> Self {
        Self { names: vec!["AHW", "HW", "BC1", "BC2"], budget: layers + 3 }
    }

    /// The 1.5D (c = 2) plan: everything in [`BudgetSpec::mg_gcn`] plus the
    /// replicated-partial buffer `RP` that accumulates the mate partition's
    /// SpMM result between the intra-group broadcasts and the cross-group
    /// reduction — the §5.1 memory-replication cost, L+4 per GPU.
    pub fn mg_gcn_15d(layers: usize) -> Self {
        Self { names: vec!["AHW", "HW", "BC1", "BC2", "RP"], budget: layers + 4 }
    }

    /// Extend a plan with the bounded-staleness snapshot family `SF`:
    /// `sf` extra per-GPU big buffers hold the previous epoch's broadcast
    /// sources (one per non-constant broadcast source; the 2-layer spmm-first
    /// model needs exactly one, hence the §15 L+4 → L+5 delta on 1.5D).
    pub fn with_staleness(mut self, sf: usize) -> Self {
        if sf > 0 {
            self.names.push("SF");
            self.budget += sf;
        }
        self
    }
}

/// Result of verifying one schedule.
#[derive(Clone, Debug)]
pub struct Report {
    /// Ops in the schedule.
    pub ops: usize,
    /// Deduplicated dependency edges (lane-FIFO adjacency + waits).
    pub edges: usize,
    /// All verification failures, in detection order.
    pub findings: Vec<Finding>,
    /// Liveness result; `None` when the schedule deadlocks or has
    /// hazards (ranges are ill-defined then), or when no op declares
    /// effects on the requested buffer families.
    pub liveness: Option<Liveness>,
    /// The budget the liveness result was checked against, if any.
    pub budget: Option<usize>,
}

impl Report {
    /// No findings of any class.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable summary (the non-`--dump` CLI output).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{} ops, {} dependency edges", self.ops, self.edges);
        if let Some(lv) = &self.liveness {
            let budget = self.budget.map(|b| format!(", budget {b}")).unwrap_or_default();
            let _ = writeln!(
                out,
                "liveness: {} big buffers named, {} needed{budget}",
                lv.buffers_bound, lv.buffers_needed
            );
            for &(gpu, named, needed) in &lv.per_gpu {
                let _ = writeln!(out, "  gpu {gpu}: {named} named, {needed} needed");
            }
        }
        if self.findings.is_empty() {
            let _ = writeln!(out, "no findings");
        } else {
            let _ = writeln!(out, "{} finding(s):", self.findings.len());
            for f in &self.findings {
                let _ = writeln!(out, "  {f}");
            }
        }
        out
    }
}

/// Verify hazards + deadlock-freedom over recorded op metadata; with a
/// [`BudgetSpec`], also check the liveness coloring against the budget.
pub fn analyze_ops(ops: &[OpInfo<'_>], budget: Option<&BudgetSpec>) -> Report {
    let hb = Hb::of_ops(ops);
    let mut findings = Vec::new();

    if let Some(cycle) = &hb.cycle {
        findings.push(Finding::Deadlock { cycle: clone_cycle(cycle) });
        return Report {
            ops: ops.len(),
            edges: hb.edges.len(),
            findings,
            liveness: None,
            budget: budget.map(|b| b.budget),
        };
    }

    // Hazards: group accesses per buffer; every conflicting pair (at
    // least one write, distinct ops) must be HB-ordered.
    let mut accesses: BTreeMap<BufId, Vec<(OpId, bool, &'static str)>> = BTreeMap::new();
    for op in ops {
        for &b in &op.effects.reads {
            accesses.entry(b).or_default().push((op.id, false, op.desc.label));
        }
        for &b in &op.effects.writes {
            accesses.entry(b).or_default().push((op.id, true, op.desc.label));
        }
    }
    for (&buf, list) in &accesses {
        for (i, &(a, a_w, a_label)) in list.iter().enumerate() {
            for &(b, b_w, b_label) in &list[i + 1..] {
                if a == b || (!a_w && !b_w) {
                    continue;
                }
                if hb.ordered(a, b) || hb.ordered(b, a) {
                    continue;
                }
                let (first, first_label, first_w, second, second_label, second_w) = if a < b {
                    (a, a_label, a_w, b, b_label, b_w)
                } else {
                    (b, b_label, b_w, a, a_label, a_w)
                };
                let kind = match (first_w, second_w) {
                    (true, true) => HazardKind::Waw,
                    (true, false) => HazardKind::Raw,
                    (false, true) => HazardKind::War,
                    (false, false) => unreachable!("read/read pairs are skipped"),
                };
                let finding =
                    Finding::Hazard { kind, buf, first, first_label, second, second_label };
                if !findings.contains(&finding) {
                    findings.push(finding);
                }
            }
        }
    }

    // Cross-epoch pass (fused bounded-staleness schedules only): a read
    // whose *last* happens-before writer belongs to an earlier epoch is a
    // stale consumption and must carry a sufficient StaleRead declaration.
    // Such pairs are HB-ordered — the plain hazard pass cannot see them —
    // but an undeclared one means the schedule silently trains on old
    // state. Classic one-epoch schedules carry no epoch tags and skip
    // this entirely.
    if ops.iter().any(|op| op.desc.epoch.is_some()) && hb.cycle.is_none() {
        type WriterRec = (OpId, Option<usize>, &'static str);
        let mut writers: BTreeMap<BufId, Vec<WriterRec>> = BTreeMap::new();
        for op in ops {
            for &b in &op.effects.writes {
                writers.entry(b).or_default().push((op.id, op.desc.epoch, op.desc.label));
            }
        }
        for op in ops {
            let Some(reader_epoch) = op.desc.epoch else { continue };
            for &b in &op.effects.reads {
                let Some(list) = writers.get(&b) else { continue };
                let mut last: Option<WriterRec> = None;
                for &(w, we, wl) in list {
                    if w == op.id || !hb.ordered(w, op.id) {
                        continue;
                    }
                    if last.is_none_or(|(l, _, _)| hb.topo_pos(l) < hb.topo_pos(w)) {
                        last = Some((w, we, wl));
                    }
                }
                let Some((writer, Some(writer_epoch), writer_label)) = last else { continue };
                let age = reader_epoch.saturating_sub(writer_epoch);
                if age == 0 {
                    continue;
                }
                let declared = op.effects.stale_age(b);
                if declared.is_some_and(|d| d >= age) {
                    continue;
                }
                let finding = Finding::StaleRead {
                    buf: b,
                    writer,
                    writer_label,
                    reader: op.id,
                    reader_label: op.desc.label,
                    age,
                    declared,
                };
                if !findings.contains(&finding) {
                    findings.push(finding);
                }
            }
        }
    }

    // Liveness only over hazard-free schedules (ranges need an order).
    let liveness = if findings.is_empty() {
        budget.and_then(|spec| {
            let lv = liveness::liveness(ops, &hb, &spec.names);
            if lv.buffers_bound == 0 {
                return None; // no effects declared on these families
            }
            for &(gpu, _, needed) in &lv.per_gpu {
                if needed > spec.budget {
                    findings.push(Finding::OverBudget { gpu, needed, budget: spec.budget });
                }
            }
            Some(lv)
        })
    } else {
        None
    };

    Report {
        ops: ops.len(),
        edges: hb.edges.len(),
        findings,
        liveness,
        budget: budget.map(|b| b.budget),
    }
}

fn clone_cycle(cycle: &[OpId]) -> Vec<OpId> {
    cycle.to_vec()
}

/// Verify a recorded schedule: hazards + deadlock-freedom.
pub fn analyze<Ctx>(sched: &Schedule<Ctx>) -> Report {
    analyze_ops(&sched.op_infos(), None)
}

/// Verify a recorded schedule including the liveness budget check.
pub fn analyze_budget<Ctx>(sched: &Schedule<Ctx>, spec: &BudgetSpec) -> Report {
    analyze_ops(&sched.op_infos(), Some(spec))
}

/// Cheap pre-flight gate for executors: hazards + deadlock only. Returns
/// the first finding rendered, so a racy or deadlocking schedule is
/// rejected before any worker thread starts.
pub fn preflight<Ctx>(sched: &Schedule<Ctx>) -> Result<(), String> {
    let report = analyze(sched);
    match report.findings.first() {
        None => Ok(()),
        Some(f) => Err(format!(
            "schedule fails static verification ({} finding(s)); first: {f}",
            report.findings.len()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_gpusim::engine::OpDesc;
    use mggcn_gpusim::{Category, Effects, GpuSpec, MachineSpec, Work};

    fn machine(n: usize) -> MachineSpec {
        MachineSpec::uniform("test", GpuSpec::v100(), n, 6, 25.0e9)
    }

    fn fixed() -> Work {
        Work::Fixed { seconds: 0.1 }
    }

    fn desc(label: &'static str) -> OpDesc {
        OpDesc::new(Category::Other, label)
    }

    fn bc(gpu: usize, slot: usize) -> BufId {
        BufId::new(gpu, if slot == 0 { "BC1" } else { "BC2" })
    }

    /// Two ops on different streams touching one buffer, no edge.
    #[test]
    fn unordered_conflict_is_a_hazard() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_fx(0, 0, fixed(), desc("w"), &[], Effects::none().writes([bc(0, 0)]), None);
        s.launch_fx(0, 1, fixed(), desc("r"), &[], Effects::none().reads([bc(0, 0)]), None);
        let r = analyze(&s);
        assert_eq!(r.findings.len(), 1);
        match &r.findings[0] {
            Finding::Hazard { kind, first, second, .. } => {
                assert_eq!(*kind, HazardKind::Raw);
                assert_eq!((*first, *second), (0, 1));
            }
            other => panic!("expected hazard, got {other}"),
        }
    }

    #[test]
    fn wait_edge_resolves_the_hazard() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        let w =
            s.launch_fx(0, 0, fixed(), desc("w"), &[], Effects::none().writes([bc(0, 0)]), None);
        s.launch_fx(0, 1, fixed(), desc("r"), &[w], Effects::none().reads([bc(0, 0)]), None);
        assert!(analyze(&s).clean());
    }

    #[test]
    fn lane_fifo_resolves_the_hazard() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_fx(0, 0, fixed(), desc("w"), &[], Effects::none().writes([bc(0, 0)]), None);
        s.launch_fx(0, 0, fixed(), desc("r"), &[], Effects::none().reads([bc(0, 0)]), None);
        assert!(analyze(&s).clean());
    }

    #[test]
    fn reads_never_conflict() {
        let mut s: Schedule<()> = Schedule::new(machine(2));
        s.launch_fx(0, 0, fixed(), desc("r1"), &[], Effects::none().reads([bc(0, 0)]), None);
        s.launch_fx(1, 0, fixed(), desc("r2"), &[], Effects::none().reads([bc(0, 0)]), None);
        assert!(analyze(&s).clean());
    }

    #[test]
    fn distinct_buffers_never_conflict() {
        let mut s: Schedule<()> = Schedule::new(machine(2));
        s.launch_fx(0, 0, fixed(), desc("w0"), &[], Effects::none().writes([bc(0, 0)]), None);
        // Same name, different GPU: a different physical buffer.
        s.launch_fx(1, 0, fixed(), desc("w1"), &[], Effects::none().writes([bc(1, 0)]), None);
        assert!(analyze(&s).clean());
    }

    #[test]
    fn war_kind_is_reported() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_fx(0, 0, fixed(), desc("r"), &[], Effects::none().reads([bc(0, 0)]), None);
        s.launch_fx(0, 1, fixed(), desc("w"), &[], Effects::none().writes([bc(0, 0)]), None);
        let r = analyze(&s);
        match &r.findings[0] {
            Finding::Hazard { kind, .. } => assert_eq!(*kind, HazardKind::War),
            other => panic!("expected WAR, got {other}"),
        }
    }

    #[test]
    fn deadlock_preempts_other_analyses() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        let placeholder = s.launch(0, 1, fixed(), desc("p"), &[], None);
        s.launch(0, 0, fixed(), desc("x"), &[placeholder + 2], None);
        s.launch(0, 0, fixed(), desc("y"), &[], None);
        let r = analyze_budget(&s, &BudgetSpec::mg_gcn(2));
        assert_eq!(r.findings.len(), 1);
        assert!(matches!(r.findings[0], Finding::Deadlock { .. }));
        assert!(r.liveness.is_none());
        assert!(preflight(&s).is_err());
    }

    /// Double-buffered broadcast pipeline: serial analysis needs 1 BC
    /// buffer, overlapped needs 2, and an over-tight budget is flagged.
    #[test]
    fn liveness_counts_overlapping_bc_ranges() {
        let build = |overlapped: bool| {
            let mut s: Schedule<()> = Schedule::new(machine(1));
            let comm = usize::from(overlapped);
            let mut readers: [Option<OpId>; 2] = [None, None];
            for stage in 0..4 {
                let slot = stage % 2;
                // WAR: the slot's next broadcast waits on its last reader.
                let waits: Vec<OpId> = readers[slot].into_iter().collect();
                let w = s.launch_fx(
                    0,
                    comm,
                    fixed(),
                    desc("bcast"),
                    &waits,
                    Effects::none().writes([bc(0, slot)]),
                    None,
                );
                let r = s.launch_fx(
                    0,
                    0,
                    fixed(),
                    desc("spmm"),
                    &[w],
                    Effects::none().reads([bc(0, slot)]),
                    None,
                );
                readers[slot] = Some(r);
            }
            s
        };
        let serial = analyze_budget(&build(false), &BudgetSpec::mg_gcn(0));
        assert!(serial.clean(), "{}", serial.render());
        assert_eq!(serial.liveness.as_ref().unwrap().buffers_needed, 1);

        let overlapped = analyze_budget(&build(true), &BudgetSpec::mg_gcn(0));
        assert!(overlapped.clean(), "{}", overlapped.render());
        let lv = overlapped.liveness.as_ref().unwrap();
        assert_eq!(lv.buffers_bound, 2);
        assert_eq!(lv.buffers_needed, 2);

        // Budget 1 (layers such that L+3 == 1 is impossible via mg_gcn;
        // hand-roll) must flag the overlapped pipeline.
        let spec = BudgetSpec { names: vec!["BC1", "BC2"], budget: 1 };
        let tight = analyze_budget(&build(true), &spec);
        assert!(matches!(
            tight.findings[..],
            [Finding::OverBudget { gpu: 0, needed: 2, budget: 1 }]
        ));
    }

    #[test]
    fn budget_15d_adds_the_rp_family() {
        let spec = BudgetSpec::mg_gcn_15d(2);
        assert_eq!(spec.budget, 6); // L+4
        assert!(spec.names.contains(&"RP"));
        // An op writing RP is counted by the 1.5D spec but invisible to the
        // 1D one — the generalized budget, not a relabeling.
        let mut s: Schedule<()> = Schedule::new(machine(1));
        let rp = BufId::new(0, "RP");
        s.launch_fx(0, 0, fixed(), desc("spmm-rp"), &[], Effects::none().writes([rp]), None);
        s.launch_fx(0, 0, fixed(), desc("reduce"), &[], Effects::none().reads([rp]), None);
        let r = analyze_budget(&s, &BudgetSpec::mg_gcn_15d(0));
        assert!(r.clean(), "{}", r.render());
        assert_eq!(r.liveness.as_ref().unwrap().buffers_needed, 1);
        assert!(analyze_budget(&s, &BudgetSpec::mg_gcn(0)).liveness.is_none());
    }

    #[test]
    fn rmw_extends_a_range_instead_of_splitting() {
        // write, rmw, read on one buffer = one range; a second buffer
        // defined strictly after it can share the allocation.
        let a = BufId::indexed(0, "AHW", 0);
        let b = BufId::new(0, "HW");
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_fx(0, 0, fixed(), desc("def-a"), &[], Effects::none().writes([a]), None);
        s.launch_fx(0, 0, fixed(), desc("relu"), &[], Effects::none().rw(a), None);
        s.launch_fx(0, 0, fixed(), desc("use-a"), &[], Effects::none().reads([a]), None);
        s.launch_fx(0, 0, fixed(), desc("def-b"), &[], Effects::none().writes([b]), None);
        s.launch_fx(0, 0, fixed(), desc("use-b"), &[], Effects::none().reads([b]), None);
        let spec = BudgetSpec { names: vec!["AHW", "HW"], budget: 2 };
        let r = analyze_budget(&s, &spec);
        assert!(r.clean());
        let lv = r.liveness.unwrap();
        assert_eq!(lv.buffers_bound, 2);
        assert_eq!(lv.buffers_needed, 1, "disjoint ranges must share");
    }

    #[test]
    fn declared_stale_read_is_clean_undeclared_is_flagged() {
        use mggcn_gpusim::StaleRead;
        let sf = BufId::indexed(0, "SF", 0);
        // Writer in epoch 0, reader in epoch 1, ordered by the lane FIFO:
        // invisible to the hazard pass, caught by the cross-epoch pass.
        let build = |declared: Option<usize>| {
            let mut s: Schedule<()> = Schedule::new(machine(1));
            s.launch_fx(
                0,
                0,
                fixed(),
                desc("snapshot").in_epoch(0),
                &[],
                Effects::none().writes([sf]),
                None,
            );
            let fx = match declared {
                Some(age) => Effects::none().stale([StaleRead { buf: sf, age }]),
                None => Effects::none().reads([sf]),
            };
            s.launch_fx(0, 0, fixed(), desc("bcast").in_epoch(1), &[], fx, None);
            s
        };
        assert!(analyze(&build(Some(1))).clean());
        assert!(analyze(&build(Some(2))).clean(), "over-declared bound is fine");
        let r = analyze(&build(None));
        assert_eq!(r.findings.len(), 1);
        assert!(matches!(r.findings[0], Finding::StaleRead { age: 1, declared: None, .. }));
        assert!(r.findings[0].to_string().contains("undeclared stale read of SF.0@g0"));
    }

    #[test]
    fn under_declared_stale_read_is_flagged_with_bound() {
        use mggcn_gpusim::StaleRead;
        let sf = BufId::indexed(0, "SF", 0);
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_fx(
            0,
            0,
            fixed(),
            desc("snapshot").in_epoch(0),
            &[],
            Effects::none().writes([sf]),
            None,
        );
        s.launch_fx(
            0,
            0,
            fixed(),
            desc("bcast").in_epoch(2),
            &[],
            Effects::none().stale([StaleRead { buf: sf, age: 1 }]),
            None,
        );
        let r = analyze(&s);
        assert!(matches!(r.findings[..], [Finding::StaleRead { age: 2, declared: Some(1), .. }]));
    }

    #[test]
    fn same_epoch_refresh_resets_the_stale_clock() {
        let sf = BufId::indexed(0, "SF", 0);
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_fx(
            0,
            0,
            fixed(),
            desc("snap0").in_epoch(0),
            &[],
            Effects::none().writes([sf]),
            None,
        );
        s.launch_fx(
            0,
            0,
            fixed(),
            desc("snap1").in_epoch(1),
            &[],
            Effects::none().writes([sf]),
            None,
        );
        // Last HB-before writer is snap1 (same epoch): no staleness.
        s.launch_fx(
            0,
            0,
            fixed(),
            desc("read").in_epoch(1),
            &[],
            Effects::none().reads([sf]),
            None,
        );
        assert!(analyze(&s).clean());
    }

    #[test]
    fn untagged_schedules_skip_the_cross_epoch_pass() {
        let sf = BufId::indexed(0, "SF", 0);
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_fx(0, 0, fixed(), desc("w"), &[], Effects::none().writes([sf]), None);
        s.launch_fx(0, 0, fixed(), desc("r"), &[], Effects::none().reads([sf]), None);
        assert!(analyze(&s).clean());
    }

    #[test]
    fn staleness_budget_adds_the_sf_family() {
        let spec = BudgetSpec::mg_gcn_15d(2).with_staleness(1);
        assert_eq!(spec.budget, 7); // L+5 for the 2-layer 1.5D plan
        assert!(spec.names.contains(&"SF"));
        let unchanged = BudgetSpec::mg_gcn(2).with_staleness(0);
        assert_eq!(unchanged.budget, 5);
        assert!(!unchanged.names.contains(&"SF"));
    }

    #[test]
    fn report_renders_findings_and_counts() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_fx(0, 0, fixed(), desc("w"), &[], Effects::none().writes([bc(0, 0)]), None);
        s.launch_fx(0, 1, fixed(), desc("r"), &[], Effects::none().reads([bc(0, 0)]), None);
        let r = analyze(&s);
        let text = r.render();
        assert!(text.contains("2 ops"));
        assert!(text.contains("RAW hazard on BC1@g0"));
        assert!(!r.clean());
    }
}
