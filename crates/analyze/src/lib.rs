//! mggcn-analyze — static verification of recorded schedules.
//!
//! The engine warns that "a schedule missing a double-buffer WAR
//! dependency will corrupt real data the same way real hardware would"
//! (`gpusim::engine`). This crate turns that class of bug into a static
//! finding: every `launch_fx`/`collective_fx` site declares the logical
//! buffers it reads and writes ([`mggcn_gpusim::Effects`]), and the
//! analyses run over the happens-before relation induced by lane FIFOs,
//! explicit waits, and collective rendezvous ([`hb::Hb`]):
//!
//! 1. **Hazard detection** — every RAW/WAR/WAW pair on the same buffer
//!    must be HB-ordered ([`Finding::Hazard`] otherwise);
//! 2. **Deadlock-freedom** — the dependency digraph must be acyclic; a
//!    cycle is exactly a simulator deadlock and a threaded-backend hang
//!    ([`Finding::Deadlock`]);
//! 3. **Def-use dataflow** — every read of a scratch-family buffer must
//!    see a happens-before writer ([`Finding::UninitRead`]), and writes
//!    nothing ever consumes are advisory [`Warning::DeadWrite`]s;
//! 4. **Liveness coloring** — big-buffer live ranges must be colorable
//!    within `core::memplan`'s `L + 3` budget ([`Finding::OverBudget`];
//!    see [`liveness`]).
//!
//! Two further passes verify the *inputs* of the above rather than the
//! schedule itself:
//!
//! * [`audit::audit_effects`] — the effect-soundness oracle. It diffs the
//!   declared `Effects` against the [`mggcn_gpusim::ActualEffects`] a
//!   shadow-interpreted run observed, so a body touching an undeclared
//!   buffer (which would make every analysis above unsound) is a hard
//!   finding.
//! * [`dpor::model_check`] — a sleep-set DPOR model checker that executes
//!   every HB-distinct linearization of a small schedule and asserts the
//!   final weights are bit-identical, proving the declared dependency
//!   structure (not just the one simulated order) determines the result.
//!
//! Entry points: [`analyze`] (hazards + deadlock + def-use),
//! [`analyze_budget`] (adds the liveness bound), and [`preflight`] (the
//! cheap gate `mggcn-exec` runs before spawning workers). The CLI surface
//! is `mggcn analyze` (with `--audit-effects`, `--model-check`, `--json`).
//!
//! Findings and warnings are reported in a deterministic order (sorted by
//! class, anchor op ids, buffer, kind) so rendered reports and `--json`
//! output are byte-stable across runs.

#![forbid(unsafe_code)]

pub mod audit;
pub mod dpor;
pub mod hb;
pub mod liveness;

pub use audit::{audit_effects, EffectAudit};
pub use dpor::{model_check, Divergence, DporOptions, DporResult};
pub use hb::Hb;
pub use liveness::Liveness;

use mggcn_gpusim::{BufId, OpId, OpInfo, Schedule};
use std::collections::BTreeMap;
use std::fmt;

/// Data-race kind, named from the id-order of the unordered pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HazardKind {
    /// Read-after-write unordered.
    Raw,
    /// Write-after-read unordered (the dropped double-buffer edge class).
    War,
    /// Write-after-write unordered.
    Waw,
}

impl HazardKind {
    pub fn name(&self) -> &'static str {
        match self {
            HazardKind::Raw => "RAW",
            HazardKind::War => "WAR",
            HazardKind::Waw => "WAW",
        }
    }
}

/// One verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Finding {
    /// Two conflicting accesses to `buf` with no happens-before order:
    /// the body outcome depends on simulated timing — real corruption.
    Hazard {
        kind: HazardKind,
        buf: BufId,
        first: OpId,
        first_label: &'static str,
        second: OpId,
        second_label: &'static str,
    },
    /// The dependency digraph has a cycle: the schedule deadlocks in the
    /// simulator and hangs the threaded backend.
    Deadlock { cycle: Vec<OpId> },
    /// A GPU's live ranges need more big buffers than the plan budgets.
    OverBudget { gpu: usize, needed: usize, budget: usize },
    /// An epoch-tagged op reads `buf` whose last happens-before writer ran
    /// `age` epochs earlier, without declaring a sufficient
    /// [`mggcn_gpusim::StaleRead`] bound. Cross-epoch consumption must be
    /// *explicit state*, never an accident: a bounded-staleness pipeline
    /// declares every such read (and is then clean); anything else is a
    /// latent ordering bug even though the pair is HB-ordered.
    StaleRead {
        buf: BufId,
        writer: OpId,
        writer_label: &'static str,
        reader: OpId,
        reader_label: &'static str,
        /// Actual epoch gap between writer and reader.
        age: usize,
        /// The bound the reader declared, if any (insufficient when `Some`).
        declared: Option<usize>,
    },
    /// An op reads a scratch-family buffer with no happens-before writer:
    /// the value consumed is whatever the allocator left there. Scratch
    /// buffers carry no cross-schedule state, so this is always a bug.
    UninitRead { op: OpId, label: &'static str, buf: BufId },
    /// The shadow interpreter observed the op's body reading `buf`, but
    /// the site never declared the read: the hazard analysis ran on an
    /// unsound footprint.
    UndeclaredRead { op: OpId, label: &'static str, buf: BufId },
    /// The shadow interpreter observed the op's body writing `buf`
    /// without a declaration — the worst class: every pass above assumed
    /// this op leaves `buf` alone.
    UndeclaredWrite { op: OpId, label: &'static str, buf: BufId },
    /// The shadow interpreter observed the op consuming `buf` at `age`
    /// epochs old, exceeding the declared [`mggcn_gpusim::StaleRead`]
    /// bound (or with none declared).
    UndeclaredStaleAge {
        op: OpId,
        label: &'static str,
        buf: BufId,
        /// Observed age: reader epoch minus last-writer epoch.
        age: usize,
        /// The declared bound, if any (insufficient when `Some`).
        declared: Option<usize>,
    },
}

impl Finding {
    /// Deterministic report order: class, anchor op ids, buffer, kind —
    /// independent of detection order, so `render()` and `--json` output
    /// are byte-stable.
    fn sort_key(&self) -> (u8, usize, usize, Option<BufId>, u8) {
        match self {
            Finding::Deadlock { .. } => (0, 0, 0, None, 0),
            Finding::Hazard { kind, buf, first, second, .. } => {
                let k = match kind {
                    HazardKind::Raw => 0,
                    HazardKind::War => 1,
                    HazardKind::Waw => 2,
                };
                (1, *first, *second, Some(*buf), k)
            }
            Finding::StaleRead { reader, writer, buf, .. } => (2, *reader, *writer, Some(*buf), 0),
            Finding::UninitRead { op, buf, .. } => (3, *op, 0, Some(*buf), 0),
            Finding::UndeclaredRead { op, buf, .. } => (4, *op, 0, Some(*buf), 0),
            Finding::UndeclaredWrite { op, buf, .. } => (4, *op, 0, Some(*buf), 1),
            Finding::UndeclaredStaleAge { op, buf, .. } => (4, *op, 0, Some(*buf), 2),
            Finding::OverBudget { gpu, .. } => (5, *gpu, 0, None, 0),
        }
    }
}

/// Sort findings into the canonical order and drop exact duplicates.
pub(crate) fn canonicalize(findings: &mut Vec<Finding>) {
    findings.sort_by_key(Finding::sort_key);
    findings.dedup();
}

/// An advisory observation: not a correctness failure, but a declaration
/// or schedule shape worth a second look. Warnings never fail
/// [`Report::clean`] or [`preflight`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Warning {
    /// The site declares a read the shadow-interpreted body never
    /// performed. Over-declaration only costs precision (extra hazard
    /// edges), never soundness. Expected on the classic 1.5D reduce,
    /// which declares its `RP` source but refolds from shards.
    OverDeclaredRead { op: OpId, label: &'static str, buf: BufId },
    /// The site declares a write the body never performed (and the
    /// buffer is not a declared-and-observed read — a read-modify-write
    /// site may legitimately leave the bytes unchanged).
    OverDeclaredWrite { op: OpId, label: &'static str, buf: BufId },
    /// A scratch-family write no happens-before-later op ever reads.
    /// Legitimate at partition boundaries (e.g. a singleton-group
    /// broadcast anchor), suspicious elsewhere.
    DeadWrite { op: OpId, label: &'static str, buf: BufId },
}

impl Warning {
    fn sort_key(&self) -> (u8, usize, BufId) {
        match self {
            Warning::OverDeclaredRead { op, buf, .. } => (0, *op, *buf),
            Warning::OverDeclaredWrite { op, buf, .. } => (1, *op, *buf),
            Warning::DeadWrite { op, buf, .. } => (2, *op, *buf),
        }
    }
}

/// Sort warnings into the canonical order and drop exact duplicates.
pub(crate) fn canonicalize_warnings(warnings: &mut Vec<Warning>) {
    warnings.sort_by_key(Warning::sort_key);
    warnings.dedup();
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Warning::OverDeclaredRead { op, label, buf } => write!(
                f,
                "over-declared read of {buf}: op {op} ({label}) declares it but the body \
                 never reads it"
            ),
            Warning::OverDeclaredWrite { op, label, buf } => write!(
                f,
                "over-declared write of {buf}: op {op} ({label}) declares it but the body \
                 never writes it"
            ),
            Warning::DeadWrite { op, label, buf } => write!(
                f,
                "dead write of {buf}: op {op} ({label}) writes it but no later op reads it"
            ),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::Hazard { kind, buf, first, first_label, second, second_label } => write!(
                f,
                "{} hazard on {buf}: op {first} ({first_label}) and op {second} \
                 ({second_label}) are not ordered",
                kind.name()
            ),
            Finding::Deadlock { cycle } => {
                let ids: Vec<String> = cycle.iter().map(|id| id.to_string()).collect();
                write!(f, "dependency cycle (deadlock): ops [{}]", ids.join(" -> "))
            }
            Finding::OverBudget { gpu, needed, budget } => {
                write!(f, "GPU {gpu} needs {needed} big buffers but the plan budgets {budget}")
            }
            Finding::StaleRead {
                buf,
                writer,
                writer_label,
                reader,
                reader_label,
                age,
                declared,
            } => match declared {
                None => write!(
                    f,
                    "undeclared stale read of {buf}: op {reader} ({reader_label}) consumes \
                         op {writer} ({writer_label}) from {age} epoch(s) earlier without a \
                         StaleRead declaration"
                ),
                Some(d) => write!(
                    f,
                    "under-declared stale read of {buf}: op {reader} ({reader_label}) \
                         declares age<={d} but consumes op {writer} ({writer_label}) from \
                         {age} epoch(s) earlier"
                ),
            },
            Finding::UninitRead { op, label, buf } => write!(
                f,
                "uninitialized read of {buf}: op {op} ({label}) has no happens-before writer"
            ),
            Finding::UndeclaredRead { op, label, buf } => write!(
                f,
                "undeclared read of {buf}: op {op} ({label}) actually reads it but the \
                 site declares no read"
            ),
            Finding::UndeclaredWrite { op, label, buf } => write!(
                f,
                "undeclared write of {buf}: op {op} ({label}) actually writes it but the \
                 site declares no write"
            ),
            Finding::UndeclaredStaleAge { op, label, buf, age, declared } => match declared {
                None => write!(
                    f,
                    "undeclared stale consumption of {buf}: op {op} ({label}) actually \
                     consumes a value {age} epoch(s) old with no StaleRead declaration"
                ),
                Some(d) => write!(
                    f,
                    "under-declared stale consumption of {buf}: op {op} ({label}) declares \
                     age<={d} but actually consumes a value {age} epoch(s) old"
                ),
            },
        }
    }
}

/// The big-buffer family names and budget the liveness analysis checks.
#[derive(Clone, Debug)]
pub struct BudgetSpec {
    /// Buffer family names counted as "big" (per-GPU `n/P × d` buffers).
    pub names: Vec<&'static str>,
    /// Maximum allocations the plan budgets per GPU.
    pub budget: usize,
}

impl BudgetSpec {
    /// The MG-GCN §4.2 plan: `L` activation buffers + `HW` + the two
    /// broadcast buffers, for a model with `layers` layers.
    pub fn mg_gcn(layers: usize) -> Self {
        Self { names: vec!["AHW", "HW", "BC1", "BC2"], budget: layers + 3 }
    }

    /// The 1.5D (c = 2) plan: everything in [`BudgetSpec::mg_gcn`] plus the
    /// replicated-partial buffer `RP` that accumulates the mate partition's
    /// SpMM result between the intra-group broadcasts and the cross-group
    /// reduction — the §5.1 memory-replication cost, L+4 per GPU.
    pub fn mg_gcn_15d(layers: usize) -> Self {
        Self { names: vec!["AHW", "HW", "BC1", "BC2", "RP"], budget: layers + 4 }
    }

    /// Extend a plan with the bounded-staleness snapshot family `SF`:
    /// `sf` extra per-GPU big buffers hold the previous epoch's broadcast
    /// sources (one per non-constant broadcast source; the 2-layer spmm-first
    /// model needs exactly one, hence the §15 L+4 → L+5 delta on 1.5D).
    pub fn with_staleness(mut self, sf: usize) -> Self {
        if sf > 0 {
            self.names.push("SF");
            self.budget += sf;
        }
        self
    }
}

/// Result of verifying one schedule.
#[derive(Clone, Debug)]
pub struct Report {
    /// Ops in the schedule.
    pub ops: usize,
    /// Deduplicated dependency edges (lane-FIFO adjacency + waits).
    pub edges: usize,
    /// All verification failures, in the canonical (class, op, buffer,
    /// kind) order.
    pub findings: Vec<Finding>,
    /// Advisory observations (never fail [`Report::clean`]), in the
    /// canonical order.
    pub warnings: Vec<Warning>,
    /// Liveness result; `None` when the schedule deadlocks or has
    /// hazards (ranges are ill-defined then), or when no op declares
    /// effects on the requested buffer families.
    pub liveness: Option<Liveness>,
    /// The budget the liveness result was checked against, if any.
    pub budget: Option<usize>,
}

impl Report {
    /// No findings of any class.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable summary (the non-`--dump` CLI output).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{} ops, {} dependency edges", self.ops, self.edges);
        if let Some(lv) = &self.liveness {
            let budget = self.budget.map(|b| format!(", budget {b}")).unwrap_or_default();
            let _ = writeln!(
                out,
                "liveness: {} big buffers named, {} needed{budget}",
                lv.buffers_bound, lv.buffers_needed
            );
            for &(gpu, named, needed) in &lv.per_gpu {
                let _ = writeln!(out, "  gpu {gpu}: {named} named, {needed} needed");
            }
        }
        if self.findings.is_empty() {
            let _ = writeln!(out, "no findings");
        } else {
            let _ = writeln!(out, "{} finding(s):", self.findings.len());
            for f in &self.findings {
                let _ = writeln!(out, "  {f}");
            }
        }
        if !self.warnings.is_empty() {
            let _ = writeln!(out, "{} warning(s):", self.warnings.len());
            for w in &self.warnings {
                let _ = writeln!(out, "  {w}");
            }
        }
        out
    }

    /// Absorb findings and warnings produced by an auxiliary pass (e.g.
    /// the effect audit) and re-establish the canonical order.
    pub fn absorb(&mut self, findings: Vec<Finding>, warnings: Vec<Warning>) {
        self.findings.extend(findings);
        self.warnings.extend(warnings);
        canonicalize(&mut self.findings);
        canonicalize_warnings(&mut self.warnings);
    }
}

/// Verify hazards + deadlock-freedom over recorded op metadata; with a
/// [`BudgetSpec`], also check the liveness coloring against the budget.
pub fn analyze_ops(ops: &[OpInfo<'_>], budget: Option<&BudgetSpec>) -> Report {
    let hb = Hb::of_ops(ops);
    let mut findings = Vec::new();

    if let Some(cycle) = &hb.cycle {
        findings.push(Finding::Deadlock { cycle: clone_cycle(cycle) });
        return Report {
            ops: ops.len(),
            edges: hb.edges.len(),
            findings,
            warnings: Vec::new(),
            liveness: None,
            budget: budget.map(|b| b.budget),
        };
    }

    // Hazards: merge each op's accesses per buffer first, then check every
    // conflicting op *pair* for HB order. Merging (rather than walking raw
    // access-list pairs) yields exactly one finding per unordered (pair,
    // buffer) with a canonical kind — both-write is WAW even when a side
    // also reads, writer-first is RAW, reader-first is WAR — so symmetric
    // duplicates cannot arise and the report is deterministic.
    let mut accesses: BTreeMap<BufId, BTreeMap<OpId, (bool, bool, &'static str)>> = BTreeMap::new();
    for op in ops {
        for &b in &op.effects.reads {
            accesses
                .entry(b)
                .or_default()
                .entry(op.id)
                .or_insert((false, false, op.desc.label))
                .0 = true;
        }
        for &b in &op.effects.writes {
            accesses
                .entry(b)
                .or_default()
                .entry(op.id)
                .or_insert((false, false, op.desc.label))
                .1 = true;
        }
    }
    for (&buf, by_op) in &accesses {
        let list: Vec<(OpId, bool, bool, &'static str)> =
            by_op.iter().map(|(&id, &(r, w, label))| (id, r, w, label)).collect();
        for (i, &(first, _, first_w, first_label)) in list.iter().enumerate() {
            for &(second, _, second_w, second_label) in &list[i + 1..] {
                if !first_w && !second_w {
                    continue; // read/read never conflicts
                }
                if hb.ordered(first, second) || hb.ordered(second, first) {
                    continue;
                }
                let kind = match (first_w, second_w) {
                    (true, true) => HazardKind::Waw,
                    (true, false) => HazardKind::Raw,
                    (false, true) => HazardKind::War,
                    (false, false) => unreachable!("read/read pairs are skipped"),
                };
                findings.push(Finding::Hazard {
                    kind,
                    buf,
                    first,
                    first_label,
                    second,
                    second_label,
                });
            }
        }
    }

    // Cross-epoch pass (fused bounded-staleness schedules only): a read
    // whose *last* happens-before writer belongs to an earlier epoch is a
    // stale consumption and must carry a sufficient StaleRead declaration.
    // Such pairs are HB-ordered — the plain hazard pass cannot see them —
    // but an undeclared one means the schedule silently trains on old
    // state. Classic one-epoch schedules carry no epoch tags and skip
    // this entirely.
    if ops.iter().any(|op| op.desc.epoch.is_some()) && hb.cycle.is_none() {
        type WriterRec = (OpId, Option<usize>, &'static str);
        let mut writers: BTreeMap<BufId, Vec<WriterRec>> = BTreeMap::new();
        for op in ops {
            for &b in &op.effects.writes {
                writers.entry(b).or_default().push((op.id, op.desc.epoch, op.desc.label));
            }
        }
        for op in ops {
            let Some(reader_epoch) = op.desc.epoch else { continue };
            for &b in &op.effects.reads {
                let Some(list) = writers.get(&b) else { continue };
                let mut last: Option<WriterRec> = None;
                for &(w, we, wl) in list {
                    if w == op.id || !hb.ordered(w, op.id) {
                        continue;
                    }
                    if last.is_none_or(|(l, _, _)| hb.topo_pos(l) < hb.topo_pos(w)) {
                        last = Some((w, we, wl));
                    }
                }
                let Some((writer, Some(writer_epoch), writer_label)) = last else { continue };
                let age = reader_epoch.saturating_sub(writer_epoch);
                if age == 0 {
                    continue;
                }
                let declared = op.effects.stale_age(b);
                if declared.is_some_and(|d| d >= age) {
                    continue;
                }
                let finding = Finding::StaleRead {
                    buf: b,
                    writer,
                    writer_label,
                    reader: op.id,
                    reader_label: op.desc.label,
                    age,
                    declared,
                };
                if !findings.contains(&finding) {
                    findings.push(finding);
                }
            }
        }
    }

    // Def-use dataflow (hazard-free schedules only — "before" needs an
    // unambiguous order): over the scratch families, which carry no
    // cross-schedule state, a read must see a happens-before writer or it
    // consumes whatever the allocator left behind. The dual — a write no
    // later op ever reads — is only advisory: partition boundaries
    // legitimately leave a few (e.g. a singleton-group broadcast anchor).
    let mut warnings = Vec::new();
    if findings.is_empty() {
        const SCRATCH: [&str; 6] = ["AHW", "HW", "BC1", "BC2", "RP", "WG"];
        let scratch = |b: BufId| SCRATCH.contains(&b.name);
        let mut writers: BTreeMap<BufId, Vec<OpId>> = BTreeMap::new();
        let mut readers: BTreeMap<BufId, Vec<OpId>> = BTreeMap::new();
        for op in ops {
            for &b in &op.effects.writes {
                writers.entry(b).or_default().push(op.id);
            }
            for &b in &op.effects.reads {
                readers.entry(b).or_default().push(op.id);
            }
            for s in &op.effects.stale_reads {
                readers.entry(s.buf).or_default().push(op.id);
            }
        }
        for op in ops {
            for &b in &op.effects.reads {
                if !scratch(b) {
                    continue;
                }
                let initialized = writers
                    .get(&b)
                    .is_some_and(|ws| ws.iter().any(|&w| w != op.id && hb.ordered(w, op.id)));
                if !initialized {
                    findings.push(Finding::UninitRead { op: op.id, label: op.desc.label, buf: b });
                }
            }
            for &b in &op.effects.writes {
                if !scratch(b) {
                    continue;
                }
                let consumed = readers
                    .get(&b)
                    .is_some_and(|rs| rs.iter().any(|&r| r != op.id && hb.ordered(op.id, r)));
                if !consumed {
                    warnings.push(Warning::DeadWrite { op: op.id, label: op.desc.label, buf: b });
                }
            }
        }
    }

    // Liveness only over hazard-free, fully-initialized schedules.
    let liveness = if findings.is_empty() {
        budget.and_then(|spec| {
            let lv = liveness::liveness(ops, &hb, &spec.names);
            if lv.buffers_bound == 0 {
                return None; // no effects declared on these families
            }
            for &(gpu, _, needed) in &lv.per_gpu {
                if needed > spec.budget {
                    findings.push(Finding::OverBudget { gpu, needed, budget: spec.budget });
                }
            }
            Some(lv)
        })
    } else {
        None
    };

    canonicalize(&mut findings);
    canonicalize_warnings(&mut warnings);
    Report {
        ops: ops.len(),
        edges: hb.edges.len(),
        findings,
        warnings,
        liveness,
        budget: budget.map(|b| b.budget),
    }
}

fn clone_cycle(cycle: &[OpId]) -> Vec<OpId> {
    cycle.to_vec()
}

/// Verify a recorded schedule: hazards + deadlock-freedom.
pub fn analyze<Ctx>(sched: &Schedule<Ctx>) -> Report {
    analyze_ops(&sched.op_infos(), None)
}

/// Verify a recorded schedule including the liveness budget check.
pub fn analyze_budget<Ctx>(sched: &Schedule<Ctx>, spec: &BudgetSpec) -> Report {
    analyze_ops(&sched.op_infos(), Some(spec))
}

/// Cheap pre-flight gate for executors: hazards + deadlock only. Returns
/// the first finding rendered, so a racy or deadlocking schedule is
/// rejected before any worker thread starts.
pub fn preflight<Ctx>(sched: &Schedule<Ctx>) -> Result<(), String> {
    let report = analyze(sched);
    match report.findings.first() {
        None => Ok(()),
        Some(f) => Err(format!(
            "schedule fails static verification ({} finding(s)); first: {f}",
            report.findings.len()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_gpusim::engine::OpDesc;
    use mggcn_gpusim::{Category, Effects, GpuSpec, MachineSpec, Work};

    fn machine(n: usize) -> MachineSpec {
        MachineSpec::uniform("test", GpuSpec::v100(), n, 6, 25.0e9)
    }

    fn fixed() -> Work {
        Work::Fixed { seconds: 0.1 }
    }

    fn desc(label: &'static str) -> OpDesc {
        OpDesc::new(Category::Other, label)
    }

    fn bc(gpu: usize, slot: usize) -> BufId {
        BufId::new(gpu, if slot == 0 { "BC1" } else { "BC2" })
    }

    /// Two ops on different streams touching one buffer, no edge.
    #[test]
    fn unordered_conflict_is_a_hazard() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_fx(0, 0, fixed(), desc("w"), &[], Effects::none().writes([bc(0, 0)]), None);
        s.launch_fx(0, 1, fixed(), desc("r"), &[], Effects::none().reads([bc(0, 0)]), None);
        let r = analyze(&s);
        assert_eq!(r.findings.len(), 1);
        match &r.findings[0] {
            Finding::Hazard { kind, first, second, .. } => {
                assert_eq!(*kind, HazardKind::Raw);
                assert_eq!((*first, *second), (0, 1));
            }
            other => panic!("expected hazard, got {other}"),
        }
    }

    #[test]
    fn wait_edge_resolves_the_hazard() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        let w =
            s.launch_fx(0, 0, fixed(), desc("w"), &[], Effects::none().writes([bc(0, 0)]), None);
        s.launch_fx(0, 1, fixed(), desc("r"), &[w], Effects::none().reads([bc(0, 0)]), None);
        assert!(analyze(&s).clean());
    }

    #[test]
    fn lane_fifo_resolves_the_hazard() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_fx(0, 0, fixed(), desc("w"), &[], Effects::none().writes([bc(0, 0)]), None);
        s.launch_fx(0, 0, fixed(), desc("r"), &[], Effects::none().reads([bc(0, 0)]), None);
        assert!(analyze(&s).clean());
    }

    #[test]
    fn reads_never_conflict() {
        let mut s: Schedule<()> = Schedule::new(machine(2));
        let w =
            s.launch_fx(0, 0, fixed(), desc("init"), &[], Effects::none().writes([bc(0, 0)]), None);
        s.launch_fx(0, 0, fixed(), desc("r1"), &[], Effects::none().reads([bc(0, 0)]), None);
        s.launch_fx(1, 0, fixed(), desc("r2"), &[w], Effects::none().reads([bc(0, 0)]), None);
        assert!(analyze(&s).clean());
    }

    #[test]
    fn uninitialized_scratch_read_is_a_finding() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_fx(0, 0, fixed(), desc("r"), &[], Effects::none().reads([bc(0, 0)]), None);
        let r = analyze(&s);
        assert!(matches!(r.findings[..], [Finding::UninitRead { op: 0, .. }]));
        assert!(r.findings[0].to_string().contains("uninitialized read of BC1@g0"));
        assert!(preflight(&s).is_err(), "preflight must reject uninit reads");
    }

    #[test]
    fn non_scratch_families_skip_the_def_use_pass() {
        // X (input features) and W (persistent weights) hold state the
        // schedule legitimately never writes.
        let mut s: Schedule<()> = Schedule::new(machine(1));
        let x = BufId::new(0, "X");
        let w = BufId::indexed(0, "W", 0);
        s.launch_fx(0, 0, fixed(), desc("gemm"), &[], Effects::none().reads([x, w]), None);
        assert!(analyze(&s).clean());
    }

    #[test]
    fn dead_scratch_write_is_a_warning_not_a_finding() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_fx(0, 0, fixed(), desc("w"), &[], Effects::none().writes([bc(0, 0)]), None);
        let r = analyze(&s);
        assert!(r.clean(), "warnings must not fail clean()");
        assert!(matches!(r.warnings[..], [Warning::DeadWrite { op: 0, .. }]));
        assert!(r.render().contains("dead write of BC1@g0"));
        assert!(preflight(&s).is_ok());
    }

    #[test]
    fn rmw_own_read_does_not_initialize_or_consume() {
        // An op that RMWs an otherwise-untouched scratch buffer is both an
        // uninit read (its own write is not HB-before its read) — nothing
        // else initializes or consumes the buffer.
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_fx(0, 0, fixed(), desc("rmw"), &[], Effects::none().rw(bc(0, 0)), None);
        let r = analyze(&s);
        assert!(matches!(r.findings[..], [Finding::UninitRead { op: 0, .. }]));
    }

    /// The merged hazard pass emits exactly one finding per unordered
    /// (pair, buffer), with both-write collapsing to WAW even when one
    /// side also reads — and two analyze runs render byte-identically.
    #[test]
    fn hazard_findings_are_deduped_and_deterministic() {
        let build = || {
            let mut s: Schedule<()> = Schedule::new(machine(1));
            // Op 0 RMWs, op 1 writes, unordered: the raw access pairs are
            // (r0,w1) and (w0,w1), but the canonical report is one WAW.
            s.launch_fx(0, 0, fixed(), desc("rmw"), &[], Effects::none().rw(bc(0, 0)), None);
            s.launch_fx(0, 1, fixed(), desc("w"), &[], Effects::none().writes([bc(0, 0)]), None);
            s
        };
        let r = analyze(&build());
        assert_eq!(r.findings.len(), 1);
        assert!(matches!(
            r.findings[0],
            Finding::Hazard { kind: HazardKind::Waw, first: 0, second: 1, .. }
        ));
        assert_eq!(analyze(&build()).render(), r.render());
    }

    #[test]
    fn distinct_buffers_never_conflict() {
        let mut s: Schedule<()> = Schedule::new(machine(2));
        s.launch_fx(0, 0, fixed(), desc("w0"), &[], Effects::none().writes([bc(0, 0)]), None);
        // Same name, different GPU: a different physical buffer.
        s.launch_fx(1, 0, fixed(), desc("w1"), &[], Effects::none().writes([bc(1, 0)]), None);
        assert!(analyze(&s).clean());
    }

    #[test]
    fn war_kind_is_reported() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_fx(0, 0, fixed(), desc("r"), &[], Effects::none().reads([bc(0, 0)]), None);
        s.launch_fx(0, 1, fixed(), desc("w"), &[], Effects::none().writes([bc(0, 0)]), None);
        let r = analyze(&s);
        match &r.findings[0] {
            Finding::Hazard { kind, .. } => assert_eq!(*kind, HazardKind::War),
            other => panic!("expected WAR, got {other}"),
        }
    }

    #[test]
    fn deadlock_preempts_other_analyses() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        let placeholder = s.launch(0, 1, fixed(), desc("p"), &[], None);
        s.launch(0, 0, fixed(), desc("x"), &[placeholder + 2], None);
        s.launch(0, 0, fixed(), desc("y"), &[], None);
        let r = analyze_budget(&s, &BudgetSpec::mg_gcn(2));
        assert_eq!(r.findings.len(), 1);
        assert!(matches!(r.findings[0], Finding::Deadlock { .. }));
        assert!(r.liveness.is_none());
        assert!(preflight(&s).is_err());
    }

    /// Double-buffered broadcast pipeline: serial analysis needs 1 BC
    /// buffer, overlapped needs 2, and an over-tight budget is flagged.
    #[test]
    fn liveness_counts_overlapping_bc_ranges() {
        let build = |overlapped: bool| {
            let mut s: Schedule<()> = Schedule::new(machine(1));
            let comm = usize::from(overlapped);
            let mut readers: [Option<OpId>; 2] = [None, None];
            for stage in 0..4 {
                let slot = stage % 2;
                // WAR: the slot's next broadcast waits on its last reader.
                let waits: Vec<OpId> = readers[slot].into_iter().collect();
                let w = s.launch_fx(
                    0,
                    comm,
                    fixed(),
                    desc("bcast"),
                    &waits,
                    Effects::none().writes([bc(0, slot)]),
                    None,
                );
                let r = s.launch_fx(
                    0,
                    0,
                    fixed(),
                    desc("spmm"),
                    &[w],
                    Effects::none().reads([bc(0, slot)]),
                    None,
                );
                readers[slot] = Some(r);
            }
            s
        };
        let serial = analyze_budget(&build(false), &BudgetSpec::mg_gcn(0));
        assert!(serial.clean(), "{}", serial.render());
        assert_eq!(serial.liveness.as_ref().unwrap().buffers_needed, 1);

        let overlapped = analyze_budget(&build(true), &BudgetSpec::mg_gcn(0));
        assert!(overlapped.clean(), "{}", overlapped.render());
        let lv = overlapped.liveness.as_ref().unwrap();
        assert_eq!(lv.buffers_bound, 2);
        assert_eq!(lv.buffers_needed, 2);

        // Budget 1 (layers such that L+3 == 1 is impossible via mg_gcn;
        // hand-roll) must flag the overlapped pipeline.
        let spec = BudgetSpec { names: vec!["BC1", "BC2"], budget: 1 };
        let tight = analyze_budget(&build(true), &spec);
        assert!(matches!(
            tight.findings[..],
            [Finding::OverBudget { gpu: 0, needed: 2, budget: 1 }]
        ));
    }

    #[test]
    fn budget_15d_adds_the_rp_family() {
        let spec = BudgetSpec::mg_gcn_15d(2);
        assert_eq!(spec.budget, 6); // L+4
        assert!(spec.names.contains(&"RP"));
        // An op writing RP is counted by the 1.5D spec but invisible to the
        // 1D one — the generalized budget, not a relabeling.
        let mut s: Schedule<()> = Schedule::new(machine(1));
        let rp = BufId::new(0, "RP");
        s.launch_fx(0, 0, fixed(), desc("spmm-rp"), &[], Effects::none().writes([rp]), None);
        s.launch_fx(0, 0, fixed(), desc("reduce"), &[], Effects::none().reads([rp]), None);
        let r = analyze_budget(&s, &BudgetSpec::mg_gcn_15d(0));
        assert!(r.clean(), "{}", r.render());
        assert_eq!(r.liveness.as_ref().unwrap().buffers_needed, 1);
        assert!(analyze_budget(&s, &BudgetSpec::mg_gcn(0)).liveness.is_none());
    }

    #[test]
    fn rmw_extends_a_range_instead_of_splitting() {
        // write, rmw, read on one buffer = one range; a second buffer
        // defined strictly after it can share the allocation.
        let a = BufId::indexed(0, "AHW", 0);
        let b = BufId::new(0, "HW");
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_fx(0, 0, fixed(), desc("def-a"), &[], Effects::none().writes([a]), None);
        s.launch_fx(0, 0, fixed(), desc("relu"), &[], Effects::none().rw(a), None);
        s.launch_fx(0, 0, fixed(), desc("use-a"), &[], Effects::none().reads([a]), None);
        s.launch_fx(0, 0, fixed(), desc("def-b"), &[], Effects::none().writes([b]), None);
        s.launch_fx(0, 0, fixed(), desc("use-b"), &[], Effects::none().reads([b]), None);
        let spec = BudgetSpec { names: vec!["AHW", "HW"], budget: 2 };
        let r = analyze_budget(&s, &spec);
        assert!(r.clean());
        let lv = r.liveness.unwrap();
        assert_eq!(lv.buffers_bound, 2);
        assert_eq!(lv.buffers_needed, 1, "disjoint ranges must share");
    }

    #[test]
    fn declared_stale_read_is_clean_undeclared_is_flagged() {
        use mggcn_gpusim::StaleRead;
        let sf = BufId::indexed(0, "SF", 0);
        // Writer in epoch 0, reader in epoch 1, ordered by the lane FIFO:
        // invisible to the hazard pass, caught by the cross-epoch pass.
        let build = |declared: Option<usize>| {
            let mut s: Schedule<()> = Schedule::new(machine(1));
            s.launch_fx(
                0,
                0,
                fixed(),
                desc("snapshot").in_epoch(0),
                &[],
                Effects::none().writes([sf]),
                None,
            );
            let fx = match declared {
                Some(age) => Effects::none().stale([StaleRead { buf: sf, age }]),
                None => Effects::none().reads([sf]),
            };
            s.launch_fx(0, 0, fixed(), desc("bcast").in_epoch(1), &[], fx, None);
            s
        };
        assert!(analyze(&build(Some(1))).clean());
        assert!(analyze(&build(Some(2))).clean(), "over-declared bound is fine");
        let r = analyze(&build(None));
        assert_eq!(r.findings.len(), 1);
        assert!(matches!(r.findings[0], Finding::StaleRead { age: 1, declared: None, .. }));
        assert!(r.findings[0].to_string().contains("undeclared stale read of SF.0@g0"));
    }

    #[test]
    fn under_declared_stale_read_is_flagged_with_bound() {
        use mggcn_gpusim::StaleRead;
        let sf = BufId::indexed(0, "SF", 0);
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_fx(
            0,
            0,
            fixed(),
            desc("snapshot").in_epoch(0),
            &[],
            Effects::none().writes([sf]),
            None,
        );
        s.launch_fx(
            0,
            0,
            fixed(),
            desc("bcast").in_epoch(2),
            &[],
            Effects::none().stale([StaleRead { buf: sf, age: 1 }]),
            None,
        );
        let r = analyze(&s);
        assert!(matches!(r.findings[..], [Finding::StaleRead { age: 2, declared: Some(1), .. }]));
    }

    #[test]
    fn same_epoch_refresh_resets_the_stale_clock() {
        let sf = BufId::indexed(0, "SF", 0);
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_fx(
            0,
            0,
            fixed(),
            desc("snap0").in_epoch(0),
            &[],
            Effects::none().writes([sf]),
            None,
        );
        s.launch_fx(
            0,
            0,
            fixed(),
            desc("snap1").in_epoch(1),
            &[],
            Effects::none().writes([sf]),
            None,
        );
        // Last HB-before writer is snap1 (same epoch): no staleness.
        s.launch_fx(
            0,
            0,
            fixed(),
            desc("read").in_epoch(1),
            &[],
            Effects::none().reads([sf]),
            None,
        );
        assert!(analyze(&s).clean());
    }

    #[test]
    fn untagged_schedules_skip_the_cross_epoch_pass() {
        let sf = BufId::indexed(0, "SF", 0);
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_fx(0, 0, fixed(), desc("w"), &[], Effects::none().writes([sf]), None);
        s.launch_fx(0, 0, fixed(), desc("r"), &[], Effects::none().reads([sf]), None);
        assert!(analyze(&s).clean());
    }

    #[test]
    fn staleness_budget_adds_the_sf_family() {
        let spec = BudgetSpec::mg_gcn_15d(2).with_staleness(1);
        assert_eq!(spec.budget, 7); // L+5 for the 2-layer 1.5D plan
        assert!(spec.names.contains(&"SF"));
        let unchanged = BudgetSpec::mg_gcn(2).with_staleness(0);
        assert_eq!(unchanged.budget, 5);
        assert!(!unchanged.names.contains(&"SF"));
    }

    #[test]
    fn report_renders_findings_and_counts() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        s.launch_fx(0, 0, fixed(), desc("w"), &[], Effects::none().writes([bc(0, 0)]), None);
        s.launch_fx(0, 1, fixed(), desc("r"), &[], Effects::none().reads([bc(0, 0)]), None);
        let r = analyze(&s);
        let text = r.render();
        assert!(text.contains("2 ops"));
        assert!(text.contains("RAW hazard on BC1@g0"));
        assert!(!r.clean());
    }
}
