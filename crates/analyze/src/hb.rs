//! The happens-before relation of a recorded schedule.
//!
//! The DES's execution rules induce a partial order over ops:
//!
//! * **Lane FIFO** — a lane's head advances only past *completed* ops, so
//!   an op starts strictly after every earlier op on each of its lanes has
//!   completed. Adjacent lane pairs generate these edges; transitivity
//!   supplies the rest.
//! * **Explicit waits** — CUDA-event style `waits` entries.
//! * **Collective rendezvous** — a collective occupies one lane per
//!   participant, so its FIFO edges act as a cross-GPU barrier: everything
//!   before it on any participant lane happens before everything after it
//!   on any participant lane.
//!
//! A cycle in this edge set is *exactly* a simulator deadlock: the
//! topologically smallest unfinished op always has a free lane head and
//! satisfied waits (so an acyclic schedule always completes), while every
//! member of a cycle waits — directly or through its lane — on another
//! member (so a cyclic schedule can never finish them). [`Hb`] therefore
//! doubles as the deadlock-freedom certificate for the threaded backend.

use mggcn_gpusim::{OpId, OpInfo};
use std::collections::BTreeMap;

/// The happens-before closure of one schedule's op DAG.
pub struct Hb {
    n: usize,
    words: usize,
    /// `n × words` bit matrix; bit `b` of row `a` set ⇔ `a` strictly
    /// happens before `b`.
    reach: Vec<u64>,
    /// Deduplicated dependency edges `(from, to)`.
    pub edges: Vec<(OpId, OpId)>,
    /// A topological order of all ops, empty when the graph is cyclic.
    topo: Vec<OpId>,
    /// Topological position per op (used to linearize per-buffer accesses).
    pos: Vec<usize>,
    /// One dependency cycle, when the graph has one.
    pub cycle: Option<Vec<OpId>>,
}

impl Hb {
    /// Build the relation from recorded op metadata (`Schedule::op_infos`).
    pub fn of_ops(ops: &[OpInfo<'_>]) -> Self {
        let n = ops.len();

        // Reconstruct the per-lane FIFO queues: ops land on their lanes in
        // issue (id) order, exactly as `Schedule::launch`/`collective` do.
        let mut queues: BTreeMap<(usize, usize), Vec<OpId>> = BTreeMap::new();
        for op in ops {
            for &lane in op.lanes {
                queues.entry(lane).or_default().push(op.id);
            }
        }

        let mut succs: Vec<Vec<OpId>> = vec![Vec::new(); n];
        let push_edge = |from: OpId, to: OpId, succs: &mut Vec<Vec<OpId>>| {
            if !succs[from].contains(&to) {
                succs[from].push(to);
            }
        };
        for q in queues.values() {
            for pair in q.windows(2) {
                push_edge(pair[0], pair[1], &mut succs);
            }
        }
        for op in ops {
            for &w in op.waits {
                push_edge(w, op.id, &mut succs);
            }
        }
        let edges: Vec<(OpId, OpId)> = succs
            .iter()
            .enumerate()
            .flat_map(|(from, tos)| tos.iter().map(move |&to| (from, to)))
            .collect();

        // Kahn's algorithm; leftover nodes form the cyclic core.
        let mut indeg = vec![0usize; n];
        for &(_, to) in &edges {
            indeg[to] += 1;
        }
        let mut ready: Vec<OpId> = (0..n).filter(|&i| indeg[i] == 0).collect();
        ready.reverse(); // pop() takes the smallest id first — deterministic.
        let mut topo = Vec::with_capacity(n);
        let mut indeg_left = indeg;
        while let Some(op) = ready.pop() {
            topo.push(op);
            for &s in &succs[op] {
                indeg_left[s] -= 1;
                if indeg_left[s] == 0 {
                    // Insert keeping `ready` descending so pop() stays min.
                    let at = ready.partition_point(|&r| r > s);
                    ready.insert(at, s);
                }
            }
        }

        let cycle = if topo.len() == n {
            None
        } else {
            // Every node Kahn left behind has at least one *predecessor*
            // also left behind (that is why its indegree never reached 0),
            // so walking predecessors inside the remainder must repeat.
            let in_rem: Vec<bool> = {
                let mut v = vec![true; n];
                for &t in &topo {
                    v[t] = false;
                }
                v
            };
            let mut preds: Vec<Vec<OpId>> = vec![Vec::new(); n];
            for &(from, to) in &edges {
                if in_rem[from] && in_rem[to] {
                    preds[to].push(from);
                }
            }
            let start = (0..n).find(|&i| in_rem[i]).expect("cyclic remainder");
            let mut path = vec![start];
            let mut seen_at: BTreeMap<OpId, usize> = BTreeMap::from([(start, 0)]);
            let mut cycle = loop {
                let cur = *path.last().expect("non-empty path");
                let next = preds[cur][0];
                if let Some(&at) = seen_at.get(&next) {
                    break path[at..].to_vec();
                }
                seen_at.insert(next, path.len());
                path.push(next);
            };
            cycle.reverse(); // present in dependency (forward) direction
            Some(cycle)
        };

        let words = n.div_ceil(64).max(1);
        let mut reach = vec![0u64; n * words];
        let mut pos = vec![usize::MAX; n];
        if cycle.is_none() {
            for (i, &op) in topo.iter().enumerate() {
                pos[op] = i;
            }
            // Reverse topological order: successors are already closed.
            for &op in topo.iter().rev() {
                for &s in &succs[op] {
                    let (a, b) = split(&mut reach, op, s, words);
                    for (dst, src) in a.iter_mut().zip(b.iter()) {
                        *dst |= src;
                    }
                    reach[op * words + s / 64] |= 1u64 << (s % 64);
                }
            }
        }

        Self { n, words, reach, edges, topo, pos, cycle }
    }

    /// Does `a` strictly happen before `b`?
    pub fn ordered(&self, a: OpId, b: OpId) -> bool {
        debug_assert!(a < self.n && b < self.n);
        self.reach[a * self.words + b / 64] & (1u64 << (b % 64)) != 0
    }

    /// A topological position for `a` (only meaningful when acyclic).
    pub fn topo_pos(&self, a: OpId) -> usize {
        self.pos[a]
    }

    /// The full topological order (empty when cyclic).
    pub fn topo_order(&self) -> &[OpId] {
        &self.topo
    }
}

/// Borrow two distinct rows of the bit matrix mutably/immutably.
fn split(
    reach: &mut [u64],
    dst_row: usize,
    src_row: usize,
    words: usize,
) -> (&mut [u64], Vec<u64>) {
    // Rows never alias (an op is not its own successor in an acyclic
    // graph); copy the source row out to keep the borrow checker simple —
    // rows are a handful of words for realistic schedules.
    let src = reach[src_row * words..(src_row + 1) * words].to_vec();
    (&mut reach[dst_row * words..(dst_row + 1) * words], src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_gpusim::engine::OpDesc;
    use mggcn_gpusim::{Category, GpuSpec, MachineSpec, Schedule, Work};

    fn machine(n: usize) -> MachineSpec {
        MachineSpec::uniform("test", GpuSpec::v100(), n, 6, 25.0e9)
    }

    fn fixed() -> Work {
        Work::Fixed { seconds: 0.1 }
    }

    fn desc() -> OpDesc {
        OpDesc::new(Category::Other, "t")
    }

    #[test]
    fn lane_fifo_orders_transitively() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        for _ in 0..3 {
            s.launch(0, 0, fixed(), desc(), &[], None);
        }
        let infos = s.op_infos();
        let hb = Hb::of_ops(&infos);
        assert!(hb.cycle.is_none());
        assert!(hb.ordered(0, 1) && hb.ordered(1, 2) && hb.ordered(0, 2));
        assert!(!hb.ordered(2, 0) && !hb.ordered(1, 1));
    }

    #[test]
    fn collective_is_a_cross_gpu_barrier() {
        let mut s: Schedule<()> = Schedule::new(machine(2));
        let a = s.launch(0, 0, fixed(), desc(), &[], None); // before, GPU 0
        s.launch(1, 0, fixed(), desc(), &[], None); // before, GPU 1
        s.collective(&[(0, 0), (1, 0)], 1.0e9, 25.0e9, desc(), &[], None);
        let d = s.launch(1, 0, fixed(), desc(), &[], None); // after, GPU 1
        let infos = s.op_infos();
        let hb = Hb::of_ops(&infos);
        // GPU 0's pre-op is ordered before GPU 1's post-op through the
        // rendezvous, despite no shared lane or explicit wait.
        assert!(hb.ordered(a, d));
        assert!(!hb.ordered(d, a));
    }

    #[test]
    fn explicit_wait_crosses_streams() {
        let mut s: Schedule<()> = Schedule::new(machine(1));
        let a = s.launch(0, 0, fixed(), desc(), &[], None);
        let b = s.launch(0, 1, fixed(), desc(), &[a], None);
        let infos = s.op_infos();
        let hb = Hb::of_ops(&infos);
        assert!(hb.ordered(a, b));
        assert_eq!(hb.edges, vec![(a, b)]);
    }

    #[test]
    fn unrelated_streams_are_unordered() {
        let mut s: Schedule<()> = Schedule::new(machine(2));
        let a = s.launch(0, 0, fixed(), desc(), &[], None);
        let b = s.launch(1, 0, fixed(), desc(), &[], None);
        let infos = s.op_infos();
        let hb = Hb::of_ops(&infos);
        assert!(!hb.ordered(a, b) && !hb.ordered(b, a));
    }

    #[test]
    fn fifo_wait_cycle_is_detected() {
        // The engine's own deadlock test case: head op waits on an op
        // behind it in the same FIFO.
        let mut s: Schedule<()> = Schedule::new(machine(1));
        let placeholder = s.launch(0, 1, fixed(), desc(), &[], None);
        s.launch(0, 0, fixed(), desc(), &[placeholder + 2], None);
        s.launch(0, 0, fixed(), desc(), &[], None);
        let infos = s.op_infos();
        let hb = Hb::of_ops(&infos);
        let cycle = hb.cycle.expect("cycle found");
        assert!(cycle.contains(&1) && cycle.contains(&2));
    }

    #[test]
    fn mismatched_collective_order_is_a_cycle() {
        let mut s: Schedule<()> = Schedule::new(machine(2));
        s.launch(1, 1, fixed(), desc(), &[1], None);
        s.collective(&[(0, 1), (1, 1)], 1.0e9, 25.0e9, desc(), &[], None);
        let infos = s.op_infos();
        let hb = Hb::of_ops(&infos);
        assert!(hb.cycle.is_some());
    }
}
