//! The MG-GCN trainer: schedule construction and the epoch loop.
//!
//! One training epoch is issued exactly as §4 describes:
//!
//! * **Forward, per layer** (eqs. 5–7): a local GeMM (`HW = H·W`), then the
//!   staged distributed SpMM — `P` rounds, round `s` broadcasting GPU `s`'s
//!   tile of the dense operand into the double-buffered `BC1`/`BC2` and
//!   every GPU `j` accumulating `A^{js}·BC` into its result — then ReLU in
//!   place. When `d(l) < d(l+1)` and the §4.4 flag is set, the SpMM runs
//!   first on the narrower operand.
//! * **Loss** (§6 Model): masked softmax cross-entropy, gradient written
//!   over the logits in the last `AHW` buffer.
//! * **Backward, per layer** (eqs. 8–11): ReLU backward merging the
//!   incoming gradient over the saved activation, a staged SpMM with `Â`,
//!   the weight-gradient GeMM, a gradient all-reduce, the input-gradient
//!   GeMM, and Adam. Layer 0's backward SpMM is skipped under the §4.4
//!   flag.
//!
//! With `overlap` on, broadcasts live on stream 1 and the engine enforces
//! the paper's §4.3 dependency pattern: `spmm(s)` waits on `bcast(s)`, and
//! `bcast(s)` waits on the previous reader of its double buffer
//! (`spmm(s-2)` on every GPU).

use crate::config::{GcnConfig, Partition, TrainOptions};
use crate::loss::softmax_xent_inplace;
use crate::memplan::MemoryPlan;
use crate::metrics::{EpochReport, MeasuredEpoch};
use crate::optimizer::{adam_step, AdamParams};
use crate::problem::{Problem, RealData};
use crate::state::{BcSlot, DeviceState, GpuState};
use mggcn_dense::{gemm, gemm_a_bt, gemm_at_b, relu_inplace, Accumulate, Dense};
use mggcn_exec::Backend;
use mggcn_gpusim::engine::{Body, OpDesc};
use mggcn_gpusim::{
    BufId, Category, Effects, OomError, OpId, RunReport, Schedule, StaleRead, Timeline,
};
use mggcn_sparse::spmm;
use std::sync::Arc;

/// Training failed at runtime (only possible on [`Backend::Threaded`],
/// where a worker's kernel body may panic; the simulated backend runs
/// bodies on the calling thread and propagates panics directly).
#[derive(Clone, Debug)]
pub enum TrainError {
    /// A worker thread panicked while executing an op body. The trainer's
    /// device state may be partially written; restore from a checkpoint
    /// before continuing.
    Exec(mggcn_exec::ExecError),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Exec(e) => write!(f, "threaded execution failed: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Which logical buffer a schedule step reads or writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Buf {
    /// The input feature shard.
    X,
    /// The shared GeMM↔SpMM temporary.
    Hw,
    /// Layer `l`'s result buffer.
    Ahw(usize),
}

fn read_buf(g: &GpuState, b: Buf) -> &Dense {
    g.note_read(buf_id(g.index(), b));
    match b {
        Buf::X => &g.x,
        Buf::Hw => &g.hw,
        Buf::Ahw(l) => &g.ahw[l],
    }
}

/// The logical-buffer id a [`Buf`] denotes on GPU `g`, for the declared
/// effect sets `mggcn-analyze` verifies. Names match §4.2's inventory.
fn buf_id(g: usize, b: Buf) -> BufId {
    match b {
        Buf::X => BufId::new(g, "X"),
        Buf::Hw => BufId::new(g, "HW"),
        Buf::Ahw(l) => BufId::indexed(g, "AHW", l),
    }
}

/// The broadcast double buffer `slot_idx` selects on GPU `g`.
fn bc_id(g: usize, slot_idx: usize) -> BufId {
    BufId::new(g, if slot_idx == 0 { "BC1" } else { "BC2" })
}

/// The 1.5D replicated-partial buffer on GPU `g`.
fn rp_id(g: usize) -> BufId {
    BufId::new(g, "RP")
}

/// Layer `l`'s bounded-staleness snapshot buffer on GPU `g` (DESIGN §15).
fn sf_id(g: usize, l: usize) -> BufId {
    BufId::indexed(g, "SF", l)
}

/// Layer `l`'s weights on GPU `g`.
fn w_id(g: usize, l: usize) -> BufId {
    BufId::indexed(g, "W", l)
}

/// Layer `l`'s weight-gradient buffer on GPU `g`.
fn wg_id(g: usize, l: usize) -> BufId {
    BufId::indexed(g, "WG", l)
}

/// Layer `l`'s Adam moment state on GPU `g`.
fn adam_id(g: usize, l: usize) -> BufId {
    BufId::indexed(g, "ADAM", l)
}

/// SpMM direction: forward uses `Âᵀ` tiles, backward `Â` tiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Dir {
    Fwd,
    Bwd,
}

/// What a bounded-staleness forward broadcast reads instead of the live
/// layer input (DESIGN §15). Carrying no dependency on the current epoch's
/// producers is exactly what lets the engine issue the broadcast during the
/// previous epoch's backward pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PrefetchSrc {
    /// The source tile is the constant input features `X`: prefetching is
    /// exact (no snapshot, no staleness declaration needed).
    Const,
    /// Layer `layer`'s snapshot buffer `SF`, `age` epochs stale.
    Snapshot { layer: usize, age: usize },
}

/// Number of per-GPU snapshot (`SF`) big buffers a bounded-staleness run
/// needs: one per layer whose broadcast source is not the constant input
/// features (layer 0 under the §4.4 spmm-first order broadcasts `X`
/// itself, which never goes stale). Zero when `staleness == 0` — the
/// memory plan and the `L + 3` liveness bound are untouched.
pub fn sf_buffer_count(cfg: &GcnConfig, opts: &TrainOptions) -> usize {
    if opts.staleness == 0 {
        return 0;
    }
    (0..cfg.layers())
        .filter(|&l| !(l == 0 && opts.op_order_opt && cfg.d_in(0) < cfg.d_out(0)))
        .count()
}

/// The MG-GCN multi-GPU trainer.
pub struct Trainer {
    cfg: GcnConfig,
    opts: TrainOptions,
    problem: Problem,
    state: DeviceState,
    epoch: usize,
    /// Epoch of the most recent `SF` snapshot, `None` until one exists
    /// (fresh trainer, or right after a checkpoint restore — snapshots are
    /// scratch, not checkpointed, so the first post-restore epoch trains
    /// fully fresh). Only meaningful when `opts.staleness >= 1`.
    sf_epoch: Option<usize>,
    plan: MemoryPlan,
    /// Observation-only tracer; `None` (the default) records nothing and
    /// costs nothing. Ingestion happens strictly after a schedule has run,
    /// so enabling it cannot perturb numerics or op ordering.
    tracer: Option<Arc<mggcn_trace::Tracer>>,
}

impl Trainer {
    /// Validate memory, allocate device state (when the problem is
    /// materialized), and get ready to train.
    pub fn new(problem: Problem, cfg: GcnConfig, opts: TrainOptions) -> Result<Self, OomError> {
        let m_total: u64 = problem.fwd_nnz.iter().sum();
        let plan = match opts.partition {
            Partition::OneD => MemoryPlan::new(
                problem.n as u64,
                m_total,
                &cfg,
                opts.gpus as u64,
                opts.buffer_policy,
            ),
            Partition::OneFiveD => {
                assert!(
                    opts.gpus >= 2 && opts.gpus.is_multiple_of(2),
                    "1.5D partitioning needs an even GPU count >= 2, got {}",
                    opts.gpus
                );
                MemoryPlan::new_15d(
                    problem.n as u64,
                    m_total,
                    &cfg,
                    opts.gpus as u64,
                    opts.buffer_policy,
                )
            }
        };
        let plan = if opts.staleness > 0 {
            let sf = sf_buffer_count(&cfg, &opts) as u64;
            plan.with_staleness(problem.n as u64, opts.gpus as u64, &cfg, sf)
        } else {
            plan
        };
        let capacity = opts.machine.gpus[0].mem_bytes;
        if !plan.fits(capacity) {
            return Err(OomError {
                gpu: 0,
                requested: plan.total(),
                in_use: 0,
                capacity,
                tag: format!("{} epoch working set", problem.name),
            });
        }
        let state = if problem.is_materialized() {
            DeviceState::for_problem(&problem, &cfg)
        } else {
            DeviceState::empty()
        };
        Ok(Self { cfg, opts, problem, state, epoch: 0, sf_epoch: None, plan, tracer: None })
    }

    /// Attach a tracer. Every subsequent epoch/evaluation ingests its
    /// simulated timeline, measured wall spans (threaded backend), and
    /// per-GPU big-buffer high-watermarks into it.
    pub fn set_tracer(&mut self, tracer: Arc<mggcn_trace::Tracer>) {
        tracer.set_memory_bound(self.plan.big_buffers);
        self.tracer = Some(tracer);
    }

    /// Planned per-GPU memory (bytes) — the Fig 12 quantity.
    pub fn memory_per_gpu(&self) -> u64 {
        self.plan.total()
    }

    /// The analytic per-GPU memory plan this trainer was admitted under.
    pub fn plan(&self) -> &MemoryPlan {
        &self.plan
    }

    pub fn options(&self) -> &TrainOptions {
        &self.opts
    }

    pub fn config(&self) -> &GcnConfig {
        &self.cfg
    }

    pub fn state(&self) -> &DeviceState {
        &self.state
    }

    /// Number of epochs trained so far.
    pub fn epochs_trained(&self) -> usize {
        self.epoch
    }

    /// Restore weights, Adam moments and the epoch counter from a
    /// checkpoint. Every GPU replica receives the same state, preserving
    /// the lockstep invariant. Errors on shape mismatch.
    pub fn restore(&mut self, ck: &crate::checkpoint::Checkpoint) -> Result<(), String> {
        if ck.weights.len() != self.cfg.layers() {
            return Err(format!(
                "checkpoint has {} layers, model has {}",
                ck.weights.len(),
                self.cfg.layers()
            ));
        }
        for (l, w) in ck.weights.iter().enumerate() {
            if (w.rows(), w.cols()) != (self.cfg.d_in(l), self.cfg.d_out(l)) {
                return Err(format!(
                    "layer {l}: checkpoint {}x{} vs model {}x{}",
                    w.rows(),
                    w.cols(),
                    self.cfg.d_in(l),
                    self.cfg.d_out(l)
                ));
            }
        }
        for i in 0..self.state.gpu_count() {
            let mut g = self.state.gpu(i);
            g.weights = ck.weights.clone();
            g.adam_m = ck.adam_m.clone();
            g.adam_v = ck.adam_v.clone();
        }
        self.epoch = ck.epoch as usize;
        self.sf_epoch = None;
        Ok(())
    }

    /// Run one full-batch epoch (forward, loss, backward, Adam) and report.
    ///
    /// On [`Backend::Simulated`] this cannot fail. On
    /// [`Backend::Threaded`] the schedule really executes on
    /// worker-per-GPU threads; a panicking kernel body surfaces as
    /// [`TrainError::Exec`] (never a hang), and the report carries the
    /// measured wall-clock profile in [`EpochReport::measured`].
    pub fn train_epoch(&mut self) -> Result<EpochReport, TrainError> {
        if self.opts.staleness > 0 {
            // One-epoch pipelined schedule: numerically identical to the
            // fused multi-epoch build because snapshot ages and cadence are
            // functions of the absolute epoch counter, and `SF` persists in
            // device state between calls.
            return self.train_pipelined(1).map(|mut v| v.pop().expect("one epoch"));
        }
        let sched = self.build_epoch();
        self.state.reset_scratch();
        let (run, measured) = self.dispatch(sched)?;
        let (train_acc, test_acc) = self.state.accuracy();
        let report = EpochReport {
            epoch: self.epoch,
            sim_seconds: run.makespan + self.opts.epoch_host_overhead,
            loss: self.state.total_loss(),
            train_acc,
            test_acc,
            timeline: run.timeline,
            measured,
        };
        self.epoch += 1;
        Ok(report)
    }

    /// Run a built schedule on the configured backend.
    fn dispatch(
        &self,
        sched: Schedule<DeviceState>,
    ) -> Result<(RunReport, Option<MeasuredEpoch>), TrainError> {
        let (run, measured) = match self.opts.backend {
            Backend::Simulated => (sched.run(&self.state), None),
            Backend::Threaded => {
                let r = mggcn_exec::execute(sched, &self.state).map_err(TrainError::Exec)?;
                if let Some(tracer) = &self.tracer {
                    tracer.ingest_wall_spans(&r.spans, r.wall_seconds);
                }
                let measured = MeasuredEpoch {
                    wall_seconds: r.wall_seconds,
                    category_seconds: r.category_wall_seconds(),
                    bodies_run: r.bodies_run,
                };
                (r.sim, Some(measured))
            }
        };
        if let Some(tracer) = &self.tracer {
            tracer.ingest_sim_timeline_on(&run.timeline, run.makespan, &self.opts.machine);
            for g in 0..self.state.gpu_count() {
                tracer.record_memory(g, self.state.big_buffer_bytes(g));
            }
        }
        Ok((run, measured))
    }

    /// Train `epochs` epochs, returning every report. With
    /// `--staleness >= 1` all epochs are recorded into ONE fused,
    /// epoch-tagged schedule so epoch `e + 1`'s prefetch broadcasts really
    /// issue during epoch `e`'s backward pass (DESIGN §15).
    pub fn train(&mut self, epochs: usize) -> Result<Vec<EpochReport>, TrainError> {
        if self.opts.staleness == 0 || epochs == 0 {
            (0..epochs).map(|_| self.train_epoch()).collect()
        } else {
            self.train_pipelined(epochs)
        }
    }

    /// Record `epochs` consecutive training epochs into one fused schedule
    /// (DESIGN §15): every op carries its epoch tag, remote forward
    /// broadcasts read the bounded-staleness `SF` snapshots, and prefetch
    /// broadcasts ride a dedicated stream past the comm lane. Returns the
    /// schedule plus the epoch of the last snapshot taken (the trainer's
    /// `sf_epoch` after a run).
    fn build_pipelined(&self, epochs: usize) -> (Schedule<DeviceState>, Option<usize>) {
        let k = self.opts.staleness;
        assert!(k >= 1, "pipelined schedules need staleness >= 1");
        assert!(epochs >= 1, "pipelined schedules need at least one epoch");
        let mut b = EpochBuilder::new(&self.cfg, &self.opts, &self.problem, self.epoch);
        let mut last_snap = self.sf_epoch;
        for e in self.epoch..self.epoch + epochs {
            // Snapshot cadence: refresh `SF` whenever the current snapshot
            // would otherwise exceed age `k`, so every stale read has age
            // in `1..=k`. The very first epoch (no snapshot yet) trains
            // fully fresh and seeds `SF`.
            let sf_age = last_snap.map(|s| e - s);
            let snap = last_snap.is_none_or(|s| e - s >= k);
            b.begin_epoch(e, sf_age, snap);
            b.forward();
            b.loss();
            b.backward();
            if snap {
                last_snap = Some(e);
            }
        }
        (b.sched, last_snap)
    }

    /// A fused `epochs`-epoch bounded-staleness schedule, recorded but not
    /// run — the epoch-tagged input `mggcn-analyze` verifies (every stale
    /// read declared with its true age) and the conformance suites mutate.
    /// Requires `staleness >= 1`.
    pub fn pipelined_schedule(&self, epochs: usize) -> Schedule<DeviceState> {
        self.build_pipelined(epochs).0
    }

    /// Run a fused bounded-staleness schedule and split the single run
    /// report back into per-epoch reports using the span epoch tags.
    fn train_pipelined(&mut self, epochs: usize) -> Result<Vec<EpochReport>, TrainError> {
        let base = self.epoch;
        let (sched, sf_epoch) = self.build_pipelined(epochs);
        self.state.reset_scratch();
        let (run, mut measured) = self.dispatch(sched)?;
        self.sf_epoch = sf_epoch;
        self.epoch = base + epochs;
        let stats: Vec<Vec<crate::state::EpochStats>> =
            (0..self.state.gpu_count()).map(|g| self.state.gpu(g).epoch_stats.clone()).collect();
        let mut reports = Vec::with_capacity(epochs);
        let mut prev_boundary = 0.0f64;
        for i in 0..epochs {
            let e = base + i;
            // Epoch e ends when its last tagged span ends. Epoch e + 1's
            // prefetch spans are tagged e + 1, so time they overlap into
            // epoch e's backward is — correctly — not billed to epoch e.
            let boundary = run
                .timeline
                .spans
                .iter()
                .filter(|s| s.epoch.is_some_and(|se| se <= e))
                .map(|s| s.end)
                .fold(prev_boundary, f64::max);
            let mut timeline = Timeline::default();
            timeline
                .spans
                .extend(run.timeline.spans.iter().filter(|s| s.epoch == Some(e)).cloned());
            let (mut loss, mut tc, mut tt, mut ec, mut et) = (0.0f64, 0usize, 0, 0, 0);
            for per_gpu in &stats {
                if let Some(&(ls, a, b, c, d)) = per_gpu.get(i) {
                    loss += ls;
                    tc += a;
                    tt += b;
                    ec += c;
                    et += d;
                }
            }
            reports.push(EpochReport {
                epoch: e,
                sim_seconds: boundary - prev_boundary + self.opts.epoch_host_overhead,
                loss,
                train_acc: if tt == 0 { 0.0 } else { tc as f64 / tt as f64 },
                test_acc: if et == 0 { 0.0 } else { ec as f64 / et as f64 },
                timeline,
                measured: if i + 1 == epochs { measured.take() } else { None },
            });
            prev_boundary = boundary;
        }
        Ok(reports)
    }

    /// Forward pass + loss only — inference. Weights are untouched (the
    /// loss kernel overwrites the logits buffer with gradients, but no
    /// backward step consumes them). Reports loss/accuracy and the
    /// simulated inference time; does not advance the epoch counter.
    pub fn evaluate(&mut self) -> Result<EpochReport, TrainError> {
        let mut b = EpochBuilder::new(&self.cfg, &self.opts, &self.problem, self.epoch);
        b.forward();
        b.loss();
        let sched = b.sched;
        self.state.reset_scratch();
        let (run, measured) = self.dispatch(sched)?;
        let (train_acc, test_acc) = self.state.accuracy();
        Ok(EpochReport {
            epoch: self.epoch,
            sim_seconds: run.makespan + self.opts.epoch_host_overhead,
            loss: self.state.total_loss(),
            train_acc,
            test_acc,
            timeline: run.timeline,
            measured,
        })
    }

    /// Run forward + loss + backward (all-reduce included, Adam excluded)
    /// and return the per-layer weight gradients from GPU 0's replica.
    /// Weights, Adam moments and the epoch counter are untouched, so this
    /// is the conformance hook for differential gradient checking: the
    /// result is exactly the global gradient `Σ_g X_gᵀ·HW_G` the next Adam
    /// step would consume. Panics on a timing-only (non-materialized)
    /// problem.
    pub fn compute_gradients(&mut self) -> Vec<Dense> {
        assert!(self.problem.is_materialized(), "compute_gradients needs a materialized problem");
        let mut b = EpochBuilder::new(&self.cfg, &self.opts, &self.problem, self.epoch);
        b.forward();
        b.loss();
        b.backward_ops(false);
        let sched = b.sched;
        self.state.reset_scratch();
        sched.run(&self.state);
        self.state.gpu(0).wgrad.clone()
    }

    /// Deterministic textual dump of one epoch's schedule (structure only:
    /// op order, lanes, dependency edges, declared buffer effects) — the
    /// golden-snapshot hook.
    pub fn epoch_schedule_dump(&self) -> String {
        self.build_epoch().dump_ops()
    }

    /// One training epoch's schedule, fully recorded but not run — the
    /// input `mggcn-analyze` verifies (hazards, deadlock-freedom, the
    /// `L + 3` liveness bound) and the mutation harness perturbs.
    pub fn epoch_schedule(&self) -> Schedule<DeviceState> {
        self.build_epoch()
    }

    /// Run `sched`'s bodies against a *fresh* device state under the
    /// shadow effect recorder and return what each op actually read and
    /// wrote (`crate::shadow`) — the effect-soundness oracle's input. The
    /// trainer's own state is untouched, so auditing is side-effect free.
    /// Panics on a timing-only (non-materialized) problem, whose schedules
    /// carry no bodies to observe.
    pub fn record_actual_effects(
        &self,
        sched: Schedule<DeviceState>,
    ) -> Vec<mggcn_gpusim::shadow::ActualEffects> {
        assert!(
            self.problem.is_materialized(),
            "effect audit needs a materialized problem (bodies to observe)"
        );
        crate::shadow::record_actual_effects(sched, &self.problem, &self.cfg)
    }

    /// Execute one epoch schedule's bodies in an explicit linearization
    /// `order` against a fresh, identically-seeded device state and digest
    /// the resulting weight bits — the DPOR model checker's execution
    /// oracle. `mutate` edits the rebuilt schedule first (the mutation
    /// harness deletes a wait edge through it); pass `|_| {}` for the
    /// as-declared schedule. The trainer's own state is untouched.
    pub fn linearization_digest(
        &self,
        mutate: impl FnOnce(&mut Schedule<DeviceState>),
        order: &[OpId],
    ) -> u64 {
        assert!(
            self.problem.is_materialized(),
            "model checking needs a materialized problem (bodies to execute)"
        );
        let mut sched = self.epoch_schedule();
        mutate(&mut sched);
        let fresh = DeviceState::for_problem(&self.problem, &self.cfg);
        sched.run_in_order(&fresh, order);
        fresh.weights_digest()
    }

    /// Closed-form per-stage broadcast bytes for **one** training epoch of
    /// this trainer's schedule — the §5.1 prediction a tracer's
    /// `sim.bcast.bytes.stage.*` counters must match exactly (× epochs).
    pub fn expected_broadcast_bytes(&self) -> Vec<u64> {
        let rows: Vec<usize> = (0..self.opts.gpus).map(|s| self.problem.rows_of(s)).collect();
        if self.opts.partition == Partition::OneFiveD && self.opts.gpus == 2 {
            // Singleton replication groups: every intra-group "broadcast" is
            // a one-lane collective, which the engine models as a zero-byte
            // fixed-latency hop — the traced stage counters see no bytes.
            // At P >= 4 each stage is still broadcast exactly once with the
            // same payload as under 1D, so the 1D closed form applies.
            return vec![0; self.opts.gpus];
        }
        mggcn_comm::analysis::epoch_broadcast_bytes(
            &rows,
            &self.cfg.dims,
            self.opts.op_order_opt,
            self.opts.skip_first_backward_spmm,
        )
    }

    fn build_epoch(&self) -> Schedule<DeviceState> {
        let mut b = EpochBuilder::new(&self.cfg, &self.opts, &self.problem, self.epoch);
        b.forward();
        b.loss();
        b.backward();
        b.sched
    }
}

/// Per-epoch schedule builder.
struct EpochBuilder<'a> {
    sched: Schedule<DeviceState>,
    cfg: &'a GcnConfig,
    opts: &'a TrainOptions,
    problem: &'a Problem,
    real: Option<Arc<RealData>>,
    /// Adam step (1-based) of this epoch.
    t: u64,
    /// Per-GPU op that produced the current layer-input buffer.
    producers: Vec<Option<OpId>>,
    /// Ops that last read each broadcast buffer (WAR guards).
    bc_readers: [Vec<OpId>; 2],
    /// 1.5D: per replication group, the ops that last read each broadcast
    /// slot (the group-local WAR guards — the two groups never share a BC
    /// buffer, so their guard sets are independent).
    bc_readers15: [[Vec<OpId>; 2]; 2],
    /// 1.5D: the cross-group reduction ops of the most recent staged SpMM.
    /// They read *every* GPU's `src` shard, so each GPU's next op must
    /// order after all of them once; lane FIFO carries the edge from there.
    /// Always empty under 1D, so 1D schedules are untouched.
    pending_sync: Vec<OpId>,
    /// Which GPUs have already consumed [`EpochBuilder::pending_sync`].
    sync_taken: Vec<bool>,
    /// `Some(e)` while recording epoch `e` of a fused bounded-staleness
    /// schedule (DESIGN §15); `None` for classic single-epoch builds, which
    /// therefore dump, analyze and run bit-identically to every prior
    /// release.
    epoch_tag: Option<usize>,
    /// Age (epochs) of the `SF` snapshot this epoch's remote forward
    /// broadcasts read; `None` means train fully fresh.
    sf_age: Option<usize>,
    /// Whether this epoch refreshes the `SF` snapshots after its forward
    /// reads them.
    snap_this_epoch: bool,
    /// `sf_writer[l][g]`: the op that last wrote `SF(l)` on GPU `g` (the
    /// RAW guard for stale broadcasts).
    sf_writer: Vec<Vec<Option<OpId>>>,
    /// `sf_reader[l][g]`: the broadcast that last read `SF(l)` rooted at
    /// GPU `g` (the WAR guard for snapshot refreshes).
    sf_reader: Vec<Vec<Option<OpId>>>,
}

impl<'a> EpochBuilder<'a> {
    fn new(cfg: &'a GcnConfig, opts: &'a TrainOptions, problem: &'a Problem, epoch: usize) -> Self {
        let mut sched = Schedule::new(opts.machine.clone());
        sched.launch_overhead = opts.launch_overhead;
        Self {
            sched,
            cfg,
            opts,
            problem,
            real: problem.real.clone(),
            t: epoch as u64 + 1,
            producers: vec![None; opts.gpus],
            bc_readers: [Vec::new(), Vec::new()],
            bc_readers15: [[Vec::new(), Vec::new()], [Vec::new(), Vec::new()]],
            pending_sync: Vec::new(),
            sync_taken: vec![false; opts.gpus],
            epoch_tag: None,
            sf_age: None,
            snap_this_epoch: false,
            sf_writer: vec![vec![None; opts.gpus]; cfg.layers()],
            sf_reader: vec![vec![None; opts.gpus]; cfg.layers()],
        }
    }

    /// Start recording epoch `epoch` of a fused bounded-staleness schedule.
    /// Layer-input producers reset (the prefetch paths supply their own
    /// dependencies); the broadcast-buffer WAR chains, the 1.5D pending
    /// sync and the `SF` reader/writer guards deliberately persist — they
    /// carry the cross-epoch ordering that makes every stale read *declared
    /// state* rather than a race.
    fn begin_epoch(&mut self, epoch: usize, sf_age: Option<usize>, snap: bool) {
        self.t = epoch as u64 + 1;
        self.epoch_tag = Some(epoch);
        self.sf_age = sf_age;
        self.snap_this_epoch = snap;
        self.producers = vec![None; self.opts.gpus];
    }

    /// Epoch-tagged [`OpDesc`] (classic builds stay untagged).
    fn mk_desc(&self, cat: Category, label: &'static str) -> OpDesc {
        let d = OpDesc::new(cat, label);
        match self.epoch_tag {
            Some(e) => d.in_epoch(e),
            None => d,
        }
    }

    /// Epoch-tagged staged [`OpDesc`] (classic builds stay untagged).
    fn mk_staged(&self, cat: Category, label: &'static str, stage: usize) -> OpDesc {
        let d = OpDesc::staged(cat, label, stage);
        match self.epoch_tag {
            Some(e) => d.in_epoch(e),
            None => d,
        }
    }

    /// Declare the epoch-carried read of `buf` (weights / Adam moments
    /// written by the previous epoch's optimizer) on fused schedules: that
    /// cross-epoch RAW is the intended age-1 pipeline dependency, not a
    /// hazard. Lane FIFO already orders it; the declaration tells
    /// `mggcn-analyze` it is deliberate.
    fn declare_epoch_carry(&self, fx: Effects, buf: BufId) -> Effects {
        if self.epoch_tag.is_some() {
            fx.stale([StaleRead { buf, age: 1 }])
        } else {
            fx
        }
    }

    /// Whether layer `l`'s forward broadcast needs an `SF` snapshot to go
    /// stale (layer 0 under spmm-first broadcasts the constant `X`).
    fn needs_sf(&self, l: usize) -> bool {
        !(l == 0 && self.opts.op_order_opt && self.cfg.d_in(0) < self.cfg.d_out(0))
    }

    /// The pending cross-group-reduction waits GPU `g` still owes, consumed
    /// exactly once per GPU per staged 1.5D SpMM (subsequent same-lane ops
    /// inherit the ordering through lane FIFO). Empty under 1D.
    fn take_sync(&mut self, g: usize) -> Vec<OpId> {
        if self.sync_taken[g] {
            Vec::new()
        } else {
            self.sync_taken[g] = true;
            self.pending_sync.clone()
        }
    }

    /// Partition dispatch: the paper's 1D broadcast pipeline or the §5.1
    /// 1.5D replicated pipeline. Both return the per-GPU producer of `dst`.
    /// `prefetch` (forward layers of a bounded-staleness epoch only)
    /// replaces the remote broadcast source with snapshot/constant state.
    fn staged(
        &mut self,
        dir: Dir,
        src: Buf,
        dst: Buf,
        d: usize,
        src_producers: Vec<Option<OpId>>,
        prefetch: Option<PrefetchSrc>,
    ) -> Vec<OpId> {
        match self.opts.partition {
            Partition::OneD => self.staged_spmm(dir, src, dst, d, src_producers, prefetch),
            Partition::OneFiveD => self.staged_spmm_15d(dir, src, dst, d, src_producers, prefetch),
        }
    }

    fn p(&self) -> usize {
        self.opts.gpus
    }

    fn gpu_spec(&self, g: usize) -> &mggcn_gpusim::GpuSpec {
        &self.opts.machine.gpus[g]
    }

    /// Forward pass over all layers.
    fn forward(&mut self) {
        let layers = self.cfg.layers();
        for l in 0..layers {
            let d_in = self.cfg.d_in(l);
            let d_out = self.cfg.d_out(l);
            let input = if l == 0 { Buf::X } else { Buf::Ahw(l - 1) };
            let spmm_first = self.opts.op_order_opt && d_in < d_out;
            // Bounded-staleness epochs prefetch every forward broadcast:
            // from the layer's SF snapshot when the source can go stale,
            // or straight from the constant X (exact) when it cannot.
            let prefetch = self.sf_age.map(|age| {
                if self.needs_sf(l) {
                    PrefetchSrc::Snapshot { layer: l, age }
                } else {
                    PrefetchSrc::Const
                }
            });

            let (snap_src, snap_d);
            if spmm_first {
                // AH = Âᵀ·H (width d_in) into HW, then AHW = AH·W.
                let spmm_ops =
                    self.staged(Dir::Fwd, input, Buf::Hw, d_in, self.producers.clone(), prefetch);
                let gemm_ops = self.local_gemm_xw(l, Buf::Hw, Buf::Ahw(l), &spmm_ops);
                self.producers = gemm_ops.into_iter().map(Some).collect();
                (snap_src, snap_d) = (input, d_in);
            } else {
                // HW = H·W (width d_out) into HW, then AHW = Âᵀ·HW.
                let gemm_ops = self.local_gemm_xw(l, input, Buf::Hw, &[]);
                let srcs: Vec<Option<OpId>> = gemm_ops.into_iter().map(Some).collect();
                let spmm_ops = self.staged(Dir::Fwd, Buf::Hw, Buf::Ahw(l), d_out, srcs, prefetch);
                self.producers = spmm_ops.into_iter().map(Some).collect();
                (snap_src, snap_d) = (Buf::Hw, d_out);
            }
            self.snapshot_source(l, snap_src, snap_d);

            if l + 1 < layers {
                let relu_ops = self.relu_forward(l);
                self.producers = relu_ops.into_iter().map(Some).collect();
            }
        }
    }

    /// Refresh layer `l`'s `SF` snapshot from this epoch's live broadcast
    /// source (DESIGN §15) — recorded right after the layer's staged SpMM,
    /// while the source buffer still holds this layer's operand. Waits on
    /// the broadcast that last read the old snapshot (WAR); lane-0 FIFO
    /// orders it against the local source writers.
    fn snapshot_source(&mut self, l: usize, src: Buf, d: usize) {
        if !(self.snap_this_epoch && self.needs_sf(l)) {
            return;
        }
        for g in 0..self.p() {
            let n_g = self.problem.rows_of(g);
            let work = self.opts.cost.elementwise((n_g * d) as u64, 2.0);
            let body = self.real.as_ref().map(|_| {
                Box::new(move |ctx: &DeviceState| {
                    let gs = &mut *ctx.gpu(g);
                    let v = read_buf(gs, src).as_slice()[..n_g * d].to_vec();
                    // A snapshot of an unchanged source is byte-identical;
                    // the oracle's fingerprint diff needs the explicit note.
                    gs.note_write(sf_id(g, l));
                    gs.sf[l].resize(n_g, d);
                    gs.sf[l].as_mut_slice()[..n_g * d].copy_from_slice(&v);
                }) as Body<DeviceState>
            });
            let waits: Vec<OpId> = self.sf_reader[l][g].into_iter().collect();
            let op = self.sched.launch_fx(
                g,
                0,
                work,
                self.mk_desc(Category::Other, "sf-snap"),
                &waits,
                Effects::none().reads([buf_id(g, src)]).writes([sf_id(g, l)]),
                body,
            );
            self.sf_writer[l][g] = Some(op);
        }
    }

    /// Masked softmax cross-entropy over the final logits.
    fn loss(&mut self) {
        let last = self.cfg.layers() - 1;
        let classes = self.cfg.d_out(last);
        let train_count = self.problem.train_count.max(1);
        let mut ops = Vec::with_capacity(self.p());
        let fused = self.epoch_tag.is_some();
        for g in 0..self.p() {
            let n_g = self.problem.rows_of(g);
            let work = self.opts.cost.loss(n_g as u64, classes as u64);
            let body = self.real.as_ref().map(|_| {
                Box::new(move |ctx: &DeviceState| {
                    let gs = &mut *ctx.gpu(g);
                    gs.note_read(buf_id(g, Buf::Ahw(last)));
                    let stats = softmax_xent_inplace(
                        &mut gs.ahw[last],
                        &gs.labels,
                        &gs.train_mask,
                        &gs.test_mask,
                        train_count,
                    );
                    gs.loss_sum = stats.loss_sum;
                    gs.train_correct = stats.train_correct;
                    gs.train_total = stats.train_total;
                    gs.test_correct = stats.test_correct;
                    gs.test_total = stats.test_total;
                    if fused {
                        // Fused multi-epoch schedules keep a per-epoch
                        // trail: epoch e's loss is HB-before epoch e+1's
                        // (through backward → Adam → forward), so push
                        // order is epoch order on every GPU.
                        gs.epoch_stats.push((
                            stats.loss_sum,
                            stats.train_correct,
                            stats.train_total,
                            stats.test_correct,
                            stats.test_total,
                        ));
                    }
                }) as Body<DeviceState>
            });
            let waits = self.take_sync(g);
            let id = self.sched.launch_fx(
                g,
                0,
                work,
                self.mk_desc(Category::LossLayer, "softmax-xent"),
                &waits,
                Effects::none().rw(buf_id(g, Buf::Ahw(last))),
                body,
            );
            ops.push(id);
        }
        self.producers = ops.into_iter().map(Some).collect();
    }

    /// Backward pass, Adam included.
    fn backward(&mut self) {
        self.backward_ops(true);
    }

    /// Backward pass; `with_adam` gates the optimizer step so the
    /// conformance harness can read raw gradients without mutating weights.
    fn backward_ops(&mut self, with_adam: bool) {
        let layers = self.cfg.layers();
        for l in (0..layers).rev() {
            let d_in = self.cfg.d_in(l);
            let d_out = self.cfg.d_out(l);

            // (eq. 8) ReLU backward for every layer but the last (the loss
            // already wrote the last layer's gradient into its AHW buffer).
            if l + 1 < layers {
                let ops = self.relu_backward_layer(l);
                self.producers = ops.into_iter().map(Some).collect();
            }

            // (eq. 9) HW_G = Â · AHW_G — skipped at layer 0 under §4.4.
            let skip_spmm = l == 0 && self.opts.skip_first_backward_spmm;
            let hwg_buf = if skip_spmm { Buf::Ahw(0) } else { Buf::Hw };
            if !skip_spmm {
                let ops = self.staged(
                    Dir::Bwd,
                    Buf::Ahw(l),
                    Buf::Hw,
                    d_out,
                    self.producers.clone(),
                    None,
                );
                self.producers = ops.into_iter().map(Some).collect();
            }

            // (eq. 10) W_G = Hᵀ · HW_G, then all-reduce and Adam.
            let x_buf = if l == 0 { Buf::X } else { Buf::Ahw(l - 1) };
            let wgrad_ops = self.weight_grad(l, x_buf, hwg_buf);
            let reduce_op = self.all_reduce_wgrad(l, &wgrad_ops);

            // (eq. 11) H_G = HW_G · Wᵀ — only needed above layer 0. Must
            // run before Adam mutates W.
            if l > 0 {
                let ops = self.input_grad(l, d_in);
                self.producers = ops.into_iter().map(Some).collect();
            }

            if with_adam {
                self.adam(l, reduce_op);
            }
        }
    }

    /// The staged distributed SpMM (§4.1 solution 1, broadcast variant).
    ///
    /// `src` is the dense operand (each GPU owns one tile row of it), `dst`
    /// the accumulation target, `d` the operand width. `src_producers[s]`
    /// is the op that produced GPU `s`'s `src` tile. Returns the final
    /// per-GPU SpMM op (the producer of `dst`).
    fn staged_spmm(
        &mut self,
        dir: Dir,
        src: Buf,
        dst: Buf,
        d: usize,
        src_producers: Vec<Option<OpId>>,
        prefetch: Option<PrefetchSrc>,
    ) -> Vec<OpId> {
        let p = self.p();
        // A single GPU broadcasts nothing and always consumes its own live
        // tile: staleness never changes P = 1 numerics.
        let prefetch = if p > 1 { prefetch } else { None };
        let comm_stream = self.opts.comm_stream();
        // Prefetched broadcasts ride a dedicated stream: on the comm lane
        // they would FIFO behind the previous epoch's gradient all-reduce,
        // which is exactly the serialization staleness exists to break.
        let bcast_stream =
            if prefetch.is_some() { self.opts.prefetch_stream() } else { comm_stream };
        let group: Vec<usize> = self.opts.gpu_ids();
        let lanes: Vec<(usize, usize)> = group.iter().map(|&g| (g, bcast_stream)).collect();
        let mut last_spmm: Vec<OpId> = Vec::with_capacity(p);
        for (s, &src_producer) in src_producers.iter().enumerate() {
            let slot = BcSlot::for_stage(s);
            let slot_idx = s % 2;
            let rows = self.problem.rows_of(s);
            // Broadcast stage s: wait for the previous readers of this
            // double buffer (WAR) plus the source of truth — the live
            // tile's producer when fresh, the snapshot's writer when stale
            // (constant X needs neither).
            let mut waits: Vec<OpId> = self.bc_readers[slot_idx].clone();
            let bcast_fx = match prefetch {
                Some(PrefetchSrc::Snapshot { layer, age }) => {
                    if let Some(w) = self.sf_writer[layer][s] {
                        waits.push(w);
                    }
                    Effects::none()
                        .stale([StaleRead { buf: sf_id(s, layer), age }])
                        .writes(group.iter().map(|&g| bc_id(g, slot_idx)))
                }
                Some(PrefetchSrc::Const) | None => {
                    if prefetch.is_none() {
                        if let Some(prod) = src_producer {
                            waits.push(prod);
                        }
                    }
                    Effects::none()
                        .reads([buf_id(s, src)])
                        .writes(group.iter().map(|&g| bc_id(g, slot_idx)))
                }
            };
            let bytes = rows as f64 * d as f64 * 4.0;
            let bw = self.opts.machine.broadcast_bw(s, &group);
            let body = self.real.as_ref().map(|_| {
                Box::new(move |ctx: &DeviceState| match prefetch {
                    Some(PrefetchSrc::Snapshot { layer, .. }) => {
                        ctx.broadcast_into_bc(s, move |g| g.sf_ref(layer), rows, d, slot);
                    }
                    _ => {
                        ctx.broadcast_into_bc(s, move |g| read_buf(g, src), rows, d, slot);
                    }
                }) as Body<DeviceState>
            });
            let bcast = self.sched.collective_fx(
                &lanes,
                bytes,
                bw,
                self.mk_staged(Category::Comm, "bcast-H", s),
                &waits,
                bcast_fx,
                body,
            );
            if let Some(PrefetchSrc::Snapshot { layer, .. }) = prefetch {
                self.sf_reader[layer][s] = Some(bcast);
            }

            // SpMM stage s on every GPU. Under prefetch, the diagonal tile
            // (j == s, the stage's data lives here) reads the live source
            // directly instead of the stale double buffer, preserving the
            // exact local gradient path (DESIGN §15).
            let mut readers = Vec::with_capacity(p);
            for j in 0..p {
                let local_fresh = prefetch.is_some() && j == s;
                let nnz = match dir {
                    Dir::Fwd => self.problem.fwd_tile_nnz(j, s),
                    Dir::Bwd => self.problem.bwd_tile_nnz(j, s),
                };
                let n_j = self.problem.rows_of(j);
                let acc = s > 0;
                let work = self.opts.cost.spmm(
                    self.gpu_spec(j),
                    n_j as u64,
                    rows as u64,
                    nnz,
                    d as u64,
                    acc,
                );
                let real = self.real.clone();
                let body = real.map(|rc| {
                    Box::new(move |ctx: &DeviceState| {
                        let tile = match dir {
                            Dir::Fwd => &rc.fwd_tiles[j * p + s],
                            Dir::Bwd => &rc.bwd_tiles[j * p + s],
                        };
                        let g = &mut *ctx.gpu(j);
                        let accumulate = if acc { Accumulate::Add } else { Accumulate::Overwrite };
                        if acc {
                            g.note_read(buf_id(j, dst));
                        }
                        g.note_write(buf_id(j, dst));
                        // Move the destination out so the broadcast buffer
                        // can be borrowed from the same GpuState.
                        let mut out = match dst {
                            Buf::Hw => std::mem::take(&mut g.hw),
                            Buf::Ahw(l) => std::mem::take(&mut g.ahw[l]),
                            Buf::X => unreachable!("X is never an SpMM destination"),
                        };
                        if !acc {
                            out.resize(n_j, d);
                        }
                        if local_fresh {
                            spmm(tile, read_buf(g, src), &mut out, accumulate);
                        } else {
                            spmm(tile, g.bc_ref(slot), &mut out, accumulate);
                        }
                        match dst {
                            Buf::Hw => g.hw = out,
                            Buf::Ahw(l) => g.ahw[l] = out,
                            Buf::X => unreachable!(),
                        }
                    }) as Body<DeviceState>
                });
                let mut waits = Vec::new();
                let mut fx = if local_fresh {
                    // local_fresh implies j == s, so the diagonal tile's
                    // source producer is this stage's.
                    if let Some(prod) = src_producer {
                        waits.push(prod);
                    }
                    Effects::none().reads([buf_id(j, src)]).writes([buf_id(j, dst)])
                } else {
                    waits.push(bcast);
                    Effects::none().reads([bc_id(j, slot_idx)]).writes([buf_id(j, dst)])
                };
                if acc {
                    // Accumulating stages read the running sum too.
                    fx = fx.reads([buf_id(j, dst)]);
                }
                let op = self.sched.launch_fx(
                    j,
                    0,
                    work,
                    self.mk_staged(Category::SpMM, "spmm", s),
                    &waits,
                    fx,
                    body,
                );
                if !local_fresh {
                    readers.push(op);
                }
                if s == p - 1 {
                    last_spmm.push(op);
                }
            }
            // When every consumer took the fresh local path (possible only
            // under prefetch), the broadcast itself anchors the slot's
            // WAR/WAW chain so later writers of this buffer stay ordered.
            self.bc_readers[slot_idx] = if readers.is_empty() { vec![bcast] } else { readers };
        }
        last_spmm
    }

    /// The 1.5D staged distributed SpMM (§5.1, replication factor c = 2).
    ///
    /// The machine splits into two replication groups `G0 = {0..P/2}` and
    /// `G1 = {P/2..P}`; GPU `j`'s mate is `(j + P/2) % P`. Phase A runs
    /// `P/2` rounds; in round `r` the two groups broadcast concurrently
    /// (G0 stage `r`, G1 stage `P/2 + r`, each inside its own group only)
    /// and every GPU folds the received tile into **two** partials: its own
    /// partition's (into `dst`) and its mate's (into the `RP` replica
    /// buffer — the §5.1 2× memory). Phase B runs `P/2` concurrent pairwise
    /// cross-group reductions, one per mate pair, exchanging the partials
    /// over the inter-group links and finalizing `dst` on both members.
    ///
    /// Numerics: the reduction body re-folds `dst` in the canonical 1D
    /// stage order `s = 0..P`, so 1.5D results are bit-identical to the 1D
    /// pipeline by construction; the declared bytes/bandwidth/op structure
    /// (what the DES times and the tracer counts) remain genuinely 1.5D.
    fn staged_spmm_15d(
        &mut self,
        dir: Dir,
        src: Buf,
        dst: Buf,
        d: usize,
        src_producers: Vec<Option<OpId>>,
        prefetch: Option<PrefetchSrc>,
    ) -> Vec<OpId> {
        let p = self.p();
        assert!(p >= 2 && p.is_multiple_of(2), "1.5D needs an even GPU count >= 2");
        let half = p / 2;
        let comm_stream = self.opts.comm_stream();
        // Prefetched broadcasts ride the dedicated staleness stream (same
        // reasoning as the 1D pipeline).
        let bcast_stream =
            if prefetch.is_some() { self.opts.prefetch_stream() } else { comm_stream };
        let groups: [Vec<usize>; 2] = [(0..half).collect(), (half..p).collect()];
        // Tail of each GPU's phase-A lane-0 chain — what the reductions wait on.
        let mut tail: Vec<Option<OpId>> = vec![None; p];

        for r in 0..half {
            // The two groups broadcast concurrently on disjoint lane sets.
            let mut bcasts = [None, None];
            for (gi, members) in groups.iter().enumerate() {
                let s = if gi == 0 { r } else { half + r };
                let slot_idx = s % 2;
                let slot = BcSlot::for_stage(s);
                let rows = self.problem.rows_of(s);
                let mut waits: Vec<OpId> = self.bc_readers15[gi][slot_idx].clone();
                let fx = match prefetch {
                    Some(PrefetchSrc::Snapshot { layer, age }) => {
                        if let Some(w) = self.sf_writer[layer][s] {
                            waits.push(w);
                        }
                        Effects::none()
                            .stale([StaleRead { buf: sf_id(s, layer), age }])
                            .writes(members.iter().map(|&g| bc_id(g, slot_idx)))
                    }
                    Some(PrefetchSrc::Const) | None => {
                        if prefetch.is_none() {
                            if let Some(prod) = src_producers[s] {
                                waits.push(prod);
                            }
                        }
                        Effects::none()
                            .reads([buf_id(s, src)])
                            .writes(members.iter().map(|&g| bc_id(g, slot_idx)))
                    }
                };
                let bytes = rows as f64 * d as f64 * 4.0;
                let bw = self.opts.machine.broadcast_bw(s, members);
                let lanes: Vec<(usize, usize)> =
                    members.iter().map(|&g| (g, bcast_stream)).collect();
                let mem = members.clone();
                let body = self.real.as_ref().map(|_| {
                    Box::new(move |ctx: &DeviceState| match prefetch {
                        Some(PrefetchSrc::Snapshot { layer, .. }) => {
                            ctx.broadcast_into_bc_group(
                                s,
                                move |g| g.sf_ref(layer),
                                rows,
                                d,
                                slot,
                                &mem,
                            );
                        }
                        _ => {
                            ctx.broadcast_into_bc_group(
                                s,
                                move |g| read_buf(g, src),
                                rows,
                                d,
                                slot,
                                &mem,
                            );
                        }
                    }) as Body<DeviceState>
                });
                let bcast = self.sched.collective_fx(
                    &lanes,
                    bytes,
                    bw,
                    self.mk_staged(Category::Comm, "bcast-H", s),
                    &waits,
                    fx,
                    body,
                );
                if let Some(PrefetchSrc::Snapshot { layer, .. }) = prefetch {
                    self.sf_reader[layer][s] = Some(bcast);
                }
                bcasts[gi] = Some(bcast);
            }

            // Each member folds the received stage twice: into its own
            // partial (dst) and its mate's partial (RP).
            for (gi, members) in groups.iter().enumerate() {
                let s = if gi == 0 { r } else { half + r };
                let slot_idx = s % 2;
                let slot = BcSlot::for_stage(s);
                let rows = self.problem.rows_of(s);
                let bcast = bcasts[gi].expect("broadcast emitted above");
                let acc = r > 0;
                let mut readers = Vec::with_capacity(members.len() * 2);
                for &j in members {
                    // The stage's data lives on GPU s: when prefetching,
                    // that member folds both its partials from the live
                    // source, keeping the diagonal contribution exact.
                    let local_fresh = prefetch.is_some() && j == s;
                    let mut waits = Vec::new();
                    if local_fresh {
                        if let Some(prod) = src_producers[j] {
                            waits.push(prod);
                        }
                    } else {
                        waits.push(bcast);
                    }
                    if r == 0 {
                        waits.extend(self.take_sync(j));
                    }
                    // Own partition: tile row j into dst.
                    let nnz = match dir {
                        Dir::Fwd => self.problem.fwd_tile_nnz(j, s),
                        Dir::Bwd => self.problem.bwd_tile_nnz(j, s),
                    };
                    let n_j = self.problem.rows_of(j);
                    let work = self.opts.cost.spmm(
                        self.gpu_spec(j),
                        n_j as u64,
                        rows as u64,
                        nnz,
                        d as u64,
                        acc,
                    );
                    let body = self.real.clone().map(|rc| {
                        Box::new(move |ctx: &DeviceState| {
                            let tile = match dir {
                                Dir::Fwd => &rc.fwd_tiles[j * p + s],
                                Dir::Bwd => &rc.bwd_tiles[j * p + s],
                            };
                            let g = &mut *ctx.gpu(j);
                            let accumulate =
                                if acc { Accumulate::Add } else { Accumulate::Overwrite };
                            if acc {
                                g.note_read(buf_id(j, dst));
                            }
                            g.note_write(buf_id(j, dst));
                            let mut out = match dst {
                                Buf::Hw => std::mem::take(&mut g.hw),
                                Buf::Ahw(l) => std::mem::take(&mut g.ahw[l]),
                                Buf::X => unreachable!("X is never an SpMM destination"),
                            };
                            if !acc {
                                out.resize(n_j, d);
                            }
                            if local_fresh {
                                spmm(tile, read_buf(g, src), &mut out, accumulate);
                            } else {
                                spmm(tile, g.bc_ref(slot), &mut out, accumulate);
                            }
                            match dst {
                                Buf::Hw => g.hw = out,
                                Buf::Ahw(l) => g.ahw[l] = out,
                                Buf::X => unreachable!(),
                            }
                        }) as Body<DeviceState>
                    });
                    let mut fx = if local_fresh {
                        Effects::none().reads([buf_id(j, src)]).writes([buf_id(j, dst)])
                    } else {
                        Effects::none().reads([bc_id(j, slot_idx)]).writes([buf_id(j, dst)])
                    };
                    if acc {
                        fx = fx.reads([buf_id(j, dst)]);
                    }
                    let own = self.sched.launch_fx(
                        j,
                        0,
                        work,
                        self.mk_staged(Category::SpMM, "spmm", s),
                        &waits,
                        fx,
                        body,
                    );
                    if !local_fresh {
                        readers.push(own);
                    }

                    // Mate's partition: tile row mate(j) into the RP replica.
                    let m = (j + half) % p;
                    let nnz_m = match dir {
                        Dir::Fwd => self.problem.fwd_tile_nnz(m, s),
                        Dir::Bwd => self.problem.bwd_tile_nnz(m, s),
                    };
                    let n_m = self.problem.rows_of(m);
                    let work_m = self.opts.cost.spmm(
                        self.gpu_spec(j),
                        n_m as u64,
                        rows as u64,
                        nnz_m,
                        d as u64,
                        acc,
                    );
                    let body_m = self.real.clone().map(|rc| {
                        Box::new(move |ctx: &DeviceState| {
                            let tile = match dir {
                                Dir::Fwd => &rc.fwd_tiles[m * p + s],
                                Dir::Bwd => &rc.bwd_tiles[m * p + s],
                            };
                            let g = &mut *ctx.gpu(j);
                            let accumulate =
                                if acc { Accumulate::Add } else { Accumulate::Overwrite };
                            if acc {
                                g.note_read(rp_id(j));
                            }
                            g.note_write(rp_id(j));
                            let mut out = std::mem::take(&mut g.rp);
                            if !acc {
                                out.resize(n_m, d);
                            }
                            if local_fresh {
                                spmm(tile, read_buf(g, src), &mut out, accumulate);
                            } else {
                                spmm(tile, g.bc_ref(slot), &mut out, accumulate);
                            }
                            g.rp = out;
                        }) as Body<DeviceState>
                    });
                    let mut waits_m = Vec::new();
                    let mut fx_m = if local_fresh {
                        if let Some(prod) = src_producers[j] {
                            waits_m.push(prod);
                        }
                        Effects::none().reads([buf_id(j, src)]).writes([rp_id(j)])
                    } else {
                        waits_m.push(bcast);
                        Effects::none().reads([bc_id(j, slot_idx)]).writes([rp_id(j)])
                    };
                    if acc {
                        fx_m = fx_m.reads([rp_id(j)]);
                    }
                    let mate = self.sched.launch_fx(
                        j,
                        0,
                        work_m,
                        self.mk_staged(Category::SpMM, "spmm-rp", s),
                        &waits_m,
                        fx_m,
                        body_m,
                    );
                    if !local_fresh {
                        readers.push(mate);
                    }
                    tail[j] = Some(mate);
                }
                // Singleton groups under prefetch record no readers; the
                // broadcast anchors the slot chain (see staged_spmm).
                self.bc_readers15[gi][slot_idx] =
                    if readers.is_empty() { vec![bcast] } else { readers };
            }
        }

        // Phase B: P/2 concurrent pairwise cross-group reductions. Pair
        // (a, a + P/2) exchanges both partials over the a↔mate link(s).
        let rows_all: Vec<usize> = (0..p).map(|s| self.problem.rows_of(s)).collect();
        let mut reduces: Vec<OpId> = Vec::with_capacity(half);
        let mut out_ops: Vec<Option<OpId>> = vec![None; p];
        for a in 0..half {
            let b = a + half;
            let lanes = [(a, comm_stream), (b, comm_stream)];
            let bytes = ((rows_all[a] + rows_all[b]) * d * 4) as f64;
            let bw = self.opts.machine.reduce_bw(a, &[a, b]);
            let waits =
                [tail[a].expect("phase A emitted for a"), tail[b].expect("phase A emitted for b")];
            let rows_body = rows_all.clone();
            let (fx, body);
            if self.epoch_tag.is_some() {
                // Fused bounded-staleness schedules use the genuine
                // pairwise exchange: each member's final result is its own
                // partial plus its mate's RP replica. The canonical refold
                // below would re-read every GPU's live src shard — an
                // undeclared cross-epoch RAW once stale broadcasts drop
                // their producer edges. The pairwise sum's f32 association
                // differs from the 1D fold, so k >= 1 1.5D runs are
                // oracle-band-equal, not bit-equal, to 1D (DESIGN §15).
                body = self.real.clone().map(|_| {
                    Box::new(move |ctx: &DeviceState| {
                        for &(t, o) in &[(a, b), (b, a)] {
                            let n_t = rows_body[t];
                            let partial = {
                                let g = ctx.gpu(o);
                                g.rp_ref().as_slice()[..n_t * d].to_vec()
                            };
                            let gs = &mut *ctx.gpu(t);
                            gs.note_read(buf_id(t, dst));
                            gs.note_write(buf_id(t, dst));
                            let out = match dst {
                                Buf::Hw => &mut gs.hw,
                                Buf::Ahw(l) => &mut gs.ahw[l],
                                Buf::X => unreachable!("X is never an SpMM destination"),
                            };
                            for (x, v) in out.as_mut_slice()[..n_t * d].iter_mut().zip(&partial) {
                                *x += v;
                            }
                        }
                    }) as Body<DeviceState>
                });
                fx = Effects::none()
                    .reads([rp_id(a), rp_id(b), buf_id(a, dst), buf_id(b, dst)])
                    .writes([buf_id(a, dst), buf_id(b, dst)]);
            } else {
                body = self.real.clone().map(|rc| {
                    Box::new(move |ctx: &DeviceState| {
                        // Stage every GPU's src shard to the host, one lock at
                        // a time (collective bodies run at rendezvous
                        // quiescence; concurrent pair reductions only ever
                        // share read access to these shards).
                        let views: Vec<Dense> = (0..p)
                            .map(|s| {
                                let g = ctx.gpu(s);
                                let v = read_buf(&g, src).as_slice()[..rows_body[s] * d].to_vec();
                                Dense::from_vec(rows_body[s], d, v)
                            })
                            .collect();
                        // Finalize both members by re-folding in the canonical
                        // 1D stage order — bit-identical to the 1D pipeline.
                        for &t in &[a, b] {
                            let n_t = rows_body[t];
                            let gs = &mut *ctx.gpu(t);
                            gs.note_write(buf_id(t, dst));
                            let mut out = match dst {
                                Buf::Hw => std::mem::take(&mut gs.hw),
                                Buf::Ahw(l) => std::mem::take(&mut gs.ahw[l]),
                                Buf::X => unreachable!("X is never an SpMM destination"),
                            };
                            out.resize(n_t, d);
                            for (s, view) in views.iter().enumerate() {
                                let tile = match dir {
                                    Dir::Fwd => &rc.fwd_tiles[t * p + s],
                                    Dir::Bwd => &rc.bwd_tiles[t * p + s],
                                };
                                let accumulate =
                                    if s == 0 { Accumulate::Overwrite } else { Accumulate::Add };
                                spmm(tile, view, &mut out, accumulate);
                            }
                            match dst {
                                Buf::Hw => gs.hw = out,
                                Buf::Ahw(l) => gs.ahw[l] = out,
                                Buf::X => unreachable!(),
                            }
                        }
                    }) as Body<DeviceState>
                });
                fx = Effects::none()
                    .reads((0..p).map(|s| buf_id(s, src)))
                    .reads([rp_id(a), rp_id(b)])
                    .writes([buf_id(a, dst), buf_id(b, dst)]);
            }
            let op = self.sched.collective_fx(
                &lanes,
                bytes,
                bw,
                self.mk_desc(Category::Comm, "reduce-AH"),
                &waits,
                fx,
                body,
            );
            reduces.push(op);
            out_ops[a] = Some(op);
            out_ops[b] = Some(op);
        }
        self.pending_sync = reduces;
        self.sync_taken = vec![false; p];
        out_ops.into_iter().map(|o| o.expect("every GPU belongs to one pair")).collect()
    }

    /// Local GeMM `dst = src · W(l)` on every GPU (paper eq. 5).
    fn local_gemm_xw(&mut self, l: usize, src: Buf, dst: Buf, extra_waits: &[OpId]) -> Vec<OpId> {
        let d_in = self.cfg.d_in(l);
        let d_out = self.cfg.d_out(l);
        let mut ops = Vec::with_capacity(self.p());
        for g in 0..self.p() {
            let n_g = self.problem.rows_of(g);
            let work = self.opts.cost.gemm(self.gpu_spec(g), n_g as u64, d_in as u64, d_out as u64);
            // The GeMM on GPU `g` only reads `g`'s own tile, so only `g`'s
            // producer is a real dependency — the analyzer verifies this.
            let mut waits: Vec<OpId> = extra_waits.get(g).copied().into_iter().collect();
            if src != Buf::Hw {
                if let Some(prod) = self.producers[g] {
                    waits.push(prod);
                }
            }
            waits.extend(self.take_sync(g));
            let body = self.real.as_ref().map(|_| {
                Box::new(move |ctx: &DeviceState| {
                    let gs = &mut *ctx.gpu(g);
                    let mut out = match dst {
                        Buf::Hw => std::mem::take(&mut gs.hw),
                        Buf::Ahw(dl) => std::mem::take(&mut gs.ahw[dl]),
                        Buf::X => unreachable!("X is never a GeMM destination"),
                    };
                    out.resize(n_g, d_out);
                    gemm(read_buf(gs, src), gs.w_ref(l), &mut out, Accumulate::Overwrite);
                    match dst {
                        Buf::Hw => gs.hw = out,
                        Buf::Ahw(dl) => gs.ahw[dl] = out,
                        Buf::X => unreachable!(),
                    }
                }) as Body<DeviceState>
            });
            // On fused schedules W(l) was last written by the previous
            // epoch's Adam step — the intended age-1 epoch carry.
            let fx = self.declare_epoch_carry(
                Effects::none().reads([buf_id(g, src), w_id(g, l)]).writes([buf_id(g, dst)]),
                w_id(g, l),
            );
            let op = self.sched.launch_fx(
                g,
                0,
                work,
                self.mk_desc(Category::GeMM, "gemm-HW"),
                &waits,
                fx,
                body,
            );
            ops.push(op);
        }
        ops
    }

    /// In-place ReLU over `AHW(l)` (paper eq. 7).
    fn relu_forward(&mut self, l: usize) -> Vec<OpId> {
        let d_out = self.cfg.d_out(l);
        let mut ops = Vec::with_capacity(self.p());
        for g in 0..self.p() {
            let n_g = self.problem.rows_of(g);
            let work = self.opts.cost.elementwise((n_g * d_out) as u64, 2.0);
            let body = self.real.as_ref().map(|_| {
                Box::new(move |ctx: &DeviceState| {
                    let mut gs = ctx.gpu(g);
                    // In-place RMW: an all-nonnegative input leaves the
                    // bytes unchanged, so both sides are noted explicitly.
                    gs.note_read(buf_id(g, Buf::Ahw(l)));
                    gs.note_write(buf_id(g, Buf::Ahw(l)));
                    relu_inplace(gs.ahw[l].as_mut_slice());
                }) as Body<DeviceState>
            });
            let waits = self.take_sync(g);
            ops.push(self.sched.launch_fx(
                g,
                0,
                work,
                self.mk_desc(Category::Activation, "relu"),
                &waits,
                Effects::none().rw(buf_id(g, Buf::Ahw(l))),
                body,
            ));
        }
        ops
    }

    /// ReLU backward (paper eq. 8): merge the incoming gradient in
    /// `AHW(l+1)` over the saved activation in `AHW(l)`.
    fn relu_backward_layer(&mut self, l: usize) -> Vec<OpId> {
        let d = self.cfg.d_out(l);
        let mut ops = Vec::with_capacity(self.p());
        for g in 0..self.p() {
            let n_g = self.problem.rows_of(g);
            let work = self.opts.cost.elementwise((n_g * d) as u64, 3.0);
            let body = self.real.as_ref().map(|_| {
                Box::new(move |ctx: &DeviceState| {
                    let gs = &mut *ctx.gpu(g);
                    let (grad, act) = gs.ahw_pair_mut(l + 1, l);
                    mggcn_dense::relu_backward_merge(grad.as_slice(), act.as_mut_slice());
                }) as Body<DeviceState>
            });
            let waits = self.take_sync(g);
            ops.push(self.sched.launch_fx(
                g,
                0,
                work,
                self.mk_desc(Category::Activation, "relu-bwd"),
                &waits,
                Effects::none().reads([buf_id(g, Buf::Ahw(l + 1))]).rw(buf_id(g, Buf::Ahw(l))),
                body,
            ));
        }
        ops
    }

    /// Weight gradient `W_G(l) = Xᵀ · HW_G` (paper eq. 10).
    fn weight_grad(&mut self, l: usize, x_buf: Buf, hwg_buf: Buf) -> Vec<OpId> {
        let d_in = self.cfg.d_in(l);
        let d_out = self.cfg.d_out(l);
        let mut ops = Vec::with_capacity(self.p());
        for g in 0..self.p() {
            let n_g = self.problem.rows_of(g);
            let work = self.opts.cost.gemm(self.gpu_spec(g), d_in as u64, n_g as u64, d_out as u64);
            let body = self.real.as_ref().map(|_| {
                Box::new(move |ctx: &DeviceState| {
                    let gs = &mut *ctx.gpu(g);
                    gs.note_write(wg_id(g, l));
                    let mut out = std::mem::take(&mut gs.wgrad[l]);
                    out.resize(d_in, d_out);
                    gemm_at_b(
                        read_buf(gs, x_buf),
                        read_buf(gs, hwg_buf),
                        &mut out,
                        Accumulate::Overwrite,
                    );
                    gs.wgrad[l] = out;
                }) as Body<DeviceState>
            });
            let waits = self.take_sync(g);
            ops.push(self.sched.launch_fx(
                g,
                0,
                work,
                self.mk_desc(Category::GeMM, "gemm-WG"),
                &waits,
                Effects::none().reads([buf_id(g, x_buf), buf_id(g, hwg_buf)]).writes([wg_id(g, l)]),
                body,
            ));
        }
        ops
    }

    /// All-reduce the layer's weight gradients (ring volume `2(P−1)/P`).
    fn all_reduce_wgrad(&mut self, l: usize, waits: &[OpId]) -> OpId {
        let group = self.opts.gpu_ids();
        let comm_stream = self.opts.comm_stream();
        let lanes: Vec<(usize, usize)> = group.iter().map(|&g| (g, comm_stream)).collect();
        let param_bytes = (self.cfg.d_in(l) * self.cfg.d_out(l) * 4) as f64;
        let p = self.p() as f64;
        let bytes = 2.0 * param_bytes * (p - 1.0) / p;
        let bw = self.opts.machine.allreduce_bw(&group);
        let body = self.real.as_ref().map(|_| {
            Box::new(move |ctx: &DeviceState| ctx.all_reduce_wgrad(l)) as Body<DeviceState>
        });
        let mut fx = Effects::none();
        for &g in &group {
            fx = fx.rw(wg_id(g, l));
        }
        self.sched.collective_fx(
            &lanes,
            bytes,
            bw,
            self.mk_desc(Category::Comm, "allreduce-WG"),
            waits,
            fx,
            body,
        )
    }

    /// Input gradient `H_G = HW_G · Wᵀ` (paper eq. 11) into `AHW(l)`.
    fn input_grad(&mut self, l: usize, d_in: usize) -> Vec<OpId> {
        let d_out = self.cfg.d_out(l);
        let mut ops = Vec::with_capacity(self.p());
        for g in 0..self.p() {
            let n_g = self.problem.rows_of(g);
            let work = self.opts.cost.gemm(self.gpu_spec(g), n_g as u64, d_out as u64, d_in as u64);
            let body = self.real.as_ref().map(|_| {
                Box::new(move |ctx: &DeviceState| {
                    let gs = &mut *ctx.gpu(g);
                    let mut out = std::mem::take(&mut gs.ahw[l]);
                    out.resize(n_g, d_in);
                    gemm_a_bt(read_buf(gs, Buf::Hw), gs.w_ref(l), &mut out, Accumulate::Overwrite);
                    gs.ahw[l] = out;
                }) as Body<DeviceState>
            });
            let waits = self.take_sync(g);
            // W(l) here still carries the previous epoch's Adam write on
            // fused schedules (this epoch's Adam for layer l runs after).
            let fx = self.declare_epoch_carry(
                Effects::none()
                    .reads([buf_id(g, Buf::Hw), w_id(g, l)])
                    .writes([buf_id(g, Buf::Ahw(l))]),
                w_id(g, l),
            );
            ops.push(self.sched.launch_fx(
                g,
                0,
                work,
                self.mk_desc(Category::GeMM, "gemm-HG"),
                &waits,
                fx,
                body,
            ));
        }
        ops
    }

    /// Adam update of `W(l)` on every GPU (identical updates keep the
    /// replicas in lockstep).
    fn adam(&mut self, l: usize, reduce_op: OpId) {
        let lr = self.cfg.lr * self.cfg.lr_schedule.factor(self.t as usize - 1);
        let params = AdamParams { lr, ..AdamParams::default() };
        let t = self.t;
        for g in 0..self.p() {
            let count = (self.cfg.d_in(l) * self.cfg.d_out(l)) as u64;
            let work = self.opts.cost.adam(count);
            let body = self.real.as_ref().map(|_| {
                Box::new(move |ctx: &DeviceState| {
                    let gs = &mut *ctx.gpu(g);
                    gs.note_read(wg_id(g, l));
                    gs.note_read(adam_id(g, l));
                    gs.note_write(adam_id(g, l));
                    gs.note_write(w_id(g, l));
                    let grad = std::mem::take(&mut gs.wgrad[l]);
                    adam_step(
                        &params,
                        t,
                        gs.weights[l].as_mut_slice(),
                        grad.as_slice(),
                        gs.adam_m[l].as_mut_slice(),
                        gs.adam_v[l].as_mut_slice(),
                    );
                    gs.wgrad[l] = grad;
                }) as Body<DeviceState>
            });
            let mut waits = self.take_sync(g);
            waits.push(reduce_op);
            // The Adam moments read here were last written by the previous
            // epoch's Adam step — the optimizer's own age-1 epoch carry.
            let fx = self.declare_epoch_carry(
                Effects::none().reads([wg_id(g, l)]).rw(adam_id(g, l)).writes([w_id(g, l)]),
                adam_id(g, l),
            );
            self.sched.launch_fx(
                g,
                0,
                work,
                self.mk_desc(Category::Adam, "adam"),
                &waits,
                fx,
                body,
            );
        }
    }
}
