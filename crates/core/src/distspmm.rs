//! Reference data-plane implementations of the distributed SpMM
//! algorithms (§4.1 and §5.1).
//!
//! The production path schedules these algorithms on the engine
//! ([`crate::trainer`]); the functions here run the same shard-level
//! arithmetic eagerly over explicit per-GPU shards. They serve two
//! purposes: executable documentation of exactly what each strategy
//! computes and communicates, and an oracle the scheduled version is
//! tested against.
//!
//! * [`spmm_1d`] — the paper's choice: symmetric `P × P` tiling, `P`
//!   broadcast stages, every GPU accumulates its tile row. Communication:
//!   each stage broadcasts one `n/P × d` shard to all `P` GPUs.
//! * [`spmm_15d`] — the CAGNET replication-2 variant the paper analyzes
//!   and rejects (§5.1): `P/2`-way tiling, two GPU groups each covering
//!   half the stages against a full feature replica, followed by a
//!   pairwise cross-group reduction. Communication per group is halved,
//!   memory is doubled.

use mggcn_dense::{Accumulate, Dense};
use mggcn_sparse::{spmm, Csr, TileGrid};

/// The per-GPU shards a distributed SpMM produces: entry `i` is the result
/// rows owned by GPU `i` (1D) or by pair `i` (1.5D).
pub type ResultShards = Vec<Dense>;

/// 1D staged SpMM: computes `C = A · H` over `p` virtual GPUs and returns
/// the `p` result shards. `H` is given whole for convenience; each stage
/// uses only the shard a real run would broadcast.
pub fn spmm_1d(a: &Csr, h: &Dense, p: usize) -> ResultShards {
    assert_eq!(a.rows(), a.cols(), "square adjacency expected");
    assert_eq!(a.cols(), h.rows(), "inner dimension mismatch");
    assert!(p >= 1, "need at least one GPU");
    let grid = TileGrid::symmetric_uniform(a, p);
    let part = grid.row_partition().clone();
    let d = h.cols();
    let mut results: Vec<Dense> = (0..p).map(|i| Dense::zeros(part.len(i), d)).collect();
    for s in 0..p {
        // Stage s: GPU s broadcasts its H shard…
        let h_s = h.row_block(part.start(s), part.len(s));
        // …and every GPU j accumulates its (j, s) tile against it.
        for (j, out) in results.iter_mut().enumerate() {
            let acc = if s == 0 { Accumulate::Overwrite } else { Accumulate::Add };
            spmm(&grid.tile(j, s).csr, &h_s, out, acc);
        }
    }
    results
}

/// 1.5D staged SpMM with replication factor 2: `p` virtual GPUs as two
/// groups of `p/2`, each holding a full `H` replica partitioned `p/2`
/// ways. Group `g` covers the stages `s` with `s mod 2 == g`; the partial
/// results of paired GPUs are then summed (the cross-group reduction of
/// §5.1). Returns the `p/2` reduced result shards.
pub fn spmm_15d(a: &Csr, h: &Dense, p: usize) -> ResultShards {
    assert_eq!(a.rows(), a.cols(), "square adjacency expected");
    assert_eq!(a.cols(), h.rows(), "inner dimension mismatch");
    assert!(p >= 2 && p.is_multiple_of(2), "1.5D needs an even GPU count ≥ 2");
    let half = p / 2;
    let grid = TileGrid::symmetric_uniform(a, half);
    let part = grid.row_partition().clone();
    let d = h.cols();
    // partials[g][i]: group g's partial for result part i.
    let mut partials: [Vec<Dense>; 2] = [
        (0..half).map(|i| Dense::zeros(part.len(i), d)).collect(),
        (0..half).map(|i| Dense::zeros(part.len(i), d)).collect(),
    ];
    for s in 0..half {
        let g = s % 2; // owning group: stages interleave across groups
        let h_s = h.row_block(part.start(s), part.len(s));
        for (i, out) in partials[g].iter_mut().enumerate() {
            spmm(&grid.tile(i, s).csr, &h_s, out, Accumulate::Add);
        }
    }
    // Cross-group reduction: pair (i, i + half) sums its partials.
    let [group0, group1] = partials;
    group0
        .into_iter()
        .zip(group1)
        .map(|(mut a_part, b_part)| {
            mggcn_dense::add_assign(b_part.as_slice(), a_part.as_mut_slice());
            a_part
        })
        .collect()
}

/// Stitch result shards back into one matrix (test/inspection helper).
pub fn concat_shards(shards: &[Dense]) -> Dense {
    let rows: usize = shards.iter().map(Dense::rows).sum();
    let cols = shards.first().map(Dense::cols).unwrap_or(0);
    let mut out = Dense::zeros(rows, cols);
    let mut at = 0;
    for s in shards {
        for r in 0..s.rows() {
            out.row_mut(at + r).copy_from_slice(s.row(r));
        }
        at += s.rows();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_sparse::Coo;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_square(n: usize, density: f64, seed: u64) -> Csr {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut coo = Coo::new(n, n);
        for r in 0..n as u32 {
            for c in 0..n as u32 {
                if rng.gen_bool(density) {
                    coo.push(r, c, rng.gen_range(-1.0..1.0));
                }
            }
        }
        coo.to_csr()
    }

    fn dense_oracle(a: &Csr, h: &Dense) -> Dense {
        let mut out = Dense::zeros(a.rows(), h.cols());
        spmm(a, h, &mut out, Accumulate::Overwrite);
        out
    }

    #[test]
    fn spmm_1d_matches_oracle_for_any_gpu_count() {
        let a = random_square(33, 0.15, 1);
        let h = Dense::from_fn(33, 5, |r, c| ((r * 5 + c) as f32).sin());
        let oracle = dense_oracle(&a, &h);
        for p in [1usize, 2, 3, 4, 7, 8] {
            let shards = spmm_1d(&a, &h, p);
            assert_eq!(shards.len(), p);
            let got = concat_shards(&shards);
            assert!(got.max_abs_diff(&oracle) < 1e-4, "p = {p}");
        }
    }

    #[test]
    fn spmm_15d_matches_oracle_for_even_gpu_counts() {
        let a = random_square(30, 0.2, 2);
        let h = Dense::from_fn(30, 4, |r, c| ((r + 2 * c) as f32).cos());
        let oracle = dense_oracle(&a, &h);
        for p in [2usize, 4, 6, 8] {
            let shards = spmm_15d(&a, &h, p);
            assert_eq!(shards.len(), p / 2);
            let got = concat_shards(&shards);
            assert!(got.max_abs_diff(&oracle) < 1e-4, "p = {p}");
        }
    }

    #[test]
    fn both_strategies_agree_exactly_in_shape() {
        // 1D over P/2 "fat" GPUs covers the same tile space as 1.5D over P;
        // both must agree with each other to fp tolerance.
        let a = random_square(24, 0.25, 3);
        let h = Dense::from_fn(24, 6, |r, c| (r as f32 - c as f32) * 0.1);
        let one_d = concat_shards(&spmm_1d(&a, &h, 4));
        let one_half_d = concat_shards(&spmm_15d(&a, &h, 8));
        assert!(one_d.max_abs_diff(&one_half_d) < 1e-4);
    }

    #[test]
    fn empty_matrix_yields_zero_shards() {
        let a = Csr::empty(12, 12);
        let h = Dense::from_fn(12, 3, |_, _| 1.0);
        for shard in spmm_1d(&a, &h, 3) {
            assert!(shard.as_slice().iter().all(|&x| x == 0.0));
        }
        for shard in spmm_15d(&a, &h, 4) {
            assert!(shard.as_slice().iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "even GPU count")]
    fn spmm_15d_rejects_odd_gpu_counts() {
        let a = random_square(10, 0.2, 4);
        let h = Dense::zeros(10, 2);
        let _ = spmm_15d(&a, &h, 3);
    }

    #[test]
    fn concat_shards_roundtrips_row_blocks() {
        let m = Dense::from_fn(9, 2, |r, c| (r * 2 + c) as f32);
        let shards = vec![m.row_block(0, 4), m.row_block(4, 3), m.row_block(7, 2)];
        assert_eq!(concat_shards(&shards), m);
    }
}
