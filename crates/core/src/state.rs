//! Per-GPU device state implementing the §4.2 shared-buffer scheme.
//!
//! Each GPU holds exactly the buffers of paper Fig 1: one `AHW` result
//! buffer per layer plus the three shared buffers `HW` (GeMM↔SpMM
//! temporary), `BC1` and `BC2` (double-buffered broadcast targets) —
//! `L + 3` large buffers total — along with the replicated weights and
//! their Adam state. The shared buffers are *re-viewed* (`Dense::resize`)
//! at each use, never re-allocated, which is what keeps the footprint at
//! `L + 3`.

use crate::config::GcnConfig;
use crate::problem::Problem;
use mggcn_dense::{init, Dense};
use std::sync::{Mutex, MutexGuard};

/// Which broadcast buffer a stage writes/reads (double buffering, §4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BcSlot {
    Bc1,
    Bc2,
}

impl BcSlot {
    /// Stage `s` uses `BC1` when even, `BC2` when odd.
    pub fn for_stage(s: usize) -> Self {
        if s.is_multiple_of(2) {
            BcSlot::Bc1
        } else {
            BcSlot::Bc2
        }
    }
}

/// One virtual GPU's memory.
pub struct GpuState {
    /// Input feature shard `H⁰_i` (read-only during training).
    pub x: Dense,
    /// Per-layer result buffers (`AHW` in the paper), shapes `n_i × d(l+1)`.
    pub ahw: Vec<Dense>,
    /// Shared GeMM↔SpMM temporary, re-viewed per layer.
    pub hw: Dense,
    /// Broadcast buffers (double-buffered).
    pub bc1: Dense,
    pub bc2: Dense,
    /// 1.5D replicated-partial buffer: accumulates the SpMM result for the
    /// *mate* GPU's partition between the intra-group broadcasts and the
    /// cross-group reduction (§5.1's 2× memory replication). Allocated
    /// 0×0 under 1D — zero capacity, so the L+3 accounting is unchanged —
    /// and grown lazily by the first 1.5D SpMM body.
    pub rp: Dense,
    /// Bounded-staleness snapshot buffers (`SF.l`, DESIGN §15): a copy of
    /// layer `l`'s forward broadcast source, taken at the last snapshot
    /// epoch, that later epochs' remote broadcasts read instead of the live
    /// buffer. Empty (zero capacity) when `staleness == 0`, so the `L + 3`
    /// accounting is unchanged; grown lazily by the first snapshot body.
    pub sf: Vec<Dense>,
    /// Replicated weights, one per layer.
    pub weights: Vec<Dense>,
    /// Weight gradients.
    pub wgrad: Vec<Dense>,
    /// Adam first/second moments.
    pub adam_m: Vec<Dense>,
    pub adam_v: Vec<Dense>,
    /// Local labels and masks.
    pub labels: Vec<u32>,
    pub train_mask: Vec<bool>,
    pub test_mask: Vec<bool>,
    /// Scratch: local loss sum and correct-prediction counters, filled by
    /// the loss body each epoch.
    pub loss_sum: f64,
    pub train_correct: usize,
    pub train_total: usize,
    pub test_correct: usize,
    pub test_total: usize,
    /// Per-epoch statistics log for fused multi-epoch (staleness)
    /// schedules: the loss body pushes `(loss_sum, train_correct,
    /// train_total, test_correct, test_total)` once per epoch and zeroes
    /// the scratch counters, so a single schedule run yields one entry per
    /// epoch. Empty in classic one-epoch mode.
    pub epoch_stats: Vec<EpochStats>,
}

/// One epoch's accumulated counters: `(loss_sum, train_correct,
/// train_total, test_correct, test_total)`.
pub type EpochStats = (f64, usize, usize, usize, usize);

impl GpuState {
    pub fn bc(&mut self, slot: BcSlot) -> &mut Dense {
        match slot {
            BcSlot::Bc1 => &mut self.bc1,
            BcSlot::Bc2 => &mut self.bc2,
        }
    }

    pub fn bc_ref(&self, slot: BcSlot) -> &Dense {
        match slot {
            BcSlot::Bc1 => &self.bc1,
            BcSlot::Bc2 => &self.bc2,
        }
    }

    /// Borrow two distinct `AHW` buffers at once: `(read, write)` — the
    /// split the in-place ReLU backward needs (incoming gradient in
    /// `ahw[read]`, activation/output in `ahw[write]`).
    pub fn ahw_pair_mut(&mut self, read: usize, write: usize) -> (&Dense, &mut Dense) {
        assert_ne!(read, write, "ahw_pair_mut needs distinct buffers");
        if read < write {
            let (lo, hi) = self.ahw.split_at_mut(write);
            (&lo[read], &mut hi[0])
        } else {
            let (lo, hi) = self.ahw.split_at_mut(read);
            (&hi[0], &mut lo[write])
        }
    }
}

/// All device memory plus cross-GPU scratch. This is the `Ctx` the engine
/// threads through kernel bodies — on the threaded backend, through
/// worker threads, so each GPU's memory sits behind its own lock.
///
/// Lock discipline: a GPU-local kernel body locks only its own GPU (no
/// ordering concern); collective bodies run at rendezvous quiescence
/// (every participant is blocked in the barrier) and lock GPUs in
/// ascending index order.
pub struct DeviceState {
    gpus: Vec<Mutex<GpuState>>,
    /// Adam step counter (shared; every GPU steps in lockstep).
    pub adam_t: u64,
}

impl DeviceState {
    /// Allocate real buffers for a materialized problem.
    pub fn for_problem(problem: &Problem, cfg: &GcnConfig) -> Self {
        let real = problem.real.as_ref().expect("DeviceState needs a materialized problem");
        let layers = cfg.layers();
        let max_d = cfg.max_dim();
        let max_rows = problem.max_rows();
        let gpus = (0..problem.parts)
            .map(|i| {
                let n_i = problem.rows_of(i);
                GpuState {
                    x: real.features[i].clone(),
                    // All big buffers are sized for the widest layer and
                    // re-viewed per use (paper: buffer sizes "on average
                    // n × d"); the backward pass stores a width-d(l) input
                    // gradient in a buffer that held a width-d(l+1) output.
                    ahw: (0..layers).map(|_| Dense::zeros(n_i, max_d)).collect(),
                    hw: Dense::zeros(n_i, max_d),
                    bc1: Dense::zeros(max_rows, max_d),
                    bc2: Dense::zeros(max_rows, max_d),
                    rp: Dense::zeros(0, 0),
                    sf: (0..layers).map(|_| Dense::zeros(0, 0)).collect(),
                    // All GPUs seed identically: replicated weights agree.
                    weights: (0..layers)
                        .map(|l| {
                            init::glorot_seeded(cfg.d_in(l), cfg.d_out(l), cfg.seed + l as u64)
                        })
                        .collect(),
                    wgrad: (0..layers).map(|l| Dense::zeros(cfg.d_in(l), cfg.d_out(l))).collect(),
                    adam_m: (0..layers).map(|l| Dense::zeros(cfg.d_in(l), cfg.d_out(l))).collect(),
                    adam_v: (0..layers).map(|l| Dense::zeros(cfg.d_in(l), cfg.d_out(l))).collect(),
                    labels: real.labels[i].clone(),
                    train_mask: real.train_mask[i].clone(),
                    test_mask: real.test_mask[i].clone(),
                    loss_sum: 0.0,
                    train_correct: 0,
                    train_total: 0,
                    test_correct: 0,
                    test_total: 0,
                    epoch_stats: Vec::new(),
                }
            })
            .map(Mutex::new)
            .collect();
        Self { gpus, adam_t: 0 }
    }

    /// Number of virtual GPUs.
    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    /// Lock GPU `i`'s memory. Recovers from poisoning: after a worker
    /// panic the executor reports an error and the trainer restores from
    /// a checkpoint, so the (possibly half-written) state stays readable.
    pub fn gpu(&self, i: usize) -> MutexGuard<'_, GpuState> {
        self.gpus[i].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// An empty state for timing-only runs (bodies are never attached).
    pub fn empty() -> Self {
        Self { gpus: Vec::new(), adam_t: 0 }
    }

    /// Broadcast `rows × cols` from `src`'s buffer selected by `read` into
    /// every GPU's `slot` broadcast buffer (including the root's own — NCCL
    /// roots read their send buffer through the collective too).
    pub fn broadcast_into_bc(
        &self,
        src: usize,
        read: impl Fn(&GpuState) -> &Dense,
        rows: usize,
        cols: usize,
        slot: BcSlot,
    ) {
        // Stage through a send copy to keep lock scopes simple (one GPU
        // locked at a time); this mirrors the real transfer anyway.
        let payload: Vec<f32> = read(&self.gpu(src)).as_slice()[..rows * cols].to_vec();
        for i in 0..self.gpus.len() {
            let mut g = self.gpu(i);
            let bc = g.bc(slot);
            bc.resize(rows, cols);
            bc.as_mut_slice().copy_from_slice(&payload);
        }
    }

    /// [`DeviceState::broadcast_into_bc`] restricted to `members` — the
    /// 1.5D intra-group broadcast. `src` must be a member; GPUs outside
    /// the group keep whatever their `slot` buffer held.
    pub fn broadcast_into_bc_group(
        &self,
        src: usize,
        read: impl Fn(&GpuState) -> &Dense,
        rows: usize,
        cols: usize,
        slot: BcSlot,
        members: &[usize],
    ) {
        debug_assert!(members.contains(&src), "broadcast root outside its group");
        let payload: Vec<f32> = read(&self.gpu(src)).as_slice()[..rows * cols].to_vec();
        for &i in members {
            let mut g = self.gpu(i);
            let bc = g.bc(slot);
            bc.resize(rows, cols);
            bc.as_mut_slice().copy_from_slice(&payload);
        }
    }

    /// All-reduce (sum) the layer-`l` weight gradients across GPUs, fixed
    /// order for bit reproducibility.
    pub fn all_reduce_wgrad(&self, l: usize) {
        // All participants are quiescent (collective rendezvous), so all
        // guards can be held at once; ascending order fixes the reduce
        // order for bit reproducibility.
        let mut guards: Vec<MutexGuard<'_, GpuState>> =
            (0..self.gpus.len()).map(|i| self.gpu(i)).collect();
        let len = guards[0].wgrad[l].len();
        let mut acc = vec![0.0f32; len];
        {
            let srcs: Vec<&[f32]> = guards.iter().map(|g| g.wgrad[l].as_slice()).collect();
            mggcn_comm::reduce_sum(&srcs, &mut acc);
        }
        for g in &mut guards {
            g.wgrad[l].as_mut_slice().copy_from_slice(&acc);
        }
    }

    /// Allocated bytes of GPU `i`'s big buffers (the `AHW` set plus `HW`,
    /// `BC1`, `BC2`, and under 1.5D the `RP` replica), by backing-store
    /// capacity — the quantity memplan's `MemoryPlan::big_buffers` budgets
    /// with `(L+3)·n_p·d·4` (1D; `RP` has zero capacity then) or
    /// `(L+4)·n_p·d·4` (1.5D). Weights/optimizer state are excluded, as in
    /// the plan's own split.
    pub fn big_buffer_bytes(&self, i: usize) -> u64 {
        let g = self.gpu(i);
        let ahw: usize = g.ahw.iter().map(Dense::capacity_bytes).sum();
        let sf: usize = g.sf.iter().map(Dense::capacity_bytes).sum();
        (ahw + sf
            + g.hw.capacity_bytes()
            + g.bc1.capacity_bytes()
            + g.bc2.capacity_bytes()
            + g.rp.capacity_bytes()) as u64
    }

    /// Reset per-epoch scratch counters.
    pub fn reset_scratch(&self) {
        for i in 0..self.gpus.len() {
            let mut g = self.gpu(i);
            g.loss_sum = 0.0;
            g.train_correct = 0;
            g.train_total = 0;
            g.test_correct = 0;
            g.test_total = 0;
            g.epoch_stats.clear();
        }
    }

    /// Aggregate loss across GPUs.
    pub fn total_loss(&self) -> f64 {
        (0..self.gpus.len()).map(|i| self.gpu(i).loss_sum).sum()
    }

    /// Aggregate train/test accuracy across GPUs.
    pub fn accuracy(&self) -> (f64, f64) {
        let (tc, tt, ec, et) = (0..self.gpus.len()).fold((0, 0, 0, 0), |acc, i| {
            let g = self.gpu(i);
            (
                acc.0 + g.train_correct,
                acc.1 + g.train_total,
                acc.2 + g.test_correct,
                acc.3 + g.test_total,
            )
        });
        let train = if tt == 0 { 0.0 } else { tc as f64 / tt as f64 };
        let test = if et == 0 { 0.0 } else { ec as f64 / et as f64 };
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainOptions;
    use mggcn_graph::generators::sbm::{self, SbmConfig};

    fn setup(gpus: usize) -> (Problem, GcnConfig) {
        let g = sbm::generate(&SbmConfig::community_benchmark(90, 3), 2);
        let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
        let opts = TrainOptions::quick(gpus);
        (Problem::from_graph(&g, &cfg, &opts), cfg)
    }

    #[test]
    fn buffer_count_is_l_plus_3() {
        let (p, cfg) = setup(2);
        let st = DeviceState::for_problem(&p, &cfg);
        // L AHW buffers + HW + BC1 + BC2 per GPU.
        assert_eq!(st.gpu(0).ahw.len(), cfg.layers());
        // The shared buffers exist exactly once each; together: L + 3.
    }

    #[test]
    fn weights_replicated_identically() {
        let (p, cfg) = setup(3);
        let st = DeviceState::for_problem(&p, &cfg);
        for l in 0..cfg.layers() {
            assert_eq!(st.gpu(0).weights[l], st.gpu(1).weights[l]);
            assert_eq!(st.gpu(1).weights[l], st.gpu(2).weights[l]);
        }
    }

    #[test]
    fn broadcast_into_bc_copies_prefix() {
        let (p, cfg) = setup(2);
        let st = DeviceState::for_problem(&p, &cfg);
        let rows = 5;
        let cols = st.gpu(1).x.cols();
        st.broadcast_into_bc(1, |g| &g.x, rows, cols, BcSlot::Bc1);
        let expect = st.gpu(1).x.as_slice()[..rows * cols].to_vec();
        for i in 0..st.gpu_count() {
            let g = st.gpu(i);
            assert_eq!(g.bc1.as_slice(), &expect[..]);
            assert_eq!((g.bc1.rows(), g.bc1.cols()), (rows, cols));
        }
    }

    #[test]
    fn all_reduce_wgrad_sums_and_replicates() {
        let (p, cfg) = setup(2);
        let st = DeviceState::for_problem(&p, &cfg);
        st.gpu(0).wgrad[0].as_mut_slice()[0] = 1.5;
        st.gpu(1).wgrad[0].as_mut_slice()[0] = 2.5;
        st.all_reduce_wgrad(0);
        assert_eq!(st.gpu(0).wgrad[0].as_slice()[0], 4.0);
        assert_eq!(st.gpu(1).wgrad[0].as_slice()[0], 4.0);
    }

    #[test]
    fn bc_slot_parity() {
        assert_eq!(BcSlot::for_stage(0), BcSlot::Bc1);
        assert_eq!(BcSlot::for_stage(1), BcSlot::Bc2);
        assert_eq!(BcSlot::for_stage(4), BcSlot::Bc1);
    }
}
