//! Per-GPU device state implementing the §4.2 shared-buffer scheme.
//!
//! Each GPU holds exactly the buffers of paper Fig 1: one `AHW` result
//! buffer per layer plus the three shared buffers `HW` (GeMM↔SpMM
//! temporary), `BC1` and `BC2` (double-buffered broadcast targets) —
//! `L + 3` large buffers total — along with the replicated weights and
//! their Adam state. The shared buffers are *re-viewed* (`Dense::resize`)
//! at each use, never re-allocated, which is what keeps the footprint at
//! `L + 3`.

use crate::config::GcnConfig;
use crate::problem::Problem;
use mggcn_dense::{init, Dense};
use mggcn_gpusim::shadow::EffectRecorder;
use mggcn_gpusim::BufId;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex, MutexGuard};

/// Which broadcast buffer a stage writes/reads (double buffering, §4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BcSlot {
    Bc1,
    Bc2,
}

impl BcSlot {
    /// Stage `s` uses `BC1` when even, `BC2` when odd.
    pub fn for_stage(s: usize) -> Self {
        if s.is_multiple_of(2) {
            BcSlot::Bc1
        } else {
            BcSlot::Bc2
        }
    }

    /// The `BufId` family name of this slot (matches the declared effects).
    pub fn buf_name(self) -> &'static str {
        match self {
            BcSlot::Bc1 => "BC1",
            BcSlot::Bc2 => "BC2",
        }
    }
}

/// One virtual GPU's memory.
pub struct GpuState {
    /// Input feature shard `H⁰_i` (read-only during training).
    pub x: Dense,
    /// Per-layer result buffers (`AHW` in the paper), shapes `n_i × d(l+1)`.
    pub ahw: Vec<Dense>,
    /// Shared GeMM↔SpMM temporary, re-viewed per layer.
    pub hw: Dense,
    /// Broadcast buffers (double-buffered).
    pub bc1: Dense,
    pub bc2: Dense,
    /// 1.5D replicated-partial buffer: accumulates the SpMM result for the
    /// *mate* GPU's partition between the intra-group broadcasts and the
    /// cross-group reduction (§5.1's 2× memory replication). Allocated
    /// 0×0 under 1D — zero capacity, so the L+3 accounting is unchanged —
    /// and grown lazily by the first 1.5D SpMM body.
    pub rp: Dense,
    /// Bounded-staleness snapshot buffers (`SF.l`, DESIGN §15): a copy of
    /// layer `l`'s forward broadcast source, taken at the last snapshot
    /// epoch, that later epochs' remote broadcasts read instead of the live
    /// buffer. Empty (zero capacity) when `staleness == 0`, so the `L + 3`
    /// accounting is unchanged; grown lazily by the first snapshot body.
    pub sf: Vec<Dense>,
    /// Replicated weights, one per layer.
    pub weights: Vec<Dense>,
    /// Weight gradients.
    pub wgrad: Vec<Dense>,
    /// Adam first/second moments.
    pub adam_m: Vec<Dense>,
    pub adam_v: Vec<Dense>,
    /// Local labels and masks.
    pub labels: Vec<u32>,
    pub train_mask: Vec<bool>,
    pub test_mask: Vec<bool>,
    /// Scratch: local loss sum and correct-prediction counters, filled by
    /// the loss body each epoch.
    pub loss_sum: f64,
    pub train_correct: usize,
    pub train_total: usize,
    pub test_correct: usize,
    pub test_total: usize,
    /// Per-epoch statistics log for fused multi-epoch (staleness)
    /// schedules: the loss body pushes `(loss_sum, train_correct,
    /// train_total, test_correct, test_total)` once per epoch and zeroes
    /// the scratch counters, so a single schedule run yields one entry per
    /// epoch. Empty in classic one-epoch mode.
    pub epoch_stats: Vec<EpochStats>,
    /// This GPU's index within the [`DeviceState`] (buffer-access notes
    /// attribute to it).
    index: usize,
    /// Shadow effect recorder, attached only while the effect-soundness
    /// oracle observes a run ([`DeviceState::attach_recorder`]). `None` in
    /// ordinary training/serving, where every note is a no-op.
    recorder: Option<Arc<EffectRecorder>>,
}

/// One epoch's accumulated counters: `(loss_sum, train_correct,
/// train_total, test_correct, test_total)`.
pub type EpochStats = (f64, usize, usize, usize, usize);

impl GpuState {
    pub fn bc(&mut self, slot: BcSlot) -> &mut Dense {
        match slot {
            BcSlot::Bc1 => &mut self.bc1,
            BcSlot::Bc2 => &mut self.bc2,
        }
    }

    pub fn bc_ref(&self, slot: BcSlot) -> &Dense {
        self.note_read(BufId::new(self.index, slot.buf_name()));
        match slot {
            BcSlot::Bc1 => &self.bc1,
            BcSlot::Bc2 => &self.bc2,
        }
    }

    /// Borrow two distinct `AHW` buffers at once: `(read, write)` — the
    /// split the in-place ReLU backward needs (incoming gradient in
    /// `ahw[read]`, activation/output in `ahw[write]`). Both buffers are
    /// consumed by the caller, so both count as reads for the recorder.
    pub fn ahw_pair_mut(&mut self, read: usize, write: usize) -> (&Dense, &mut Dense) {
        assert_ne!(read, write, "ahw_pair_mut needs distinct buffers");
        self.note_read(BufId::indexed(self.index, "AHW", read));
        self.note_read(BufId::indexed(self.index, "AHW", write));
        if read < write {
            let (lo, hi) = self.ahw.split_at_mut(write);
            (&lo[read], &mut hi[0])
        } else {
            let (lo, hi) = self.ahw.split_at_mut(read);
            (&hi[0], &mut lo[write])
        }
    }

    /// This GPU's index within its [`DeviceState`].
    pub fn index(&self) -> usize {
        self.index
    }

    /// Tell the attached shadow recorder (if any) that the current op read
    /// `buf`. A no-op outside an observed run.
    pub fn note_read(&self, buf: BufId) {
        if let Some(rec) = &self.recorder {
            rec.read(buf);
        }
    }

    /// Tell the attached shadow recorder (if any) that the current op wrote
    /// `buf`. Used for writes the post-op fingerprint diff cannot see —
    /// collective copies that may land byte-identical payloads.
    pub fn note_write(&self, buf: BufId) {
        if let Some(rec) = &self.recorder {
            rec.write(buf);
        }
    }

    /// Layer-`l` weights, recorded as a read.
    pub fn w_ref(&self, l: usize) -> &Dense {
        self.note_read(BufId::indexed(self.index, "W", l));
        &self.weights[l]
    }

    /// Layer-`l` staleness snapshot, recorded as a read.
    pub fn sf_ref(&self, l: usize) -> &Dense {
        self.note_read(BufId::indexed(self.index, "SF", l));
        &self.sf[l]
    }

    /// The 1.5D replicated-partial buffer, recorded as a read.
    pub fn rp_ref(&self) -> &Dense {
        self.note_read(BufId::new(self.index, "RP"));
        &self.rp
    }
}

/// All device memory plus cross-GPU scratch. This is the `Ctx` the engine
/// threads through kernel bodies — on the threaded backend, through
/// worker threads, so each GPU's memory sits behind its own lock.
///
/// Lock discipline: a GPU-local kernel body locks only its own GPU (no
/// ordering concern); collective bodies run at rendezvous quiescence
/// (every participant is blocked in the barrier) and lock GPUs in
/// ascending index order.
pub struct DeviceState {
    gpus: Vec<Mutex<GpuState>>,
    /// Adam step counter (shared; every GPU steps in lockstep).
    pub adam_t: u64,
}

/// A locked GPU. Derefs to [`GpuState`]; in debug builds its construction
/// and drop maintain the per-thread held-lock stack behind the
/// ascending-order assertion in [`DeviceState::gpu`].
pub struct GpuGuard<'a> {
    inner: MutexGuard<'a, GpuState>,
    /// (owning `DeviceState` address, GPU index) — the lock-order
    /// discipline is per state instance: holding GPU 0 of one state
    /// while locking GPU 0 of an unrelated state is fine.
    key: (usize, usize),
}

impl Deref for GpuGuard<'_> {
    type Target = GpuState;
    fn deref(&self) -> &GpuState {
        &self.inner
    }
}

impl DerefMut for GpuGuard<'_> {
    fn deref_mut(&mut self) -> &mut GpuState {
        &mut self.inner
    }
}

impl Drop for GpuGuard<'_> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        lock_order::release(self.key);
        #[cfg(not(debug_assertions))]
        let _ = self.key;
    }
}

/// Debug-build bookkeeping for the ascending lock-order assertion: a
/// per-thread stack of currently held GPU indices.
#[cfg(debug_assertions)]
mod lock_order {
    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<(usize, usize)>> = const { RefCell::new(Vec::new()) };
    }

    /// `key` = (owning `DeviceState` address, GPU index). Only locks of
    /// the *same* state participate in the ascending-order requirement —
    /// distinct states have disjoint mutex sets, so no cross-state
    /// acquisition can deadlock.
    pub fn check_acquire(key: (usize, usize)) {
        HELD.with(|h| {
            let held = h.borrow();
            let same_state: Vec<usize> =
                held.iter().filter(|&&(s, _)| s == key.0).map(|&(_, j)| j).collect();
            assert!(
                same_state.iter().all(|&j| j < key.1),
                "GPU lock order violation: acquiring GPU {} while holding {:?} — \
                 collective bodies must lock GPUs in ascending index order",
                key.1,
                same_state
            );
        });
    }

    pub fn push(key: (usize, usize)) {
        HELD.with(|h| h.borrow_mut().push(key));
    }

    pub fn release(key: (usize, usize)) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(at) = held.iter().rposition(|&k| k == key) {
                held.remove(at);
            }
        });
    }
}

impl DeviceState {
    /// Allocate real buffers for a materialized problem.
    pub fn for_problem(problem: &Problem, cfg: &GcnConfig) -> Self {
        let real = problem.real.as_ref().expect("DeviceState needs a materialized problem");
        let layers = cfg.layers();
        let max_d = cfg.max_dim();
        let max_rows = problem.max_rows();
        let gpus = (0..problem.parts)
            .map(|i| {
                let n_i = problem.rows_of(i);
                GpuState {
                    x: real.features[i].clone(),
                    // All big buffers are sized for the widest layer and
                    // re-viewed per use (paper: buffer sizes "on average
                    // n × d"); the backward pass stores a width-d(l) input
                    // gradient in a buffer that held a width-d(l+1) output.
                    ahw: (0..layers).map(|_| Dense::zeros(n_i, max_d)).collect(),
                    hw: Dense::zeros(n_i, max_d),
                    bc1: Dense::zeros(max_rows, max_d),
                    bc2: Dense::zeros(max_rows, max_d),
                    rp: Dense::zeros(0, 0),
                    sf: (0..layers).map(|_| Dense::zeros(0, 0)).collect(),
                    // All GPUs seed identically: replicated weights agree.
                    weights: (0..layers)
                        .map(|l| {
                            init::glorot_seeded(cfg.d_in(l), cfg.d_out(l), cfg.seed + l as u64)
                        })
                        .collect(),
                    wgrad: (0..layers).map(|l| Dense::zeros(cfg.d_in(l), cfg.d_out(l))).collect(),
                    adam_m: (0..layers).map(|l| Dense::zeros(cfg.d_in(l), cfg.d_out(l))).collect(),
                    adam_v: (0..layers).map(|l| Dense::zeros(cfg.d_in(l), cfg.d_out(l))).collect(),
                    labels: real.labels[i].clone(),
                    train_mask: real.train_mask[i].clone(),
                    test_mask: real.test_mask[i].clone(),
                    loss_sum: 0.0,
                    train_correct: 0,
                    train_total: 0,
                    test_correct: 0,
                    test_total: 0,
                    epoch_stats: Vec::new(),
                    index: i,
                    recorder: None,
                }
            })
            .map(Mutex::new)
            .collect();
        Self { gpus, adam_t: 0 }
    }

    /// Number of virtual GPUs.
    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    /// Lock GPU `i`'s memory. Recovers from poisoning: after a worker
    /// panic the executor reports an error and the trainer restores from
    /// a checkpoint, so the (possibly half-written) state stays readable.
    ///
    /// Debug builds assert the documented lock discipline: a thread may
    /// acquire GPU `i` only while every GPU it already holds has a smaller
    /// index (collective bodies lock ascending; kernel bodies hold one).
    /// A descending acquisition is the deadlock-prone pattern the threaded
    /// backend must never reach, so it trips immediately rather than
    /// hanging intermittently under `mggcn-exec`.
    pub fn gpu(&self, i: usize) -> GpuGuard<'_> {
        let key = (self as *const Self as usize, i);
        #[cfg(debug_assertions)]
        lock_order::check_acquire(key);
        let inner = self.gpus[i].lock().unwrap_or_else(|e| e.into_inner());
        #[cfg(debug_assertions)]
        lock_order::push(key);
        GpuGuard { inner, key }
    }

    /// Attach a shadow effect recorder to every GPU: instrumented buffer
    /// accessors start reporting reads/writes to it. Observation-only —
    /// numerics are untouched.
    pub fn attach_recorder(&self, rec: &Arc<EffectRecorder>) {
        for i in 0..self.gpus.len() {
            self.gpu(i).recorder = Some(Arc::clone(rec));
        }
    }

    /// Detach the shadow recorder; accessor notes become no-ops again.
    pub fn detach_recorder(&self) {
        for i in 0..self.gpus.len() {
            self.gpu(i).recorder = None;
        }
    }

    /// An empty state for timing-only runs (bodies are never attached).
    pub fn empty() -> Self {
        Self { gpus: Vec::new(), adam_t: 0 }
    }

    /// Broadcast `rows × cols` from `src`'s buffer selected by `read` into
    /// every GPU's `slot` broadcast buffer (including the root's own — NCCL
    /// roots read their send buffer through the collective too).
    pub fn broadcast_into_bc(
        &self,
        src: usize,
        read: impl Fn(&GpuState) -> &Dense,
        rows: usize,
        cols: usize,
        slot: BcSlot,
    ) {
        // Stage through a send copy to keep lock scopes simple (one GPU
        // locked at a time); this mirrors the real transfer anyway.
        let payload: Vec<f32> = read(&self.gpu(src)).as_slice()[..rows * cols].to_vec();
        for i in 0..self.gpus.len() {
            let mut g = self.gpu(i);
            // The copy may land byte-identical data (re-broadcast of an
            // unchanged source), invisible to the oracle's fingerprint
            // diff — note the write explicitly.
            g.note_write(BufId::new(i, slot.buf_name()));
            let bc = g.bc(slot);
            bc.resize(rows, cols);
            bc.as_mut_slice().copy_from_slice(&payload);
        }
    }

    /// [`DeviceState::broadcast_into_bc`] restricted to `members` — the
    /// 1.5D intra-group broadcast. `src` must be a member; GPUs outside
    /// the group keep whatever their `slot` buffer held.
    pub fn broadcast_into_bc_group(
        &self,
        src: usize,
        read: impl Fn(&GpuState) -> &Dense,
        rows: usize,
        cols: usize,
        slot: BcSlot,
        members: &[usize],
    ) {
        debug_assert!(members.contains(&src), "broadcast root outside its group");
        let payload: Vec<f32> = read(&self.gpu(src)).as_slice()[..rows * cols].to_vec();
        for &i in members {
            let mut g = self.gpu(i);
            g.note_write(BufId::new(i, slot.buf_name()));
            let bc = g.bc(slot);
            bc.resize(rows, cols);
            bc.as_mut_slice().copy_from_slice(&payload);
        }
    }

    /// All-reduce (sum) the layer-`l` weight gradients across GPUs, fixed
    /// order for bit reproducibility.
    pub fn all_reduce_wgrad(&self, l: usize) {
        // All participants are quiescent (collective rendezvous), so all
        // guards can be held at once; ascending order fixes the reduce
        // order for bit reproducibility.
        let mut guards: Vec<GpuGuard<'_>> = (0..self.gpus.len()).map(|i| self.gpu(i)).collect();
        let len = guards[0].wgrad[l].len();
        let mut acc = vec![0.0f32; len];
        {
            let srcs: Vec<&[f32]> = guards.iter().map(|g| g.wgrad[l].as_slice()).collect();
            mggcn_comm::reduce_sum(&srcs, &mut acc);
        }
        for (i, g) in guards.iter_mut().enumerate() {
            // RMW: every participant's gradient is consumed and replaced;
            // at P=1 (or an all-zero sum) the bytes may not change, so the
            // fingerprint diff alone would miss the write.
            g.note_read(BufId::indexed(i, "WG", l));
            g.note_write(BufId::indexed(i, "WG", l));
            g.wgrad[l].as_mut_slice().copy_from_slice(&acc);
        }
    }

    /// Allocated bytes of GPU `i`'s big buffers (the `AHW` set plus `HW`,
    /// `BC1`, `BC2`, and under 1.5D the `RP` replica), by backing-store
    /// capacity — the quantity memplan's `MemoryPlan::big_buffers` budgets
    /// with `(L+3)·n_p·d·4` (1D; `RP` has zero capacity then) or
    /// `(L+4)·n_p·d·4` (1.5D). Weights/optimizer state are excluded, as in
    /// the plan's own split.
    pub fn big_buffer_bytes(&self, i: usize) -> u64 {
        let g = self.gpu(i);
        let ahw: usize = g.ahw.iter().map(Dense::capacity_bytes).sum();
        let sf: usize = g.sf.iter().map(Dense::capacity_bytes).sum();
        (ahw + sf
            + g.hw.capacity_bytes()
            + g.bc1.capacity_bytes()
            + g.bc2.capacity_bytes()
            + g.rp.capacity_bytes()) as u64
    }

    /// Reset per-epoch scratch counters.
    pub fn reset_scratch(&self) {
        for i in 0..self.gpus.len() {
            let mut g = self.gpu(i);
            g.loss_sum = 0.0;
            g.train_correct = 0;
            g.train_total = 0;
            g.test_correct = 0;
            g.test_total = 0;
            g.epoch_stats.clear();
        }
    }

    /// Aggregate loss across GPUs.
    pub fn total_loss(&self) -> f64 {
        (0..self.gpus.len()).map(|i| self.gpu(i).loss_sum).sum()
    }

    /// Aggregate train/test accuracy across GPUs.
    pub fn accuracy(&self) -> (f64, f64) {
        let (tc, tt, ec, et) = (0..self.gpus.len()).fold((0, 0, 0, 0), |acc, i| {
            let g = self.gpu(i);
            (
                acc.0 + g.train_correct,
                acc.1 + g.train_total,
                acc.2 + g.test_correct,
                acc.3 + g.test_total,
            )
        });
        let train = if tt == 0 { 0.0 } else { tc as f64 / tt as f64 };
        let test = if et == 0 { 0.0 } else { ec as f64 / et as f64 };
        (train, test)
    }

    /// FNV-1a digest over every GPU's weight bits (shapes included) — the
    /// model checker's notion of "final model state". Bit-identical
    /// weights across linearizations ⟺ equal digests.
    pub fn weights_digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for i in 0..self.gpus.len() {
            let g = self.gpu(i);
            for w in &g.weights {
                mix(&(w.rows() as u64).to_le_bytes());
                mix(&(w.cols() as u64).to_le_bytes());
                for v in w.as_slice() {
                    mix(&v.to_bits().to_le_bytes());
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainOptions;
    use mggcn_graph::generators::sbm::{self, SbmConfig};

    fn setup(gpus: usize) -> (Problem, GcnConfig) {
        let g = sbm::generate(&SbmConfig::community_benchmark(90, 3), 2);
        let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
        let opts = TrainOptions::quick(gpus);
        (Problem::from_graph(&g, &cfg, &opts), cfg)
    }

    #[test]
    fn buffer_count_is_l_plus_3() {
        let (p, cfg) = setup(2);
        let st = DeviceState::for_problem(&p, &cfg);
        // L AHW buffers + HW + BC1 + BC2 per GPU.
        assert_eq!(st.gpu(0).ahw.len(), cfg.layers());
        // The shared buffers exist exactly once each; together: L + 3.
    }

    #[test]
    fn weights_replicated_identically() {
        let (p, cfg) = setup(3);
        let st = DeviceState::for_problem(&p, &cfg);
        for l in 0..cfg.layers() {
            assert_eq!(st.gpu(0).weights[l], st.gpu(1).weights[l]);
            assert_eq!(st.gpu(1).weights[l], st.gpu(2).weights[l]);
        }
    }

    #[test]
    fn broadcast_into_bc_copies_prefix() {
        let (p, cfg) = setup(2);
        let st = DeviceState::for_problem(&p, &cfg);
        let rows = 5;
        let cols = st.gpu(1).x.cols();
        st.broadcast_into_bc(1, |g| &g.x, rows, cols, BcSlot::Bc1);
        let expect = st.gpu(1).x.as_slice()[..rows * cols].to_vec();
        for i in 0..st.gpu_count() {
            let g = st.gpu(i);
            assert_eq!(g.bc1.as_slice(), &expect[..]);
            assert_eq!((g.bc1.rows(), g.bc1.cols()), (rows, cols));
        }
    }

    #[test]
    fn all_reduce_wgrad_sums_and_replicates() {
        let (p, cfg) = setup(2);
        let st = DeviceState::for_problem(&p, &cfg);
        st.gpu(0).wgrad[0].as_mut_slice()[0] = 1.5;
        st.gpu(1).wgrad[0].as_mut_slice()[0] = 2.5;
        st.all_reduce_wgrad(0);
        assert_eq!(st.gpu(0).wgrad[0].as_slice()[0], 4.0);
        assert_eq!(st.gpu(1).wgrad[0].as_slice()[0], 4.0);
    }

    #[test]
    fn bc_slot_parity() {
        assert_eq!(BcSlot::for_stage(0), BcSlot::Bc1);
        assert_eq!(BcSlot::for_stage(1), BcSlot::Bc2);
        assert_eq!(BcSlot::for_stage(4), BcSlot::Bc1);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn descending_lock_acquisition_trips_the_debug_assertion() {
        let (p, cfg) = setup(2);
        let st = DeviceState::for_problem(&p, &cfg);
        // Ascending (and re-entrant-free) acquisition is fine...
        {
            let _a = st.gpu(0);
            let _b = st.gpu(1);
        }
        // ...but descending is the deadlock pattern and must assert. The
        // check fires before GPU 0's mutex is touched, so no lock is
        // poisoned by the unwind.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _hi = st.gpu(1);
            let _lo = st.gpu(0);
        }))
        .expect_err("descending acquisition must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("lock order violation"), "unexpected panic: {msg}");
        // The held-stack unwound cleanly: ordinary locking still works.
        let _ok = st.gpu(0);
        drop(_ok);
        // The discipline is per state instance: holding a GPU of one
        // state while locking the same (or a lower) index of an
        // unrelated state is not a deadlock pattern and must pass —
        // the differential harness compares two trainers exactly so.
        let other = DeviceState::for_problem(&p, &cfg);
        let _mine = st.gpu(1);
        let _theirs = other.gpu(0);
    }

    #[test]
    fn weights_digest_tracks_weight_bits() {
        let (p, cfg) = setup(2);
        let st = DeviceState::for_problem(&p, &cfg);
        let before = st.weights_digest();
        assert_eq!(before, DeviceState::for_problem(&p, &cfg).weights_digest());
        st.gpu(1).weights[0].as_mut_slice()[0] += 1.0;
        assert_ne!(before, st.weights_digest());
    }

    #[test]
    fn recorder_attaches_and_observes_collective_notes() {
        let (p, cfg) = setup(2);
        let st = DeviceState::for_problem(&p, &cfg);
        let rec = EffectRecorder::new(1);
        st.attach_recorder(&rec);
        rec.begin(0);
        st.all_reduce_wgrad(0);
        rec.end();
        st.detach_recorder();
        let log = rec.take_log();
        for g in 0..2 {
            assert!(log[0].writes.contains(&BufId::indexed(g, "WG", 0)));
            assert!(log[0].reads.contains(&BufId::indexed(g, "WG", 0)));
        }
        // Detached: notes no longer accumulate anywhere.
        st.all_reduce_wgrad(0);
    }
}
