//! Analytic per-GPU memory plan (§4.2; Fig 12; every OOM cell).
//!
//! MG-GCN's footprint per GPU for an `L`-layer model on `P` GPUs:
//!
//! * sparse tiles of `Âᵀ` and `Â` (tile row each): `2 · (m/P · 8 + n · 8/P)`;
//! * feature shard: `n/P · d(0) · 4`;
//! * the `L + 3` big buffers: `Σ_l n/P · d(l+1) · 4` for the `AHW`s plus
//!   `n/P · d_max · 4` (HW) and `2 · n_max/P · d_bmax · 4` (BC1/BC2);
//! * replicated weights + gradient + Adam moments: `4 · Σ d(l)·d(l+1) · 4`;
//! * labels/masks: `n/P · 6`.
//!
//! Baseline frameworks differ only in the buffer term: DGL allocates ~6
//! per-layer buffers (forward activations kept + backward temporaries,
//! §4.2: "4x or 6x in other deep learning frameworks"), CAGNET ~3.

use crate::config::GcnConfig;

/// Buffer policy of a framework, for the Fig 12 comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufferPolicy {
    /// MG-GCN: `L + 3` buffers shared across layers and passes.
    MgGcn,
    /// DGL-like: ~6 live buffers per layer.
    PerLayer6,
    /// CAGNET-like: ~3 live buffers per layer.
    PerLayer3,
    /// CAGNET 1D: ~3 live buffers per layer plus a full-size (`n × d_max`)
    /// gather buffer for the broadcast feature matrix on every GPU — the
    /// allocation that makes it OOM on Proteins at 8 V100s (§6.5).
    CagnetFullGather,
}

impl BufferPolicy {
    /// Framework-reserved device memory (CUDA context, allocator caches):
    /// small for the paper's bare-CUDA system, ~2 GiB for PyTorch stacks.
    pub fn reserved_bytes(&self) -> u64 {
        match self {
            BufferPolicy::MgGcn => 1 << 29,
            _ => 3 << 30,
        }
    }
}

/// Per-GPU byte plan.
#[derive(Clone, Copy, Debug)]
pub struct MemoryPlan {
    pub adjacency: u64,
    pub features: u64,
    pub big_buffers: u64,
    pub weights: u64,
    pub labels: u64,
}

impl MemoryPlan {
    /// Plan for dataset `(n, m)` on `gpus` GPUs with feature width taken
    /// from `cfg.dims[0]`.
    pub fn new(n: u64, m: u64, cfg: &GcnConfig, gpus: u64, policy: BufferPolicy) -> Self {
        let n_p = n.div_ceil(gpus);
        let adjacency = 2 * (m.div_ceil(gpus) * 8 + (n_p + 1) * 8 * gpus.min(8));
        let features = n_p * cfg.dims[0] as u64 * 4;
        let layer_out_bytes: u64 = (0..cfg.layers()).map(|l| n_p * cfg.d_out(l) as u64 * 4).sum();
        let max_d = cfg.max_dim() as u64;
        let big_buffers = match policy {
            // L AHW buffers + HW + BC1 + BC2, all sized for the widest layer.
            BufferPolicy::MgGcn => (cfg.layers() as u64 + 3) * n_p * max_d * 4,
            BufferPolicy::PerLayer6 => 6 * layer_out_bytes,
            BufferPolicy::PerLayer3 => 3 * layer_out_bytes,
            BufferPolicy::CagnetFullGather => 3 * layer_out_bytes + n * max_d * 4,
        };
        let weights = 4 * cfg.param_count() as u64 * 4;
        let labels = n_p * 6 + policy.reserved_bytes();
        Self { adjacency, features, big_buffers, weights, labels }
    }

    /// [`MemoryPlan::new`] for the 1.5D pipeline: one extra big buffer per
    /// GPU (the `RP` replicated partial, sized like the others at
    /// `n/P · d_max · 4`) — the marginal cost of §5.1's 2× replication in
    /// the shared-buffer scheme, taking `MgGcn` from `L+3` to `L+4`.
    pub fn new_15d(n: u64, m: u64, cfg: &GcnConfig, gpus: u64, policy: BufferPolicy) -> Self {
        let mut plan = Self::new(n, m, cfg, gpus, policy);
        let n_p = n.div_ceil(gpus);
        plan.big_buffers += n_p * cfg.max_dim() as u64 * 4;
        plan
    }

    /// Add the bounded-staleness snapshot buffers (DESIGN §15): `sf` extra
    /// big buffers per GPU (`SF.l`, one per non-constant forward broadcast
    /// source, sized like the others). The 2-layer spmm-first model
    /// snapshots exactly one source, taking the 1.5D plan from `L+4` to
    /// `L+5`. A no-op when `sf == 0`, so `staleness = 0` plans are
    /// byte-identical to before.
    pub fn with_staleness(mut self, n: u64, gpus: u64, cfg: &GcnConfig, sf: u64) -> Self {
        let n_p = n.div_ceil(gpus);
        self.big_buffers += sf * n_p * cfg.max_dim() as u64 * 4;
        self
    }

    pub fn total(&self) -> u64 {
        self.adjacency + self.features + self.big_buffers + self.weights + self.labels
    }

    /// Whether the plan fits in `capacity` bytes.
    pub fn fits(&self, capacity: u64) -> bool {
        self.total() <= capacity
    }
}

/// Largest layer count of a uniform-width model that fits `capacity` bytes
/// per GPU — the Fig 12 y-axis.
#[allow(clippy::too_many_arguments)] // mirrors the figure's free variables
pub fn max_layers(
    n: u64,
    m: u64,
    feat_dim: usize,
    hidden: usize,
    classes: usize,
    gpus: u64,
    policy: BufferPolicy,
    capacity: u64,
) -> usize {
    let mut lo = 1usize;
    let mut hi = 4096usize;
    let fits = |layers: usize| {
        let cfg = GcnConfig::new(feat_dim, &vec![hidden; layers.saturating_sub(1)], classes);
        MemoryPlan::new(n, m, &cfg, gpus, policy).fits(capacity)
    };
    if !fits(lo) {
        return 0;
    }
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    const REDDIT_N: u64 = 233_000;
    const REDDIT_M: u64 = 115_000_000;
    const GIB30: u64 = 30 * (1 << 30);

    #[test]
    fn mggcn_fits_more_layers_than_dgl_single_gpu() {
        // Fig 12a: at 30 GiB, DGL fits ~20 layers, MG-GCN ~50. Working
        // backwards from the paper's own numbers, DGL holds ~3 live
        // hidden-width buffers per layer (20 · 3 · 477 MB ≈ 28 GiB).
        let dgl = max_layers(REDDIT_N, REDDIT_M, 602, 512, 41, 1, BufferPolicy::PerLayer3, GIB30);
        let mg = max_layers(REDDIT_N, REDDIT_M, 602, 512, 41, 1, BufferPolicy::MgGcn, GIB30);
        assert!((15..=30).contains(&dgl), "DGL layers {dgl} (paper ~20)");
        assert!((40..=70).contains(&mg), "MG-GCN layers {mg} (paper ~50)");
        assert!(mg as f64 / dgl as f64 > 2.0);
    }

    #[test]
    fn mggcn_fits_more_layers_than_cagnet_eight_gpus() {
        // Fig 12b: at ~30 GiB on 8 GPUs, CAGNET ~150 layers, MG-GCN ~450.
        let cag =
            max_layers(REDDIT_N, REDDIT_M, 602, 512, 41, 8, BufferPolicy::CagnetFullGather, GIB30);
        let mg = max_layers(REDDIT_N, REDDIT_M, 602, 512, 41, 8, BufferPolicy::MgGcn, GIB30);
        assert!((100..=250).contains(&cag), "CAGNET layers {cag} (paper ~150)");
        assert!((350..=600).contains(&mg), "MG-GCN layers {mg} (paper ~450)");
    }

    #[test]
    fn memory_grows_linearly_in_layers() {
        let at = |layers: usize| {
            let cfg = GcnConfig::new(602, &vec![512; layers - 1], 41);
            MemoryPlan::new(REDDIT_N, REDDIT_M, &cfg, 1, BufferPolicy::MgGcn).total()
        };
        let d1 = at(20) - at(10);
        let d2 = at(30) - at(20);
        let rel = (d1 as f64 - d2 as f64).abs() / d1 as f64;
        assert!(rel < 0.01, "non-linear growth: {d1} vs {d2}");
    }

    #[test]
    fn more_gpus_less_memory_each() {
        let cfg = GcnConfig::model_a(602, 41);
        let p1 = MemoryPlan::new(REDDIT_N, REDDIT_M, &cfg, 1, BufferPolicy::MgGcn).total();
        let p8 = MemoryPlan::new(REDDIT_N, REDDIT_M, &cfg, 8, BufferPolicy::MgGcn).total();
        assert!(p8 < p1 / 4, "p1 {p1} p8 {p8}");
    }

    #[test]
    fn plan_15d_adds_exactly_one_big_buffer() {
        let cfg = GcnConfig::model_a(602, 41);
        let p1d = MemoryPlan::new(REDDIT_N, REDDIT_M, &cfg, 4, BufferPolicy::MgGcn);
        let p15 = MemoryPlan::new_15d(REDDIT_N, REDDIT_M, &cfg, 4, BufferPolicy::MgGcn);
        let n_p = REDDIT_N.div_ceil(4);
        let one_buffer = n_p * cfg.max_dim() as u64 * 4;
        assert_eq!(p15.big_buffers - p1d.big_buffers, one_buffer);
        // Every other component is untouched.
        assert_eq!(p15.adjacency, p1d.adjacency);
        assert_eq!(p15.features, p1d.features);
        assert_eq!(p15.weights, p1d.weights);
        assert_eq!(p15.labels, p1d.labels);
        // L+3 → L+4 in units of one buffer.
        let layers = cfg.layers() as u64;
        assert_eq!(p1d.big_buffers, (layers + 3) * one_buffer);
        assert_eq!(p15.big_buffers, (layers + 4) * one_buffer);
    }

    #[test]
    fn staleness_adds_sf_buffers_and_zero_is_identity() {
        let cfg = GcnConfig::model_a(602, 41);
        let base = MemoryPlan::new_15d(REDDIT_N, REDDIT_M, &cfg, 4, BufferPolicy::MgGcn);
        let n_p = REDDIT_N.div_ceil(4);
        let one_buffer = n_p * cfg.max_dim() as u64 * 4;
        let layers = cfg.layers() as u64;
        // k >= 1 with one snapshotted source: L+4 → L+5.
        let stale = base.with_staleness(REDDIT_N, 4, &cfg, 1);
        assert_eq!(stale.big_buffers, (layers + 5) * one_buffer);
        // sf = 0 (staleness off) is byte-identical.
        let off = base.with_staleness(REDDIT_N, 4, &cfg, 0);
        assert_eq!(off.big_buffers, base.big_buffers);
        assert_eq!(off.total(), base.total());
    }

    #[test]
    fn proteins_oom_pattern_matches_paper() {
        // Fig 10: MG-GCN runs out of memory on Proteins with 1–2 V100s but
        // fits with 4.
        let card = mggcn_graph::datasets::PROTEINS;
        let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
        let v100 = 32u64 << 30;
        let fits = |g: u64| {
            MemoryPlan::new(card.n as u64, card.m as u64, &cfg, g, BufferPolicy::MgGcn).fits(v100)
        };
        assert!(!fits(1), "1 GPU should OOM");
        assert!(!fits(2), "2 GPUs should OOM");
        assert!(fits(4), "4 GPUs should fit");
    }

    #[test]
    fn papers_needs_eight_a100s_with_model_d() {
        // Table 3: Papers fits only at 8 GPUs, and only with hidden 208.
        let card = mggcn_graph::datasets::PAPERS;
        let a100 = 80u64 << 30;
        let d = GcnConfig::model_d(card.feat_dim, card.classes);
        let fits_d8 =
            MemoryPlan::new(card.n as u64, card.m as u64, &d, 8, BufferPolicy::MgGcn).fits(a100);
        let fits_d4 =
            MemoryPlan::new(card.n as u64, card.m as u64, &d, 4, BufferPolicy::MgGcn).fits(a100);
        assert!(fits_d8, "model D on 8 GPUs should fit");
        assert!(!fits_d4, "model D on 4 GPUs should OOM");
        let c = GcnConfig::model_c(card.feat_dim, card.classes);
        let fits_c8 =
            MemoryPlan::new(card.n as u64, card.m as u64, &c, 8, BufferPolicy::MgGcn).fits(a100);
        assert!(!fits_c8, "hidden 256 should not fit (that is why the paper uses 208)");
    }
}
