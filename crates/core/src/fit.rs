//! High-level training driver: convergence runs with early stopping.
//!
//! The paper reports end-to-end convergence ("a test accuracy of 95.95% …
//! after 466 epochs … in only 1 minute", §6 Model). [`fit`] packages that
//! workflow: train until a target accuracy, an accuracy plateau (patience),
//! or an epoch cap, tracking the best weights seen and the simulated
//! time-to-accuracy.

use crate::checkpoint::Checkpoint;
use crate::metrics::EpochReport;
use crate::trainer::{TrainError, Trainer};

/// Stopping policy for [`fit`].
#[derive(Clone, Copy, Debug)]
pub struct FitOptions {
    /// Hard epoch cap.
    pub max_epochs: usize,
    /// Stop early once test accuracy reaches this level (1.0 disables).
    pub target_accuracy: f64,
    /// Stop when test accuracy has not improved for this many epochs.
    pub patience: usize,
    /// Minimum improvement that resets the patience counter.
    pub min_delta: f64,
}

impl Default for FitOptions {
    fn default() -> Self {
        Self { max_epochs: 500, target_accuracy: 1.0, patience: 50, min_delta: 1e-4 }
    }
}

/// Why training stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    TargetReached,
    Plateau,
    EpochCap,
}

/// The outcome of a [`fit`] run.
pub struct FitResult {
    /// Every epoch's report, in order.
    pub history: Vec<EpochReport>,
    /// Best test accuracy seen and the epoch it occurred.
    pub best_accuracy: f64,
    pub best_epoch: usize,
    /// Weights at the best epoch.
    pub best_weights: Checkpoint,
    /// Total simulated training time (sum of epoch times), seconds.
    pub sim_time: f64,
    pub stopped: StopReason,
}

impl FitResult {
    /// Simulated epochs-to-accuracy: first epoch whose test accuracy
    /// reached `level`, if any.
    pub fn epochs_to(&self, level: f64) -> Option<usize> {
        self.history.iter().position(|r| r.test_acc >= level)
    }
}

/// Train until the stopping policy triggers. The trainer is left at its
/// final state; restore `best_weights` for the best model.
pub fn fit(trainer: &mut Trainer, opts: &FitOptions) -> Result<FitResult, TrainError> {
    assert!(opts.max_epochs > 0, "need at least one epoch");
    let mut history = Vec::new();
    let mut best_accuracy = f64::NEG_INFINITY;
    let mut best_epoch = 0;
    let mut best_weights = Checkpoint::from_trainer(trainer);
    let mut since_best = 0usize;
    let mut sim_time = 0.0;
    let mut stopped = StopReason::EpochCap;
    for epoch in 0..opts.max_epochs {
        let report = trainer.train_epoch()?;
        sim_time += report.sim_seconds;
        let acc = report.test_acc;
        history.push(report);
        if acc > best_accuracy + opts.min_delta {
            best_accuracy = acc;
            best_epoch = epoch;
            best_weights = Checkpoint::from_trainer(trainer);
            since_best = 0;
        } else {
            since_best += 1;
        }
        if acc >= opts.target_accuracy {
            stopped = StopReason::TargetReached;
            break;
        }
        if since_best >= opts.patience {
            stopped = StopReason::Plateau;
            break;
        }
    }
    Ok(FitResult { history, best_accuracy, best_epoch, best_weights, sim_time, stopped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GcnConfig, TrainOptions};
    use crate::problem::Problem;
    use mggcn_graph::generators::sbm::{self, SbmConfig};

    fn trainer() -> Trainer {
        let g = sbm::generate(&SbmConfig::community_benchmark(300, 3), 8);
        let cfg = GcnConfig::new(g.features.cols(), &[16], g.classes);
        let opts = TrainOptions::quick(2);
        let problem = Problem::from_graph(&g, &cfg, &opts);
        Trainer::new(problem, cfg, opts).expect("fits")
    }

    #[test]
    fn reaches_target_and_stops_early() {
        let mut t = trainer();
        let opts = FitOptions { target_accuracy: 0.85, max_epochs: 200, ..Default::default() };
        let result = fit(&mut t, &opts).expect("fit");
        assert_eq!(result.stopped, StopReason::TargetReached);
        assert!(result.history.len() < 200, "stopped at {}", result.history.len());
        assert!(result.best_accuracy >= 0.85);
        assert!(result.sim_time > 0.0);
    }

    #[test]
    fn plateau_triggers_patience() {
        let mut t = trainer();
        // Impossible target + tiny patience: must stop on plateau quickly.
        let opts = FitOptions {
            target_accuracy: 2.0,
            patience: 3,
            min_delta: 1.0, // nothing ever counts as an improvement
            max_epochs: 100,
        };
        let result = fit(&mut t, &opts).expect("fit");
        assert_eq!(result.stopped, StopReason::Plateau);
        assert!(result.history.len() <= 5);
    }

    #[test]
    fn epoch_cap_respected() {
        let mut t = trainer();
        let opts = FitOptions {
            target_accuracy: 2.0,
            patience: 1000,
            max_epochs: 7,
            ..Default::default()
        };
        let result = fit(&mut t, &opts).expect("fit");
        assert_eq!(result.stopped, StopReason::EpochCap);
        assert_eq!(result.history.len(), 7);
    }

    #[test]
    fn best_weights_restore_best_accuracy() {
        let mut t = trainer();
        let opts = FitOptions { target_accuracy: 0.9, max_epochs: 60, ..Default::default() };
        let result = fit(&mut t, &opts).expect("fit");
        // Restoring and running one forward epoch shouldn't be far from
        // the recorded best (one extra Adam step happens, so allow slack).
        result.best_weights.restore_into(&mut t).unwrap();
        let after = t.train_epoch().expect("train");
        assert!(
            after.test_acc >= result.best_accuracy - 0.1,
            "{} vs best {}",
            after.test_acc,
            result.best_accuracy
        );
    }

    #[test]
    fn epochs_to_is_monotone() {
        let mut t = trainer();
        let opts = FitOptions { max_epochs: 40, ..Default::default() };
        let result = fit(&mut t, &opts).expect("fit");
        if let (Some(lo), Some(hi)) = (result.epochs_to(0.5), result.epochs_to(0.8)) {
            assert!(lo <= hi);
        }
    }
}
