//! Epoch-level reports.

use mggcn_gpusim::{Category, Timeline};
use std::collections::BTreeMap;

/// Measured wall-clock profile of one epoch, produced only by the
/// threaded backend (`Backend::Threaded`): real seconds next to the
/// simulated timeline in the same report.
#[derive(Clone, Debug)]
pub struct MeasuredEpoch {
    /// End-to-end wall-clock seconds (workers spawned → joined).
    pub wall_seconds: f64,
    /// Total measured body seconds per category.
    pub category_seconds: BTreeMap<Category, f64>,
    /// Op bodies that actually executed.
    pub bodies_run: usize,
}

/// Everything one epoch produces: simulated wall time, the op timeline, and
/// (for materialized problems) learning metrics.
#[derive(Debug)]
pub struct EpochReport {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Simulated end-to-end epoch time on the virtual machine (seconds).
    pub sim_seconds: f64,
    /// Global training loss (0.0 for timing-only runs).
    pub loss: f64,
    /// Train / test accuracy on this epoch's forward pass (0.0 when
    /// timing-only).
    pub train_acc: f64,
    pub test_acc: f64,
    /// Per-op spans (Figs 6/8) and per-category totals (Fig 5).
    pub timeline: Timeline,
    /// Measured wall-clock profile; `Some` only on the threaded backend.
    pub measured: Option<MeasuredEpoch>,
}

impl EpochReport {
    /// Per-category busy-time percentages, Fig 5 style. Communication is
    /// excluded when `exclude_comm` is set (the paper's Fig 5 decomposes
    /// kernel time; comm is hidden under SpMM's pipeline).
    pub fn breakdown(&self, exclude_comm: bool) -> Vec<(Category, f64)> {
        let mut totals: Vec<(Category, f64)> = self
            .timeline
            .category_totals()
            .into_iter()
            .filter(|(c, _)| !(exclude_comm && *c == Category::Comm))
            .collect();
        let sum: f64 = totals.iter().map(|(_, t)| t).sum();
        if sum > 0.0 {
            for (_, t) in &mut totals {
                *t = 100.0 * *t / sum;
            }
        }
        totals
    }

    /// Busy time of one category, seconds.
    pub fn category_seconds(&self, cat: Category) -> f64 {
        self.timeline
            .category_totals()
            .into_iter()
            .find(|(c, _)| *c == cat)
            .map(|(_, t)| t)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_gpusim::Span;

    fn report() -> EpochReport {
        let mut tl = Timeline::default();
        tl.spans.push(Span {
            gpu: 0,
            stream: 0,
            category: Category::SpMM,
            stage: None,
            label: "s",
            start: 0.0,
            end: 3.0,
            op: 0,
            bytes: 0.0,
            reads: 0,
            writes: 0,
            epoch: None,
        });
        tl.spans.push(Span {
            gpu: 0,
            stream: 1,
            category: Category::Comm,
            stage: None,
            label: "c",
            start: 0.0,
            end: 1.0,
            op: 1,
            bytes: 0.0,
            reads: 0,
            writes: 0,
            epoch: None,
        });
        EpochReport {
            epoch: 0,
            sim_seconds: 3.0,
            loss: 0.5,
            train_acc: 0.9,
            test_acc: 0.8,
            timeline: tl,
            measured: None,
        }
    }

    #[test]
    fn breakdown_excluding_comm() {
        let r = report();
        let b = r.breakdown(true);
        assert_eq!(b.len(), 1);
        assert!((b[0].1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_including_comm() {
        let r = report();
        let b = r.breakdown(false);
        let total: f64 = b.iter().map(|(_, p)| p).sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn category_seconds_lookup() {
        let r = report();
        assert!((r.category_seconds(Category::SpMM) - 3.0).abs() < 1e-12);
        assert_eq!(r.category_seconds(Category::Adam), 0.0);
    }
}
