//! Adam optimizer (Kingma & Ba) — the paper implements its own Adam for
//! all experiments (§6 "Model").
//!
//! Every GPU applies the identical update to its weight replica after the
//! gradient all-reduce, so replicas never diverge.

/// Adam hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct AdamParams {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
}

impl Default for AdamParams {
    fn default() -> Self {
        Self { lr: 1e-2, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }
}

/// One Adam step over a parameter slice with its moment buffers.
/// `t` is the 1-based global step count (bias correction).
pub fn adam_step(
    p: &AdamParams,
    t: u64,
    w: &mut [f32],
    grad: &[f32],
    m: &mut [f32],
    v: &mut [f32],
) {
    assert_eq!(w.len(), grad.len());
    assert_eq!(w.len(), m.len());
    assert_eq!(w.len(), v.len());
    assert!(t >= 1, "Adam step count is 1-based");
    let bc1 = 1.0 - p.beta1.powi(t as i32);
    let bc2 = 1.0 - p.beta2.powi(t as i32);
    for i in 0..w.len() {
        let g = grad[i];
        m[i] = p.beta1 * m[i] + (1.0 - p.beta1) * g;
        v[i] = p.beta2 * v[i] + (1.0 - p.beta2) * g * g;
        let m_hat = m[i] / bc1;
        let v_hat = v[i] / bc2;
        w[i] -= p.lr * m_hat / (v_hat.sqrt() + p.eps);
    }
}

/// Learning-rate schedule applied on top of the base rate.
///
/// Long full-batch runs (the paper's Reddit run is 466 epochs) typically
/// decay the rate; the schedule multiplies `GcnConfig::lr` per epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LrSchedule {
    /// Fixed rate (the paper's setting).
    Constant,
    /// Multiply by `gamma` every `every` epochs.
    StepDecay { every: usize, gamma: f32 },
    /// Cosine annealing from 1.0 to `floor` over `total` epochs.
    Cosine { total: usize, floor: f32 },
}

impl LrSchedule {
    /// Multiplicative factor for a 0-based epoch.
    pub fn factor(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::StepDecay { every, gamma } => gamma.powi((epoch / every.max(1)) as i32),
            LrSchedule::Cosine { total, floor } => {
                let t = (epoch as f32 / total.max(1) as f32).min(1.0);
                floor + (1.0 - floor) * 0.5 * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_is_one() {
        for e in [0, 10, 500] {
            assert_eq!(LrSchedule::Constant.factor(e), 1.0);
        }
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = LrSchedule::StepDecay { every: 10, gamma: 0.5 };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(9), 1.0);
        assert_eq!(s.factor(10), 0.5);
        assert_eq!(s.factor(25), 0.25);
    }

    #[test]
    fn cosine_descends_to_floor() {
        let s = LrSchedule::Cosine { total: 100, floor: 0.1 };
        assert!((s.factor(0) - 1.0).abs() < 1e-6);
        assert!(s.factor(50) < s.factor(10));
        assert!((s.factor(100) - 0.1).abs() < 1e-5);
        assert!((s.factor(500) - 0.1).abs() < 1e-5, "clamped past total");
    }

    #[test]
    fn schedules_stay_positive_and_bounded() {
        for s in [
            LrSchedule::Constant,
            LrSchedule::StepDecay { every: 5, gamma: 0.9 },
            LrSchedule::Cosine { total: 50, floor: 0.01 },
        ] {
            for e in 0..200 {
                let f = s.factor(e);
                assert!(f > 0.0 && f <= 1.0, "{s:?} at {e}: {f}");
            }
        }
    }

    #[test]
    fn first_step_moves_against_gradient() {
        let p = AdamParams::default();
        let mut w = [1.0f32];
        let mut m = [0.0f32];
        let mut v = [0.0f32];
        adam_step(&p, 1, &mut w, &[2.0], &mut m, &mut v);
        // On step 1 with zero moments, the update magnitude ≈ lr.
        assert!(w[0] < 1.0);
        assert!((1.0 - w[0] - p.lr).abs() < 1e-4, "w {}", w[0]);
    }

    #[test]
    fn zero_gradient_is_noop_from_rest() {
        let p = AdamParams::default();
        let mut w = [0.5f32];
        let mut m = [0.0f32];
        let mut v = [0.0f32];
        adam_step(&p, 1, &mut w, &[0.0], &mut m, &mut v);
        assert_eq!(w[0], 0.5);
    }

    #[test]
    fn converges_on_quadratic() {
        // Minimize (w - 3)^2 — gradient 2(w - 3).
        let p = AdamParams { lr: 0.1, ..Default::default() };
        let mut w = [0.0f32];
        let mut m = [0.0f32];
        let mut v = [0.0f32];
        for t in 1..=500 {
            let g = 2.0 * (w[0] - 3.0);
            adam_step(&p, t, &mut w, &[g], &mut m, &mut v);
        }
        assert!((w[0] - 3.0).abs() < 0.05, "w {}", w[0]);
    }

    #[test]
    fn deterministic_across_replicas() {
        let p = AdamParams::default();
        let run = || {
            let mut w = [1.0f32, -2.0];
            let mut m = [0.0f32; 2];
            let mut v = [0.0f32; 2];
            for t in 1..=10 {
                adam_step(&p, t, &mut w, &[0.3, -0.7], &mut m, &mut v);
            }
            w
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn step_zero_rejected() {
        let p = AdamParams::default();
        adam_step(&p, 0, &mut [0.0], &[0.0], &mut [0.0], &mut [0.0]);
    }
}
