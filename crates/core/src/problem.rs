//! The distributed training problem: 1D-row-partitioned data (§4.1).
//!
//! GPU `i` owns row-parts of every dense matrix and tile-row `i` of the
//! sparse matrices: `(Âᵀ)^{i·}` for the forward SpMM and `Â^{i·}` for the
//! backward one. Only the weights are replicated. A [`Problem`] can be
//! built two ways:
//!
//! * [`Problem::from_graph`] — materialized tiles and shards for real
//!   end-to-end training on the virtual machine;
//! * [`Problem::from_stats`] — tile descriptors only (rows/cols/nnz), for
//!   timing paper-scale datasets that were never materialized.

use crate::config::{GcnConfig, TrainOptions};
use mggcn_dense::Dense;
use mggcn_graph::tilestats::{TileStats, VertexOrdering};
use mggcn_graph::{random_permutation, DatasetCard, Graph};
use mggcn_sparse::{Csr, PartitionVec, TileGrid};
use std::sync::Arc;

/// Materialized per-GPU data.
pub struct RealData {
    /// `P × P` row-major tiles of `Âᵀ` (forward; GPU `i` holds tile row `i`).
    pub fwd_tiles: Vec<Csr>,
    /// `P × P` row-major tiles of `Â` (backward).
    pub bwd_tiles: Vec<Csr>,
    /// Per-GPU feature shards `H⁰_i`.
    pub features: Vec<Dense>,
    /// Per-GPU label shards.
    pub labels: Vec<Vec<u32>>,
    /// Per-GPU train/test masks (local row indexing).
    pub train_mask: Vec<Vec<bool>>,
    pub test_mask: Vec<Vec<bool>>,
}

/// A partitioned GCN training problem.
pub struct Problem {
    pub name: String,
    pub parts: usize,
    pub n: usize,
    pub classes: usize,
    pub part: PartitionVec,
    /// nnz of forward tile `(i, j)` at `i * parts + j`.
    pub fwd_nnz: Vec<u64>,
    /// nnz of backward tile `(i, j)`.
    pub bwd_nnz: Vec<u64>,
    /// Global number of training vertices (loss normalization).
    pub train_count: usize,
    /// Materialized data; `None` for timing-only problems.
    pub real: Option<Arc<RealData>>,
}

impl Problem {
    /// Partition a materialized graph for `opts.gpus` GPUs, applying the
    /// §5.2 random permutation when `opts.permute` is set.
    pub fn from_graph(graph: &Graph, cfg: &GcnConfig, opts: &TrainOptions) -> Self {
        assert_eq!(graph.features.cols(), cfg.dims[0], "feature width must match the model's d(0)");
        assert_eq!(graph.classes, *cfg.dims.last().expect("dims"), "classes must match d(L)");
        let permuted;
        let graph = if opts.permute {
            permuted = graph.permute(&random_permutation(graph.n(), opts.perm_seed));
            &permuted
        } else {
            graph
        };
        let p = opts.gpus;
        let (a_hat, a_hat_t) = graph.normalized_adj();
        let fwd_grid = TileGrid::symmetric_uniform(&a_hat_t, p);
        let bwd_grid = TileGrid::symmetric_uniform(&a_hat, p);
        let part = fwd_grid.row_partition().clone();

        let fwd_nnz = fwd_grid.tile_nnz().iter().map(|&x| x as u64).collect();
        let bwd_nnz = bwd_grid.tile_nnz().iter().map(|&x| x as u64).collect();

        let mut features = Vec::with_capacity(p);
        let mut labels = Vec::with_capacity(p);
        let mut train_mask = Vec::with_capacity(p);
        let mut test_mask = Vec::with_capacity(p);
        for i in 0..p {
            let (s, e) = (part.start(i), part.end(i));
            features.push(graph.features.row_block(s, e - s));
            labels.push(graph.labels[s..e].to_vec());
            train_mask.push(graph.split.train[s..e].to_vec());
            test_mask.push(graph.split.test[s..e].to_vec());
        }
        let train_count = graph.split.train_count();

        let real = RealData {
            fwd_tiles: fwd_grid.tiles().iter().map(|t| t.csr.clone()).collect(),
            bwd_tiles: bwd_grid.tiles().iter().map(|t| t.csr.clone()).collect(),
            features,
            labels,
            train_mask,
            test_mask,
        };
        Self {
            name: "materialized".into(),
            parts: p,
            n: graph.n(),
            classes: graph.classes,
            part,
            fwd_nnz,
            bwd_nnz,
            train_count,
            real: Some(Arc::new(real)),
        }
    }

    /// Build a timing-only problem from a dataset card. Tile nnz follows
    /// the Chung–Lu expectation under the chosen ordering; `Â` and `Âᵀ`
    /// share statistics (the underlying graphs are near-symmetric).
    pub fn from_stats(card: &DatasetCard, opts: &TrainOptions) -> Self {
        let ordering =
            if opts.permute { VertexOrdering::Permuted } else { VertexOrdering::Original };
        let stats = TileStats::model(card, opts.gpus, ordering);
        Self::from_tile_stats(card.name, &stats, card.classes, card.n / 2)
    }

    /// Timing-only problem from explicit tile statistics.
    pub fn from_tile_stats(
        name: &str,
        stats: &TileStats,
        classes: usize,
        train_count: usize,
    ) -> Self {
        let p = stats.parts();
        let part = PartitionVec::uniform(stats.n(), p);
        let nnz: Vec<u64> = (0..p)
            .flat_map(|i| (0..p).map(move |j| (i, j)))
            .map(|(i, j)| stats.nnz(i, j))
            .collect();
        Self {
            name: name.into(),
            parts: p,
            n: stats.n(),
            classes,
            part,
            fwd_nnz: nnz.clone(),
            bwd_nnz: nnz,
            train_count,
            real: None,
        }
    }

    /// nnz of forward tile `(i, j)`.
    pub fn fwd_tile_nnz(&self, i: usize, j: usize) -> u64 {
        self.fwd_nnz[i * self.parts + j]
    }

    /// nnz of backward tile `(i, j)`.
    pub fn bwd_tile_nnz(&self, i: usize, j: usize) -> u64 {
        self.bwd_nnz[i * self.parts + j]
    }

    /// Rows owned by GPU `i`.
    pub fn rows_of(&self, i: usize) -> usize {
        self.part.len(i)
    }

    /// Largest part size (broadcast buffer rows).
    pub fn max_rows(&self) -> usize {
        self.part.max_len()
    }

    /// Whether real numerics are available.
    pub fn is_materialized(&self) -> bool {
        self.real.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_graph::generators::sbm::{self, SbmConfig};

    fn problem(gpus: usize, permute: bool) -> Problem {
        let g = sbm::generate(&SbmConfig::community_benchmark(120, 3), 1);
        let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
        let mut opts = TrainOptions::quick(gpus);
        opts.permute = permute;
        Problem::from_graph(&g, &cfg, &opts)
    }

    #[test]
    fn shards_cover_all_vertices() {
        let p = problem(4, false);
        let total: usize = (0..4).map(|i| p.rows_of(i)).sum();
        assert_eq!(total, p.n);
        let real = p.real.as_ref().unwrap();
        assert_eq!(real.features.len(), 4);
        for i in 0..4 {
            assert_eq!(real.features[i].rows(), p.rows_of(i));
            assert_eq!(real.labels[i].len(), p.rows_of(i));
        }
    }

    #[test]
    fn tile_nnz_matches_tiles() {
        let p = problem(3, true);
        let real = p.real.as_ref().unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(p.fwd_tile_nnz(i, j), real.fwd_tiles[i * 3 + j].nnz() as u64);
            }
        }
        let fwd_total: u64 = p.fwd_nnz.iter().sum();
        let bwd_total: u64 = p.bwd_nnz.iter().sum();
        assert_eq!(fwd_total, bwd_total, "Â and Âᵀ have the same nnz");
    }

    #[test]
    fn from_stats_has_no_real_data() {
        let opts = TrainOptions::quick(4);
        let p = Problem::from_stats(&mggcn_graph::datasets::ARXIV, &opts);
        assert!(!p.is_materialized());
        assert_eq!(p.parts, 4);
        let total: u64 = p.fwd_nnz.iter().sum();
        let m = mggcn_graph::datasets::ARXIV.m as f64;
        assert!((total as f64 - m).abs() / m < 0.05);
    }

    #[test]
    fn single_gpu_problem() {
        let p = problem(1, false);
        assert_eq!(p.parts, 1);
        assert_eq!(p.rows_of(0), p.n);
    }

    #[test]
    #[should_panic(expected = "feature width")]
    fn wrong_feature_dim_rejected() {
        let g = sbm::generate(&SbmConfig::community_benchmark(50, 2), 1);
        let cfg = GcnConfig::new(g.features.cols() + 1, &[4], g.classes);
        let opts = TrainOptions::quick(1);
        let _ = Problem::from_graph(&g, &cfg, &opts);
    }
}
