//! The effect-soundness oracle's runtime half: execute a recorded
//! schedule's bodies against a fresh device state and observe what each
//! body *actually* reads and writes.
//!
//! Observation combines two mechanisms:
//!
//! * **Instrumented accessors** — the trainer's buffer getters
//!   (`read_buf`, `GpuState::{bc_ref, w_ref, sf_ref, rp_ref, ahw_pair_mut}`)
//!   and explicit `note_read`/`note_write` calls at raw-slice RMW sites
//!   report to the attached [`EffectRecorder`]. This captures *reads*
//!   (invisible to state diffing) and writes that may land byte-identical
//!   data (collective copies, idempotent in-place kernels).
//! * **Fingerprint diffing** — after each body, every tracked buffer on
//!   the op's lane GPUs is FNV-hashed (shape + f32 bits) and compared to
//!   its pre-op hash; any change is recorded as a write. This is the
//!   ground truth that catches writes the instrumentation misses.
//!
//! The runner also derives observed *staleness*: in epoch-tagged fused
//! schedules it tracks the last-writer epoch per buffer, and a read whose
//! value was produced in an earlier epoch is recorded with its actual age
//! (reader epoch − writer epoch). `mggcn_analyze::audit_effects` diffs all
//! of this against the declared `Effects`.
//!
//! Known blind spot (by design, documented in DESIGN §16): a write to a
//! buffer on a GPU *outside* the op's lanes is only observed if noted
//! explicitly — fingerprinting every GPU after every op would make the
//! sweep quadratic. All collective helpers note their writes, so no
//! current body falls through.

use crate::config::GcnConfig;
use crate::problem::Problem;
use crate::state::DeviceState;
use mggcn_dense::Dense;
use mggcn_gpusim::shadow::{ActualEffects, EffectRecorder};
use mggcn_gpusim::{BufId, Schedule};
use std::collections::BTreeMap;

/// FNV-1a over a dense buffer's shape and f32 bit patterns.
fn fingerprint(d: &Dense) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    mix(&(d.rows() as u64).to_le_bytes());
    mix(&(d.cols() as u64).to_le_bytes());
    for v in d.as_slice() {
        mix(&v.to_bits().to_le_bytes());
    }
    h
}

/// Current fingerprints of every tracked buffer on GPU `g` — the §4.2
/// inventory (`X`, `HW`, `BC1`, `BC2`, `RP`, per-layer `AHW`/`SF`) plus
/// the replicated weights, gradients and Adam moments.
fn gpu_fingerprints(state: &DeviceState, g: usize, layers: usize) -> Vec<(BufId, u64)> {
    let gs = state.gpu(g);
    let mut out = vec![
        (BufId::new(g, "X"), fingerprint(&gs.x)),
        (BufId::new(g, "HW"), fingerprint(&gs.hw)),
        (BufId::new(g, "BC1"), fingerprint(&gs.bc1)),
        (BufId::new(g, "BC2"), fingerprint(&gs.bc2)),
        (BufId::new(g, "RP"), fingerprint(&gs.rp)),
    ];
    for l in 0..layers {
        out.push((BufId::indexed(g, "AHW", l), fingerprint(&gs.ahw[l])));
        out.push((BufId::indexed(g, "SF", l), fingerprint(&gs.sf[l])));
        out.push((BufId::indexed(g, "W", l), fingerprint(&gs.weights[l])));
        out.push((BufId::indexed(g, "WG", l), fingerprint(&gs.wgrad[l])));
        // One logical "ADAM.l" buffer covers both moment tensors.
        out.push((
            BufId::indexed(g, "ADAM", l),
            fingerprint(&gs.adam_m[l]) ^ fingerprint(&gs.adam_v[l]).rotate_left(1),
        ));
    }
    out
}

/// Execute `sched`'s bodies (in simulated completion order) against a
/// fresh [`DeviceState`] for `problem`, recording per-op actual effects.
/// The caller's own trainer state is untouched.
pub fn record_actual_effects(
    sched: Schedule<DeviceState>,
    problem: &Problem,
    cfg: &GcnConfig,
) -> Vec<ActualEffects> {
    // (lane GPUs, epoch tag) per op, captured before the schedule is moved.
    let metas: Vec<(Vec<usize>, Option<usize>)> = sched
        .op_infos()
        .iter()
        .map(|o| {
            let mut gpus: Vec<usize> = o.lanes.iter().map(|&(g, _)| g).collect();
            gpus.sort_unstable();
            gpus.dedup();
            (gpus, o.desc.epoch)
        })
        .collect();
    let layers = cfg.layers();
    let state = DeviceState::for_problem(problem, cfg);
    let rec = EffectRecorder::new(sched.op_count());
    state.attach_recorder(&rec);

    let mut fps: BTreeMap<BufId, u64> = BTreeMap::new();
    for g in 0..state.gpu_count() {
        fps.extend(gpu_fingerprints(&state, g, layers));
    }
    let mut last_write_epoch: BTreeMap<BufId, usize> = BTreeMap::new();

    sched.run_observed(
        &state,
        |id| rec.begin(id),
        |id| {
            let (gpus, epoch) = &metas[id];
            for &g in gpus {
                for (b, h) in gpu_fingerprints(&state, g, layers) {
                    if fps.get(&b) != Some(&h) {
                        rec.write(b);
                        fps.insert(b, h);
                    }
                }
            }
            if let Some(e) = *epoch {
                let eff = rec.snapshot(id);
                // Reads consumed the value present *before* this op's own
                // writes, so age against the previous writer.
                for &b in &eff.reads {
                    if let Some(&w) = last_write_epoch.get(&b) {
                        if w < e {
                            rec.note_stale(id, b, e - w);
                        }
                    }
                }
                for &b in &eff.writes {
                    last_write_epoch.insert(b, e);
                }
            }
            rec.end();
        },
    );
    state.detach_recorder();
    rec.take_log()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainOptions;
    use crate::trainer::Trainer;
    use mggcn_graph::generators::sbm::{self, SbmConfig};
    use std::collections::BTreeSet;

    fn trainer(gpus: usize) -> Trainer {
        let g = sbm::generate(&SbmConfig::community_benchmark(96, 3), 5);
        let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
        let opts = TrainOptions::quick(gpus);
        let problem = Problem::from_graph(&g, &cfg, &opts);
        Trainer::new(problem, cfg, opts).expect("fits")
    }

    /// The crate-level soundness invariant the analyze audit formalizes:
    /// nothing a body actually touches falls outside its declaration.
    #[test]
    fn actual_effects_stay_within_declarations() {
        let t = trainer(2);
        let sched = t.epoch_schedule();
        let declared: Vec<(BTreeSet<BufId>, BTreeSet<BufId>, &'static str)> = sched
            .op_infos()
            .iter()
            .map(|o| {
                (
                    o.effects.reads.iter().copied().collect(),
                    o.effects.writes.iter().copied().collect(),
                    o.desc.label,
                )
            })
            .collect();
        let actual = t.record_actual_effects(sched);
        assert_eq!(declared.len(), actual.len());
        for (i, ((reads, writes, label), act)) in declared.iter().zip(&actual).enumerate() {
            for b in &act.reads {
                assert!(reads.contains(b), "op {i} ({label}) undeclared read of {b}");
            }
            for b in &act.writes {
                assert!(writes.contains(b), "op {i} ({label}) undeclared write of {b}");
            }
        }
        // The observation is not vacuous: real reads and writes were seen.
        assert!(actual.iter().any(|a| !a.reads.is_empty()));
        assert!(actual.iter().any(|a| !a.writes.is_empty()));
    }

    #[test]
    fn recording_leaves_trainer_state_untouched() {
        let t = trainer(2);
        let before = t.state().weights_digest();
        let _ = t.record_actual_effects(t.epoch_schedule());
        assert_eq!(t.state().weights_digest(), before);
    }

    #[test]
    fn identical_linearizations_give_identical_digests() {
        let t = trainer(2);
        let n = t.epoch_schedule().op_count();
        let order: Vec<usize> = (0..n).collect();
        let a = t.linearization_digest(|_| {}, &order);
        let b = t.linearization_digest(|_| {}, &order);
        assert_eq!(a, b);
        // And the digest actually reflects training: it differs from the
        // untrained seed state (a fresh trainer's).
        assert_ne!(a, trainer(2).state().weights_digest());
    }
}
