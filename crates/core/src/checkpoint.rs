//! Model checkpointing.
//!
//! Full-batch training on big graphs runs for hundreds of epochs (the
//! paper's Reddit run converges after 466); production trainers need to
//! stop and resume. The format is a small self-describing binary layout
//! (magic + version + per-layer shapes + little-endian f32 payloads for
//! the weights and both Adam moments), written with plain `std::io` so the
//! checkpoint carries no dependency risk.

use crate::trainer::Trainer;
use mggcn_dense::Dense;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"MGGCNCK1";

/// A training checkpoint: replicated weights, Adam moments, epoch count.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    pub epoch: u64,
    pub weights: Vec<Dense>,
    pub adam_m: Vec<Dense>,
    pub adam_v: Vec<Dense>,
}

impl Checkpoint {
    /// Snapshot a trainer (GPU 0's replica; all replicas are identical).
    pub fn from_trainer(trainer: &Trainer) -> Self {
        let g0 = trainer.state().gpu(0);
        Self {
            epoch: trainer.epochs_trained() as u64,
            weights: g0.weights.clone(),
            adam_m: g0.adam_m.clone(),
            adam_v: g0.adam_v.clone(),
        }
    }

    /// Write to `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(MAGIC)?;
        w.write_all(&self.epoch.to_le_bytes())?;
        w.write_all(&(self.weights.len() as u32).to_le_bytes())?;
        for l in 0..self.weights.len() {
            let m = &self.weights[l];
            w.write_all(&(m.rows() as u32).to_le_bytes())?;
            w.write_all(&(m.cols() as u32).to_le_bytes())?;
            for mat in [&self.weights[l], &self.adam_m[l], &self.adam_v[l]] {
                for &x in mat.as_slice() {
                    w.write_all(&x.to_le_bytes())?;
                }
            }
        }
        w.flush()
    }

    /// Read from `path`, validating the header and shapes.
    pub fn load(path: &Path) -> io::Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not an MG-GCN checkpoint"));
        }
        let epoch = read_u64(&mut r)?;
        let layers = read_u32(&mut r)? as usize;
        if layers > 4096 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible layer count"));
        }
        let mut weights = Vec::with_capacity(layers);
        let mut adam_m = Vec::with_capacity(layers);
        let mut adam_v = Vec::with_capacity(layers);
        for _ in 0..layers {
            let rows = read_u32(&mut r)? as usize;
            let cols = read_u32(&mut r)? as usize;
            if rows.checked_mul(cols).is_none_or(|n| n > (1 << 30)) {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible shape"));
            }
            weights.push(read_matrix(&mut r, rows, cols)?);
            adam_m.push(read_matrix(&mut r, rows, cols)?);
            adam_v.push(read_matrix(&mut r, rows, cols)?);
        }
        Ok(Self { epoch, weights, adam_m, adam_v })
    }

    /// Restore this checkpoint into a trainer. Fails when the shapes do
    /// not match the trainer's model.
    pub fn restore_into(&self, trainer: &mut Trainer) -> io::Result<()> {
        trainer.restore(self).map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))
    }
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_matrix(r: &mut impl Read, rows: usize, cols: usize) -> io::Result<Dense> {
    let mut bytes = vec![0u8; rows * cols * 4];
    r.read_exact(&mut bytes)?;
    let data =
        bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
    Ok(Dense::from_vec(rows, cols, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GcnConfig, TrainOptions};
    use crate::problem::Problem;
    use mggcn_graph::generators::sbm::{self, SbmConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mggcn_ckpt_{}_{name}.bin", std::process::id()))
    }

    fn trainer() -> Trainer {
        let g = sbm::generate(&SbmConfig::community_benchmark(120, 3), 4);
        let cfg = GcnConfig::new(g.features.cols(), &[8], g.classes);
        let opts = TrainOptions::quick(2);
        let problem = Problem::from_graph(&g, &cfg, &opts);
        Trainer::new(problem, cfg, opts).expect("fits")
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let mut t = trainer();
        t.train(3).expect("train");
        let ck = Checkpoint::from_trainer(&t);
        let path = tmp("roundtrip");
        ck.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(ck, back);
        assert_eq!(back.epoch, 3);
    }

    #[test]
    fn resume_continues_identically() {
        // Train 6 epochs straight vs 3 + checkpoint/restore + 3.
        let mut straight = trainer();
        let full: Vec<f64> =
            straight.train(6).expect("train").into_iter().map(|r| r.loss).collect();

        let mut first = trainer();
        first.train(3).expect("train");
        let ck = Checkpoint::from_trainer(&first);
        let path = tmp("resume");
        ck.save(&path).unwrap();

        let mut resumed = trainer();
        let loaded = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        loaded.restore_into(&mut resumed).unwrap();
        let tail: Vec<f64> = resumed.train(3).expect("train").into_iter().map(|r| r.loss).collect();
        for (a, b) in full[3..].iter().zip(&tail) {
            assert!((a - b).abs() < 1e-9, "resumed {b} vs straight {a}");
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTACKPTxxxxxxxxxxxx").unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_file_rejected() {
        let mut t = trainer();
        t.train(1).expect("train");
        let path = tmp("trunc");
        Checkpoint::from_trainer(&t).save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(Checkpoint::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shape_mismatch_rejected_on_restore() {
        let mut small = trainer();
        small.train(1).expect("train");
        let ck = Checkpoint::from_trainer(&small);
        // A different architecture.
        let g = sbm::generate(&SbmConfig::community_benchmark(120, 3), 4);
        let cfg = GcnConfig::new(g.features.cols(), &[16], g.classes);
        let opts = TrainOptions::quick(2);
        let problem = Problem::from_graph(&g, &cfg, &opts);
        let mut other = Trainer::new(problem, cfg, opts).expect("fits");
        assert!(ck.restore_into(&mut other).is_err());
    }
}
