//! Graph-attention building blocks (the paper's §7 future work).
//!
//! "Another future direction is to accelerate the Sampled Dense Dense
//! Matrix Multiplication (SDDMM) kernel to enable parallel training of
//! several other models such as Graph Attention Networks." The SDDMM
//! kernel lives in [`mggcn_sparse::sddmm()`](mggcn_sparse::sddmm::sddmm); this module assembles it into
//! a GAT layer forward pass.
//!
//! GAT's edge score `e(u→v) = LeakyReLU(a_srcᵀ·W h_u + a_dstᵀ·W h_v)` is
//! rank-1 additive, so it *is* an SDDMM with feature width 2:
//! `dot([s_src(u), 1], [1, s_dst(v)]) = s_src(u) + s_dst(v)` — which means
//! the distributed version inherits the staged-SpMM communication pattern
//! unchanged.

use mggcn_dense::{gemm, init, Accumulate, Dense};
use mggcn_sparse::{rowwise_softmax, sddmm, spmm, Csr};

/// One graph-attention layer (single head).
#[derive(Clone, Debug)]
pub struct GatLayer {
    /// Feature transform, `d_in × d_out`.
    pub w: Dense,
    /// Source attention vector, length `d_out`.
    pub a_src: Vec<f32>,
    /// Destination attention vector, length `d_out`.
    pub a_dst: Vec<f32>,
    /// LeakyReLU negative slope (0.2 in the GAT paper).
    pub slope: f32,
}

impl GatLayer {
    /// Glorot-initialized layer.
    pub fn new(d_in: usize, d_out: usize, seed: u64) -> Self {
        let w = init::glorot_seeded(d_in, d_out, seed);
        let a = init::glorot_seeded(2, d_out, seed ^ 0x47a7);
        Self { w, a_src: a.row(0).to_vec(), a_dst: a.row(1).to_vec(), slope: 0.2 }
    }

    /// Forward pass: `adj` is the (pattern-only) adjacency with rows =
    /// destinations, columns = sources. Returns `(attention, output)` where
    /// `attention` carries the per-edge softmax coefficients on `adj`'s
    /// pattern and `output = attention · (H W)`.
    pub fn forward(&self, adj: &Csr, h: &Dense) -> (Csr, Dense) {
        assert_eq!(adj.rows(), adj.cols(), "GAT expects a square adjacency");
        assert_eq!(adj.rows(), h.rows(), "feature rows must match vertices");
        let n = h.rows();
        let d_out = self.w.cols();
        // HW = H · W.
        let mut hw = Dense::zeros(n, d_out);
        gemm(h, &self.w, &mut hw, Accumulate::Overwrite);
        // Per-vertex score halves.
        let s_src: Vec<f32> =
            (0..n).map(|v| hw.row(v).iter().zip(&self.a_src).map(|(x, a)| x * a).sum()).collect();
        let s_dst: Vec<f32> =
            (0..n).map(|v| hw.row(v).iter().zip(&self.a_dst).map(|(x, a)| x * a).sum()).collect();
        // The rank-1 SDDMM: A[v] = [s_dst(v), 1], B[u] = [1, s_src(u)]
        // gives e(v←u) = s_dst(v) + s_src(u) on every edge (v, u).
        let a_feat = Dense::from_fn(n, 2, |v, c| if c == 0 { s_dst[v] } else { 1.0 });
        let b_feat = Dense::from_fn(n, 2, |u, c| if c == 0 { 1.0 } else { s_src[u] });
        let mut pattern = adj.clone();
        pattern.binarize();
        let mut logits = sddmm(&pattern, &a_feat, &b_feat);
        // LeakyReLU on edge logits.
        let slope = self.slope;
        let values: Vec<f32> =
            logits.values().iter().map(|&x| if x > 0.0 { x } else { slope * x }).collect();
        logits = Csr::from_parts(
            logits.rows(),
            logits.cols(),
            logits.row_ptr().to_vec(),
            logits.col_idx().to_vec(),
            values,
        );
        // Softmax over each destination's in-edges (rows).
        let attention = rowwise_softmax(&logits);
        // Output: attention-weighted aggregation of the transformed feats.
        let mut out = Dense::zeros(n, d_out);
        spmm(&attention, &hw, &mut out, Accumulate::Overwrite);
        (attention, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mggcn_sparse::Coo;

    fn ring(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n as u32 {
            coo.push(i, (i + 1) % n as u32, 1.0);
            coo.push(i, (i + 2) % n as u32, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn attention_rows_are_distributions() {
        let adj = ring(12);
        let h = Dense::from_fn(12, 5, |r, c| ((r * 5 + c) as f32).sin());
        let layer = GatLayer::new(5, 7, 3);
        let (att, out) = layer.forward(&adj, &h);
        assert_eq!(out.rows(), 12);
        assert_eq!(out.cols(), 7);
        for r in 0..12 {
            let s: f32 = att.row(r).map(|(_, v)| v).sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} attention sums to {s}");
        }
    }

    #[test]
    fn scores_match_naive_gat_formula() {
        let adj = ring(8);
        let h = Dense::from_fn(8, 4, |r, c| ((r + c) as f32) * 0.3 - 1.0);
        let layer = GatLayer::new(4, 3, 5);
        let (att, _) = layer.forward(&adj, &h);

        // Naive recomputation.
        let n = 8;
        let mut hw = Dense::zeros(n, 3);
        gemm(&h, &layer.w, &mut hw, Accumulate::Overwrite);
        for v in 0..n {
            let mut logits: Vec<(u32, f32)> = adj
                .row(v)
                .map(|(u, _)| {
                    let s_dst: f32 = hw.row(v).iter().zip(&layer.a_dst).map(|(x, a)| x * a).sum();
                    let s_src: f32 =
                        hw.row(u as usize).iter().zip(&layer.a_src).map(|(x, a)| x * a).sum();
                    let e = s_dst + s_src;
                    (u, if e > 0.0 { e } else { layer.slope * e })
                })
                .collect();
            let max = logits.iter().map(|&(_, e)| e).fold(f32::NEG_INFINITY, f32::max);
            let z: f32 = logits.iter().map(|&(_, e)| (e - max).exp()).sum();
            for (u, e) in logits.iter_mut() {
                let want = (*e - max).exp() / z;
                let got = att.row(v).find(|&(uu, _)| uu == *u).expect("edge").1;
                assert!((got - want).abs() < 1e-4, "({v},{u}): {got} vs {want}");
            }
        }
    }

    #[test]
    fn uniform_attention_when_vectors_are_zero() {
        let adj = ring(6);
        let h = Dense::from_fn(6, 3, |r, _| r as f32);
        let mut layer = GatLayer::new(3, 3, 1);
        layer.a_src.fill(0.0);
        layer.a_dst.fill(0.0);
        let (att, out) = layer.forward(&adj, &h);
        // All logits zero => uniform attention = mean aggregation.
        for r in 0..6 {
            for (_, v) in att.row(r) {
                assert!((v - 0.5).abs() < 1e-6);
            }
        }
        // Output equals plain normalized SpMM.
        let norm = adj.normalize_rows();
        let mut hw = Dense::zeros(6, 3);
        gemm(&h, &layer.w, &mut hw, Accumulate::Overwrite);
        let mut plain = Dense::zeros(6, 3);
        spmm(&norm, &hw, &mut plain, Accumulate::Overwrite);
        assert!(out.max_abs_diff(&plain) < 1e-5);
    }
}
