//! Softmax cross-entropy loss (§6 "Model") with in-buffer gradient.
//!
//! The final layer's logits live in the last `AHW` buffer; the loss kernel
//! reads them, accumulates the masked cross-entropy, and overwrites the
//! buffer with the gradient — the logits are not needed afterwards, which
//! is what lets the buffer scheme start the backward pass without any
//! additional allocation (Fig 1's `Loss` node).

use mggcn_dense::Dense;

/// Outcome of one local loss evaluation.
#[derive(Clone, Copy, Debug, Default)]
pub struct LossStats {
    /// Sum of per-vertex cross-entropy over local *train* vertices.
    pub loss_sum: f64,
    pub train_correct: usize,
    pub train_total: usize,
    pub test_correct: usize,
    pub test_total: usize,
}

/// Compute masked softmax cross-entropy over `logits` (`n_local × classes`)
/// and replace `logits` with the loss gradient.
///
/// * Train rows get gradient `(softmax − onehot) / global_train_count`;
/// * all other rows get zero gradient (they do not contribute to the loss);
/// * accuracy counters are collected for both masks on the way through.
pub fn softmax_xent_inplace(
    logits: &mut Dense,
    labels: &[u32],
    train_mask: &[bool],
    test_mask: &[bool],
    global_train_count: usize,
) -> LossStats {
    let classes = logits.cols();
    assert_eq!(logits.rows(), labels.len());
    assert!(global_train_count > 0, "loss needs at least one training vertex");
    let inv_n = 1.0f32 / global_train_count as f32;
    let mut stats = LossStats::default();
    for r in 0..logits.rows() {
        let row = logits.row_mut(r);
        let label = labels[r] as usize;
        debug_assert!(label < classes);
        // Numerically stable softmax.
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("nonempty row");
        let p_label = row[label] / sum;
        if train_mask[r] {
            stats.loss_sum += -(p_label.max(1e-30).ln()) as f64;
            stats.train_total += 1;
            stats.train_correct += usize::from(argmax == label);
            for x in row.iter_mut() {
                *x = *x / sum * inv_n;
            }
            row[label] -= inv_n;
        } else {
            if test_mask[r] {
                stats.test_total += 1;
                stats.test_correct += usize::from(argmax == label);
            }
            row.fill(0.0);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_low_loss() {
        // Logit strongly favours the true class.
        let mut z = Dense::from_vec(1, 3, vec![10.0, 0.0, 0.0]);
        let s = softmax_xent_inplace(&mut z, &[0], &[true], &[false], 1);
        assert!(s.loss_sum < 0.01, "loss {}", s.loss_sum);
        assert_eq!(s.train_correct, 1);
    }

    #[test]
    fn uniform_prediction_loss_is_log_classes() {
        let mut z = Dense::zeros(1, 4);
        let s = softmax_xent_inplace(&mut z, &[2], &[true], &[false], 1);
        assert!((s.loss_sum - (4.0f64).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = vec![0.3f32, -0.7, 1.1];
        let label = 1u32;
        let mut z = Dense::from_vec(1, 3, logits.clone());
        softmax_xent_inplace(&mut z, &[label], &[true], &[false], 1);
        let grad = z.as_slice().to_vec();
        let eps = 1e-3f32;
        for k in 0..3 {
            let loss_at = |delta: f32| {
                let mut pert = logits.clone();
                pert[k] += delta;
                let mut zz = Dense::from_vec(1, 3, pert);
                softmax_xent_inplace(&mut zz, &[label], &[true], &[false], 1).loss_sum
            };
            let fd = ((loss_at(eps) - loss_at(-eps)) / (2.0 * eps as f64)) as f32;
            assert!((grad[k] - fd).abs() < 1e-3, "k={k}: grad {} fd {fd}", grad[k]);
        }
    }

    #[test]
    fn non_train_rows_get_zero_gradient() {
        let mut z = Dense::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let s = softmax_xent_inplace(&mut z, &[0, 1], &[true, false], &[false, true], 1);
        assert!(z.row(1).iter().all(|&x| x == 0.0));
        assert_eq!(s.test_total, 1);
        assert_eq!(s.test_correct, 1); // argmax of row 1 is class 1
    }

    #[test]
    fn gradient_scales_with_global_count() {
        let mk = |n: usize| {
            let mut z = Dense::from_vec(1, 2, vec![1.0, 0.0]);
            softmax_xent_inplace(&mut z, &[0], &[true], &[false], n);
            z.as_slice().to_vec()
        };
        let g1 = mk(1);
        let g4 = mk(4);
        for (a, b) in g1.iter().zip(&g4) {
            assert!((a - 4.0 * b).abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero_on_train_rows() {
        let mut z = Dense::from_vec(1, 5, vec![0.1, 0.5, -0.2, 2.0, 1.0]);
        softmax_xent_inplace(&mut z, &[3], &[true], &[false], 2);
        let s: f32 = z.row(0).iter().sum();
        assert!(s.abs() < 1e-6);
    }
}
