//! MG-GCN core: multi-GPU full-batch GCN training.
//!
//! This crate is the paper's primary contribution, rebuilt in Rust on the
//! virtual machine of [`mggcn_gpusim`]:
//!
//! * [`config`] — model and training-option types (every §4/§5 optimization
//!   is a flag, so the paper's ablations are first-class);
//! * [`problem`] — the 1D-row-partitioned distributed problem: 2D tiles of
//!   `Âᵀ`/`Â`, feature and label shards (§4.1), or descriptor-only tile
//!   statistics for paper-scale timing runs;
//! * [`state`] — per-GPU device buffers implementing the shared-buffer
//!   scheme of §4.2/Fig 1 (`L + 3` big buffers: one `AHW` per layer plus
//!   shared `HW`, `BC1`, `BC2`);
//! * [`memplan`] — the analytic per-GPU memory plan behind Fig 12 and every
//!   OOM cell;
//! * [`loss`] / [`optimizer`] — softmax cross-entropy and Adam (§6 "Model");
//! * [`trainer`] — schedule construction (staged broadcast SpMM, §4.3
//!   two-stream overlap with `BC1`/`BC2` double buffering, §4.4 op-order
//!   selection and first-layer backward-SpMM skip) and the epoch loop;
//! * [`metrics`] — epoch reports: simulated time, per-category breakdown,
//!   loss/accuracy;
//! * [`checkpoint`] — stop/resume support with bit-exact continuation;
//! * [`attention`] — a GAT layer built on the SDDMM kernel (§7 future
//!   work);
//! * [`fit`] — convergence runs with early stopping and best-weights
//!   tracking (the §6 accuracy-workflow);
//! * [`distspmm`] — eager reference implementations of the 1D and 1.5D
//!   distributed SpMM algorithms, the oracles the scheduled trainer is
//!   tested against.
//!
//! # Quick start
//!
//! ```
//! use mggcn_core::config::{GcnConfig, TrainOptions};
//! use mggcn_core::problem::Problem;
//! use mggcn_core::trainer::Trainer;
//! use mggcn_graph::generators::sbm::{self, SbmConfig};
//!
//! let graph = sbm::generate(&SbmConfig::community_benchmark(200, 4), 7);
//! let cfg = GcnConfig::new(graph.features.cols(), &[32], graph.classes);
//! let opts = TrainOptions::quick(2); // 2 virtual GPUs
//! let problem = Problem::from_graph(&graph, &cfg, &opts);
//! let mut trainer = Trainer::new(problem, cfg, opts).unwrap();
//! let report = trainer.train_epoch().unwrap();
//! assert!(report.loss.is_finite());
//! ```

#![forbid(unsafe_code)]

pub mod attention;
pub mod checkpoint;
pub mod config;
pub mod distspmm;
pub mod fit;
pub mod loss;
pub mod memplan;
pub mod metrics;
pub mod optimizer;
pub mod problem;
pub mod shadow;
pub mod state;
pub mod trainer;

pub use config::{GcnConfig, Partition, TrainOptions};
pub use memplan::MemoryPlan;
pub use metrics::{EpochReport, MeasuredEpoch};
pub use mggcn_exec::Backend;
pub use problem::Problem;
pub use trainer::{TrainError, Trainer};
