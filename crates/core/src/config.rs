//! Model and training configuration.

use crate::memplan::BufferPolicy;
use crate::optimizer::LrSchedule;
use mggcn_exec::Backend;
use mggcn_gpusim::{CostModel, MachineSpec};

/// GCN architecture: `dims = [d(0), hidden…, d(L)]` (paper eq. 3–4).
#[derive(Clone, Debug, PartialEq)]
pub struct GcnConfig {
    /// Layer widths, length `L + 1`.
    pub dims: Vec<usize>,
    /// Weight-initialization seed (identical on every GPU so the replicated
    /// weights agree bit-for-bit).
    pub seed: u64,
    /// Adam learning rate.
    pub lr: f32,
    /// Per-epoch multiplier on `lr` (constant in the paper's runs).
    pub lr_schedule: LrSchedule,
}

impl GcnConfig {
    /// Build from input dim, hidden widths and class count.
    pub fn new(feat_dim: usize, hidden: &[usize], classes: usize) -> Self {
        let mut dims = Vec::with_capacity(hidden.len() + 2);
        dims.push(feat_dim);
        dims.extend_from_slice(hidden);
        dims.push(classes);
        Self { dims, seed: 0x5eed, lr: 1e-2, lr_schedule: LrSchedule::Constant }
    }

    /// The paper's model A: 2 layers, hidden 512 (CAGNET/DGL comparisons).
    pub fn model_a(feat_dim: usize, classes: usize) -> Self {
        Self::new(feat_dim, &[512], classes)
    }

    /// Model B: 2 layers, hidden 16 (the Reddit DistGNN comparison).
    pub fn model_b(feat_dim: usize, classes: usize) -> Self {
        Self::new(feat_dim, &[16], classes)
    }

    /// Model C: 3 layers, hidden 256 (Products/Proteins/Papers vs DistGNN).
    pub fn model_c(feat_dim: usize, classes: usize) -> Self {
        Self::new(feat_dim, &[256, 256], classes)
    }

    /// Model D: 3 layers, hidden 208 (Papers on DGX-A100; the largest that
    /// fits).
    pub fn model_d(feat_dim: usize, classes: usize) -> Self {
        Self::new(feat_dim, &[208, 208], classes)
    }

    /// Number of layers `L`.
    pub fn layers(&self) -> usize {
        self.dims.len() - 1
    }

    /// Width of layer `l`'s input.
    pub fn d_in(&self, l: usize) -> usize {
        self.dims[l]
    }

    /// Width of layer `l`'s output.
    pub fn d_out(&self, l: usize) -> usize {
        self.dims[l + 1]
    }

    /// Total weight parameters `Σ d(l)·d(l+1)`.
    pub fn param_count(&self) -> usize {
        (0..self.layers()).map(|l| self.d_in(l) * self.d_out(l)).sum()
    }

    /// Widest layer input/output (buffer sizing).
    pub fn max_dim(&self) -> usize {
        *self.dims.iter().max().expect("dims nonempty")
    }
}

/// How the adjacency/feature rows are partitioned across GPUs (§5.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Partition {
    /// The paper's shipped scheme: P row partitions, each stage broadcast
    /// to the full machine.
    #[default]
    OneD,
    /// 1.5D with replication factor c = 2: the machine splits into two
    /// replication groups; each stage broadcasts inside one group only and
    /// a cross-group pairwise reduction combines the partial SpMM results.
    /// Costs one extra big buffer per GPU (`RP`, the §5.1 2× memory
    /// figure's marginal cost here). Requires an even GPU count ≥ 2.
    OneFiveD,
}

impl Partition {
    /// CLI spelling (`--partition {1d,1.5d}`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "1d" => Some(Self::OneD),
            "1.5d" => Some(Self::OneFiveD),
            _ => None,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Self::OneD => "1d",
            Self::OneFiveD => "1.5d",
        }
    }
}

/// Everything the trainer needs to know beyond the model: the machine, the
/// GPU count, and each paper optimization as an ablation flag.
#[derive(Clone, Debug)]
pub struct TrainOptions {
    pub machine: MachineSpec,
    /// Number of GPUs to use (≤ machine size).
    pub gpus: usize,
    /// §5.2: random vertex permutation for load balance.
    pub permute: bool,
    /// §4.3: overlap communication with computation (two streams,
    /// double-buffered broadcasts).
    pub overlap: bool,
    /// §4.4: choose SpMM-before-GeMM when `d(l) < d(l+1)`.
    pub op_order_opt: bool,
    /// §4.4: skip the first layer's backward SpMM when input-feature
    /// gradients are not needed.
    pub skip_first_backward_spmm: bool,
    pub cost: CostModel,
    /// Seed for the §5.2 permutation.
    pub perm_seed: u64,
    /// Per-kernel launch overhead (seconds). Framework baselines pay more
    /// than the paper's bare-CUDA implementation.
    pub launch_overhead: f64,
    /// Buffer accounting used for the OOM check: MG-GCN's `L + 3` scheme
    /// or a baseline's per-layer allocation (§4.2).
    pub buffer_policy: BufferPolicy,
    /// Host-side per-epoch cost (synchronization, loss readback, epoch
    /// bookkeeping). This is the floor that stops tiny models from scaling
    /// (the paper's Reddit h=16 plateaus at 0.012 s past 4 GPUs, §6.6).
    pub epoch_host_overhead: f64,
    /// How epochs execute: discrete-event simulation only, or really, on
    /// worker-per-GPU threads (`mggcn-exec`). Numerics are bit-identical.
    pub backend: Backend,
    /// §5.1 partitioning strategy. 1.5D is numerics-identical to 1D (the
    /// cross-group reduction re-folds in canonical stage order) but moves
    /// bytes on a different wire pattern and needs `L + 4` big buffers.
    pub partition: Partition,
    /// Bounded training staleness `k` (PipeGCN-style cross-epoch
    /// pipelining, DESIGN §15). `0` — the default — is the paper's fully
    /// synchronous pipeline, bit-identical to every prior behaviour.
    /// With `k >= 1`, epoch `e`'s *remote* feature broadcasts read a
    /// snapshot (`SF`) of the sources taken up to `k` epochs earlier, so
    /// they carry no dependency on the current epoch's producers and the
    /// engine issues them during the previous epoch's backward pass. The
    /// local (diagonal) tile always reads live state, so the local
    /// gradient path stays exact.
    pub staleness: usize,
}

impl TrainOptions {
    /// All paper optimizations on, on a DGX-A100.
    pub fn full(machine: MachineSpec, gpus: usize) -> Self {
        assert!(gpus >= 1 && gpus <= machine.gpu_count(), "gpu count out of range");
        Self {
            machine,
            gpus,
            permute: true,
            overlap: true,
            op_order_opt: true,
            skip_first_backward_spmm: true,
            cost: CostModel::default(),
            perm_seed: 0xbabe,
            launch_overhead: 5.0e-6,
            buffer_policy: BufferPolicy::MgGcn,
            epoch_host_overhead: 3.0e-3,
            backend: Backend::Simulated,
            partition: Partition::default(),
            staleness: 0,
        }
    }

    /// Small default for tests and examples: `gpus` virtual GPUs on a
    /// DGX-A100, every optimization on, but exact gradients (no §4.4
    /// first-layer skip) so results match the dense reference.
    pub fn quick(gpus: usize) -> Self {
        let mut o = Self::full(MachineSpec::dgx_a100(), gpus);
        o.skip_first_backward_spmm = false;
        o
    }

    /// The GPU indices in use.
    pub fn gpu_ids(&self) -> Vec<usize> {
        (0..self.gpus).collect()
    }

    /// Stream used for communication: 1 when overlapping, 0 (serialized
    /// with compute) otherwise.
    pub fn comm_stream(&self) -> usize {
        usize::from(self.overlap)
    }

    /// Stream used for the bounded-staleness prefetch broadcasts: a
    /// dedicated lane past the comm stream, so epoch `e+1`'s stale
    /// broadcasts are not FIFO-serialized behind epoch `e`'s gradient
    /// all-reduce on the comm lane.
    pub fn prefetch_stream(&self) -> usize {
        self.comm_stream() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_layout() {
        let c = GcnConfig::new(100, &[64, 32], 10);
        assert_eq!(c.dims, vec![100, 64, 32, 10]);
        assert_eq!(c.layers(), 3);
        assert_eq!(c.d_in(1), 64);
        assert_eq!(c.d_out(2), 10);
        assert_eq!(c.param_count(), 100 * 64 + 64 * 32 + 32 * 10);
    }

    #[test]
    fn paper_models() {
        assert_eq!(GcnConfig::model_a(602, 41).dims, vec![602, 512, 41]);
        assert_eq!(GcnConfig::model_b(602, 41).dims, vec![602, 16, 41]);
        assert_eq!(GcnConfig::model_c(128, 172).dims, vec![128, 256, 256, 172]);
        assert_eq!(GcnConfig::model_d(128, 172).dims, vec![128, 208, 208, 172]);
    }

    #[test]
    fn comm_stream_follows_overlap() {
        let mut o = TrainOptions::quick(2);
        assert_eq!(o.comm_stream(), 1);
        o.overlap = false;
        assert_eq!(o.comm_stream(), 0);
    }

    #[test]
    #[should_panic(expected = "gpu count out of range")]
    fn too_many_gpus_rejected() {
        let _ = TrainOptions::full(MachineSpec::dgx_a100(), 9);
    }

    #[test]
    fn partition_parses_and_defaults_to_1d() {
        assert_eq!(TrainOptions::quick(2).partition, Partition::OneD);
        assert_eq!(Partition::parse("1d"), Some(Partition::OneD));
        assert_eq!(Partition::parse("1.5d"), Some(Partition::OneFiveD));
        assert_eq!(Partition::parse("2d"), None);
        assert_eq!(Partition::OneFiveD.name(), "1.5d");
    }
}
