//! Property-based tests for the trainer and its supporting pieces:
//! distributed/serial equivalence on random graphs, loss/optimizer
//! algebra, and memory-plan monotonicity.

use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_core::loss::softmax_xent_inplace;
use mggcn_core::memplan::{BufferPolicy, MemoryPlan};
use mggcn_core::optimizer::{adam_step, AdamParams};
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_dense::Dense;
use mggcn_graph::generators::chung_lu;
use mggcn_graph::Graph;
use proptest::prelude::*;

fn random_graph(n: usize, seed: u64) -> Graph {
    let degrees = vec![4u32; n];
    let adj = chung_lu::generate(&degrees, seed);
    Graph::synthesize(adj, 5, 3, seed ^ 0xabcd)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn any_gpu_count_matches_single_gpu(n in 24usize..80, seed in 0u64..500, gpus in 2usize..6) {
        let graph = random_graph(n, seed);
        let cfg = GcnConfig::new(5, &[7], 3);
        let run = |g: usize| {
            let mut opts = TrainOptions::quick(g);
            opts.permute = false;
            let problem = Problem::from_graph(&graph, &cfg, &opts);
            let mut t = Trainer::new(problem, cfg.clone(), opts).expect("fits");
            t.train(2).expect("train").into_iter().map(|r| r.loss).collect::<Vec<_>>()
        };
        let serial = run(1);
        let distributed = run(gpus);
        for (a, b) in serial.iter().zip(&distributed) {
            prop_assert!((a - b).abs() < 1e-3 * a.abs().max(1.0), "{a} vs {b} at {gpus} GPUs");
        }
    }
}

proptest! {
    #[test]
    fn loss_gradient_rows_sum_to_zero(
        logits in proptest::collection::vec(-4.0f32..4.0, 6..60),
        classes in 2usize..6,
    ) {
        let rows = logits.len() / classes;
        prop_assume!(rows > 0);
        let mut z = Dense::from_vec(rows, classes, logits[..rows * classes].to_vec());
        let labels: Vec<u32> = (0..rows).map(|r| (r % classes) as u32).collect();
        let train = vec![true; rows];
        let test = vec![false; rows];
        softmax_xent_inplace(&mut z, &labels, &train, &test, rows);
        for r in 0..rows {
            let s: f32 = z.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {r} grad sums to {s}");
        }
    }

    #[test]
    fn loss_is_nonnegative_and_finite(
        logits in proptest::collection::vec(-30.0f32..30.0, 4..40),
    ) {
        let classes = 4;
        let rows = logits.len() / classes;
        prop_assume!(rows > 0);
        let mut z = Dense::from_vec(rows, classes, logits[..rows * classes].to_vec());
        let labels: Vec<u32> = (0..rows).map(|r| (r * 7 % classes) as u32).collect();
        let train = vec![true; rows];
        let test = vec![false; rows];
        let stats = softmax_xent_inplace(&mut z, &labels, &train, &test, rows);
        prop_assert!(stats.loss_sum >= 0.0);
        prop_assert!(stats.loss_sum.is_finite());
        prop_assert!(z.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn adam_moves_every_weight_against_its_gradient_on_step_one(
        grads in proptest::collection::vec(-5.0f32..5.0, 1..30),
    ) {
        let p = AdamParams::default();
        let mut w = vec![0.0f32; grads.len()];
        let mut m = vec![0.0f32; grads.len()];
        let mut v = vec![0.0f32; grads.len()];
        adam_step(&p, 1, &mut w, &grads, &mut m, &mut v);
        for (wi, gi) in w.iter().zip(&grads) {
            if *gi > 1e-6 {
                prop_assert!(*wi < 0.0);
            } else if *gi < -1e-6 {
                prop_assert!(*wi > 0.0);
            } else {
                prop_assert_eq!(*wi, 0.0);
            }
        }
    }

    #[test]
    fn memory_plan_monotone_in_everything(
        n in 1_000u64..10_000_000,
        m in 1_000u64..100_000_000,
        hidden in 8usize..512,
        layers in 1usize..12,
        gpus in 1u64..8,
    ) {
        let cfg = GcnConfig::new(64, &vec![hidden; layers], 16);
        let base = MemoryPlan::new(n, m, &cfg, gpus, BufferPolicy::MgGcn).total();
        // More vertices, more edges, more layers => no less memory.
        let bigger_n = MemoryPlan::new(n * 2, m, &cfg, gpus, BufferPolicy::MgGcn).total();
        prop_assert!(bigger_n >= base);
        let bigger_m = MemoryPlan::new(n, m * 2, &cfg, gpus, BufferPolicy::MgGcn).total();
        prop_assert!(bigger_m >= base);
        let deeper = GcnConfig::new(64, &vec![hidden; layers + 1], 16);
        let deeper_total = MemoryPlan::new(n, m, &deeper, gpus, BufferPolicy::MgGcn).total();
        prop_assert!(deeper_total >= base);
        // More GPUs => no more memory per GPU.
        let wider = MemoryPlan::new(n, m, &cfg, gpus * 2, BufferPolicy::MgGcn).total();
        prop_assert!(wider <= base);
    }

    #[test]
    fn mggcn_plan_never_exceeds_per_layer_plans(
        n in 10_000u64..1_000_000,
        m in 10_000u64..10_000_000,
        hidden in 64usize..512,
        layers in 2usize..20,
    ) {
        // §4.2's claim: the shared-buffer scheme is at most as expensive as
        // per-layer allocation once models are deep enough (≥ 4 layers at
        // uniform width it is strictly cheaper).
        let cfg = GcnConfig::new(hidden, &vec![hidden; layers - 1], 16);
        let mg = MemoryPlan::new(n, m, &cfg, 1, BufferPolicy::MgGcn).big_buffers;
        let dgl = MemoryPlan::new(n, m, &cfg, 1, BufferPolicy::PerLayer3).big_buffers;
        if layers >= 4 {
            prop_assert!(mg <= dgl, "L+3 = {mg} should undercut 3L = {dgl} at {layers} layers");
        }
    }

    #[test]
    fn sim_time_decreases_or_holds_with_gpus_on_dense_cards(gpus in 1usize..8) {
        // Monotone scaling on a dense (SpMM-bound) dataset card.
        let card = mggcn_graph::datasets::REDDIT;
        let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
        let time = |g: usize| {
            let opts = TrainOptions::full(mggcn_gpusim::MachineSpec::dgx_a100(), g);
            let problem = Problem::from_stats(&card, &opts);
            Trainer::new(problem, cfg.clone(), opts)
                .expect("fits")
                .train_epoch()
                .expect("train")
                .sim_seconds
        };
        if gpus < 8 {
            prop_assert!(time(gpus + 1) <= time(gpus) * 1.05);
        }
    }
}
