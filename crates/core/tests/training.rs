//! End-to-end correctness of the distributed trainer.
//!
//! The anchor is a straightforward dense single-device GCN implementation
//! (no tiling, no buffer sharing, no streams). Every distributed
//! configuration — any GPU count, overlap on/off, either op order — must
//! reproduce its losses to floating-point accumulation tolerance, and the
//! analytic gradients must match finite differences.

use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_core::loss::softmax_xent_inplace;
use mggcn_core::optimizer::{adam_step, AdamParams};
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_dense::{
    gemm, gemm_a_bt, gemm_at_b, init, relu_backward, relu_inplace, Accumulate, Dense,
};
use mggcn_graph::generators::sbm::{self, SbmConfig};
use mggcn_graph::Graph;

/// Dense reference trainer: full matrices, textbook eqs. 5–11, Adam.
struct DenseReference {
    a_hat_t: Dense,
    a_hat: Dense,
    x: Dense,
    labels: Vec<u32>,
    train_mask: Vec<bool>,
    test_mask: Vec<bool>,
    weights: Vec<Dense>,
    adam_m: Vec<Dense>,
    adam_v: Vec<Dense>,
    dims: Vec<usize>,
    lr: f32,
    t: u64,
}

impl DenseReference {
    fn new(graph: &Graph, cfg: &GcnConfig) -> Self {
        let (a_hat, a_hat_t) = graph.normalized_adj();
        let layers = cfg.layers();
        Self {
            a_hat_t: a_hat_t.to_dense(),
            a_hat: a_hat.to_dense(),
            x: graph.features.clone(),
            labels: graph.labels.clone(),
            train_mask: graph.split.train.clone(),
            test_mask: graph.split.test.clone(),
            weights: (0..layers)
                .map(|l| init::glorot_seeded(cfg.d_in(l), cfg.d_out(l), cfg.seed + l as u64))
                .collect(),
            adam_m: (0..layers).map(|l| Dense::zeros(cfg.d_in(l), cfg.d_out(l))).collect(),
            adam_v: (0..layers).map(|l| Dense::zeros(cfg.d_in(l), cfg.d_out(l))).collect(),
            dims: cfg.dims.clone(),
            lr: cfg.lr,
            t: 0,
        }
    }

    /// One epoch; returns the training loss.
    fn epoch(&mut self) -> f64 {
        let layers = self.weights.len();
        let n = self.x.rows();
        // Forward, keeping every activation.
        let mut acts: Vec<Dense> = Vec::with_capacity(layers + 1);
        acts.push(self.x.clone());
        for l in 0..layers {
            let mut hw = Dense::zeros(n, self.dims[l + 1]);
            gemm(&acts[l], &self.weights[l], &mut hw, Accumulate::Overwrite);
            let mut z = Dense::zeros(n, self.dims[l + 1]);
            gemm(&self.a_hat_t, &hw, &mut z, Accumulate::Overwrite);
            if l + 1 < layers {
                relu_inplace(z.as_mut_slice());
            }
            acts.push(z);
        }
        // Loss + gradient in place of the logits.
        let train_count = self.train_mask.iter().filter(|&&b| b).count();
        let mut grad = acts.pop().expect("logits");
        let stats = softmax_xent_inplace(
            &mut grad,
            &self.labels,
            &self.train_mask,
            &self.test_mask,
            train_count,
        );
        // Backward.
        self.t += 1;
        let params = AdamParams { lr: self.lr, ..AdamParams::default() };
        for l in (0..layers).rev() {
            // grad = dL/dH(l+1); mask by activation for non-final layers.
            let masked = if l + 1 < layers {
                let mut m = Dense::zeros(n, self.dims[l + 1]);
                relu_backward(grad.as_slice(), acts[l + 1].as_slice(), m.as_mut_slice());
                m
            } else {
                grad
            };
            let mut hw_g = Dense::zeros(n, self.dims[l + 1]);
            gemm(&self.a_hat, &masked, &mut hw_g, Accumulate::Overwrite);
            let mut w_g = Dense::zeros(self.dims[l], self.dims[l + 1]);
            gemm_at_b(&acts[l], &hw_g, &mut w_g, Accumulate::Overwrite);
            if l > 0 {
                let mut h_g = Dense::zeros(n, self.dims[l]);
                gemm_a_bt(&hw_g, &self.weights[l], &mut h_g, Accumulate::Overwrite);
                grad = h_g;
            } else {
                grad = Dense::zeros(0, 0);
            }
            adam_step(
                &params,
                self.t,
                self.weights[l].as_mut_slice(),
                w_g.as_slice(),
                self.adam_m[l].as_mut_slice(),
                self.adam_v[l].as_mut_slice(),
            );
        }
        stats.loss_sum
    }
}

fn test_graph(n: usize, seed: u64) -> Graph {
    sbm::generate(&SbmConfig { feat_dim: 6, ..SbmConfig::community_benchmark(n, 3) }, seed)
}

fn run_distributed(graph: &Graph, opts: TrainOptions, epochs: usize) -> Vec<f64> {
    let cfg = GcnConfig::new(graph.features.cols(), &[10], graph.classes);
    let problem = Problem::from_graph(graph, &cfg, &opts);
    let mut trainer = Trainer::new(problem, cfg, opts).expect("fits");
    trainer.train(epochs).expect("train").into_iter().map(|r| r.loss).collect()
}

#[test]
fn single_gpu_matches_dense_reference() {
    let graph = test_graph(60, 11);
    let cfg = GcnConfig::new(graph.features.cols(), &[10], graph.classes);
    let mut opts = TrainOptions::quick(1);
    opts.permute = false;
    let mut reference = DenseReference::new(&graph, &cfg);
    let losses = run_distributed(&graph, opts, 4);
    for (e, &l) in losses.iter().enumerate() {
        let ref_loss = reference.epoch();
        assert!(
            (l - ref_loss).abs() < 1e-3 * ref_loss.abs().max(1.0),
            "epoch {e}: distributed {l} vs reference {ref_loss}"
        );
    }
}

#[test]
fn multi_gpu_matches_single_gpu() {
    let graph = test_graph(70, 12);
    let mk = |gpus: usize| {
        let mut o = TrainOptions::quick(gpus);
        o.permute = false;
        o
    };
    let l1 = run_distributed(&graph, mk(1), 4);
    for gpus in [2, 3, 4, 7] {
        let lp = run_distributed(&graph, mk(gpus), 4);
        for e in 0..4 {
            assert!(
                (l1[e] - lp[e]).abs() < 1e-3 * l1[e].abs().max(1.0),
                "{gpus} GPUs, epoch {e}: {} vs {}",
                lp[e],
                l1[e]
            );
        }
    }
}

#[test]
fn overlap_does_not_change_numerics() {
    let graph = test_graph(50, 13);
    let mut on = TrainOptions::quick(4);
    on.overlap = true;
    let mut off = TrainOptions::quick(4);
    off.overlap = false;
    let lo = run_distributed(&graph, on, 3);
    let lf = run_distributed(&graph, off, 3);
    for e in 0..3 {
        assert_eq!(lo[e], lf[e], "epoch {e}: overlap changed bits");
    }
}

#[test]
fn op_order_optimization_preserves_results() {
    // feat 6 < hidden 10 triggers SpMM-first at layer 0 when enabled.
    let graph = test_graph(50, 14);
    let mut a = TrainOptions::quick(2);
    a.op_order_opt = true;
    let mut b = TrainOptions::quick(2);
    b.op_order_opt = false;
    let la = run_distributed(&graph, a, 3);
    let lb = run_distributed(&graph, b, 3);
    for e in 0..3 {
        assert!(
            (la[e] - lb[e]).abs() < 1e-3 * la[e].abs().max(1.0),
            "epoch {e}: {} vs {}",
            la[e],
            lb[e]
        );
    }
}

#[test]
fn permutation_preserves_learning() {
    // Permuting vertices relabels everything consistently; the loss
    // trajectory must be near-identical (summation order differs).
    let graph = test_graph(60, 15);
    let mut with = TrainOptions::quick(3);
    with.permute = true;
    let mut without = TrainOptions::quick(3);
    without.permute = false;
    let lw = run_distributed(&graph, with, 4);
    let lo = run_distributed(&graph, without, 4);
    for e in 0..4 {
        assert!(
            (lw[e] - lo[e]).abs() < 2e-3 * lo[e].abs().max(1.0),
            "epoch {e}: permuted {} vs original {}",
            lw[e],
            lo[e]
        );
    }
}

#[test]
fn loss_decreases_over_training() {
    let graph = test_graph(120, 16);
    let cfg = GcnConfig::new(graph.features.cols(), &[16], graph.classes);
    let opts = TrainOptions::quick(2);
    let problem = Problem::from_graph(&graph, &cfg, &opts);
    let mut trainer = Trainer::new(problem, cfg, opts).expect("fits");
    let reports = trainer.train(30).expect("train");
    let first = reports[0].loss;
    let last = reports.last().expect("nonempty").loss;
    assert!(last < first * 0.5, "loss {first} -> {last}");
    // Accuracy should become decent on a strongly separated SBM.
    let final_train = reports.last().unwrap().train_acc;
    assert!(final_train > 0.6, "train accuracy {final_train}");
}

#[test]
fn first_layer_skip_still_learns() {
    // The §4.4 skip is an approximation; it must not stop convergence.
    let graph = test_graph(100, 17);
    let cfg = GcnConfig::new(graph.features.cols(), &[12], graph.classes);
    let mut opts = TrainOptions::quick(2);
    opts.skip_first_backward_spmm = true;
    let problem = Problem::from_graph(&graph, &cfg, &opts);
    let mut trainer = Trainer::new(problem, cfg, opts).expect("fits");
    let reports = trainer.train(25).expect("train");
    assert!(
        reports.last().unwrap().loss < reports[0].loss * 0.6,
        "loss {} -> {}",
        reports[0].loss,
        reports.last().unwrap().loss
    );
}

#[test]
fn gradients_match_finite_differences() {
    // Perturb a weight entry, check dL/dw against the analytic update
    // direction via the dense reference loss.
    let graph = test_graph(30, 18);
    let cfg = GcnConfig::new(graph.features.cols(), &[5], graph.classes);

    // Analytic gradient from a fresh reference at theta.
    let forward_loss = |weights: &[Dense]| -> f64 {
        let (_, a_hat_t) = graph.normalized_adj();
        let at = a_hat_t.to_dense();
        let n = graph.n();
        let mut h = graph.features.clone();
        for (l, w) in weights.iter().enumerate() {
            let mut hw = Dense::zeros(n, w.cols());
            gemm(&h, w, &mut hw, Accumulate::Overwrite);
            let mut z = Dense::zeros(n, w.cols());
            gemm(&at, &hw, &mut z, Accumulate::Overwrite);
            if l + 1 < weights.len() {
                relu_inplace(z.as_mut_slice());
            }
            h = z;
        }
        let count = graph.split.train.iter().filter(|&&b| b).count();
        softmax_xent_inplace(&mut h, &graph.labels, &graph.split.train, &graph.split.test, count)
            .loss_sum
    };

    // Analytic gradient via one reference backward (lr -> captured grads by
    // diffing Adam at tiny lr is noisy; instead recompute directly).
    let (a_hat, a_hat_t) = graph.normalized_adj();
    let (ad, atd) = (a_hat.to_dense(), a_hat_t.to_dense());
    let weights: Vec<Dense> = (0..cfg.layers())
        .map(|l| init::glorot_seeded(cfg.d_in(l), cfg.d_out(l), cfg.seed + l as u64))
        .collect();
    let n = graph.n();
    let mut acts = vec![graph.features.clone()];
    for (l, w) in weights.iter().enumerate() {
        let mut hw = Dense::zeros(n, w.cols());
        gemm(&acts[l], w, &mut hw, Accumulate::Overwrite);
        let mut z = Dense::zeros(n, w.cols());
        gemm(&atd, &hw, &mut z, Accumulate::Overwrite);
        if l + 1 < weights.len() {
            relu_inplace(z.as_mut_slice());
        }
        acts.push(z);
    }
    let count = graph.split.train.iter().filter(|&&b| b).count();
    let mut grad = acts.pop().unwrap();
    softmax_xent_inplace(&mut grad, &graph.labels, &graph.split.train, &graph.split.test, count);
    let mut wgrads: Vec<Dense> = Vec::new();
    for l in (0..weights.len()).rev() {
        let masked = if l + 1 < weights.len() {
            let mut m = Dense::zeros(n, weights[l].cols());
            relu_backward(grad.as_slice(), acts[l + 1].as_slice(), m.as_mut_slice());
            m
        } else {
            grad.clone()
        };
        let mut hw_g = Dense::zeros(n, weights[l].cols());
        gemm(&ad, &masked, &mut hw_g, Accumulate::Overwrite);
        let mut w_g = Dense::zeros(weights[l].rows(), weights[l].cols());
        gemm_at_b(&acts[l], &hw_g, &mut w_g, Accumulate::Overwrite);
        if l > 0 {
            let mut h_g = Dense::zeros(n, weights[l].rows());
            gemm_a_bt(&hw_g, &weights[l], &mut h_g, Accumulate::Overwrite);
            grad = h_g;
        }
        wgrads.push(w_g);
    }
    wgrads.reverse();

    // Spot-check entries of each layer against central differences. The
    // analytic gradient is for the *mean* train loss while `forward_loss`
    // returns the sum, so the FD estimate is divided by the train count.
    let eps = 3e-3f32;
    for l in 0..weights.len() {
        for &(r, c) in &[(0usize, 0usize), (1, 2)] {
            let mut plus = weights.clone();
            let v = plus[l].get(r, c);
            plus[l].set(r, c, v + eps);
            let mut minus = weights.clone();
            let v = minus[l].get(r, c);
            minus[l].set(r, c, v - eps);
            let fd =
                (forward_loss(&plus) - forward_loss(&minus)) / (2.0 * eps as f64) / count as f64;
            let an = wgrads[l].get(r, c) as f64;
            assert!(
                (fd - an).abs() < 2e-2 * an.abs().max(0.05),
                "layer {l} ({r},{c}): fd {fd} vs analytic {an}"
            );
        }
    }
}

#[test]
fn timing_only_problem_produces_timeline() {
    let opts = TrainOptions::full(mggcn_gpusim::MachineSpec::dgx_a100(), 4);
    let card = mggcn_graph::datasets::ARXIV;
    let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
    let problem = Problem::from_stats(&card, &opts);
    let mut trainer = Trainer::new(problem, cfg, opts).expect("fits");
    let report = trainer.train_epoch().expect("train");
    assert!(report.sim_seconds > 0.0);
    assert_eq!(report.loss, 0.0);
    let breakdown = report.breakdown(true);
    let cats: Vec<_> = breakdown.iter().map(|(c, _)| c.name()).collect();
    assert!(cats.contains(&"SpMM"), "categories {cats:?}");
    assert!(cats.contains(&"GeMM"));
    assert!(cats.contains(&"Adam"));
    assert!(cats.contains(&"Loss-Layer"));
}

#[test]
fn oom_rejected_at_construction() {
    let opts = TrainOptions::full(mggcn_gpusim::MachineSpec::dgx_v100(), 1);
    let card = mggcn_graph::datasets::PROTEINS;
    let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
    let problem = Problem::from_stats(&card, &opts);
    let err = match Trainer::new(problem, cfg, opts) {
        Err(e) => e,
        Ok(_) => panic!("expected OOM"),
    };
    assert!(err.requested > err.capacity);
}

#[test]
fn more_gpus_is_faster_on_dense_graphs() {
    // Reddit-scale stats: SpMM dominates, so the simulated epoch must
    // shrink with GPU count (Fig 10/13 direction).
    let card = mggcn_graph::datasets::REDDIT;
    let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
    let time = |gpus: usize| {
        let opts = TrainOptions::full(mggcn_gpusim::MachineSpec::dgx_a100(), gpus);
        let problem = Problem::from_stats(&card, &opts);
        let mut t = Trainer::new(problem, cfg.clone(), opts).expect("fits");
        t.train_epoch().expect("train").sim_seconds
    };
    let t1 = time(1);
    let t4 = time(4);
    let t8 = time(8);
    assert!(t4 < t1 * 0.5, "t1 {t1} t4 {t4}");
    assert!(t8 < t4, "t4 {t4} t8 {t8}");
}

#[test]
fn evaluate_is_side_effect_free() {
    let graph = test_graph(80, 33);
    let cfg = GcnConfig::new(graph.features.cols(), &[10], graph.classes);
    let opts = TrainOptions::quick(2);
    let problem = Problem::from_graph(&graph, &cfg, &opts);
    let mut trainer = Trainer::new(problem, cfg, opts).expect("fits");
    trainer.train(5).expect("train");
    // Two evaluations in a row must agree exactly (no weight updates), and
    // an evaluation must not change the following training epoch.
    let e1 = trainer.evaluate().expect("eval");
    let e2 = trainer.evaluate().expect("eval");
    assert_eq!(e1.loss, e2.loss);
    assert_eq!(e1.test_acc, e2.test_acc);
    let after_eval = trainer.train_epoch().expect("train").loss;

    // Reference run without the evaluations.
    let graph2 = test_graph(80, 33);
    let cfg2 = GcnConfig::new(graph2.features.cols(), &[10], graph2.classes);
    let opts2 = TrainOptions::quick(2);
    let problem2 = Problem::from_graph(&graph2, &cfg2, &opts2);
    let mut reference = Trainer::new(problem2, cfg2, opts2).expect("fits");
    reference.train(5).expect("train");
    let expected = reference.train_epoch().expect("train").loss;
    assert!((after_eval - expected).abs() < 1e-9, "{after_eval} vs {expected}");
}

#[test]
fn evaluate_is_cheaper_than_training() {
    let card = mggcn_graph::datasets::REDDIT;
    let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
    let opts = TrainOptions::full(mggcn_gpusim::MachineSpec::dgx_a100(), 4);
    let problem = Problem::from_stats(&card, &opts);
    let mut trainer = Trainer::new(problem, cfg, opts).expect("fits");
    let train_t = trainer.train_epoch().expect("train").sim_seconds;
    let eval_t = trainer.evaluate().expect("eval").sim_seconds;
    assert!(eval_t < train_t, "eval {eval_t} vs train {train_t}");
}

#[test]
fn lr_schedule_changes_trajectory_but_still_learns() {
    use mggcn_core::optimizer::LrSchedule;
    let graph = test_graph(100, 44);
    let mut cfg = GcnConfig::new(graph.features.cols(), &[12], graph.classes);
    cfg.lr_schedule = LrSchedule::StepDecay { every: 5, gamma: 0.5 };
    let opts = TrainOptions::quick(2);
    let problem = Problem::from_graph(&graph, &cfg, &opts);
    let mut decayed = Trainer::new(problem, cfg.clone(), opts.clone()).expect("fits");
    let d_losses: Vec<f64> =
        decayed.train(20).expect("train").into_iter().map(|r| r.loss).collect();

    let mut cfg2 = cfg.clone();
    cfg2.lr_schedule = LrSchedule::Constant;
    let problem2 = Problem::from_graph(&graph, &cfg2, &opts);
    let mut constant = Trainer::new(problem2, cfg2, opts).expect("fits");
    let c_losses: Vec<f64> =
        constant.train(20).expect("train").into_iter().map(|r| r.loss).collect();

    // Identical until the first decay boundary (epoch 5), diverging after.
    for e in 0..5 {
        assert_eq!(d_losses[e], c_losses[e], "epoch {e} should match pre-decay");
    }
    assert_ne!(d_losses[10], c_losses[10], "decay must change the trajectory");
    assert!(d_losses[19] < d_losses[0], "decayed run still learns");
}

#[test]
fn deep_and_varied_width_networks_match_reference() {
    // Wide-narrow-wide dims force every buffer-resize path: AHW buffers
    // shrink and regrow across layers and the backward pass re-views them
    // at input widths.
    let graph = test_graph(50, 55);
    for hidden in [vec![20usize, 4, 16], vec![8, 8, 8, 8]] {
        let cfg = GcnConfig::new(graph.features.cols(), &hidden, graph.classes);
        let mut opts = TrainOptions::quick(3);
        opts.permute = false;
        let problem = Problem::from_graph(&graph, &cfg, &opts);
        let mut distributed = Trainer::new(problem, cfg.clone(), opts).expect("fits");
        let mut reference = DenseReference::new(&graph, &cfg);
        for e in 0..3 {
            let d = distributed.train_epoch().expect("train").loss;
            let r = reference.epoch();
            assert!(
                (d - r).abs() < 2e-3 * r.abs().max(1.0),
                "hidden {hidden:?}, epoch {e}: {d} vs {r}"
            );
        }
    }
}

#[test]
fn single_layer_network_works() {
    // L = 1 means no ReLU, no relu-backward, the loss gradient feeds the
    // only layer directly — the degenerate case of the buffer scheme.
    let graph = test_graph(40, 66);
    let cfg = GcnConfig {
        dims: vec![graph.features.cols(), graph.classes],
        ..GcnConfig::new(graph.features.cols(), &[], graph.classes)
    };
    let opts = TrainOptions::quick(2);
    let problem = Problem::from_graph(&graph, &cfg, &opts);
    let mut trainer = Trainer::new(problem, cfg, opts).expect("fits");
    let reports = trainer.train(10).expect("train");
    assert!(reports[9].loss < reports[0].loss, "single-layer GCN learns");
}

#[test]
fn allocated_buffers_match_the_memory_plan() {
    // The L+3 law is not just a planner formula: count the bytes the
    // device state actually allocates for its big buffers and compare with
    // MemoryPlan's big_buffers term.
    use mggcn_core::memplan::{BufferPolicy, MemoryPlan};
    let graph = test_graph(96, 77);
    let cfg = GcnConfig::new(graph.features.cols(), &[10, 8], graph.classes);
    let opts = TrainOptions::quick(4);
    let problem = Problem::from_graph(&graph, &cfg, &opts);
    let trainer = Trainer::new(problem, cfg.clone(), opts).expect("fits");
    let state = trainer.state();
    let mut actual_big = 0u64;
    for i in 0..state.gpu_count() {
        let g = state.gpu(i);
        let per_gpu: usize =
            g.ahw.iter().map(|b| b.len()).sum::<usize>() + g.hw.len() + g.bc1.len() + g.bc2.len();
        actual_big += per_gpu as u64 * 4;
        // Exactly L AHW buffers exist.
        assert_eq!(g.ahw.len(), cfg.layers());
    }
    let plan = MemoryPlan::new(96, graph.adj.nnz() as u64, &cfg, 4, BufferPolicy::MgGcn);
    let planned = plan.big_buffers * 4; // plan is per GPU; 4 GPUs allocated
                                        // BC buffers are sized at the *largest* part so the actual can exceed
                                        // the per-average plan slightly; they must agree within 10%.
    let ratio = actual_big as f64 / planned as f64;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "actual {actual_big} vs planned {planned} (ratio {ratio:.3})"
    );
}

#[test]
fn partition_15d_is_bit_identical_to_1d() {
    // The 1.5D cross-group reduction re-folds in the canonical stage
    // order, so the two pipelines must agree to the last bit — losses and
    // final weights alike.
    use mggcn_core::config::Partition;
    let graph = test_graph(70, 21);
    for gpus in [2, 4] {
        let cfg = GcnConfig::new(graph.features.cols(), &[10], graph.classes);
        let run = |partition: Partition| {
            let mut opts = TrainOptions::quick(gpus);
            opts.partition = partition;
            let problem = Problem::from_graph(&graph, &cfg, &opts);
            let mut trainer = Trainer::new(problem, cfg.clone(), opts).expect("fits");
            let losses: Vec<f64> =
                trainer.train(3).expect("train").into_iter().map(|r| r.loss).collect();
            let weights = trainer.state().gpu(0).weights.clone();
            (losses, weights)
        };
        let (l1, w1) = run(Partition::OneD);
        let (l15, w15) = run(Partition::OneFiveD);
        for e in 0..3 {
            assert_eq!(l1[e], l15[e], "{gpus} GPUs, epoch {e}: 1.5D changed loss bits");
        }
        for (l, (a, b)) in w1.iter().zip(&w15).enumerate() {
            assert_eq!(a.as_slice(), b.as_slice(), "{gpus} GPUs, layer {l}: weights differ");
        }
    }
}

#[test]
fn partition_15d_survives_every_optimization_combination() {
    // Overlap, op-order selection and the §4.4 first-layer skip compose
    // with 1.5D without changing bits relative to 1D under the same flags.
    use mggcn_core::config::Partition;
    let graph = test_graph(60, 22);
    let cfg = GcnConfig::new(graph.features.cols(), &[10], graph.classes);
    for (overlap, order, skip) in [(false, true, false), (true, false, false), (true, true, true)] {
        let run = |partition: Partition| {
            let mut opts = TrainOptions::quick(4);
            opts.overlap = overlap;
            opts.op_order_opt = order;
            opts.skip_first_backward_spmm = skip;
            opts.partition = partition;
            let problem = Problem::from_graph(&graph, &cfg, &opts);
            let mut trainer = Trainer::new(problem, cfg.clone(), opts).expect("fits");
            trainer.train(2).expect("train").into_iter().map(|r| r.loss).collect::<Vec<f64>>()
        };
        let l1 = run(Partition::OneD);
        let l15 = run(Partition::OneFiveD);
        assert_eq!(l1, l15, "overlap={overlap} order={order} skip={skip}");
    }
}

#[test]
fn partition_15d_times_a_paper_scale_epoch() {
    // Timing-only (descriptor) problems schedule and simulate under 1.5D,
    // and the plan charges the extra RP buffer.
    use mggcn_core::config::Partition;
    let card = mggcn_graph::datasets::ARXIV;
    let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
    let mut opts = TrainOptions::full(mggcn_gpusim::MachineSpec::dgx_a100(), 4);
    opts.partition = Partition::OneFiveD;
    let problem = Problem::from_stats(&card, &opts);
    let mut t15 = Trainer::new(problem, cfg.clone(), opts.clone()).expect("fits");
    let report = t15.train_epoch().expect("train");
    assert!(report.sim_seconds > 0.0);
    let mut o1 = opts;
    o1.partition = Partition::OneD;
    let problem = Problem::from_stats(&card, &o1);
    let t1 = Trainer::new(problem, cfg, o1).expect("fits");
    assert!(
        t15.memory_per_gpu() > t1.memory_per_gpu(),
        "1.5D must charge the RP replica: {} vs {}",
        t15.memory_per_gpu(),
        t1.memory_per_gpu()
    );
}

#[test]
#[should_panic(expected = "even GPU count")]
fn partition_15d_rejects_odd_gpu_counts() {
    use mggcn_core::config::Partition;
    let graph = test_graph(50, 23);
    let cfg = GcnConfig::new(graph.features.cols(), &[10], graph.classes);
    let mut opts = TrainOptions::quick(3);
    opts.partition = Partition::OneFiveD;
    let problem = Problem::from_graph(&graph, &cfg, &opts);
    let _ = Trainer::new(problem, cfg, opts);
}
