//! Scratch calibration: print MG-GCN vs baseline epoch times per dataset.
use mggcn_baselines::{cagnet, dgl};
use mggcn_core::config::{GcnConfig, TrainOptions};
use mggcn_core::problem::Problem;
use mggcn_core::trainer::Trainer;
use mggcn_gpusim::MachineSpec;
use mggcn_graph::datasets;

fn mg(card: &mggcn_graph::DatasetCard, machine: MachineSpec, gpus: usize) -> Option<f64> {
    let opts = TrainOptions::full(machine, gpus);
    let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
    let problem = Problem::from_stats(card, &opts);
    Trainer::new(problem, cfg, opts).ok().and_then(|mut t| Some(t.train_epoch().ok()?.sim_seconds))
}

fn main() {
    let v100 = MachineSpec::dgx_v100;
    println!("=== DGX-V100, model A ===");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "dataset", "dgl1", "mg1", "mg2", "mg4", "mg8", "cag8", "dgl/mg1"
    );
    for card in
        [datasets::CORA, datasets::ARXIV, datasets::PRODUCTS, datasets::PROTEINS, datasets::REDDIT]
    {
        let d1 = {
            let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
            let opts = dgl::options(v100(), &cfg);
            let problem = Problem::from_stats(&card, &opts);
            Trainer::new(problem, cfg, opts)
                .ok()
                .and_then(|mut t| Some(t.train_epoch().ok()?.sim_seconds))
        };
        let m1 = mg(&card, v100(), 1);
        let m2 = mg(&card, v100(), 2);
        let m4 = mg(&card, v100(), 4);
        let m8 = mg(&card, v100(), 8);
        let c8 = {
            let opts = cagnet::options(v100(), 8);
            let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
            let problem = Problem::from_stats(&card, &opts);
            Trainer::new(problem, cfg, opts)
                .ok()
                .and_then(|mut t| Some(t.train_epoch().ok()?.sim_seconds))
        };
        let f = |x: Option<f64>| x.map(|v| format!("{v:.4}")).unwrap_or("OOM".into());
        let ratio = match (d1, m1) {
            (Some(a), Some(b)) => format!("{:.2}", a / b),
            _ => "-".into(),
        };
        println!(
            "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            card.name,
            f(d1),
            f(m1),
            f(m2),
            f(m4),
            f(m8),
            f(c8),
            ratio
        );
    }
    println!();
    println!("=== DGX-A100, model A: DGL1 vs MG 1/2/4/8 ===");
    for card in
        [datasets::CORA, datasets::ARXIV, datasets::PRODUCTS, datasets::PROTEINS, datasets::REDDIT]
    {
        let a100 = MachineSpec::dgx_a100;
        let d1 = {
            let cfg = GcnConfig::model_a(card.feat_dim, card.classes);
            let opts = dgl::options(a100(), &cfg);
            let problem = Problem::from_stats(&card, &opts);
            Trainer::new(problem, cfg, opts)
                .ok()
                .and_then(|mut t| Some(t.train_epoch().ok()?.sim_seconds))
        };
        let m: Vec<Option<f64>> = [1, 2, 4, 8].iter().map(|&g| mg(&card, a100(), g)).collect();
        let f = |x: Option<f64>| x.map(|v| format!("{v:.4}")).unwrap_or("OOM".into());
        println!(
            "{:<10} dgl={:>9} mg={:>9} {:>9} {:>9} {:>9}",
            card.name,
            f(d1),
            f(m[0]),
            f(m[1]),
            f(m[2]),
            f(m[3])
        );
    }
    // Table 3 configs
    println!();
    println!("=== Table 3 (A100): Reddit h16, Products/Proteins h256x2, Papers h208x2 ===");
    for (card, cfg) in [
        (datasets::REDDIT, GcnConfig::model_b(602, 41)),
        (datasets::PRODUCTS, GcnConfig::model_c(104, 47)),
        (datasets::PROTEINS, GcnConfig::model_c(128, 256)),
        (datasets::PAPERS, GcnConfig::model_d(128, 172)),
    ] {
        let times: Vec<String> = [1usize, 2, 4, 8]
            .iter()
            .map(|&g| {
                let opts = TrainOptions::full(MachineSpec::dgx_a100(), g);
                let problem = Problem::from_stats(&card, &opts);
                Trainer::new(problem, cfg.clone(), opts)
                    .ok()
                    .map(|mut t| format!("{:.3}", t.train_epoch().expect("train").sim_seconds))
                    .unwrap_or("OOM".into())
            })
            .collect();
        println!("{:<10} {:?}", card.name, times);
    }
}
